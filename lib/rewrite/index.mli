(** Head-symbol rule indexing.

    Variable-free patterns can only match a node whose root constructor
    equals the pattern's root constructor (composition chains are matched
    modulo associativity, but still only at [Compose] nodes).  Bucketing
    the catalog by that head once makes per-node dispatch constant in the
    catalog size instead of linear.  Candidate lists preserve catalog
    order, so an indexed engine fires exactly the rule the naive engine
    would — equivalence is pinned by the engine-index test suite. *)

(** One constructor per [Kola.Term.func] / [Kola.Term.pred] head. *)
type head =
  | HId
  | HPi1
  | HPi2
  | HPrim
  | HCompose
  | HPairf
  | HTimes
  | HKf
  | HCf
  | HCon
  | HArith
  | HAgg
  | HSetop
  | HSng
  | HFlat
  | HIterate
  | HIter
  | HJoin
  | HNest
  | HUnnest
  | HEq
  | HLeq
  | HGt
  | HIn
  | HPrimp
  | HOplus
  | HAndp
  | HOrp
  | HInv
  | HConv
  | HKp
  | HCp

val head_of_func : Kola.Term.func -> head option
(** [None] for holes (wildcard patterns). *)

val head_of_pred : Kola.Term.pred -> head option

type t

val build : Rule.t list -> t
(** One pass over the rules; bucket lists are materialized lazily per head
    and memoized, so building is cheap even for throwaway indexes. *)

val rules : t -> Rule.t list
(** The original rule list, original order. *)

val query_rules : t -> Rule.t list
(** Query rules, tried only at the query level. *)

val candidates_func : t -> Kola.Term.func -> Rule.t list
(** Function rules whose pattern head can match the given node, in catalog
    order (wildcards included). *)

val candidates_pred : t -> Kola.Term.pred -> Rule.t list

(** {1 Whole-term head presence}

    For per-rule position enumeration (the optimizer's successor function):
    a rule whose head occurs nowhere in the term cannot fire and can be
    skipped without walking the term. *)

type presence

val presence_of_func : Kola.Term.func -> presence
val presence_of_query : Kola.Term.query -> presence

val may_fire : presence -> Rule.t -> bool
(** Query rules and wildcard patterns always may fire; otherwise the
    pattern's head must occur in the term. *)

(** {1 Interned dispatch}

    Hash-consed nodes carry their head in [fshape]/[pshape] and the heads
    of their whole subtree as a precomputed bitmask, so dispatch reads a
    field and presence pruning is a single [land]. *)

val head_bit : head -> int
(** Bit position of a head in [Kola.Term.Hc.fheads]/[pheads] masks; agrees
    with [Kola.Term.Hc.fshape_bit]/[pshape_bit]. *)

val head_of_fshape : Kola.Term.Hc.fshape -> head option
val head_of_pshape : Kola.Term.Hc.pshape -> head option

val candidates_hfunc : t -> Kola.Term.Hc.fnode -> Rule.t list
(** Same buckets (and catalog order) as {!candidates_func}, dispatched on
    the interned head tag. *)

val candidates_hpred : t -> Kola.Term.Hc.pnode -> Rule.t list

val rule_head_mask : Rule.t -> int
(** The head bit a subtree must contain for the rule to fire anywhere
    inside it — interned nodes carry the occurrence mask of their whole
    subtree ([fheads]/[pheads]), so this turns per-subtree reachability
    into one [land].  [0] when the pattern has no fixed head. *)

val mask_may_fire : int -> Rule.t -> bool
(** [may_fire] against a head bitmask (a state body's [fheads]); same
    verdicts as the presence-table variant without the per-state walk. *)

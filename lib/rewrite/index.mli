(** Head-symbol rule indexing.

    Variable-free patterns can only match a node whose root constructor
    equals the pattern's root constructor (composition chains are matched
    modulo associativity, but still only at [Compose] nodes).  Bucketing
    the catalog by that head once makes per-node dispatch constant in the
    catalog size instead of linear.  Candidate lists preserve catalog
    order, so an indexed engine fires exactly the rule the naive engine
    would — equivalence is pinned by the engine-index test suite. *)

(** One constructor per [Kola.Term.func] / [Kola.Term.pred] head. *)
type head =
  | HId
  | HPi1
  | HPi2
  | HPrim
  | HCompose
  | HPairf
  | HTimes
  | HKf
  | HCf
  | HCon
  | HArith
  | HAgg
  | HSetop
  | HSng
  | HFlat
  | HIterate
  | HIter
  | HJoin
  | HNest
  | HUnnest
  | HEq
  | HLeq
  | HGt
  | HIn
  | HPrimp
  | HOplus
  | HAndp
  | HOrp
  | HInv
  | HConv
  | HKp
  | HCp

val head_of_func : Kola.Term.func -> head option
(** [None] for holes (wildcard patterns). *)

val head_of_pred : Kola.Term.pred -> head option

type t

val build : Rule.t list -> t
(** One pass over the rules; bucket lists are materialized lazily per head
    and memoized, so building is cheap even for throwaway indexes. *)

val rules : t -> Rule.t list
(** The original rule list, original order. *)

val query_rules : t -> Rule.t list
(** Query rules, tried only at the query level. *)

val candidates_func : t -> Kola.Term.func -> Rule.t list
(** Function rules whose pattern head can match the given node, in catalog
    order (wildcards included). *)

val candidates_pred : t -> Kola.Term.pred -> Rule.t list

(** {1 Whole-term head presence}

    For per-rule position enumeration (the optimizer's successor function):
    a rule whose head occurs nowhere in the term cannot fire and can be
    skipped without walking the term. *)

type presence

val presence_of_func : Kola.Term.func -> presence
val presence_of_query : Kola.Term.query -> presence

val may_fire : presence -> Rule.t -> bool
(** Query rules and wildcard patterns always may fire; otherwise the
    pattern's head must occur in the term. *)

(* Declarative rewrite rules over KOLA terms.

   A rule is a pair of patterns plus (optionally) precondition properties on
   the functions its holes bind — never code, per the paper's thesis.  Rules
   come in three kinds: over functions, over predicates, and over whole
   queries (the paper's rule 19 rewrites [iterate(...) ! A] into a form that
   changes the query argument, so it cannot be a pure function rule). *)

open Kola
open Kola.Term

type body =
  | Fun_rule of func * func
  | Pred_rule of pred * pred
  | Query_rule of (func * Value.t) * (func * Value.t)

(* The same patterns, interned (see {!Kola.Term.Hc}); memoized per rule so
   pattern nodes are shared across every match attempt the rule ever makes. *)
type hbody =
  | HFun_rule of Hc.fnode * Hc.fnode
  | HPred_rule of Hc.pnode * Hc.pnode
  | HQuery_rule of (Hc.fnode * Hc.vnode) * (Hc.fnode * Hc.vnode)

type precondition = { prop : Props.prop; hole : string }

type t = {
  name : string;  (** e.g. "r11"; paper rules are numbered as printed *)
  description : string;
  body : body;
  preconditions : precondition list;
  mutable hbody_memo : hbody option;
      (** lazily interned [body]; benignly racy under domains — every
          writer stores structurally identical tuples of physically
          identical interned nodes *)
}

let make ?(preconditions = []) ~name ~description body =
  { name; description; body; preconditions; hbody_memo = None }

let fun_rule ?preconditions ~name ~description lhs rhs =
  make ?preconditions ~name ~description (Fun_rule (lhs, rhs))

let pred_rule ?preconditions ~name ~description lhs rhs =
  make ?preconditions ~name ~description (Pred_rule (lhs, rhs))

let query_rule ?preconditions ~name ~description lhs rhs =
  make ?preconditions ~name ~description (Query_rule (lhs, rhs))

(* A rule read right-to-left, as the paper does with its "i⁻¹" references. *)
let flip t =
  let body =
    match t.body with
    | Fun_rule (l, r) -> Fun_rule (r, l)
    | Pred_rule (l, r) -> Pred_rule (r, l)
    | Query_rule (l, r) -> Query_rule (r, l)
  in
  (* The memo caches the unflipped body; it must not survive the flip. *)
  { t with name = t.name ^ "-1"; body; hbody_memo = None }

(* A precondition names a hole; the property is read against whatever the
   match bound it to — a function (injective, total, ...) or a value
   (set-valued).  An unbound hole is conservatively a failure. *)
let check_preconditions schema t subst =
  List.for_all
    (fun { prop; hole } ->
      match Subst.find_func subst hole with
      | Some f -> Props.holds schema prop f
      | None -> (
        match Subst.find_value subst hole with
        | Some v -> Props.holds_value prop v
        | None -> false))
    t.preconditions

(* Apply [t] at the root of a function term.

   Composition is matched modulo associativity: when both the pattern and
   the target are composition chains, the pattern's chain is matched against
   every window of consecutive elements of the target's chain, and the
   instantiated right-hand side is spliced back in.  This mirrors the
   paper's reading of f1 ∘ f2 ∘ ... ∘ fn "without parentheses (exploiting
   associativity)". *)
let apply_func ?(schema = Schema.paper) t f =
  match t.body with
  | Pred_rule _ | Query_rule _ -> None
  | Fun_rule (lhs, rhs) -> (
    let rewrite_root () =
      match Match.func Subst.empty lhs f with
      | Some subst when check_preconditions schema t subst ->
        Some (Subst.apply_func subst rhs)
      | _ -> None
    in
    match lhs, f with
    | Compose _, Compose _ ->
      let tparts = unchain f in
      let n = List.length tparts in
      let rec take n = function
        | [] -> []
        | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
      in
      let rec drop n xs =
        if n = 0 then xs
        else match xs with [] -> [] | _ :: rest -> drop (n - 1) rest
      in
      (* Try every window of ≥ 2 consecutive chain elements, leftmost and
         shortest first; Match.func handles absorption within the window. *)
      let rec try_at i len =
        if i + 2 > n then None
        else if i + len > n then try_at (i + 1) 2
        else
          let window = chain (take len (drop i tparts)) in
          match Match.func Subst.empty lhs window with
          | Some subst when check_preconditions schema t subst ->
            let rhs' = unchain (Subst.apply_func subst rhs) in
            let parts' = take i tparts @ rhs' @ drop (i + len) tparts in
            Some (chain parts')
          | _ -> try_at i (len + 1)
      in
      try_at 0 2
    | _ -> rewrite_root ())

(* Apply [t] at the root of a predicate term. *)
let apply_pred ?(schema = Schema.paper) t p =
  match t.body with
  | Pred_rule (lhs, rhs) -> (
    match Match.pred Subst.empty lhs p with
    | Some subst when check_preconditions schema t subst ->
      Some (Subst.apply_pred subst rhs)
    | _ -> None)
  | Fun_rule _ | Query_rule _ -> None

(* Apply a query rule to a query.  The function part of the pattern is
   matched against the *tail* of the query's composition chain (the operator
   adjacent to the argument), as required by the paper's bottom-out step. *)
let apply_query ?(schema = Schema.paper) t (q : query) =
  match t.body with
  | Query_rule ((lpat, lav), (rpat, rav)) ->
    let parts = unchain q.body in
    let rec split_last acc = function
      | [] -> None
      | [ last ] -> Some (List.rev acc, last)
      | x :: rest -> split_last (x :: acc) rest
    in
    Option.bind (split_last [] parts) (fun (prefix, last) ->
        match Match.func Subst.empty lpat last with
        | Some subst -> (
          match Match.value subst lav q.arg with
          | Some subst when check_preconditions schema t subst ->
            let last' = Subst.apply_func subst rpat in
            let arg' = Subst.apply_value subst rav in
            Some (query (chain (prefix @ unchain last')) arg')
          | _ -> None)
        | None -> None)
  | Fun_rule _ | Pred_rule _ -> None

(* ------------------------------------------------------------------ *)
(* Interned application, mirroring [apply_func]/[apply_pred]/[apply_query]
   verbatim over hash-consed nodes: same window enumeration (leftmost,
   shortest first), same absorption backtracking inside {!Match}, same
   precondition reads — a rule fires on an interned node exactly when it
   fires on the plain view, producing the interned image of the same
   result. *)

let hbody t =
  match t.hbody_memo with
  | Some hb -> hb
  | None ->
    let hb =
      match t.body with
      | Fun_rule (l, r) -> HFun_rule (Hc.of_func l, Hc.of_func r)
      | Pred_rule (l, r) -> HPred_rule (Hc.of_pred l, Hc.of_pred r)
      | Query_rule ((l, la), (r, ra)) ->
        HQuery_rule
          ((Hc.of_func l, Hc.of_value la), (Hc.of_func r, Hc.of_value ra))
    in
    t.hbody_memo <- Some hb;
    hb

let hcheck_preconditions schema t (subst : Subst.H.t) =
  List.for_all
    (fun { prop; hole } ->
      match Subst.H.find_func subst hole with
      | Some f -> Props.holds schema prop (Hc.to_func f)
      | None -> (
        match Subst.H.find_value subst hole with
        | Some v -> Props.holds_value prop (Hc.to_value v)
        | None -> false))
    t.preconditions

let apply_hfunc ?(schema = Schema.paper) t (f : Hc.fnode) =
  match hbody t with
  | HPred_rule _ | HQuery_rule _ -> None
  | HFun_rule (lhs, rhs) -> (
    let rewrite_root () =
      match Match.hfunc Subst.H.empty lhs f with
      | Some subst when hcheck_preconditions schema t subst ->
        Some (Subst.H.apply_func subst rhs)
      | _ -> None
    in
    match lhs.Hc.fshape, f.Hc.fshape with
    | Hc.HCompose _, Hc.HCompose _ ->
      let tparts = Hc.unchain f in
      let n = List.length tparts in
      let rec take n = function
        | [] -> []
        | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
      in
      let rec drop n xs =
        if n = 0 then xs
        else match xs with [] -> [] | _ :: rest -> drop (n - 1) rest
      in
      let rec try_at i len =
        if i + 2 > n then None
        else if i + len > n then try_at (i + 1) 2
        else
          let window = Hc.chain (take len (drop i tparts)) in
          match Match.hfunc Subst.H.empty lhs window with
          | Some subst when hcheck_preconditions schema t subst ->
            let rhs' = Hc.unchain (Subst.H.apply_func subst rhs) in
            let parts' = take i tparts @ rhs' @ drop (i + len) tparts in
            Some (Hc.chain parts')
          | _ -> try_at i (len + 1)
      in
      try_at 0 2
    | _ -> rewrite_root ())

let apply_hpred ?(schema = Schema.paper) t (p : Hc.pnode) =
  match hbody t with
  | HPred_rule (lhs, rhs) -> (
    match Match.hpred Subst.H.empty lhs p with
    | Some subst when hcheck_preconditions schema t subst ->
      Some (Subst.H.apply_pred subst rhs)
    | _ -> None)
  | HFun_rule _ | HQuery_rule _ -> None

let apply_hquery ?(schema = Schema.paper) t (hq : Hc.hquery) =
  match hbody t with
  | HQuery_rule ((lpat, lav), (rpat, rav)) ->
    let parts = Hc.unchain hq.Hc.hbody in
    let rec split_last acc = function
      | [] -> None
      | [ last ] -> Some (List.rev acc, last)
      | x :: rest -> split_last (x :: acc) rest
    in
    Option.bind (split_last [] parts) (fun (prefix, last) ->
        match Match.hfunc Subst.H.empty lpat last with
        | Some subst -> (
          match Match.hvalue subst lav hq.Hc.harg with
          | Some subst when hcheck_preconditions schema t subst ->
            let last' = Subst.H.apply_func subst rpat in
            let arg' = Subst.H.apply_value subst rav in
            Some
              {
                Hc.hbody = Hc.chain (prefix @ Hc.unchain last');
                Hc.harg = arg';
              }
          | _ -> None)
        | None -> None)
  | HFun_rule _ | HPred_rule _ -> None

let pp ppf t =
  let arrow = " \u{2192} " in
  match t.body with
  | Fun_rule (l, r) ->
    Fmt.pf ppf "@[<hv 2>%s:@ %a%s%a@]" t.name Pretty.pp_func l arrow
      Pretty.pp_func r
  | Pred_rule (l, r) ->
    Fmt.pf ppf "@[<hv 2>%s:@ %a%s%a@]" t.name Pretty.pp_pred l arrow
      Pretty.pp_pred r
  | Query_rule ((l, la), (r, ra)) ->
    Fmt.pf ppf "@[<hv 2>%s:@ %a ! %a%s%a ! %a@]" t.name Pretty.pp_func l
      Value.pp la arrow Pretty.pp_func r Value.pp ra

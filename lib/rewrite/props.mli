(** Declarative rule preconditions (Section 4.2).

    Properties of composite functions are inferred from schema annotations
    and closure rules (e.g. injective(f) ∧ injective(g) ⟹ injective(f∘g))
    — never from code.  The inference is conservative: [holds] returning
    [false] means "not provable". *)

type prop =
  | Injective       (** unequal inputs give unequal outputs *)
  | Total           (** never raises on well-typed input *)
  | Constant        (** ignores its input *)
  | Preserves_pair  (** maps pairs componentwise (f × g shapes) *)
  | Set_valued
      (** for value holes: the binding is a collection (rule 19's B) *)

val pp_prop : prop Fmt.t
val injective : Kola.Schema.t -> Kola.Term.func -> bool
val total : Kola.Schema.t -> Kola.Term.func -> bool
val total_pred : Kola.Schema.t -> Kola.Term.pred -> bool
val constant : Kola.Term.func -> bool
val preserves_pair : Kola.Term.func -> bool
val holds : Kola.Schema.t -> prop -> Kola.Term.func -> bool

val holds_value : prop -> Kola.Value.t -> bool
(** The property read against a value binding: [Set_valued] accepts sets,
    bags, lists and named extents; function properties are never provable
    of a value. *)

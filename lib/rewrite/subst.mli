(** Substitutions binding pattern holes to ground terms.

    [apply_*] instantiates a pattern under a binding; unbound holes are
    left in place so substitutions compose.  Instantiation preserves
    physical identity: a subtree under which no binding applies is returned
    unchanged rather than reallocated, so rewriting shares every untouched
    subterm with the input. *)

type t = {
  funcs : (string * Kola.Term.func) list;
  preds : (string * Kola.Term.pred) list;
  values : (string * Kola.Value.t) list;
}

val empty : t

val bind_func : t -> string -> Kola.Term.func -> t option
(** [None] when the hole is already bound to a different term. *)

val bind_pred : t -> string -> Kola.Term.pred -> t option
val bind_value : t -> string -> Kola.Value.t -> t option
val find_func : t -> string -> Kola.Term.func option
val find_pred : t -> string -> Kola.Term.pred option
val find_value : t -> string -> Kola.Value.t option
val apply_func : t -> Kola.Term.func -> Kola.Term.func
val apply_pred : t -> Kola.Term.pred -> Kola.Term.pred
val apply_value : t -> Kola.Value.t -> Kola.Value.t
val pp : t Fmt.t

(** Substitutions over hash-consed nodes (see {!Kola.Term.Hc}).

    Rebind consistency checks are physical equality (O(1), equivalent to
    the legacy structural checks because interned equality is [==]), and
    [apply_*] short-circuit on the [*hole_free] bit: a pattern subtree
    without holes is returned as-is, and rebuilds return the input node
    whenever no child changed. *)
module H : sig
  type t = {
    funcs : (string * Kola.Term.Hc.fnode) list;
    preds : (string * Kola.Term.Hc.pnode) list;
    values : (string * Kola.Term.Hc.vnode) list;
  }

  val empty : t

  val bind_func : t -> string -> Kola.Term.Hc.fnode -> t option
  (** [None] when the hole is already bound to a different node. *)

  val bind_pred : t -> string -> Kola.Term.Hc.pnode -> t option
  val bind_value : t -> string -> Kola.Term.Hc.vnode -> t option
  val find_func : t -> string -> Kola.Term.Hc.fnode option
  val find_pred : t -> string -> Kola.Term.Hc.pnode option
  val find_value : t -> string -> Kola.Term.Hc.vnode option
  val apply_func : t -> Kola.Term.Hc.fnode -> Kola.Term.Hc.fnode
  val apply_pred : t -> Kola.Term.Hc.pnode -> Kola.Term.Hc.pnode
  val apply_value : t -> Kola.Term.Hc.vnode -> Kola.Term.Hc.vnode
end

(** One-way matching of rule patterns against (sub)terms — the paper's
    "unification" applicability test.

    Because KOLA terms are variable-free, structural matching with
    consistent hole binding is the entire test: no environmental analysis,
    no head routines.  Compositions match modulo associativity: both chains
    are flattened and matched elementwise, and a bare hole element may
    absorb any non-empty run of consecutive target elements. *)

val func : Subst.t -> Kola.Term.func -> Kola.Term.func -> Subst.t option
(** [func subst pattern target] extends [subst] or fails. *)

val pred : Subst.t -> Kola.Term.pred -> Kola.Term.pred -> Subst.t option

val value : Subst.t -> Kola.Value.t -> Kola.Value.t -> Subst.t option
(** Value patterns are holes, pairs of patterns, or exact constants. *)

val chain_match :
  Subst.t -> Kola.Term.func list -> Kola.Term.func list -> Subst.t option
(** Match a flattened pattern chain against a flattened target chain. *)

val func_matches : Kola.Term.func -> Kola.Term.func -> bool
val pred_matches : Kola.Term.pred -> Kola.Term.pred -> bool

(** {1 Matching over hash-consed nodes}

    Same one-way matching and binding order as the plain functions —
    bindings accepted and rejected identically — with two O(1)
    short-circuits: a hole-free pattern physically equal to the target
    matches immediately, and a hole-free pattern without any [Compose]
    (read off [fheads]) that is physically distinct cannot match at all,
    because without reassociation matching is structural and structural
    equality of interned nodes is physical. *)

val hfunc :
  Subst.H.t -> Kola.Term.Hc.fnode -> Kola.Term.Hc.fnode -> Subst.H.t option

val hpred :
  Subst.H.t -> Kola.Term.Hc.pnode -> Kola.Term.Hc.pnode -> Subst.H.t option

val hvalue :
  Subst.H.t -> Kola.Term.Hc.vnode -> Kola.Term.Hc.vnode -> Subst.H.t option

val hchain_match :
  Subst.H.t ->
  Kola.Term.Hc.fnode list ->
  Kola.Term.Hc.fnode list ->
  Subst.H.t option

(* Strategy combinators for applying rules throughout a term.

   A strategy is a partial transformation on targets (functions or
   predicates).  [None] means "did not apply" — the identity on failure is
   supplied by [attempt].  Strategies descend through every syntactic
   position where a function or predicate occurs: composition, pair formers,
   con, iterate/iter/join/nest/unnest, ⊕, &, |, inversions and curried
   forms. *)

open Kola.Term

type target = F of func | P of pred
type t = target -> target option

let as_f = function F f -> Some f | P _ -> None
let as_p = function P p -> Some p | F _ -> None

let of_fun_rewrite (rw : func -> func option) : t = function
  | F f -> Option.map (fun f -> F f) (rw f)
  | P _ -> None

let of_pred_rewrite (rw : pred -> pred option) : t = function
  | P p -> Option.map (fun p -> P p) (rw p)
  | F _ -> None

(* A rule applied at the root of the target. *)
let of_rule ?schema (r : Rule.t) : t = function
  | F f -> Option.map (fun f -> F f) (Rule.apply_func ?schema r f)
  | P p -> Option.map (fun p -> P p) (Rule.apply_pred ?schema r p)

(* Dispatch through a head-symbol index: at each target only the rules
   whose pattern head can match are attempted, in catalog order. *)
let of_index ?schema (idx : Index.t) : t =
 fun tgt ->
  let candidates =
    match tgt with
    | F f -> Index.candidates_func idx f
    | P p -> Index.candidates_pred idx p
  in
  List.find_map (fun r -> of_rule ?schema r tgt) candidates

let of_rules ?schema rules : t =
  let idx = Index.build rules in
  of_index ?schema idx

let fail : t = fun _ -> None
let id_strategy : t = fun tgt -> Some tgt

let seq (a : t) (b : t) : t = fun tgt -> Option.bind (a tgt) b

let choice (a : t) (b : t) : t =
 fun tgt ->
  match a tgt with
  | Some r -> Some r
  | None -> b tgt

let choice_all (ss : t list) : t = List.fold_left choice fail ss

(* Succeeds always; identity when the inner strategy fails. *)
let attempt (s : t) : t = fun tgt -> Some (Option.value ~default:tgt (s tgt))

(* Apply [s] as long as it applies; succeeds if it applied at least once.
   [fuel] bounds runaway rule sets. *)
let repeat ?(fuel = 10_000) (s : t) : t =
 fun tgt ->
  let rec go n tgt applied =
    if n = 0 then if applied then Some tgt else None
    else
      match s tgt with
      | Some tgt' -> go (n - 1) tgt' true
      | None -> if applied then Some tgt else None
  in
  go fuel tgt false

(* Try [s] on each child position (left to right); rebuild on the first
   success. *)
let one_child (s : t) : t =
  let sf f = Option.bind (s (F f)) as_f in
  let sp p = Option.bind (s (P p)) as_p in
  let in_func f =
    match f with
    | Id | Pi1 | Pi2 | Prim _ | Flat | Sng | Arith _ | Agg _ | Setop _ | Kf _
    | Fhole _ -> None
    | Compose (a, b) -> (
      match sf a with
      | Some a' -> Some (Compose (a', b))
      | None -> Option.map (fun b' -> Compose (a, b')) (sf b))
    | Pairf (a, b) -> (
      match sf a with
      | Some a' -> Some (Pairf (a', b))
      | None -> Option.map (fun b' -> Pairf (a, b')) (sf b))
    | Times (a, b) -> (
      match sf a with
      | Some a' -> Some (Times (a', b))
      | None -> Option.map (fun b' -> Times (a, b')) (sf b))
    | Nest (a, b) -> (
      match sf a with
      | Some a' -> Some (Nest (a', b))
      | None -> Option.map (fun b' -> Nest (a, b')) (sf b))
    | Unnest (a, b) -> (
      match sf a with
      | Some a' -> Some (Unnest (a', b))
      | None -> Option.map (fun b' -> Unnest (a, b')) (sf b))
    | Cf (a, v) -> Option.map (fun a' -> Cf (a', v)) (sf a)
    | Con (p, a, b) -> (
      match sp p with
      | Some p' -> Some (Con (p', a, b))
      | None -> (
        match sf a with
        | Some a' -> Some (Con (p, a', b))
        | None -> Option.map (fun b' -> Con (p, a, b')) (sf b)))
    | Iterate (p, a) -> (
      match sp p with
      | Some p' -> Some (Iterate (p', a))
      | None -> Option.map (fun a' -> Iterate (p, a')) (sf a))
    | Iter (p, a) -> (
      match sp p with
      | Some p' -> Some (Iter (p', a))
      | None -> Option.map (fun a' -> Iter (p, a')) (sf a))
    | Join (p, a) -> (
      match sp p with
      | Some p' -> Some (Join (p', a))
      | None -> Option.map (fun a' -> Join (p, a')) (sf a))
  in
  let in_pred p =
    match p with
    | Eq | Leq | Gt | In | Primp _ | Kp _ | Phole _ -> None
    | Oplus (q, f) -> (
      match sp q with
      | Some q' -> Some (Oplus (q', f))
      | None -> Option.map (fun f' -> Oplus (q, f')) (sf f))
    | Andp (q, r) -> (
      match sp q with
      | Some q' -> Some (Andp (q', r))
      | None -> Option.map (fun r' -> Andp (q, r')) (sp r))
    | Orp (q, r) -> (
      match sp q with
      | Some q' -> Some (Orp (q', r))
      | None -> Option.map (fun r' -> Orp (q, r')) (sp r))
    | Inv q -> Option.map (fun q' -> Inv q') (sp q)
    | Conv q -> Option.map (fun q' -> Conv q') (sp q)
    | Cp (q, v) -> Option.map (fun q' -> Cp (q', v)) (sp q)
  in
  function
  | F f -> Option.map (fun f -> F f) (in_func f)
  | P p -> Option.map (fun p -> P p) (in_pred p)

(* Apply [s] once, at the outermost (leftmost) position where it matches. *)
let rec once_topdown (s : t) : t =
 fun tgt -> choice s (one_child (once_topdown s)) tgt

(* Apply [s] once, at the innermost position where it matches. *)
let rec once_bottomup (s : t) : t =
 fun tgt -> choice (one_child (once_bottomup s)) s tgt

(* Exhaustively apply [s] anywhere until no position matches (leftmost-
   outermost order).  This is the engine's normalization loop. *)
let fixpoint ?fuel (s : t) : t = repeat ?fuel (once_topdown s)

(* Run to normal form; always succeeds. *)
let normalize ?fuel (s : t) : t = attempt (fixpoint ?fuel s)

let apply_func (s : t) f = Option.bind (s (F f)) as_f
let apply_pred (s : t) p = Option.bind (s (P p)) as_p

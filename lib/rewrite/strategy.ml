(* Strategy combinators for applying rules throughout a term.

   A strategy is a partial transformation on targets (functions or
   predicates).  [None] means "did not apply" — the identity on failure is
   supplied by [attempt].  Strategies descend through every syntactic
   position where a function or predicate occurs: composition, pair formers,
   con, iterate/iter/join/nest/unnest, ⊕, &, |, inversions and curried
   forms. *)

open Kola.Term

type target = F of func | P of pred
type t = target -> target option

let as_f = function F f -> Some f | P _ -> None
let as_p = function P p -> Some p | F _ -> None

let of_fun_rewrite (rw : func -> func option) : t = function
  | F f -> Option.map (fun f -> F f) (rw f)
  | P _ -> None

let of_pred_rewrite (rw : pred -> pred option) : t = function
  | P p -> Option.map (fun p -> P p) (rw p)
  | F _ -> None

(* A rule applied at the root of the target. *)
let of_rule ?schema (r : Rule.t) : t = function
  | F f -> Option.map (fun f -> F f) (Rule.apply_func ?schema r f)
  | P p -> Option.map (fun p -> P p) (Rule.apply_pred ?schema r p)

(* Dispatch through a head-symbol index: at each target only the rules
   whose pattern head can match are attempted, in catalog order. *)
let of_index ?schema (idx : Index.t) : t =
 fun tgt ->
  let candidates =
    match tgt with
    | F f -> Index.candidates_func idx f
    | P p -> Index.candidates_pred idx p
  in
  List.find_map (fun r -> of_rule ?schema r tgt) candidates

let of_rules ?schema rules : t =
  let idx = Index.build rules in
  of_index ?schema idx

let fail : t = fun _ -> None
let id_strategy : t = fun tgt -> Some tgt

let seq (a : t) (b : t) : t = fun tgt -> Option.bind (a tgt) b

let choice (a : t) (b : t) : t =
 fun tgt ->
  match a tgt with
  | Some r -> Some r
  | None -> b tgt

let choice_all (ss : t list) : t = List.fold_left choice fail ss

(* Succeeds always; identity when the inner strategy fails. *)
let attempt (s : t) : t = fun tgt -> Some (Option.value ~default:tgt (s tgt))

(* Apply [s] as long as it applies; succeeds if it applied at least once.
   [fuel] bounds runaway rule sets. *)
let repeat ?(fuel = 10_000) (s : t) : t =
 fun tgt ->
  let rec go n tgt applied =
    if n = 0 then if applied then Some tgt else None
    else
      match s tgt with
      | Some tgt' -> go (n - 1) tgt' true
      | None -> if applied then Some tgt else None
  in
  go fuel tgt false

(* Try [s] on each child position (left to right); rebuild on the first
   success. *)
let one_child (s : t) : t =
  let sf f = Option.bind (s (F f)) as_f in
  let sp p = Option.bind (s (P p)) as_p in
  let in_func f =
    match f with
    | Id | Pi1 | Pi2 | Prim _ | Flat | Sng | Arith _ | Agg _ | Setop _ | Kf _
    | Fhole _ -> None
    | Compose (a, b) -> (
      match sf a with
      | Some a' -> Some (Compose (a', b))
      | None -> Option.map (fun b' -> Compose (a, b')) (sf b))
    | Pairf (a, b) -> (
      match sf a with
      | Some a' -> Some (Pairf (a', b))
      | None -> Option.map (fun b' -> Pairf (a, b')) (sf b))
    | Times (a, b) -> (
      match sf a with
      | Some a' -> Some (Times (a', b))
      | None -> Option.map (fun b' -> Times (a, b')) (sf b))
    | Nest (a, b) -> (
      match sf a with
      | Some a' -> Some (Nest (a', b))
      | None -> Option.map (fun b' -> Nest (a, b')) (sf b))
    | Unnest (a, b) -> (
      match sf a with
      | Some a' -> Some (Unnest (a', b))
      | None -> Option.map (fun b' -> Unnest (a, b')) (sf b))
    | Cf (a, v) -> Option.map (fun a' -> Cf (a', v)) (sf a)
    | Con (p, a, b) -> (
      match sp p with
      | Some p' -> Some (Con (p', a, b))
      | None -> (
        match sf a with
        | Some a' -> Some (Con (p, a', b))
        | None -> Option.map (fun b' -> Con (p, a, b')) (sf b)))
    | Iterate (p, a) -> (
      match sp p with
      | Some p' -> Some (Iterate (p', a))
      | None -> Option.map (fun a' -> Iterate (p, a')) (sf a))
    | Iter (p, a) -> (
      match sp p with
      | Some p' -> Some (Iter (p', a))
      | None -> Option.map (fun a' -> Iter (p, a')) (sf a))
    | Join (p, a) -> (
      match sp p with
      | Some p' -> Some (Join (p', a))
      | None -> Option.map (fun a' -> Join (p, a')) (sf a))
  in
  let in_pred p =
    match p with
    | Eq | Leq | Gt | In | Primp _ | Kp _ | Phole _ -> None
    | Oplus (q, f) -> (
      match sp q with
      | Some q' -> Some (Oplus (q', f))
      | None -> Option.map (fun f' -> Oplus (q, f')) (sf f))
    | Andp (q, r) -> (
      match sp q with
      | Some q' -> Some (Andp (q', r))
      | None -> Option.map (fun r' -> Andp (q, r')) (sp r))
    | Orp (q, r) -> (
      match sp q with
      | Some q' -> Some (Orp (q', r))
      | None -> Option.map (fun r' -> Orp (q, r')) (sp r))
    | Inv q -> Option.map (fun q' -> Inv q') (sp q)
    | Conv q -> Option.map (fun q' -> Conv q') (sp q)
    | Cp (q, v) -> Option.map (fun q' -> Cp (q', v)) (sp q)
  in
  function
  | F f -> Option.map (fun f -> F f) (in_func f)
  | P p -> Option.map (fun p -> P p) (in_pred p)

(* Apply [s] once, at the outermost (leftmost) position where it matches. *)
let rec once_topdown (s : t) : t =
 fun tgt -> choice s (one_child (once_topdown s)) tgt

(* Apply [s] once, at the innermost position where it matches. *)
let rec once_bottomup (s : t) : t =
 fun tgt -> choice (one_child (once_bottomup s)) s tgt

(* Exhaustively apply [s] anywhere until no position matches (leftmost-
   outermost order).  This is the engine's normalization loop. *)
let fixpoint ?fuel (s : t) : t = repeat ?fuel (once_topdown s)

(* Run to normal form; always succeeds. *)
let normalize ?fuel (s : t) : t = attempt (fixpoint ?fuel s)

let apply_func (s : t) f = Option.bind (s (F f)) as_f
let apply_pred (s : t) p = Option.bind (s (P p)) as_p

(* Strategies over hash-consed nodes.  [one_child] mirrors the plain
   traversal position-for-position (left to right, predicate before
   function children, no descent into Kf/Cf/Cp values), rebuilding through
   the smart constructors — so an interned [once_topdown] visits exactly
   the positions the plain one does, in the same order. *)
module H = struct
  type target = F of Hc.fnode | P of Hc.pnode
  type t = target -> target option

  let as_f = function F f -> Some f | P _ -> None
  let as_p = function P p -> Some p | F _ -> None

  let of_rule ?schema (r : Rule.t) : t = function
    | F f -> Option.map (fun f -> F f) (Rule.apply_hfunc ?schema r f)
    | P p -> Option.map (fun p -> P p) (Rule.apply_hpred ?schema r p)

  let choice (a : t) (b : t) : t =
   fun tgt ->
    match a tgt with
    | Some r -> Some r
    | None -> b tgt

  let one_child (s : t) : t =
    let sf f = Option.bind (s (F f)) as_f in
    let sp p = Option.bind (s (P p)) as_p in
    let in_func f =
      match f.Hc.fshape with
      | Hc.HId | Hc.HPi1 | Hc.HPi2 | Hc.HPrim _ | Hc.HFlat | Hc.HSng
      | Hc.HArith _ | Hc.HAgg _ | Hc.HSetop _ | Hc.HKf _ | Hc.HFhole _ ->
        None
      | Hc.HCompose (a, b) -> (
        match sf a with
        | Some a' -> Some (Hc.compose a' b)
        | None -> Option.map (fun b' -> Hc.compose a b') (sf b))
      | Hc.HPairf (a, b) -> (
        match sf a with
        | Some a' -> Some (Hc.pairf a' b)
        | None -> Option.map (fun b' -> Hc.pairf a b') (sf b))
      | Hc.HTimes (a, b) -> (
        match sf a with
        | Some a' -> Some (Hc.times a' b)
        | None -> Option.map (fun b' -> Hc.times a b') (sf b))
      | Hc.HNest (a, b) -> (
        match sf a with
        | Some a' -> Some (Hc.nest a' b)
        | None -> Option.map (fun b' -> Hc.nest a b') (sf b))
      | Hc.HUnnest (a, b) -> (
        match sf a with
        | Some a' -> Some (Hc.unnest a' b)
        | None -> Option.map (fun b' -> Hc.unnest a b') (sf b))
      | Hc.HCf (a, v) -> Option.map (fun a' -> Hc.cf a' v) (sf a)
      | Hc.HCon (p, a, b) -> (
        match sp p with
        | Some p' -> Some (Hc.con p' a b)
        | None -> (
          match sf a with
          | Some a' -> Some (Hc.con p a' b)
          | None -> Option.map (fun b' -> Hc.con p a b') (sf b)))
      | Hc.HIterate (p, a) -> (
        match sp p with
        | Some p' -> Some (Hc.iterate p' a)
        | None -> Option.map (fun a' -> Hc.iterate p a') (sf a))
      | Hc.HIter (p, a) -> (
        match sp p with
        | Some p' -> Some (Hc.iter p' a)
        | None -> Option.map (fun a' -> Hc.iter p a') (sf a))
      | Hc.HJoin (p, a) -> (
        match sp p with
        | Some p' -> Some (Hc.join p' a)
        | None -> Option.map (fun a' -> Hc.join p a') (sf a))
    in
    let in_pred p =
      match p.Hc.pshape with
      | Hc.HEq | Hc.HLeq | Hc.HGt | Hc.HIn | Hc.HPrimp _ | Hc.HKp _
      | Hc.HPhole _ -> None
      | Hc.HOplus (q, f) -> (
        match sp q with
        | Some q' -> Some (Hc.oplus q' f)
        | None -> Option.map (fun f' -> Hc.oplus q f') (sf f))
      | Hc.HAndp (q, r) -> (
        match sp q with
        | Some q' -> Some (Hc.andp q' r)
        | None -> Option.map (fun r' -> Hc.andp q r') (sp r))
      | Hc.HOrp (q, r) -> (
        match sp q with
        | Some q' -> Some (Hc.orp q' r)
        | None -> Option.map (fun r' -> Hc.orp q r') (sp r))
      | Hc.HInv q -> Option.map (fun q' -> Hc.inv q') (sp q)
      | Hc.HConv q -> Option.map (fun q' -> Hc.conv q') (sp q)
      | Hc.HCp (q, v) -> Option.map (fun q' -> Hc.cp q' v) (sp q)
    in
    function
    | F f -> Option.map (fun f -> F f) (in_func f)
    | P p -> Option.map (fun p -> P p) (in_pred p)

  let rec once_topdown (s : t) : t =
   fun tgt -> choice s (one_child (once_topdown s)) tgt

  (* [once_topdown] pruned through the per-node head bitmasks: a rule
     whose pattern has a fixed head ({!Index.rule_head_mask}) can only
     fire inside a subtree containing that head, and interned nodes carry
     the occurrence mask of their whole subtree as a field — so dead
     subtrees are skipped in O(1) instead of walked.  Visits the same
     matching positions in the same order as [once_topdown]: a pruned
     subtree contains no position where the rule applies. *)
  let once_topdown_masked ~mask (s : t) : t =
    if mask = 0 then once_topdown s
    else
      let rec go tgt =
        let heads =
          match tgt with F f -> f.Hc.fheads | P p -> p.Hc.pheads
        in
        if heads land mask = 0 then None else choice s (one_child go) tgt
      in
      go

  let apply_func (s : t) f = Option.bind (s (F f)) as_f
  let apply_pred (s : t) p = Option.bind (s (P p)) as_p
end

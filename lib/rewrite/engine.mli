(** The rewriting engine: fires rules from a set anywhere in a query,
    recording a trace, so tests can check the paper's derivations (Figures
    4 and 6) step by step and the optimizer can explain itself.

    Two dispatch paths exist.  The naive path attempts every rule of the
    right sort at every node, in catalog order.  The indexed path routes
    each node through {!Index} so only rules whose pattern head can match
    are attempted — same firings, same trace, fewer attempts.  {!run}
    indexes by default; the naive path is the measured baseline. *)

type step = {
  rule_name : string;
  result : Kola.Term.query;  (** the whole query after the firing *)
}

type trace = step list

type stats = {
  firings : int;
  attempts : int;
      (** rules actually tried: for each node visited, each candidate rule
          of the node's sort attempted before (and including) the one that
          fired.  Rules of the wrong sort for a node — or, under the index,
          rules whose head cannot match it — are dismissed by dispatch, not
          tried, and not counted. *)
}

type outcome = { query : Kola.Term.query; trace : trace; stats : stats }

val pp_trace : trace Fmt.t

val step_once :
  ?schema:Kola.Schema.t ->
  ?counter:int ref ->
  Rule.t list -> Kola.Term.query -> (string * Kola.Term.query) option
(** Fire the first rule (in catalog order) that applies anywhere, outermost
    first; query rules are tried at the query level before function and
    predicate rules.  Attempts every candidate rule at every node — the
    naive baseline. *)

val step_once_indexed :
  ?schema:Kola.Schema.t ->
  ?counter:int ref ->
  Index.t -> Kola.Term.query -> (string * Kola.Term.query) option
(** Same firing order and result as {!step_once} on [Index.rules index],
    but each node only attempts the rules its head admits. *)

val run :
  ?schema:Kola.Schema.t -> ?fuel:int -> ?indexed:bool ->
  Rule.t list -> Kola.Term.query -> outcome
(** Normalize under the rule set, up to [fuel] firings.  [indexed]
    (default [true]) builds the head-symbol index once and reuses it across
    firings; [~indexed:false] is the naive baseline with identical firings
    and trace but more attempts. *)

val run_func :
  ?schema:Kola.Schema.t -> ?fuel:int -> ?indexed:bool ->
  Rule.t list -> Kola.Term.func -> Kola.Term.func * trace

val fired_rules : outcome -> string list

(** {1 Interned engine}

    The indexed path over hash-consed nodes: same rule-try order, same
    traversal, same attempts-counter semantics as {!step_once_indexed} /
    {!run}, so firings, trace and stats coincide — only per-node match and
    substitution costs change. *)

val step_once_hc :
  ?schema:Kola.Schema.t ->
  ?counter:int ref ->
  Index.t ->
  Kola.Term.Hc.hquery ->
  (string * Kola.Term.Hc.hquery) option

val run_hc :
  ?schema:Kola.Schema.t ->
  ?fuel:int ->
  Rule.t list ->
  Kola.Term.query ->
  outcome
(** Normalize on the interned representation; outcome identical to
    [run ~indexed:true]. *)

(* Declarative preconditions (Section 4.2 of the paper).

   Rules may require properties of the functions a pattern binds — e.g. the
   paper's intersection rule requires [injective f].  Crucially these are
   established *without code*: primitives carry schema annotations, and
   properties of composite functions are inferred by closure rules such as

     injective(f) ∧ injective(g) ⟹ injective(f ∘ g)

   exactly as in the paper.  The inference is a conservative syntactic
   analysis: [holds] answering [false] means "not provable", not "false". *)

open Kola
open Kola.Term

type prop =
  | Injective        (** unequal inputs give unequal outputs *)
  | Total            (** never raises on well-typed input *)
  | Constant         (** ignores its input *)
  | Preserves_pair   (** maps pairs to pairs componentwise, e.g. f × g *)
  | Set_valued
      (** a value hole binds a collection (rule 19's B must be iterable) *)

let pp_prop ppf = function
  | Injective -> Fmt.string ppf "injective"
  | Total -> Fmt.string ppf "total"
  | Constant -> Fmt.string ppf "constant"
  | Preserves_pair -> Fmt.string ppf "preserves-pair"
  | Set_valued -> Fmt.string ppf "set-valued"

let rec injective schema f =
  match f with
  | Id -> true
  | Prim name -> Schema.has_annotation schema name Schema.Injective
  | Compose (f, g) -> injective schema f && injective schema g
  (* ⟨f, g⟩ is injective if either component is. *)
  | Pairf (f, g) -> injective schema f || injective schema g
  | Times (f, g) -> injective schema f && injective schema g
  | Kf _ -> false
  | Pi1 | Pi2 -> false
  | Sng -> true
  | Cf _ | Con _ | Arith _ | Agg _ | Setop _ | Flat | Iterate _ | Iter _
  | Join _ | Nest _ | Unnest _ | Fhole _ -> false

let rec total schema f =
  match f with
  | Id | Pi1 | Pi2 | Kf _ | Flat | Sng | Arith _ | Setop _ -> true
  | Agg (Count | Sum) -> true
  | Agg (Max | Min) -> false (* raise on the empty set *)
  | Prim name -> Schema.has_annotation schema name Schema.Total
  | Compose (f, g) | Pairf (f, g) | Times (f, g) | Nest (f, g) | Unnest (f, g)
    -> total schema f && total schema g
  | Cf (f, _) -> total schema f
  | Con (p, f, g) -> total_pred schema p && total schema f && total schema g
  | Iterate (p, f) | Iter (p, f) | Join (p, f) ->
    total_pred schema p && total schema f
  | Fhole _ -> false

and total_pred schema p =
  match p with
  | Eq | Leq | Gt | In | Kp _ -> true
  | Primp name -> Schema.has_annotation schema name Schema.Total
  | Oplus (p, f) -> total_pred schema p && total schema f
  | Andp (p, q) | Orp (p, q) -> total_pred schema p && total_pred schema q
  | Inv p | Conv p -> total_pred schema p
  | Cp (p, _) -> total_pred schema p
  | Phole _ -> false

let rec constant f =
  match f with
  | Kf _ -> true
  | Compose (f, g) -> constant f || constant g
  | Pairf (f, g) -> constant f && constant g
  | _ -> false

let preserves_pair = function
  | Times _ -> true
  | Pairf (Compose (_, Pi1), Compose (_, Pi2)) -> true
  | Pairf (Pi1, Compose (_, Pi2)) | Pairf (Compose (_, Pi1), Pi2) -> true
  | Pairf (Pi1, Pi2) -> true
  | Id -> true
  | _ -> false

let holds schema prop f =
  match prop with
  | Injective -> injective schema f
  | Total -> total schema f
  | Constant -> constant f
  | Preserves_pair -> preserves_pair f
  | Set_valued -> false (* a property of value bindings, not functions *)

(* Properties of the *values* a pattern binds — rule 19's hidden join is
   only sound when the constant it moves into the query argument is a
   collection the introduced join can iterate.  Named extents are sets by
   construction. *)
let holds_value prop (v : Value.t) =
  match prop with
  | Set_valued -> (
    match v with
    | Value.Set _ | Value.Bag _ | Value.List _ | Value.Named _ -> true
    | _ -> false)
  | Injective | Total | Constant | Preserves_pair -> false

(* Substitutions binding pattern holes to ground terms.

   A binding environment maps function holes to functions, predicate holes to
   predicates and value holes to values.  [apply_*] instantiates a pattern
   under a binding; unbound holes are left in place so substitutions compose.

   [apply_*] preserve physical identity: a subtree under which no binding
   applies is returned unchanged, not reallocated — rewriting a term then
   shares every untouched subterm with the original, which is what lets
   hash-consed sharing (see {!Kola.Term.Hc}) survive rule application. *)

open Kola
open Kola.Term

type t = {
  funcs : (string * func) list;
  preds : (string * pred) list;
  values : (string * Value.t) list;
}

let empty = { funcs = []; preds = []; values = [] }

let bind_func t h f =
  match List.assoc_opt h t.funcs with
  | Some f' -> if equal_func f f' then Some t else None
  | None -> Some { t with funcs = (h, f) :: t.funcs }

let bind_pred t h p =
  match List.assoc_opt h t.preds with
  | Some p' -> if equal_pred p p' then Some t else None
  | None -> Some { t with preds = (h, p) :: t.preds }

let bind_value t h v =
  match List.assoc_opt h t.values with
  | Some v' -> if Value.equal v v' then Some t else None
  | None -> Some { t with values = (h, v) :: t.values }

let find_func t h = List.assoc_opt h t.funcs
let find_pred t h = List.assoc_opt h t.preds
let find_value t h = List.assoc_opt h t.values

(* [map_sharing f xs] is [List.map f xs], except it returns [xs] itself when
   every element mapped to itself. *)
let map_sharing f xs =
  let changed = ref false in
  let ys =
    List.map
      (fun x ->
        let y = f x in
        if y != x then changed := true;
        y)
      xs
  in
  if !changed then ys else xs

let rec apply_func t f =
  match f with
  | Fhole h -> (
    match find_func t h with Some f' -> f' | None -> f)
  | Id | Pi1 | Pi2 | Prim _ | Flat | Sng | Arith _ | Agg _ | Setop _ -> f
  | Compose (f1, f2) ->
    let f1' = apply_func t f1 and f2' = apply_func t f2 in
    if f1' == f1 && f2' == f2 then f else Compose (f1', f2')
  | Pairf (f1, f2) ->
    let f1' = apply_func t f1 and f2' = apply_func t f2 in
    if f1' == f1 && f2' == f2 then f else Pairf (f1', f2')
  | Times (f1, f2) ->
    let f1' = apply_func t f1 and f2' = apply_func t f2 in
    if f1' == f1 && f2' == f2 then f else Times (f1', f2')
  | Nest (f1, f2) ->
    let f1' = apply_func t f1 and f2' = apply_func t f2 in
    if f1' == f1 && f2' == f2 then f else Nest (f1', f2')
  | Unnest (f1, f2) ->
    let f1' = apply_func t f1 and f2' = apply_func t f2 in
    if f1' == f1 && f2' == f2 then f else Unnest (f1', f2')
  | Kf v ->
    let v' = apply_value t v in
    if v' == v then f else Kf v'
  | Cf (f1, v) ->
    let f1' = apply_func t f1 and v' = apply_value t v in
    if f1' == f1 && v' == v then f else Cf (f1', v')
  | Con (p, f1, f2) ->
    let p' = apply_pred t p
    and f1' = apply_func t f1
    and f2' = apply_func t f2 in
    if p' == p && f1' == f1 && f2' == f2 then f else Con (p', f1', f2')
  | Iterate (p, f1) ->
    let p' = apply_pred t p and f1' = apply_func t f1 in
    if p' == p && f1' == f1 then f else Iterate (p', f1')
  | Iter (p, f1) ->
    let p' = apply_pred t p and f1' = apply_func t f1 in
    if p' == p && f1' == f1 then f else Iter (p', f1')
  | Join (p, f1) ->
    let p' = apply_pred t p and f1' = apply_func t f1 in
    if p' == p && f1' == f1 then f else Join (p', f1')

and apply_pred t p =
  match p with
  | Phole h -> (
    match find_pred t h with Some p' -> p' | None -> p)
  | Eq | Leq | Gt | In | Primp _ | Kp _ -> p
  | Oplus (p1, f) ->
    let p1' = apply_pred t p1 and f' = apply_func t f in
    if p1' == p1 && f' == f then p else Oplus (p1', f')
  | Andp (p1, p2) ->
    let p1' = apply_pred t p1 and p2' = apply_pred t p2 in
    if p1' == p1 && p2' == p2 then p else Andp (p1', p2')
  | Orp (p1, p2) ->
    let p1' = apply_pred t p1 and p2' = apply_pred t p2 in
    if p1' == p1 && p2' == p2 then p else Orp (p1', p2')
  | Inv p1 ->
    let p1' = apply_pred t p1 in
    if p1' == p1 then p else Inv p1'
  | Conv p1 ->
    let p1' = apply_pred t p1 in
    if p1' == p1 then p else Conv p1'
  | Cp (p1, v) ->
    let p1' = apply_pred t p1 and v' = apply_value t v in
    if p1' == p1 && v' == v then p else Cp (p1', v')

and apply_value t v =
  match v with
  | Value.Hole h -> (
    match find_value t h with Some v' -> v' | None -> v)
  | Value.Unit | Value.Bool _ | Value.Int _ | Value.Str _ | Value.Named _ -> v
  | Value.Pair (a, b) ->
    let a' = apply_value t a and b' = apply_value t b in
    if a' == a && b' == b then v else Value.Pair (a', b')
  | Value.Set xs ->
    (* Bound elements can change the sort order, so an actual substitution
       must go back through the canonicalizing constructor. *)
    let xs' = map_sharing (apply_value t) xs in
    if xs' == xs then v else Value.set xs'
  | Value.Bag xs ->
    let xs' = map_sharing (apply_value t) xs in
    if xs' == xs then v else Value.bag xs'
  | Value.List xs ->
    let xs' = map_sharing (apply_value t) xs in
    if xs' == xs then v else Value.list xs'
  | Value.Obj o ->
    let fields' =
      map_sharing
        (fun (k, x) ->
          let x' = apply_value t x in
          if x' == x then (k, x) else (k, x'))
        o.Value.fields
    in
    if fields' == o.Value.fields then v
    else Value.Obj { o with Value.fields = fields' }

let apply_value_plain = apply_value

let pp ppf t =
  let pf ppf (h, f) = Fmt.pf ppf "?%s := %a" h Pretty.pp_func f in
  let ppr ppf (h, p) = Fmt.pf ppf "?%s := %a" h Pretty.pp_pred p in
  let pv ppf (h, v) = Fmt.pf ppf "?%s := %a" h Value.pp v in
  Fmt.pf ppf "@[<v>%a%a%a@]" (Fmt.list pf) t.funcs (Fmt.list ppr) t.preds
    (Fmt.list pv) t.values

(* Interned substitutions: bindings hold hash-consed nodes, so the rebind
   consistency check is physical equality and instantiation short-circuits
   on the [*hole_free] bit — a pattern subtree without holes *is* its own
   instantiation.  Rebuilds go through the smart constructors and return
   the input node when no child changed, preserving maximal sharing. *)
module H = struct
  type plain = t

  type t = {
    funcs : (string * Hc.fnode) list;
    preds : (string * Hc.pnode) list;
    values : (string * Hc.vnode) list;
  }

  let empty = { funcs = []; preds = []; values = [] }

  (* Physical equality on interned nodes is structural equality, so these
     are exactly the legacy [bind_*] consistency checks, at O(1). *)
  let bind_func t h (f : Hc.fnode) =
    match List.assoc_opt h t.funcs with
    | Some f' -> if f == f' then Some t else None
    | None -> Some { t with funcs = (h, f) :: t.funcs }

  let bind_pred t h (p : Hc.pnode) =
    match List.assoc_opt h t.preds with
    | Some p' -> if p == p' then Some t else None
    | None -> Some { t with preds = (h, p) :: t.preds }

  let bind_value t h (v : Hc.vnode) =
    match List.assoc_opt h t.values with
    | Some v' -> if v == v' then Some t else None
    | None -> Some { t with values = (h, v) :: t.values }

  let find_func t h = List.assoc_opt h t.funcs
  let find_pred t h = List.assoc_opt h t.preds
  let find_value t h = List.assoc_opt h t.values

  let to_plain t : plain =
    {
      funcs = List.map (fun (h, f) -> (h, Hc.to_func f)) t.funcs;
      preds = List.map (fun (h, p) -> (h, Hc.to_pred p)) t.preds;
      values = List.map (fun (h, v) -> (h, Hc.to_value v)) t.values;
    }

  let rec apply_func t (f : Hc.fnode) =
    if f.Hc.fhole_free then f
    else
      match f.Hc.fshape with
      | Hc.HFhole h -> (
        match find_func t h with Some f' -> f' | None -> f)
      | Hc.HId | Hc.HPi1 | Hc.HPi2 | Hc.HPrim _ | Hc.HFlat | Hc.HSng
      | Hc.HArith _ | Hc.HAgg _ | Hc.HSetop _ -> f
      | Hc.HCompose (a, b) ->
        let a' = apply_func t a and b' = apply_func t b in
        if a' == a && b' == b then f else Hc.compose a' b'
      | Hc.HPairf (a, b) ->
        let a' = apply_func t a and b' = apply_func t b in
        if a' == a && b' == b then f else Hc.pairf a' b'
      | Hc.HTimes (a, b) ->
        let a' = apply_func t a and b' = apply_func t b in
        if a' == a && b' == b then f else Hc.times a' b'
      | Hc.HNest (a, b) ->
        let a' = apply_func t a and b' = apply_func t b in
        if a' == a && b' == b then f else Hc.nest a' b'
      | Hc.HUnnest (a, b) ->
        let a' = apply_func t a and b' = apply_func t b in
        if a' == a && b' == b then f else Hc.unnest a' b'
      | Hc.HKf v ->
        let v' = apply_value t v in
        if v' == v then f else Hc.kf v'
      | Hc.HCf (a, v) ->
        let a' = apply_func t a and v' = apply_value t v in
        if a' == a && v' == v then f else Hc.cf a' v'
      | Hc.HCon (p, a, b) ->
        let p' = apply_pred t p
        and a' = apply_func t a
        and b' = apply_func t b in
        if p' == p && a' == a && b' == b then f else Hc.con p' a' b'
      | Hc.HIterate (p, a) ->
        let p' = apply_pred t p and a' = apply_func t a in
        if p' == p && a' == a then f else Hc.iterate p' a'
      | Hc.HIter (p, a) ->
        let p' = apply_pred t p and a' = apply_func t a in
        if p' == p && a' == a then f else Hc.iter p' a'
      | Hc.HJoin (p, a) ->
        let p' = apply_pred t p and a' = apply_func t a in
        if p' == p && a' == a then f else Hc.join p' a'

  and apply_pred t (p : Hc.pnode) =
    if p.Hc.phole_free then p
    else
      match p.Hc.pshape with
      | Hc.HPhole h -> (
        match find_pred t h with Some p' -> p' | None -> p)
      | Hc.HEq | Hc.HLeq | Hc.HGt | Hc.HIn | Hc.HPrimp _ | Hc.HKp _ -> p
      | Hc.HOplus (q, f) ->
        let q' = apply_pred t q and f' = apply_func t f in
        if q' == q && f' == f then p else Hc.oplus q' f'
      | Hc.HAndp (q, r) ->
        let q' = apply_pred t q and r' = apply_pred t r in
        if q' == q && r' == r then p else Hc.andp q' r'
      | Hc.HOrp (q, r) ->
        let q' = apply_pred t q and r' = apply_pred t r in
        if q' == q && r' == r then p else Hc.orp q' r'
      | Hc.HInv q ->
        let q' = apply_pred t q in
        if q' == q then p else Hc.inv q'
      | Hc.HConv q ->
        let q' = apply_pred t q in
        if q' == q then p else Hc.conv q'
      | Hc.HCp (q, v) ->
        let q' = apply_pred t q and v' = apply_value t v in
        if q' == q && v' == v then p else Hc.cp q' v'

  and apply_value t (v : Hc.vnode) =
    if v.Hc.vhole_free then v
    else
      match v.Hc.vshape with
      | Hc.HVhole h -> (
        match find_value t h with Some v' -> v' | None -> v)
      | Hc.HVpair (a, b) ->
        let a' = apply_value t a and b' = apply_value t b in
        if a' == a && b' == b then v else Hc.vpair a' b'
      (* Substituting under a set can change the sort order, so collection
         and object shapes with holes take the plain (canonicalizing) path
         and re-intern; value patterns this deep are rare and cold. *)
      | Hc.HVset _ | Hc.HVbag _ | Hc.HVlist _ | Hc.HVobj _ ->
        Hc.of_value (apply_value_plain (to_plain t) (Hc.to_value v))
      | Hc.HVunit | Hc.HVbool _ | Hc.HVint _ | Hc.HVstr _ | Hc.HVnamed _ -> v
end

(* Head-symbol rule indexing.

   KOLA's variable-free patterns make rule applicability a pure structural
   match, so a rule can only fire at a node whose root constructor equals
   its pattern's root constructor (composition chains are matched modulo
   associativity, but still only at [Compose] nodes).  The index buckets
   every rule by that head symbol once, and the engine then dispatches each
   node to its bucket instead of attempting the whole catalog — the paper's
   "matching is linear in the pattern size" property, extended to "dispatch
   is constant in the catalog size".

   Rules whose pattern is rooted at a hole match anything of their sort and
   live in a wildcard bucket that every lookup includes.  Query rules are
   only ever tried at the query level and are kept aside unbucketed.
   Candidate lists preserve catalog order, so an indexed engine fires
   exactly the rule the naive engine would. *)

open Kola.Term

type head =
  | HId
  | HPi1
  | HPi2
  | HPrim
  | HCompose
  | HPairf
  | HTimes
  | HKf
  | HCf
  | HCon
  | HArith
  | HAgg
  | HSetop
  | HSng
  | HFlat
  | HIterate
  | HIter
  | HJoin
  | HNest
  | HUnnest
  | HEq
  | HLeq
  | HGt
  | HIn
  | HPrimp
  | HOplus
  | HAndp
  | HOrp
  | HInv
  | HConv
  | HKp
  | HCp

let head_of_func = function
  | Id -> Some HId
  | Pi1 -> Some HPi1
  | Pi2 -> Some HPi2
  | Prim _ -> Some HPrim
  | Compose _ -> Some HCompose
  | Pairf _ -> Some HPairf
  | Times _ -> Some HTimes
  | Kf _ -> Some HKf
  | Cf _ -> Some HCf
  | Con _ -> Some HCon
  | Arith _ -> Some HArith
  | Agg _ -> Some HAgg
  | Setop _ -> Some HSetop
  | Sng -> Some HSng
  | Flat -> Some HFlat
  | Iterate _ -> Some HIterate
  | Iter _ -> Some HIter
  | Join _ -> Some HJoin
  | Nest _ -> Some HNest
  | Unnest _ -> Some HUnnest
  | Fhole _ -> None

let head_of_pred = function
  | Eq -> Some HEq
  | Leq -> Some HLeq
  | Gt -> Some HGt
  | In -> Some HIn
  | Primp _ -> Some HPrimp
  | Oplus _ -> Some HOplus
  | Andp _ -> Some HAndp
  | Orp _ -> Some HOrp
  | Inv _ -> Some HInv
  | Conv _ -> Some HConv
  | Kp _ -> Some HKp
  | Cp _ -> Some HCp
  | Phole _ -> None

(* [head = None] marks a hole-rooted (wildcard) pattern. *)
type entry = { head : head option; rule : Rule.t }

type t = {
  fun_entries : entry list;  (** function rules, catalog order *)
  pred_entries : entry list;  (** predicate rules, catalog order *)
  query_rules : Rule.t list;
  rules : Rule.t list;  (** the original list, original order *)
  fun_cache : (head, Rule.t list) Hashtbl.t;
  pred_cache : (head, Rule.t list) Hashtbl.t;
}

let build rules =
  let fun_entries, pred_entries, query_rules =
    List.fold_left
      (fun (fs, ps, qs) r ->
        match r.Rule.body with
        | Rule.Fun_rule (lhs, _) ->
          ({ head = head_of_func lhs; rule = r } :: fs, ps, qs)
        | Rule.Pred_rule (lhs, _) ->
          (fs, { head = head_of_pred lhs; rule = r } :: ps, qs)
        | Rule.Query_rule _ -> (fs, ps, r :: qs))
      ([], [], []) rules
  in
  {
    fun_entries = List.rev fun_entries;
    pred_entries = List.rev pred_entries;
    query_rules = List.rev query_rules;
    rules;
    fun_cache = Hashtbl.create 16;
    pred_cache = Hashtbl.create 16;
  }

let rules t = t.rules
let query_rules t = t.query_rules

(* Bucket lookup, memoized per head: rules whose pattern head is [h] plus
   the wildcards, in catalog order. *)
let bucket cache entries h =
  match Hashtbl.find_opt cache h with
  | Some rs -> rs
  | None ->
    let rs =
      List.filter_map
        (fun e ->
          match e.head with
          | None -> Some e.rule
          | Some h' -> if h' = h then Some e.rule else None)
        entries
    in
    Hashtbl.add cache h rs;
    rs

let all_of entries = List.map (fun e -> e.rule) entries

let candidates_func t f =
  match head_of_func f with
  | Some h -> bucket t.fun_cache t.fun_entries h
  | None -> all_of t.fun_entries

let candidates_pred t p =
  match head_of_pred p with
  | Some h -> bucket t.pred_cache t.pred_entries h
  | None -> all_of t.pred_entries

(* ------------------------------------------------------------------ *)
(* Whole-term head presence, for per-rule enumeration (the optimizer's
   successor function walks the term once per rule; a rule whose head
   occurs nowhere in the term can be skipped without walking). *)

type presence = (head, unit) Hashtbl.t

let presence_of_func f : presence =
  let tbl = Hashtbl.create 32 in
  let addf f =
    match head_of_func f with Some h -> Hashtbl.replace tbl h () | None -> ()
  in
  let addp p =
    match head_of_pred p with Some h -> Hashtbl.replace tbl h () | None -> ()
  in
  let rec gof f =
    addf f;
    match f with
    | Id | Pi1 | Pi2 | Prim _ | Flat | Sng | Arith _ | Agg _ | Setop _ | Kf _
    | Fhole _ -> ()
    | Compose (a, b) | Pairf (a, b) | Times (a, b) | Nest (a, b)
    | Unnest (a, b) ->
      gof a;
      gof b
    | Cf (a, _) -> gof a
    | Con (p, a, b) ->
      gop p;
      gof a;
      gof b
    | Iterate (p, a) | Iter (p, a) | Join (p, a) ->
      gop p;
      gof a
  and gop p =
    addp p;
    match p with
    | Eq | Leq | Gt | In | Primp _ | Kp _ | Phole _ -> ()
    | Oplus (q, f) ->
      gop q;
      gof f
    | Andp (q, r) | Orp (q, r) ->
      gop q;
      gop r
    | Inv q | Conv q -> gop q
    | Cp (q, _) -> gop q
  in
  gof f;
  tbl

let presence_of_query (q : query) = presence_of_func q.body

(* Can [r] possibly fire somewhere in a term with head set [pres]?  Query
   rules and wildcard patterns always may; otherwise the pattern head must
   occur. *)
let may_fire (pres : presence) (r : Rule.t) =
  match r.Rule.body with
  | Rule.Query_rule _ -> true
  | Rule.Fun_rule (lhs, _) -> (
    match head_of_func lhs with
    | None -> true
    | Some h -> Hashtbl.mem pres h)
  | Rule.Pred_rule (lhs, _) -> (
    match head_of_pred lhs with
    | None -> true
    | Some h -> Hashtbl.mem pres h)

(* ------------------------------------------------------------------ *)
(* Interned dispatch: hash-consed nodes carry their head constructor in
   [fshape]/[pshape] and the set of heads occurring anywhere beneath them
   as a precomputed bitmask ([fheads]/[pheads]), so bucket lookup needs no
   [head_of_*] walk and whole-term presence is a single [land] instead of
   building a hashtable per state. *)

(* Bit positions must agree with [Kola.Term.Hc.fshape_bit]/[pshape_bit]
   (func heads at bits 0-19 in declaration order, pred heads at 20-31);
   test_hashcons pins the correspondence against [presence_of_query]. *)
let head_bit = function
  | HId -> 1 lsl 0
  | HPi1 -> 1 lsl 1
  | HPi2 -> 1 lsl 2
  | HPrim -> 1 lsl 3
  | HCompose -> 1 lsl 4
  | HPairf -> 1 lsl 5
  | HTimes -> 1 lsl 6
  | HKf -> 1 lsl 7
  | HCf -> 1 lsl 8
  | HCon -> 1 lsl 9
  | HArith -> 1 lsl 10
  | HAgg -> 1 lsl 11
  | HSetop -> 1 lsl 12
  | HSng -> 1 lsl 13
  | HFlat -> 1 lsl 14
  | HIterate -> 1 lsl 15
  | HIter -> 1 lsl 16
  | HJoin -> 1 lsl 17
  | HNest -> 1 lsl 18
  | HUnnest -> 1 lsl 19
  | HEq -> 1 lsl 20
  | HLeq -> 1 lsl 21
  | HGt -> 1 lsl 22
  | HIn -> 1 lsl 23
  | HPrimp -> 1 lsl 24
  | HOplus -> 1 lsl 25
  | HAndp -> 1 lsl 26
  | HOrp -> 1 lsl 27
  | HInv -> 1 lsl 28
  | HConv -> 1 lsl 29
  | HKp -> 1 lsl 30
  | HCp -> 1 lsl 31

let head_of_fshape : Hc.fshape -> head option = function
  | Hc.HId -> Some HId
  | Hc.HPi1 -> Some HPi1
  | Hc.HPi2 -> Some HPi2
  | Hc.HPrim _ -> Some HPrim
  | Hc.HCompose _ -> Some HCompose
  | Hc.HPairf _ -> Some HPairf
  | Hc.HTimes _ -> Some HTimes
  | Hc.HKf _ -> Some HKf
  | Hc.HCf _ -> Some HCf
  | Hc.HCon _ -> Some HCon
  | Hc.HArith _ -> Some HArith
  | Hc.HAgg _ -> Some HAgg
  | Hc.HSetop _ -> Some HSetop
  | Hc.HSng -> Some HSng
  | Hc.HFlat -> Some HFlat
  | Hc.HIterate _ -> Some HIterate
  | Hc.HIter _ -> Some HIter
  | Hc.HJoin _ -> Some HJoin
  | Hc.HNest _ -> Some HNest
  | Hc.HUnnest _ -> Some HUnnest
  | Hc.HFhole _ -> None

let head_of_pshape : Hc.pshape -> head option = function
  | Hc.HEq -> Some HEq
  | Hc.HLeq -> Some HLeq
  | Hc.HGt -> Some HGt
  | Hc.HIn -> Some HIn
  | Hc.HPrimp _ -> Some HPrimp
  | Hc.HOplus _ -> Some HOplus
  | Hc.HAndp _ -> Some HAndp
  | Hc.HOrp _ -> Some HOrp
  | Hc.HInv _ -> Some HInv
  | Hc.HConv _ -> Some HConv
  | Hc.HKp _ -> Some HKp
  | Hc.HCp _ -> Some HCp
  | Hc.HPhole _ -> None

let candidates_hfunc t (f : Hc.fnode) =
  match head_of_fshape f.Hc.fshape with
  | Some h -> bucket t.fun_cache t.fun_entries h
  | None -> all_of t.fun_entries

let candidates_hpred t (p : Hc.pnode) =
  match head_of_pshape p.Hc.pshape with
  | Some h -> bucket t.pred_cache t.pred_entries h
  | None -> all_of t.pred_entries

(* The head bit a subtree must contain for [r] to fire anywhere inside
   it; [0] when the pattern has no fixed head (every subtree remains a
   candidate). *)
let rule_head_mask (r : Rule.t) =
  match r.Rule.body with
  | Rule.Query_rule _ -> 0
  | Rule.Fun_rule (lhs, _) -> (
    match head_of_func lhs with None -> 0 | Some h -> head_bit h)
  | Rule.Pred_rule (lhs, _) -> (
    match head_of_pred lhs with None -> 0 | Some h -> head_bit h)

(* [may_fire] against a head bitmask (a state body's [fheads]); same
   verdicts as the presence-table variant, without the per-state walk. *)
let mask_may_fire (mask : int) (r : Rule.t) =
  let m = rule_head_mask r in
  m = 0 || mask land m <> 0

(* One-way matching of rule patterns against (sub)terms.

   This is the "unification" of the paper's Section 2.3 discussion: because
   KOLA terms are variable-free, structural matching with consistent hole
   binding is the *entire* applicability test — no environmental analysis,
   no head routines.  Matching is linear in the pattern size. *)

open Kola
open Kola.Term

let rec func subst pat t =
  match pat, t with
  | Fhole h, _ -> Subst.bind_func subst h t
  | Id, Id | Pi1, Pi1 | Pi2, Pi2 | Flat, Flat | Sng, Sng -> Some subst
  | Prim a, Prim b when String.equal a b -> Some subst
  (* Compositions match modulo associativity: both chains are flattened and
     matched elementwise, except that a bare hole element may absorb any
     non-empty run of consecutive target elements (the paper's rule 17 binds
     g to whatever processing follows the inner loop, however long). *)
  | Compose _, Compose _ -> chain_match subst (unchain pat) (unchain t)
  | Pairf (p1, p2), Pairf (t1, t2)
  | Times (p1, p2), Times (t1, t2)
  | Nest (p1, p2), Nest (t1, t2)
  | Unnest (p1, p2), Unnest (t1, t2) ->
    Option.bind (func subst p1 t1) (fun s -> func s p2 t2)
  | Kf pv, Kf tv -> value subst pv tv
  | Cf (p1, pv), Cf (t1, tv) ->
    Option.bind (func subst p1 t1) (fun s -> value s pv tv)
  | Con (pp, p1, p2), Con (tp, t1, t2) ->
    Option.bind (pred subst pp tp) (fun s ->
        Option.bind (func s p1 t1) (fun s -> func s p2 t2))
  | Arith a, Arith b when a = b -> Some subst
  | Agg a, Agg b when a = b -> Some subst
  | Setop a, Setop b when a = b -> Some subst
  | Iterate (pp, p1), Iterate (tp, t1)
  | Iter (pp, p1), Iter (tp, t1)
  | Join (pp, p1), Join (tp, t1) ->
    Option.bind (pred subst pp tp) (fun s -> func s p1 t1)
  | ( ( Id | Pi1 | Pi2 | Prim _ | Compose _ | Pairf _ | Times _ | Kf _ | Cf _
      | Con _ | Arith _ | Agg _ | Setop _ | Flat | Sng | Iterate _ | Iter _
      | Join _ | Nest _ | Unnest _ ),
      _ ) -> None

(* Match a flattened pattern chain against a flattened target chain.  Bare
   hole elements may absorb one or more consecutive target elements; all
   other elements match exactly one.  Backtracks over absorption lengths. *)
and chain_match subst lps tps =
  match lps, tps with
  | [], [] -> Some subst
  | [], _ :: _ | _ :: _, [] -> None
  | Fhole h :: lrest, _ ->
    let n = List.length tps in
    let max_take = n - List.length lrest in
    let rec try_take k =
      if k > max_take then None
      else
        let rec split i acc = function
          | rest when i = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | x :: rest -> split (i - 1) (x :: acc) rest
        in
        let taken, rest = split k [] tps in
        match Subst.bind_func subst h (chain taken) with
        | Some s -> (
          match chain_match s lrest rest with
          | Some _ as res -> res
          | None -> try_take (k + 1))
        | None -> try_take (k + 1)
    in
    try_take 1
  | lp :: lrest, tp :: trest ->
    Option.bind (func subst lp tp) (fun s -> chain_match s lrest trest)

and pred subst pat t =
  match pat, t with
  | Phole h, _ -> Subst.bind_pred subst h t
  | Eq, Eq | Leq, Leq | Gt, Gt | In, In -> Some subst
  | Primp a, Primp b when String.equal a b -> Some subst
  | Oplus (pp, pf), Oplus (tp, tf) ->
    Option.bind (pred subst pp tp) (fun s -> func s pf tf)
  | Andp (p1, p2), Andp (t1, t2) | Orp (p1, p2), Orp (t1, t2) ->
    Option.bind (pred subst p1 t1) (fun s -> pred s p2 t2)
  | Inv p1, Inv t1 | Conv p1, Conv t1 -> pred subst p1 t1
  | Kp a, Kp b when Bool.equal a b -> Some subst
  | Cp (p1, pv), Cp (t1, tv) ->
    Option.bind (pred subst p1 t1) (fun s -> value s pv tv)
  | ( ( Eq | Leq | Gt | In | Primp _ | Oplus _ | Andp _ | Orp _ | Inv _
      | Conv _ | Kp _ | Cp _ ),
      _ ) -> None

and value subst pat t =
  match pat with
  | Value.Hole h -> Subst.bind_value subst h t
  | _ ->
    (* Non-hole value patterns must match exactly; patterns do not descend
       into the structure of sets and objects. *)
    let pat = Subst.apply_value subst pat in
    if Value.is_ground pat && Value.equal pat t then Some subst
    else
      match pat, t with
      | Value.Pair (p1, p2), Value.Pair (t1, t2) ->
        Option.bind (value subst p1 t1) (fun s -> value s p2 t2)
      | _ -> None

let func_matches pat t = Option.is_some (func Subst.empty pat t)
let pred_matches pat t = Option.is_some (pred Subst.empty pat t)

(* ------------------------------------------------------------------ *)
(* Matching over hash-consed nodes: the same one-way matching, with two
   short-circuits the interned representation makes sound.

   A hole-free pattern binds nothing, so it matches a target iff the two
   are equal modulo ∘-associativity.  Physically equal nodes therefore
   match immediately; physically distinct ones can only match through
   chain reassociation, which requires a [Compose] somewhere in the
   pattern — a hole-free pattern whose [fheads] has no [Compose] bit
   matches purely structurally, and structural equality of interned nodes
   *is* physical equality, so the mismatch is decided in O(1).  Patterns
   with a [Compose] fall through to the full walk, whose recursive calls
   re-enter the fast path at every level. *)

let rec hfunc subst (pat : Hc.fnode) (t : Hc.fnode) =
  if pat.Hc.fhole_free then
    if pat == t then Some subst
    else if pat.Hc.fheads land Hc.compose_mask = 0 then None
    else hfunc_walk subst pat t
  else hfunc_walk subst pat t

and hfunc_walk subst pat t =
  match pat.Hc.fshape, t.Hc.fshape with
  | Hc.HFhole h, _ -> Subst.H.bind_func subst h t
  | Hc.HId, Hc.HId
  | Hc.HPi1, Hc.HPi1
  | Hc.HPi2, Hc.HPi2
  | Hc.HFlat, Hc.HFlat
  | Hc.HSng, Hc.HSng -> Some subst
  | Hc.HPrim a, Hc.HPrim b when String.equal a b -> Some subst
  | Hc.HCompose _, Hc.HCompose _ ->
    hchain_match subst (Hc.unchain pat) (Hc.unchain t)
  | Hc.HPairf (p1, p2), Hc.HPairf (t1, t2)
  | Hc.HTimes (p1, p2), Hc.HTimes (t1, t2)
  | Hc.HNest (p1, p2), Hc.HNest (t1, t2)
  | Hc.HUnnest (p1, p2), Hc.HUnnest (t1, t2) ->
    Option.bind (hfunc subst p1 t1) (fun s -> hfunc s p2 t2)
  | Hc.HKf pv, Hc.HKf tv -> hvalue subst pv tv
  | Hc.HCf (p1, pv), Hc.HCf (t1, tv) ->
    Option.bind (hfunc subst p1 t1) (fun s -> hvalue s pv tv)
  | Hc.HCon (pp, p1, p2), Hc.HCon (tp, t1, t2) ->
    Option.bind (hpred subst pp tp) (fun s ->
        Option.bind (hfunc s p1 t1) (fun s -> hfunc s p2 t2))
  | Hc.HArith a, Hc.HArith b when a = b -> Some subst
  | Hc.HAgg a, Hc.HAgg b when a = b -> Some subst
  | Hc.HSetop a, Hc.HSetop b when a = b -> Some subst
  | Hc.HIterate (pp, p1), Hc.HIterate (tp, t1)
  | Hc.HIter (pp, p1), Hc.HIter (tp, t1)
  | Hc.HJoin (pp, p1), Hc.HJoin (tp, t1) ->
    Option.bind (hpred subst pp tp) (fun s -> hfunc s p1 t1)
  | _, _ -> None

and hchain_match subst lps tps =
  match lps, tps with
  | [], [] -> Some subst
  | [], _ :: _ | _ :: _, [] -> None
  | lp :: lrest, _ -> (
    match lp.Hc.fshape with
    | Hc.HFhole h ->
      let n = List.length tps in
      let max_take = n - List.length lrest in
      let rec try_take k =
        if k > max_take then None
        else
          let rec split i acc = function
            | rest when i = 0 -> (List.rev acc, rest)
            | [] -> (List.rev acc, [])
            | x :: rest -> split (i - 1) (x :: acc) rest
          in
          let taken, rest = split k [] tps in
          match Subst.H.bind_func subst h (Hc.chain taken) with
          | Some s -> (
            match hchain_match s lrest rest with
            | Some _ as res -> res
            | None -> try_take (k + 1))
          | None -> try_take (k + 1)
      in
      try_take 1
    | _ -> (
      match tps with
      | tp :: trest ->
        Option.bind (hfunc subst lp tp) (fun s -> hchain_match s lrest trest)
      | [] -> None))

and hpred subst (pat : Hc.pnode) (t : Hc.pnode) =
  if pat.Hc.phole_free then
    if pat == t then Some subst
    else if pat.Hc.pheads land Hc.compose_mask = 0 then None
    else hpred_walk subst pat t
  else hpred_walk subst pat t

and hpred_walk subst pat t =
  match pat.Hc.pshape, t.Hc.pshape with
  | Hc.HPhole h, _ -> Subst.H.bind_pred subst h t
  | Hc.HEq, Hc.HEq | Hc.HLeq, Hc.HLeq | Hc.HGt, Hc.HGt | Hc.HIn, Hc.HIn ->
    Some subst
  | Hc.HPrimp a, Hc.HPrimp b when String.equal a b -> Some subst
  | Hc.HOplus (pp, pf), Hc.HOplus (tp, tf) ->
    Option.bind (hpred subst pp tp) (fun s -> hfunc s pf tf)
  | Hc.HAndp (p1, p2), Hc.HAndp (t1, t2)
  | Hc.HOrp (p1, p2), Hc.HOrp (t1, t2) ->
    Option.bind (hpred subst p1 t1) (fun s -> hpred s p2 t2)
  | Hc.HInv p1, Hc.HInv t1 | Hc.HConv p1, Hc.HConv t1 -> hpred subst p1 t1
  | Hc.HKp a, Hc.HKp b when Bool.equal a b -> Some subst
  | Hc.HCp (p1, pv), Hc.HCp (t1, tv) ->
    Option.bind (hpred subst p1 t1) (fun s -> hvalue s pv tv)
  | _, _ -> None

and hvalue subst (pat : Hc.vnode) (t : Hc.vnode) =
  match pat.Hc.vshape with
  | Hc.HVhole h -> Subst.H.bind_value subst h t
  | _ -> (
    let pat = Subst.H.apply_value subst pat in
    if pat.Hc.vhole_free && pat == t then Some subst
    else
      match pat.Hc.vshape, t.Hc.vshape with
      | Hc.HVpair (p1, p2), Hc.HVpair (t1, t2) ->
        Option.bind (hvalue subst p1 t1) (fun s -> hvalue s p2 t2)
      | _ -> None)

(** Strategy combinators for applying rules throughout a term.

    A strategy is a partial transformation on targets (functions or
    predicates); [None] means "did not apply".  Strategies descend through
    every syntactic position where a function or predicate occurs. *)

type target = F of Kola.Term.func | P of Kola.Term.pred
type t = target -> target option

val as_f : target -> Kola.Term.func option
val as_p : target -> Kola.Term.pred option
val of_fun_rewrite : (Kola.Term.func -> Kola.Term.func option) -> t
val of_pred_rewrite : (Kola.Term.pred -> Kola.Term.pred option) -> t

val of_rule : ?schema:Kola.Schema.t -> Rule.t -> t
(** The rule applied at the root of the target. *)

val of_index : ?schema:Kola.Schema.t -> Index.t -> t
(** First rule (in catalog order) that applies, dispatching each target
    through the head-symbol index so only rules whose pattern head can
    match the node are attempted. *)

val of_rules : ?schema:Kola.Schema.t -> Rule.t list -> t
(** First rule (in list order) that applies.  Builds a head-symbol index
    over the rules once at closure-creation time; partially apply it to
    reuse the index across targets. *)

val fail : t
val id_strategy : t
val seq : t -> t -> t
val choice : t -> t -> t
val choice_all : t list -> t

val attempt : t -> t
(** Always succeeds; identity on failure. *)

val repeat : ?fuel:int -> t -> t
(** Apply while applicable; succeeds iff it applied at least once. *)

val one_child : t -> t
(** Apply to the first child position (left to right) where it succeeds. *)

val once_topdown : t -> t
(** Apply once, at the outermost (leftmost) matching position. *)

val once_bottomup : t -> t

val fixpoint : ?fuel:int -> t -> t
(** Exhaustively apply anywhere (leftmost-outermost) until no position
    matches. *)

val normalize : ?fuel:int -> t -> t
(** [attempt (fixpoint s)]. *)

val apply_func : t -> Kola.Term.func -> Kola.Term.func option
val apply_pred : t -> Kola.Term.pred -> Kola.Term.pred option

(** Strategies over hash-consed nodes.  [one_child] mirrors the plain
    traversal position-for-position (left to right, predicate before
    function children, no descent into constant values), so an interned
    [once_topdown] visits exactly the positions the plain one does, in the
    same order. *)
module H : sig
  type target = F of Kola.Term.Hc.fnode | P of Kola.Term.Hc.pnode
  type t = target -> target option

  val as_f : target -> Kola.Term.Hc.fnode option
  val as_p : target -> Kola.Term.Hc.pnode option

  val of_rule : ?schema:Kola.Schema.t -> Rule.t -> t
  (** The rule applied at the root of the target. *)

  val choice : t -> t -> t
  val one_child : t -> t
  val once_topdown : t -> t

  val once_topdown_masked : mask:int -> t -> t
  (** [once_topdown], skipping subtrees whose head bitmask
      ([fheads]/[pheads]) has no bit of [mask] — O(1) per skipped subtree
      instead of a walk.  With [mask] = {!Index.rule_head_mask} of the
      rule being applied, it visits the same matching positions in the
      same order as [once_topdown]; [mask = 0] disables pruning. *)

  val apply_func : t -> Kola.Term.Hc.fnode -> Kola.Term.Hc.fnode option
  val apply_pred : t -> Kola.Term.Hc.pnode -> Kola.Term.Hc.pnode option
end

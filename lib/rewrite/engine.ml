(* The rewriting engine: repeatedly fires rules from a set anywhere in a
   query, recording a trace.  The trace lets tests check the *derivations*
   of Figures 4 and 6, not just their end points, and gives the optimizer
   an explanation facility.

   Two dispatch paths exist.  The naive path attempts every rule of the
   right sort at every node, in catalog order.  The indexed path routes
   each node through {!Index} so only rules whose pattern head can match
   are attempted — same firings, same trace, fewer attempts.  [run] indexes
   by default; the naive path is kept as the measured baseline. *)

open Kola
open Kola.Term
module Telemetry = Kola_telemetry.Telemetry

(* Per-rule attribution: one counter per rule name, built only when a
   telemetry session is active so the disabled path allocates nothing. *)
let note_attempt name fired =
  if Telemetry.enabled () then
    Telemetry.count ((if fired then "rule.fire." else "rule.miss.") ^ name)

type step = {
  rule_name : string;
  result : query;  (** whole query after the firing *)
}

type trace = step list

type stats = {
  firings : int;
  attempts : int;
      (** rules actually tried: for each node visited, each candidate rule
          of the node's sort attempted before (and including) the one that
          fired.  Query rules count once per step, function (predicate)
          rules once per function (predicate) node attempted.  Rules of the
          wrong sort for a node — or, under the index, rules whose head
          cannot match it — are not counted: they are dismissed by
          dispatch, not tried. *)
}

type outcome = { query : query; trace : trace; stats : stats }

let pp_trace ppf trace =
  List.iter
    (fun s ->
      Fmt.pf ppf "  --%s--> %a@." s.rule_name Pretty.pp_query s.result)
    trace

(* Shared stepping core: given the query rules and a per-target candidate
   function, apply the first rule that fires anywhere in the query,
   outermost first; query rules are tried at the query level first.
   [counter] accumulates rule-at-node attempts — the unification cost. *)
let step_with ?schema ~counter ~query_rules ~candidates (q : query) :
    (string * query) option =
  let attempts = counter in
  let from_query_rules =
    List.find_map
      (fun r ->
        incr attempts;
        let res =
          Option.map (fun q' -> (r.Rule.name, q')) (Rule.apply_query ?schema r q)
        in
        note_attempt r.Rule.name (res <> None);
        res)
      query_rules
  in
  match from_query_rules with
  | Some _ as res -> res
  | None ->
    let strat tgt =
      List.find_map
        (fun r ->
          incr attempts;
          let res =
            Option.map (fun t -> (r.Rule.name, t))
              (Strategy.of_rule ?schema r tgt)
          in
          note_attempt r.Rule.name (res <> None);
          res)
        (candidates tgt)
    in
    let named = ref "" in
    let s tgt =
      Telemetry.count "engine.positions";
      match strat tgt with
      | Some (name, t) ->
        named := name;
        Some t
      | None -> None
    in
    Option.map
      (fun body -> (!named, { q with body }))
      (Strategy.apply_func (Strategy.once_topdown s) q.body)

(* Split out the rules a target of each sort can try: function rules for
   function nodes, predicate rules for predicate nodes. *)
let partition_rules rules =
  let fun_rules =
    List.filter
      (fun r -> match r.Rule.body with Rule.Fun_rule _ -> true | _ -> false)
      rules
  in
  let pred_rules =
    List.filter
      (fun r -> match r.Rule.body with Rule.Pred_rule _ -> true | _ -> false)
      rules
  in
  let query_rules =
    List.filter
      (fun r -> match r.Rule.body with Rule.Query_rule _ -> true | _ -> false)
      rules
  in
  (fun_rules, pred_rules, query_rules)

let step_once ?schema ?(counter = ref 0) (rules : Rule.t list) (q : query) :
    (string * query) option =
  let fun_rules, pred_rules, query_rules = partition_rules rules in
  let candidates = function
    | Strategy.F _ -> fun_rules
    | Strategy.P _ -> pred_rules
  in
  step_with ?schema ~counter ~query_rules ~candidates q

let step_once_indexed ?schema ?(counter = ref 0) (index : Index.t) (q : query)
    : (string * query) option =
  let candidates = function
    | Strategy.F f -> Index.candidates_func index f
    | Strategy.P p -> Index.candidates_pred index p
  in
  step_with ?schema ~counter ~query_rules:(Index.query_rules index) ~candidates
    q

(* Normalize [q] under [rules], up to [fuel] firings.  The head-symbol
   index is built once and reused across firings; pass [~indexed:false] for
   the naive baseline. *)
let run ?schema ?(fuel = 10_000) ?(indexed = true) (rules : Rule.t list)
    (q : query) : outcome =
  Telemetry.span "engine.run" @@ fun () ->
  let counter = ref 0 in
  let step =
    if indexed then
      let index = Index.build rules in
      step_once_indexed ?schema ~counter index
    else step_once ?schema ~counter rules
  in
  let rec go n q trace firings =
    if n = 0 then (q, trace, firings)
    else
      match step q with
      | Some (name, q') ->
        go (n - 1) q' ({ rule_name = name; result = q' } :: trace) (firings + 1)
      | None -> (q, trace, firings)
  in
  let q', trace, firings = go fuel q [] 0 in
  {
    query = q';
    trace = List.rev trace;
    stats = { firings; attempts = !counter };
  }

(* Same, over a bare function (no query argument), used when transforming
   subplans. *)
let run_func ?schema ?(fuel = 10_000) ?indexed rules f =
  let outcome = run ?schema ~fuel ?indexed rules (query f Value.Unit) in
  (outcome.query.body, outcome.trace)

let fired_rules outcome = List.map (fun s -> s.rule_name) outcome.trace

(* ------------------------------------------------------------------ *)
(* Interned stepping: the indexed path over hash-consed nodes.  Rule-try
   order, traversal order and the attempts counter semantics are those of
   [step_once_indexed] exactly, so firings, trace and stats coincide with
   the plain indexed engine — only the per-node match/substitution costs
   change. *)

let step_with_hc ?schema ~counter ~query_rules ~candidates (hq : Hc.hquery) :
    (string * Hc.hquery) option =
  let attempts = counter in
  let from_query_rules =
    List.find_map
      (fun r ->
        incr attempts;
        let res =
          Option.map
            (fun hq' -> (r.Rule.name, hq'))
            (Rule.apply_hquery ?schema r hq)
        in
        note_attempt r.Rule.name (res <> None);
        res)
      query_rules
  in
  match from_query_rules with
  | Some _ as res -> res
  | None ->
    let strat tgt =
      List.find_map
        (fun r ->
          incr attempts;
          let res =
            Option.map (fun t -> (r.Rule.name, t))
              (Strategy.H.of_rule ?schema r tgt)
          in
          note_attempt r.Rule.name (res <> None);
          res)
        (candidates tgt)
    in
    let named = ref "" in
    let s tgt =
      Telemetry.count "engine.positions";
      match strat tgt with
      | Some (name, t) ->
        named := name;
        Some t
      | None -> None
    in
    Option.map
      (fun hbody -> (!named, { hq with Hc.hbody }))
      (Strategy.H.apply_func (Strategy.H.once_topdown s) hq.Hc.hbody)

let step_once_hc ?schema ?(counter = ref 0) (index : Index.t) (hq : Hc.hquery)
    : (string * Hc.hquery) option =
  let candidates = function
    | Strategy.H.F f -> Index.candidates_hfunc index f
    | Strategy.H.P p -> Index.candidates_hpred index p
  in
  step_with_hc ?schema ~counter ~query_rules:(Index.query_rules index)
    ~candidates hq

(* Normalize on the interned representation; outcome (trace, stats)
   identical to [run ~indexed:true]. *)
let run_hc ?schema ?(fuel = 10_000) (rules : Rule.t list) (q : query) : outcome
    =
  Telemetry.span "engine.run_hc" @@ fun () ->
  let counter = ref 0 in
  let index = Index.build rules in
  let step = step_once_hc ?schema ~counter index in
  let rec go n hq trace firings =
    if n = 0 then (hq, trace, firings)
    else
      match step hq with
      | Some (name, hq') ->
        go (n - 1) hq'
          ({ rule_name = name; result = Hc.to_query hq' } :: trace)
          (firings + 1)
      | None -> (hq, trace, firings)
  in
  let hq', trace, firings = go fuel (Hc.of_query q) [] 0 in
  {
    query = Hc.to_query hq';
    trace = List.rev trace;
    stats = { firings; attempts = !counter };
  }

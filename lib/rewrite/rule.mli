(** Declarative rewrite rules over KOLA terms.

    A rule is a pair of patterns plus optional precondition properties on
    the functions its holes bind — never code, which is the paper's thesis.
    Three kinds exist: over functions, over predicates, and over whole
    queries (rule 19 moves a constant set into the query argument, so it
    cannot be a pure function rule). *)

type body =
  | Fun_rule of Kola.Term.func * Kola.Term.func
  | Pred_rule of Kola.Term.pred * Kola.Term.pred
  | Query_rule of
      (Kola.Term.func * Kola.Value.t) * (Kola.Term.func * Kola.Value.t)

(** The same patterns, interned; built lazily per rule via {!hbody}. *)
type hbody =
  | HFun_rule of Kola.Term.Hc.fnode * Kola.Term.Hc.fnode
  | HPred_rule of Kola.Term.Hc.pnode * Kola.Term.Hc.pnode
  | HQuery_rule of
      (Kola.Term.Hc.fnode * Kola.Term.Hc.vnode)
      * (Kola.Term.Hc.fnode * Kola.Term.Hc.vnode)

type precondition = { prop : Props.prop; hole : string }

type t = {
  name : string;
  description : string;
  body : body;
  preconditions : precondition list;
  mutable hbody_memo : hbody option;
      (** lazily interned [body]; managed by {!hbody}, reset by {!flip} *)
}

val make :
  ?preconditions:precondition list ->
  name:string -> description:string -> body -> t

val fun_rule :
  ?preconditions:precondition list ->
  name:string -> description:string ->
  Kola.Term.func -> Kola.Term.func -> t

val pred_rule :
  ?preconditions:precondition list ->
  name:string -> description:string ->
  Kola.Term.pred -> Kola.Term.pred -> t

val query_rule :
  ?preconditions:precondition list ->
  name:string -> description:string ->
  Kola.Term.func * Kola.Value.t -> Kola.Term.func * Kola.Value.t -> t

val flip : t -> t
(** The rule read right-to-left; its name gains a ["-1"] suffix, matching
    the paper's "rule i⁻¹" references. *)

val check_preconditions : Kola.Schema.t -> t -> Subst.t -> bool

val apply_func : ?schema:Kola.Schema.t -> t -> Kola.Term.func -> Kola.Term.func option
(** Apply at the root.  Composition chains are matched modulo
    associativity: when both pattern and target are chains, the pattern is
    matched against every window of consecutive target elements and the
    instantiated right-hand side is spliced back in. *)

val apply_pred : ?schema:Kola.Schema.t -> t -> Kola.Term.pred -> Kola.Term.pred option

val apply_query : ?schema:Kola.Schema.t -> t -> Kola.Term.query -> Kola.Term.query option
(** Query rules match the tail of the query's composition chain (the
    operator adjacent to the argument) together with the argument itself. *)

(** {1 Interned application}

    Mirrors of the plain [apply_*] over hash-consed nodes: same window
    enumeration, same absorption backtracking, same precondition reads — a
    rule fires on an interned node exactly when it fires on the plain view,
    producing the interned image of the same result. *)

val hbody : t -> hbody
(** The rule's patterns interned, memoized on first use (safe to race:
    every writer stores equivalent nodes). *)

val hcheck_preconditions : Kola.Schema.t -> t -> Subst.H.t -> bool

val apply_hfunc :
  ?schema:Kola.Schema.t -> t -> Kola.Term.Hc.fnode -> Kola.Term.Hc.fnode option

val apply_hpred :
  ?schema:Kola.Schema.t -> t -> Kola.Term.Hc.pnode -> Kola.Term.Hc.pnode option

val apply_hquery :
  ?schema:Kola.Schema.t ->
  t ->
  Kola.Term.Hc.hquery ->
  Kola.Term.Hc.hquery option

val pp : t Fmt.t

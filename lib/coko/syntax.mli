(** The COKO surface language (the follow-on language the paper announces).

    A COKO file holds textual rule definitions and transformations:
    {v
    -- comments run to end of line
    GIVEN injective(?f)
    RULE my-inter: inter o (iterate(Kp(T), ?f) x iterate(Kp(T), ?f))
                   --> iterate(Kp(T), ?f) o inter

    TRANSFORMATION cleanup
    BEGIN
      TRY REPEAT { my-inter | r1 };
      USE r3
    END
    v}
    Rule sides are KOLA terms in {!Kola.Parse} notation; the side kind
    (function / predicate / query) is inferred from the left-hand side.
    Step connectives: [;] atomic sequencing, [{ a | b }] one firing from a
    rule set, [REPEAT], [TRY], [CHOICE { s1 / s2 }]. *)

exception Error of string

val error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Error} with a formatted message. *)

type program = {
  rules : Rewrite.Rule.t list;
  transformations : Block.t list;
}

val parse_program : string -> program

val lookup_of : program -> string -> Rewrite.Rule.t
(** Program rules shadow same-named catalog rules; ["-1"] flips. *)

val find_transformation : program -> string -> Block.t option

val run_source :
  ?schema:Kola.Schema.t ->
  string -> transformation:string -> Kola.Term.query -> Block.outcome
(** Parse [source] and run its named transformation. *)

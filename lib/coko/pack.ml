(* Runtime-loadable rule packs: a .coko file as a unit of deployment.

   A pack is parsed source (rules + transformations) plus a content
   digest.  Loading only validates scoping (see {!Syntax.parse_program});
   *admission* — the gate the optimizer and the daemon apply before a pack
   rule may fire — additionally requires every rule to hold a current
   certificate from {!Rules.Cert}, exhaustively checked at the small-scope
   bound where the budget allows.  Rejection is total: one refuted or
   vacuous rule rejects the pack, with the counterexample surfaced, so a
   bad rule is never silently dropped.

   Admitted rules are ordinary {!Rewrite.Rule.t} values — head-mask
   indexing, e-graph compilation and BFS dispatch treat them exactly like
   catalog rules.  {!shadow} splices them over the catalog by name so a
   pack can both override and extend the built-ins. *)

type t = {
  path : string option;
  source : string;
  digest : string;  (** hex digest of the source text *)
  program : Syntax.program;
}

let of_string ?path source =
  {
    path;
    source;
    digest = Digest.to_hex (Digest.string source);
    program = Syntax.parse_program source;
  }

let load path =
  let source =
    match In_channel.with_open_bin path In_channel.input_all with
    | s -> s
    | exception Sys_error msg -> Syntax.error "cannot read rule pack: %s" msg
  in
  of_string ~path source

let rules t = t.program.Syntax.rules
let name t = match t.path with Some p -> Filename.basename p | None -> "<inline>"

(* ------------------------------------------------------------------ *)

type admission = {
  pack : t;
  verdicts : Rules.Cert.verdict list;  (** one per rule, in pack order *)
}

let rejected a = List.filter (fun v -> not v.Rules.Cert.ok) a.verdicts

(* Certify every rule in the pack through [cache].  [Ok] iff all hold;
   [Error] carries the full verdict list so callers can report every
   failure, not just the first. *)
let admit ?schema ?strategy ?scope ?budget ?cache t :
    (admission, admission) result =
  let cache =
    match cache with Some c -> c | None -> Rules.Cert.Cache.in_memory ()
  in
  let verdicts =
    List.map
      (fun r ->
        Rules.Cert.certify_cached ?schema ?strategy ?scope ?budget ~cache r)
      (rules t)
  in
  let a = { pack = t; verdicts } in
  if List.for_all (fun v -> v.Rules.Cert.ok) verdicts then Ok a else Error a

(* Splice [pack_rules] over [base]: same-named base rules are replaced in
   place (keeping the base's dispatch order, so a pack that redefines a
   catalog rule verbatim searches identically), genuinely new rules are
   appended in pack order. *)
let shadow ~base pack_rules =
  let replaced =
    List.map
      (fun b ->
        match
          List.find_opt
            (fun r -> r.Rewrite.Rule.name = b.Rewrite.Rule.name)
            pack_rules
        with
        | Some r -> r
        | None -> b)
      base
  in
  let extra =
    List.filter
      (fun r ->
        not
          (List.exists
             (fun b -> b.Rewrite.Rule.name = r.Rewrite.Rule.name)
             base))
      pack_rules
  in
  replaced @ extra

let pp_rejection ppf a =
  Fmt.pf ppf "pack %s rejected:@ %a" (name a.pack)
    (Fmt.list ~sep:Fmt.sp Rules.Cert.pp_verdict)
    (rejected a)

(** Runtime-loadable rule packs: a [.coko] file as a unit of deployment.

    Loading parses and scope-checks the source ({!Syntax.Error} with a
    [line N:] position on rejection).  {!admit} is the certification gate:
    every rule must hold a current {!Rules.Cert} certificate — exhaustive
    small-scope checking where the budget allows — before the optimizer or
    the daemon will fire it.  A failed rule rejects the whole pack with
    its counterexample surfaced; nothing is silently dropped. *)

type t = {
  path : string option;
  source : string;
  digest : string;  (** hex digest of the source text *)
  program : Syntax.program;
}

val of_string : ?path:string -> string -> t
(** @raise Syntax.Error on parse or scoping problems. *)

val load : string -> t
(** Read a pack from a file.  @raise Syntax.Error (also on IO failure). *)

val rules : t -> Rewrite.Rule.t list
val name : t -> string

type admission = {
  pack : t;
  verdicts : Rules.Cert.verdict list;  (** one per rule, in pack order *)
}

val rejected : admission -> Rules.Cert.verdict list
(** The failing verdicts of an admission. *)

val admit :
  ?schema:Kola.Schema.t ->
  ?strategy:Rules.Cert.strategy ->
  ?scope:int ->
  ?budget:int ->
  ?cache:Rules.Cert.Cache.t ->
  t ->
  (admission, admission) result
(** Certify every rule through the cache (default: a fresh in-memory one;
    pass a {!Rules.Cert.Cache.load}ed cache for O(1) re-admission).
    [Ok] iff every rule certifies; [Error] carries all verdicts so every
    failure can be reported. *)

val shadow :
  base:Rewrite.Rule.t list -> Rewrite.Rule.t list -> Rewrite.Rule.t list
(** Splice pack rules over [base]: same-named rules replace in place
    (preserving dispatch order), new rules append in pack order. *)

val pp_rejection : admission Fmt.t

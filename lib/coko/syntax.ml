(* The COKO surface language — the follow-on language the paper announces
   ("we are developing a language, COKO, with which to express rule blocks;
   sets of rules that are used together, together with strategies for their
   firing").

   A COKO file contains rule definitions and transformations:

     -- comments run to end of line
     GIVEN injective(?f)
     RULE my-inter: inter o (iterate(Kp(T), ?f) x iterate(Kp(T), ?f))
                    --> iterate(Kp(T), ?f) o inter

     RULE unit-left: id o ?f --> ?f

     TRANSFORMATION cleanup
     BEGIN
       TRY REPEAT { unit-left | r1 };
       USE r3
     END

   Step connectives: ';' sequencing (atomic: a failing tail aborts the
   whole), '|' inside braces = first applicable rule, 'REPEAT' = while
   applicable, 'TRY' = don't fail, 'CHOICE { s1 / s2 }' = first applicable
   step.  Rule sides are KOLA terms in {!Kola.Parse} notation; the side
   kind (function / predicate / query) is inferred from the left-hand
   side. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type program = {
  rules : Rewrite.Rule.t list;
  transformations : Block.t list;
}

(* ------------------------------------------------------------------ *)
(* Lexing: word-level tokens; rule bodies are re-lexed by Kola.Parse.   *)

let comment_start line =
  let n = String.length line in
  let rec go i =
    if i + 1 >= n then None
    else if line.[i] = '-' && line.[i + 1] = '-'
            && not (i + 2 < n && line.[i + 2] = '>') then Some i
    else go (i + 1)
  in
  go 0

let strip_comments src =
  String.split_on_char '\n' src
  |> List.map (fun line ->
         match comment_start line with
         | Some i -> String.sub line 0 i
         | None -> line)
  |> String.concat "\n"

(* ------------------------------------------------------------------ *)

let keywords =
  [ "RULE"; "GIVEN"; "TRANSFORMATION"; "BEGIN"; "END"; "REPEAT"; "TRY";
    "USE"; "CHOICE" ]

type tok =
  | Word of string     (* rule / transformation names, keywords *)
  | Sym of char        (* ; | { } ( ) , : / *)
  | Arrow              (* --> *)
  | Body of string     (* raw term text, only produced inside rule sides *)

let pp_tok ppf = function
  | Word w -> Fmt.string ppf w
  | Sym c -> Fmt.pf ppf "%c" c
  | Arrow -> Fmt.string ppf "-->"
  | Body s -> Fmt.pf ppf "<%s>" s

(* Tokenize the structural level.  Rule sides (between ':' and '-->', and
   between '-->' and the end of the rule) are captured verbatim as [Body]
   so Kola.Parse handles them.  Every token carries its 1-based source
   line so parse- and elaboration-time rejections can point at it. *)
let tokenize src =
  let src = strip_comments src in
  let n = String.length src in
  (* prefix newline counts: line_at i = 1 + newlines in src.[0..i) *)
  let line_at =
    let lines = Array.make (n + 1) 1 in
    for i = 0 to n - 1 do
      lines.(i + 1) <- (lines.(i) + if src.[i] = '\n' then 1 else 0)
    done;
    fun i -> lines.(min (max i 0) n)
  in
  let toks = ref [] in
  let push t i = toks := (t, line_at i) :: !toks in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '-' || c = '_' || c = '?'
  in
  let rec structural i =
    if i >= n then ()
    else
      let c = src.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then structural (i + 1)
      else if c = ';' || c = '{' || c = '}' || c = '(' || c = ')' || c = ','
              || c = '|' || c = '/' then begin
        push (Sym c) i;
        structural (i + 1)
      end
      else if c = ':' then begin
        push (Sym ':') i;
        (* capture a rule side: up to --> *)
        side (i + 1)
      end
      else if is_word c then begin
        let j = ref i in
        while !j < n && is_word src.[!j] do incr j done;
        let w = String.sub src i (!j - i) in
        push (Word w) i;
        structural !j
      end
      else error "line %d: unexpected character %C in COKO source" (line_at i) c
  and side i =
    (* everything up to --> is the LHS body; then everything up to the next
       RULE/GIVEN/TRANSFORMATION keyword or end of input is the RHS body *)
    let rec find_arrow j =
      if j + 2 >= n then error "line %d: rule without -->" (line_at i)
      else if src.[j] = '-' && src.[j + 1] = '-' && src.[j + 2] = '>' then j
      else find_arrow (j + 1)
    in
    let a = find_arrow i in
    push (Body (String.trim (String.sub src i (a - i)))) i;
    push Arrow a;
    (* RHS: scan forward for a keyword at word-boundary *)
    let rec find_end j =
      if j >= n then n
      else if is_word src.[j] then begin
        let k = ref j in
        while !k < n && is_word src.[!k] do incr k done;
        let w = String.sub src j (!k - j) in
        if List.mem w keywords then j else find_end !k
      end
      else find_end (j + 1)
    in
    let e = find_end (a + 3) in
    push (Body (String.trim (String.sub src (a + 3) (e - (a + 3))))) (a + 3);
    structural e
  in
  structural 0;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)

type pstate = {
  mutable toks : (tok * int) list;
  mutable line : int;  (** line of the most recently peeked token *)
}

let peek st =
  match st.toks with
  | [] -> None
  | (t, l) :: _ ->
    st.line <- l;
    Some t

let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let expect st t what =
  match peek st with
  | Some t' when t' = t -> advance st
  | Some other -> error "line %d: expected %s, found %a" st.line what pp_tok other
  | None -> error "line %d: expected %s, found end of input" st.line what

let expect_word st what =
  match peek st with
  | Some (Word w) ->
    advance st;
    w
  | Some other -> error "line %d: expected %s, found %a" st.line what pp_tok other
  | None -> error "line %d: expected %s, found end of input" st.line what

(* Rule sides: infer the kind from the LHS text. *)
let looks_like_pred src =
  match Kola.Parse.pred src with
  | _ -> (
    (* prefer the predicate reading unless the function reading is clearly
       richer (a bare Prim of a non-predicate name parses as both) *)
    match Kola.Parse.func src with
    | exception Kola.Parse.Error _ -> true
    | Kola.Term.Prim _ -> true
    | _ -> false)
  | exception Kola.Parse.Error _ -> false

let parse_rule_body ~name ~preconditions lhs_src rhs_src =
  let has_bang s = String.contains s '!' in
  if has_bang lhs_src && has_bang rhs_src then
    let lq = Kola.Parse.query lhs_src and rq = Kola.Parse.query rhs_src in
    Rewrite.Rule.query_rule ~preconditions ~name ~description:name
      (lq.Kola.Term.body, lq.Kola.Term.arg)
      (rq.Kola.Term.body, rq.Kola.Term.arg)
  else if looks_like_pred lhs_src then
    Rewrite.Rule.pred_rule ~preconditions ~name ~description:name
      (Kola.Parse.pred lhs_src) (Kola.Parse.pred rhs_src)
  else
    Rewrite.Rule.fun_rule ~preconditions ~name ~description:name
      (Kola.Parse.func lhs_src) (Kola.Parse.func rhs_src)

let prop_of_string = function
  | "injective" -> Some Rewrite.Props.Injective
  | "total" -> Some Rewrite.Props.Total
  | "constant" -> Some Rewrite.Props.Constant
  | "preserves-pair" -> Some Rewrite.Props.Preserves_pair
  | "set-valued" -> Some Rewrite.Props.Set_valued
  | _ -> None

let drop_question h =
  if String.length h > 0 && h.[0] = '?' then String.sub h 1 (String.length h - 1)
  else h

let parse_given st =
  (* GIVEN prop(?h) [, prop(?h)]* *)
  let rec go acc =
    let prop_w = expect_word st "property name" in
    let prop_line = st.line in
    let prop =
      match prop_of_string prop_w with
      | Some p -> p
      | None ->
        error
          "line %d: unknown property %s (expected injective, total, \
           constant, preserves-pair or set-valued)"
          prop_line prop_w
    in
    expect st (Sym '(') "(";
    let hole =
      match peek st with
      | Some (Word w) ->
        advance st;
        w
      | _ -> error "line %d: expected a hole name in GIVEN" st.line
    in
    expect st (Sym ')') ")";
    let pre = { Rewrite.Rule.prop; hole = drop_question hole } in
    match peek st with
    | Some (Sym ',') ->
      advance st;
      go (pre :: acc)
    | _ -> List.rev (pre :: acc)
  in
  go []

let parse_rule st preconditions =
  let name = expect_word st "rule name" in
  let rule_line = st.line in
  expect st (Sym ':') ":";
  let lhs =
    match peek st with
    | Some (Body b) ->
      advance st;
      b
    | _ -> error "line %d: expected a rule left-hand side" st.line
  in
  expect st Arrow "-->";
  let rhs =
    match peek st with
    | Some (Body b) ->
      advance st;
      b
    | _ -> error "line %d: expected a rule right-hand side" st.line
  in
  let rule =
    try parse_rule_body ~name ~preconditions lhs rhs
    with Kola.Parse.Error msg ->
      error "line %d: in rule %s: %s" rule_line name msg
  in
  (* Reject ill-scoped rules at load time: an RHS hole the pattern never
     binds would survive substitution as a hole in the rewritten program
     (Subst leaves unbound holes in place), and a precondition naming an
     absent hole could never be checked.  Schema-dependent validation
     (typing, semantics) is certification's job, not the loader's. *)
  (match Rules.Lint.scoping rule with
  | [] -> ()
  | p :: _ ->
    error "line %d: rule %s: %a" rule_line name Rules.Lint.pp_problem p);
  rule

(* steps *)
let rec parse_step st : Block.step =
  let first = parse_alt st in
  let rec go acc =
    match peek st with
    | Some (Sym ';') ->
      advance st;
      go (parse_alt st :: acc)
    | _ -> (
      match acc with [ s ] -> s | steps -> Block.Seq (List.rev steps))
  in
  go [ first ]

and parse_alt st : Block.step =
  match peek st with
  | Some (Word "REPEAT") ->
    advance st;
    Block.Repeat (parse_alt st)
  | Some (Word "TRY") ->
    advance st;
    Block.Try (parse_alt st)
  | Some (Word "CHOICE") ->
    advance st;
    expect st (Sym '{') "{";
    let rec alts acc =
      let s = parse_step st in
      match peek st with
      | Some (Sym '/') ->
        advance st;
        alts (s :: acc)
      | _ ->
        expect st (Sym '}') "}";
        Block.Choice (List.rev (s :: acc))
    in
    alts []
  | Some (Sym '{') ->
    advance st;
    (* { r1 | r2 | ... } — one firing from a rule set *)
    let rec names acc =
      let w = expect_word st "rule name" in
      match peek st with
      | Some (Sym '|') ->
        advance st;
        names (w :: acc)
      | _ ->
        expect st (Sym '}') "}";
        Block.Use (List.rev (w :: acc))
    in
    names []
  | Some (Word "USE") ->
    advance st;
    let rec names acc =
      let w = expect_word st "rule name" in
      match peek st with
      | Some (Sym ',') ->
        advance st;
        names (w :: acc)
      | _ -> Block.Use (List.rev (w :: acc))
    in
    names []
  | Some (Word name) when not (List.mem name keywords) ->
    advance st;
    Block.Use [ name ]
  | Some other ->
    error "line %d: unexpected %a in a transformation body" st.line pp_tok other
  | None ->
    error "line %d: unexpected end of input in a transformation body" st.line

let parse_transformation st =
  let name = expect_word st "transformation name" in
  expect st (Word "BEGIN") "BEGIN";
  let step = parse_step st in
  expect st (Word "END") "END";
  Block.block name step

let parse_program (src : string) : program =
  let st = { toks = tokenize src; line = 1 } in
  let rec go rules transformations =
    match peek st with
    | None -> { rules = List.rev rules; transformations = List.rev transformations }
    | Some (Word "GIVEN") ->
      advance st;
      let preconditions = parse_given st in
      expect st (Word "RULE") "RULE";
      go (parse_rule st preconditions :: rules) transformations
    | Some (Word "RULE") ->
      advance st;
      go (parse_rule st [] :: rules) transformations
    | Some (Word "TRANSFORMATION") ->
      advance st;
      go rules (parse_transformation st :: transformations)
    | Some other ->
      error "line %d: expected RULE, GIVEN or TRANSFORMATION, found %a"
        st.line pp_tok other
  in
  go [] []

(* A lookup covering both the built-in catalog and a program's own rules
   (program rules shadow catalog rules of the same name; "-1" flips). *)
let lookup_of (p : program) : string -> Rewrite.Rule.t =
 fun name ->
  let base, flip =
    match Filename.chop_suffix_opt ~suffix:"-1" name with
    | Some b -> (b, true)
    | None -> (name, false)
  in
  let found =
    match List.find_opt (fun r -> r.Rewrite.Rule.name = base) p.rules with
    | Some r -> r
    | None -> (
      match Rules.Catalog.find base with
      | Some r -> r
      | None -> error "unknown rule %s" name)
  in
  if flip then Rewrite.Rule.flip found else found

let find_transformation (p : program) name =
  List.find_opt (fun b -> b.Block.block_name = name) p.transformations

(* Parse and run a named transformation from COKO source. *)
let run_source ?schema (src : string) ~transformation (q : Kola.Term.query) :
    Block.outcome =
  let p = parse_program src in
  match find_transformation p transformation with
  | Some b -> Block.run ?schema ~lookup:(lookup_of p) b q
  | None -> error "no transformation named %s" transformation

(* Bottom-up cost extraction: the k cheapest distinct terms of every
   e-class under the per-operator weights of {!Lang.op_weight}.

   Fixpoint dynamic programming: a pass recomputes each class's candidate
   list from its e-nodes' child candidates; passes repeat until no list
   improves (cycles introduced by merges make a single bottom-up order
   impossible, but every Func/Pred operator weighs at least 0.1, so going
   around a cycle strictly increases weight and the tables converge).

   The weights only rank candidates — the optimizer re-measures the
   extracted front with the executed cost model ({!Optimizer.Cost}), which
   is why extraction returns k terms per class rather than one. *)

open Lang

type best = { bw : float; bt : wterm }

type table = (int, best list) Hashtbl.t
(** canonical class id → candidates, cheapest first, ≤ k, distinct terms *)

(* Merge candidate lists keeping the k cheapest distinct terms. *)
let merge ~k (xs : best list) (ys : best list) : best list =
  let all = List.sort (fun a b -> compare a.bw b.bw) (xs @ ys) in
  let rec take seen n = function
    | [] -> []
    | b :: rest ->
      if n = 0 then []
      else
        let key = wkey b.bt in
        if List.mem key seen then take seen n rest
        else b :: take (key :: seen) (n - 1) rest
  in
  take [] k all

let same_front (xs : best list) (ys : best list) =
  List.length xs = List.length ys
  && List.for_all2 (fun a b -> a.bw = b.bw && wkey a.bt = wkey b.bt) xs ys

(* Candidates an e-node contributes, given current child tables: the
   cartesian product of child candidates (each list already ≤ k). *)
let node_candidates ~k g (tbl : table) (n : Graph.enode) : best list =
  let child_lists =
    Array.to_list n.Graph.children
    |> List.map (fun c ->
           match Hashtbl.find_opt tbl (Graph.find g c) with
           | Some (_ :: _ as l) -> Some l
           | _ -> None)
  in
  if List.exists (fun l -> l = None) child_lists then []
  else
    let w0 = op_weight n.Graph.op in
    let _, combos =
      List.fold_left
        (fun (i, acc) l ->
          let l = Option.get l in
          let f = op_child_factor n.Graph.op i in
          ( i + 1,
            List.concat_map
              (fun (w, cs) ->
                List.map (fun b -> (w +. (f *. b.bw), b.bt :: cs)) l)
              acc ))
        (0, [ (w0, []) ])
        child_lists
    in
    merge ~k
      (List.map
         (fun (w, rev_cs) -> { bw = w; bt = rebuild n.Graph.op (List.rev rev_cs) })
         combos)
      []

let k_best ?(k = 4) ?(max_passes = 30) (g : Graph.t) : table =
  let tbl : table = Hashtbl.create 256 in
  let changed = ref true in
  let passes = ref 0 in
  while !changed && !passes < max_passes do
    changed := false;
    incr passes;
    Graph.iter_classes g (fun root (c : Graph.eclass) ->
        let fresh =
          List.fold_left
            (fun acc n -> merge ~k acc (node_candidates ~k g tbl n))
            [] c.Graph.nodes
        in
        let old = Option.value ~default:[] (Hashtbl.find_opt tbl root) in
        let next = merge ~k old fresh in
        if not (same_front old next) then begin
          Hashtbl.replace tbl root next;
          changed := true
        end)
  done;
  tbl

let bests (tbl : table) g (cls : int) : best list =
  Option.value ~default:[] (Hashtbl.find_opt tbl (Graph.find g cls))

(* Cheapest instantiation of one specific e-node — the per-member view a
   class-level merge discards.  The class front keeps the k cheapest
   terms *overall*, so members whose weight is unremarkable vanish even
   when the executed cost model would prefer them; callers that
   re-measure want one candidate per member instead. *)
let node_best (tbl : table) g (n : Graph.enode) : best option =
  match node_candidates ~k:1 g tbl n with b :: _ -> Some b | [] -> None

let member_bests (tbl : table) g (cls : int) : best list =
  merge ~k:max_int
    (List.filter_map (node_best tbl g) (Graph.nodes g cls))
    []

(* One-point deviations of a class's best spelling: at every class in
   the best spelling's derivation tree, substitute each alternative
   member's own best instantiation while keeping everything else at its
   best.  The result is a local neighborhood of the extraction optimum
   inside the e-graph — every term is provably equivalent to the class —
   sized linearly in (best-tree nodes × class width) rather than
   exponentially.  This is what rescues spellings whose measured win is
   below the weight model's resolution (a few percent from hoisting or
   predicate reordering): they lose every weight-ranked merge but sit
   one member-substitution away from the weight optimum, and the caller
   re-measures the whole neighborhood with the executed cost model. *)
let deviations ?(cap = 512) (tbl : table) g (cls : int) : wterm list =
  let count = ref 0 in
  let out = ref [] in
  let emit w =
    if !count < cap then begin
      incr count;
      out := w :: !out
    end
  in
  let rec go cls =
    if !count < cap then
      match bests tbl g cls with
      | [] -> ()
      | b0 :: _ ->
        let bkey = wkey b0.bt in
        let best_member = ref None in
        List.iter
          (fun n ->
            match node_best tbl g n with
            | Some b when wkey b.bt = bkey ->
              if !best_member = None then best_member := Some n
            | Some b -> emit b.bt
            | None -> ())
          (Graph.nodes g cls);
        (* Recurse into the member that realizes the best: a deviation of
           child j, wrapped in this operator with the other children at
           their best, is a deviation of this class. *)
        match !best_member with
        | None -> ()
        | Some m ->
          let arity = Array.length m.Graph.children in
          let child_best j =
            match
              Hashtbl.find_opt tbl (Graph.find g m.Graph.children.(j))
            with
            | Some (b :: _) -> Some b.bt
            | _ -> None
          in
          for j = 0 to arity - 1 do
            let marker = !out and before = !count in
            go (Graph.find g m.Graph.children.(j));
            let rec fresh l = if l == marker then [] else
              match l with [] -> [] | x :: r -> x :: fresh r
            in
            let child_devs = fresh !out in
            (* Rebuild the fresh child-level deviations in this context;
               replace them in [out] with the wrapped spellings. *)
            if child_devs <> [] then begin
              let ok = ref true in
              let ctx =
                List.init arity (fun i ->
                    if i = j then None
                    else
                      match child_best i with
                      | Some t -> Some t
                      | None ->
                        ok := false;
                        None)
              in
              if !ok then
                out :=
                  List.map
                    (fun d ->
                      rebuild m.Graph.op
                        (List.mapi
                           (fun i c ->
                             if i = j then d else Option.get c)
                           ctx))
                    child_devs
                  @ marker
              else begin
                out := marker;
                count := before
              end
            end
          done
  in
  go (Graph.find g cls);
  List.rev !out

let best (tbl : table) g (cls : int) : best option =
  match bests tbl g cls with [] -> None | b :: _ -> Some b

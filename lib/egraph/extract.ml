(* Bottom-up cost extraction: the k cheapest distinct terms of every
   e-class under the per-operator weights of {!Lang.op_weight}.

   Fixpoint dynamic programming: a pass recomputes each class's candidate
   list from its e-nodes' child candidates; passes repeat until no list
   improves (cycles introduced by merges make a single bottom-up order
   impossible, but every Func/Pred operator weighs at least 0.1, so going
   around a cycle strictly increases weight and the tables converge).

   The weights only rank candidates — the optimizer re-measures the
   extracted front with the executed cost model ({!Optimizer.Cost}), which
   is why extraction returns k terms per class rather than one. *)

open Lang

type best = { bw : float; bt : wterm }

type table = (int, best list) Hashtbl.t
(** canonical class id → candidates, cheapest first, ≤ k, distinct terms *)

(* Merge candidate lists keeping the k cheapest distinct terms. *)
let merge ~k (xs : best list) (ys : best list) : best list =
  let all = List.sort (fun a b -> compare a.bw b.bw) (xs @ ys) in
  let rec take seen n = function
    | [] -> []
    | b :: rest ->
      if n = 0 then []
      else
        let key = wkey b.bt in
        if List.mem key seen then take seen n rest
        else b :: take (key :: seen) (n - 1) rest
  in
  take [] k all

let same_front (xs : best list) (ys : best list) =
  List.length xs = List.length ys
  && List.for_all2 (fun a b -> a.bw = b.bw && wkey a.bt = wkey b.bt) xs ys

(* Candidates an e-node contributes, given current child tables: the
   cartesian product of child candidates (each list already ≤ k). *)
let node_candidates ~k g (tbl : table) (n : Graph.enode) : best list =
  let child_lists =
    Array.to_list n.Graph.children
    |> List.map (fun c ->
           match Hashtbl.find_opt tbl (Graph.find g c) with
           | Some (_ :: _ as l) -> Some l
           | _ -> None)
  in
  if List.exists (fun l -> l = None) child_lists then []
  else
    let w0 = op_weight n.Graph.op in
    let combos =
      List.fold_left
        (fun acc l ->
          let l = Option.get l in
          List.concat_map
            (fun (w, cs) -> List.map (fun b -> (w +. b.bw, b.bt :: cs)) l)
            acc)
        [ (w0, []) ]
        child_lists
    in
    merge ~k
      (List.map
         (fun (w, rev_cs) -> { bw = w; bt = rebuild n.Graph.op (List.rev rev_cs) })
         combos)
      []

let k_best ?(k = 4) ?(max_passes = 30) (g : Graph.t) : table =
  let tbl : table = Hashtbl.create 256 in
  let changed = ref true in
  let passes = ref 0 in
  while !changed && !passes < max_passes do
    changed := false;
    incr passes;
    Graph.iter_classes g (fun root (c : Graph.eclass) ->
        let fresh =
          List.fold_left
            (fun acc n -> merge ~k acc (node_candidates ~k g tbl n))
            [] c.Graph.nodes
        in
        let old = Option.value ~default:[] (Hashtbl.find_opt tbl root) in
        let next = merge ~k old fresh in
        if not (same_front old next) then begin
          Hashtbl.replace tbl root next;
          changed := true
        end)
  done;
  tbl

let bests (tbl : table) g (cls : int) : best list =
  Option.value ~default:[] (Hashtbl.find_opt tbl (Graph.find g cls))

let best (tbl : table) g (cls : int) : best option =
  match bests tbl g cls with [] -> None | b :: _ -> Some b

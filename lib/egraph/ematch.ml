(* E-matching: firing the catalog's declarative patterns against e-classes.

   Patterns are the rules' own interned bodies ({!Rewrite.Rule.hbody}) —
   no separate pattern language.  A hole matches a whole e-class and binds
   its representative witness, so substitutions stay ordinary
   {!Rewrite.Subst.H} values: instantiation and precondition checks reuse
   the BFS machinery unchanged, and the instantiated sides are concrete
   hash-consed terms ready for {!Graph.add_term}.

   Associativity is handled with rewrite rules rather than matching
   windows: two internal reassociation rules (named "assoc", justified as
   {!Graph.Jassoc}) expose every grouping of a composition chain at
   saturation, after which plain binary structural matching sees every
   window the BFS chain matcher would. *)

open Kola.Term
open Lang

type erule = {
  eid : int;  (** position in the compiled catalog; scheduler index *)
  ename : string;
  esource : Rewrite.Rule.t;  (** for preconditions and replay *)
  elhs : wterm;
  erhs : wterm;
  emask : int;
      (** root-head bit a class must contain ({!Rewrite.Index.rule_head_mask});
          [0] when the pattern has no fixed head *)
  einternal : bool;  (** reassociation scaffolding, invisible in proofs *)
}

(* ------------------------------------------------------------------ *)
(* Matching a pattern against an e-class.  Returns every extension of
   [subst] under which some member matches. *)

let bind_or_check_func g subst h cls =
  match Rewrite.Subst.H.find_func subst h with
  | Some b -> (
    match Graph.find_term g (Wf b) with
    | Some c when c = Graph.find g cls -> [ subst ]
    | _ -> [])
  | None -> (
    match Graph.witness g cls with
    | Wf w -> (
      match Rewrite.Subst.H.bind_func subst h w with
      | Some s -> [ s ]
      | None -> [])
    | _ -> [])

let bind_or_check_pred g subst h cls =
  match Rewrite.Subst.H.find_pred subst h with
  | Some b -> (
    match Graph.find_term g (Wp b) with
    | Some c when c = Graph.find g cls -> [ subst ]
    | _ -> [])
  | None -> (
    match Graph.witness g cls with
    | Wp w -> (
      match Rewrite.Subst.H.bind_pred subst h w with
      | Some s -> [ s ]
      | None -> [])
    | _ -> [])

let rec match_wterm g (subst : Rewrite.Subst.H.t) (pat : wterm) (cls : int) :
    Rewrite.Subst.H.t list =
  match pat with
  | Wf { Hc.fshape = Hc.HFhole h; _ } ->
    if Graph.class_sort g cls = Func then bind_or_check_func g subst h cls
    else []
  | Wp { Hc.pshape = Hc.HPhole h; _ } ->
    if Graph.class_sort g cls = Pred then bind_or_check_pred g subst h cls
    else []
  | Wv vpat -> (
    (* Value classes are singleton leaves; holes, pairs and constants are
       the BFS value matcher's own cases. *)
    match Graph.witness g cls with
    | Wv v -> (
      match Rewrite.Match.hvalue subst vpat v with
      | Some s -> [ s ]
      | None -> [])
    | _ -> [])
  | _ ->
    let pop, pcs = decompose pat in
    if Graph.class_sort g cls <> sort_of_op pop then []
    else if
      op_bit pop <> 0 && Graph.class_mask g cls land op_bit pop = 0
    then []
    else
      List.concat_map
        (fun (n : Graph.enode) ->
          if
            op_equal n.Graph.op pop
            && Array.length n.Graph.children = List.length pcs
          then
            (* Thread the substitution through the children left to
               right; each child may match several ways. *)
            let rec go substs i = function
              | [] -> substs
              | p :: rest ->
                let c = Graph.find g n.Graph.children.(i) in
                let substs =
                  List.concat_map (fun s -> match_wterm g s p c) substs
                in
                if substs = [] then [] else go substs (i + 1) rest
            in
            go [ subst ] 0 pcs
          else [])
        (Graph.nodes g cls)

(* ------------------------------------------------------------------ *)
(* Preconditions.  The BFS engine checks properties of the exact subterm
   a hole matched; here a hole binds a whole class, so the check may pass
   on a different member than the representative.  When the witness
   fails, scan the class for a member that satisfies the property and
   upgrade the binding to it — the instantiated sides are then built from
   precondition-passing terms and replay under the BFS checker. *)

let rebind_func (s : Rewrite.Subst.H.t) h w =
  { s with Rewrite.Subst.H.funcs = (h, w) :: List.remove_assoc h s.funcs }

let check_preconditions g schema (er : erule) (subst : Rewrite.Subst.H.t) :
    Rewrite.Subst.H.t option =
  List.fold_left
    (fun acc { Rewrite.Rule.prop; hole } ->
      match acc with
      | None -> None
      | Some s -> (
        match Rewrite.Subst.H.find_func s hole with
        | Some f ->
          if Rewrite.Props.holds schema prop f.Hc.fterm then Some s
          else (
            match Graph.find_term g (Wf f) with
            | None -> None
            | Some c ->
              let rec scan = function
                | [] -> None
                | (n : Graph.enode) :: rest -> (
                  match n.Graph.witness with
                  | Wf w when Rewrite.Props.holds schema prop w.Hc.fterm ->
                    Some (rebind_func s hole w)
                  | _ -> scan rest)
              in
              scan (Graph.nodes g c))
        | None -> (
          match Rewrite.Subst.H.find_value s hole with
          | Some v ->
            if Rewrite.Props.holds_value prop v.Hc.vterm then Some s
            else None
          | None -> None)))
    (Some subst) er.esource.Rewrite.Rule.preconditions

(* ------------------------------------------------------------------ *)
(* Instantiation: pattern under a complete substitution is ground. *)

let inst (subst : Rewrite.Subst.H.t) (pat : wterm) : wterm =
  match pat with
  | Wf f -> Wf (Rewrite.Subst.H.apply_func subst f)
  | Wp p -> Wp (Rewrite.Subst.H.apply_pred subst p)
  | Wv v -> Wv (Rewrite.Subst.H.apply_value subst v)
  | Wq (f, v) ->
    Wq (Rewrite.Subst.H.apply_func subst f, Rewrite.Subst.H.apply_value subst v)

(* ------------------------------------------------------------------ *)
(* Compiling the catalog. *)

(* Reserved hole name for the chain prefix of query-rule matching; the
   middle dots keep it out of any catalog rule's namespace. *)
let prefix_hole = "·prefix·"

let compile_rule ?(internal = false) (r : Rewrite.Rule.t) : erule list =
  let name = r.Rewrite.Rule.name in
  match Rewrite.Rule.hbody r with
  | Rewrite.Rule.HFun_rule (l, rhs) ->
    [
      {
        eid = 0;
        ename = name;
        esource = r;
        elhs = Wf l;
        erhs = Wf rhs;
        emask = Rewrite.Index.rule_head_mask r;
        einternal = internal;
      };
    ]
  | Rewrite.Rule.HPred_rule (l, rhs) ->
    [
      {
        eid = 0;
        ename = name;
        esource = r;
        elhs = Wp l;
        erhs = Wp rhs;
        emask = Rewrite.Index.rule_head_mask r;
        einternal = internal;
      };
    ]
  | Rewrite.Rule.HQuery_rule ((lf, lv), (rf, rv)) ->
    (* BFS matches a query rule against the tail of the body chain plus
       the argument.  At saturation every grouping of the body chain is a
       member of the body class, so two pattern forms cover all tails:
       the whole body (empty prefix) and prefix ∘ tail. *)
    let ph = Hc.fhole prefix_hole in
    [
      {
        eid = 0;
        ename = name;
        esource = r;
        elhs = Wq (lf, lv);
        erhs = Wq (rf, rv);
        emask = 0;
        einternal = internal;
      };
      {
        eid = 0;
        ename = name;
        esource = r;
        elhs = Wq (Hc.compose ph lf, lv);
        erhs = Wq (Hc.compose ph rf, rv);
        emask = 0;
        einternal = internal;
      };
    ]

(* The two internal reassociation rules.  Genuine catalog rules (so their
   steps replay through {!Rewrite.Rule.apply_query} like any other), but
   marked internal: saturation justifies them as {!Graph.Jassoc} and
   proof post-processing drops them, because the BFS path checker already
   works modulo associativity. *)
let assoc_rules =
  let a = Fhole "·a·" and b = Fhole "·b·" and c = Fhole "·c·" in
  let left = Compose (Compose (a, b), c)
  and right = Compose (a, Compose (b, c)) in
  let mk name l r =
    Rewrite.Rule.fun_rule ~name ~description:"internal ∘-reassociation" l r
  in
  [ mk "assoc" left right; mk "assoc-1" right left ]

let compile (rules : Rewrite.Rule.t list) : erule list =
  List.concat_map (compile_rule ~internal:false) rules
  @ List.concat_map (compile_rule ~internal:true) assoc_rules
  |> List.mapi (fun i er -> { er with eid = i })

(* ------------------------------------------------------------------ *)
(* One matched instance, ready to apply. *)

type match_inst = {
  mrule : erule;
  mlhs : wterm;  (** instantiated left side; a member of the matched class *)
  mrhs : wterm;
}

(* One rule against one class.  Reads only — safe from pool domains
   between rebuilds (after {!Graph.canonicalize}); telemetry records into
   the calling domain's own buffer. *)
let matches_of_rule g schema (er : erule) (cls : int) : match_inst list =
  let module Telemetry = Kola_telemetry.Telemetry in
  if er.emask <> 0 && Graph.class_mask g cls land er.emask = 0 then []
  else if Telemetry.enabled () then begin
    (* Per-rule matcher time, aggregated as a distribution; the disabled
       path below stays clock-free. *)
    let t0 = Telemetry.now () in
    let res =
      match_wterm g Rewrite.Subst.H.empty er.elhs cls
      |> List.filter_map (fun s ->
             match check_preconditions g schema er s with
             | None -> None
             | Some s ->
               Some { mrule = er; mlhs = inst s er.elhs; mrhs = inst s er.erhs })
    in
    Telemetry.observe
      ("egraph.match_ms." ^ er.ename)
      ((Telemetry.now () -. t0) *. 1000.);
    res
  end
  else
    match_wterm g Rewrite.Subst.H.empty er.elhs cls
    |> List.filter_map (fun s ->
           match check_preconditions g schema er s with
           | None -> None
           | Some s ->
             Some { mrule = er; mlhs = inst s er.elhs; mrhs = inst s er.erhs })

let matches_in_class g schema (erules : erule list) (cls : int) :
    match_inst list =
  List.concat_map (fun er -> matches_of_rule g schema er cls) erules

(** Bottom-up cost extraction: the k cheapest distinct terms of every
    e-class under the per-operator weights of {!Lang.op_weight},
    computed by fixpoint dynamic programming (merges introduce cycles,
    but every operator weighs at least 0.1, so candidate tables
    converge).

    The weights only rank candidates — callers re-measure the extracted
    front with the executed cost model, which is why extraction returns
    k terms per class rather than one. *)

open Lang

type best = { bw : float; bt : wterm }

type table = (int, best list) Hashtbl.t
(** canonical class id → candidates, cheapest first, ≤ k, distinct terms *)

val k_best : ?k:int -> ?max_passes:int -> Graph.t -> table
(** Candidate tables for every class; [k] defaults to 4. *)

val bests : table -> Graph.t -> int -> best list
(** Candidates of a class, cheapest first ([[]] if none converged). *)

val member_bests : table -> Graph.t -> int -> best list
(** The cheapest instantiation of {e each} member e-node of a class,
    cheapest first, distinct.  Unlike {!bests} this keeps one candidate
    per member even when its weight is unremarkable — the front callers
    re-measure with an executed cost model, which may disagree with the
    weights about which member wins. *)

val deviations : ?cap:int -> table -> Graph.t -> int -> wterm list
(** One-point deviations of a class's best spelling: at every class in
    the best spelling's derivation tree, each alternative member's best
    instantiation substituted with everything else kept at its best.
    Every result is provably equivalent to the class; at most [cap]
    (default 512) are produced.  This is the local neighborhood of the
    extraction optimum callers re-measure with the executed cost model —
    it contains spellings whose measured win is below the weight model's
    resolution. *)

val best : table -> Graph.t -> int -> best option

(** Union-find over dense integer ids: path compression on [find], union
    by rank.  One element per e-class; merged classes keep a single live
    root. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
(** Elements allocated so far (roots and non-roots alike). *)

val make : t -> int
(** Allocate a fresh singleton class and return its id. *)

val find : t -> int -> int
(** Representative of the class containing the element; compresses the
    path it walks. *)

val same : t -> int -> int -> bool

val union : t -> int -> int -> int
(** Merge the two classes (by rank) and return the surviving root; when
    they already coincide, the shared root is returned unchanged. *)

val compress : t -> unit
(** Point every element directly at its root.  Afterwards [find] reads
    one array slot and writes nothing, so finds may run concurrently
    from several domains until the next [make]/[union]. *)

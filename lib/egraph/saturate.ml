(* The saturation loop: grow the e-graph under the catalog until nothing
   new appears or a budget trips, then answer optimization questions by
   extraction and equivalence questions by same-class checks.

   One iteration = match the scheduled rules against the fresh e-classes
   (pruned by the class head mask), dedup the instances fired in earlier
   iterations, apply the fresh ones (add both sides, union with a
   justification), then rebuild congruence once for the whole union
   batch.  Budgets bound e-nodes, iterations and wall-clock; the stop
   reason is always reported, never silent.

   Three throughput levers, all outcome-preserving:

   - Parallel e-matching.  Between rebuilds the graph is read-only (the
     union-find is fully compressed first, so [find] writes nothing);
     per-class match queries fan out over an optional domain pool and
     merge back in class order, so unions apply in the same order as the
     sequential loop and every stat is bit-identical at any jobs count.

   - Incremental matching.  Each class carries the iteration at which
     its reachable subgraph last changed (change stamps propagate to
     ancestors through parent edges); each rule remembers the iteration
     it last ran.  A (rule, class) pair re-matches only when the class
     changed since the rule's last run — stale pairs are skipped outright
     instead of re-matched and deduped.

   - Rule scheduling.  A rule whose run cost something and fired nothing
     fresh backs off exponentially (capped, never excluded); the stamps
     make its eventual re-run catch up on everything it missed.  Backoff
     is driven by the deterministic fresh-fire counters, not by the
     wall-clock match-time distributions (those still flow to telemetry):
     outcomes must not depend on timer noise or the jobs count.  An
     uneventful iteration only proves saturation if no rule was deferred;
     otherwise every rule is forced back in for one full round first. *)

open Kola
open Lang
module Telemetry = Kola_telemetry.Telemetry
module Pool = Kola_parallel.Pool

type budgets = { max_enodes : int; max_iterations : int; max_millis : float }

(* The wall-clock budget is a safety valve, not the intended stop: the
   time check truncates the match sweep wherever the clock happens to
   trip, so any run it cuts short is load-dependent and two identical
   searches may build different proof forests (same classes reachable
   sooner stay equal; replayed derivations differ).  Keep the default
   high enough that the deterministic e-node budget binds first on every
   standard workload — a caller that wants a real deadline passes one
   explicitly (the daemon's [deadline] knob tightens [max_millis]). *)
let default_budgets =
  { max_enodes = 20_000; max_iterations = 12; max_millis = 20_000. }

type stop_reason =
  | Saturated  (** a full iteration added no e-node and united no classes *)
  | Node_budget
  | Iter_budget
  | Time_budget
  | Target_found  (** equivalence query answered early *)

let stop_reason_label = function
  | Saturated -> "saturated"
  | Node_budget -> "node-budget"
  | Iter_budget -> "iteration-budget"
  | Time_budget -> "time-budget"
  | Target_found -> "target-found"

type stats = {
  iterations : int;
  e_nodes : int;
  e_classes : int;
  unions : int;
  matches_skipped : int;
      (** (rule, class) pairs skipped because the class was unchanged
          since the rule's last run *)
  rules_deferred : int;
      (** rule-iterations skipped by scheduler backoff, summed *)
  rebuild_ms : float;
  total_ms : float;
  stop : stop_reason;
}

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "%d e-nodes, %d e-classes, %d unions, %d iterations, %d matches \
     skipped, %d rules deferred, rebuild %.3fms, total %.1fms, stop: %s"
    s.e_nodes s.e_classes s.unions s.iterations s.matches_skipped
    s.rules_deferred s.rebuild_ms s.total_ms (stop_reason_label s.stop)

type space = {
  graph : Graph.t;
  src : wterm;  (** the source query, verbatim *)
  root : int;  (** its class *)
  tgt : wterm option;  (** the target query, when posed *)
  target : int option;  (** its class *)
  schema : Schema.t;
  stats : stats;
}

let wterm_of_query (hq : Term.Hc.hquery) : wterm =
  Wq (hq.Term.Hc.hbody, hq.Term.Hc.harg)

let hquery_of_wterm : wterm -> Term.Hc.hquery option = function
  | Wq (f, v) -> Some { Term.Hc.hbody = f; Term.Hc.harg = v }
  | _ -> None

let query_of_wterm : wterm -> Term.query option = function
  | Wq (f, v) -> Some (Term.Hc.to_query { Term.Hc.hbody = f; Term.Hc.harg = v })
  | _ -> None

(* Instances already applied, across iterations: re-firing them cannot
   change the graph (both sides are already present and united). *)
module Seen = Hashtbl.Make (struct
  type t = string * wkey * wkey

  let equal (a1, b1, c1) (a2, b2, c2) =
    String.equal a1 a2 && b1 = b2 && c1 = c2

  let hash = Hashtbl.hash
end)

(* Per-rule scheduler state.  [last_run] is the last iteration the rule
   matched (against every class fresh for it at that point); [next_run]
   is the earliest iteration it may run again; [streak] counts
   consecutive costly-but-fruitless runs. *)
type rsched = {
  sr : Ematch.erule;
  mutable last_run : int;
  mutable next_run : int;
  mutable streak : int;
  mutable ever_fired : bool;  (** fired a fresh instance at some point *)
}

(* Deferral only starts after [backoff_gate] consecutive runs that
   attempted fresh classes and fired nothing new — a rule whose moment in
   a chained derivation simply hasn't come yet must not be parked early,
   or every link of the chain slips and the fixpoint recedes past the
   iteration budget.  From the gate on, the deferral doubles up to
   [backoff_cap] iterations; a deferred rule always retries, and the
   freshness stamps make each retry catch up on every class that changed
   while it was parked. *)
let backoff_gate = 3
let backoff_cap = 4

let saturate ?(schema = Schema.paper) ?(budgets = default_budgets) ?pool
    ?target ~rules (hq : Term.Hc.hquery) : space =
  Telemetry.span "egraph.saturate" @@ fun () ->
  (* Budgets and span timings run on the monotonic clock: a wall-clock
     (NTP) jump must neither trip nor stretch the time budget. *)
  let t0 = Telemetry.now () in
  let g = Graph.create () in
  let src = wterm_of_query hq in
  let root = Graph.add_term g src in
  let tgt = Option.map wterm_of_query target in
  let tcls = Option.map (Graph.add_term g) tgt in
  let erules = Ematch.compile rules in
  let scheds =
    Array.of_list
      (List.map
         (fun er ->
           { sr = er; last_run = 0; next_run = 0; streak = 0; ever_fired = false })
         erules)
  in
  let n_rules = Array.length scheds in
  let seen = Seen.create 1024 in
  (* Canonical root → iteration its reachable subgraph last changed.
     Absent means 0, i.e. present since before the first iteration. *)
  let stamps : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let stamp_of cls =
    match Hashtbl.find_opt stamps cls with Some s -> s | None -> 0
  in
  (* A change at a class can create matches at any class that reaches it,
     so stamp the ancestor closure of the touched set. *)
  let mark_fresh iter touched =
    let visited = Hashtbl.create 64 in
    let stack = ref touched in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | r :: rest ->
        stack := rest;
        if not (Hashtbl.mem visited r) then begin
          Hashtbl.replace visited r ();
          Hashtbl.replace stamps r iter;
          List.iter
            (fun (n : Graph.enode) ->
              stack := Graph.find g n.Graph.ecls :: !stack)
            (Graph.parents g r)
        end
    done
  in
  let rebuild_ms = ref 0. in
  let iterations = ref 0 in
  let matches_skipped = ref 0 in
  let rules_deferred = ref 0 in
  let timed_rebuild () =
    let r0 = Telemetry.now () in
    Graph.rebuild g;
    (* Full union-find compression: [find] is a bare read until the next
       mutation, so the match fan-out below shares the graph safely. *)
    Graph.canonicalize g;
    rebuild_ms := !rebuild_ms +. ((Telemetry.now () -. r0) *. 1000.)
  in
  timed_rebuild ();
  (* The initial classes carry stamp 0 (the table's default) and every
     rule has last_run 0, so iteration 1 matches everything. *)
  ignore (Graph.take_touched g);
  let fan_out : 'a. (int -> 'a) -> int array -> 'a array =
   fun f arr ->
    match pool with Some p -> Pool.map p f arr | None -> Array.map f arr
  in
  let target_found () =
    match tcls with
    | Some c -> Graph.find g c = Graph.find g root
    | None -> false
  in
  let out_of_time () = (Telemetry.now () -. t0) *. 1000. > budgets.max_millis in
  let stop = ref None in
  let force_full = ref false in
  while !stop = None do
    if target_found () then stop := Some Target_found
    else if !iterations >= budgets.max_iterations then stop := Some Iter_budget
    else if out_of_time () then stop := Some Time_budget
    else begin
      incr iterations;
      let iter = !iterations in
      let nodes_before = Graph.n_nodes g
      and unions_before = Graph.n_unions g in
      if !force_full then begin
        force_full := false;
        Array.iter (fun sc -> sc.next_run <- iter) scheds
      end;
      let scheduled =
        List.filter (fun sc -> sc.next_run <= iter) (Array.to_list scheds)
      in
      let deferred = n_rules - List.length scheduled in
      rules_deferred := !rules_deferred + deferred;
      (* Matches are collected against the graph as it stood at the start
         of the iteration — sorted class order, so the later merge (and
         hence union order) is independent of chunking — then applied in
         one batch. *)
      let classes = Array.of_list (Graph.class_roots g) in
      let max_stamp =
        Array.fold_left (fun acc c -> max acc (stamp_of c)) 0 classes
      in
      (* [fresh_mask_since.(v)] = OR of the head masks of every class
         stamped at iteration [v] or later.  The scheduler uses it to
         decide whether a fruitless rule actually *worked* this run: a
         rule whose mask intersects no fresh class was rejected in O(1)
         per class and must not accrue backoff — in particular a rule
         whose pattern head has not appeared in the graph yet stays live
         and fires the moment it does. *)
      let fresh_mask_since =
        let a = Array.make (iter + 1) 0 in
        Array.iter
          (fun c ->
            let s = min (stamp_of c) iter in
            a.(s) <- a.(s) lor Graph.class_mask g c)
          classes;
        for v = iter - 1 downto 0 do
          a.(v) <- a.(v) lor a.(v + 1)
        done;
        a
      in
      (* The deadline is re-checked per class: one iteration over a large
         graph can dwarf the whole budget, and a trip mid-match must not
         stretch the run to the iteration boundary. *)
      let deadline_hit = Atomic.make false in
      let work cls =
        if Atomic.get deadline_hit then ([], 0)
        else if out_of_time () then begin
          Atomic.set deadline_hit true;
          ([], 0)
        end
        else begin
          let stamp = stamp_of cls in
          let skipped = ref 0 in
          let insts =
            List.concat_map
              (fun sc ->
                if stamp >= sc.last_run then
                  Ematch.matches_of_rule g schema sc.sr cls
                else begin
                  incr skipped;
                  []
                end)
              scheduled
          in
          (insts, !skipped)
        end
      in
      let results = fan_out work classes in
      (* Merge in class order; dedup against every earlier iteration.
         [fresh_by_rule] feeds the scheduler: it marks rules that fired
         at least one instance not seen before. *)
      let fresh_by_rule = Array.make n_rules false in
      let fresh = ref [] in
      Array.iter
        (fun (insts, skipped) ->
          matches_skipped := !matches_skipped + skipped;
          List.iter
            (fun (m : Ematch.match_inst) ->
              let key = (m.mrule.Ematch.ename, wkey m.mlhs, wkey m.mrhs) in
              if not (Seen.mem seen key) then begin
                Seen.replace seen key ();
                fresh_by_rule.(m.mrule.Ematch.eid) <- true;
                fresh := m :: !fresh
              end)
            insts)
        results;
      let fresh = List.rev !fresh in
      let hit_node_budget = ref false in
      List.iter
        (fun (m : Ematch.match_inst) ->
          if Graph.n_nodes g >= budgets.max_enodes then
            hit_node_budget := true
          else begin
            let ca = Graph.add_term g m.mlhs in
            let cb = Graph.add_term g m.mrhs in
            let just =
              if m.mrule.Ematch.einternal then Graph.Jassoc
              else Graph.Jrule m.mrule.Ematch.ename
            in
            ignore (Graph.union g ~ja:m.mlhs ~jb:m.mrhs ~just ca cb)
          end)
        fresh;
      timed_rebuild ();
      mark_fresh iter (Graph.take_touched g);
      (* Scheduler bookkeeping.  A rule accrues backoff only for runs
         that both cost something (its mask intersected at least one
         class fresh for it — [worked]) and fired nothing new; mask-level
         rejections are free and leave the streak alone, so a rule whose
         moment hasn't come is never parked.  A productive run resets. *)
      List.iter
        (fun sc ->
          let worked =
            if sc.sr.Ematch.emask = 0 then max_stamp >= sc.last_run
            else fresh_mask_since.(min sc.last_run iter) land sc.sr.Ematch.emask <> 0
          in
          if fresh_by_rule.(sc.sr.Ematch.eid) then begin
            sc.streak <- 0;
            sc.ever_fired <- true;
            sc.next_run <- iter + 1
          end
          else if worked && sc.ever_fired then begin
            sc.streak <- sc.streak + 1;
            sc.next_run <-
              (if sc.streak < backoff_gate then iter + 1
               else
                 iter + min (1 lsl (sc.streak - backoff_gate + 1)) backoff_cap)
          end
          else sc.next_run <- iter + 1;
          sc.last_run <- iter)
        scheduled;
      if Telemetry.enabled () then
        Telemetry.instant
          ~args:
            [
              ("iter", string_of_int iter);
              ("e_nodes", string_of_int (Graph.n_nodes g));
              ("e_classes", string_of_int (Graph.n_classes g));
              ("unions", string_of_int (Graph.n_unions g));
              ("fresh_instances", string_of_int (List.length fresh));
              ("rules_scheduled", string_of_int (List.length scheduled));
              ("rules_deferred", string_of_int deferred);
              ("matches_skipped", string_of_int !matches_skipped);
            ]
          "egraph.iteration";
      if Atomic.get deadline_hit then
        stop := Some (if target_found () then Target_found else Time_budget)
      else if !hit_node_budget then stop := Some Node_budget
      else if
        Graph.n_nodes g = nodes_before && Graph.n_unions g = unions_before
      then
        if deferred = 0 then
          stop := Some (if target_found () then Target_found else Saturated)
        else
          (* An uneventful round with rules parked proves nothing: force
             every rule back in and require one full quiet round. *)
          force_full := true
    end
  done;
  let stop = Option.get !stop in
  if Telemetry.enabled () then begin
    Telemetry.count ~n:!matches_skipped "egraph.matches_skipped";
    Telemetry.count ~n:!rules_deferred "egraph.rules_deferred";
    Telemetry.instant
      ~args:[ ("reason", stop_reason_label stop) ]
      "egraph.stop"
  end;
  {
    graph = g;
    src;
    root;
    tgt;
    target = tcls;
    schema;
    stats =
      {
        iterations = !iterations;
        e_nodes = Graph.n_nodes g;
        e_classes = Graph.n_classes g;
        unions = Graph.n_unions g;
        matches_skipped = !matches_skipped;
        rules_deferred = !rules_deferred;
        rebuild_ms = !rebuild_ms;
        total_ms = (Telemetry.now () -. t0) *. 1000.;
        stop;
      };
  }

(* ------------------------------------------------------------------ *)
(* Extraction: the k cheapest spellings of the source's class. *)

let best_terms ?(k = 4) (sp : space) : wterm list =
  let tbl = Extract.k_best ~k sp.graph in
  List.map (fun (b : Extract.best) -> b.Extract.bt) (Extract.bests tbl sp.graph sp.root)

(* One-point deviations of a concrete anchor spelling: at every subterm
   position of the anchor, each member e-node's *witness* substituted in
   place of that subterm, the rest of the anchor untouched.  Witnesses
   are the instantiated sides rules actually fired, so this needs no
   weight model at all: around the source it surfaces every single-site
   rewrite saturation discovered — including ones whose measured win is
   a few percent and invisible to the extraction weights — as full,
   provably equivalent query spellings. *)
let anchor_deviations ?(cap = 512) (sp : space) (anchor : wterm) :
    wterm list =
  let g = sp.graph in
  (* Every subterm position of the anchor, with a context closure that
     rebuilds the full anchor around a replacement at that position. *)
  let sites = ref [] in
  let rec walk (ctx : wterm -> wterm) (w : wterm) =
    (match Graph.find_term g w with
    | Some c -> sites := (ctx, w, c) :: !sites
    | None -> ());
    let op, cs = decompose w in
    List.iteri
      (fun j cj ->
        let ctx' d =
          ctx (rebuild op (List.mapi (fun i c -> if i = j then d else c) cs))
        in
        walk ctx' cj)
      cs
  in
  walk (fun w -> w) anchor;
  (* Per-site queues of alternative member witnesses.  Members whose head
     operator differs from the anchor's go first: a genuine single-site
     rewrite usually changes the head, while reassociation noise in a
     compose chain keeps it.  The cap is then spent round-robin across
     sites, so a deep site's first alternative always beats a shallow
     site's fiftieth. *)
  let queues =
    List.rev_map
      (fun (ctx, w, c) ->
        let aop, _ = decompose w in
        let ms =
          List.filter
            (fun (n : Graph.enode) -> wkey n.Graph.witness <> wkey w)
            (Graph.nodes g c)
        in
        let diff, same =
          List.partition (fun (n : Graph.enode) -> not (op_equal n.Graph.op aop)) ms
        in
        (ctx, ref (diff @ same)))
      !sites
  in
  let out = ref [] in
  let count = ref 0 in
  let progress = ref true in
  while !progress && !count < cap do
    progress := false;
    List.iter
      (fun (ctx, q) ->
        match !q with
        | [] -> ()
        | (n : Graph.enode) :: rest ->
          q := rest;
          if !count < cap then begin
            incr count;
            progress := true;
            out := ctx n.Graph.witness :: !out
          end)
      queues
  done;
  List.rev !out

(* The front handed to the executed cost model: the k cheapest spellings
   of the source's class overall, the one-point deviations of the
   cheapest one ({!Extract.deviations}), and the witness deviations
   around the source itself.  The deviation neighborhoods are what save
   queries whose win the weights cannot see — hoisting a loop invariant
   moves the measured cost a few percent but the weight the wrong way,
   so its spelling never survives a weight-ranked merge, yet it sits one
   substitution from a spelling the caller already holds. *)
let extraction_front ?(k = 2) (sp : space) : wterm list =
  let tbl = Extract.k_best ~k sp.graph in
  let wide =
    List.map
      (fun (b : Extract.best) -> b.Extract.bt)
      (Extract.bests tbl sp.graph sp.root)
    @ Extract.deviations tbl sp.graph sp.root
    @ anchor_deviations sp sp.src
  in
  let seen = Hashtbl.create 16 in
  List.filter
    (fun w ->
      let key = wkey w in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    wide

(* ------------------------------------------------------------------ *)
(* Equivalence and proof replay. *)

let equiv (sp : space) : bool =
  match sp.target with
  | Some c -> Graph.find sp.graph c = Graph.find sp.graph sp.root
  | None -> false

(* A step taken right-to-left replays as the flipped rule: "r" ↔ "r-1",
   matching {!Rewrite.Rule.flip}'s naming. *)
let oriented_name name fwd =
  if fwd then name
  else if Filename.check_suffix name "-1" then
    String.sub name 0 (String.length name - 2)
  else name ^ "-1"

(* Proof-forest steps → (rule, query) replay.  Internal reassociations
   drop out: the BFS engine matches modulo associativity, so an assoc
   step is a no-op to its checker and the next retained step still
   follows from the previous retained query. *)
let steps_to_path (steps : Graph.step list) : (string * Term.query) list =
  List.filter_map
    (fun (j, fwd, w) ->
      match j with
      | Graph.Jrule name -> (
        match query_of_wterm w with
        | Some q -> Some (oriented_name name fwd, q)
        | None -> None)
      | Graph.Jassoc | Graph.Jcong -> None)
    steps

(* Derivation from the source to any term of its class.  The term is
   first re-added: after the final rebuild the hash-cons keys are
   canonical, so an extracted candidate folds back onto existing e-nodes
   (alias proof nodes only, no new classes) and becomes explainable. *)
let path_to (sp : space) (w : wterm) : (string * Term.query) list option =
  let c = Graph.add_term sp.graph w in
  if Graph.find sp.graph c <> Graph.find sp.graph sp.root then None
  else Some (steps_to_path (Graph.explain sp.graph sp.src w))

let path (sp : space) : (string * Term.query) list option =
  match sp.tgt with
  | Some w when equiv sp -> path_to sp w
  | _ -> None

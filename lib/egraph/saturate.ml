(* The saturation loop: grow the e-graph under the catalog until nothing
   new appears or a budget trips, then answer optimization questions by
   extraction and equivalence questions by same-class checks.

   One iteration = match every rule against every e-class (pruned by the
   class head mask), dedup the instances fired in earlier iterations,
   apply the fresh ones (add both sides, union with a justification), then
   rebuild congruence.  Budgets bound e-nodes, iterations and wall-clock;
   the stop reason is always reported, never silent. *)

open Kola
open Lang
module Telemetry = Kola_telemetry.Telemetry

type budgets = { max_enodes : int; max_iterations : int; max_millis : float }

let default_budgets =
  { max_enodes = 20_000; max_iterations = 12; max_millis = 2_000. }

type stop_reason =
  | Saturated  (** a full iteration added no e-node and united no classes *)
  | Node_budget
  | Iter_budget
  | Time_budget
  | Target_found  (** equivalence query answered early *)

let stop_reason_label = function
  | Saturated -> "saturated"
  | Node_budget -> "node-budget"
  | Iter_budget -> "iteration-budget"
  | Time_budget -> "time-budget"
  | Target_found -> "target-found"

type stats = {
  iterations : int;
  e_nodes : int;
  e_classes : int;
  unions : int;
  rebuild_ms : float;
  total_ms : float;
  stop : stop_reason;
}

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "%d e-nodes, %d e-classes, %d unions, %d iterations, rebuild %.1fms, \
     total %.1fms, stop: %s"
    s.e_nodes s.e_classes s.unions s.iterations s.rebuild_ms s.total_ms
    (stop_reason_label s.stop)

type space = {
  graph : Graph.t;
  src : wterm;  (** the source query, verbatim *)
  root : int;  (** its class *)
  tgt : wterm option;  (** the target query, when posed *)
  target : int option;  (** its class *)
  schema : Schema.t;
  stats : stats;
}

let wterm_of_query (hq : Term.Hc.hquery) : wterm =
  Wq (hq.Term.Hc.hbody, hq.Term.Hc.harg)

let hquery_of_wterm : wterm -> Term.Hc.hquery option = function
  | Wq (f, v) -> Some { Term.Hc.hbody = f; Term.Hc.harg = v }
  | _ -> None

let query_of_wterm : wterm -> Term.query option = function
  | Wq (f, v) -> Some (Term.Hc.to_query { Term.Hc.hbody = f; Term.Hc.harg = v })
  | _ -> None

(* Instances already applied, across iterations: re-firing them cannot
   change the graph (both sides are already present and united). *)
module Seen = Hashtbl.Make (struct
  type t = string * wkey * wkey

  let equal (a1, b1, c1) (a2, b2, c2) =
    String.equal a1 a2 && b1 = b2 && c1 = c2

  let hash = Hashtbl.hash
end)

let saturate ?(schema = Schema.paper) ?(budgets = default_budgets) ?target
    ~rules (hq : Term.Hc.hquery) : space =
  Telemetry.span "egraph.saturate" @@ fun () ->
  (* Budgets and span timings run on the monotonic clock: a wall-clock
     (NTP) jump must neither trip nor stretch the time budget. *)
  let t0 = Telemetry.now () in
  let g = Graph.create () in
  let src = wterm_of_query hq in
  let root = Graph.add_term g src in
  let tgt = Option.map wterm_of_query target in
  let tcls = Option.map (Graph.add_term g) tgt in
  let erules = Ematch.compile rules in
  let seen = Seen.create 1024 in
  let rebuild_ms = ref 0. in
  let iterations = ref 0 in
  let timed_rebuild () =
    let r0 = Telemetry.now () in
    Graph.rebuild g;
    rebuild_ms := !rebuild_ms +. ((Telemetry.now () -. r0) *. 1000.)
  in
  timed_rebuild ();
  let target_found () =
    match tcls with
    | Some c -> Graph.find g c = Graph.find g root
    | None -> false
  in
  let out_of_time () = (Telemetry.now () -. t0) *. 1000. > budgets.max_millis in
  let stop = ref None in
  while !stop = None do
    if target_found () then stop := Some Target_found
    else if !iterations >= budgets.max_iterations then stop := Some Iter_budget
    else if out_of_time () then stop := Some Time_budget
    else begin
      incr iterations;
      let nodes_before = Graph.n_nodes g
      and unions_before = Graph.n_unions g in
      (* Matches are collected against the graph as it stood at the start
         of the iteration, then applied in one batch. *)
      let classes = ref [] in
      Graph.iter_classes g (fun r _ -> classes := r :: !classes);
      (* The deadline is re-checked per class: one iteration over a large
         graph can dwarf the whole budget, and a trip mid-match must not
         stretch the run to the iteration boundary. *)
      let deadline_hit = ref false in
      let insts =
        List.concat_map
          (fun cls ->
            if !deadline_hit then []
            else if out_of_time () then begin
              deadline_hit := true;
              []
            end
            else Ematch.matches_in_class g schema erules cls)
          !classes
      in
      let fresh =
        List.filter
          (fun (m : Ematch.match_inst) ->
            let key = (m.mrule.Ematch.ename, wkey m.mlhs, wkey m.mrhs) in
            if Seen.mem seen key then false
            else begin
              Seen.replace seen key ();
              true
            end)
          insts
      in
      let hit_node_budget = ref false in
      List.iter
        (fun (m : Ematch.match_inst) ->
          if Graph.n_nodes g >= budgets.max_enodes then
            hit_node_budget := true
          else begin
            let ca = Graph.add_term g m.mlhs in
            let cb = Graph.add_term g m.mrhs in
            let just =
              if m.mrule.Ematch.einternal then Graph.Jassoc
              else Graph.Jrule m.mrule.Ematch.ename
            in
            ignore (Graph.union g ~ja:m.mlhs ~jb:m.mrhs ~just ca cb)
          end)
        fresh;
      timed_rebuild ();
      if Telemetry.enabled () then
        Telemetry.instant
          ~args:
            [
              ("iter", string_of_int !iterations);
              ("e_nodes", string_of_int (Graph.n_nodes g));
              ("e_classes", string_of_int (Graph.n_classes g));
              ("unions", string_of_int (Graph.n_unions g));
              ("fresh_instances", string_of_int (List.length fresh));
            ]
          "egraph.iteration";
      if !deadline_hit then
        stop := Some (if target_found () then Target_found else Time_budget)
      else if !hit_node_budget then stop := Some Node_budget
      else if
        Graph.n_nodes g = nodes_before && Graph.n_unions g = unions_before
      then stop := Some (if target_found () then Target_found else Saturated)
    end
  done;
  let stop = Option.get !stop in
  if Telemetry.enabled () then
    Telemetry.instant
      ~args:[ ("reason", stop_reason_label stop) ]
      "egraph.stop";
  {
    graph = g;
    src;
    root;
    tgt;
    target = tcls;
    schema;
    stats =
      {
        iterations = !iterations;
        e_nodes = Graph.n_nodes g;
        e_classes = Graph.n_classes g;
        unions = Graph.n_unions g;
        rebuild_ms = !rebuild_ms;
        total_ms = (Telemetry.now () -. t0) *. 1000.;
        stop;
      };
  }

(* ------------------------------------------------------------------ *)
(* Extraction: the k cheapest spellings of the source's class. *)

let best_terms ?(k = 4) (sp : space) : wterm list =
  let tbl = Extract.k_best ~k sp.graph in
  List.map (fun (b : Extract.best) -> b.Extract.bt) (Extract.bests tbl sp.graph sp.root)

(* ------------------------------------------------------------------ *)
(* Equivalence and proof replay. *)

let equiv (sp : space) : bool =
  match sp.target with
  | Some c -> Graph.find sp.graph c = Graph.find sp.graph sp.root
  | None -> false

(* A step taken right-to-left replays as the flipped rule: "r" ↔ "r-1",
   matching {!Rewrite.Rule.flip}'s naming. *)
let oriented_name name fwd =
  if fwd then name
  else if Filename.check_suffix name "-1" then
    String.sub name 0 (String.length name - 2)
  else name ^ "-1"

(* Proof-forest steps → (rule, query) replay.  Internal reassociations
   drop out: the BFS engine matches modulo associativity, so an assoc
   step is a no-op to its checker and the next retained step still
   follows from the previous retained query. *)
let steps_to_path (steps : Graph.step list) : (string * Term.query) list =
  List.filter_map
    (fun (j, fwd, w) ->
      match j with
      | Graph.Jrule name -> (
        match query_of_wterm w with
        | Some q -> Some (oriented_name name fwd, q)
        | None -> None)
      | Graph.Jassoc | Graph.Jcong -> None)
    steps

(* Derivation from the source to any term of its class.  The term is
   first re-added: after the final rebuild the hash-cons keys are
   canonical, so an extracted candidate folds back onto existing e-nodes
   (alias proof nodes only, no new classes) and becomes explainable. *)
let path_to (sp : space) (w : wterm) : (string * Term.query) list option =
  let c = Graph.add_term sp.graph w in
  if Graph.find sp.graph c <> Graph.find sp.graph sp.root then None
  else Some (steps_to_path (Graph.explain sp.graph sp.src w))

let path (sp : space) : (string * Term.query) list option =
  match sp.tgt with
  | Some w when equiv sp -> path_to sp w
  | _ -> None

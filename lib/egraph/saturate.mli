(** The saturation loop: grow the e-graph under the catalog until
    nothing new appears or a budget trips, then answer optimization
    questions by extraction and equivalence questions by same-class
    checks.

    Three throughput levers, all outcome-preserving: parallel e-matching
    (per-class queries fan out over an optional domain pool and merge
    back in class order, so every stat is bit-identical at any jobs
    count), incremental matching (freshness stamps skip (rule, class)
    pairs unchanged since the rule's last run), and deterministic rule
    scheduling (rules that fired before but now run fruitlessly back off
    exponentially, capped and never excluded). *)

open Kola
open Lang

type budgets = { max_enodes : int; max_iterations : int; max_millis : float }

val default_budgets : budgets

type stop_reason =
  | Saturated  (** a full iteration added no e-node and united no classes *)
  | Node_budget
  | Iter_budget
  | Time_budget
  | Target_found  (** equivalence query answered early *)

val stop_reason_label : stop_reason -> string

type stats = {
  iterations : int;
  e_nodes : int;
  e_classes : int;
  unions : int;
  matches_skipped : int;
      (** (rule, class) pairs skipped because the class was unchanged
          since the rule's last run *)
  rules_deferred : int;
      (** rule-iterations skipped by scheduler backoff, summed *)
  rebuild_ms : float;
  total_ms : float;
  stop : stop_reason;
}

val pp_stats : Format.formatter -> stats -> unit

type space = {
  graph : Graph.t;
  src : wterm;  (** the source query, verbatim *)
  root : int;  (** its class *)
  tgt : wterm option;  (** the target query, when posed *)
  target : int option;  (** its class *)
  schema : Schema.t;
  stats : stats;
}

val wterm_of_query : Term.Hc.hquery -> wterm
val hquery_of_wterm : wterm -> Term.Hc.hquery option
val query_of_wterm : wterm -> Term.query option

val saturate :
  ?schema:Schema.t ->
  ?budgets:budgets ->
  ?pool:Kola_parallel.Pool.t ->
  ?target:Term.Hc.hquery ->
  rules:Rewrite.Rule.t list ->
  Term.Hc.hquery ->
  space
(** Saturate from the source query (and target, when posed).  With
    [?pool] the match phase fans out across its domains; outcomes —
    unions, stats, extraction — are bit-identical with or without a
    pool, at any pool size.  Budgets bound e-nodes, iterations and
    wall-clock on the monotonic clock; the stop reason is always
    reported, never silent. *)

val best_terms : ?k:int -> space -> wterm list
(** The [k] cheapest distinct spellings of the source's class under
    {!Lang.op_weight}, cheapest first — candidates for re-measurement by
    the executed cost model. *)

val anchor_deviations : ?cap:int -> space -> wterm -> wterm list
(** One-point deviations of a concrete anchor spelling: at every subterm
    position, each member e-node's witness substituted in place of that
    subterm.  Witness-based, so no weight model is involved; at most
    [cap] (default 512) results.  Around the source this surfaces every
    single-site rewrite saturation discovered as a full, provably
    equivalent query spelling. *)

val extraction_front : ?k:int -> space -> wterm list
(** {!best_terms}, the one-point deviations of the weight-cheapest
    spelling ({!Extract.deviations}), and the witness deviations around
    the source ({!anchor_deviations}), distinct.  The deviation
    neighborhoods keep spellings whose measured-cost win the weights
    cannot see (e.g. a hoisted loop invariant) in the re-measured front.
    [k] defaults to 2. *)

val equiv : space -> bool
(** Did source and target end up in the same class? *)

val path_to : space -> wterm -> (string * Term.query) list option
(** Derivation from the source to any term of its class, as (rule name,
    resulting query) steps replayable against the BFS engine; [None] if
    the term is not in the source's class. *)

val path : space -> (string * Term.query) list option
(** {!path_to} the posed target, when {!equiv}. *)

(** E-matching: firing the catalog's declarative patterns against
    e-classes.  Patterns are the rules' own interned bodies — no separate
    pattern language; substitutions are ordinary {!Rewrite.Subst.H}
    values, so preconditions and instantiation reuse the BFS machinery.

    Associativity is handled by two internal reassociation rules rather
    than matching windows: at saturation every grouping of a composition
    chain is present, and plain binary structural matching sees every
    window the BFS chain matcher would. *)

open Lang

type erule = {
  eid : int;  (** position in the compiled catalog; scheduler index *)
  ename : string;
  esource : Rewrite.Rule.t;  (** for preconditions and replay *)
  elhs : wterm;
  erhs : wterm;
  emask : int;
      (** root-head bit a class must contain ({!Rewrite.Index.rule_head_mask});
          [0] when the pattern has no fixed head *)
  einternal : bool;  (** reassociation scaffolding, invisible in proofs *)
}

val compile : Rewrite.Rule.t list -> erule list
(** Compile the catalog (appending the internal reassociation rules);
    [eid]s number the result contiguously from 0. *)

(** One matched instance, ready to apply. *)
type match_inst = {
  mrule : erule;
  mlhs : wterm;  (** instantiated left side; a member of the matched class *)
  mrhs : wterm;
}

val matches_of_rule :
  Graph.t -> Kola.Schema.t -> erule -> int -> match_inst list
(** One rule against one class: every precondition-passing instance.
    Reads only — safe from pool domains between rebuilds (after
    {!Graph.canonicalize}). *)

val matches_in_class :
  Graph.t -> Kola.Schema.t -> erule list -> int -> match_inst list

(* The e-graph: e-classes over a union-find, hash-consed e-nodes keyed by
   (operator, canonical child classes), and a worklist-driven rebuild that
   restores congruence closure after unions.

   Proof forest (Nieuwenhuis–Oliveras style): every distinct term ever
   added owns a proof node; each union adds exactly one edge between the
   two concrete terms that justified it (a rule's instantiated sides, or
   the witnesses of two e-nodes that became congruent), re-rooting one
   tree so the forest partition always equals the class partition.
   [explain] walks the tree path between two terms and flattens congruence
   edges recursively, lifting child rewrites through the parent operator —
   yielding a step-by-step derivation replayable against the BFS engine.

   Mutation is single-domain: all writes (add_term, union, rebuild) come
   from the controlling domain.  Between [canonicalize] and the next
   mutation the structure is read-only — [find] is a bare array read —
   so the saturation loop may fan match queries out over a domain pool
   during that window. *)

open Lang

type just =
  | Jrule of string  (** catalog rule name as fired, lhs → rhs *)
  | Jassoc  (** internal ∘-reassociation; invisible modulo associativity *)
  | Jcong  (** same operator, child classes pairwise equal *)

(* A proof-forest node.  [pparent = Some (p, j, fwd)] asserts this node's
   term rewrites to [p]'s term by [j] ([fwd = false]: by [j] read
   right-to-left). *)
type pnode = {
  pterm : wterm;
  mutable pparent : (pnode * just * bool) option;
}

type enode = {
  op : op;
  children : int array;  (** class ids; canonicalized in place on rebuild *)
  witness : wterm;  (** the concrete term this e-node was created from *)
  wproof : pnode;
  mutable ecls : int;  (** class at insertion; resolve through [find] *)
}

type eclass = {
  mutable nodes : enode list;
  mutable parents : enode list;  (** e-nodes with this class as a child *)
  mutable cmask : int;  (** OR of member operators' head bits *)
  csort : sort;
  cwitness : wterm;  (** first member's witness; stable across merges *)
}

module Key = struct
  type t = op * int array

  let equal (o1, c1) (o2, c2) =
    op_equal o1 o2
    && Array.length c1 = Array.length c2
    &&
    let rec go i = i < 0 || (c1.(i) = c2.(i) && go (i - 1)) in
    go (Array.length c1 - 1)

  let hash (o, cs) =
    Array.fold_left
      (fun acc c -> ((acc * 131) + c) land max_int)
      (op_hash o) cs
end

module Ktbl = Hashtbl.Make (Key)

type t = {
  uf : Uf.t;
  classes : (int, eclass) Hashtbl.t;  (** root id → class data *)
  hashcons : enode Ktbl.t;  (** canonical (op, children) → e-node *)
  proofs : (wkey, pnode) Hashtbl.t;
  term_class : (wkey, int) Hashtbl.t;  (** added term → class at insertion *)
  mutable dirty : int list;  (** classes whose parents need recanonicalizing *)
  mutable touched : int list;  (** classes changed since last [take_touched] *)
  mutable n_nodes : int;
  mutable n_unions : int;
}

let create () =
  {
    uf = Uf.create ();
    classes = Hashtbl.create 256;
    hashcons = Ktbl.create 256;
    proofs = Hashtbl.create 256;
    term_class = Hashtbl.create 256;
    dirty = [];
    touched = [];
    n_nodes = 0;
    n_unions = 0;
  }

let find t i = Uf.find t.uf i
let n_nodes t = t.n_nodes
let n_unions t = t.n_unions
let n_classes t = Hashtbl.length t.classes
let eclass t i = Hashtbl.find t.classes (find t i)
let nodes t i = (eclass t i).nodes
let class_mask t i = (eclass t i).cmask
let class_sort t i = (eclass t i).csort
let witness t i = (eclass t i).cwitness
let iter_classes t f = Hashtbl.iter (fun root c -> f root c) t.classes
let parents t i = (eclass t i).parents

(* Live roots in ascending id order — a stable iteration order for the
   match phase, independent of hash-table internals and of how the work
   is later chunked across domains. *)
let class_roots t =
  List.sort compare (Hashtbl.fold (fun root _ acc -> root :: acc) t.classes [])

(* Roots (canonical) of every class changed — created or merged into —
   since the previous call; clears the accumulator.  Drives the
   saturation loop's freshness stamps. *)
let take_touched t =
  let roots = List.sort_uniq compare (List.map (Uf.find t.uf) t.touched) in
  t.touched <- [];
  roots

let canonicalize t = Uf.compress t.uf

let canon_key t (n : enode) : Key.t =
  Array.iteri (fun i c -> n.children.(i) <- find t c) n.children;
  (n.op, n.children)

(* ------------------------------------------------------------------ *)
(* Adding terms.  Memoized per term: re-adding any term previously added
   returns its (current) class without touching the graph, which is what
   makes "re-add a class witness" a sound way to reconstruct bindings. *)

let rec add_term t (w : wterm) : int =
  let k = wkey w in
  match Hashtbl.find_opt t.term_class k with
  | Some c -> find t c
  | None ->
    let op, cws = decompose w in
    let children = Array.of_list (List.map (add_term t) cws) in
    let key = (op, children) in
    (match Ktbl.find_opt t.hashcons key with
    | Some n ->
      (* Existing e-node; [w] is an alias spelling of its class.  The
         fresh proof node hangs off the e-node's witness by congruence
         (same operator, same child classes). *)
      let c = find t n.ecls in
      let pn = { pterm = w; pparent = None } in
      pn.pparent <- Some (n.wproof, Jcong, true);
      Hashtbl.replace t.proofs k pn;
      Hashtbl.replace t.term_class k c;
      c
    | None ->
      let id = Uf.make t.uf in
      let pn = { pterm = w; pparent = None } in
      let n = { op; children; witness = w; wproof = pn; ecls = id } in
      Hashtbl.replace t.classes id
        {
          nodes = [ n ];
          parents = [];
          cmask = op_bit op;
          csort = sort_of_op op;
          cwitness = w;
        };
      Ktbl.replace t.hashcons key n;
      Hashtbl.replace t.proofs k pn;
      Hashtbl.replace t.term_class k id;
      t.touched <- id :: t.touched;
      t.n_nodes <- t.n_nodes + 1;
      (* Register as a parent of each distinct child class. *)
      let seen = ref [] in
      Array.iter
        (fun c ->
          let r = find t c in
          if not (List.mem r !seen) then begin
            seen := r :: !seen;
            let cc = Hashtbl.find t.classes r in
            cc.parents <- n :: cc.parents
          end)
        children;
      id)

(* Current class of a previously added term; [None] if never added. *)
let find_term t (w : wterm) : int option =
  Option.map (find t) (Hashtbl.find_opt t.term_class (wkey w))

let add_query t (hq : Kola.Term.Hc.hquery) : int =
  add_term t (Wq (hq.Kola.Term.Hc.hbody, hq.Kola.Term.Hc.harg))

(* ------------------------------------------------------------------ *)
(* Unions and rebuild. *)

(* Reverse every parent pointer above [pn] so it becomes the root of its
   proof tree; edge orientations flip with the pointers. *)
let rec reroot (pn : pnode) =
  match pn.pparent with
  | None -> ()
  | Some (par, j, fwd) ->
    reroot par;
    par.pparent <- Some (pn, j, not fwd);
    pn.pparent <- None

(* Merge the classes of [a] and [b], justified by [just] rewriting [ja]
   (a term of [a]'s class) into [jb] (a term of [b]'s class).  Both terms
   must already have been added.  Returns [false] when the classes
   already coincided (nothing recorded). *)
let union t ~ja ~jb ~just a b : bool =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    let pa = Hashtbl.find t.proofs (wkey ja) in
    let pb = Hashtbl.find t.proofs (wkey jb) in
    reroot pa;
    pa.pparent <- Some (pb, just, true);
    let ca = Hashtbl.find t.classes ra and cb = Hashtbl.find t.classes rb in
    assert (ca.csort = cb.csort);
    let root = Uf.union t.uf ra rb in
    let cw, cl = if root = ra then (ca, cb) else (cb, ca) in
    cw.nodes <- List.rev_append cl.nodes cw.nodes;
    cw.parents <- List.rev_append cl.parents cw.parents;
    cw.cmask <- cw.cmask lor cl.cmask;
    Hashtbl.remove t.classes (if root = ra then rb else ra);
    Hashtbl.replace t.classes root cw;
    t.dirty <- root :: t.dirty;
    t.touched <- root :: t.touched;
    t.n_unions <- t.n_unions + 1;
    true
  end

(* Restore congruence: recanonicalize the parents of every merged class;
   parents whose keys collide with an existing e-node unite their classes
   (with a congruence proof edge), possibly dirtying further classes.
   Iterates to a fixpoint. *)
let rebuild t =
  while t.dirty <> [] do
    let dirty = t.dirty in
    t.dirty <- [];
    let roots =
      List.sort_uniq compare (List.map (fun i -> find t i) dirty)
    in
    List.iter
      (fun r ->
        match Hashtbl.find_opt t.classes r with
        | None -> ()  (* merged away by an earlier collision this pass *)
        | Some c ->
          List.iter
            (fun n ->
              let key = canon_key t n in
              match Ktbl.find_opt t.hashcons key with
              | Some m when m != n ->
                if find t m.ecls <> find t n.ecls then
                  ignore
                    (union t ~ja:n.witness ~jb:m.witness ~just:Jcong n.ecls
                       m.ecls)
              | _ -> Ktbl.replace t.hashcons key n)
            c.parents)
      roots
  done

(* ------------------------------------------------------------------ *)
(* Explanations. *)

exception Proof_too_large

type step = just * bool * wterm
(** one rewrite: justification, direction (false = right-to-left), and
    the term it produces *)

(* Path from [p] up to its tree root, as (node, edge-to-parent) pairs. *)
let ancestors (p : pnode) =
  let rec go acc p =
    match p.pparent with
    | None -> List.rev ((p, None) :: acc)
    | Some (par, j, fwd) -> go ((p, Some (par, j, fwd)) :: acc) par
  in
  go [] p

let rec explain_terms t budget (w1 : wterm) (w2 : wterm) : step list =
  if wkey w1 = wkey w2 then []
  else begin
    let p1 = Hashtbl.find t.proofs (wkey w1) in
    let p2 = Hashtbl.find t.proofs (wkey w2) in
    let up1 = ancestors p1 in
    let on_path1 = List.map fst up1 in
    (* Walk p2 upward to the first node on p1's root path — the LCA. *)
    let rec to_lca acc p =
      if List.memq p on_path1 then (p, List.rev acc)
      else
        match p.pparent with
        | None -> invalid_arg "Graph.explain: terms not equal"
        | Some (par, j, fwd) -> to_lca ((p, par, j, fwd) :: acc) par
    in
    let lca, down_rev = to_lca [] p2 in
    (* Edges from w1 up to the LCA, in stored orientation... *)
    let rec up_edges = function
      | (p, Some (par, j, fwd)) :: rest when not (p == lca) ->
        (p.pterm, par.pterm, j, fwd) :: up_edges rest
      | _ -> []
    in
    let ups = up_edges up1 in
    (* ...then from the LCA down to w2, orientation reversed. *)
    let downs =
      List.rev_map (fun (p, par, j, fwd) -> (par.pterm, p.pterm, j, not fwd))
        down_rev
    in
    List.concat_map
      (fun (a, b, j, fwd) -> edge_steps t budget a b j fwd)
      (ups @ downs)
  end

(* One forest edge as concrete rewrite steps.  Rule and assoc edges are a
   single root rewrite of the edge's own terms; congruence edges rewrite
   the children left to right, each child explanation lifted through the
   parent operator with already-rewritten siblings on the left. *)
and edge_steps t budget (a : wterm) (b : wterm) (j : just) (fwd : bool) :
    step list =
  decr budget;
  if !budget < 0 then raise Proof_too_large;
  match j with
  | Jrule _ | Jassoc -> [ (j, fwd, b) ]
  | Jcong ->
    let op, ca = decompose a in
    let _, cb = decompose b in
    let ca = Array.of_list ca and cb = Array.of_list cb in
    let k = Array.length ca in
    let steps = ref [] in
    for i = 0 to k - 1 do
      let child_steps = explain_terms t budget ca.(i) cb.(i) in
      let ctx (w : wterm) =
        Lang.rebuild op
          (List.init k (fun m ->
               if m < i then cb.(m) else if m = i then w else ca.(m)))
      in
      List.iter
        (fun (j', fwd', w') -> steps := (j', fwd', ctx w') :: !steps)
        child_steps
    done;
    List.rev !steps

let explain ?(max_steps = 200_000) t (w1 : wterm) (w2 : wterm) : step list =
  explain_terms t (ref max_steps) w1 w2

(** The e-graph: e-classes over a union-find, hash-consed e-nodes keyed
    by (operator, canonical child classes), and a worklist-driven rebuild
    that restores congruence closure after unions.  Carries a
    Nieuwenhuis–Oliveras proof forest so every equality is explainable as
    a concrete rewrite derivation.

    Mutation is single-domain.  Between {!canonicalize} and the next
    mutation the structure is read-only — {!find} is a bare array read —
    so match queries may fan out over a domain pool in that window. *)

open Lang

(** Why two terms were united. *)
type just =
  | Jrule of string  (** catalog rule name as fired, lhs → rhs *)
  | Jassoc  (** internal ∘-reassociation; invisible modulo associativity *)
  | Jcong  (** same operator, child classes pairwise equal *)

(** A proof-forest node.  [pparent = Some (p, j, fwd)] asserts this
    node's term rewrites to [p]'s term by [j] ([fwd = false]: by [j]
    read right-to-left). *)
type pnode = {
  pterm : wterm;
  mutable pparent : (pnode * just * bool) option;
}

type enode = {
  op : op;
  children : int array;  (** class ids; canonicalized in place on rebuild *)
  witness : wterm;  (** the concrete term this e-node was created from *)
  wproof : pnode;
  mutable ecls : int;  (** class at insertion; resolve through [find] *)
}

type eclass = {
  mutable nodes : enode list;
  mutable parents : enode list;  (** e-nodes with this class as a child *)
  mutable cmask : int;  (** OR of member operators' head bits *)
  csort : sort;
  cwitness : wterm;  (** first member's witness; stable across merges *)
}

type t

val create : unit -> t

val find : t -> int -> int
(** Canonical class id. *)

val n_nodes : t -> int
val n_unions : t -> int
val n_classes : t -> int

val eclass : t -> int -> eclass
val nodes : t -> int -> enode list
val parents : t -> int -> enode list
val class_mask : t -> int -> int
val class_sort : t -> int -> sort
val witness : t -> int -> wterm
val iter_classes : t -> (int -> eclass -> unit) -> unit

val class_roots : t -> int list
(** Live roots in ascending id order — a stable iteration order for the
    match phase, independent of hash-table internals and of how the work
    is later chunked across domains. *)

val take_touched : t -> int list
(** Roots (canonical) of every class changed — created or merged into —
    since the previous call; clears the accumulator.  Drives the
    saturation loop's freshness stamps. *)

val canonicalize : t -> unit
(** Fully compress the union-find: until the next mutation, {!find} is a
    write-free array read, so the graph may be shared read-only across
    domains. *)

val add_term : t -> wterm -> int
(** Class of [w], inserting e-nodes for any unseen subterms.  Memoized
    per term: re-adding returns the current class without touching the
    graph. *)

val find_term : t -> wterm -> int option
(** Current class of a previously added term; [None] if never added. *)

val add_query : t -> Kola.Term.Hc.hquery -> int

val union : t -> ja:wterm -> jb:wterm -> just:just -> int -> int -> bool
(** Merge the classes of the two ids, justified by [just] rewriting [ja]
    (a term of the first class) into [jb] (a term of the second).  Both
    terms must already have been added.  [false] when the classes
    already coincided (nothing recorded). *)

val rebuild : t -> unit
(** Restore congruence closure after a batch of unions; iterates the
    dirty-parents worklist to a fixpoint. *)

exception Proof_too_large

type step = just * bool * wterm
(** one rewrite: justification, direction (false = right-to-left), and
    the term it produces *)

val explain : ?max_steps:int -> t -> wterm -> wterm -> step list
(** Derivation between two added, provably-equal terms, congruence edges
    flattened to child rewrites lifted through the parent operator.
    Raises {!Proof_too_large} past [max_steps] (default 200_000) and
    [Invalid_argument] if the terms are not equal. *)

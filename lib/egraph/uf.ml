(* Union-find over dense integer ids: path compression on find, union by
   rank.  The e-graph allocates one element per e-class; merged classes
   keep a single live root, and every structure keyed by class id is
   resolved through [find] before use. *)

type t = {
  mutable parent : int array;
  mutable rank : int array;
  mutable len : int;
}

let create ?(capacity = 256) () =
  let capacity = max 1 capacity in
  { parent = Array.make capacity 0; rank = Array.make capacity 0; len = 0 }

let length t = t.len

let grow t =
  let cap = Array.length t.parent in
  if t.len >= cap then begin
    let parent = Array.make (2 * cap) 0 in
    let rank = Array.make (2 * cap) 0 in
    Array.blit t.parent 0 parent 0 cap;
    Array.blit t.rank 0 rank 0 cap;
    t.parent <- parent;
    t.rank <- rank
  end

(* A fresh singleton class; returns its id. *)
let make t =
  grow t;
  let id = t.len in
  t.parent.(id) <- id;
  t.len <- t.len + 1;
  id

(* Two-pass find with full path compression. *)
let find t i =
  let rec root j = if t.parent.(j) = j then j else root t.parent.(j) in
  let r = root i in
  let rec compress j =
    if t.parent.(j) <> r then begin
      let next = t.parent.(j) in
      t.parent.(j) <- r;
      compress next
    end
  in
  compress i;
  r

let same t a b = find t a = find t b

(* Point every element directly at its root.  Afterwards [find] is a
   single array read that writes nothing (the compression loop exits
   immediately), so a read-only phase — parallel e-matching between
   rebuilds — can call it from several domains without racing on the
   parent array. *)
let compress t =
  for i = 0 to t.len - 1 do
    ignore (find t i)
  done

(* Union by rank; returns the surviving root.  No-op (returns the shared
   root) when the classes already coincide. *)
let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else begin
    let win, lose =
      if t.rank.(ra) > t.rank.(rb) then (ra, rb)
      else if t.rank.(ra) < t.rank.(rb) then (rb, ra)
      else begin
        t.rank.(ra) <- t.rank.(ra) + 1;
        (ra, rb)
      end
    in
    t.parent.(lose) <- win;
    win
  end

(* The e-node language: one operator per KOLA constructor across all three
   sorts (functions, predicates, values) plus a query wrapper, with values
   kept as concrete leaves.

   E-nodes are [op] applied to an array of e-class ids; the operator payload
   carries everything a constructor holds besides sub-terms (primitive
   names, arithmetic/aggregate/set operators, constant values as interned
   vnodes).  Values never appear as rewrite targets — no rule in the
   catalog rewrites inside a constant — so each distinct value is a
   nullary leaf operator and value e-classes stay singletons forever.

   Every e-node also carries a *witness*: the concrete hash-consed term it
   was created from.  Witnesses are what the proof forest stores, what
   extraction rebuilds candidates from, and what precondition checks read;
   they are fixed at creation, so re-adding a class's witness always lands
   back in that class. *)

open Kola
open Kola.Term

type op =
  (* function sort *)
  | OId
  | OPi1
  | OPi2
  | OPrim of string
  | OCompose
  | OPairf
  | OTimes
  | OKf
  | OCf
  | OCon
  | OArith of arith
  | OAgg of agg
  | OSetop of setop
  | OSng
  | OFlat
  | OIterate
  | OIter
  | OJoin
  | ONest
  | OUnnest
  (* predicate sort *)
  | OEq
  | OLeq
  | OGt
  | OIn
  | OPrimp of string
  | OOplus
  | OAndp
  | OOrp
  | OInv
  | OConv
  | OKp of bool
  | OCp
  (* leaves and wrappers *)
  | OVal of Hc.vnode  (** concrete value; nullary *)
  | OQuery  (** children: [| body; arg |] *)

type sort = Func | Pred | Val | Query

let sort_of_op = function
  | OId | OPi1 | OPi2 | OPrim _ | OCompose | OPairf | OTimes | OKf | OCf
  | OCon | OArith _ | OAgg _ | OSetop _ | OSng | OFlat | OIterate | OIter
  | OJoin | ONest | OUnnest -> Func
  | OEq | OLeq | OGt | OIn | OPrimp _ | OOplus | OAndp | OOrp | OInv | OConv
  | OKp _ | OCp -> Pred
  | OVal _ -> Val
  | OQuery -> Query

let op_equal a b =
  match a, b with
  | OVal v1, OVal v2 -> v1 == v2
  | OPrim s1, OPrim s2 | OPrimp s1, OPrimp s2 -> String.equal s1 s2
  | OArith x, OArith y -> x = y
  | OAgg x, OAgg y -> x = y
  | OSetop x, OSetop y -> x = y
  | OKp x, OKp y -> Bool.equal x y
  | _, _ -> a == b || a = b

let op_hash = function
  | OVal v -> (v.Hc.vid * 0x9e3779b1) land max_int
  | OPrim s -> Hashtbl.hash ("f", s)
  | OPrimp s -> Hashtbl.hash ("p", s)
  | op -> Hashtbl.hash op

(* Head-occurrence bit of an operator, in the {!Rewrite.Index.head_bit} /
   {!Kola.Term.Hc.fshape_bit} layout (function heads at bits 0-19 in
   declaration order, predicate heads at 20-31), so a rule's
   [Index.rule_head_mask] prunes e-classes exactly as it prunes interned
   subtrees.  Leaves and the query wrapper carry no head bit. *)
let op_bit = function
  | OId -> 1 lsl 0
  | OPi1 -> 1 lsl 1
  | OPi2 -> 1 lsl 2
  | OPrim _ -> 1 lsl 3
  | OCompose -> 1 lsl 4
  | OPairf -> 1 lsl 5
  | OTimes -> 1 lsl 6
  | OKf -> 1 lsl 7
  | OCf -> 1 lsl 8
  | OCon -> 1 lsl 9
  | OArith _ -> 1 lsl 10
  | OAgg _ -> 1 lsl 11
  | OSetop _ -> 1 lsl 12
  | OSng -> 1 lsl 13
  | OFlat -> 1 lsl 14
  | OIterate -> 1 lsl 15
  | OIter -> 1 lsl 16
  | OJoin -> 1 lsl 17
  | ONest -> 1 lsl 18
  | OUnnest -> 1 lsl 19
  | OEq -> 1 lsl 20
  | OLeq -> 1 lsl 21
  | OGt -> 1 lsl 22
  | OIn -> 1 lsl 23
  | OPrimp _ -> 1 lsl 24
  | OOplus -> 1 lsl 25
  | OAndp -> 1 lsl 26
  | OOrp -> 1 lsl 27
  | OInv -> 1 lsl 28
  | OConv -> 1 lsl 29
  | OKp _ -> 1 lsl 30
  | OCp -> 1 lsl 31
  | OVal _ | OQuery -> 0

(* ------------------------------------------------------------------ *)
(* Witness terms: concrete hash-consed terms spanning all sorts. *)

type wterm =
  | Wf of Hc.fnode
  | Wp of Hc.pnode
  | Wv of Hc.vnode
  | Wq of Hc.fnode * Hc.vnode

(* Identity key of a witness — hash-consing makes term equality an id
   comparison per sort. *)
type wkey = KF of int | KP of int | KV of int | KQ of int * int

let wkey = function
  | Wf f -> KF f.Hc.fid
  | Wp p -> KP p.Hc.pid
  | Wv v -> KV v.Hc.vid
  | Wq (f, v) -> KQ (f.Hc.fid, v.Hc.vid)

exception Hole_in_ground_term of string

(* Operator and child witnesses of a concrete term.  Holes cannot occur:
   the graph only ever holds ground terms (patterns are matched against
   it, never stored in it). *)
let decompose : wterm -> op * wterm list = function
  | Wv v -> (OVal v, [])
  | Wq (f, v) -> (OQuery, [ Wf f; Wv v ])
  | Wp p -> (
    match p.Hc.pshape with
    | Hc.HEq -> (OEq, [])
    | Hc.HLeq -> (OLeq, [])
    | Hc.HGt -> (OGt, [])
    | Hc.HIn -> (OIn, [])
    | Hc.HPrimp s -> (OPrimp s, [])
    | Hc.HKp b -> (OKp b, [])
    | Hc.HOplus (q, f) -> (OOplus, [ Wp q; Wf f ])
    | Hc.HAndp (q, r) -> (OAndp, [ Wp q; Wp r ])
    | Hc.HOrp (q, r) -> (OOrp, [ Wp q; Wp r ])
    | Hc.HInv q -> (OInv, [ Wp q ])
    | Hc.HConv q -> (OConv, [ Wp q ])
    | Hc.HCp (q, v) -> (OCp, [ Wp q; Wv v ])
    | Hc.HPhole h -> raise (Hole_in_ground_term h))
  | Wf f -> (
    match f.Hc.fshape with
    | Hc.HId -> (OId, [])
    | Hc.HPi1 -> (OPi1, [])
    | Hc.HPi2 -> (OPi2, [])
    | Hc.HPrim s -> (OPrim s, [])
    | Hc.HSng -> (OSng, [])
    | Hc.HFlat -> (OFlat, [])
    | Hc.HArith op -> (OArith op, [])
    | Hc.HAgg op -> (OAgg op, [])
    | Hc.HSetop op -> (OSetop op, [])
    | Hc.HCompose (a, b) -> (OCompose, [ Wf a; Wf b ])
    | Hc.HPairf (a, b) -> (OPairf, [ Wf a; Wf b ])
    | Hc.HTimes (a, b) -> (OTimes, [ Wf a; Wf b ])
    | Hc.HNest (a, b) -> (ONest, [ Wf a; Wf b ])
    | Hc.HUnnest (a, b) -> (OUnnest, [ Wf a; Wf b ])
    | Hc.HKf v -> (OKf, [ Wv v ])
    | Hc.HCf (a, v) -> (OCf, [ Wf a; Wv v ])
    | Hc.HCon (p, a, b) -> (OCon, [ Wp p; Wf a; Wf b ])
    | Hc.HIterate (p, a) -> (OIterate, [ Wp p; Wf a ])
    | Hc.HIter (p, a) -> (OIter, [ Wp p; Wf a ])
    | Hc.HJoin (p, a) -> (OJoin, [ Wp p; Wf a ])
    | Hc.HFhole h -> raise (Hole_in_ground_term h))

let as_f = function Wf f -> f | _ -> invalid_arg "Lang.as_f"
let as_p = function Wp p -> p | _ -> invalid_arg "Lang.as_p"
let as_v = function Wv v -> v | _ -> invalid_arg "Lang.as_v"

(* Inverse of [decompose]: the witness an operator builds from child
   witnesses, through the interning smart constructors. *)
let rebuild (op : op) (cs : wterm list) : wterm =
  match op, cs with
  | OVal v, [] -> Wv v
  | OQuery, [ b; a ] -> Wq (as_f b, as_v a)
  | OId, [] -> Wf Hc.id
  | OPi1, [] -> Wf Hc.pi1
  | OPi2, [] -> Wf Hc.pi2
  | OPrim s, [] -> Wf (Hc.prim s)
  | OSng, [] -> Wf Hc.sng
  | OFlat, [] -> Wf Hc.flat
  | OArith o, [] -> Wf (Hc.arith o)
  | OAgg o, [] -> Wf (Hc.agg o)
  | OSetop o, [] -> Wf (Hc.setop o)
  | OCompose, [ a; b ] -> Wf (Hc.compose (as_f a) (as_f b))
  | OPairf, [ a; b ] -> Wf (Hc.pairf (as_f a) (as_f b))
  | OTimes, [ a; b ] -> Wf (Hc.times (as_f a) (as_f b))
  | ONest, [ a; b ] -> Wf (Hc.nest (as_f a) (as_f b))
  | OUnnest, [ a; b ] -> Wf (Hc.unnest (as_f a) (as_f b))
  | OKf, [ v ] -> Wf (Hc.kf (as_v v))
  | OCf, [ a; v ] -> Wf (Hc.cf (as_f a) (as_v v))
  | OCon, [ p; a; b ] -> Wf (Hc.con (as_p p) (as_f a) (as_f b))
  | OIterate, [ p; a ] -> Wf (Hc.iterate (as_p p) (as_f a))
  | OIter, [ p; a ] -> Wf (Hc.iter (as_p p) (as_f a))
  | OJoin, [ p; a ] -> Wf (Hc.join (as_p p) (as_f a))
  | OEq, [] -> Wp Hc.eq
  | OLeq, [] -> Wp Hc.leq
  | OGt, [] -> Wp Hc.gt
  | OIn, [] -> Wp Hc.inp
  | OPrimp s, [] -> Wp (Hc.primp s)
  | OKp b, [] -> Wp (Hc.kp b)
  | OOplus, [ q; f ] -> Wp (Hc.oplus (as_p q) (as_f f))
  | OAndp, [ q; r ] -> Wp (Hc.andp (as_p q) (as_p r))
  | OOrp, [ q; r ] -> Wp (Hc.orp (as_p q) (as_p r))
  | OInv, [ q ] -> Wp (Hc.inv (as_p q))
  | OConv, [ q ] -> Wp (Hc.conv (as_p q))
  | OCp, [ q; v ] -> Wp (Hc.cp (as_p q) (as_v v))
  | _ -> invalid_arg "Lang.rebuild: arity mismatch"

(* Per-node extraction weight, mirroring the cost model's philosophy
   ({!Optimizer.Cost}: tuples touched dominate at weight 1 per tuple,
   combinator dispatch costs 0.1 per call).  Extraction cannot execute
   candidates, so data-moving combinators carry a tuple-scale surcharge
   and everything else costs one dispatch; the caller re-measures the
   extracted front with the executed model, so these weights only rank
   candidates, never report costs. *)
let op_weight = function
  | OJoin -> 12.0
  | ONest -> 8.0
  | OUnnest -> 5.0
  | OTimes -> 4.0
  | OIterate | OIter -> 3.0
  | OFlat | OSetop _ | OAgg _ -> 2.0
  | OVal _ | OQuery -> 0.0
  | _ -> 0.1

(* How many times child [i] runs per execution of the operator: the
   collection combinators apply their predicate and body once per input
   element, so weight accumulated inside them multiplies by a nominal
   collection size.  This is what makes extraction prefer hoisted
   spellings — a loop-invariant subterm moved out of an [iter] body
   sheds the factor, exactly as its measured per-tuple cost does, even
   though the flat sum of op weights grows. *)
let op_child_factor op (_i : int) =
  match op with OIter | OIterate | OJoin -> 8.0 | _ -> 1.0

let pp_wterm ppf = function
  | Wf f -> Pretty.pp_func ppf f.Hc.fterm
  | Wp p -> Pretty.pp_pred ppf p.Hc.pterm
  | Wv v -> Value.pp ppf v.Hc.vterm
  | Wq (f, v) ->
    Fmt.pf ppf "%a ! %a" Pretty.pp_func f.Hc.fterm Value.pp v.Hc.vterm

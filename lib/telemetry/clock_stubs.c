/* Monotonic clock for telemetry spans and search deadlines.

   The OCaml stdlib only exposes wall-clock time (Unix.gettimeofday), which
   jumps under NTP adjustment — useless for measuring spans or enforcing
   deadlines.  This stub reads CLOCK_MONOTONIC where available and falls
   back to gettimeofday elsewhere.  Seconds as a double: the monotonic
   epoch is boot time, so the mantissa comfortably holds nanosecond
   resolution for centuries of uptime. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <sys/time.h>

double kola_clock_monotonic_s(value unit)
{
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return (double)ts.tv_sec + (double)ts.tv_nsec * 1e-9;
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return (double)tv.tv_sec + (double)tv.tv_usec * 1e-6;
  }
}

CAMLprim value kola_clock_monotonic_s_byte(value unit)
{
  return caml_copy_double(kola_clock_monotonic_s(unit));
}

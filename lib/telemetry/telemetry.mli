(** Zero-dependency engine telemetry: monotonic-clock spans, named
    counters and histograms, collected into per-domain buffers and merged
    at {!stop} time, with two exporters — Chrome [trace_event] JSON
    (loadable in [chrome://tracing] / Perfetto) and a compact text
    summary.

    The library is built for instrumentation that must be provably free
    when disabled: every recording entry point first reads one atomic
    word; when no collection session is active it returns immediately,
    allocating nothing.  Call sites that build event names dynamically
    (["rule.fire." ^ name]) should guard the construction with
    {!enabled} so the disabled path does not even allocate the string.

    Domain safety: each domain records into its own buffer (registered
    lazily through domain-local storage), so recording never contends on
    a lock.  {!start}/{!stop} follow the same single-submitter
    convention as {!Kola_parallel.Pool}: call them from the controlling
    domain while no parallel job is in flight. *)

val now : unit -> float
(** Monotonic clock, in seconds since an arbitrary epoch (boot time on
    Linux).  Safe against wall-clock jumps; use for spans, deadlines and
    budgets.  Works whether or not a session is active. *)

val enabled : unit -> bool
(** Is a collection session active?  One atomic read. *)

val start : unit -> unit
(** Begin a fresh collection session, discarding any active one.
    Events recorded by any domain from now on are collected. *)

(** {1 Recording}

    All recording functions are no-ops (one atomic read) when no session
    is active. *)

val span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** [span ~cat name f] runs [f ()] and records a complete-span event
    around it (begin/end on the monotonic clock, attributed to the
    recording domain).  The span is recorded even when [f] raises; the
    exception is re-raised.  [cat] defaults to ["kola"]. *)

val count : ?n:int -> string -> unit
(** [count name] bumps the named counter by [n] (default 1) in the
    recording domain's buffer; totals are summed across domains at
    {!stop} time. *)

val observe : string -> float -> unit
(** [observe name v] feeds [v] into the named distribution
    (count/sum/min/max, merged across domains at {!stop} time). *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** Record a point event (Chrome ["i"] phase) with optional string
    arguments — e.g. a truncation with the rule that truncated, or a
    stop reason. *)

(** {1 Collection} *)

type span_ev = {
  tid : int;  (** recording domain id *)
  name : string;
  cat : string;
  ts_us : float;  (** start, microseconds since session start *)
  dur_us : float;
}

type mark = {
  mtid : int;
  mname : string;
  mcat : string;
  mts_us : float;
  margs : (string * string) list;
}

type dist = { n : int; sum : float; mean : float; min_v : float; max_v : float }

type trace = {
  duration_us : float;  (** session length at {!stop} *)
  spans : span_ev list;  (** chronological *)
  marks : mark list;  (** chronological *)
  counters : (string * int) list;  (** merged across domains, name-sorted *)
  dists : (string * dist) list;  (** merged across domains, name-sorted *)
}

val stop : unit -> trace
(** End the active session and merge every domain's buffer.  Returns the
    empty trace when no session was active. *)

val collecting : (unit -> 'a) -> 'a * trace
(** [collecting f] runs [f] between {!start} and {!stop} and returns its
    result with the collected trace.  If [f] raises, the session is
    stopped (discarding the trace) and the exception propagates. *)

(** {1 Exporters} *)

val to_chrome : trace -> string
(** Chrome [trace_event] JSON ({["{"traceEvents": [...]}"]}): thread
    metadata per recording domain, ["X"] complete events for spans,
    ["i"] instants for marks, ["C"] counter events carrying final
    totals.  Loadable in [chrome://tracing] and Perfetto. *)

val write_chrome : string -> trace -> unit
(** [write_chrome file t] writes {!to_chrome} to [file]. *)

val span_totals : trace -> (string * int * float) list
(** Spans aggregated by name: [(name, calls, total_us)], sorted by total
    time descending — the summary's top table. *)

val pp_summary : Format.formatter -> trace -> unit
(** Compact text block: traced duration, span totals, counters and
    distributions. *)

(* Engine telemetry: monotonic-clock spans, counters and histograms.

   The hot-path contract is that recording costs one atomic read when no
   session is active, so instrumentation can live inside the rewrite
   engine's innermost loops.  When a session is active, each domain
   appends to its own buffer found through domain-local storage — no lock
   is taken on the recording path (registration of a fresh buffer, once
   per domain per session, is the only mutex acquisition).

   Buffers are merged when the session stops: spans and marks are
   concatenated and sorted by timestamp, counters and distributions are
   summed/combined by name.  Sessions are identified by a generation
   counter so a domain whose cached buffer belongs to an older session
   (pool helpers persist across sessions) re-registers instead of writing
   into a dead buffer. *)

external now : unit -> (float[@unboxed])
  = "kola_clock_monotonic_s_byte" "kola_clock_monotonic_s"
[@@noalloc]

type span_ev = {
  tid : int;
  name : string;
  cat : string;
  ts_us : float;
  dur_us : float;
}

type mark = {
  mtid : int;
  mname : string;
  mcat : string;
  mts_us : float;
  margs : (string * string) list;
}

type dist = { n : int; sum : float; mean : float; min_v : float; max_v : float }

type trace = {
  duration_us : float;
  spans : span_ev list;
  marks : mark list;
  counters : (string * int) list;
  dists : (string * dist) list;
}

(* Mutable per-name distribution accumulator (single-domain, unshared). *)
type hstat = {
  mutable hn : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
}

type buf = {
  btid : int;
  mutable bspans : span_ev list;  (* newest first *)
  mutable bmarks : mark list;
  bcounters : (string, int ref) Hashtbl.t;
  bhists : (string, hstat) Hashtbl.t;
}

type session = {
  sid : int;  (* generation: stale DLS entries fail the comparison *)
  st0 : float;  (* session start on the monotonic clock *)
  smutex : Mutex.t;  (* guards [sbufs] registration only *)
  mutable sbufs : buf list;
}

let current : session option Atomic.t = Atomic.make None
let generation = Atomic.make 0

let enabled () = Atomic.get current != None

let start () =
  let s =
    {
      sid = Atomic.fetch_and_add generation 1;
      st0 = now ();
      smutex = Mutex.create ();
      sbufs = [];
    }
  in
  Atomic.set current (Some s)

(* The recording domain's buffer for [s], registering one on first use.
   The DLS cell caches (session id, buffer); a mismatched id means the
   cached buffer belongs to a finished session. *)
let dls : (int * buf) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let buf_for (s : session) : buf =
  let cell = Domain.DLS.get dls in
  match !cell with
  | Some (id, b) when id = s.sid -> b
  | _ ->
    let b =
      {
        btid = (Domain.self () :> int);
        bspans = [];
        bmarks = [];
        bcounters = Hashtbl.create 32;
        bhists = Hashtbl.create 16;
      }
    in
    Mutex.lock s.smutex;
    s.sbufs <- b :: s.sbufs;
    Mutex.unlock s.smutex;
    cell := Some (s.sid, b);
    b

let span ?(cat = "kola") name f =
  match Atomic.get current with
  | None -> f ()
  | Some s ->
    let t0 = now () in
    let finish () =
      let t1 = now () in
      let b = buf_for s in
      b.bspans <-
        {
          tid = b.btid;
          name;
          cat;
          ts_us = (t0 -. s.st0) *. 1e6;
          dur_us = (t1 -. t0) *. 1e6;
        }
        :: b.bspans
    in
    (match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e)

let count ?(n = 1) name =
  match Atomic.get current with
  | None -> ()
  | Some s -> (
    let b = buf_for s in
    match Hashtbl.find_opt b.bcounters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.add b.bcounters name (ref n))

let observe name v =
  match Atomic.get current with
  | None -> ()
  | Some s -> (
    let b = buf_for s in
    match Hashtbl.find_opt b.bhists name with
    | Some h ->
      h.hn <- h.hn + 1;
      h.hsum <- h.hsum +. v;
      if v < h.hmin then h.hmin <- v;
      if v > h.hmax then h.hmax <- v
    | None -> Hashtbl.add b.bhists name { hn = 1; hsum = v; hmin = v; hmax = v })

let instant ?(cat = "kola") ?(args = []) name =
  match Atomic.get current with
  | None -> ()
  | Some s ->
    let b = buf_for s in
    b.bmarks <-
      {
        mtid = b.btid;
        mname = name;
        mcat = cat;
        mts_us = (now () -. s.st0) *. 1e6;
        margs = args;
      }
      :: b.bmarks

let empty_trace =
  { duration_us = 0.; spans = []; marks = []; counters = []; dists = [] }

let stop () =
  match Atomic.get current with
  | None -> empty_trace
  | Some s ->
    Atomic.set current None;
    let duration_us = (now () -. s.st0) *. 1e6 in
    let bufs = s.sbufs in
    let spans =
      List.sort
        (fun a b -> compare a.ts_us b.ts_us)
        (List.concat_map (fun b -> b.bspans) bufs)
    in
    let marks =
      List.sort
        (fun a b -> compare a.mts_us b.mts_us)
        (List.concat_map (fun b -> b.bmarks) bufs)
    in
    let counters = Hashtbl.create 64 in
    List.iter
      (fun b ->
        Hashtbl.iter
          (fun k r ->
            match Hashtbl.find_opt counters k with
            | Some total -> Hashtbl.replace counters k (total + !r)
            | None -> Hashtbl.add counters k !r)
          b.bcounters)
      bufs;
    let dists = Hashtbl.create 32 in
    List.iter
      (fun b ->
        Hashtbl.iter
          (fun k (h : hstat) ->
            match Hashtbl.find_opt dists k with
            | Some d ->
              Hashtbl.replace dists k
                {
                  n = d.n + h.hn;
                  sum = d.sum +. h.hsum;
                  mean = 0.;
                  min_v = Float.min d.min_v h.hmin;
                  max_v = Float.max d.max_v h.hmax;
                }
            | None ->
              Hashtbl.add dists k
                { n = h.hn; sum = h.hsum; mean = 0.; min_v = h.hmin; max_v = h.hmax })
          b.bhists)
      bufs;
    let sorted tbl finish =
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun k v acc -> (k, finish v) :: acc) tbl [])
    in
    {
      duration_us;
      spans;
      marks;
      counters = sorted counters Fun.id;
      dists =
        sorted dists (fun d ->
            { d with mean = (if d.n = 0 then 0. else d.sum /. float_of_int d.n) });
    }

let collecting f =
  start ();
  match f () with
  | v -> (v, stop ())
  | exception e ->
    ignore (stop ());
    raise e

(* ------------------------------------------------------------------ *)
(* Exporters. *)

(* Minimal JSON string escaping: quote, backslash, and control chars. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome (t : trace) : string =
  let buf = Buffer.create 4096 in
  let first = ref true in
  let event fields =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf "  {";
    Buffer.add_string buf (String.concat ", " fields);
    Buffer.add_string buf "}"
  in
  let str k v = Printf.sprintf "\"%s\": \"%s\"" k (escape v) in
  let num k v = Printf.sprintf "\"%s\": %.3f" k v in
  let int k v = Printf.sprintf "\"%s\": %d" k v in
  let args kvs =
    Printf.sprintf "\"args\": {%s}"
      (String.concat ", " (List.map (fun (k, v) -> str k v) kvs))
  in
  Buffer.add_string buf "{\"traceEvents\": [\n";
  (* thread metadata: one lane per recording domain *)
  let tids =
    List.sort_uniq compare
      (List.map (fun s -> s.tid) t.spans @ List.map (fun m -> m.mtid) t.marks)
  in
  List.iter
    (fun tid ->
      event
        [
          str "ph" "M"; int "pid" 1; int "tid" tid; str "name" "thread_name";
          args [ ("name", Printf.sprintf "domain-%d" tid) ];
        ])
    tids;
  List.iter
    (fun (s : span_ev) ->
      event
        [
          str "ph" "X"; int "pid" 1; int "tid" s.tid; str "name" s.name;
          str "cat" s.cat; num "ts" s.ts_us; num "dur" s.dur_us;
        ])
    t.spans;
  List.iter
    (fun (m : mark) ->
      event
        ([
           str "ph" "i"; int "pid" 1; int "tid" m.mtid; str "name" m.mname;
           str "cat" m.mcat; num "ts" m.mts_us; str "s" "t";
         ]
        @ if m.margs = [] then [] else [ args m.margs ]))
    t.marks;
  (* counters: one C event at session end carrying the final total *)
  List.iter
    (fun (name, total) ->
      event
        [
          str "ph" "C"; int "pid" 1; int "tid" 0; str "name" name;
          str "cat" "counter"; num "ts" t.duration_us;
          Printf.sprintf "\"args\": {\"value\": %d}" total;
        ])
    t.counters;
  Buffer.add_string buf "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents buf

let write_chrome file t =
  let oc = open_out file in
  output_string oc (to_chrome t);
  close_out oc

let span_totals (t : trace) : (string * int * float) list =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (s : span_ev) ->
      match Hashtbl.find_opt tbl s.name with
      | Some (calls, total) -> Hashtbl.replace tbl s.name (calls + 1, total +. s.dur_us)
      | None -> Hashtbl.add tbl s.name (1, s.dur_us))
    t.spans;
  List.sort
    (fun (_, _, a) (_, _, b) -> compare b a)
    (Hashtbl.fold (fun name (calls, total) acc -> (name, calls, total) :: acc) tbl [])

let pp_time ppf us =
  if us >= 1e6 then Format.fprintf ppf "%.2f s" (us /. 1e6)
  else if us >= 1e3 then Format.fprintf ppf "%.2f ms" (us /. 1e3)
  else Format.fprintf ppf "%.1f us" us

let pp_summary ppf (t : trace) =
  Format.fprintf ppf "== telemetry summary (%a traced) ==@." pp_time
    t.duration_us;
  let totals = span_totals t in
  if totals <> [] then begin
    Format.fprintf ppf "spans (%d events):@." (List.length t.spans);
    List.iter
      (fun (name, calls, total) ->
        Format.fprintf ppf "  %-42s %7d calls  %a@." name calls pp_time total)
      totals
  end;
  if t.counters <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter
      (fun (name, total) -> Format.fprintf ppf "  %-42s %10d@." name total)
      t.counters
  end;
  if t.dists <> [] then begin
    Format.fprintf ppf "distributions:@.";
    List.iter
      (fun (name, d) ->
        Format.fprintf ppf "  %-42s n=%-6d mean=%.3f min=%.3f max=%.3f@." name
          d.n d.mean d.min_v d.max_v)
      t.dists
  end;
  if t.marks <> [] then begin
    Format.fprintf ppf "marks:@.";
    List.iter
      (fun (m : mark) ->
        Format.fprintf ppf "  %10.1f us  %-24s %s@." m.mts_us m.mname
          (String.concat ", "
             (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) m.margs)))
      t.marks
  end

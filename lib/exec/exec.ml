(* Compiled plan execution.

   [compile] lowers a chosen [Term.query] into pipelined producer/consumer
   loops ("A Compiler for Operations on Relations with Bag Semantics",
   PAPERS.md): a spine of Iterate/Flat/Unnest/Iter stages fuses into one
   loop with no intermediate collections, while Join, Nest, the binary set
   operations and aggregates are pipeline breakers that materialize a hash
   table and stream their output.  Per-element work (attribute reads,
   arithmetic, predicates) is closure-converted once at compile time, so
   the run pays no per-node dispatch, no per-stage [Value.set] sort, and
   no counter bookkeeping beyond three per-stage totals.

   The interpreter ({!Eval.run}) is the oracle: for every supported plan
   the compiled result equals the interpreted one modulo set ordering
   (compare with {!agree}).  The correctness argument for running the
   inside of a pipeline in bag discipline even under [Eager] dedup: every
   stage except aggregation is duplicate-insensitive with respect to the
   final canonical set, embedded collections are canonicalised exactly
   where the interpreter canonicalises them, and Count/Sum insert a hash
   dedup barrier under [Eager] so multiplicities are never observed.

   Plans the compiler does not support (pattern holes anywhere) raise
   {!Unsupported}; {!run} catches it, counts the fallback, and delegates
   to the interpreter — explicitly slower, never wrong. *)

open Kola
module Telemetry = Kola_telemetry.Telemetry

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

(* Runtime errors reuse [Eval.Error] with the interpreter's messages, so a
   compiled plan fails exactly like an interpreted one. *)
let error fmt = Fmt.kstr (fun s -> raise (Eval.Error s)) fmt

type counters = {
  mutable tuples : int;   (** elements flowing through pipeline stages *)
  mutable probes : int;   (** hash-table lookups (joins, set ops) *)
  mutable builds : int;   (** hash-table inserts (build sides, groups) *)
}

let fresh_counters () = { tuples = 0; probes = 0; builds = 0 }

type rctx = {
  db : (string * Value.t) list;
  dedup : Eval.dedup;
  pipes : Value.t array option array;  (** materialized shared pipelines *)
  vals : Value.t option array;         (** memoized shared scalars *)
  c : counters;
}

module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

let value_gt a b = Value.compare a b > 0

let rec resolve ctx v =
  match v with
  | Value.Named n -> (
    match List.assoc_opt n ctx.db with
    | Some v -> resolve ctx v
    | None -> error "unbound database name %s" n)
  | Value.Hole h -> error "evaluated a pattern hole ?%s" h
  | v -> v

let as_pair ctx v =
  match resolve ctx v with
  | Value.Pair (a, b) -> (a, b)
  | v -> error "expected a pair, got %a" Value.pp v

let as_set ctx v =
  match resolve ctx v with
  | Value.Set xs | Value.Bag xs | Value.List xs -> xs
  | v -> error "expected a set, got %a" Value.pp v

let as_int ctx v =
  match resolve ctx v with
  | Value.Int i -> i
  | v -> error "expected an int, got %a" Value.pp v

let collection ctx elems =
  match ctx.dedup with
  | Eval.Eager -> Value.set elems
  | Eval.Deferred -> Value.Bag elems

(* ------------------------------------------------------------------ *)
(* Loop-invariant analysis.  A func is input-independent when evaluating
   it never consults its argument: a [Kf] constant, a composition whose
   right leg is input-independent (the left leg then sees the same value
   on every call), a pairing or conditional of input-independent parts,
   or a [Cf] whose body ignores its argument.  Such subterms — most
   importantly a closed subquery inside a membership predicate, which
   the interpreter re-evaluates once per outer element — are computed
   once per run by the compiled closures.  The analysis is conservative:
   anything that pattern-matches on its argument ([Pi1], [Times], ...)
   counts as dependent, so hoisting can never change error behaviour. *)

let rec func_invariant : Term.func -> bool = function
  | Term.Kf _ -> true
  | Term.Compose (Term.Iter (p, f), Term.Pairf (g, x)) ->
    (* Environment threading: the translator compiles a nested query as
       [iter(p, f) ∘ ⟨id, X⟩], pairing every element of X with the outer
       binding even when the body never mentions it.  The variable-free
       algebra makes that deadness syntactic: if X is closed and neither
       p nor f reads π1 of its argument, the whole subplan is closed.
       The ⟨g, x⟩ legs must not introduce input-dependent failures
       either, hence the [g = id] / invariant guard. *)
    (g = Term.Id || func_invariant g)
    && func_invariant x && pred_env_free p && func_env_free f
  | Term.Compose (_, g) -> func_invariant g
  | Term.Pairf (f, g) -> func_invariant f && func_invariant g
  | Term.Con (p, f, g) ->
    pred_invariant p && func_invariant f && func_invariant g
  | Term.Cf (f, _) -> func_invariant f
  | _ -> false

and pred_invariant : Term.pred -> bool = function
  | Term.Kp _ -> true
  | Term.Oplus (_, f) -> func_invariant f
  | Term.Andp (p, q) | Term.Orp (p, q) -> pred_invariant p && pred_invariant q
  | Term.Inv p -> pred_invariant p
  | Term.Cp (p, _) -> pred_invariant p
  | _ -> false

(* Applied to an [iter] element [Pair (env, y)]: does the result depend
   only on [y]?  π2 discards the environment outright; pair-shaped
   plumbing is env-free when all its legs are; anything invariant ignores
   the whole argument, environment included. *)
and func_env_free : Term.func -> bool = function
  | Term.Pi2 -> true
  | Term.Compose (_, g) -> func_env_free g
  | Term.Pairf (f, g) -> func_env_free f && func_env_free g
  | Term.Con (p, f, g) ->
    pred_env_free p && func_env_free f && func_env_free g
  | f -> func_invariant f

and pred_env_free : Term.pred -> bool = function
  | Term.Oplus (_, f) -> func_env_free f
  | Term.Andp (p, q) | Term.Orp (p, q) -> pred_env_free p && pred_env_free q
  | Term.Inv p -> pred_env_free p
  | p -> pred_invariant p

(* ------------------------------------------------------------------ *)
(* Scalar closure compilation: per-element work is translated once into
   nested closures mirroring [Eval.func]/[Eval.pred] case by case, so a
   hot loop never touches the term again.  [fc] additionally hoists
   loop-invariant subterms: the compiled closure memoizes its result on
   the (db, dedup) pair it ran under, so a closed subquery used as a
   filter operand costs one evaluation per run instead of one per
   element. *)

let rec fc (f : Term.func) : rctx -> Value.t -> Value.t =
  match f with
  | Term.Kf _ -> fc_node f (* already O(1); a memo would only add a branch *)
  | _ when func_invariant f ->
    let f' = fc_node f in
    let memo = ref None in
    fun ctx v ->
      (match !memo with
      | Some (db, dedup, r) when db == ctx.db && dedup = ctx.dedup -> r
      | _ ->
        let r = f' ctx v in
        memo := Some (ctx.db, ctx.dedup, r);
        r)
  | _ -> fc_node f

and fc_node (f : Term.func) : rctx -> Value.t -> Value.t =
  match f with
  | Term.Id -> fun ctx v -> resolve ctx v
  | Term.Pi1 -> fun ctx v -> fst (as_pair ctx v)
  | Term.Pi2 -> fun ctx v -> snd (as_pair ctx v)
  | Term.Prim name ->
    fun ctx v ->
      (match resolve ctx v with
      | Value.Obj _ as o -> (
        match Value.field name o with
        | Some x -> x
        | None -> error "object %a has no attribute %s" Value.pp o name)
      | v -> error "attribute %s applied to non-object %a" name Value.pp v)
  | Term.Compose (f, g) ->
    let f' = fc f and g' = fc g in
    fun ctx v -> f' ctx (g' ctx v)
  | Term.Pairf (f, g) ->
    let f' = fc f and g' = fc g in
    fun ctx v -> Value.Pair (f' ctx v, g' ctx v)
  | Term.Times (f, g) ->
    let f' = fc f and g' = fc g in
    fun ctx v ->
      let a, b = as_pair ctx v in
      Value.Pair (f' ctx a, g' ctx b)
  | Term.Kf c -> fun ctx _ -> resolve ctx c
  | Term.Cf (f, c) ->
    let f' = fc f in
    fun ctx v -> f' ctx (Value.Pair (c, v))
  | Term.Con (p, f, g) ->
    let p' = pc p and f' = fc f and g' = fc g in
    fun ctx v -> if p' ctx v then f' ctx v else g' ctx v
  | Term.Arith op ->
    let op = match op with Term.Add -> ( + ) | Term.Sub -> ( - ) | Term.Mul -> ( * ) in
    fun ctx v ->
      let a, b = as_pair ctx v in
      Value.Int (op (as_int ctx a) (as_int ctx b))
  | Term.Agg op -> fc_agg op
  | Term.Setop op -> fc_setop op
  | Term.Sng -> fun ctx v -> Value.set [ resolve ctx v ]
  | Term.Flat ->
    fun ctx v ->
      let outer = as_set ctx v in
      ctx.c.tuples <- ctx.c.tuples + List.length outer;
      collection ctx (List.concat_map (fun s -> as_set ctx s) outer)
  | Term.Iterate (p, f) ->
    let p' = pc p and f' = fc f in
    fun ctx v ->
      let xs = as_set ctx v in
      ctx.c.tuples <- ctx.c.tuples + List.length xs;
      collection ctx
        (List.filter_map (fun x -> if p' ctx x then Some (f' ctx x) else None) xs)
  | Term.Iter (p, f) ->
    let p' = pc p and f' = fc f in
    fun ctx v ->
      let e, set = as_pair ctx v in
      let ys = as_set ctx set in
      ctx.c.tuples <- ctx.c.tuples + List.length ys;
      collection ctx
        (List.filter_map
           (fun y ->
             let pair = Value.Pair (e, y) in
             if p' ctx pair then Some (f' ctx pair) else None)
           ys)
  | Term.Join (p, f) -> fc_join p f
  | Term.Nest (f, g) -> fc_nest f g
  | Term.Unnest (f, g) ->
    let fk = fc f and fg = fc g in
    fun ctx v ->
      let xs = as_set ctx v in
      ctx.c.tuples <- ctx.c.tuples + List.length xs;
      collection ctx
        (List.concat_map
           (fun x ->
             let key = fk ctx x in
             List.map (fun y -> Value.Pair (key, y)) (as_set ctx (fg ctx x)))
           xs)
  | Term.Fhole h -> unsupported "pattern hole ?%s" h

and fc_agg op : rctx -> Value.t -> Value.t =
  match op with
  | Term.Count ->
    fun ctx v ->
      let xs = as_set ctx v in
      ctx.c.tuples <- ctx.c.tuples + List.length xs;
      Value.Int (List.length xs)
  | Term.Sum ->
    fun ctx v ->
      let xs = as_set ctx v in
      ctx.c.tuples <- ctx.c.tuples + List.length xs;
      Value.Int (List.fold_left (fun acc x -> acc + as_int ctx x) 0 xs)
  | Term.Max ->
    fun ctx v ->
      (match as_set ctx v with
      | [] -> error "max of empty set"
      | x :: rest ->
        ctx.c.tuples <- ctx.c.tuples + 1 + List.length rest;
        List.fold_left (fun m y -> if value_gt y m then y else m) x rest)
  | Term.Min ->
    fun ctx v ->
      (match as_set ctx v with
      | [] -> error "min of empty set"
      | x :: rest ->
        ctx.c.tuples <- ctx.c.tuples + 1 + List.length rest;
        List.fold_left (fun m y -> if value_gt m y then y else m) x rest)

(* Membership set ops over a hash set of the right operand — O(|xs|+|ys|)
   where the interpreter is quadratic; same elements, same left-to-right
   order, so the result value is identical. *)
and fc_setop op : rctx -> Value.t -> Value.t =
  let member ctx ys =
    let t = VH.create (2 * List.length ys + 1) in
    List.iter (fun y -> VH.replace t y ()) ys;
    ignore ctx;
    t
  in
  match op with
  | Term.Union ->
    fun ctx v ->
      let a, b = as_pair ctx v in
      let xs = as_set ctx a and ys = as_set ctx b in
      ctx.c.tuples <- ctx.c.tuples + List.length xs + List.length ys;
      collection ctx (xs @ ys)
  | Term.Inter ->
    fun ctx v ->
      let a, b = as_pair ctx v in
      let xs = as_set ctx a and ys = as_set ctx b in
      ctx.c.tuples <- ctx.c.tuples + List.length xs + List.length ys;
      let m = member ctx ys in
      collection ctx (List.filter (fun x -> VH.mem m x) xs)
  | Term.Diff ->
    fun ctx v ->
      let a, b = as_pair ctx v in
      let xs = as_set ctx a and ys = as_set ctx b in
      ctx.c.tuples <- ctx.c.tuples + List.length xs + List.length ys;
      let m = member ctx ys in
      collection ctx (List.filter (fun x -> not (VH.mem m x)) xs)

(* Scalar join/nest mirror the [Hashed] interpreter backend (decomposition
   done once at compile time), falling back to nested loops when the
   predicate exposes no index. *)
and fc_join p f : rctx -> Value.t -> Value.t =
  let f' = fc f in
  match Eval.hash_joinable p with
  | Some (kind, g1, g2, residual) ->
    let g1' = fc g1 and g2' = fc g2 in
    let res' = Option.map pc residual in
    fun ctx v ->
      let a, b = as_pair ctx v in
      let xs = as_set ctx a and ys = as_set ctx b in
      let index : Value.t list VH.t = VH.create (2 * List.length ys + 1) in
      let add key y =
        let prev = Option.value ~default:[] (VH.find_opt index key) in
        VH.replace index key (y :: prev)
      in
      List.iter
        (fun y ->
          ctx.c.builds <- ctx.c.builds + 1;
          match kind with
          | `Eq -> add (g2' ctx y) y
          | `In -> List.iter (fun e -> add e y) (as_set ctx (g2' ctx y)))
        ys;
      collection ctx
        (List.concat_map
           (fun x ->
             ctx.c.probes <- ctx.c.probes + 1;
             let matches =
               Option.value ~default:[] (VH.find_opt index (g1' ctx x))
             in
             List.filter_map
               (fun y ->
                 let pair = Value.Pair (x, y) in
                 let keep =
                   match res' with None -> true | Some r -> r ctx pair
                 in
                 if keep then Some (f' ctx pair) else None)
               matches)
           xs)
  | None ->
    let p' = pc p in
    fun ctx v ->
      let a, b = as_pair ctx v in
      let xs = as_set ctx a and ys = as_set ctx b in
      ctx.c.tuples <-
        ctx.c.tuples + (List.length xs * (1 + List.length ys));
      collection ctx
        (List.concat_map
           (fun x ->
             List.filter_map
               (fun y ->
                 let pair = Value.Pair (x, y) in
                 if p' ctx pair then Some (f' ctx pair) else None)
               ys)
           xs)

and fc_nest f g : rctx -> Value.t -> Value.t =
  let f' = fc f and g' = fc g in
  fun ctx v ->
    let a, b = as_pair ctx v in
    let xs = as_set ctx a and ys = as_set ctx b in
    let groups : Value.t list VH.t = VH.create (2 * List.length ys + 1) in
    List.iter
      (fun x ->
        ctx.c.builds <- ctx.c.builds + 1;
        let key = f' ctx x in
        let prev = Option.value ~default:[] (VH.find_opt groups key) in
        VH.replace groups key (g' ctx x :: prev))
      xs;
    collection ctx
      (List.map
         (fun y ->
           ctx.c.probes <- ctx.c.probes + 1;
           let group = Option.value ~default:[] (VH.find_opt groups y) in
           Value.Pair (y, collection ctx group))
         ys)

and pc (p : Term.pred) : rctx -> Value.t -> bool =
  match p with
  | Term.Eq ->
    fun ctx v ->
      let a, b = as_pair ctx v in
      Value.equal (resolve ctx a) (resolve ctx b)
  | Term.Leq ->
    fun ctx v ->
      let a, b = as_pair ctx v in
      Value.compare (resolve ctx a) (resolve ctx b) <= 0
  | Term.Gt ->
    fun ctx v ->
      let a, b = as_pair ctx v in
      value_gt (resolve ctx a) (resolve ctx b)
  | Term.In ->
    (* Membership hashes the right operand instead of scanning it per
       probe.  The member table is memoized on the operand's physical
       identity, so a loop-invariant right side — the common shape,
       [x in Q] with [Q] closed over the loop, which [fc]'s hoisting
       pins to one physical value per run — is hashed once and probed in
       O(1); the interpreter's [List.exists] pays O(|Q|) per element.
       Small or per-element sets keep the linear scan, where building a
       table would cost more than it saves. *)
    let memo = ref None in
    fun ctx v ->
      let a, b = as_pair ctx v in
      let a = resolve ctx a in
      let ys = as_set ctx b in
      if List.compare_length_with ys 16 <= 0 then
        List.exists (Value.equal a) ys
      else begin
        let t =
          match !memo with
          | Some (prev, t) when prev == ys -> t
          | _ ->
            let t = VH.create (2 * List.length ys + 1) in
            List.iter (fun y -> VH.replace t y ()) ys;
            ctx.c.builds <- ctx.c.builds + List.length ys;
            memo := Some (ys, t);
            t
        in
        ctx.c.probes <- ctx.c.probes + 1;
        VH.mem t a
      end
  | Term.Primp name ->
    fun ctx v ->
      (match resolve ctx v with
      | Value.Obj _ as o -> (
        match Value.field name o with
        | Some (Value.Bool b) -> b
        | Some x ->
          error "predicate attribute %s is not boolean: %a" name Value.pp x
        | None -> error "object %a has no attribute %s" Value.pp o name)
      | v -> error "predicate %s applied to non-object %a" name Value.pp v)
  | Term.Oplus (p, f) ->
    let p' = pc p and f' = fc f in
    fun ctx v -> p' ctx (f' ctx v)
  | Term.Andp (p, q) ->
    let p' = pc p and q' = pc q in
    fun ctx v -> p' ctx v && q' ctx v
  | Term.Orp (p, q) ->
    let p' = pc p and q' = pc q in
    fun ctx v -> p' ctx v || q' ctx v
  | Term.Inv p ->
    let p' = pc p in
    fun ctx v -> not (p' ctx v)
  | Term.Conv p ->
    let p' = pc p in
    fun ctx v ->
      let a, b = as_pair ctx v in
      p' ctx (Value.Pair (b, a))
  | Term.Kp b -> fun _ _ -> b
  | Term.Cp (p, c) ->
    let p' = pc p in
    fun ctx v -> p' ctx (Value.Pair (c, v))
  | Term.Phole h -> unsupported "pattern hole ?%s" h

(* ------------------------------------------------------------------ *)
(* Pipeline lowering.  A compiled spine value is a collection (either a
   stored whole or a streaming producer), a statically-known pair, or a
   scalar thunk; the IR description is built alongside. *)

type producer = rctx -> (Value.t -> unit) -> unit

type coll = Whole of (rctx -> Value.t) | Pipe of producer

type cv = { shape : shape; ir : Ir.node }
and shape = Coll of coll | Duo of cv * cv | Sca of (rctx -> Value.t)

type cstate = { mutable pipe_slots : int; mutable val_slots : int }

let iter_coll ctx (c : coll) emit =
  match c with
  | Whole f -> List.iter emit (as_set ctx (f ctx))
  | Pipe p -> p ctx emit

let drain ctx (p : producer) =
  let acc = ref [] in
  p ctx (fun v -> acc := v :: !acc);
  List.rev !acc

let rec force ctx (v : cv) : Value.t =
  match v.shape with
  | Sca f -> f ctx
  | Duo (a, b) -> Value.Pair (force ctx a, force ctx b)
  | Coll (Whole f) -> f ctx
  | Coll (Pipe p) -> collection ctx (drain ctx p)

let as_coll (v : cv) : coll =
  match v.shape with
  | Coll c -> c
  | Sca f -> Whole f
  | Duo _ -> Whole (fun ctx -> force ctx v)

(* Re-running a producer would recompute the whole upstream pipeline, so
   any input consumed more than once (⟨f,g⟩, con, dynamic pair splits) is
   materialized into a per-run slot the first time it is demanded. *)
let rec share st (v : cv) : cv =
  match v.shape with
  | Coll (Pipe p) ->
    let slot = st.pipe_slots in
    st.pipe_slots <- st.pipe_slots + 1;
    let materialize ctx =
      match ctx.pipes.(slot) with
      | Some arr -> arr
      | None ->
        let arr = Array.of_list (drain ctx p) in
        ctx.pipes.(slot) <- Some arr;
        arr
    in
    {
      shape = Coll (Pipe (fun ctx emit -> Array.iter emit (materialize ctx)));
      ir = Ir.Shared (slot, v.ir);
    }
  | Duo (a, b) ->
    let a = share st a and b = share st b in
    { shape = Duo (a, b); ir = Ir.PairNode (a.ir, b.ir) }
  | Sca f ->
    let slot = st.val_slots in
    st.val_slots <- st.val_slots + 1;
    {
      shape =
        Sca
          (fun ctx ->
            match ctx.vals.(slot) with
            | Some v -> v
            | None ->
              let v = f ctx in
              ctx.vals.(slot) <- Some v;
              v);
      ir = Ir.Shared (slot, v.ir);
    }
  | Coll (Whole _) -> v

let as_duo st (v : cv) : cv * cv =
  match v.shape with
  | Duo (a, b) -> (a, b)
  | _ ->
    let v = share st v in
    let f ctx = force ctx v in
    ( { shape = Sca (fun ctx -> fst (as_pair ctx (f ctx))); ir = Ir.Scalar (Term.Pi1, v.ir) },
      { shape = Sca (fun ctx -> snd (as_pair ctx (f ctx))); ir = Ir.Scalar (Term.Pi2, v.ir) } )

let rec cv_of_value (v : Value.t) : cv =
  match v with
  | Value.Hole h -> unsupported "pattern hole ?%s in query argument" h
  | Value.Pair (a, b) ->
    let ca = cv_of_value a and cb = cv_of_value b in
    { shape = Duo (ca, cb); ir = Ir.PairNode (ca.ir, cb.ir) }
  | Value.Named _ | Value.Set _ | Value.Bag _ | Value.List _ ->
    { shape = Coll (Whole (fun ctx -> resolve ctx v)); ir = Ir.Scan v }
  | v -> { shape = Sca (fun ctx -> resolve ctx v); ir = Ir.Leaf v }

let scalar_apply (f : Term.func) (input : cv) : cv =
  let f' = fc f in
  { shape = Sca (fun ctx -> f' ctx (force ctx input)); ir = Ir.Scalar (f, input.ir) }

let pipe p ir = { shape = Coll (Pipe p); ir }

let rec lower st (f : Term.func) (input : cv) : cv =
  match f with
  | Term.Compose (a, b) -> lower st a (lower st b input)
  | Term.Id -> (
    match input.shape with
    | Sca f -> { input with shape = Sca (fun ctx -> resolve ctx (f ctx)) }
    | Coll (Whole f) ->
      { input with shape = Coll (Whole (fun ctx -> resolve ctx (f ctx))) }
    | Coll (Pipe _) | Duo _ -> input)
  | Term.Pi1 -> fst (as_duo st input)
  | Term.Pi2 -> snd (as_duo st input)
  | Term.Times (a, b) ->
    let l, r = as_duo st input in
    let la = lower st a l and lb = lower st b r in
    { shape = Duo (la, lb); ir = Ir.PairNode (la.ir, lb.ir) }
  | Term.Pairf (a, b) ->
    let s = share st input in
    let la = lower st a s and lb = lower st b s in
    { shape = Duo (la, lb); ir = Ir.PairNode (la.ir, lb.ir) }
  | Term.Kf c -> cv_of_value c
  | Term.Cf (f, c) ->
    let cc = cv_of_value c in
    lower st f { shape = Duo (cc, input); ir = Ir.PairNode (cc.ir, input.ir) }
  | Term.Con (p, a, b) ->
    let s = share st input in
    let p' = pc p in
    let la = lower st a s and lb = lower st b s in
    let ir = Ir.Branch (p, s.ir, la.ir, lb.ir) in
    (match (la.shape, lb.shape) with
    | Coll ca, Coll cb ->
      pipe
        (fun ctx emit ->
          if p' ctx (force ctx s) then iter_coll ctx ca emit
          else iter_coll ctx cb emit)
        ir
    | _ ->
      {
        shape =
          Sca
            (fun ctx ->
              if p' ctx (force ctx s) then force ctx la else force ctx lb);
        ir;
      })
  | Term.Sng ->
    {
      shape = Coll (Whole (fun ctx -> Value.set [ resolve ctx (force ctx input) ]));
      ir = Ir.SngStage input.ir;
    }
  | Term.Flat ->
    let c = as_coll input in
    pipe
      (fun ctx emit ->
        iter_coll ctx c (fun s ->
            ctx.c.tuples <- ctx.c.tuples + 1;
            List.iter emit (as_set ctx s)))
      (Ir.Flatten input.ir)
  | Term.Iterate (p, f) ->
    let c = as_coll input in
    let p' = pc p and f' = fc f in
    let ir =
      match (p, f) with
      | Term.Kp true, g -> Ir.Map (g, input.ir)
      | q, Term.Id -> Ir.Filter (q, input.ir)
      | q, g -> Ir.Map (g, Ir.Filter (q, input.ir))
    in
    pipe
      (fun ctx emit ->
        iter_coll ctx c (fun x ->
            ctx.c.tuples <- ctx.c.tuples + 1;
            if p' ctx x then emit (f' ctx x)))
      ir
  | Term.Iter (p, f) ->
    let e_cv, b_cv = as_duo st input in
    let c = as_coll b_cv in
    let p' = pc p and f' = fc f in
    pipe
      (fun ctx emit ->
        let e = force ctx e_cv in
        iter_coll ctx c (fun y ->
            ctx.c.tuples <- ctx.c.tuples + 1;
            let pair = Value.Pair (e, y) in
            if p' ctx pair then emit (f' ctx pair)))
      (Ir.IterEnv (p, f, e_cv.ir, b_cv.ir))
  | Term.Join (p, f) -> lower_join st p f input
  | Term.Nest (f, g) -> lower_nest st f g input
  | Term.Unnest (f, g) ->
    let c = as_coll input in
    let fk = fc f and fg = fc g in
    pipe
      (fun ctx emit ->
        iter_coll ctx c (fun x ->
            ctx.c.tuples <- ctx.c.tuples + 1;
            let key = fk ctx x in
            List.iter
              (fun y -> emit (Value.Pair (key, y)))
              (as_set ctx (fg ctx x))))
      (Ir.UnnestStage (f, g, input.ir))
  | Term.Setop op -> lower_setop st op input
  | Term.Agg op -> lower_agg op input
  | Term.Prim _ | Term.Arith _ -> scalar_apply f input
  | Term.Fhole h -> unsupported "pattern hole ?%s" h

and lower_join st p f input =
  let a_cv, b_cv = as_duo st input in
  let ca = as_coll a_cv and cb = as_coll b_cv in
  let f' = fc f in
  match Eval.hash_joinable p with
  | Some (kind, g1, g2, residual) ->
    let g1' = fc g1 and g2' = fc g2 in
    let res' = Option.map pc residual in
    let ir =
      Ir.HashJoin
        {
          kind = (match kind with `Eq -> Ir.Eq | `In -> Ir.Membership);
          probe_key = g1;
          build_key = g2;
          residual;
          emit = f;
          probe = a_cv.ir;
          build = b_cv.ir;
        }
    in
    pipe
      (fun ctx emit ->
        let index : Value.t list VH.t = VH.create 1024 in
        let add key y =
          let prev = Option.value ~default:[] (VH.find_opt index key) in
          VH.replace index key (y :: prev)
        in
        iter_coll ctx cb (fun y ->
            ctx.c.builds <- ctx.c.builds + 1;
            match kind with
            | `Eq -> add (g2' ctx y) y
            | `In -> List.iter (fun e -> add e y) (as_set ctx (g2' ctx y)));
        iter_coll ctx ca (fun x ->
            ctx.c.probes <- ctx.c.probes + 1;
            match VH.find_opt index (g1' ctx x) with
            | None -> ()
            | Some matches ->
              List.iter
                (fun y ->
                  let pair = Value.Pair (x, y) in
                  let keep =
                    match res' with None -> true | Some r -> r ctx pair
                  in
                  if keep then (
                    ctx.c.tuples <- ctx.c.tuples + 1;
                    emit (f' ctx pair)))
                matches))
      ir
  | None ->
    let p' = pc p in
    pipe
      (fun ctx emit ->
        let ys = ref [] in
        iter_coll ctx cb (fun y -> ys := y :: !ys);
        let ys = List.rev !ys in
        iter_coll ctx ca (fun x ->
            List.iter
              (fun y ->
                ctx.c.tuples <- ctx.c.tuples + 1;
                let pair = Value.Pair (x, y) in
                if p' ctx pair then emit (f' ctx pair))
              ys))
      (Ir.LoopJoin (p, f, a_cv.ir, b_cv.ir))

and lower_nest st f g input =
  let a_cv, b_cv = as_duo st input in
  let ca = as_coll a_cv and cb = as_coll b_cv in
  let f' = fc f and g' = fc g in
  pipe
    (fun ctx emit ->
      let groups : Value.t list VH.t = VH.create 1024 in
      iter_coll ctx ca (fun x ->
          ctx.c.builds <- ctx.c.builds + 1;
          let key = f' ctx x in
          let prev = Option.value ~default:[] (VH.find_opt groups key) in
          VH.replace groups key (g' ctx x :: prev));
      iter_coll ctx cb (fun y ->
          ctx.c.probes <- ctx.c.probes + 1;
          let group = Option.value ~default:[] (VH.find_opt groups y) in
          emit (Value.Pair (y, collection ctx group))))
    (Ir.HashGroup { key = f; payload = g; src = a_cv.ir; groups = b_cv.ir })

and lower_setop st op input =
  let a_cv, b_cv = as_duo st input in
  let ca = as_coll a_cv and cb = as_coll b_cv in
  match op with
  | Term.Union ->
    pipe
      (fun ctx emit ->
        iter_coll ctx ca (fun x ->
            ctx.c.tuples <- ctx.c.tuples + 1;
            emit x);
        iter_coll ctx cb (fun y ->
            ctx.c.tuples <- ctx.c.tuples + 1;
            emit y))
      (Ir.Union (a_cv.ir, b_cv.ir))
  | Term.Inter ->
    pipe
      (fun ctx emit ->
        let m = VH.create 256 in
        iter_coll ctx cb (fun y ->
            ctx.c.builds <- ctx.c.builds + 1;
            VH.replace m y ());
        iter_coll ctx ca (fun x ->
            ctx.c.probes <- ctx.c.probes + 1;
            if VH.mem m x then emit x))
      (Ir.Inter (a_cv.ir, b_cv.ir))
  | Term.Diff ->
    pipe
      (fun ctx emit ->
        let m = VH.create 256 in
        iter_coll ctx cb (fun y ->
            ctx.c.builds <- ctx.c.builds + 1;
            VH.replace m y ());
        iter_coll ctx ca (fun x ->
            ctx.c.probes <- ctx.c.probes + 1;
            if not (VH.mem m x) then emit x))
      (Ir.Diff (a_cv.ir, b_cv.ir))

(* Under [Eager] every interpreter intermediate is a set, so Count/Sum see
   deduplicated inputs; the fused pipeline streams a bag, so those two get
   a hash dedup barrier.  Max/Min and [Deferred] mode are
   multiplicity-indifferent / multiplicity-faithful respectively. *)
and lower_agg op input =
  let c = as_coll input in
  let ir = Ir.AggStage (op, input.ir) in
  let thunk =
    match op with
    | Term.Count ->
      fun ctx ->
        (match ctx.dedup with
        | Eval.Eager ->
          let seen = VH.create 256 in
          let n = ref 0 in
          iter_coll ctx c (fun x ->
              ctx.c.tuples <- ctx.c.tuples + 1;
              (* replace + length delta: one hash per element, not two *)
              let before = VH.length seen in
              VH.replace seen x ();
              if VH.length seen <> before then incr n);
          Value.Int !n
        | Eval.Deferred ->
          let n = ref 0 in
          iter_coll ctx c (fun _ ->
              ctx.c.tuples <- ctx.c.tuples + 1;
              incr n);
          Value.Int !n)
    | Term.Sum ->
      fun ctx ->
        (match ctx.dedup with
        | Eval.Eager ->
          let seen = VH.create 256 in
          let n = ref 0 in
          iter_coll ctx c (fun x ->
              ctx.c.tuples <- ctx.c.tuples + 1;
              let before = VH.length seen in
              VH.replace seen x ();
              if VH.length seen <> before then n := !n + as_int ctx x);
          Value.Int !n
        | Eval.Deferred ->
          let n = ref 0 in
          iter_coll ctx c (fun x ->
              ctx.c.tuples <- ctx.c.tuples + 1;
              n := !n + as_int ctx x);
          Value.Int !n)
    | Term.Max ->
      fun ctx ->
        let m = ref None in
        iter_coll ctx c (fun x ->
            ctx.c.tuples <- ctx.c.tuples + 1;
            match !m with
            | None -> m := Some x
            | Some cur -> if value_gt x cur then m := Some x);
        (match !m with None -> error "max of empty set" | Some v -> v)
    | Term.Min ->
      fun ctx ->
        let m = ref None in
        iter_coll ctx c (fun x ->
            ctx.c.tuples <- ctx.c.tuples + 1;
            match !m with
            | None -> m := Some x
            | Some cur -> if value_gt cur x then m := Some x);
        (match !m with None -> error "min of empty set" | Some v -> v)
  in
  { shape = Sca thunk; ir }

(* ------------------------------------------------------------------ *)

type compiled = {
  query : Term.query;
  plan : cv;
  ir : Ir.node;
  pipe_slots : int;
  val_slots : int;
}

let ir c = c.ir
let compiled_query c = c.query

let compile (q : Term.query) : compiled =
  Telemetry.span ~cat:"exec" "exec.compile" @@ fun () ->
  let st = { pipe_slots = 0; val_slots = 0 } in
  let plan = lower st q.Term.body (cv_of_value q.Term.arg) in
  {
    query = q;
    plan;
    ir = plan.ir;
    pipe_slots = st.pipe_slots;
    val_slots = st.val_slots;
  }

let compile_opt q =
  match compile q with
  | c -> Ok c
  | exception Unsupported reason -> Error reason

let execute ?(dedup = Eval.Eager) ~db (c : compiled) : Value.t * counters =
  let ctx =
    {
      db;
      dedup;
      pipes = Array.make (max 1 c.pipe_slots) None;
      vals = Array.make (max 1 c.val_slots) None;
      c = fresh_counters ();
    }
  in
  Telemetry.span ~cat:"exec" "exec.run" @@ fun () ->
  let v =
    match c.plan.shape with
    | Coll (Pipe p) -> (
      match dedup with
      | Eval.Eager ->
        (* Stream through a hash dedup so a duplicate-heavy stream sorts
           only its distinct elements — the canonical set comes out
           identical to the interpreter's either way.  On a mostly
           distinct stream the table pays a hash per element and saves
           nothing, so once a 4k-element prefix shows <25% duplicates
           the table is dropped and the final [Value.set] sort-uniqs the
           raw stream, which is exactly the interpreter's cost. *)
        let seen = VH.create 1024 in
        let deduping = ref true in
        let inspected = ref 0 in
        let acc = ref [] in
        p ctx (fun x ->
            if !deduping then begin
              let before = VH.length seen in
              VH.replace seen x ();
              if VH.length seen <> before then acc := x :: !acc;
              incr inspected;
              if
                !inspected land 4095 = 0
                && 4 * VH.length seen > 3 * !inspected
              then begin
                deduping := false;
                VH.reset seen
              end
            end
            else acc := x :: !acc);
        Value.set !acc
      | Eval.Deferred -> Eval.finalize (Value.Bag (drain ctx p)))
    | _ -> (
      let v = force ctx c.plan in
      match dedup with Eval.Eager -> v | Eval.Deferred -> Eval.finalize v)
  in
  if Telemetry.enabled () then (
    Telemetry.count ~n:ctx.c.tuples "exec.tuples";
    Telemetry.count ~n:ctx.c.probes "exec.probes";
    Telemetry.count ~n:ctx.c.builds "exec.builds");
  (v, ctx.c)

(* ------------------------------------------------------------------ *)
(* Backend selection and the interpreter fallback. *)

type backend = Interp of Eval.backend | Compiled

let backend_name = function
  | Interp Eval.Naive -> "interp-naive"
  | Interp Eval.Hashed -> "interp"
  | Compiled -> "compiled"

let backend_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "compiled" -> Ok Compiled
  | "interp" | "interp-hashed" | "interpreted" -> Ok (Interp Eval.Hashed)
  | "interp-naive" -> Ok (Interp Eval.Naive)
  | s -> Error (Fmt.str "unknown execution backend %S (expected compiled|interp|interp-naive)" s)

type stats = {
  backend : backend;  (** the backend that actually ran *)
  fell_back : bool;
  fallback_reason : string option;
  compile_us : float;
  run_us : float;
  tuples : int;
  probes : int;
  builds : int;
  stages : int;
  scalar_nodes : int;
}

let fallbacks = Atomic.make 0
let fallback_count () = Atomic.get fallbacks

let run_interp ~backend ~dedup ~db q =
  let t0 = Telemetry.now () in
  let ctx = Eval.ctx ~db ~backend ~dedup () in
  let v = Eval.run ctx q in
  let t1 = Telemetry.now () in
  ( v,
    {
      backend = Interp backend;
      fell_back = false;
      fallback_reason = None;
      compile_us = 0.;
      run_us = (t1 -. t0) *. 1e6;
      tuples = ctx.Eval.counters.Eval.tuples;
      probes = 0;
      builds = 0;
      stages = 0;
      scalar_nodes = 0;
    } )

let run ?(backend = Compiled) ?(dedup = Eval.Eager) ~db (q : Term.query) :
    Value.t * stats =
  match backend with
  | Interp b -> run_interp ~backend:b ~dedup ~db q
  | Compiled -> (
    let t0 = Telemetry.now () in
    match compile q with
    | exception Unsupported reason ->
      Atomic.incr fallbacks;
      Telemetry.count "exec.fallback";
      let v, s = run_interp ~backend:Eval.Hashed ~dedup ~db q in
      (v, { s with fell_back = true; fallback_reason = Some reason })
    | c ->
      let t1 = Telemetry.now () in
      let v, counters = execute ~dedup ~db c in
      let t2 = Telemetry.now () in
      ( v,
        {
          backend = Compiled;
          fell_back = false;
          fallback_reason = None;
          compile_us = (t1 -. t0) *. 1e6;
          run_us = (t2 -. t1) *. 1e6;
          tuples = counters.tuples;
          probes = counters.probes;
          builds = counters.builds;
          stages = Ir.stages c.ir;
          scalar_nodes = Ir.scalar_nodes c.ir;
        } ))

(* Results are compared modulo set ordering, deferred bags, and Named
   indirection — the oracle equivalence the differential tests pin. *)
let agree ~db a b =
  let ctx = Eval.ctx ~db () in
  Value.equal
    (Eval.finalize (Eval.deep_resolve ctx a))
    (Eval.finalize (Eval.deep_resolve ctx b))

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "backend=%s%s compile=%.1fus run=%.1fus stages=%d scalar-nodes=%d \
     tuples=%d probes=%d builds=%d"
    (backend_name s.backend)
    (match s.fallback_reason with
    | Some r when s.fell_back -> Fmt.str " (fell back: %s)" r
    | _ -> "")
    s.compile_us s.run_us s.stages s.scalar_nodes s.tuples s.probes s.builds

(* Compiled plan execution.

   [compile] lowers a chosen [Term.query] into pipelined producer/consumer
   loops ("A Compiler for Operations on Relations with Bag Semantics",
   PAPERS.md): a spine of Iterate/Flat/Unnest/Iter stages fuses into one
   loop with no intermediate collections, while Join, Nest, the binary set
   operations and aggregates are pipeline breakers that materialize a hash
   table and stream their output.  Per-element work (attribute reads,
   arithmetic, predicates) is closure-converted once at compile time, so
   the run pays no per-node dispatch, no per-stage [Value.set] sort, and
   no counter bookkeeping beyond three per-stage totals.

   The interpreter ({!Eval.run}) is the oracle: for every supported plan
   the compiled result equals the interpreted one modulo set ordering
   (compare with {!agree}).  The correctness argument for running the
   inside of a pipeline in bag discipline even under [Eager] dedup: every
   stage except aggregation is duplicate-insensitive with respect to the
   final canonical set, embedded collections are canonicalised exactly
   where the interpreter canonicalises them, and Count/Sum insert a hash
   dedup barrier under [Eager] so multiplicities are never observed.

   Plans the compiler does not support (pattern holes anywhere) raise
   {!Unsupported}; {!run} catches it, counts the fallback, and delegates
   to the interpreter — explicitly slower, never wrong. *)

open Kola
module Telemetry = Kola_telemetry.Telemetry
module C = Colstore
module Pool = Kola_parallel.Pool

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

(* Runtime errors reuse [Eval.Error] with the interpreter's messages, so a
   compiled plan fails exactly like an interpreted one. *)
let error fmt = Fmt.kstr (fun s -> raise (Eval.Error s)) fmt

type counters = {
  mutable tuples : int;   (** elements flowing through pipeline stages *)
  mutable probes : int;   (** hash-table lookups (joins, set ops) *)
  mutable builds : int;   (** hash-table inserts (build sides, groups) *)
  mutable morsels : int;  (** chunks dispatched by columnar kernels *)
}

let fresh_counters () = { tuples = 0; probes = 0; builds = 0; morsels = 0 }

type rctx = {
  db : (string * Value.t) list;
  dedup : Eval.dedup;
  pipes : Value.t array option array;  (** materialized shared pipelines *)
  vals : Value.t option array;         (** memoized shared scalars *)
  pool : Pool.t option;                (** morsel fan-out for pure kernels *)
  c : counters;
}

module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

let value_gt a b = Value.compare a b > 0

let rec resolve ctx v =
  match v with
  | Value.Named n -> (
    match List.assoc_opt n ctx.db with
    | Some v -> resolve ctx v
    | None -> error "unbound database name %s" n)
  | Value.Hole h -> error "evaluated a pattern hole ?%s" h
  | v -> v

let as_pair ctx v =
  match resolve ctx v with
  | Value.Pair (a, b) -> (a, b)
  | v -> error "expected a pair, got %a" Value.pp v

let as_set ctx v =
  match resolve ctx v with
  | Value.Set xs | Value.Bag xs | Value.List xs -> xs
  | v -> error "expected a set, got %a" Value.pp v

let as_int ctx v =
  match resolve ctx v with
  | Value.Int i -> i
  | v -> error "expected an int, got %a" Value.pp v

let collection ctx elems =
  match ctx.dedup with
  | Eval.Eager -> Value.set elems
  | Eval.Deferred -> Value.Bag elems

(* ------------------------------------------------------------------ *)
(* Loop-invariant analysis.  A func is input-independent when evaluating
   it never consults its argument: a [Kf] constant, a composition whose
   right leg is input-independent (the left leg then sees the same value
   on every call), a pairing or conditional of input-independent parts,
   or a [Cf] whose body ignores its argument.  Such subterms — most
   importantly a closed subquery inside a membership predicate, which
   the interpreter re-evaluates once per outer element — are computed
   once per run by the compiled closures.  The analysis is conservative:
   anything that pattern-matches on its argument ([Pi1], [Times], ...)
   counts as dependent, so hoisting can never change error behaviour. *)

let rec func_invariant : Term.func -> bool = function
  | Term.Kf _ -> true
  | Term.Compose (Term.Iter (p, f), Term.Pairf (g, x)) ->
    (* Environment threading: the translator compiles a nested query as
       [iter(p, f) ∘ ⟨id, X⟩], pairing every element of X with the outer
       binding even when the body never mentions it.  The variable-free
       algebra makes that deadness syntactic: if X is closed and neither
       p nor f reads π1 of its argument, the whole subplan is closed.
       The ⟨g, x⟩ legs must not introduce input-dependent failures
       either, hence the [g = id] / invariant guard. *)
    (g = Term.Id || func_invariant g)
    && func_invariant x && pred_env_free p && func_env_free f
  | Term.Compose (_, g) -> func_invariant g
  | Term.Pairf (f, g) -> func_invariant f && func_invariant g
  | Term.Con (p, f, g) ->
    pred_invariant p && func_invariant f && func_invariant g
  | Term.Cf (f, _) -> func_invariant f
  | _ -> false

and pred_invariant : Term.pred -> bool = function
  | Term.Kp _ -> true
  | Term.Oplus (_, f) -> func_invariant f
  | Term.Andp (p, q) | Term.Orp (p, q) -> pred_invariant p && pred_invariant q
  | Term.Inv p -> pred_invariant p
  | Term.Cp (p, _) -> pred_invariant p
  | _ -> false

(* Applied to an [iter] element [Pair (env, y)]: does the result depend
   only on [y]?  π2 discards the environment outright; pair-shaped
   plumbing is env-free when all its legs are; anything invariant ignores
   the whole argument, environment included. *)
and func_env_free : Term.func -> bool = function
  | Term.Pi2 -> true
  | Term.Compose (_, g) -> func_env_free g
  | Term.Pairf (f, g) -> func_env_free f && func_env_free g
  | Term.Con (p, f, g) ->
    pred_env_free p && func_env_free f && func_env_free g
  | f -> func_invariant f

and pred_env_free : Term.pred -> bool = function
  | Term.Oplus (_, f) -> func_env_free f
  | Term.Andp (p, q) | Term.Orp (p, q) -> pred_env_free p && pred_env_free q
  | Term.Inv p -> pred_env_free p
  | p -> pred_invariant p

(* ------------------------------------------------------------------ *)
(* Scalar closure compilation: per-element work is translated once into
   nested closures mirroring [Eval.func]/[Eval.pred] case by case, so a
   hot loop never touches the term again.  [fc] additionally hoists
   loop-invariant subterms: the compiled closure memoizes its result on
   the (db, dedup) pair it ran under, so a closed subquery used as a
   filter operand costs one evaluation per run instead of one per
   element. *)

let rec fc (f : Term.func) : rctx -> Value.t -> Value.t =
  match f with
  | Term.Kf _ -> fc_node f (* already O(1); a memo would only add a branch *)
  | _ when func_invariant f ->
    let f' = fc_node f in
    let memo = ref None in
    fun ctx v ->
      (match !memo with
      | Some (db, dedup, r) when db == ctx.db && dedup = ctx.dedup -> r
      | _ ->
        let r = f' ctx v in
        memo := Some (ctx.db, ctx.dedup, r);
        r)
  | _ -> fc_node f

and fc_node (f : Term.func) : rctx -> Value.t -> Value.t =
  match f with
  | Term.Id -> fun ctx v -> resolve ctx v
  | Term.Pi1 -> fun ctx v -> fst (as_pair ctx v)
  | Term.Pi2 -> fun ctx v -> snd (as_pair ctx v)
  | Term.Prim name ->
    fun ctx v ->
      (match resolve ctx v with
      | Value.Obj _ as o -> (
        match Value.field name o with
        | Some x -> x
        | None -> error "object %a has no attribute %s" Value.pp o name)
      | v -> error "attribute %s applied to non-object %a" name Value.pp v)
  | Term.Compose (Term.Iter (Term.Kp true, Term.Pi2), Term.Pairf (g, x)) ->
    (* The translator threads the environment through every nested query
       as [iter(true, π2) ∘ ⟨g, X⟩] even when the body ignores it; the
       loop only repackages X.  Evaluate both legs (so errors surface
       exactly as before) but skip the pair and per-element pair/closure
       work: the result is X's elements under the ambient discipline. *)
    let g' = fc g and x' = fc x in
    fun ctx v ->
      ignore (g' ctx v);
      let ys = as_set ctx (x' ctx v) in
      ctx.c.tuples <- ctx.c.tuples + List.length ys;
      collection ctx ys
  | Term.Compose (f, g) ->
    let f' = fc f and g' = fc g in
    fun ctx v -> f' ctx (g' ctx v)
  | Term.Pairf (f, g) ->
    let f' = fc f and g' = fc g in
    fun ctx v -> Value.Pair (f' ctx v, g' ctx v)
  | Term.Times (f, g) ->
    let f' = fc f and g' = fc g in
    fun ctx v ->
      let a, b = as_pair ctx v in
      Value.Pair (f' ctx a, g' ctx b)
  | Term.Kf c -> fun ctx _ -> resolve ctx c
  | Term.Cf (f, c) ->
    let f' = fc f in
    fun ctx v -> f' ctx (Value.Pair (c, v))
  | Term.Con (p, f, g) ->
    let p' = pc p and f' = fc f and g' = fc g in
    fun ctx v -> if p' ctx v then f' ctx v else g' ctx v
  | Term.Arith op ->
    let op = match op with Term.Add -> ( + ) | Term.Sub -> ( - ) | Term.Mul -> ( * ) in
    fun ctx v ->
      let a, b = as_pair ctx v in
      Value.Int (op (as_int ctx a) (as_int ctx b))
  | Term.Agg op -> fc_agg op
  | Term.Setop op -> fc_setop op
  | Term.Sng -> fun ctx v -> Value.set [ resolve ctx v ]
  | Term.Flat ->
    fun ctx v ->
      let outer = as_set ctx v in
      ctx.c.tuples <- ctx.c.tuples + List.length outer;
      collection ctx (List.concat_map (fun s -> as_set ctx s) outer)
  | Term.Iterate (p, f) ->
    let p' = pc p and f' = fc f in
    fun ctx v ->
      let xs = as_set ctx v in
      ctx.c.tuples <- ctx.c.tuples + List.length xs;
      collection ctx
        (List.filter_map (fun x -> if p' ctx x then Some (f' ctx x) else None) xs)
  | Term.Iter (Term.Kp true, Term.Pi2) ->
    (* Degenerate environment loop: keep everything, project the element —
       no per-element pair needs building. *)
    fun ctx v ->
      let _, set = as_pair ctx v in
      let ys = as_set ctx set in
      ctx.c.tuples <- ctx.c.tuples + List.length ys;
      collection ctx ys
  | Term.Iter (p, f) ->
    let p' = pc p and f' = fc f in
    fun ctx v ->
      let e, set = as_pair ctx v in
      let ys = as_set ctx set in
      ctx.c.tuples <- ctx.c.tuples + List.length ys;
      collection ctx
        (List.filter_map
           (fun y ->
             let pair = Value.Pair (e, y) in
             if p' ctx pair then Some (f' ctx pair) else None)
           ys)
  | Term.Join (p, f) -> fc_join p f
  | Term.Nest (f, g) -> fc_nest f g
  | Term.Unnest (f, g) ->
    let fk = fc f and fg = fc g in
    fun ctx v ->
      let xs = as_set ctx v in
      ctx.c.tuples <- ctx.c.tuples + List.length xs;
      collection ctx
        (List.concat_map
           (fun x ->
             let key = fk ctx x in
             List.map (fun y -> Value.Pair (key, y)) (as_set ctx (fg ctx x)))
           xs)
  | Term.Fhole h -> unsupported "pattern hole ?%s" h

and fc_agg op : rctx -> Value.t -> Value.t =
  match op with
  | Term.Count ->
    fun ctx v ->
      let xs = as_set ctx v in
      ctx.c.tuples <- ctx.c.tuples + List.length xs;
      Value.Int (List.length xs)
  | Term.Sum ->
    fun ctx v ->
      let xs = as_set ctx v in
      ctx.c.tuples <- ctx.c.tuples + List.length xs;
      Value.Int (List.fold_left (fun acc x -> acc + as_int ctx x) 0 xs)
  | Term.Max ->
    fun ctx v ->
      (match as_set ctx v with
      | [] -> error "max of empty set"
      | x :: rest ->
        ctx.c.tuples <- ctx.c.tuples + 1 + List.length rest;
        List.fold_left (fun m y -> if value_gt y m then y else m) x rest)
  | Term.Min ->
    fun ctx v ->
      (match as_set ctx v with
      | [] -> error "min of empty set"
      | x :: rest ->
        ctx.c.tuples <- ctx.c.tuples + 1 + List.length rest;
        List.fold_left (fun m y -> if value_gt m y then y else m) x rest)

(* Membership set ops over a hash set of the right operand — O(|xs|+|ys|)
   where the interpreter is quadratic; same elements, same left-to-right
   order, so the result value is identical. *)
and fc_setop op : rctx -> Value.t -> Value.t =
  let member ctx ys =
    let t = VH.create (2 * List.length ys + 1) in
    List.iter (fun y -> VH.replace t y ()) ys;
    ignore ctx;
    t
  in
  match op with
  | Term.Union ->
    fun ctx v ->
      let a, b = as_pair ctx v in
      let xs = as_set ctx a and ys = as_set ctx b in
      ctx.c.tuples <- ctx.c.tuples + List.length xs + List.length ys;
      collection ctx (xs @ ys)
  | Term.Inter ->
    fun ctx v ->
      let a, b = as_pair ctx v in
      let xs = as_set ctx a and ys = as_set ctx b in
      ctx.c.tuples <- ctx.c.tuples + List.length xs + List.length ys;
      let m = member ctx ys in
      collection ctx (List.filter (fun x -> VH.mem m x) xs)
  | Term.Diff ->
    fun ctx v ->
      let a, b = as_pair ctx v in
      let xs = as_set ctx a and ys = as_set ctx b in
      ctx.c.tuples <- ctx.c.tuples + List.length xs + List.length ys;
      let m = member ctx ys in
      collection ctx (List.filter (fun x -> not (VH.mem m x)) xs)

(* Scalar join/nest mirror the [Hashed] interpreter backend (decomposition
   done once at compile time), falling back to nested loops when the
   predicate exposes no index. *)
and fc_join p f : rctx -> Value.t -> Value.t =
  let f' = fc f in
  match Eval.hash_joinable p with
  | Some (kind, g1, g2, residual) ->
    let g1' = fc g1 and g2' = fc g2 in
    let res' = Option.map pc residual in
    fun ctx v ->
      let a, b = as_pair ctx v in
      let xs = as_set ctx a and ys = as_set ctx b in
      let index : Value.t list VH.t = VH.create (2 * List.length ys + 1) in
      let add key y =
        let prev = Option.value ~default:[] (VH.find_opt index key) in
        VH.replace index key (y :: prev)
      in
      List.iter
        (fun y ->
          ctx.c.builds <- ctx.c.builds + 1;
          match kind with
          | `Eq -> add (g2' ctx y) y
          | `In -> List.iter (fun e -> add e y) (as_set ctx (g2' ctx y)))
        ys;
      collection ctx
        (List.concat_map
           (fun x ->
             ctx.c.probes <- ctx.c.probes + 1;
             let matches =
               Option.value ~default:[] (VH.find_opt index (g1' ctx x))
             in
             List.filter_map
               (fun y ->
                 let pair = Value.Pair (x, y) in
                 let keep =
                   match res' with None -> true | Some r -> r ctx pair
                 in
                 if keep then Some (f' ctx pair) else None)
               matches)
           xs)
  | None ->
    let p' = pc p in
    fun ctx v ->
      let a, b = as_pair ctx v in
      let xs = as_set ctx a and ys = as_set ctx b in
      ctx.c.tuples <-
        ctx.c.tuples + (List.length xs * (1 + List.length ys));
      collection ctx
        (List.concat_map
           (fun x ->
             List.filter_map
               (fun y ->
                 let pair = Value.Pair (x, y) in
                 if p' ctx pair then Some (f' ctx pair) else None)
               ys)
           xs)

and fc_nest f g : rctx -> Value.t -> Value.t =
  let f' = fc f and g' = fc g in
  fun ctx v ->
    let a, b = as_pair ctx v in
    let xs = as_set ctx a and ys = as_set ctx b in
    let groups : Value.t list VH.t = VH.create (2 * List.length ys + 1) in
    List.iter
      (fun x ->
        ctx.c.builds <- ctx.c.builds + 1;
        let key = f' ctx x in
        let prev = Option.value ~default:[] (VH.find_opt groups key) in
        VH.replace groups key (g' ctx x :: prev))
      xs;
    collection ctx
      (List.map
         (fun y ->
           ctx.c.probes <- ctx.c.probes + 1;
           let group = Option.value ~default:[] (VH.find_opt groups y) in
           Value.Pair (y, collection ctx group))
         ys)

and pc (p : Term.pred) : rctx -> Value.t -> bool =
  match p with
  | Term.Eq ->
    fun ctx v ->
      let a, b = as_pair ctx v in
      Value.equal (resolve ctx a) (resolve ctx b)
  | Term.Leq ->
    fun ctx v ->
      let a, b = as_pair ctx v in
      Value.compare (resolve ctx a) (resolve ctx b) <= 0
  | Term.Gt ->
    fun ctx v ->
      let a, b = as_pair ctx v in
      value_gt (resolve ctx a) (resolve ctx b)
  | Term.In ->
    (* Membership hashes the right operand instead of scanning it per
       probe.  The member table is memoized on the operand's physical
       identity, so a loop-invariant right side — the common shape,
       [x in Q] with [Q] closed over the loop, which [fc]'s hoisting
       pins to one physical value per run — is hashed once and probed in
       O(1); the interpreter's [List.exists] pays O(|Q|) per element.
       Small or per-element sets keep the linear scan, where building a
       table would cost more than it saves. *)
    let memo = ref None in
    fun ctx v ->
      let a, b = as_pair ctx v in
      let a = resolve ctx a in
      let ys = as_set ctx b in
      if List.compare_length_with ys 16 <= 0 then
        List.exists (Value.equal a) ys
      else begin
        let t =
          match !memo with
          | Some (prev, t) when prev == ys -> t
          | _ ->
            let t = VH.create (2 * List.length ys + 1) in
            List.iter (fun y -> VH.replace t y ()) ys;
            ctx.c.builds <- ctx.c.builds + List.length ys;
            memo := Some (ys, t);
            t
        in
        ctx.c.probes <- ctx.c.probes + 1;
        VH.mem t a
      end
  | Term.Primp name ->
    fun ctx v ->
      (match resolve ctx v with
      | Value.Obj _ as o -> (
        match Value.field name o with
        | Some (Value.Bool b) -> b
        | Some x ->
          error "predicate attribute %s is not boolean: %a" name Value.pp x
        | None -> error "object %a has no attribute %s" Value.pp o name)
      | v -> error "predicate %s applied to non-object %a" name Value.pp v)
  | Term.Oplus (p, f) ->
    let p' = pc p and f' = fc f in
    fun ctx v -> p' ctx (f' ctx v)
  | Term.Andp (p, q) ->
    let p' = pc p and q' = pc q in
    fun ctx v -> p' ctx v && q' ctx v
  | Term.Orp (p, q) ->
    let p' = pc p and q' = pc q in
    fun ctx v -> p' ctx v || q' ctx v
  | Term.Inv p ->
    let p' = pc p in
    fun ctx v -> not (p' ctx v)
  | Term.Conv p ->
    let p' = pc p in
    fun ctx v ->
      let a, b = as_pair ctx v in
      p' ctx (Value.Pair (b, a))
  | Term.Kp b -> fun _ _ -> b
  | Term.Cp (p, c) ->
    let p' = pc p in
    fun ctx v -> p' ctx (Value.Pair (c, v))
  | Term.Phole h -> unsupported "pattern hole ?%s" h

(* ------------------------------------------------------------------ *)
(* Columnar kernels.  Under [layout = Columnar] the compiler binds extent
   scans to a {!Colstore} relation: a [vec] is a base relation plus a
   composed pure selection predicate (chained filters fuse into one
   conjunction tested in a single pass) and a per-run prologue that forces
   whatever the row path would have forced (environment values), so error
   behaviour is unchanged.  [cproj]/[cpred] compile attribute paths and
   comparisons against the typed columns; they refuse — and the operator
   keeps its row closures, counted as a degrade — whenever the columns
   cannot prove the row semantics are reproduced (missing or non-uniform
   column, non-exact ref traversal, anything needing the runtime
   context). *)

type layout = Row | Columnar

let layout_name = function Row -> "row" | Columnar -> "columnar"

let layout_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "row" -> Ok Row
  | "columnar" | "col" -> Ok Columnar
  | s -> Error (Fmt.str "unknown layout %S (expected row|columnar)" s)

type vec = {
  rel : C.relation;
  vp : (int -> bool) option;     (** composed selection predicate (pure) *)
  pre : (rctx -> unit) option;   (** forced once per scan, before rows *)
}

(* An unboxed int projection over a selection — the feed for aggregate
   fast paths. *)
type icol = { src : vec; iget : int -> int }

let vec_pre ctx v = match v.pre with Some f -> f ctx | None -> ()

let vec_conj v p =
  match v.vp with
  | None -> { v with vp = Some p }
  | Some q -> { v with vp = Some (fun i -> q i && p i) }

let vec_add_pre v f =
  match v.pre with
  | None -> { v with pre = Some f }
  | Some g ->
    { v with pre = Some (fun ctx -> g ctx; f ctx) }

let vec_iter ctx v k =
  vec_pre ctx v;
  let n = Array.length v.rel.C.rows in
  match v.vp with
  | None -> for i = 0 to n - 1 do k i done
  | Some p -> for i = 0 to n - 1 do if p i then k i done

(* Selected rows, in row order.  Rows are stored in canonical set order
   and a selection preserves it, so under [Eager] the result is already a
   canonical set — no sort needed. *)
let vec_rows ctx v =
  vec_pre ctx v;
  let rows = v.rel.C.rows in
  let acc = ref [] in
  (match v.vp with
  | None -> for i = Array.length rows - 1 downto 0 do acc := rows.(i) :: !acc done
  | Some p ->
    for i = Array.length rows - 1 downto 0 do
      if p i then acc := rows.(i) :: !acc
    done);
  !acc

(* Order-preserving morsel fan-out: split [0, n) into fixed-size morsels
   (boundaries depend only on [n], never on the worker count), compute
   [f lo hi] per morsel — [f] must be pure — and return the chunk results
   in morsel order.  Results are therefore bit-identical at any [--jobs]:
   only scheduling, never splitting or merge order, sees the pool. *)
let morsel_rows = 65_536

let morsel_fold ctx ~n (f : int -> int -> 'a) : 'a list =
  if n <= 0 then []
  else
    match ctx.pool with
    | Some pool when n > morsel_rows && Pool.size pool > 1 ->
      let k = (n + morsel_rows - 1) / morsel_rows in
      ctx.c.morsels <- ctx.c.morsels + k;
      let bounds =
        Array.init k (fun i -> (i * morsel_rows, min n ((i + 1) * morsel_rows)))
      in
      Array.to_list (Pool.map pool (fun (lo, hi) -> f lo hi) bounds)
    | _ ->
      ctx.c.morsels <- ctx.c.morsels + 1;
      [ f 0 n ]

(* Typed projection closures over a base row index. *)
type proj =
  | PInt of (int -> int)
  | PStr of (int -> string)
  | PBool of (int -> bool)
  | PRow of C.relation * (int -> int)  (** a row of another relation *)
  | PVal of (int -> Value.t)           (** boxed column read (pure) *)

let rec aproj coldb (f : Term.func) (p : proj) : proj option =
  match (f, p) with
  | Term.Id, p -> Some p
  | Term.Compose (a, b), p -> (
    match aproj coldb b p with
    | Some q -> aproj coldb a q
    | None -> None)
  | Term.Kf (Value.Int k), _ -> Some (PInt (fun _ -> k))
  | Term.Kf (Value.Str s), _ -> Some (PStr (fun _ -> s))
  | Term.Kf (Value.Bool b), _ -> Some (PBool (fun _ -> b))
  | Term.Prim a, PRow (rel, ix) -> (
    match C.column rel a with
    | Some (C.Column.Ints arr) -> Some (PInt (fun i -> arr.(ix i)))
    | Some (C.Column.Strs arr) -> Some (PStr (fun i -> arr.(ix i)))
    | Some (C.Column.Bools arr) -> Some (PBool (fun i -> arr.(ix i)))
    | Some (C.Column.Refs { target; idx; exact = true; _ }) -> (
      (* Exact refs only: the embedded value IS the target row, so reading
         on through its columns is sound. *)
      match C.relation coldb target with
      | Some t -> Some (PRow (t, fun i -> idx.(ix i)))
      | None -> None)
    | Some (C.Column.Boxed arr) -> Some (PVal (fun i -> arr.(ix i)))
    | Some (C.Column.Refs _) | None -> None)
  | _ -> None

let proj_of_row coldb f rel = aproj coldb f (PRow (rel, fun i -> i))

(* The raw value a projection denotes — exactly what the row path's
   attribute closure returns (field values are not resolved). *)
let proj_emit (p : proj) : int -> Value.t =
  match p with
  | PInt g -> fun i -> Value.Int (g i)
  | PStr g -> fun i -> Value.Str (g i)
  | PBool g -> fun i -> Value.Bool (g i)
  | PRow (rel, ix) -> fun i -> rel.C.rows.(ix i)
  | PVal g -> g

(* Comparator compilation.  Same-kind typed comparisons only: rows of one
   relation are stored in canonical ([Value.compare]) order with distinct
   oids, so index order is value order and all three comparisons agree
   with the row path.  Mixed-type or boxed comparisons keep the row
   closures. *)
let ccmp (cmp : [ `Eq | `Leq | `Gt ]) (a : proj) (b : proj) :
    (int -> bool) option =
  match (a, b) with
  | PInt x, PInt y ->
    Some
      (match cmp with
      | `Eq -> fun i -> x i = y i
      | `Leq -> fun i -> x i <= y i
      | `Gt -> fun i -> x i > y i)
  | PStr x, PStr y ->
    Some
      (match cmp with
      | `Eq -> fun i -> String.equal (x i) (y i)
      | `Leq -> fun i -> String.compare (x i) (y i) <= 0
      | `Gt -> fun i -> String.compare (x i) (y i) > 0)
  | PBool x, PBool y ->
    Some
      (match cmp with
      | `Eq -> fun i -> x i = y i
      | `Leq -> fun i -> Stdlib.compare (x i) (y i) <= 0
      | `Gt -> fun i -> Stdlib.compare (x i) (y i) > 0)
  | PRow (r1, ix1), PRow (r2, ix2) when String.equal r1.C.name r2.C.name ->
    Some
      (match cmp with
      | `Eq -> fun i -> ix1 i = ix2 i
      | `Leq -> fun i -> ix1 i <= ix2 i
      | `Gt -> fun i -> ix1 i > ix2 i)
  | _ -> None

let rec cpred coldb (p : Term.pred) (input : proj) : (int -> bool) option =
  match p with
  | Term.Kp b -> Some (fun _ -> b)
  | Term.Andp (p, q) -> (
    match (cpred coldb p input, cpred coldb q input) with
    | Some a, Some b -> Some (fun i -> a i && b i)
    | _ -> None)
  | Term.Orp (p, q) -> (
    match (cpred coldb p input, cpred coldb q input) with
    | Some a, Some b -> Some (fun i -> a i || b i)
    | _ -> None)
  | Term.Inv p ->
    Option.map (fun a i -> not (a i)) (cpred coldb p input)
  | Term.Primp a -> (
    match input with
    | PRow (rel, ix) -> (
      match C.column rel a with
      | Some (C.Column.Bools arr) -> Some (fun i -> arr.(ix i))
      | _ -> None)
    | _ -> None)
  | Term.Oplus (((Term.Eq | Term.Leq | Term.Gt) as cmp), Term.Pairf (a, b))
    -> (
    match (aproj coldb a input, aproj coldb b input) with
    | Some pa, Some pb ->
      ccmp
        (match cmp with
        | Term.Eq -> `Eq
        | Term.Leq -> `Leq
        | _ -> `Gt)
        pa pb
    | _ -> None)
  | Term.Oplus (q, f) -> (
    match aproj coldb f input with
    | Some j -> cpred coldb q j
    | None -> None)
  | _ -> None

(* Rebase a func/pred applied to an [iter] element [Pair (env, row)] onto
   the row alone: π2 becomes the identity, constants pass through, and
   anything touching the environment refuses (the row closures keep it
   correct). *)
let rec func_reroot : Term.func -> Term.func option = function
  | Term.Pi2 -> Some Term.Id
  | Term.Kf _ as f -> Some f
  | Term.Compose (a, b) -> (
    match func_reroot b with
    | Some Term.Id -> Some a
    | Some b' -> Some (Term.Compose (a, b'))
    | None -> None)
  | Term.Pairf (a, b) -> (
    match (func_reroot a, func_reroot b) with
    | Some a', Some b' -> Some (Term.Pairf (a', b'))
    | _ -> None)
  | _ -> None

let rec pred_reroot : Term.pred -> Term.pred option = function
  | Term.Kp b -> Some (Term.Kp b)
  | Term.Andp (p, q) -> (
    match (pred_reroot p, pred_reroot q) with
    | Some p', Some q' -> Some (Term.Andp (p', q'))
    | _ -> None)
  | Term.Orp (p, q) -> (
    match (pred_reroot p, pred_reroot q) with
    | Some p', Some q' -> Some (Term.Orp (p', q'))
    | _ -> None)
  | Term.Inv p -> Option.map (fun p' -> Term.Inv p') (pred_reroot p)
  | Term.Oplus (q, f) ->
    (* [q] applies to [f]'s output, which no longer sees the pair. *)
    Option.map (fun f' -> Term.Oplus (q, f')) (func_reroot f)
  | _ -> None

(* Join-key compilation: the spaces two compiled keys may be matched in.
   [KRow] keys are row indexes into a named relation; [-1] marks a ref
   that resolved to no extent row.  A [-1] key can never equal an
   in-extent key (oid lookup failed, and extent rows carry in-extent
   oids), so joins may treat it as a guaranteed miss — provided at most
   one side can produce [-1], which the callers enforce via [total]. *)
type ckey =
  | KInt of (int -> int)
  | KStr of (int -> string)
  | KRow of string * (int -> int) * bool  (** target, index, total *)

let ckey_of coldb (g : Term.func) (rel : C.relation) : ckey option =
  match proj_of_row coldb g rel with
  | Some (PInt get) -> Some (KInt get)
  | Some (PStr get) -> Some (KStr get)
  | Some (PRow (t, ix)) -> Some (KRow (t.C.name, ix, true))
  | Some (PBool _) | Some (PVal _) -> None
  | None -> (
    (* Allow one final ref step that is total-or-not and inexact: identity
       joins only need the (cls, oid) index, not field equality. *)
    let split =
      match g with
      | Term.Prim a -> Some (a, Term.Id)
      | Term.Compose (Term.Prim a, rest) -> Some (a, rest)
      | _ -> None
    in
    match split with
    | Some (a, rest) -> (
      match proj_of_row coldb rest rel with
      | Some (PRow (r, ix)) -> (
        match C.column r a with
        | Some (C.Column.Refs { target; idx; total; _ }) ->
          Some (KRow (target, (fun i -> idx.(ix i)), total))
        | _ -> None)
      | _ -> None)
    | None -> None)

(* ------------------------------------------------------------------ *)
(* Pipeline lowering.  A compiled spine value is a collection (either a
   stored whole, a streaming producer, or a columnar scan), a
   statically-known pair, or a scalar thunk; the IR description is built
   alongside. *)

type producer = rctx -> (Value.t -> unit) -> unit

type coll =
  | Whole of (rctx -> Value.t)
  | Pipe of producer
  | Cols of vec   (** columnar scan: selected rows of one relation *)
  | ICol of icol  (** columnar scan projected to unboxed ints *)

type cv = { shape : shape; ir : Ir.node }
and shape = Coll of coll | Duo of cv * cv | Sca of (rctx -> Value.t)

type cstate = {
  mutable pipe_slots : int;
  mutable val_slots : int;
  coldb : C.db option;
  mutable kernels : int;          (** operators lowered to column kernels *)
  mutable degrades : string list; (** columnar inputs kept on row closures *)
}

let degrade st reason = st.degrades <- reason :: st.degrades

let iter_coll ctx (c : coll) emit =
  match c with
  | Whole f -> List.iter emit (as_set ctx (f ctx))
  | Pipe p -> p ctx emit
  | Cols v -> vec_iter ctx v (fun i -> emit v.rel.C.rows.(i))
  | ICol { src; iget } -> vec_iter ctx src (fun i -> emit (Value.Int (iget i)))

let drain ctx (p : producer) =
  let acc = ref [] in
  p ctx (fun v -> acc := v :: !acc);
  List.rev !acc

let rec force ctx (v : cv) : Value.t =
  match v.shape with
  | Sca f -> f ctx
  | Duo (a, b) -> Value.Pair (force ctx a, force ctx b)
  | Coll (Whole f) -> f ctx
  | Coll (Pipe p) -> collection ctx (drain ctx p)
  | Coll (Cols v) -> (
    (* selection preserves canonical row order, so [Eager] needs no sort *)
    match ctx.dedup with
    | Eval.Eager -> Value.Set (vec_rows ctx v)
    | Eval.Deferred -> Value.Bag (vec_rows ctx v))
  | Coll (ICol { src; iget }) ->
    let acc = ref [] in
    vec_iter ctx src (fun i -> acc := Value.Int (iget i) :: !acc);
    collection ctx (List.rev !acc)

let as_coll (v : cv) : coll =
  match v.shape with
  | Coll c -> c
  | Sca f -> Whole f
  | Duo _ -> Whole (fun ctx -> force ctx v)

(* Re-running a producer would recompute the whole upstream pipeline, so
   any input consumed more than once (⟨f,g⟩, con, dynamic pair splits) is
   materialized into a per-run slot the first time it is demanded. *)
let rec share st (v : cv) : cv =
  match v.shape with
  | Coll (Pipe p) ->
    let slot = st.pipe_slots in
    st.pipe_slots <- st.pipe_slots + 1;
    let materialize ctx =
      match ctx.pipes.(slot) with
      | Some arr -> arr
      | None ->
        let arr = Array.of_list (drain ctx p) in
        ctx.pipes.(slot) <- Some arr;
        arr
    in
    {
      shape = Coll (Pipe (fun ctx emit -> Array.iter emit (materialize ctx)));
      ir = Ir.Shared (slot, v.ir);
    }
  | Duo (a, b) ->
    let a = share st a and b = share st b in
    { shape = Duo (a, b); ir = Ir.PairNode (a.ir, b.ir) }
  | Sca f ->
    let slot = st.val_slots in
    st.val_slots <- st.val_slots + 1;
    {
      shape =
        Sca
          (fun ctx ->
            match ctx.vals.(slot) with
            | Some v -> v
            | None ->
              let v = f ctx in
              ctx.vals.(slot) <- Some v;
              v);
      ir = Ir.Shared (slot, v.ir);
    }
  (* Columnar scans re-run their (pure) selection per consumption — cheaper
     than materializing, and [pre] effects are memoized via value slots. *)
  | Coll (Whole _) | Coll (Cols _) | Coll (ICol _) -> v

let as_duo st (v : cv) : cv * cv =
  match v.shape with
  | Duo (a, b) -> (a, b)
  | _ ->
    let v = share st v in
    let f ctx = force ctx v in
    ( { shape = Sca (fun ctx -> fst (as_pair ctx (f ctx))); ir = Ir.Scalar (Term.Pi1, v.ir) },
      { shape = Sca (fun ctx -> snd (as_pair ctx (f ctx))); ir = Ir.Scalar (Term.Pi2, v.ir) } )

let rec cv_of_value st (v : Value.t) : cv =
  match v with
  | Value.Hole h -> unsupported "pattern hole ?%s in query argument" h
  | Value.Pair (a, b) ->
    let ca = cv_of_value st a and cb = cv_of_value st b in
    { shape = Duo (ca, cb); ir = Ir.PairNode (ca.ir, cb.ir) }
  | Value.Named n
    when Option.is_some
           (Option.bind st.coldb (fun cd -> C.relation cd n)) ->
    let rel =
      Option.get (Option.bind st.coldb (fun cd -> C.relation cd n))
    in
    { shape = Coll (Cols { rel; vp = None; pre = None }); ir = Ir.Scan v }
  | Value.Named _ | Value.Set _ | Value.Bag _ | Value.List _ ->
    { shape = Coll (Whole (fun ctx -> resolve ctx v)); ir = Ir.Scan v }
  | v -> { shape = Sca (fun ctx -> resolve ctx v); ir = Ir.Leaf v }

let scalar_apply (f : Term.func) (input : cv) : cv =
  let f' = fc f in
  { shape = Sca (fun ctx -> f' ctx (force ctx input)); ir = Ir.Scalar (f, input.ir) }

let pipe p ir = { shape = Coll (Pipe p); ir }

(* The compose spine, outermost first. *)
let rec compose_spine f acc =
  match f with
  | Term.Compose (a, b) -> compose_spine a (compose_spine b acc)
  | f -> f :: acc

(* Locate the untangled hidden-join triple — group-by over an unnested
   hash join — anywhere on an outermost-first compose spine. *)
let rec split_group_join acc = function
  | (Term.Nest (Term.Pi1, Term.Pi2) as n)
    :: (Term.Times (Term.Unnest (Term.Pi1, Term.Pi2), Term.Id) as t)
    :: (Term.Pairf (Term.Join (p, Term.Times (Term.Id, g)), Term.Pi1) as pf)
    :: inner ->
    Some (List.rev acc, (p, g, n, t, pf), inner)
  | x :: rest -> split_group_join (x :: acc) rest
  | [] -> None

let rec lower st (f : Term.func) (input : cv) : cv =
  match f with
  | Term.Compose (a, b) when st.coldb <> None -> (
    (* Flatten the spine so compose associativity cannot hide the fusable
       triple, lower the stages inside it, then fuse — or fall back to
       lowering the triple stage by stage. *)
    match split_group_join [] (compose_spine f []) with
    | Some (outer, (p, g, n, t, pf), inner) ->
      let app stages base =
        List.fold_left (fun acc s -> lower st s acc) base (List.rev stages)
      in
      let base = app inner input in
      let mid =
        match lower_fused_group st p g base with
        | Some cv -> cv
        | None -> lower st n (lower st t (lower st pf base))
      in
      app outer mid
    | None -> lower st a (lower st b input))
  | Term.Compose (a, b) -> lower st a (lower st b input)
  | Term.Id -> (
    match input.shape with
    | Sca f -> { input with shape = Sca (fun ctx -> resolve ctx (f ctx)) }
    | Coll (Whole f) ->
      { input with shape = Coll (Whole (fun ctx -> resolve ctx (f ctx))) }
    | Coll (Pipe _) | Coll (Cols _) | Coll (ICol _) | Duo _ -> input)
  | Term.Pi1 -> fst (as_duo st input)
  | Term.Pi2 -> snd (as_duo st input)
  | Term.Times (a, b) ->
    let l, r = as_duo st input in
    let la = lower st a l and lb = lower st b r in
    { shape = Duo (la, lb); ir = Ir.PairNode (la.ir, lb.ir) }
  | Term.Pairf (a, b) ->
    let s = share st input in
    let la = lower st a s and lb = lower st b s in
    { shape = Duo (la, lb); ir = Ir.PairNode (la.ir, lb.ir) }
  | Term.Kf c -> cv_of_value st c
  | Term.Cf (f, c) ->
    let cc = cv_of_value st c in
    lower st f { shape = Duo (cc, input); ir = Ir.PairNode (cc.ir, input.ir) }
  | Term.Con (p, a, b) ->
    let s = share st input in
    let p' = pc p in
    let la = lower st a s and lb = lower st b s in
    let ir = Ir.Branch (p, s.ir, la.ir, lb.ir) in
    (match (la.shape, lb.shape) with
    | Coll ca, Coll cb ->
      pipe
        (fun ctx emit ->
          if p' ctx (force ctx s) then iter_coll ctx ca emit
          else iter_coll ctx cb emit)
        ir
    | _ ->
      {
        shape =
          Sca
            (fun ctx ->
              if p' ctx (force ctx s) then force ctx la else force ctx lb);
        ir;
      })
  | Term.Sng ->
    {
      shape = Coll (Whole (fun ctx -> Value.set [ resolve ctx (force ctx input) ]));
      ir = Ir.SngStage input.ir;
    }
  | Term.Flat ->
    let c = as_coll input in
    pipe
      (fun ctx emit ->
        iter_coll ctx c (fun s ->
            ctx.c.tuples <- ctx.c.tuples + 1;
            List.iter emit (as_set ctx s)))
      (Ir.Flatten input.ir)
  | Term.Iterate (p, f) -> (
    let ir =
      match (p, f) with
      | Term.Kp true, g -> Ir.Map (g, input.ir)
      | q, Term.Id -> Ir.Filter (q, input.ir)
      | q, g -> Ir.Map (g, Ir.Filter (q, input.ir))
    in
    match as_coll input with
    | Cols v -> lower_scan_cols st p f v ir
    | c ->
      let p' = pc p and f' = fc f in
      pipe
        (fun ctx emit ->
          iter_coll ctx c (fun x ->
              ctx.c.tuples <- ctx.c.tuples + 1;
              if p' ctx x then emit (f' ctx x)))
        ir)
  | Term.Iter (p, f) -> (
    let e_cv, b_cv = as_duo st input in
    let ir = Ir.IterEnv (p, f, e_cv.ir, b_cv.ir) in
    let generic () =
      let c = as_coll b_cv in
      let p' = pc p and f' = fc f in
      pipe
        (fun ctx emit ->
          let e = force ctx e_cv in
          iter_coll ctx c (fun y ->
              ctx.c.tuples <- ctx.c.tuples + 1;
              let pair = Value.Pair (e, y) in
              if p' ctx pair then emit (f' ctx pair)))
        ir
    in
    match as_coll b_cv with
    | Cols v -> (
      (* Env-free body: rebase π2-rooted paths onto the row and run the
         columnar scan; the environment is still forced once per run so
         its errors surface exactly as on the row path. *)
      match (pred_reroot p, func_reroot f) with
      | Some p_r, Some f_r ->
        let v = vec_add_pre v (fun ctx -> ignore (force ctx e_cv)) in
        lower_scan_cols st p_r f_r v ir
      | _ ->
        degrade st "iter: body reads the loop environment";
        generic ())
    | _ -> generic ())
  | Term.Join (p, f) -> lower_join st p f input
  | Term.Nest (f, g) -> lower_nest st f g input
  | Term.Unnest (f, g) ->
    let c = as_coll input in
    let fk = fc f and fg = fc g in
    pipe
      (fun ctx emit ->
        iter_coll ctx c (fun x ->
            ctx.c.tuples <- ctx.c.tuples + 1;
            let key = fk ctx x in
            List.iter
              (fun y -> emit (Value.Pair (key, y)))
              (as_set ctx (fg ctx x))))
      (Ir.UnnestStage (f, g, input.ir))
  | Term.Setop op -> lower_setop st op input
  | Term.Agg op -> lower_agg st op input
  | Term.Prim _ | Term.Arith _ -> scalar_apply f input
  | Term.Fhole h -> unsupported "pattern hole ?%s" h

and lower_join st p f input =
  let a_cv, b_cv = as_duo st input in
  let ca = as_coll a_cv and cb = as_coll b_cv in
  let f' = fc f in
  match Eval.hash_joinable p with
  | Some (kind, g1, g2, residual) ->
    let res' = Option.map pc residual in
    let ir =
      Ir.HashJoin
        {
          kind = (match kind with `Eq -> Ir.Eq | `In -> Ir.Membership);
          probe_key = g1;
          build_key = g2;
          residual;
          emit = f;
          probe = a_cv.ir;
          build = b_cv.ir;
        }
    in
    let generic () =
      let g1' = fc g1 and g2' = fc g2 in
      pipe
        (fun ctx emit ->
          let index : Value.t list VH.t = VH.create 1024 in
          let add key y =
            let prev = Option.value ~default:[] (VH.find_opt index key) in
            VH.replace index key (y :: prev)
          in
          iter_coll ctx cb (fun y ->
              ctx.c.builds <- ctx.c.builds + 1;
              match kind with
              | `Eq -> add (g2' ctx y) y
              | `In -> List.iter (fun e -> add e y) (as_set ctx (g2' ctx y)));
          iter_coll ctx ca (fun x ->
              ctx.c.probes <- ctx.c.probes + 1;
              match VH.find_opt index (g1' ctx x) with
              | None -> ()
              | Some matches ->
                List.iter
                  (fun y ->
                    let pair = Value.Pair (x, y) in
                    let keep =
                      match res' with None -> true | Some r -> r ctx pair
                    in
                    if keep then (
                      ctx.c.tuples <- ctx.c.tuples + 1;
                      emit (f' ctx pair)))
                  matches))
        ir
    in
    (match (kind, ca, cb, st.coldb) with
    | `Eq, Cols va, Cols vb, Some coldb -> (
      (* Unboxed keys: probe/build on int, string or row-index keys
         instead of hashing boxed values.  [-1] row keys (refs resolving
         to no extent row) can never match an in-extent key, so they are
         skipped — sound as long as at most one side can produce them. *)
      let col_join : type k. (int -> k) -> (int -> k) -> skip:(k -> bool) -> cv
          =
       fun ga gb ~skip ->
        st.kernels <- st.kernels + 1;
        pipe
          (fun ctx emit ->
            let tbl : (k, int list) Hashtbl.t = Hashtbl.create 1024 in
            vec_iter ctx vb (fun j ->
                ctx.c.builds <- ctx.c.builds + 1;
                let key = gb j in
                if not (skip key) then
                  Hashtbl.replace tbl key
                    (j
                    ::
                    (match Hashtbl.find_opt tbl key with
                    | Some l -> l
                    | None -> [])));
            vec_iter ctx va (fun i ->
                ctx.c.probes <- ctx.c.probes + 1;
                let key = ga i in
                if not (skip key) then
                  match Hashtbl.find_opt tbl key with
                  | None -> ()
                  | Some js ->
                    let x = va.rel.C.rows.(i) in
                    List.iter
                      (fun j ->
                        let pair = Value.Pair (x, vb.rel.C.rows.(j)) in
                        let keep =
                          match res' with None -> true | Some r -> r ctx pair
                        in
                        if keep then (
                          ctx.c.tuples <- ctx.c.tuples + 1;
                          emit (f' ctx pair)))
                      js))
          ir
      in
      match (ckey_of coldb g1 va.rel, ckey_of coldb g2 vb.rel) with
      | Some (KInt ga), Some (KInt gb) ->
        col_join ga gb ~skip:(fun _ -> false)
      | Some (KStr ga), Some (KStr gb) ->
        col_join ga gb ~skip:(fun _ -> false)
      | Some (KRow (t1, ga, tot_a)), Some (KRow (t2, gb, tot_b))
        when String.equal t1 t2 && (tot_a || tot_b) ->
        col_join ga gb ~skip:(fun k -> k < 0)
      | _ ->
        degrade st
          (Fmt.str "join keys over %s/%s not columnar" va.rel.C.name
             vb.rel.C.name);
        generic ())
    | _ -> generic ())
  | None ->
    let p' = pc p in
    pipe
      (fun ctx emit ->
        let ys = ref [] in
        iter_coll ctx cb (fun y -> ys := y :: !ys);
        let ys = List.rev !ys in
        iter_coll ctx ca (fun x ->
            List.iter
              (fun y ->
                ctx.c.tuples <- ctx.c.tuples + 1;
                let pair = Value.Pair (x, y) in
                if p' ctx pair then emit (f' ctx pair))
              ys))
      (Ir.LoopJoin (p, f, a_cv.ir, b_cv.ir))

and lower_nest st f g input =
  let a_cv, b_cv = as_duo st input in
  let ca = as_coll a_cv and cb = as_coll b_cv in
  let f' = fc f and g' = fc g in
  pipe
    (fun ctx emit ->
      let groups : Value.t list VH.t = VH.create 1024 in
      iter_coll ctx ca (fun x ->
          ctx.c.builds <- ctx.c.builds + 1;
          let key = f' ctx x in
          let prev = Option.value ~default:[] (VH.find_opt groups key) in
          VH.replace groups key (g' ctx x :: prev));
      iter_coll ctx cb (fun y ->
          ctx.c.probes <- ctx.c.probes + 1;
          let group = Option.value ~default:[] (VH.find_opt groups y) in
          emit (Value.Pair (y, collection ctx group))))
    (Ir.HashGroup { key = f; payload = g; src = a_cv.ir; groups = b_cv.ir })

and lower_setop st op input =
  let a_cv, b_cv = as_duo st input in
  let ca = as_coll a_cv and cb = as_coll b_cv in
  match op with
  | Term.Union ->
    pipe
      (fun ctx emit ->
        iter_coll ctx ca (fun x ->
            ctx.c.tuples <- ctx.c.tuples + 1;
            emit x);
        iter_coll ctx cb (fun y ->
            ctx.c.tuples <- ctx.c.tuples + 1;
            emit y))
      (Ir.Union (a_cv.ir, b_cv.ir))
  | Term.Inter ->
    pipe
      (fun ctx emit ->
        let m = VH.create 256 in
        iter_coll ctx cb (fun y ->
            ctx.c.builds <- ctx.c.builds + 1;
            VH.replace m y ());
        iter_coll ctx ca (fun x ->
            ctx.c.probes <- ctx.c.probes + 1;
            if VH.mem m x then emit x))
      (Ir.Inter (a_cv.ir, b_cv.ir))
  | Term.Diff ->
    pipe
      (fun ctx emit ->
        let m = VH.create 256 in
        iter_coll ctx cb (fun y ->
            ctx.c.builds <- ctx.c.builds + 1;
            VH.replace m y ());
        iter_coll ctx ca (fun x ->
            ctx.c.probes <- ctx.c.probes + 1;
            if not (VH.mem m x) then emit x))
      (Ir.Diff (a_cv.ir, b_cv.ir))

(* Under [Eager] every interpreter intermediate is a set, so Count/Sum see
   deduplicated inputs; the fused pipeline streams a bag, so those two get
   a hash dedup barrier.  Max/Min and [Deferred] mode are
   multiplicity-indifferent / multiplicity-faithful respectively.

   Columnar feeds get unboxed kernels: an int projection aggregates with
   an int hash set as the [Eager] dedup barrier (never touching boxed
   values), and Count over a bare scan is just the selected-row count —
   extent rows are distinct, so dedup cannot change it.  Both fan out
   over morsels; partials merge in morsel order, so results are identical
   at any pool size. *)
and lower_agg st op input =
  match as_coll input with
  | ICol { src; iget } ->
    st.kernels <- st.kernels + 1;
    { shape = Sca (icol_agg op src iget); ir = Ir.AggStage (op, input.ir) }
  | Cols v when op = Term.Count ->
    st.kernels <- st.kernels + 1;
    {
      shape =
        Sca
          (fun ctx ->
            vec_pre ctx v;
            let n = Array.length v.rel.C.rows in
            let keep =
              match v.vp with None -> fun _ -> true | Some k -> k
            in
            let chunks =
              morsel_fold ctx ~n (fun lo hi ->
                  let c = ref 0 in
                  for i = lo to hi - 1 do
                    if keep i then incr c
                  done;
                  !c)
            in
            let c = List.fold_left ( + ) 0 chunks in
            ctx.c.tuples <- ctx.c.tuples + c;
            Value.Int c);
      ir = Ir.AggStage (op, input.ir);
    }
  | c -> lower_agg_generic op c input

and icol_agg op (src : vec) (iget : int -> int) : rctx -> Value.t =
 fun ctx ->
  vec_pre ctx src;
  let n = Array.length src.rel.C.rows in
  let keep = match src.vp with None -> (fun _ -> true) | Some k -> k in
  match op with
  | Term.Count | Term.Sum -> (
    match ctx.dedup with
    | Eval.Deferred ->
      let chunks =
        morsel_fold ctx ~n (fun lo hi ->
            let c = ref 0 and s = ref 0 in
            for i = lo to hi - 1 do
              if keep i then begin
                incr c;
                s := !s + iget i
              end
            done;
            (!c, !s))
      in
      let c, s =
        List.fold_left (fun (c, s) (c', s') -> (c + c', s + s')) (0, 0) chunks
      in
      ctx.c.tuples <- ctx.c.tuples + c;
      Value.Int (match op with Term.Count -> c | _ -> s)
    | Eval.Eager ->
      (* the interpreter aggregates a canonical set: distinct values only *)
      let chunks =
        morsel_fold ctx ~n (fun lo hi ->
            let t : (int, unit) Hashtbl.t = Hashtbl.create 256 in
            let c = ref 0 in
            for i = lo to hi - 1 do
              if keep i then begin
                incr c;
                Hashtbl.replace t (iget i) ()
              end
            done;
            (t, !c))
      in
      let seen : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
      let sum = ref 0 and distinct = ref 0 in
      List.iter
        (fun (t, c) ->
          ctx.c.tuples <- ctx.c.tuples + c;
          Hashtbl.iter
            (fun k () ->
              if not (Hashtbl.mem seen k) then begin
                Hashtbl.replace seen k ();
                incr distinct;
                sum := !sum + k
              end)
            t)
        chunks;
      Value.Int (match op with Term.Count -> !distinct | _ -> !sum))
  | Term.Max | Term.Min ->
    let better = match op with Term.Max -> ( > ) | _ -> ( < ) in
    let chunks =
      morsel_fold ctx ~n (fun lo hi ->
          let m = ref None and c = ref 0 in
          for i = lo to hi - 1 do
            if keep i then begin
              incr c;
              let x = iget i in
              match !m with
              | None -> m := Some x
              | Some cur -> if better x cur then m := Some x
            end
          done;
          (!m, !c))
    in
    let best =
      List.fold_left
        (fun acc (m, c) ->
          ctx.c.tuples <- ctx.c.tuples + c;
          match (acc, m) with
          | None, m -> m
          | Some a, Some b -> Some (if better b a then b else a)
          | Some a, None -> Some a)
        None chunks
    in
    (match best with
    | Some v -> Value.Int v
    | None ->
      error "%s of empty set"
        (match op with Term.Max -> "max" | _ -> "min"))

and lower_agg_generic op c input =
  let ir = Ir.AggStage (op, input.ir) in
  let thunk =
    match op with
    | Term.Count ->
      fun ctx ->
        (match ctx.dedup with
        | Eval.Eager ->
          let seen = VH.create 256 in
          let n = ref 0 in
          iter_coll ctx c (fun x ->
              ctx.c.tuples <- ctx.c.tuples + 1;
              (* replace + length delta: one hash per element, not two *)
              let before = VH.length seen in
              VH.replace seen x ();
              if VH.length seen <> before then incr n);
          Value.Int !n
        | Eval.Deferred ->
          let n = ref 0 in
          iter_coll ctx c (fun _ ->
              ctx.c.tuples <- ctx.c.tuples + 1;
              incr n);
          Value.Int !n)
    | Term.Sum ->
      fun ctx ->
        (match ctx.dedup with
        | Eval.Eager ->
          let seen = VH.create 256 in
          let n = ref 0 in
          iter_coll ctx c (fun x ->
              ctx.c.tuples <- ctx.c.tuples + 1;
              let before = VH.length seen in
              VH.replace seen x ();
              if VH.length seen <> before then n := !n + as_int ctx x);
          Value.Int !n
        | Eval.Deferred ->
          let n = ref 0 in
          iter_coll ctx c (fun x ->
              ctx.c.tuples <- ctx.c.tuples + 1;
              n := !n + as_int ctx x);
          Value.Int !n)
    | Term.Max ->
      fun ctx ->
        let m = ref None in
        iter_coll ctx c (fun x ->
            ctx.c.tuples <- ctx.c.tuples + 1;
            match !m with
            | None -> m := Some x
            | Some cur -> if value_gt x cur then m := Some x);
        (match !m with None -> error "max of empty set" | Some v -> v)
    | Term.Min ->
      fun ctx ->
        let m = ref None in
        iter_coll ctx c (fun x ->
            ctx.c.tuples <- ctx.c.tuples + 1;
            match !m with
            | None -> m := Some x
            | Some cur -> if value_gt cur x then m := Some x);
        (match !m with None -> error "min of empty set" | Some v -> v)
  in
  { shape = Sca thunk; ir }

(* Filter/map over a columnar scan.  The predicate folds into the scan's
   selection (chained filters become one conjunction, tested in a single
   pass at consumption); the projection becomes an unboxed int feed, a
   typed emit loop (morsel-parallel — production is pure, emission is
   sequential in morsel order), or stays on row closures, counted as a
   degrade. *)
and lower_scan_cols st (p : Term.pred) (f : Term.func) (v : vec) ir : cv =
  let coldb =
    match st.coldb with
    | Some cd -> cd
    | None -> assert false (* Cols values only exist under a coldb *)
  in
  match cpred coldb p (PRow (v.rel, fun i -> i)) with
  | None ->
    degrade st (Fmt.str "filter over %s not columnar" v.rel.C.name);
    let p' = pc p and f' = fc f in
    pipe
      (fun ctx emit ->
        vec_iter ctx v (fun i ->
            ctx.c.tuples <- ctx.c.tuples + 1;
            let x = v.rel.C.rows.(i) in
            if p' ctx x then emit (f' ctx x)))
      ir
  | Some vp -> (
    st.kernels <- st.kernels + 1;
    let v = vec_conj v vp in
    match f with
    | Term.Id -> { shape = Coll (Cols v); ir }
    | f -> (
      match proj_of_row coldb f v.rel with
      | Some (PInt g) -> { shape = Coll (ICol { src = v; iget = g }); ir }
      | Some pr ->
        let out = proj_emit pr in
        pipe
          (fun ctx emit ->
            match ctx.pool with
            | None ->
              vec_iter ctx v (fun i ->
                  ctx.c.tuples <- ctx.c.tuples + 1;
                  emit (out i))
            | Some _ ->
              vec_pre ctx v;
              let n = Array.length v.rel.C.rows in
              let chunks =
                morsel_fold ctx ~n (fun lo hi ->
                    let acc = ref [] in
                    (match v.vp with
                    | None ->
                      for i = hi - 1 downto lo do
                        acc := out i :: !acc
                      done
                    | Some keep ->
                      for i = hi - 1 downto lo do
                        if keep i then acc := out i :: !acc
                      done);
                    !acc)
              in
              List.iter
                (List.iter (fun x ->
                     ctx.c.tuples <- ctx.c.tuples + 1;
                     emit x))
                chunks)
          ir
      | None ->
        degrade st (Fmt.str "map over %s not columnar" v.rel.C.name);
        let f' = fc f in
        pipe
          (fun ctx emit ->
            vec_iter ctx v (fun i ->
                ctx.c.tuples <- ctx.c.tuples + 1;
                emit (f' ctx v.rel.C.rows.(i))))
          ir))

(* The fused group-join kernel: [nest(π1,π2) ∘ (unnest(π1,π2) × id) ∘
   ⟨join(p, id × g), π1⟩] over a pair of columnar scans (probe side D,
   build side E).  One pass over E appends each payload to a dense bucket
   array indexed by the join key's target row; one pass over D emits every
   probe row with its group — no boxed hashing anywhere.  The build fans
   out over morsels when the payload is context-read-only; bucket lists
   merge in morsel order. *)
and lower_fused_group st (p : Term.pred) (g : Term.func) (input : cv) :
    cv option =
  match (st.coldb, input.shape) with
  | Some coldb, Duo (a_cv, b_cv) -> (
    match (a_cv.shape, b_cv.shape) with
    | Coll (Cols vd), Coll (Cols ve) -> (
      match Eval.hash_joinable p with
      | Some (`Eq, g1, g2, None) -> (
        match (ckey_of coldb g1 vd.rel, ckey_of coldb g2 ve.rel) with
        | Some (KRow (t1, gd, tot_d)), Some (KRow (t2, ge, tot_e))
          when String.equal t1 t2 && (tot_d || tot_e) -> (
          match C.relation coldb t1 with
          | None -> None
          | Some trel ->
            (* payload: the elements Unnest flattens out of [g e].
               Compiled payloads only read the context (resolve/as_set
               consult ctx.db), so they are safe to run on pool domains;
               the fc fallback may touch memo cells and counters, so it
               keeps the build sequential. *)
            let parallel_ok, pay =
              match g with
              | Term.Compose (Term.Sng, h) -> (
                match proj_of_row coldb h ve.rel with
                | Some pr ->
                  let out = proj_emit pr in
                  (true, fun ctx j -> [ resolve ctx (out j) ])
                | None ->
                  let h' = fc h in
                  ( false,
                    fun ctx j -> [ resolve ctx (h' ctx ve.rel.C.rows.(j)) ] ))
              | g -> (
                match proj_of_row coldb g ve.rel with
                | Some pr ->
                  let out = proj_emit pr in
                  (true, fun ctx j -> as_set ctx (out j))
                | None ->
                  let g' = fc g in
                  (false, fun ctx j -> as_set ctx (g' ctx ve.rel.C.rows.(j))))
            in
            st.kernels <- st.kernels + 1;
            let ir =
              Ir.HashGroup
                {
                  key = Term.Pi1;
                  payload = Term.Pi2;
                  src =
                    Ir.UnnestStage
                      ( Term.Pi1,
                        Term.Pi2,
                        Ir.HashJoin
                          {
                            kind = Ir.Eq;
                            probe_key = g1;
                            build_key = g2;
                            residual = None;
                            emit = Term.Times (Term.Id, g);
                            probe = a_cv.ir;
                            build = b_cv.ir;
                          } );
                  groups = a_cv.ir;
                }
            in
            let nd = Array.length trel.C.rows in
            Some
              (pipe
                 (fun ctx emit ->
                   vec_pre ctx ve;
                   let ne = Array.length ve.rel.C.rows in
                   let buckets = Array.make nd [] in
                   (if parallel_ok && ctx.pool <> None then begin
                      let keep =
                        match ve.vp with
                        | None -> fun _ -> true
                        | Some k -> k
                      in
                      let chunks =
                        morsel_fold ctx ~n:ne (fun lo hi ->
                            let b = Array.make nd [] in
                            let built = ref 0 and flowed = ref 0 in
                            for j = lo to hi - 1 do
                              if keep j then begin
                                incr built;
                                let k = ge j in
                                if k >= 0 then begin
                                  let xs = pay ctx j in
                                  flowed := !flowed + List.length xs;
                                  b.(k) <- List.rev_append xs b.(k)
                                end
                              end
                            done;
                            (b, !built, !flowed))
                      in
                      List.iter
                        (fun (b, built, flowed) ->
                          ctx.c.builds <- ctx.c.builds + built;
                          ctx.c.tuples <- ctx.c.tuples + flowed;
                          Array.iteri
                            (fun k l ->
                              if l <> [] then
                                buckets.(k) <- List.rev_append l buckets.(k))
                            b)
                        chunks
                    end
                    else
                      vec_iter ctx ve (fun j ->
                          ctx.c.builds <- ctx.c.builds + 1;
                          let k = ge j in
                          if k >= 0 then begin
                            let xs = pay ctx j in
                            ctx.c.tuples <- ctx.c.tuples + List.length xs;
                            buckets.(k) <- List.rev_append xs buckets.(k)
                          end));
                   vec_iter ctx vd (fun i ->
                       ctx.c.probes <- ctx.c.probes + 1;
                       let k = gd i in
                       let grp =
                         if k >= 0 && k < nd then buckets.(k) else []
                       in
                       emit
                         (Value.Pair (vd.rel.C.rows.(i), collection ctx grp))))
                 ir))
        | _ -> None)
      | _ -> None)
    | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)

type compiled = {
  query : Term.query;
  plan : cv;
  ir : Ir.node;
  pipe_slots : int;
  val_slots : int;
  coldb : C.db option;
  kernels : int;
  degrades : string list;
}

let ir c = c.ir
let compiled_query c = c.query
let col_kernels c = c.kernels
let col_degrades c = c.degrades

let compile ?coldb (q : Term.query) : compiled =
  Telemetry.span ~cat:"exec" "exec.compile" @@ fun () ->
  let st =
    { pipe_slots = 0; val_slots = 0; coldb; kernels = 0; degrades = [] }
  in
  let plan = lower st q.Term.body (cv_of_value st q.Term.arg) in
  if Telemetry.enabled () then begin
    Telemetry.count ~n:st.kernels "exec.col_kernels";
    Telemetry.count ~n:(List.length st.degrades) "exec.col_degrades"
  end;
  {
    query = q;
    plan;
    ir = plan.ir;
    pipe_slots = st.pipe_slots;
    val_slots = st.val_slots;
    coldb;
    kernels = st.kernels;
    degrades = List.rev st.degrades;
  }

let compile_opt ?coldb q =
  match compile ?coldb q with
  | c -> Ok c
  | exception Unsupported reason -> Error reason

let execute ?(dedup = Eval.Eager) ?pool ~db (c : compiled) :
    Value.t * counters =
  (match c.coldb with
  | Some cd when not (C.source cd == db) ->
    (* Column indexes are physical row positions in the database the plan
       was compiled against; running over anything else would silently
       read the wrong store. *)
    error
      "columnar plan executed against a different database — recompile \
       against its columnar view"
  | _ -> ());
  let ctx =
    {
      db;
      dedup;
      pipes = Array.make (max 1 c.pipe_slots) None;
      vals = Array.make (max 1 c.val_slots) None;
      pool;
      c = fresh_counters ();
    }
  in
  Telemetry.span ~cat:"exec" "exec.run" @@ fun () ->
  let v =
    match c.plan.shape with
    | Coll (Pipe p) -> (
      match dedup with
      | Eval.Eager ->
        (* Stream through a hash dedup so a duplicate-heavy stream sorts
           only its distinct elements — the canonical set comes out
           identical to the interpreter's either way.  On a mostly
           distinct stream the table pays a hash per element and saves
           nothing, so the duplicate ratio is checked on geometrically
           growing prefixes (256, 512, ...): a distinct-heavy stream
           drops the table within the first few hundred elements instead
           of hashing a 4k prefix first, and the final [Value.set]
           sort-uniqs the raw stream, which is exactly the interpreter's
           cost. *)
        let seen = VH.create 1024 in
        let deduping = ref true in
        let inspected = ref 0 in
        let next_check = ref 256 in
        let acc = ref [] in
        p ctx (fun x ->
            if !deduping then begin
              let before = VH.length seen in
              VH.replace seen x ();
              if VH.length seen <> before then acc := x :: !acc;
              incr inspected;
              if !inspected = !next_check then begin
                if 4 * VH.length seen > 3 * !inspected then begin
                  deduping := false;
                  VH.reset seen
                end
                else next_check := 2 * !next_check
              end
            end
            else acc := x :: !acc);
        Value.set !acc
      | Eval.Deferred -> Eval.finalize (Value.Bag (drain ctx p)))
    | _ -> (
      (* [force] canonicalises columnar terminals under Eager too *)
      let v = force ctx c.plan in
      match dedup with Eval.Eager -> v | Eval.Deferred -> Eval.finalize v)
  in
  if Telemetry.enabled () then (
    Telemetry.count ~n:ctx.c.tuples "exec.tuples";
    Telemetry.count ~n:ctx.c.probes "exec.probes";
    Telemetry.count ~n:ctx.c.builds "exec.builds";
    if ctx.c.morsels > 0 then Telemetry.count ~n:ctx.c.morsels "exec.morsels");
  (v, ctx.c)

(* ------------------------------------------------------------------ *)
(* Backend selection and the interpreter fallback. *)

type backend = Interp of Eval.backend | Compiled

let backend_name = function
  | Interp Eval.Naive -> "interp-naive"
  | Interp Eval.Hashed -> "interp"
  | Compiled -> "compiled"

let backend_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "compiled" -> Ok Compiled
  | "interp" | "interp-hashed" | "interpreted" -> Ok (Interp Eval.Hashed)
  | "interp-naive" -> Ok (Interp Eval.Naive)
  | s -> Error (Fmt.str "unknown execution backend %S (expected compiled|interp|interp-naive)" s)

type stats = {
  backend : backend;  (** the backend that actually ran *)
  fell_back : bool;
  fallback_reason : string option;
  compile_us : float;
  run_us : float;
  tuples : int;
  probes : int;
  builds : int;
  stages : int;
  scalar_nodes : int;
  layout : layout;            (** store layout the plan was compiled for *)
  jobs : int;                 (** pool size morsel kernels could fan out to *)
  morsels : int;              (** chunks dispatched by columnar kernels *)
  col_kernels : int;          (** operators lowered to column kernels *)
  col_degrades : string list; (** columnar inputs kept on row closures *)
}

let fallbacks = Atomic.make 0
let fallback_count () = Atomic.get fallbacks

let run_interp ~backend ~dedup ~db q =
  let t0 = Telemetry.now () in
  let ctx = Eval.ctx ~db ~backend ~dedup () in
  let v = Eval.run ctx q in
  let t1 = Telemetry.now () in
  ( v,
    {
      backend = Interp backend;
      fell_back = false;
      fallback_reason = None;
      compile_us = 0.;
      run_us = (t1 -. t0) *. 1e6;
      tuples = ctx.Eval.counters.Eval.tuples;
      probes = 0;
      builds = 0;
      stages = 0;
      scalar_nodes = 0;
      layout = Row;
      jobs = 1;
      morsels = 0;
      col_kernels = 0;
      col_degrades = [];
    } )

(* Borrow the caller's pool, or spin one up for the duration of [k] when
   more than one job is asked for.  [jobs = 1] never spawns a domain. *)
let with_exec_pool ?pool ~jobs k =
  match pool with
  | Some p -> k (Some p)
  | None ->
    if jobs <= 1 then k None
    else Pool.with_pool ~jobs (fun p -> k (Some p))

(* A transient pool is only worth spawning when some columnar kernel can
   actually fan out — i.e. a scanned relation spans more than one morsel.
   Row plans and small columnar stores run the sequential kernels either
   way ([morsel_fold] ignores the pool at or below [morsel_rows]), so at
   those sizes domain spawn/join would be pure coordination overhead.
   Caller-provided pools are unaffected: borrowing costs nothing and the
   per-kernel gate in [morsel_fold] already keeps tiny inputs sequential. *)
let can_fan_out = function
  | None -> false
  | Some cdb ->
    List.exists
      (fun (_, (r : C.relation)) -> Array.length r.C.rows > morsel_rows)
      (C.relations cdb)

let run ?(backend = Compiled) ?(dedup = Eval.Eager) ?(layout = Row)
    ?(jobs = 1) ?pool ?coldb ~db (q : Term.query) : Value.t * stats =
  match backend with
  | Interp b -> run_interp ~backend:b ~dedup ~db q
  | Compiled -> (
    let coldb =
      match layout with
      | Row -> None
      | Columnar -> (
        match coldb with Some _ as cd -> cd | None -> Some (C.of_db db))
    in
    let t0 = Telemetry.now () in
    match compile ?coldb q with
    | exception Unsupported reason ->
      Atomic.incr fallbacks;
      Telemetry.count "exec.fallback";
      let v, s = run_interp ~backend:Eval.Hashed ~dedup ~db q in
      (v, { s with fell_back = true; fallback_reason = Some reason })
    | c ->
      let t1 = Telemetry.now () in
      let jobs = if can_fan_out coldb then jobs else 1 in
      with_exec_pool ?pool ~jobs @@ fun pool ->
      let v, counters = execute ~dedup ?pool ~db c in
      let t2 = Telemetry.now () in
      ( v,
        {
          backend = Compiled;
          fell_back = false;
          fallback_reason = None;
          compile_us = (t1 -. t0) *. 1e6;
          run_us = (t2 -. t1) *. 1e6;
          tuples = counters.tuples;
          probes = counters.probes;
          builds = counters.builds;
          stages = Ir.stages c.ir;
          scalar_nodes = Ir.scalar_nodes c.ir;
          layout;
          jobs = (match pool with Some p -> Pool.size p | None -> 1);
          morsels = counters.morsels;
          col_kernels = c.kernels;
          col_degrades = c.degrades;
        } ))

(* Results are compared modulo set ordering, deferred bags, and Named
   indirection — the oracle equivalence the differential tests pin. *)
let agree ~db a b =
  let ctx = Eval.ctx ~db () in
  Value.equal
    (Eval.finalize (Eval.deep_resolve ctx a))
    (Eval.finalize (Eval.deep_resolve ctx b))

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "backend=%s%s layout=%s jobs=%d compile=%.1fus run=%.1fus stages=%d \
     scalar-nodes=%d tuples=%d probes=%d builds=%d col-kernels=%d \
     morsels=%d%s"
    (backend_name s.backend)
    (match s.fallback_reason with
    | Some r when s.fell_back -> Fmt.str " (fell back: %s)" r
    | _ -> "")
    (layout_name s.layout) s.jobs s.compile_us s.run_us s.stages
    s.scalar_nodes s.tuples s.probes s.builds s.col_kernels s.morsels
    (match s.col_degrades with
    | [] -> ""
    | ds -> Fmt.str " degrades=[%s]" (String.concat "; " ds))

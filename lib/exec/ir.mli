(** The loop IR the plan compiler lowers KOLA spines into.

    A compiled plan carries one of these trees purely as a description:
    the closures do the work, the IR says what they do.  Producer stages
    (filter/map/flatten/unnest/iter) fuse into the loop below them;
    [HashJoin], [HashGroup] and the set operations are pipeline breakers
    that materialize a hash table but still stream their output. *)

open Kola

type join_kind = Eq | Membership

type node =
  | Scan of Value.t  (** iterate a stored collection (or extent name) *)
  | Leaf of Value.t  (** a scalar constant / query argument *)
  | Filter of Term.pred * node
  | Map of Term.func * node
  | Flatten of node
  | UnnestStage of Term.func * Term.func * node
  | IterEnv of Term.pred * Term.func * node * node
  | HashJoin of {
      kind : join_kind;
      probe_key : Term.func;
      build_key : Term.func;
      residual : Term.pred option;
      emit : Term.func;
      probe : node;
      build : node;
    }
  | LoopJoin of Term.pred * Term.func * node * node
  | HashGroup of {
      key : Term.func;
      payload : Term.func;
      src : node;
      groups : node;
    }
  | Union of node * node
  | Inter of node * node
  | Diff of node * node
  | AggStage of Term.agg * node
  | SngStage of node
  | PairNode of node * node
  | Branch of Term.pred * node * node * node
  | Scalar of Term.func * node
      (** spine node compiled as a scalar closure over its forced input *)
  | Shared of int * node  (** materialization slot shared by later stages *)

val join_kind_name : join_kind -> string

val stages : node -> int
(** Pipeline stages (loops the runtime executes); leaves and pair glue do
    not count. *)

val scalar_nodes : node -> int
(** Spine positions that fell back to a scalar closure instead of a fused
    stage. *)

val pp : node Fmt.t
val to_string : node -> string

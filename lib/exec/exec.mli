(** Compiled plan execution: lower a chosen {!Kola.Term.query} into fused
    producer/consumer loops and run it with no per-node dispatch and no
    intermediate collections.  {!Kola.Eval.run} remains the oracle: for
    every supported plan the compiled result equals the interpreted one
    modulo set ordering (see {!agree}); unsupported plans fall back to the
    interpreter explicitly — counted, never wrong. *)

open Kola

exception Unsupported of string
(** Raised at compile time on plans the compiler cannot lower (pattern
    holes anywhere in the spine or argument). *)

type counters = {
  mutable tuples : int;  (** elements flowing through pipeline stages *)
  mutable probes : int;  (** hash-table lookups (joins, set ops, groups) *)
  mutable builds : int;  (** hash-table inserts (build sides, groups) *)
  mutable morsels : int; (** chunks dispatched by columnar kernels *)
}

(** {1 Store layout} *)

type layout = Row | Columnar

val layout_name : layout -> string
val layout_of_string : string -> (layout, string) result

(** {1 Compilation} *)

type compiled

val compile : ?coldb:Colstore.db -> Term.query -> compiled
(** Lower a query into closures + an {!Ir.node} description.  With
    [coldb], extent scans bind to its columnar relations and eligible
    operators lower to column kernels (vectorised filters, unboxed
    aggregates, int-keyed joins, the fused group-join); everything else
    keeps the row closures, counted in {!col_degrades}.
    @raise Unsupported on holes; never raises on ground plans. *)

val compile_opt : ?coldb:Colstore.db -> Term.query -> (compiled, string) result

val ir : compiled -> Ir.node
val compiled_query : compiled -> Term.query

val col_kernels : compiled -> int
(** Operators lowered to column kernels (0 on row-layout plans). *)

val col_degrades : compiled -> string list
(** Reasons columnar inputs stayed on row closures, in lowering order. *)

val execute :
  ?dedup:Eval.dedup -> ?pool:Kola_parallel.Pool.t ->
  db:(string * Value.t) list -> compiled -> Value.t * counters
(** Run a compiled plan.  Under [Eager] the final set is built by a
    streaming hash dedup (only distinct elements are sorted); under
    [Deferred] the raw stream is finalized exactly like {!Eval.run}.
    With [pool], pure columnar kernels fan out over fixed-size morsels;
    morsel boundaries and merge order never depend on the pool size, so
    results are bit-identical at any [jobs].
    @raise Eval.Error with the interpreter's messages on ill-typed data,
    and when a columnar plan is executed against a database other than
    the one its column store was materialized from. *)

(** {1 Backend selection} *)

type backend = Interp of Eval.backend | Compiled

val backend_name : backend -> string
(** ["compiled"], ["interp"] (hashed) or ["interp-naive"]. *)

val backend_of_string : string -> (backend, string) result

type stats = {
  backend : backend;  (** the backend that actually ran *)
  fell_back : bool;   (** compilation failed; the interpreter ran instead *)
  fallback_reason : string option;
  compile_us : float;
  run_us : float;
  tuples : int;
  probes : int;
  builds : int;
  stages : int;        (** pipeline stages in the compiled IR *)
  scalar_nodes : int;  (** spine nodes compiled as scalar closures *)
  layout : layout;     (** store layout the plan was compiled for *)
  jobs : int;          (** pool size morsel kernels could fan out to *)
  morsels : int;       (** chunks dispatched by columnar kernels *)
  col_kernels : int;   (** operators lowered to column kernels *)
  col_degrades : string list;
      (** columnar inputs kept on row closures, with reasons *)
}

val run :
  ?backend:backend -> ?dedup:Eval.dedup -> ?layout:layout -> ?jobs:int ->
  ?pool:Kola_parallel.Pool.t -> ?coldb:Colstore.db ->
  db:(string * Value.t) list -> Term.query -> Value.t * stats
(** Execute a query under the chosen backend (default [Compiled]).  A
    compiled run that raises {!Unsupported} is retried on the hashed
    interpreter with [fell_back] set; the fallback is counted globally and
    in telemetry ([exec.fallback]).

    [layout = Columnar] compiles against [coldb] (materialized from [db]
    with {!Kola.Colstore.of_db} when not supplied).  [jobs > 1] lets pure
    columnar kernels fan out over a transient pool of that many domains;
    passing [pool] instead reuses a caller-owned pool (and [jobs] is
    ignored).  Results are identical across layouts and pool sizes. *)

val fallback_count : unit -> int
(** Process-wide count of compiled runs that fell back to the
    interpreter. *)

val agree : db:(string * Value.t) list -> Value.t -> Value.t -> bool
(** Result equality modulo set ordering, deferred bags, and [Named]
    indirection — the oracle equivalence the differential tests pin. *)

val pp_stats : stats Fmt.t

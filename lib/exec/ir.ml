(* The loop IR the plan compiler lowers KOLA spines into.

   Each node describes one stage of the compiled pipeline; the compiler
   builds this description tree alongside the closures so plans can be
   explained, tested stage-by-stage, and counted.  Producer stages
   (filter/map/flatten/unnest/iter) fuse into the loop of the stage below
   them; [HashJoin], [HashGroup] and [Dedup] are pipeline breakers that
   materialize a hash table but still stream their output. *)

open Kola

type join_kind = Eq | Membership

type node =
  | Scan of Value.t  (** iterate a stored collection (or extent name) *)
  | Leaf of Value.t  (** a scalar constant / query argument *)
  | Filter of Term.pred * node
  | Map of Term.func * node
  | Flatten of node
  | UnnestStage of Term.func * Term.func * node
  | IterEnv of Term.pred * Term.func * node * node
      (** env scalar, inner collection *)
  | HashJoin of {
      kind : join_kind;
      probe_key : Term.func;
      build_key : Term.func;
      residual : Term.pred option;
      emit : Term.func;
      probe : node;
      build : node;
    }
  | LoopJoin of Term.pred * Term.func * node * node
      (** predicate not hash-decomposable: build side materialized once,
          probe side streamed *)
  | HashGroup of { key : Term.func; payload : Term.func; src : node; groups : node }
  | Union of node * node
  | Inter of node * node  (** right side materialized into a hash set *)
  | Diff of node * node
  | AggStage of Term.agg * node
  | SngStage of node
  | PairNode of node * node
  | Branch of Term.pred * node * node * node  (** con: input, then, else *)
  | Scalar of Term.func * node
      (** spine node compiled as a scalar closure over its forced input *)
  | Shared of int * node  (** materialization slot reused by later stages *)

let join_kind_name = function Eq -> "eq" | Membership -> "in"

let rec pp ppf (n : node) =
  let f = Pretty.pp_func and p = Pretty.pp_pred in
  match n with
  | Scan v -> Fmt.pf ppf "scan %a" Value.pp v
  | Leaf v -> Fmt.pf ppf "leaf %a" Value.pp v
  | Filter (q, s) -> Fmt.pf ppf "@[<v2>filter %a@ %a@]" p q pp s
  | Map (g, s) -> Fmt.pf ppf "@[<v2>map %a@ %a@]" f g pp s
  | Flatten s -> Fmt.pf ppf "@[<v2>flatten@ %a@]" pp s
  | UnnestStage (k, g, s) ->
    Fmt.pf ppf "@[<v2>unnest key=%a inner=%a@ %a@]" f k f g pp s
  | IterEnv (q, g, e, s) ->
    Fmt.pf ppf "@[<v2>iter %a emit=%a@ env: %a@ over: %a@]" p q f g pp e pp s
  | HashJoin j ->
    Fmt.pf ppf
      "@[<v2>hash-join[%s] probe-key=%a build-key=%a%a emit=%a@ probe: %a@ \
       build: %a@]"
      (join_kind_name j.kind) f j.probe_key f j.build_key
      (Fmt.option (fun ppf r -> Fmt.pf ppf " residual=%a" p r))
      j.residual f j.emit pp j.probe pp j.build
  | LoopJoin (q, g, a, b) ->
    Fmt.pf ppf "@[<v2>loop-join %a emit=%a@ probe: %a@ build: %a@]" p q f g pp
      a pp b
  | HashGroup g ->
    Fmt.pf ppf "@[<v2>hash-group key=%a payload=%a@ src: %a@ groups: %a@]" f
      g.key f g.payload pp g.src pp g.groups
  | Union (a, b) -> Fmt.pf ppf "@[<v2>union@ %a@ %a@]" pp a pp b
  | Inter (a, b) -> Fmt.pf ppf "@[<v2>inter@ %a@ %a@]" pp a pp b
  | Diff (a, b) -> Fmt.pf ppf "@[<v2>diff@ %a@ %a@]" pp a pp b
  | AggStage (op, s) ->
    Fmt.pf ppf "@[<v2>agg %s@ %a@]" (Pretty.agg_name op) pp s
  | SngStage s -> Fmt.pf ppf "@[<v2>sng@ %a@]" pp s
  | PairNode (a, b) -> Fmt.pf ppf "@[<v2>pair@ %a@ %a@]" pp a pp b
  | Branch (q, i, a, b) ->
    Fmt.pf ppf "@[<v2>branch %a@ on: %a@ then: %a@ else: %a@]" p q pp i pp a
      pp b
  | Scalar (g, s) -> Fmt.pf ppf "@[<v2>scalar %a@ %a@]" f g pp s
  | Shared (slot, s) -> Fmt.pf ppf "@[<v2>shared#%d@ %a@]" slot pp s

(* Pipeline stages: loops the runtime actually opens.  Filter/map and the
   aggregate/sng folds fuse into the loop of the producer below them and
   add nothing; scans, flatten/unnest (nested inner loops), joins, groups
   and the set-op barriers each open one.  Leaves and pair glue are not
   stages. *)
let rec stages (n : node) : int =
  match n with
  | Scan _ -> 1
  | Leaf _ -> 0
  | Filter (_, s) | Map (_, s) | AggStage (_, s) | SngStage s -> stages s
  | Flatten s | UnnestStage (_, _, s) -> 1 + stages s
  | IterEnv (_, _, e, s) -> 1 + stages e + stages s
  | HashJoin { probe; build; _ } -> 1 + stages probe + stages build
  | LoopJoin (_, _, a, b)
  | HashGroup { src = a; groups = b; _ }
  | Inter (a, b)
  | Diff (a, b) ->
    1 + stages a + stages b
  | Union (a, b) -> stages a + stages b
  | PairNode (a, b) -> stages a + stages b
  | Branch (_, i, a, b) -> stages i + stages a + stages b
  | Scalar (_, s) -> stages s
  | Shared (_, s) -> stages s

let rec scalar_nodes (n : node) : int =
  match n with
  | Scan _ | Leaf _ -> 0
  | Filter (_, s) | Map (_, s) | Flatten s | UnnestStage (_, _, s)
  | AggStage (_, s) | SngStage s | Shared (_, s) ->
    scalar_nodes s
  | IterEnv (_, _, e, s) -> scalar_nodes e + scalar_nodes s
  | HashJoin { probe; build; _ } -> scalar_nodes probe + scalar_nodes build
  | LoopJoin (_, _, a, b)
  | HashGroup { src = a; groups = b; _ }
  | Union (a, b)
  | Inter (a, b)
  | Diff (a, b)
  | PairNode (a, b) ->
    scalar_nodes a + scalar_nodes b
  | Branch (_, i, a, b) -> scalar_nodes i + scalar_nodes a + scalar_nodes b
  | Scalar (_, s) -> 1 + scalar_nodes s

let to_string n = Fmt.str "%a" pp n

(* A simple calibration-based cost model: run the candidate plan on a
   (small) sample database and charge it for the work counters the
   evaluator maintains.  Tuples touched dominate; combinator dispatch is
   cheap.  This is deliberately an *executed* cost model — the paper leaves
   cost-based search to the optimizers that would host KOLA, and counters
   make the benches' cost claims implementation-independent. *)

open Kola

type t = {
  tuples : int;
  func_calls : int;
  pred_calls : int;
  weighted : float;
}

let weighted ~tuples ~func_calls ~pred_calls =
  float_of_int tuples +. (0.1 *. float_of_int func_calls)
  +. (0.1 *. float_of_int pred_calls)

let of_counters (c : Eval.counters) =
  {
    tuples = c.Eval.tuples;
    func_calls = c.Eval.func_calls;
    pred_calls = c.Eval.pred_calls;
    weighted =
      weighted ~tuples:c.Eval.tuples ~func_calls:c.Eval.func_calls
        ~pred_calls:c.Eval.pred_calls;
  }

(* Evaluate [q] against [db] under [backend]; return its result and cost. *)
let measure ?(backend = Eval.Naive) ?(dedup = Eval.Eager) ~db (q : Term.query)
    : Value.t * t =
  let ctx = Eval.ctx ~db ~backend ~dedup () in
  let v = Eval.run ctx q in
  (v, of_counters ctx.Eval.counters)

let pp ppf t =
  Fmt.pf ppf "tuples=%d funcs=%d preds=%d (weighted %.1f)" t.tuples
    t.func_calls t.pred_calls t.weighted

(* ------------------------------------------------------------------ *)
(* Memoized costing.

   Executed costing is by far the most expensive part of exploring a
   rewrite space, and search re-encounters the same subplans constantly
   (across [explore] calls, across [explore]/[reaches], across pipeline
   stages).  The cache is keyed by the canonical query key (hash of the
   reassociated term, structural equality as tiebreak), so two
   associativity variants of one plan share an entry.  Entries are only
   valid for one database: the cache remembers which [db] it was filled
   against (by physical identity — sample databases are built once and
   reused) and flushes itself when costed against a different one. *)

type cache = {
  table : float Term.Canonical.Table.t;
  mutable hits : int;
  mutable misses : int;
  mutable cached_db : (string * Value.t) list option;
}

let cache ?(size = 512) () =
  { table = Term.Canonical.Table.create size; hits = 0; misses = 0;
    cached_db = None }

let cache_stats c = (c.hits, c.misses)

let cache_clear c =
  Term.Canonical.Table.reset c.table;
  c.cached_db <- None

(* Weighted cost of [q] on [db] under the default backend, with plans that
   fail to evaluate (e.g. ill-typed intermediate states) costed at
   infinity — the convention search uses to prune them. *)
let weighted_memo c ~db (q : Term.query) : float =
  (match c.cached_db with
  | Some d when d == db -> ()
  | Some _ ->
    Term.Canonical.Table.reset c.table;
    c.cached_db <- Some db
  | None -> c.cached_db <- Some db);
  let key = Term.Canonical.of_query q in
  match Term.Canonical.Table.find_opt c.table key with
  | Some w ->
    c.hits <- c.hits + 1;
    w
  | None ->
    c.misses <- c.misses + 1;
    let w =
      match measure ~db q with
      | _, t -> t.weighted
      | exception Eval.Error _ -> infinity
    in
    Term.Canonical.Table.replace c.table key w;
    w

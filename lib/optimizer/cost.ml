(* A simple calibration-based cost model: run the candidate plan on a
   (small) sample database and charge it for the work counters the
   evaluator maintains.  Tuples touched dominate; combinator dispatch is
   cheap.  This is deliberately an *executed* cost model — the paper leaves
   cost-based search to the optimizers that would host KOLA, and counters
   make the benches' cost claims implementation-independent. *)

open Kola

type t = {
  tuples : int;
  func_calls : int;
  pred_calls : int;
  weighted : float;
}

let weighted ~tuples ~func_calls ~pred_calls =
  float_of_int tuples +. (0.1 *. float_of_int func_calls)
  +. (0.1 *. float_of_int pred_calls)

let of_counters (c : Eval.counters) =
  {
    tuples = c.Eval.tuples;
    func_calls = c.Eval.func_calls;
    pred_calls = c.Eval.pred_calls;
    weighted =
      weighted ~tuples:c.Eval.tuples ~func_calls:c.Eval.func_calls
        ~pred_calls:c.Eval.pred_calls;
  }

(* Evaluate [q] against [db] under [backend]; return its result and cost. *)
let measure ?(backend = Eval.Naive) ?(dedup = Eval.Eager) ~db (q : Term.query)
    : Value.t * t =
  let ctx = Eval.ctx ~db ~backend ~dedup () in
  let v = Eval.run ctx q in
  (v, of_counters ctx.Eval.counters)

let pp ppf t =
  Fmt.pf ppf "tuples=%d funcs=%d preds=%d (weighted %.1f)" t.tuples
    t.func_calls t.pred_calls t.weighted

(* Compiled-backend costing.  The fused loops count tuples emitted and
   hash builds/probes; builds and probes stand in for the interpreter's
   dispatch counters in the weighted blend, so compiled and interpreted
   costs stay on one scale. *)
let of_exec_stats (s : Kola_exec.Exec.stats) =
  let tuples = s.Kola_exec.Exec.tuples
  and func_calls = s.Kola_exec.Exec.builds
  and pred_calls = s.Kola_exec.Exec.probes in
  { tuples; func_calls; pred_calls;
    weighted = weighted ~tuples ~func_calls ~pred_calls }

let measure_exec ?(backend = Kola_exec.Exec.Compiled) ?(dedup = Eval.Eager)
    ~db (q : Term.query) : Value.t * t * Kola_exec.Exec.stats =
  let v, s = Kola_exec.Exec.run ~backend ~dedup ~db q in
  (v, of_exec_stats s, s)

(* ------------------------------------------------------------------ *)
(* Memoized costing.

   Executed costing is by far the most expensive part of exploring a
   rewrite space, and search re-encounters the same subplans constantly
   (across [explore] calls, across [explore]/[reaches], across pipeline
   stages).  The cache is keyed by the canonical query key (hash of the
   reassociated term, structural equality as tiebreak), so two
   associativity variants of one plan share an entry.  Entries are only
   valid for one database: the cache remembers which [db] it was filled
   against (by physical identity — sample databases are built once and
   reused) and flushes itself when costed against a different one.

   Capacity and eviction: [size] is a real bound on resident entries
   (the historical behaviour — initial Hashtbl size only — let long
   pipeline runs grow the shared cache without limit).  Eviction is
   second-chance: every entry carries a [live] bit, clear on insert and
   set on hit; when an insert finds the table full, one sweep removes
   every entry whose bit is clear and demotes the rest, so an entry
   survives a sweep iff it was hit since insertion or the previous
   sweep; if every entry was live the whole table is dropped (a full
   clear beats thrashing sweep-per-insert).  Sweep cost is O(capacity)
   but amortized O(1) per insert as long as a constant fraction of
   entries is cold between sweeps. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

type 'v entry = { w : 'v; mutable live : bool }

(* The memoization machinery — capacity bound, second-chance sweep,
   per-database validity — is independent of how entries are keyed and of
   what they store, so it is written once over any hashtable and
   instantiated three times: over canonical query keys (the legacy
   cache), over interned node-id pairs (the hash-consed cache), both
   storing weighted floats, and over (plan, backend, dedup) triples
   storing full cost records (the pipeline's plan cache).

   Concurrency: the daemon (lib/server) shares one cache of each kind
   across worker domains, so every table operation — probe, insert,
   sweep, database flush — runs under the memo's mutex, and the
   hit/miss/eviction counters are atomics so a concurrent stats reader
   never observes a torn count.  The critical sections are a hashtable
   probe or insert; the expensive part of a miss (evaluating the plan)
   always happens outside the lock.  Two domains racing on the same
   missing key may both evaluate it and insert twice — the evaluations
   are deterministic, so the second insert is idempotent.  At one domain
   (the CLI) the lock is uncontended and costs a few nanoseconds per
   probe. *)
module Memo (T : Hashtbl.S) = struct
  type 'v memo = {
    table : 'v entry T.t;  (* mutated only under [lock] *)
    capacity : int;
    lock : Mutex.t;
    hits : int Atomic.t;
    misses : int Atomic.t;
    evictions : int Atomic.t;
    mutable cached_db : (string * Value.t) list option;  (* under [lock] *)
  }

  let create ?(size = 65_536) () =
    let capacity = max 1 size in
    {
      table = T.create (min capacity 1_024);
      capacity;
      lock = Mutex.create ();
      hits = Atomic.make 0;
      misses = Atomic.make 0;
      evictions = Atomic.make 0;
      cached_db = None;
    }

  let stats c =
    Mutex.protect c.lock @@ fun () ->
    {
      hits = Atomic.get c.hits;
      misses = Atomic.get c.misses;
      evictions = Atomic.get c.evictions;
      entries = T.length c.table;
      capacity = c.capacity;
    }

  let clear c =
    Mutex.protect c.lock @@ fun () ->
    T.reset c.table;
    c.cached_db <- None

  (* Flush the table when costed against a different database. *)
  let prepare c ~db =
    Mutex.protect c.lock @@ fun () ->
    match c.cached_db with
    | Some d when d == db -> ()
    | Some _ ->
      T.reset c.table;
      c.cached_db <- Some db
    | None -> c.cached_db <- Some db

  (* Hit: refresh the second-chance bit and count. *)
  let find_memo c key =
    let found =
      Mutex.protect c.lock @@ fun () ->
      match T.find_opt c.table key with
      | Some e ->
        e.live <- true;
        Some e.w
      | None -> None
    in
    (match found with
    | Some _ ->
      Atomic.incr c.hits;
      Kola_telemetry.Telemetry.count "cost.cache_hit"
    | None -> ());
    found

  (* Caller holds [c.lock]. *)
  let sweep c =
    let doomed =
      T.fold
        (fun k e acc ->
          if e.live then begin
            e.live <- false;
            acc
          end
          else k :: acc)
        c.table []
    in
    let evicted =
      match doomed with
      | [] ->
        (* every resident entry was hit since the last sweep *)
        let n = T.length c.table in
        T.reset c.table;
        n
      | doomed ->
        List.iter (T.remove c.table) doomed;
        List.length doomed
    in
    Atomic.fetch_and_add c.evictions evicted |> ignore;
    Kola_telemetry.Telemetry.count ~n:evicted "cost.cache_evict"

  (* Miss: count, make room, insert.  New entries start with the reference
     bit clear — only a hit earns the second chance. *)
  let insert_memo c key w =
    Atomic.incr c.misses;
    Kola_telemetry.Telemetry.count "cost.cache_miss";
    Mutex.protect c.lock @@ fun () ->
    if T.length c.table >= c.capacity then sweep c;
    T.replace c.table key { w; live = false }
end

module CanonMemo = Memo (Term.Canonical.Table)
module HcMemo = Memo (Term.Hc.Qtable)

type cache = float CanonMemo.memo
type hc_cache = float HcMemo.memo

let cache ?size () = CanonMemo.create ?size ()
let cache_stats = CanonMemo.stats
let cache_clear = CanonMemo.clear
let prepare = CanonMemo.prepare
let find_memo = CanonMemo.find_memo
let insert_memo = CanonMemo.insert_memo
let hc_cache ?size () = HcMemo.create ?size ()
let hc_cache_stats = HcMemo.stats
let hc_cache_clear = HcMemo.clear

(* Weighted cost of [q] on [db] under the default backend, with plans that
   fail to evaluate (e.g. ill-typed intermediate states) costed at
   infinity — the convention search uses to prune them. *)
let measure_weighted ~db (q : Term.query) : float =
  match measure ~db q with
  | _, t -> t.weighted
  | exception Eval.Error _ -> infinity

let weighted_memo c ~db (q : Term.query) : float =
  prepare c ~db;
  let key = Term.Canonical.of_query q in
  match find_memo c key with
  | Some w -> w
  | None ->
    let w = measure_weighted ~db q in
    insert_memo c key w;
    w

(* Batch lookup for the parallel search: probe every key sequentially
   (counting hits), evaluate the misses through [map] — the only step a
   caller parallelizes — then insert the results sequentially in item
   order.  The evaluations themselves never touch the cache, and hit,
   miss, and eviction accounting is the same as feeding the items to
   [weighted_memo] one by one. *)
let weighted_memo_batch c ~db ?(map = Array.map)
    (items : (Term.Canonical.t * Term.query) array) : float array =
  prepare c ~db;
  let n = Array.length items in
  let out = Array.make n infinity in
  let missing = ref [] in
  Array.iteri
    (fun i (key, q) ->
      match find_memo c key with
      | Some w -> out.(i) <- w
      | None -> missing := (i, key, q) :: !missing)
    items;
  let missing = Array.of_list (List.rev !missing) in
  let ws = map (fun q -> measure_weighted ~db q) (Array.map (fun (_, _, q) -> q) missing) in
  Array.iteri
    (fun j (i, key, _) ->
      insert_memo c key ws.(j);
      out.(i) <- ws.(j))
    missing;
  out

(* Interned counterparts.  Keys are [Term.Hc.query_key] — the id of the
   memoized canonical form of the body paired with the argument's id — so
   two interned queries share an entry exactly when their canonical plain
   forms are equal, i.e. the hc cache partitions queries into the same
   equivalence classes as the canonical cache.  Probing costs two field
   reads and an int-pair hash instead of a canonicalizing walk. *)

let weighted_memo_hc c ~db (hq : Term.Hc.hquery) : float =
  HcMemo.prepare c ~db;
  let key = Term.Hc.query_key hq in
  match HcMemo.find_memo c key with
  | Some w -> w
  | None ->
    let w = measure_weighted ~db (Term.Hc.to_query hq) in
    HcMemo.insert_memo c key w;
    w

let weighted_memo_hc_batch c ~db ?(map = Array.map)
    (items : ((int * int) * Term.Hc.hquery) array) : float array =
  HcMemo.prepare c ~db;
  let n = Array.length items in
  let out = Array.make n infinity in
  let missing = ref [] in
  Array.iteri
    (fun i (key, hq) ->
      match HcMemo.find_memo c key with
      | Some w -> out.(i) <- w
      | None -> missing := (i, key, hq) :: !missing)
    items;
  let missing = Array.of_list (List.rev !missing) in
  let ws =
    map
      (fun q -> measure_weighted ~db q)
      (Array.map (fun (_, _, hq) -> Term.Hc.to_query hq) missing)
  in
  Array.iteri
    (fun j (i, key, _) ->
      HcMemo.insert_memo c key ws.(j);
      out.(i) <- ws.(j))
    missing;
  out

(* ------------------------------------------------------------------ *)
(* The plan cache: full cost records per evaluation setting.

   The pipeline compares candidate plans across execution dimensions —
   the same query costed under naive vs hashed backends and eager vs
   deferred dedup has genuinely different counters — so entries are
   keyed by (interned query, backend, dedup) and store the whole
   {!t}, not just the weighted scalar.  The memoization machinery
   (capacity, second-chance sweep, per-database validity) is the same
   [Memo] instantiation as the search caches. *)

module PlanTbl = Hashtbl.Make (struct
  type t = (int * int) * Eval.backend * Eval.dedup

  let equal (k1 : t) k2 = k1 = k2
  let hash = Hashtbl.hash
end)

module PlanMemo = Memo (PlanTbl)

type plan_cache = t PlanMemo.memo

let plan_cache ?size () = PlanMemo.create ?size ()
let plan_cache_stats = PlanMemo.stats
let plan_cache_clear = PlanMemo.clear

let measure_memo c ?(backend = Eval.Naive) ?(dedup = Eval.Eager) ~db
    (q : Term.query) : t =
  PlanMemo.prepare c ~db;
  let key = (Term.Hc.query_key (Term.Hc.of_query q), backend, dedup) in
  match PlanMemo.find_memo c key with
  | Some cost -> cost
  | None ->
    let _, cost = measure ~backend ~dedup ~db q in
    PlanMemo.insert_memo c key cost;
    cost

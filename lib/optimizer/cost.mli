(** A calibration-based cost model: run the candidate plan on a sample
    database and charge it for the evaluator's work counters.  Tuples
    touched dominate; combinator dispatch is cheap. *)

type t = {
  tuples : int;
  func_calls : int;
  pred_calls : int;
  weighted : float;
}

val weighted : tuples:int -> func_calls:int -> pred_calls:int -> float
val of_counters : Kola.Eval.counters -> t

val measure :
  ?backend:Kola.Eval.backend ->
  ?dedup:Kola.Eval.dedup ->
  db:(string * Kola.Value.t) list ->
  Kola.Term.query ->
  Kola.Value.t * t

val pp : t Fmt.t

val of_exec_stats : Kola_exec.Exec.stats -> t
(** Compiled-loop counters on the interpreter's cost scale: tuples map to
    tuples; hash builds and probes stand in for func/pred dispatch. *)

val measure_exec :
  ?backend:Kola_exec.Exec.backend ->
  ?dedup:Kola.Eval.dedup ->
  db:(string * Kola.Value.t) list ->
  Kola.Term.query ->
  Kola.Value.t * t * Kola_exec.Exec.stats
(** Like {!measure} through the execution backends of {!Kola_exec.Exec}:
    [~backend:Compiled] (the default) runs the fused-loop closures,
    falling back to the interpreter on unsupported plans (recorded in the
    returned stats); [~backend:(Interp b)] is the interpreter itself. *)

(** {1 Memoized costing}

    Executed costing dominates rewrite-space exploration, and the same
    subplans are re-encountered constantly.  The cache is keyed by
    {!Kola.Term.Canonical} keys, so associativity variants of one plan
    share an entry.  Entries are valid for a single database: costing
    against a different database (by physical identity) flushes the
    cache.

    {2 Capacity and eviction}

    [size] is a hard bound on resident entries, enforced by
    {e second-chance} eviction: every entry carries a reference bit that
    a hit sets; when an insert finds the cache full, a single sweep
    evicts every entry whose bit is clear and clears the bit of the
    rest — so an entry survives a sweep iff it was hit since the
    previous one.  If every entry was hit (the working set exceeds the
    capacity), the whole cache is dropped rather than swept on every
    insert.  Evicted entries are counted in {!stats.evictions}; the
    sweep is O(capacity) but amortized O(1) per insert while a constant
    fraction of entries stays cold between sweeps.

    {2 Concurrency}

    Caches may be shared across domains (the serving daemon shares one of
    each kind across its workers): every table operation runs under the
    cache's mutex and the hit/miss/eviction counters are atomic, so
    {!cache_stats} never observes a torn count.  Plan evaluation on a
    miss happens outside the lock; two domains racing on one missing key
    may evaluate it twice, which is harmless — the evaluations are
    deterministic and the second insert idempotent. *)

type cache

type stats = {
  hits : int;
  misses : int;
  evictions : int;  (** entries removed by capacity sweeps and clears *)
  entries : int;    (** resident entries; always [<= capacity] *)
  capacity : int;
}

val cache : ?size:int -> unit -> cache
(** A fresh cache holding at most [size] entries (default 65536,
    minimum 1). *)

val cache_stats : cache -> stats

val cache_clear : cache -> unit

val weighted_memo : cache -> db:(string * Kola.Value.t) list ->
  Kola.Term.query -> float
(** Weighted cost under the default backend; plans that fail to evaluate
    cost [infinity].  Never re-evaluates a resident canonically-equal
    query. *)

val weighted_memo_batch :
  cache ->
  db:(string * Kola.Value.t) list ->
  ?map:((Kola.Term.query -> float) -> Kola.Term.query array -> float array) ->
  (Kola.Term.Canonical.t * Kola.Term.query) array ->
  float array
(** [weighted_memo_batch c ~db ~map items] costs a batch of queries,
    each paired with its precomputed canonical key: resident keys are
    served from the cache, the misses are evaluated through [map]
    (default [Array.map] — pass a parallel map to evaluate them across
    domains; the evaluations are pure), and the results are inserted
    sequentially in item order.  The evaluations never touch the cache,
    and when the item keys are
    distinct the hit/miss/eviction accounting is identical to calling
    {!weighted_memo} on each item in order.  Duplicate keys in one batch
    are evaluated once per occurrence instead of hitting. *)

(** {2 Interned cache}

    The same memoization (capacity, second-chance eviction, per-database
    validity) keyed by {!Kola.Term.Hc.query_key} — precomputed node-id
    pairs — instead of canonical keys.  The key of an interned query is
    the id of its body's memoized canonical form paired with its
    argument's id, so the hc cache partitions queries into exactly the
    canonical cache's equivalence classes while probing in O(1). *)

type hc_cache

val hc_cache : ?size:int -> unit -> hc_cache
val hc_cache_stats : hc_cache -> stats
val hc_cache_clear : hc_cache -> unit

val weighted_memo_hc :
  hc_cache -> db:(string * Kola.Value.t) list -> Kola.Term.Hc.hquery -> float

val weighted_memo_hc_batch :
  hc_cache ->
  db:(string * Kola.Value.t) list ->
  ?map:((Kola.Term.query -> float) -> Kola.Term.query array -> float array) ->
  ((int * int) * Kola.Term.Hc.hquery) array ->
  float array
(** Batch analogue of {!weighted_memo_batch} over interned queries; the
    misses are converted to plain queries (an O(1) field read per item)
    before being evaluated through [map]. *)

(** {2 Plan cache}

    Full cost records memoized per evaluation setting.  The pipeline
    compares candidate plans across execution dimensions — the same query
    costed under naive vs hashed backends and eager vs deferred dedup has
    genuinely different counters — so entries are keyed by (interned
    query, backend, dedup) and store the whole {!t}.  Capacity,
    second-chance eviction, and per-database validity are identical to
    the search caches. *)

type plan_cache

val plan_cache : ?size:int -> unit -> plan_cache
val plan_cache_stats : plan_cache -> stats
val plan_cache_clear : plan_cache -> unit

val measure_memo :
  plan_cache ->
  ?backend:Kola.Eval.backend ->
  ?dedup:Kola.Eval.dedup ->
  db:(string * Kola.Value.t) list ->
  Kola.Term.query ->
  t
(** Like {!measure} without the result value, serving repeats from the
    cache.  Evaluation failures propagate and are never cached. *)

(** A calibration-based cost model: run the candidate plan on a sample
    database and charge it for the evaluator's work counters.  Tuples
    touched dominate; combinator dispatch is cheap. *)

type t = {
  tuples : int;
  func_calls : int;
  pred_calls : int;
  weighted : float;
}

val weighted : tuples:int -> func_calls:int -> pred_calls:int -> float
val of_counters : Kola.Eval.counters -> t

val measure :
  ?backend:Kola.Eval.backend ->
  ?dedup:Kola.Eval.dedup ->
  db:(string * Kola.Value.t) list ->
  Kola.Term.query ->
  Kola.Value.t * t

val pp : t Fmt.t

(** {1 Memoized costing}

    Executed costing dominates rewrite-space exploration, and the same
    subplans are re-encountered constantly.  The cache is keyed by
    {!Kola.Term.Canonical} keys, so associativity variants of one plan
    share an entry.  Entries are valid for a single database: costing
    against a different database (by physical identity) flushes the
    cache. *)

type cache

val cache : ?size:int -> unit -> cache

val cache_stats : cache -> int * int
(** [(hits, misses)] accumulated so far. *)

val cache_clear : cache -> unit

val weighted_memo : cache -> db:(string * Kola.Value.t) list ->
  Kola.Term.query -> float
(** Weighted cost under the default backend; plans that fail to evaluate
    cost [infinity].  Never re-evaluates a canonically-equal query. *)

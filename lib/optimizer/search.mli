(** Exploration-based optimization: bounded breadth-first search of the
    rewrite space under the declarative catalog, deduplicating states
    modulo associativity.

    This is the "strategies for their use" dimension the paper leaves open
    (Section 1.1): uninformed search discovers the short derivations of
    Figures 4 and 6 from the rules alone, but the ≈25-firing hidden-join
    derivation is beyond any practical frontier — the paper's motivation
    for COKO rule blocks, quantified.

    The performance layer underneath (DESIGN.md, "Engine internals &
    performance"): successor enumeration prunes rules through the
    head-symbol index, dedup uses hashed canonical keys
    ({!Kola.Term.Canonical}) instead of pretty-printed strings, and costing
    is memoized across explorations ({!Cost.cache}).

    The parallel layer (DESIGN.md, "Parallel exploration"): with
    [jobs > 1], each BFS level fans successor enumeration, canonical-key
    computation, and cost evaluation out across a fixed pool of OCaml 5
    domains ({!Kola_parallel.Pool}), then merges worker results in stable
    item order.  [explore] and [reaches] return bit-identical outcomes
    whatever the domain count; only cost-cache hit/miss accounting may
    shift when a capacity sweep lands mid-level. *)

(** Which engine answers [explore]/[reaches]: bounded breadth-first
    search over single firings, or equality saturation on the e-graph
    backend ({!Kola_egraph}) — the whole rewrite space compressed into
    e-classes, best terms recovered by cost extraction, equivalence by a
    same-class check with proof replay. *)
type engine = Bfs | Egraph

(** Why a search returned: the whole space within depth was covered
    ([Exhausted]), a state/position/e-node/iteration budget tripped
    ([Budget]), or the configured wall-clock deadline expired
    ([Deadline]).  Both engines report through this one type, mirroring
    {!Kola_egraph.Saturate.stop_reason}. *)
type stop_reason = Exhausted | Budget | Deadline

val stop_reason_label : stop_reason -> string
(** ["exhausted"] / ["budget"] / ["deadline"] — for CLI and trace
    output. *)

type config = {
  engine : engine;  (** default [Bfs] *)
  egraph_budgets : Kola_egraph.Saturate.budgets;
      (** saturation budgets (e-nodes, iterations, wall-clock) used when
          [engine = Egraph] *)
  rules : Rewrite.Rule.t list;
  max_depth : int;   (** maximum derivation length *)
  max_states : int;  (** states expanded before giving up *)
  max_positions : int;
      (** positions per rule enumerated by {!successors} (default 64);
          truncation clears [frontier_exhausted], it is never silent *)
  indexed : bool;
      (** prune rules through the head-symbol index (default [true]) *)
  interned : bool;
      (** explore on hash-consed nodes (default [true]): id-keyed dedup,
          O(1) canonical keys and physical-identity fast paths in matching.
          [best], [path], [explored] and [frontier_exhausted] are identical
          to the legacy engine at every [jobs] setting; only per-state
          costs — and the interning stats reported — change. *)
  cost_cache : Cost.cache option;
      (** [None] (the default) shares one cache across explorations *)
  hc_cost_cache : Cost.hc_cache option;
      (** cache for the interned engine; [None] shares one likewise *)
  sample_db : (string * Kola.Value.t) list;  (** database used for costing *)
  jobs : int;
      (** domains exploring each BFS level (default 1 = the sequential
          engine; 0 = [Domain.recommended_domain_count ()]) *)
  deadline : float option;
      (** wall-clock budget in seconds on the monotonic clock (default
          [None]).  When it expires, [explore] degrades gracefully: the
          best state found so far is returned with [stop = Deadline] and
          a path {!validate_path} accepts.  Sequential BFS checks before
          each state expansion; parallel BFS between levels (so outcomes
          stay deterministic up to the interrupted level); under
          [Egraph] the deadline tightens the saturation time budget. *)
}

val default_config : config

val resolved_jobs : config -> int
(** The domain count [explore]/[reaches] will actually use: [config.jobs],
    with [0] (or negative) resolved to
    [Domain.recommended_domain_count ()]. *)

val successors :
  ?schema:Kola.Schema.t ->
  ?max_positions:int ->
  Rewrite.Rule.t list -> Kola.Term.query -> (string * Kola.Term.query) list
(** Every single-firing successor: each rule at each matching position, up
    to [max_positions] positions per rule (default 64). *)

val successors_hc :
  ?schema:Kola.Schema.t ->
  ?max_positions:int ->
  Rewrite.Rule.t list ->
  Kola.Term.Hc.hquery ->
  (string * Kola.Term.Hc.hquery) list
(** [successors] on interned nodes: same successors in the same order. *)

type state = {
  query : Kola.Term.query;
  path : string list;  (** rules fired, in order *)
  cost : float;
}

type outcome = {
  best : state;
  explored : int;
  stop : stop_reason;
      (** why the search returned; [Deadline] outcomes still carry the
          best state found before the clock expired *)
  frontier_exhausted : bool;
      (** [stop = Exhausted], kept for existing callers: neither the
          state budget, the position cap, nor a deadline truncated
          anything *)
  cache_hits : int;   (** cost-cache hits during this call *)
  cache_misses : int;
  cache_evictions : int;
      (** cost-cache entries evicted by capacity sweeps during this call *)
  seen_states : int;
      (** distinct states (dedup equivalence classes) recorded, including
          the start state *)
  intern_hits : int;   (** intern-table hits during this call *)
  intern_misses : int; (** nodes freshly interned during this call *)
  sharing_ratio : float;
      (** [intern_hits / (intern_hits + intern_misses)]; [0.] on the
          legacy engine, which interns nothing *)
  saturation : Kola_egraph.Saturate.stats option;
      (** e-graph statistics (e-classes, e-nodes, iterations, rebuild
          time, stop reason) when [engine = Egraph]; [None] under BFS *)
}

val canonical : Kola.Term.query -> string
(** Pretty-printed canonical form — the legacy dedup key, kept for
    diagnostics and the equivalence tests against {!Kola.Term.Canonical}. *)

val explore : ?config:config -> Kola.Term.query -> outcome
(** Cheapest equivalent query found within the budget. *)

val reaches :
  ?config:config -> Kola.Term.query -> Kola.Term.query -> string list option
(** A derivation from the first query to the second (modulo associativity),
    if one exists within the budget.  Under [engine = Egraph] the answer
    comes from a same-e-class check after saturation, and the derivation is
    replayed out of the proof forest — same format, validated by
    {!validate_path}. *)

val reaches_steps :
  ?config:config ->
  Kola.Term.query ->
  Kola.Term.query ->
  (string * Kola.Term.query) list option
(** Like {!reaches}, with the intermediate query after every firing —
    the input {!validate_path} checks.  Under BFS the intermediates are
    recomputed by replaying the found path. *)

val validate_path :
  ?schema:Kola.Schema.t ->
  ?rules:Rewrite.Rule.t list ->
  Kola.Term.query ->
  (string * Kola.Term.query) list ->
  bool
(** Step-by-step check of a derivation against the BFS successor
    machinery: every step's named rule (["r"]/["r-1"] resolved through
    {!Rewrite.Rule.flip}) must fire at some position of the previous
    query and produce the step's query modulo associativity.  [rules]
    defaults to the full catalog. *)

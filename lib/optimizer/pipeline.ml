(* The end-to-end optimizer: OQL → AQUA → KOLA → COKO normalization and
   hidden-join untangling → cost-based plan choice (original vs untangled,
   naive vs hashed backend).

   The output [report] is an explanation artifact: each phase records what
   it produced, and the rewrite trace names every rule fired — the paper's
   declarative-rules thesis made operational. *)

open Kola

type plan = {
  label : string;
  query : Term.query;
  backend : Eval.backend;
  dedup : Eval.dedup;
  cost : Cost.t;
}

type report = {
  source : string option;           (** OQL text, when that is the entry *)
  aqua : Aqua.Ast.expr;
  translated : Term.query;
  normalized : Term.query;
  untangled : Term.query option;    (** when the hidden-join blocks applied *)
  trace : Rewrite.Engine.trace;
  blocks : (string * bool) list;
  candidates : plan list;
  chosen : plan;
  cost_cache_hits : int;    (** plan-cache hits while costing candidates *)
  cost_cache_misses : int;  (** candidate evaluations actually run *)
}

let backend_name = function Eval.Naive -> "naive" | Eval.Hashed -> "hashed"
let dedup_name = function Eval.Eager -> "eager" | Eval.Deferred -> "deferred"

(* Deferring duplicate elimination is only sound for duplicate-insensitive
   plans; an aggregate anywhere in the plan observes intermediate
   multiplicities, so it disables the deferred dimension. *)
let rec contains_agg (f : Term.func) =
  match f with
  | Term.Agg _ -> true
  | Term.Id | Term.Pi1 | Term.Pi2 | Term.Prim _ | Term.Kf _ | Term.Flat
  | Term.Sng | Term.Arith _ | Term.Setop _ | Term.Fhole _ -> false
  | Term.Compose (a, b) | Term.Pairf (a, b) | Term.Times (a, b)
  | Term.Nest (a, b) | Term.Unnest (a, b) -> contains_agg a || contains_agg b
  | Term.Cf (a, _) -> contains_agg a
  | Term.Con (p, a, b) -> pred_contains_agg p || contains_agg a || contains_agg b
  | Term.Iterate (p, a) | Term.Iter (p, a) | Term.Join (p, a) ->
    pred_contains_agg p || contains_agg a

and pred_contains_agg (p : Term.pred) =
  match p with
  | Term.Eq | Term.Leq | Term.Gt | Term.In | Term.Primp _ | Term.Kp _
  | Term.Phole _ -> false
  | Term.Oplus (q, f) -> pred_contains_agg q || contains_agg f
  | Term.Andp (q, r) | Term.Orp (q, r) ->
    pred_contains_agg q || pred_contains_agg r
  | Term.Inv q | Term.Conv q -> pred_contains_agg q
  | Term.Cp (q, _) -> pred_contains_agg q

(* Normalize with the simplify block (identity laws etc.). *)
let normalize q =
  let o = Coko.Block.run Coko.Programs.simplify q in
  (o.Coko.Block.query, o.Coko.Block.trace)

(* One plan cache shared across [optimize] calls (like the search cost
   caches): re-optimizing a query — or optimizing one whose normalized and
   untangled forms coincide with an earlier run's — serves every
   (backend × dedup) measurement from the memo instead of re-running the
   plan. *)
let shared_plan_cache = Cost.plan_cache ()

let candidates_of ?(cache = shared_plan_cache) ~db label q =
  let dedups =
    if contains_agg q.Term.body then [ Eval.Eager ]
    else [ Eval.Eager; Eval.Deferred ]
  in
  List.concat_map
    (fun backend ->
      List.map
        (fun dedup ->
          let cost = Cost.measure_memo cache ~backend ~dedup ~db q in
          { label; query = q; backend; dedup; cost })
        dedups)
    [ Eval.Naive; Eval.Hashed ]

let optimize ?source ?(plan_cache = shared_plan_cache) ~db
    (aqua : Aqua.Ast.expr) : report =
  let translated = Translate.Compile.query aqua in
  let normalized, trace1 = normalize translated in
  let untangle_outcome, blocks = Coko.Programs.hidden_join normalized in
  let untangled =
    if List.for_all snd blocks then Some untangle_outcome.Coko.Block.query
    else None
  in
  let before = Cost.plan_cache_stats plan_cache in
  let candidates =
    candidates_of ~cache:plan_cache ~db "original" normalized
    @
    match untangled with
    | Some q -> candidates_of ~cache:plan_cache ~db "untangled" q
    | None -> []
  in
  let after = Cost.plan_cache_stats plan_cache in
  let chosen =
    List.fold_left
      (fun best c -> if c.cost.Cost.weighted < best.cost.Cost.weighted then c else best)
      (List.hd candidates) (List.tl candidates)
  in
  {
    source;
    aqua;
    translated;
    normalized;
    untangled;
    trace = trace1 @ untangle_outcome.Coko.Block.trace;
    blocks;
    candidates;
    chosen;
    cost_cache_hits = after.Cost.hits - before.Cost.hits;
    cost_cache_misses = after.Cost.misses - before.Cost.misses;
  }

let optimize_oql ?extents ?plan_cache ~db src =
  let aqua = Oql.Parser.parse ?extents src in
  optimize ~source:src ?plan_cache ~db aqua

(* Execute the chosen plan against a database. *)
let run ~db (r : report) : Value.t =
  Eval.eval_query ~db ~backend:r.chosen.backend ~dedup:r.chosen.dedup
    r.chosen.query

(* Execute the chosen plan through a [Kola_exec] backend.  The default is
   the interpreter backend the optimizer chose; [~backend:Compiled] fuses
   the plan into loop closures instead (falling back to the interpreter
   on unsupported plans, recorded in the stats).  The dedup dimension
   always follows the chosen plan — it is part of what was costed. *)
let execute ?backend ?layout ?jobs ?pool ?coldb ~db (r : report) :
    Value.t * Kola_exec.Exec.stats =
  let backend =
    match backend with
    | Some b -> b
    | None -> Kola_exec.Exec.Interp r.chosen.backend
  in
  Kola_exec.Exec.run ~backend ~dedup:r.chosen.dedup ?layout ?jobs ?pool ?coldb
    ~db r.chosen.query

let pp_report ppf (r : report) =
  Option.iter (fun s -> Fmt.pf ppf "OQL:        %s@." s) r.source;
  Fmt.pf ppf "AQUA:       @[%a@]@." Aqua.Pretty.pp r.aqua;
  Fmt.pf ppf "KOLA:       @[%a@]@." Pretty.pp_query r.translated;
  Fmt.pf ppf "normalized: @[%a@]@." Pretty.pp_query r.normalized;
  (match r.untangled with
  | Some q -> Fmt.pf ppf "untangled:  @[%a@]@." Pretty.pp_query q
  | None -> Fmt.pf ppf "untangled:  (hidden-join strategy not applicable)@.");
  Fmt.pf ppf "rules fired: %a@."
    Fmt.(list ~sep:comma string)
    (List.map (fun s -> s.Rewrite.Engine.rule_name) r.trace);
  Fmt.pf ppf "plan cache: %d hits, %d misses@." r.cost_cache_hits
    r.cost_cache_misses;
  List.iter
    (fun c ->
      Fmt.pf ppf "  plan %-10s %-7s %-9s %a%s@." c.label
        (backend_name c.backend) (dedup_name c.dedup) Cost.pp c.cost
        (if c == r.chosen then "   <= chosen" else ""))
    r.candidates

(* Exploration-based optimization over the declarative rule catalog:
   bounded breadth-first search of the rewrite space, deduplicating states
   modulo associativity, returning the cheapest plan found.

   This is the "strategies for their use" dimension the paper explicitly
   leaves open (Section 1.1) and later addresses with COKO: uninformed
   search discovers short derivations (Figure 4's T1K/T2K, Figure 6's code
   motion) from the catalog alone, but the 25-firing hidden-join derivation
   is far beyond any practical frontier — which is precisely the paper's
   motivation for rule blocks.  The ablation bench quantifies this.

   Performance layer (see DESIGN.md, "Engine internals & performance"):
   successor enumeration prunes rules through the head-symbol index, states
   are deduplicated with hashed canonical keys instead of pretty-printed
   strings, and costing is memoized across explorations.

   Parallel layer (DESIGN.md, "Parallel exploration"): with [jobs > 1] the
   BFS runs level-synchronously on a Kola_parallel.Pool — successor
   enumeration, canonical-key computation, and cost evaluation fan out
   across domains, while dedup and best-state selection happen in a
   sequential merge that walks worker results in stable item order, so
   [best], [path], [explored], and [frontier_exhausted] are bit-identical
   to the sequential engine whatever the domain count. *)

open Kola
module Pool = Kola_parallel.Pool
module Saturate = Kola_egraph.Saturate
module Telemetry = Kola_telemetry.Telemetry

type engine = Bfs | Egraph

type stop_reason = Exhausted | Budget | Deadline

let stop_reason_label = function
  | Exhausted -> "exhausted"
  | Budget -> "budget"
  | Deadline -> "deadline"

type config = {
  engine : engine;
      (** [Bfs] (default) explores single firings breadth-first; [Egraph]
          saturates an e-graph ({!Kola_egraph}) and answers by extraction
          (explore) or same-class check with proof replay (reaches) *)
  egraph_budgets : Saturate.budgets;
      (** e-node / iteration / wall-clock budgets for [Egraph] *)
  rules : Rewrite.Rule.t list;
  max_depth : int;     (** maximum derivation length *)
  max_states : int;    (** exploration budget (states expanded) *)
  max_positions : int;
      (** positions per rule enumerated by {!successors}; truncation is
          reported through [frontier_exhausted], never silent *)
  indexed : bool;      (** prune rules through the head-symbol index *)
  interned : bool;
      (** explore on hash-consed nodes: id-keyed dedup, O(1) canonical
          keys, physical-identity fast paths in matching.  Same outcome as
          the legacy engine; only the per-state costs change. *)
  cost_cache : Cost.cache option;
      (** [None] uses a cache shared by every exploration *)
  hc_cost_cache : Cost.hc_cache option;
      (** cache for the interned engine; [None] shares one likewise *)
  sample_db : (string * Value.t) list;  (** database used for costing *)
  jobs : int;
      (** domains exploring each BFS level; 1 = the sequential engine,
          0 = [Domain.recommended_domain_count ()] *)
  deadline : float option;
      (** wall-clock budget in seconds on the monotonic clock; when it
          expires the search stops gracefully and reports the best state
          found so far with [stop = Deadline].  Under [Egraph] the
          deadline tightens the saturation time budget. *)
}

let default_config =
  {
    engine = Bfs;
    egraph_budgets = Saturate.default_budgets;
    rules = Rules.Catalog.all;
    max_depth = 6;
    max_states = 400;
    max_positions = 64;
    indexed = true;
    interned = true;
    cost_cache = None;
    hc_cost_cache = None;
    sample_db = Datagen.Store.db (Datagen.Store.tiny ());
    jobs = 1;
    deadline = None;
  }

let resolved_jobs config =
  if config.jobs <= 0 then Domain.recommended_domain_count ()
  else config.jobs

(* Per-rule attribution for successor enumeration: how many successors
   each catalog rule contributed ([rule.fire.*]) or failed to ([rule.miss.*]).
   Names are only built while a telemetry session is active. *)
let note_rule_successors name n =
  if Telemetry.enabled () then
    if n = 0 then Telemetry.count ("rule.miss." ^ name)
    else Telemetry.count ~n ("rule.fire." ^ name)

(* Domain spawn costs milliseconds on some hosts while many explorations
   finish in microseconds, so pools are created once per jobs count and
   kept parked between calls (helpers block on a condition variable; an
   idle pool burns no CPU).  Like the shared cost cache, this makes the
   Search API single-submitter: concurrent [explore]/[reaches] calls from
   different domains are not supported. *)
let pools : (int, Pool.t) Hashtbl.t = Hashtbl.create 4

let pool_for jobs =
  match Hashtbl.find_opt pools jobs with
  | Some pool -> pool
  | None ->
    let pool = Pool.create ~jobs () in
    Hashtbl.add pools jobs pool;
    pool

(* The shared cost cache behind [cost_cache = None]: explorations of the
   same plans (re-runs, pipeline stages, reaches-then-explore) reuse each
   other's measurements.  It flushes itself when the database changes. *)
let shared_cache = Cost.cache ()
let shared_hc_cache = Cost.hc_cache ()

(* Enumerate every single-firing successor of [q]: each rule at each
   position.  Positions are enumerated with a skip counter: the strategy
   fires only at the k-th matching position, for k = 0, 1, ... until no
   position is left or [max_positions] is reached — in which case
   [truncated] is set so callers never mistake a cap for exhaustion.  With
   [~indexed:true], rules whose pattern head occurs nowhere in the term are
   skipped without walking it. *)
let successors_report ?schema ~max_positions ~truncated ~indexed
    (rules : Rewrite.Rule.t list) (q : Term.query) :
    (string * Term.query) list =
  let keep =
    if indexed then
      let presence = Rewrite.Index.presence_of_query q in
      Rewrite.Index.may_fire presence
    else fun _ -> true
  in
  let fun_rules, query_rules =
    List.partition
      (fun r ->
        match r.Rewrite.Rule.body with
        | Rewrite.Rule.Fun_rule _ | Rewrite.Rule.Pred_rule _ -> true
        | Rewrite.Rule.Query_rule _ -> false)
      rules
  in
  let from_query_rules =
    List.filter_map
      (fun r ->
        let res =
          Option.map
            (fun q' -> (r.Rewrite.Rule.name, q'))
            (Rewrite.Rule.apply_query ?schema r q)
        in
        note_rule_successors r.Rewrite.Rule.name
          (if res = None then 0 else 1);
        res)
      query_rules
  in
  let at_kth r k =
    Telemetry.count "search.positions";
    let remaining = ref k in
    let s tgt =
      match Rewrite.Strategy.of_rule ?schema r tgt with
      | Some t ->
        if !remaining = 0 then Some t
        else begin
          decr remaining;
          None
        end
      | None -> None
    in
    Option.map
      (fun body -> { q with Term.body })
      (Rewrite.Strategy.apply_func (Rewrite.Strategy.once_topdown s) q.Term.body)
  in
  let from_fun_rules =
    List.concat_map
      (fun r ->
        if not (keep r) then []
        else
          let rec collect k acc =
            if k >= max_positions then begin
              if Option.is_some (at_kth r k) then begin
                truncated := true;
                if Telemetry.enabled () then
                  Telemetry.instant
                    ~args:[ ("rule", r.Rewrite.Rule.name) ]
                    "search.truncated"
              end;
              List.rev acc
            end
            else
              match at_kth r k with
              | Some q' -> collect (k + 1) ((r.Rewrite.Rule.name, q') :: acc)
              | None -> List.rev acc
          in
          let found = collect 0 [] in
          note_rule_successors r.Rewrite.Rule.name (List.length found);
          found)
      fun_rules
  in
  from_query_rules @ from_fun_rules

let successors ?schema ?(max_positions = 64) (rules : Rewrite.Rule.t list)
    (q : Term.query) : (string * Term.query) list =
  successors_report ?schema ~max_positions ~truncated:(ref false)
    ~indexed:true rules q

type state = {
  query : Term.query;
  path : string list;  (** rules fired, outermost-first *)
  cost : float;
}

type outcome = {
  best : state;
  explored : int;       (** states expanded *)
  stop : stop_reason;
      (** why the search returned: [Exhausted] (whole space within depth
          covered), [Budget] (state budget or position cap), or
          [Deadline] (wall-clock deadline expired) *)
  frontier_exhausted : bool;
      (** [stop = Exhausted], kept for existing callers: neither the
          state budget, the position cap, nor a deadline truncated
          anything *)
  cache_hits : int;     (** cost-cache hits during this exploration *)
  cache_misses : int;
  cache_evictions : int;
      (** cost-cache entries evicted by capacity sweeps during this
          exploration *)
  seen_states : int;    (** distinct states (dedup classes) recorded *)
  intern_hits : int;    (** intern-table hits during this exploration *)
  intern_misses : int;  (** nodes freshly interned during this exploration *)
  sharing_ratio : float;
      (** [intern_hits / (intern_hits + intern_misses)] — the fraction of
          node constructions answered by an existing node; [0.] on the
          legacy engine, which interns nothing *)
  saturation : Saturate.stats option;
      (** e-graph statistics when [engine = Egraph]; [None] under BFS *)
}

(* Pretty-printed canonical form — the legacy dedup key, kept for
   diagnostics and for the equivalence property tests against
   [Term.Canonical]. *)
let canonical q =
  Pretty.query_to_string
    { q with Term.body = Term.reassoc_func q.Term.body }

let cache_of config =
  match config.cost_cache with Some c -> c | None -> shared_cache

let cost_of ~cache ~db q = Cost.weighted_memo cache ~db q

(* [deadline_check config] returns a zero-argument predicate that turns
   true once the configured deadline has expired.  With no deadline the
   predicate is a constant — the hot loops pay nothing. *)
let deadline_check config =
  match config.deadline with
  | None -> fun () -> false
  | Some d ->
    let t1 = Telemetry.now () +. d in
    fun () -> Telemetry.now () >= t1

(* Fold the three exhaustion signals into the reported stop reason.
   Deadline wins: a search cut short by the clock may also look
   budget-truncated, but the actionable cause is the deadline. *)
let stop_of ~hit_deadline ~exhausted =
  if hit_deadline then Deadline else if exhausted then Exhausted else Budget

(* Internal search states carry their path cons-reversed (innermost rule
   first); reversing once at the end avoids the quadratic [path @ [name]]
   accumulation in the BFS loop. *)
type istate = { iquery : Term.query; rev_path : string list; icost : float }

let outcome_record ?saturation ~query ~rev_path ~cost ~expanded ~stop
    ~(cstats0 : Cost.stats) ~(cstats1 : Cost.stats) ~seen_states ~intern_hits
    ~intern_misses () =
  let total = intern_hits + intern_misses in
  {
    best = { query; path = List.rev rev_path; cost };
    explored = expanded;
    stop;
    frontier_exhausted = stop = Exhausted;
    cache_hits = cstats1.Cost.hits - cstats0.Cost.hits;
    cache_misses = cstats1.Cost.misses - cstats0.Cost.misses;
    cache_evictions = cstats1.Cost.evictions - cstats0.Cost.evictions;
    seen_states;
    intern_hits;
    intern_misses;
    sharing_ratio =
      (if total = 0 then 0.
       else float_of_int intern_hits /. float_of_int total);
    saturation;
  }

let outcome_of ~cache ~(stats0 : Cost.stats) ~seen_states ~best ~expanded
    ~stop =
  outcome_record ~query:best.iquery ~rev_path:best.rev_path ~cost:best.icost
    ~expanded ~stop ~cstats0:stats0 ~cstats1:(Cost.cache_stats cache)
    ~seen_states ~intern_hits:0 ~intern_misses:0 ()

(* Bounded BFS with global dedup; returns the cheapest state seen.  The
   sequential engine — the measured baseline the parallel engine must
   reproduce bit-for-bit. *)
let explore_seq ~config (q : Term.query) : outcome =
  let seen = Term.Canonical.Table.create 256 in
  let db = config.sample_db in
  let cache = cache_of config in
  let stats0 = Cost.cache_stats cache in
  let truncated = ref false in
  let over = deadline_check config in
  let hit_deadline = ref false in
  let start = { iquery = q; rev_path = []; icost = cost_of ~cache ~db q } in
  Term.Canonical.Table.replace seen (Term.Canonical.of_query q) ();
  let best = ref start in
  let expanded = ref 0 in
  let exhausted = ref true in
  let rec level states depth =
    if depth >= config.max_depth || states = [] || !hit_deadline then ()
    else begin
      if Telemetry.enabled () then
        Telemetry.instant
          ~args:
            [
              ("depth", string_of_int depth);
              ("frontier", string_of_int (List.length states));
            ]
          "search.level";
      let next = ref [] in
      List.iter
        (fun st ->
          if !hit_deadline then ()
          else if over () then hit_deadline := true
          else if !expanded >= config.max_states then exhausted := false
          else begin
            incr expanded;
            List.iter
              (fun (rule_name, q') ->
                let key = Term.Canonical.of_query q' in
                if Term.Canonical.Table.mem seen key then
                  Telemetry.count "search.dedup_hit"
                else begin
                  Term.Canonical.Table.replace seen key ();
                  let st' =
                    {
                      iquery = q';
                      rev_path = rule_name :: st.rev_path;
                      icost = cost_of ~cache ~db q';
                    }
                  in
                  if st'.icost < !best.icost then best := st';
                  next := st' :: !next
                end)
              (successors_report ~max_positions:config.max_positions
                 ~truncated ~indexed:config.indexed config.rules st.iquery)
          end)
        states;
      level (List.rev !next) (depth + 1)
    end
  in
  level [ start ] 0;
  if !truncated then exhausted := false;
  outcome_of ~cache ~stats0
    ~seen_states:(Term.Canonical.Table.length seen)
    ~best:!best ~expanded:!expanded
    ~stop:(stop_of ~hit_deadline:!hit_deadline ~exhausted:!exhausted)

(* ------------------------------------------------------------------ *)
(* Level-synchronous parallel BFS.

   Each level runs in three phases:

   1. fan-out — successor enumeration plus canonical-key computation for
      every state of the level, across the pool's domains.  The [seen]
      table is read-only during this phase (concurrent [mem] probes of an
      unmutated Hashtbl are safe), so successors already reached at an
      earlier depth are filtered out in parallel;
   2. merge — a sequential walk over the worker results in stable item
      order, deduplicating intra-level collisions exactly as the
      sequential loop would: the first occurrence in item order wins and
      records its path.  This is the only place [seen] is mutated;
   3. costing — [Cost.weighted_memo_batch] probes the cache sequentially,
      evaluates the misses across the pool, and inserts the results in
      item order, so the cache too is never mutated concurrently.

   Because every merge walks results in the order their states were
   enqueued, [best] (ties broken by first discovery), [path], [explored],
   and [frontier_exhausted] are independent of the domain count and of
   scheduling.  Cost-cache hit/miss totals also agree with the sequential
   engine except in one corner: a capacity sweep triggered mid-level can
   evict a key the sequential interleaving would still have hit (or vice
   versa).  That changes accounting only, never costs or outcomes. *)

(* Take the first [n] elements (the level's budget slice). *)
let rec take_n n = function
  | x :: rest when n > 0 -> x :: take_n (n - 1) rest
  | _ -> []

(* Fan a map out across the pool, unless the batch is too small for the
   wake-up latency to pay for itself.  Purely a scheduling choice: the
   result is [Array.map f arr] either way. *)
let pool_map pool f arr =
  if Array.length arr < 2 * Pool.size pool then Array.map f arr
  else Pool.map pool f arr

let explore_par ~pool ~config (q : Term.query) : outcome =
  let seen = Term.Canonical.Table.create 256 in
  let db = config.sample_db in
  let cache = cache_of config in
  let stats0 = Cost.cache_stats cache in
  let truncated = ref false in
  let over = deadline_check config in
  let hit_deadline = ref false in
  let start = { iquery = q; rev_path = []; icost = cost_of ~cache ~db q } in
  Term.Canonical.Table.replace seen (Term.Canonical.of_query q) ();
  let best = ref start in
  let expanded = ref 0 in
  let exhausted = ref true in
  let expand st =
    let tr = ref false in
    let succs =
      successors_report ~max_positions:config.max_positions ~truncated:tr
        ~indexed:config.indexed config.rules st.iquery
    in
    let fresh =
      List.filter_map
        (fun (rule_name, q') ->
          let key = Term.Canonical.of_query q' in
          if Term.Canonical.Table.mem seen key then begin
            Telemetry.count "search.dedup_hit";
            None
          end
          else Some (rule_name, q', key))
        succs
    in
    (fresh, !tr)
  in
  (* The deadline is checked once per level, between the synchronous
     phases: mid-level interruption would make the merged frontier depend
     on timing, breaking the bit-identical-outcome contract across jobs
     counts for everything except the deadline case itself. *)
  let rec level states depth =
    if depth >= config.max_depth || states = [] then ()
    else if over () then hit_deadline := true
    else begin
      let n = List.length states in
      if Telemetry.enabled () then
        Telemetry.instant
          ~args:
            [
              ("depth", string_of_int depth); ("frontier", string_of_int n);
            ]
          "search.level";
      let take = min (config.max_states - !expanded) n in
      if take < n then exhausted := false;
      if take > 0 then begin
        let batch = Array.of_list (take_n take states) in
        (* phase 1: fan out enumeration and key computation *)
        let results = pool_map pool expand batch in
        expanded := !expanded + take;
        (* phase 2: stable-order merge; the only writer of [seen] *)
        let fresh = ref [] in
        Array.iteri
          (fun i (succs, tr) ->
            if tr then truncated := true;
            let parent = batch.(i) in
            List.iter
              (fun (rule_name, q', key) ->
                if Term.Canonical.Table.mem seen key then
                  Telemetry.count "search.dedup_hit"
                else begin
                  Term.Canonical.Table.replace seen key ();
                  fresh := (parent, rule_name, q', key) :: !fresh
                end)
              succs)
          results;
        let fresh = Array.of_list (List.rev !fresh) in
        (* phase 3: batch costing; misses evaluate across the pool *)
        let costs =
          Cost.weighted_memo_batch cache ~db
            ~map:(fun f arr -> pool_map pool f arr)
            (Array.map (fun (_, _, q', key) -> (key, q')) fresh)
        in
        let next = ref [] in
        Array.iteri
          (fun i (parent, rule_name, q', _) ->
            let st' =
              {
                iquery = q';
                rev_path = rule_name :: parent.rev_path;
                icost = costs.(i);
              }
            in
            if st'.icost < !best.icost then best := st';
            next := st' :: !next)
          fresh;
        level (List.rev !next) (depth + 1)
      end
    end
  in
  level [ start ] 0;
  if !truncated then exhausted := false;
  outcome_of ~cache ~stats0
    ~seen_states:(Term.Canonical.Table.length seen)
    ~best:!best ~expanded:!expanded
    ~stop:(stop_of ~hit_deadline:!hit_deadline ~exhausted:!exhausted)

(* ------------------------------------------------------------------ *)
(* Interned exploration: the same BFS on hash-consed nodes.

   What changes per state: dedup keys are [Term.Hc.query_key] — two field
   reads after a memoized canonicalization — probed in an int-pair-keyed
   table; costing goes through the id-keyed {!Cost.hc_cache}; matching and
   substitution run on interned nodes with physical-identity fast paths.
   What does not change: rule-try order, traversal order, position
   enumeration, and the dedup partition (query keys identify interned
   queries exactly when their canonical plain forms are equal), so [best],
   [path], [explored] and [frontier_exhausted] coincide with the legacy
   engine at every [jobs] setting.

   The intern tables are global and striped, so the parallel phases may
   intern concurrently; ids may differ run to run under [jobs > 1] but are
   only ever used as opaque identity keys. *)

let hc_cache_of config =
  match config.hc_cost_cache with Some c -> c | None -> shared_hc_cache

type histate = {
  ihq : Term.Hc.hquery;
  hrev_path : string list;
  hcost : float;
}

(* Interned successor enumeration, mirroring [successors_report]
   line-for-line: query rules first (catalog order), then function and
   predicate rules with the k-th-position skip counter; [keep] prunes
   through the body's head bitmask instead of a presence walk. *)
let successors_hc_report ?schema ~max_positions ~truncated ~indexed
    (rules : Rewrite.Rule.t list) (hq : Term.Hc.hquery) :
    (string * Term.Hc.hquery) list =
  let keep =
    if indexed then
      let mask = hq.Term.Hc.hbody.Term.Hc.fheads in
      Rewrite.Index.mask_may_fire mask
    else fun _ -> true
  in
  let fun_rules, query_rules =
    List.partition
      (fun r ->
        match r.Rewrite.Rule.body with
        | Rewrite.Rule.Fun_rule _ | Rewrite.Rule.Pred_rule _ -> true
        | Rewrite.Rule.Query_rule _ -> false)
      rules
  in
  let from_query_rules =
    List.filter_map
      (fun r ->
        let res =
          Option.map
            (fun hq' -> (r.Rewrite.Rule.name, hq'))
            (Rewrite.Rule.apply_hquery ?schema r hq)
        in
        note_rule_successors r.Rewrite.Rule.name
          (if res = None then 0 else 1);
        res)
      query_rules
  in
  let at_kth ~rmask r k =
    Telemetry.count "search.positions";
    let remaining = ref k in
    let s tgt =
      match Rewrite.Strategy.H.of_rule ?schema r tgt with
      | Some t ->
        if !remaining = 0 then Some t
        else begin
          decr remaining;
          None
        end
      | None -> None
    in
    Option.map
      (fun hbody -> { hq with Term.Hc.hbody })
      (Rewrite.Strategy.H.apply_func
         (Rewrite.Strategy.H.once_topdown_masked ~mask:rmask s)
         hq.Term.Hc.hbody)
  in
  let from_fun_rules =
    List.concat_map
      (fun r ->
        if not (keep r) then []
        else
          let rmask = Rewrite.Index.rule_head_mask r in
          let rec collect k acc =
            if k >= max_positions then begin
              if Option.is_some (at_kth ~rmask r k) then begin
                truncated := true;
                if Telemetry.enabled () then
                  Telemetry.instant
                    ~args:[ ("rule", r.Rewrite.Rule.name) ]
                    "search.truncated"
              end;
              List.rev acc
            end
            else
              match at_kth ~rmask r k with
              | Some hq' -> collect (k + 1) ((r.Rewrite.Rule.name, hq') :: acc)
              | None -> List.rev acc
          in
          let found = collect 0 [] in
          note_rule_successors r.Rewrite.Rule.name (List.length found);
          found)
      fun_rules
  in
  from_query_rules @ from_fun_rules

let successors_hc ?schema ?(max_positions = 64) (rules : Rewrite.Rule.t list)
    (hq : Term.Hc.hquery) : (string * Term.Hc.hquery) list =
  successors_hc_report ?schema ~max_positions ~truncated:(ref false)
    ~indexed:true rules hq

let outcome_of_hc ?saturation ~cache ~(stats0 : Cost.stats)
    ~(istats0 : Kola.Hashcons.stats) ~seen_states ~best ~expanded ~stop
    () =
  let istats1 = Term.Hc.intern_counters () in
  outcome_record ?saturation ~query:(Term.Hc.to_query best.ihq)
    ~rev_path:best.hrev_path
    ~cost:best.hcost ~expanded ~stop ~cstats0:stats0
    ~cstats1:(Cost.hc_cache_stats cache) ~seen_states
    ~intern_hits:(istats1.Kola.Hashcons.hits - istats0.Kola.Hashcons.hits)
    ~intern_misses:
      (istats1.Kola.Hashcons.misses - istats0.Kola.Hashcons.misses)
    ()

let explore_hc_seq ~config (q : Term.query) : outcome =
  let seen = Term.Hc.Qtable.create 256 in
  let db = config.sample_db in
  let cache = hc_cache_of config in
  let istats0 = Term.Hc.intern_counters () in
  let stats0 = Cost.hc_cache_stats cache in
  let truncated = ref false in
  let over = deadline_check config in
  let hit_deadline = ref false in
  let hq0 = Term.Hc.of_query q in
  let start =
    { ihq = hq0; hrev_path = []; hcost = Cost.weighted_memo_hc cache ~db hq0 }
  in
  Term.Hc.Qtable.replace seen (Term.Hc.query_key hq0) ();
  let best = ref start in
  let expanded = ref 0 in
  let exhausted = ref true in
  let rec level states depth =
    if depth >= config.max_depth || states = [] || !hit_deadline then ()
    else begin
      if Telemetry.enabled () then
        Telemetry.instant
          ~args:
            [
              ("depth", string_of_int depth);
              ("frontier", string_of_int (List.length states));
            ]
          "search.level";
      let next = ref [] in
      List.iter
        (fun st ->
          if !hit_deadline then ()
          else if over () then hit_deadline := true
          else if !expanded >= config.max_states then exhausted := false
          else begin
            incr expanded;
            List.iter
              (fun (rule_name, hq') ->
                let key = Term.Hc.query_key hq' in
                if Term.Hc.Qtable.mem seen key then
                  Telemetry.count "search.dedup_hit"
                else begin
                  Term.Hc.Qtable.replace seen key ();
                  let st' =
                    {
                      ihq = hq';
                      hrev_path = rule_name :: st.hrev_path;
                      hcost = Cost.weighted_memo_hc cache ~db hq';
                    }
                  in
                  if st'.hcost < !best.hcost then best := st';
                  next := st' :: !next
                end)
              (successors_hc_report ~max_positions:config.max_positions
                 ~truncated ~indexed:config.indexed config.rules st.ihq)
          end)
        states;
      level (List.rev !next) (depth + 1)
    end
  in
  level [ start ] 0;
  if !truncated then exhausted := false;
  outcome_of_hc ~cache ~stats0 ~istats0
    ~seen_states:(Term.Hc.Qtable.length seen)
    ~best:!best ~expanded:!expanded
    ~stop:(stop_of ~hit_deadline:!hit_deadline ~exhausted:!exhausted) ()

(* Parallel interned exploration: the same three phases as [explore_par].
   Phase 1 interns concurrently (the tables are striped) and probes [seen]
   read-only; phase 2 is the only writer of [seen], walking results in
   stable item order; phase 3 batches costing through the id-keyed cache,
   evaluating misses across the pool. *)
let explore_hc_par ~pool ~config (q : Term.query) : outcome =
  let seen = Term.Hc.Qtable.create 256 in
  let db = config.sample_db in
  let cache = hc_cache_of config in
  let istats0 = Term.Hc.intern_counters () in
  let stats0 = Cost.hc_cache_stats cache in
  let truncated = ref false in
  let over = deadline_check config in
  let hit_deadline = ref false in
  let hq0 = Term.Hc.of_query q in
  let start =
    { ihq = hq0; hrev_path = []; hcost = Cost.weighted_memo_hc cache ~db hq0 }
  in
  Term.Hc.Qtable.replace seen (Term.Hc.query_key hq0) ();
  let best = ref start in
  let expanded = ref 0 in
  let exhausted = ref true in
  let expand st =
    let tr = ref false in
    let succs =
      successors_hc_report ~max_positions:config.max_positions ~truncated:tr
        ~indexed:config.indexed config.rules st.ihq
    in
    let fresh =
      List.filter_map
        (fun (rule_name, hq') ->
          let key = Term.Hc.query_key hq' in
          if Term.Hc.Qtable.mem seen key then begin
            Telemetry.count "search.dedup_hit";
            None
          end
          else Some (rule_name, hq', key))
        succs
    in
    (fresh, !tr)
  in
  (* Deadline checked between levels only — see [explore_par]. *)
  let rec level states depth =
    if depth >= config.max_depth || states = [] then ()
    else if over () then hit_deadline := true
    else begin
      let n = List.length states in
      if Telemetry.enabled () then
        Telemetry.instant
          ~args:
            [
              ("depth", string_of_int depth); ("frontier", string_of_int n);
            ]
          "search.level";
      let take = min (config.max_states - !expanded) n in
      if take < n then exhausted := false;
      if take > 0 then begin
        let batch = Array.of_list (take_n take states) in
        (* phase 1: fan out enumeration and key computation *)
        let results = pool_map pool expand batch in
        expanded := !expanded + take;
        (* phase 2: stable-order merge; the only writer of [seen] *)
        let fresh = ref [] in
        Array.iteri
          (fun i (succs, tr) ->
            if tr then truncated := true;
            let parent = batch.(i) in
            List.iter
              (fun (rule_name, hq', key) ->
                if Term.Hc.Qtable.mem seen key then
                  Telemetry.count "search.dedup_hit"
                else begin
                  Term.Hc.Qtable.replace seen key ();
                  fresh := (parent, rule_name, hq', key) :: !fresh
                end)
              succs)
          results;
        let fresh = Array.of_list (List.rev !fresh) in
        (* phase 3: batch costing; misses evaluate across the pool *)
        let costs =
          Cost.weighted_memo_hc_batch cache ~db
            ~map:(fun f arr -> pool_map pool f arr)
            (Array.map (fun (_, _, hq', key) -> (key, hq')) fresh)
        in
        let next = ref [] in
        Array.iteri
          (fun i (parent, rule_name, hq', _) ->
            let st' =
              {
                ihq = hq';
                hrev_path = rule_name :: parent.hrev_path;
                hcost = costs.(i);
              }
            in
            if st'.hcost < !best.hcost then best := st';
            next := st' :: !next)
          fresh;
        level (List.rev !next) (depth + 1)
      end
    end
  in
  level [ start ] 0;
  if !truncated then exhausted := false;
  outcome_of_hc ~cache ~stats0 ~istats0
    ~seen_states:(Term.Hc.Qtable.length seen)
    ~best:!best ~expanded:!expanded
    ~stop:(stop_of ~hit_deadline:!hit_deadline ~exhausted:!exhausted) ()

(* Equality-saturation engine: saturate the e-graph under the catalog
   within the configured budgets, then extract the cheapest spellings of
   the source's class (per-node weights) and re-measure that small front
   with the executed cost model — exploration collapses into one
   saturation plus a handful of evaluations.  The source is always a
   candidate, so the result is never worse than the input; the reported
   path is replayed out of the proof forest. *)
(* A search deadline tightens the saturation wall-clock budget, so both
   engines honour [config.deadline] through one knob. *)
let egraph_budgets_of config =
  match config.deadline with
  | None -> config.egraph_budgets
  | Some d ->
    {
      config.egraph_budgets with
      Saturate.max_millis =
        Float.min config.egraph_budgets.Saturate.max_millis (d *. 1000.);
    }

(* Report budget exhaustion uniformly across engines: a time-budget stop
   is the deadline when one was configured, a plain budget otherwise. *)
let stop_of_saturation config = function
  | Saturate.Saturated | Saturate.Target_found -> Exhausted
  | Saturate.Node_budget | Saturate.Iter_budget -> Budget
  | Saturate.Time_budget -> if config.deadline <> None then Deadline else Budget

(* [jobs] threads into saturation as the e-matching pool; jobs = 1 stays
   pool-free (the fan-out is a plain [Array.map]).  Saturation outcomes
   are bit-identical at any jobs count — see the merge discipline in
   {!Kola_egraph.Saturate}. *)
let egraph_pool config =
  match resolved_jobs config with 1 -> None | jobs -> Some (pool_for jobs)

let explore_egraph ~config (q : Term.query) : outcome =
  let db = config.sample_db in
  let cache = hc_cache_of config in
  let istats0 = Term.Hc.intern_counters () in
  let stats0 = Cost.hc_cache_stats cache in
  let hq0 = Term.Hc.of_query q in
  let sp =
    Saturate.saturate ~rules:config.rules ~budgets:(egraph_budgets_of config)
      ?pool:(egraph_pool config) hq0
  in
  (* The extraction weights are a heuristic, so re-measure a front with
     the real cost model rather than trusting the single winner: the 2
     cheapest spellings overall (k-best DP cost grows as k² per node)
     plus both deviation neighborhoods (around the weight optimum and
     around the source).  The source itself always stays a candidate —
     extraction can therefore never be worse than doing nothing. *)
  let measure_front best cands =
    List.fold_left
      (fun (bq, bc) hq ->
        let c = Cost.weighted_memo_hc cache ~db hq in
        if c < bc then (hq, c) else (bq, bc))
      best cands
  in
  let front = Saturate.extraction_front ~k:2 sp in
  let best0 =
    measure_front
      (hq0, Cost.weighted_memo_hc cache ~db hq0)
      (List.filter_map Saturate.hquery_of_wterm front)
  in
  (* Measured-cost descent inside the e-graph: re-anchor the witness
     deviations on each measured winner and keep going while the
     measured cost improves.  Each round is a new one-substitution
     neighborhood of a spelling the weights never ranked, so chains of
     individually-unremarkable rewrites (hoist, then simplify the
     hoisted residue) become reachable. *)
  let rec descend (best_hq, best_cost) rounds =
    if rounds = 0 then (best_hq, best_cost)
    else
      let devs =
        Saturate.anchor_deviations sp (Saturate.wterm_of_query best_hq)
      in
      let (hq', c') =
        measure_front (best_hq, best_cost)
          (List.filter_map Saturate.hquery_of_wterm devs)
      in
      if c' < best_cost then descend (hq', c') (rounds - 1)
      else (best_hq, best_cost)
  in
  (* When the source itself won the first round its neighborhood was
     already in the front — re-anchoring there would measure the same
     candidates again, pure overhead on the small saturated queries. *)
  let best_hq, best_cost =
    let wk = Kola_egraph.Lang.wkey (Saturate.wterm_of_query (fst best0)) in
    if wk = Kola_egraph.Lang.wkey (Saturate.wterm_of_query hq0) then best0
    else descend best0 3
  in
  let rev_path =
    match Saturate.path_to sp (Saturate.wterm_of_query best_hq) with
    | Some steps -> List.rev_map fst steps
    | None -> []
  in
  let stats = sp.Saturate.stats in
  outcome_of_hc ~saturation:stats ~cache ~stats0 ~istats0
    ~seen_states:stats.Saturate.e_classes
    ~best:{ ihq = best_hq; hrev_path = rev_path; hcost = best_cost }
    ~expanded:stats.Saturate.e_nodes
    ~stop:(stop_of_saturation config stats.Saturate.stop)
    ()

let explore ?(config = default_config) (q : Term.query) : outcome =
  Telemetry.span "search.explore" @@ fun () ->
  let outcome =
    match (config.engine, config.interned, resolved_jobs config) with
    | Egraph, _, _ -> explore_egraph ~config q
    | Bfs, true, 1 -> explore_hc_seq ~config q
    | Bfs, true, jobs -> explore_hc_par ~pool:(pool_for jobs) ~config q
    | Bfs, false, 1 -> explore_seq ~config q
    | Bfs, false, jobs -> explore_par ~pool:(pool_for jobs) ~config q
  in
  if Telemetry.enabled () then
    Telemetry.instant
      ~args:
        [
          ("reason", stop_reason_label outcome.stop);
          ("explored", string_of_int outcome.explored);
          ("cost", Printf.sprintf "%.3f" outcome.best.cost);
        ]
      "search.stop";
  outcome

(* Was [target] reached (modulo associativity) within the budget? *)
let reaches_seq ~config (q : Term.query) (target : Term.query) :
    string list option =
  let found = ref None in
  let seen = Term.Canonical.Table.create 256 in
  let truncated = ref false in
  let over = deadline_check config in
  let target_key = Term.Canonical.of_query target in
  let start_key = Term.Canonical.of_query q in
  let expanded = ref 0 in
  Term.Canonical.Table.replace seen start_key ();
  if Term.Canonical.equal start_key target_key then Some []
  else begin
    let rec level states depth =
      if depth >= config.max_depth || states = [] || !found <> None || over ()
      then ()
      else begin
        let next = ref [] in
        List.iter
          (fun (q0, rev_path) ->
            if !expanded < config.max_states && !found = None then begin
              incr expanded;
              List.iter
                (fun (rule_name, q') ->
                  let key = Term.Canonical.of_query q' in
                  if not (Term.Canonical.Table.mem seen key) then begin
                    Term.Canonical.Table.replace seen key ();
                    let rev_path' = rule_name :: rev_path in
                    if Term.Canonical.equal key target_key then
                      found := Some (List.rev rev_path')
                    else next := (q', rev_path') :: !next
                  end)
                (successors_report ~max_positions:config.max_positions
                   ~truncated ~indexed:config.indexed config.rules q0)
            end)
          states;
        level (List.rev !next) (depth + 1)
      end
    in
    level [ (q, []) ] 0;
    !found
  end

(* Parallel [reaches]: same fan-out/merge phasing as [explore_par], no
   costing.  The merge stops at the first successor (in stable item
   order) whose key equals the target's — the same state and firing the
   sequential loop would have found first. *)
let reaches_par ~pool ~config (q : Term.query) (target : Term.query) :
    string list option =
  let found = ref None in
  let seen = Term.Canonical.Table.create 256 in
  let over = deadline_check config in
  let target_key = Term.Canonical.of_query target in
  let start_key = Term.Canonical.of_query q in
  let expanded = ref 0 in
  Term.Canonical.Table.replace seen start_key ();
  if Term.Canonical.equal start_key target_key then Some []
  else begin
    let expand (q0, _rev_path) =
      let tr = ref false in
      let succs =
        successors_report ~max_positions:config.max_positions ~truncated:tr
          ~indexed:config.indexed config.rules q0
      in
      List.filter_map
        (fun (rule_name, q') ->
          let key = Term.Canonical.of_query q' in
          if Term.Canonical.Table.mem seen key then None
          else Some (rule_name, q', key))
        succs
    in
    let rec level states depth =
      if
        depth >= config.max_depth || states = [] || !found <> None || over ()
      then ()
      else begin
        let n = List.length states in
        let take = min (config.max_states - !expanded) n in
        if take > 0 then begin
          let batch = Array.of_list (take_n take states) in
          let results = pool_map pool expand batch in
          expanded := !expanded + take;
          let next = ref [] in
          (try
             Array.iteri
               (fun i succs ->
                 let _, rev_path = batch.(i) in
                 List.iter
                   (fun (rule_name, q', key) ->
                     if not (Term.Canonical.Table.mem seen key) then begin
                       Term.Canonical.Table.replace seen key ();
                       let rev_path' = rule_name :: rev_path in
                       if Term.Canonical.equal key target_key then begin
                         found := Some (List.rev rev_path');
                         raise Exit
                       end
                       else next := (q', rev_path') :: !next
                     end)
                   succs)
               results
           with Exit -> ());
          level (List.rev !next) (depth + 1)
        end
      end
    in
    level [ (q, []) ] 0;
    !found
  end

(* Interned [reaches]: the same BFS with [Term.Hc.query_key] dedup and
   target test.  Because query keys partition interned queries exactly as
   canonical keys partition plain ones, the derivation found (and its
   firing order) is the one the legacy loop finds. *)
let reaches_hc_seq ~config (q : Term.query) (target : Term.query) :
    string list option =
  let found = ref None in
  let seen = Term.Hc.Qtable.create 256 in
  let truncated = ref false in
  let over = deadline_check config in
  let target_key = Term.Hc.query_key (Term.Hc.of_query target) in
  let hq0 = Term.Hc.of_query q in
  let start_key = Term.Hc.query_key hq0 in
  let expanded = ref 0 in
  Term.Hc.Qtable.replace seen start_key ();
  if start_key = target_key then Some []
  else begin
    let rec level states depth =
      if depth >= config.max_depth || states = [] || !found <> None || over ()
      then ()
      else begin
        let next = ref [] in
        List.iter
          (fun (hq, rev_path) ->
            if !expanded < config.max_states && !found = None then begin
              incr expanded;
              List.iter
                (fun (rule_name, hq') ->
                  let key = Term.Hc.query_key hq' in
                  if not (Term.Hc.Qtable.mem seen key) then begin
                    Term.Hc.Qtable.replace seen key ();
                    let rev_path' = rule_name :: rev_path in
                    if key = target_key then
                      found := Some (List.rev rev_path')
                    else next := (hq', rev_path') :: !next
                  end)
                (successors_hc_report ~max_positions:config.max_positions
                   ~truncated ~indexed:config.indexed config.rules hq)
            end)
          states;
        level (List.rev !next) (depth + 1)
      end
    in
    level [ (hq0, []) ] 0;
    !found
  end

let reaches_hc_par ~pool ~config (q : Term.query) (target : Term.query) :
    string list option =
  let found = ref None in
  let seen = Term.Hc.Qtable.create 256 in
  let over = deadline_check config in
  let target_key = Term.Hc.query_key (Term.Hc.of_query target) in
  let hq0 = Term.Hc.of_query q in
  let start_key = Term.Hc.query_key hq0 in
  let expanded = ref 0 in
  Term.Hc.Qtable.replace seen start_key ();
  if start_key = target_key then Some []
  else begin
    let expand (hq, _rev_path) =
      let tr = ref false in
      let succs =
        successors_hc_report ~max_positions:config.max_positions ~truncated:tr
          ~indexed:config.indexed config.rules hq
      in
      List.filter_map
        (fun (rule_name, hq') ->
          let key = Term.Hc.query_key hq' in
          if Term.Hc.Qtable.mem seen key then None
          else Some (rule_name, hq', key))
        succs
    in
    let rec level states depth =
      if
        depth >= config.max_depth || states = [] || !found <> None || over ()
      then ()
      else begin
        let n = List.length states in
        let take = min (config.max_states - !expanded) n in
        if take > 0 then begin
          let batch = Array.of_list (take_n take states) in
          let results = pool_map pool expand batch in
          expanded := !expanded + take;
          let next = ref [] in
          (try
             Array.iteri
               (fun i succs ->
                 let _, rev_path = batch.(i) in
                 List.iter
                   (fun (rule_name, hq', key) ->
                     if not (Term.Hc.Qtable.mem seen key) then begin
                       Term.Hc.Qtable.replace seen key ();
                       let rev_path' = rule_name :: rev_path in
                       if key = target_key then begin
                         found := Some (List.rev rev_path');
                         raise Exit
                       end
                       else next := (hq', rev_path') :: !next
                     end)
                   succs)
               results
           with Exit -> ());
          level (List.rev !next) (depth + 1)
        end
      end
    in
    level [ (hq0, []) ] 0;
    !found
  end

(* Saturation-based reachability: equivalence is a same-e-class check
   after saturating with the target as an early-exit probe, and the
   derivation is replayed out of the proof forest (assoc scaffolding
   dropped, reversed steps renamed "r" ↔ "r-1"). *)
let reaches_egraph ~config (q : Term.query) (target : Term.query) :
    (string * Term.query) list option =
  let hq0 = Term.Hc.of_query q and ht = Term.Hc.of_query target in
  let sp =
    Saturate.saturate ~rules:config.rules ~budgets:(egraph_budgets_of config)
      ?pool:(egraph_pool config) ~target:ht hq0
  in
  Saturate.path sp

let reaches ?(config = default_config) (q : Term.query)
    (target : Term.query) : string list option =
  Telemetry.span "search.reaches" @@ fun () ->
  match (config.engine, config.interned, resolved_jobs config) with
  | Egraph, _, _ ->
    Option.map (List.map fst) (reaches_egraph ~config q target)
  | Bfs, true, 1 -> reaches_hc_seq ~config q target
  | Bfs, true, jobs -> reaches_hc_par ~pool:(pool_for jobs) ~config q target
  | Bfs, false, 1 -> reaches_seq ~config q target
  | Bfs, false, jobs -> reaches_par ~pool:(pool_for jobs) ~config q target

(* Recover the intermediate queries of a named derivation: follow the
   names through [successors], branching over the positions each rule
   fired at, until the list is exhausted at the target. *)
let replay_names ~config q (target : Term.query) (names : string list) :
    (string * Term.query) list option =
  let target_key = Term.Canonical.of_query target in
  let rec go q = function
    | [] ->
      if Term.Canonical.equal (Term.Canonical.of_query q) target_key then
        Some []
      else None
    | name :: rest ->
      List.fold_left
        (fun acc (n, q') ->
          match acc with
          | Some _ -> acc
          | None ->
            if String.equal n name then
              Option.map (fun tl -> (name, q') :: tl) (go q' rest)
            else None)
        None
        (successors ~max_positions:config.max_positions config.rules q)
  in
  go q names

let reaches_steps ?(config = default_config) (q : Term.query)
    (target : Term.query) : (string * Term.query) list option =
  match config.engine with
  | Egraph -> reaches_egraph ~config q target
  | Bfs -> (
    match reaches ~config q target with
    | None -> None
    | Some names -> replay_names ~config q target names)

(* A derivation step named "r" replays rule r as listed; "r-1" replays
   its {!Rewrite.Rule.flip}.  Exact names win: a catalog that already
   lists "r12-1" resolves to it before any flipping. *)
let resolve_rule rules name =
  let find n =
    List.find_opt (fun r -> String.equal r.Rewrite.Rule.name n) rules
  in
  match find name with
  | Some r -> Some r
  | None ->
    if Filename.check_suffix name "-1" then
      Option.map Rewrite.Rule.flip
        (find (String.sub name 0 (String.length name - 2)))
    else Option.map Rewrite.Rule.flip (find (name ^ "-1"))

let validate_path ?schema ?(rules = default_config.rules) (q : Term.query)
    (steps : (string * Term.query) list) : bool =
  let fires src r dst =
    let key = Term.Canonical.of_query dst in
    List.exists
      (fun (_, q2) -> Term.Canonical.equal (Term.Canonical.of_query q2) key)
      (successors ?schema ~max_positions:max_int [ r ] src)
  in
  let ok_step q (name, q') =
    match resolve_rule rules name with
    | None -> false
    | Some r ->
      (* A rule that erases a hole ("Kp(T) ⊕ f ≡ Kp(T)") leaves that hole
         unbound when fired right-to-left, so its successors carry a
         literal hole no concrete query equals.  The same instance is
         witnessed by firing the flip the other way — which re-binds the
         hole and is always ground — so a step passes in either
         orientation. *)
      fires q r q' || fires q' (Rewrite.Rule.flip r) q
  in
  let rec go q = function
    | [] -> true
    | (name, q') :: rest -> ok_step q (name, q') && go q' rest
  in
  go q steps

(* Exploration-based optimization over the declarative rule catalog:
   bounded breadth-first search of the rewrite space, deduplicating states
   modulo associativity, returning the cheapest plan found.

   This is the "strategies for their use" dimension the paper explicitly
   leaves open (Section 1.1) and later addresses with COKO: uninformed
   search discovers short derivations (Figure 4's T1K/T2K, Figure 6's code
   motion) from the catalog alone, but the 25-firing hidden-join derivation
   is far beyond any practical frontier — which is precisely the paper's
   motivation for rule blocks.  The ablation bench quantifies this.

   Performance layer (see DESIGN.md, "Engine internals & performance"):
   successor enumeration prunes rules through the head-symbol index, states
   are deduplicated with hashed canonical keys instead of pretty-printed
   strings, and costing is memoized across explorations. *)

open Kola

type config = {
  rules : Rewrite.Rule.t list;
  max_depth : int;     (** maximum derivation length *)
  max_states : int;    (** exploration budget (states expanded) *)
  max_positions : int;
      (** positions per rule enumerated by {!successors}; truncation is
          reported through [frontier_exhausted], never silent *)
  indexed : bool;      (** prune rules through the head-symbol index *)
  cost_cache : Cost.cache option;
      (** [None] uses a cache shared by every exploration *)
  sample_db : (string * Value.t) list;  (** database used for costing *)
}

let default_config =
  {
    rules = Rules.Catalog.all;
    max_depth = 6;
    max_states = 400;
    max_positions = 64;
    indexed = true;
    cost_cache = None;
    sample_db = Datagen.Store.db (Datagen.Store.tiny ());
  }

(* The shared cost cache behind [cost_cache = None]: explorations of the
   same plans (re-runs, pipeline stages, reaches-then-explore) reuse each
   other's measurements.  It flushes itself when the database changes. *)
let shared_cache = Cost.cache ()

(* Enumerate every single-firing successor of [q]: each rule at each
   position.  Positions are enumerated with a skip counter: the strategy
   fires only at the k-th matching position, for k = 0, 1, ... until no
   position is left or [max_positions] is reached — in which case
   [truncated] is set so callers never mistake a cap for exhaustion.  With
   [~indexed:true], rules whose pattern head occurs nowhere in the term are
   skipped without walking it. *)
let successors_report ?schema ~max_positions ~truncated ~indexed
    (rules : Rewrite.Rule.t list) (q : Term.query) :
    (string * Term.query) list =
  let keep =
    if indexed then
      let presence = Rewrite.Index.presence_of_query q in
      Rewrite.Index.may_fire presence
    else fun _ -> true
  in
  let fun_rules, query_rules =
    List.partition
      (fun r ->
        match r.Rewrite.Rule.body with
        | Rewrite.Rule.Fun_rule _ | Rewrite.Rule.Pred_rule _ -> true
        | Rewrite.Rule.Query_rule _ -> false)
      rules
  in
  let from_query_rules =
    List.filter_map
      (fun r ->
        Option.map
          (fun q' -> (r.Rewrite.Rule.name, q'))
          (Rewrite.Rule.apply_query ?schema r q))
      query_rules
  in
  let at_kth r k =
    let remaining = ref k in
    let s tgt =
      match Rewrite.Strategy.of_rule ?schema r tgt with
      | Some t ->
        if !remaining = 0 then Some t
        else begin
          decr remaining;
          None
        end
      | None -> None
    in
    Option.map
      (fun body -> { q with Term.body })
      (Rewrite.Strategy.apply_func (Rewrite.Strategy.once_topdown s) q.Term.body)
  in
  let from_fun_rules =
    List.concat_map
      (fun r ->
        if not (keep r) then []
        else
          let rec collect k acc =
            if k >= max_positions then begin
              if Option.is_some (at_kth r k) then truncated := true;
              List.rev acc
            end
            else
              match at_kth r k with
              | Some q' -> collect (k + 1) ((r.Rewrite.Rule.name, q') :: acc)
              | None -> List.rev acc
          in
          collect 0 [])
      fun_rules
  in
  from_query_rules @ from_fun_rules

let successors ?schema ?(max_positions = 64) (rules : Rewrite.Rule.t list)
    (q : Term.query) : (string * Term.query) list =
  successors_report ?schema ~max_positions ~truncated:(ref false)
    ~indexed:true rules q

type state = {
  query : Term.query;
  path : string list;  (** rules fired, outermost-first *)
  cost : float;
}

type outcome = {
  best : state;
  explored : int;       (** states expanded *)
  frontier_exhausted : bool;
      (** the whole reachable space within depth was covered: neither the
          state budget nor the per-rule position cap truncated anything *)
  cache_hits : int;     (** cost-cache hits during this exploration *)
  cache_misses : int;
}

(* Pretty-printed canonical form — the legacy dedup key, kept for
   diagnostics and for the equivalence property tests against
   [Term.Canonical]. *)
let canonical q =
  Pretty.query_to_string
    { q with Term.body = Term.reassoc_func q.Term.body }

let cache_of config =
  match config.cost_cache with Some c -> c | None -> shared_cache

let cost_of ~cache ~db q = Cost.weighted_memo cache ~db q

(* Internal search states carry their path cons-reversed (innermost rule
   first); reversing once at the end avoids the quadratic [path @ [name]]
   accumulation in the BFS loop. *)
type istate = { iquery : Term.query; rev_path : string list; icost : float }

(* Bounded BFS with global dedup; returns the cheapest state seen. *)
let explore ?(config = default_config) (q : Term.query) : outcome =
  let seen = Term.Canonical.Table.create 256 in
  let db = config.sample_db in
  let cache = cache_of config in
  let hits0, misses0 = Cost.cache_stats cache in
  let truncated = ref false in
  let start = { iquery = q; rev_path = []; icost = cost_of ~cache ~db q } in
  Term.Canonical.Table.replace seen (Term.Canonical.of_query q) ();
  let best = ref start in
  let expanded = ref 0 in
  let exhausted = ref true in
  let rec level states depth =
    if depth >= config.max_depth || states = [] then ()
    else begin
      let next = ref [] in
      List.iter
        (fun st ->
          if !expanded >= config.max_states then exhausted := false
          else begin
            incr expanded;
            List.iter
              (fun (rule_name, q') ->
                let key = Term.Canonical.of_query q' in
                if not (Term.Canonical.Table.mem seen key) then begin
                  Term.Canonical.Table.replace seen key ();
                  let st' =
                    {
                      iquery = q';
                      rev_path = rule_name :: st.rev_path;
                      icost = cost_of ~cache ~db q';
                    }
                  in
                  if st'.icost < !best.icost then best := st';
                  next := st' :: !next
                end)
              (successors_report ~max_positions:config.max_positions
                 ~truncated ~indexed:config.indexed config.rules st.iquery)
          end)
        states;
      level (List.rev !next) (depth + 1)
    end
  in
  level [ start ] 0;
  if !truncated then exhausted := false;
  let hits1, misses1 = Cost.cache_stats cache in
  {
    best =
      {
        query = !best.iquery;
        path = List.rev !best.rev_path;
        cost = !best.icost;
      };
    explored = !expanded;
    frontier_exhausted = !exhausted;
    cache_hits = hits1 - hits0;
    cache_misses = misses1 - misses0;
  }

(* Was [target] reached (modulo associativity) within the budget? *)
let reaches ?(config = default_config) (q : Term.query)
    (target : Term.query) : string list option =
  let found = ref None in
  let seen = Term.Canonical.Table.create 256 in
  let truncated = ref false in
  let target_key = Term.Canonical.of_query target in
  let start_key = Term.Canonical.of_query q in
  let expanded = ref 0 in
  Term.Canonical.Table.replace seen start_key ();
  if Term.Canonical.equal start_key target_key then Some []
  else begin
    let rec level states depth =
      if depth >= config.max_depth || states = [] || !found <> None then ()
      else begin
        let next = ref [] in
        List.iter
          (fun (q0, rev_path) ->
            if !expanded < config.max_states && !found = None then begin
              incr expanded;
              List.iter
                (fun (rule_name, q') ->
                  let key = Term.Canonical.of_query q' in
                  if not (Term.Canonical.Table.mem seen key) then begin
                    Term.Canonical.Table.replace seen key ();
                    let rev_path' = rule_name :: rev_path in
                    if Term.Canonical.equal key target_key then
                      found := Some (List.rev rev_path')
                    else next := (q', rev_path') :: !next
                  end)
                (successors_report ~max_positions:config.max_positions
                   ~truncated ~indexed:config.indexed config.rules q0)
            end)
          states;
        level (List.rev !next) (depth + 1)
      end
    in
    level [ (q, []) ] 0;
    !found
  end

(** The end-to-end optimizer: OQL → AQUA → KOLA → COKO normalization and
    hidden-join untangling → cost-based choice among candidate plans
    (original vs untangled × naive vs hashed backend).

    The {!report} is an explanation artifact: each phase records its
    output, and the trace names every rule fired. *)

type plan = {
  label : string;  (** "original" or "untangled" *)
  query : Kola.Term.query;
  backend : Kola.Eval.backend;
  dedup : Kola.Eval.dedup;
      (** deferred only offered for aggregate-free plans *)
  cost : Cost.t;
}

type report = {
  source : string option;
  aqua : Aqua.Ast.expr;
  translated : Kola.Term.query;
  normalized : Kola.Term.query;
  untangled : Kola.Term.query option;
  trace : Rewrite.Engine.trace;
  blocks : (string * bool) list;
  candidates : plan list;
  chosen : plan;
  cost_cache_hits : int;
      (** plan-cache hits while costing this report's candidates *)
  cost_cache_misses : int;  (** candidate evaluations actually run *)
}

val backend_name : Kola.Eval.backend -> string
val dedup_name : Kola.Eval.dedup -> string

val contains_agg : Kola.Term.func -> bool
(** Whether a plan observes intermediate multiplicities (has an
    aggregate), which disables the deferred-dedup dimension. *)

val optimize :
  ?source:string ->
  ?plan_cache:Cost.plan_cache ->
  db:(string * Kola.Value.t) list ->
  Aqua.Ast.expr ->
  report
(** [plan_cache] defaults to one cache shared across calls, so repeated
    (backend × dedup) measurements of canonically-equal plans hit the
    memo; the report carries this call's hit/miss deltas. *)

val optimize_oql :
  ?extents:string list ->
  ?plan_cache:Cost.plan_cache ->
  db:(string * Kola.Value.t) list ->
  string ->
  report
(** @raise Oql.Parser.Error on bad input. *)

val run : db:(string * Kola.Value.t) list -> report -> Kola.Value.t
(** Execute the chosen plan. *)

val execute :
  ?backend:Kola_exec.Exec.backend ->
  ?layout:Kola_exec.Exec.layout ->
  ?jobs:int ->
  ?pool:Kola_parallel.Pool.t ->
  ?coldb:Kola.Colstore.db ->
  db:(string * Kola.Value.t) list ->
  report ->
  Kola.Value.t * Kola_exec.Exec.stats
(** Execute the chosen plan through a {!Kola_exec.Exec} backend.  The
    default is the interpreter backend the optimizer chose;
    [~backend:Compiled] runs the fused-loop closures instead, falling
    back to the interpreter on unsupported plans (recorded in the
    stats).  Dedup always follows the chosen plan.  [layout], [jobs],
    [pool] and [coldb] are forwarded to {!Kola_exec.Exec.run}: under
    [Columnar] the compiled backend binds extent scans to the columnar
    store and fans pure kernels out over morsels. *)

val pp_report : report Fmt.t

(* Static well-formedness checks on rules, run over the whole catalog by
   the test suite.  A rule can be semantically certified ({!Cert}) yet
   still be a bad citizen — e.g. introduce holes its left-hand side never
   binds (instantiation would leave holes in the program), or fail to type
   even as a pattern.  These checks catch that class before certification
   spends any effort. *)

open Kola

type problem =
  | Unbound_rhs_hole of string
      (** a hole on the right-hand side that the left-hand side cannot bind *)
  | Lhs_is_a_bare_hole
      (** the rule would match absolutely everything *)
  | Side_does_not_type of string  (** which side, with the error *)
  | Unknown_precondition_hole of string
      (** a precondition refers to a hole the pattern does not contain *)

(* Holes are sort-tagged internally ("f:g" = function hole g); strip the
   tag for display. *)
let untag h =
  match String.split_on_char ':' h with
  | [ ("f" | "p" | "v"); base ] -> base
  | _ -> h

let pp_problem ppf = function
  | Unbound_rhs_hole h ->
    Fmt.pf ppf "right-hand side hole ?%s is never bound" (untag h)
  | Lhs_is_a_bare_hole -> Fmt.string ppf "left-hand side is a bare hole"
  | Side_does_not_type msg -> Fmt.pf ppf "pattern does not type: %s" msg
  | Unknown_precondition_hole h ->
    Fmt.pf ppf "precondition names unknown hole ?%s" h

let holes_of_side = function
  | `F f -> Term.holes_func f
  | `P p -> Term.holes_func (Term.Iterate (p, Term.Id))
  | `Q (f, v) -> Term.holes_func f @ Term.holes_func (Term.Kf v)

let sides (r : Rewrite.Rule.t) =
  match r.Rewrite.Rule.body with
  | Rewrite.Rule.Fun_rule (l, rr) -> (`F l, `F rr)
  | Rewrite.Rule.Pred_rule (l, rr) -> (`P l, `P rr)
  | Rewrite.Rule.Query_rule (l, rr) -> (`Q l, `Q rr)

let types schema = function
  | `F f -> (
    match Typing.func_ty schema f with
    | _ -> None
    | exception Typing.Type_error msg -> Some msg
    | exception Schema.Schema_error msg -> Some msg)
  | `P p -> (
    match Typing.pred_ty schema p with
    | _ -> None
    | exception Typing.Type_error msg -> Some msg
    | exception Schema.Schema_error msg -> Some msg)
  | `Q (f, _) -> (
    match Typing.func_ty schema f with
    | _ -> None
    | exception Typing.Type_error msg -> Some msg
    | exception Schema.Schema_error msg -> Some msg)

(* The schema-free subset: hole scoping only.  This is what the COKO
   loader runs at parse time — a pack must not depend on any particular
   schema just to load, but an RHS-only hole would survive substitution
   and miscompile downstream, so it can never be admitted. *)
let scoping (r : Rewrite.Rule.t) : problem list =
  let lhs, rhs = sides r in
  let lhs_holes = holes_of_side lhs in
  let rhs_holes = holes_of_side rhs in
  let unbound =
    List.filter_map
      (fun h -> if List.mem h lhs_holes then None else Some (Unbound_rhs_hole h))
      rhs_holes
  in
  let bare =
    match lhs with
    | `F (Term.Fhole _) | `P (Term.Phole _) -> [ Lhs_is_a_bare_hole ]
    | _ -> []
  in
  let precond =
    List.filter_map
      (fun pre ->
        (* the hole may be of any sort: function, predicate or value *)
        let known =
          List.exists
            (fun tag -> List.mem (tag ^ pre.Rewrite.Rule.hole) lhs_holes)
            [ "f:"; "p:"; "v:" ]
        in
        if known then None
        else Some (Unknown_precondition_hole pre.Rewrite.Rule.hole))
      r.Rewrite.Rule.preconditions
  in
  unbound @ bare @ precond

let check ?(schema = Schema.paper) (r : Rewrite.Rule.t) : problem list =
  let lhs, rhs = sides r in
  let typing =
    List.filter_map
      (fun (name, side) ->
        Option.map (fun msg -> Side_does_not_type (name ^ ": " ^ msg)) (types schema side))
      [ ("lhs", lhs); ("rhs", rhs) ]
  in
  scoping r @ typing

let check_all ?schema rules =
  List.filter_map
    (fun r ->
      match check ?schema r with
      | [] -> None
      | problems -> Some (r, problems))
    rules

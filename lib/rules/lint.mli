(** Static well-formedness checks on rules, complementing the semantic
    certification of {!Cert}: unbound right-hand-side holes, catch-all
    left-hand sides, untypable patterns, preconditions naming unknown
    holes. *)

type problem =
  | Unbound_rhs_hole of string
  | Lhs_is_a_bare_hole
  | Side_does_not_type of string
  | Unknown_precondition_hole of string

val pp_problem : problem Fmt.t

val scoping : Rewrite.Rule.t -> problem list
(** The schema-free subset — hole scoping only (unbound RHS holes,
    catch-all LHS, preconditions naming unknown holes).  Run by the COKO
    loader at parse time, where no schema is in play yet. *)

val check : ?schema:Kola.Schema.t -> Rewrite.Rule.t -> problem list

val check_all :
  ?schema:Kola.Schema.t ->
  Rewrite.Rule.t list ->
  (Rewrite.Rule.t * problem list) list
(** Rules with at least one problem. *)

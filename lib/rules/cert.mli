(** Rule certification — the reproduction's analogue of the paper's
    Larch/LP machine-checked proofs of 500 rules.

    Two strategies share one checking core.  [`Sampled] instantiates every
    hole with random well-typed terms from a pool over the paper schema and
    compares both sides' denotations on random inputs of the inferred input
    type.  [`Exhaustive] (small-scope) enumerates {e all} instantiations
    from a finite combinator grammar up to a depth bound and compares
    denotations on enumerated small inputs, shrinking the scope — and
    finally falling back to the sampler — when the space exceeds the check
    budget.  Testing, not proof — but it validates the same artifact and
    catches the same defect class (both refute the paper's printed rule 13;
    see test_rules_cert.ml).

    Verdicts are keyed by {!fingerprint} (a digest of the canonical rule
    rendering plus {!cert_version}) and persist across runs via {!Cache}. *)

val cert_version : int
(** Bumped when checking semantics change; part of every fingerprint and
    of the cache file header. *)

type mode =
  | Sampled
  | Exhaustive of int  (** the scope (grammar depth bound) it ran at *)

val mode_name : mode -> string

type result = {
  rule : Rewrite.Rule.t;
  instances : int;  (** well-typed instantiations exercised *)
  checks : int;     (** (instance, input) comparisons made *)
  counterexample : (Rewrite.Subst.t * Kola.Value.t) option;
  mode : mode;      (** the strategy that actually ran *)
}

type ('a, 'b) either = L of 'a | R of 'b

type pool = {
  funcs : Kola.Term.func list;
  preds : Kola.Term.pred list;
  values : Kola.Value.t list;
}

val default_pool : pool

val value_of_ty : Datagen.Store.rng -> Kola.Ty.t -> Kola.Value.t option
(** Random well-typed value, drawing objects from a fixed store. *)

type strategy = [ `Sampled | `Exhaustive | `Auto ]

val certify :
  ?schema:Kola.Schema.t -> ?samples:int -> ?inputs:int -> ?pool:pool ->
  ?seed:int -> ?strategy:strategy -> ?scope:int -> ?budget:int ->
  Rewrite.Rule.t -> result
(** Defaults: [`Sampled] with [samples = 60], [inputs = 12].  The
    exhaustive strategies use [scope] (default 2) and [budget] (default
    50_000 worst-case comparisons). *)

val certified : result -> bool
(** No counterexample and at least one real instantiation. *)

val certify_all :
  ?schema:Kola.Schema.t -> ?samples:int -> ?inputs:int -> ?pool:pool ->
  ?seed:int -> ?strategy:strategy -> ?scope:int -> ?budget:int ->
  Rewrite.Rule.t list -> result list

val pp_result : result Fmt.t

val fingerprint : Rewrite.Rule.t -> string
(** Stable digest of the rule's canonical (reassociated) rendering, its
    preconditions and {!cert_version}.  Independent of the rule's name and
    of hash-cons ids (which are process-dependent). *)

type verdict = {
  fingerprint : string;
  name : string;  (** rule name at certification time; informational *)
  ok : bool;
  vmode : mode;
  vinstances : int;
  vchecks : int;
  reason : string option;  (** rendered counterexample when refuted *)
  from_cache : bool;
}

val verdict_of_result : ?from_cache:bool -> result -> verdict

(** Persisted certificate cache: a versioned line-oriented text file keyed
    by {!fingerprint}.  Missing, corrupt or version-skewed files load as
    empty — certificates are only ever a performance artifact. *)
module Cache : sig
  type t

  val in_memory : unit -> t
  (** No backing file; {!save} is a no-op. *)

  val load : string -> t
  val save : t -> unit
  (** Atomic (write-then-rename); only writes when dirty. *)

  val hits : t -> int
  val misses : t -> int
  val size : t -> int
end

val certify_cached :
  ?schema:Kola.Schema.t -> ?samples:int -> ?inputs:int -> ?pool:pool ->
  ?seed:int -> ?strategy:strategy -> ?scope:int -> ?budget:int ->
  cache:Cache.t -> Rewrite.Rule.t -> verdict
(** Cache-through: O(1) on a fingerprint hit, a full certification run
    (recorded into [cache]) on a miss.  Default strategy is [`Auto].
    The caller owns persistence via {!Cache.save}. *)

val pp_verdict : verdict Fmt.t

(* Figure 8: the rules used by the five-step hidden-join untangling strategy
   of Section 4.1.

   Rule 17b is the g = id specialisation of rule 17; the paper obtains it by
   first applying rule 2 right-to-left to manufacture the missing g.  Having
   the specialised rule keeps every step strictly simplifying, so the COKO
   blocks need no id-introduction. *)

open Kola
open Kola.Term
open Rewrite

let f = Fhole "f"
let g = Fhole "g"
let h = Fhole "h"
let j = Fhole "j"
let p = Phole "p"
let bset = Value.Hole "B"
let aset = Value.Hole "A"
let kp_t = Kp true

(* 17. iterate(Kp(T), ⟨j, g ∘ iter(p, f) ∘ ⟨id, h⟩⟩) ≡
         iterate(Kp(T), ⟨j ∘ π1, π2⟩) ∘
         iterate(Kp(T), ⟨π1, g ∘ π2⟩) ∘
         iterate(Kp(T), ⟨π1, iter(p, f)⟩) ∘
         iterate(Kp(T), ⟨id, h⟩) *)
let r17 =
  Rule.fun_rule ~name:"r17" ~description:"break up a complex iterate"
    (Iterate
       ( kp_t,
         Pairf (j, chain [ g; Iter (p, f); Pairf (Id, h) ]) ))
    (chain
       [
         Iterate (kp_t, Pairf (Compose (j, Pi1), Pi2));
         Iterate (kp_t, Pairf (Pi1, Compose (g, Pi2)));
         Iterate (kp_t, Pairf (Pi1, Iter (p, f)));
         Iterate (kp_t, Pairf (Id, h));
       ])

(* 17b. The g = id specialisation: no postprocessing function after the
   inner loop. *)
let r17b =
  Rule.fun_rule ~name:"r17b"
    ~description:"break up a complex iterate (no postprocessing)"
    (Iterate (kp_t, Pairf (j, Compose (Iter (p, f), Pairf (Id, h)))))
    (chain
       [
         Iterate (kp_t, Pairf (Compose (j, Pi1), Pi2));
         Iterate (kp_t, Pairf (Pi1, Iter (p, f)));
         Iterate (kp_t, Pairf (Id, h));
       ])

(* 18. iterate(Kp(T), id) ≡ id *)
let r18 =
  Rule.fun_rule ~name:"r18" ~description:"trivial iterate is the identity"
    (Iterate (kp_t, Id)) Id

(* 19. iterate(Kp(T), ⟨id, Kf(B)⟩) ! A ≡
       nest(π1, π2) ∘ ⟨join(Kp(T), id), π1⟩ ! [A, B]
   A query rule: it moves the constant set B into the query argument.  The
   set-valued precondition is load-bearing: the introduced join iterates
   B, so pairing every element with a *scalar* constant must not match. *)
let set_valued_b = [ { Rule.prop = Props.Set_valued; hole = "B" } ]

let r19 =
  Rule.query_rule ~name:"r19" ~description:"bottom out with a nest of a join"
    ~preconditions:set_valued_b
    (Iterate (kp_t, Pairf (Id, Kf bset)), aset)
    ( chain [ Nest (Pi1, Pi2); Pairf (Join (kp_t, Id), Pi1) ],
      Value.Pair (aset, bset) )

(* 19f. The function-level reading of rule 19:
   iterate(Kp(T), ⟨id, Kf(B)⟩) ≡
     nest(π1, π2) ∘ ⟨join(Kp(T), id), π1⟩ ∘ ⟨id, Kf(B)⟩.
   Unlike the query rule it applies anywhere in a composition chain, which
   is where GROUP BY desugaring leaves its hidden join (the key-projection
   step sits downstream). *)
let r19f =
  Rule.fun_rule ~name:"r19f"
    ~description:"bottom out mid-chain with a nest of a join"
    ~preconditions:set_valued_b
    (Iterate (kp_t, Pairf (Id, Kf bset)))
    (chain
       [
         Nest (Pi1, Pi2);
         Pairf (Join (kp_t, Id), Pi1);
         Pairf (Id, Kf bset);
       ])

(* 20. iterate(Kp(T), ⟨π1, iter(p, f)⟩) ∘ nest(π1, π2) ≡
       nest(π1, π2) ∘ (iterate(p, ⟨π1, f⟩) × id) *)
let r20 =
  Rule.fun_rule ~name:"r20" ~description:"pull nest above an iter step"
    (Compose (Iterate (kp_t, Pairf (Pi1, Iter (p, f))), Nest (Pi1, Pi2)))
    (Compose (Nest (Pi1, Pi2), Times (Iterate (p, Pairf (Pi1, f)), Id)))

(* 21. iterate(Kp(T), ⟨π1, flat ∘ π2⟩) ∘ nest(π1, π2) ≡
       nest(π1, π2) ∘ (unnest(π1, π2) × id) *)
let r21 =
  Rule.fun_rule ~name:"r21" ~description:"pull nest above a flatten step"
    (Compose
       (Iterate (kp_t, Pairf (Pi1, Compose (Flat, Pi2))), Nest (Pi1, Pi2)))
    (Compose (Nest (Pi1, Pi2), Times (Unnest (Pi1, Pi2), Id)))

(* 22. (iterate(p, ⟨π1, f⟩) × id) ∘ (unnest(π1, π2) × id) ≡
       (unnest(π1, π2) × id) ∘ (iterate(Kp(T), ⟨π1, iter(p, f)⟩) × id) *)
let r22 =
  Rule.fun_rule ~name:"r22" ~description:"pull unnest above an iterate step"
    (Compose
       ( Times (Iterate (p, Pairf (Pi1, f)), Id),
         Times (Unnest (Pi1, Pi2), Id) ))
    (Compose
       ( Times (Unnest (Pi1, Pi2), Id),
         Times (Iterate (kp_t, Pairf (Pi1, Iter (p, f))), Id) ))

(* 22b. The ⟨π1, f⟩ ≡ id degenerate case (f = π2, reduced by rule 3):
   (iterate(p, id) × id) ∘ (unnest(π1, π2) × id) ≡
   (unnest(π1, π2) × id) ∘ (iterate(Kp(T), ⟨π1, iter(p, π2)⟩) × id) *)
let r22b =
  Rule.fun_rule ~name:"r22b"
    ~description:"pull unnest above a selection step"
    (Compose (Times (Iterate (p, Id), Id), Times (Unnest (Pi1, Pi2), Id)))
    (Compose
       ( Times (Unnest (Pi1, Pi2), Id),
         Times (Iterate (kp_t, Pairf (Pi1, Iter (p, Pi2))), Id) ))

(* 23. (unnest(π1, π2) × id) ∘ (unnest(π1, π2) × id) ≡
       (unnest(π1, π2) × id) ∘ (iterate(Kp(T), ⟨π1, flat ∘ π2⟩) × id) *)
let r23 =
  Rule.fun_rule ~name:"r23" ~description:"coalesce stacked unnests"
    (Compose (Times (Unnest (Pi1, Pi2), Id), Times (Unnest (Pi1, Pi2), Id)))
    (Compose
       ( Times (Unnest (Pi1, Pi2), Id),
         Times (Iterate (kp_t, Pairf (Pi1, Compose (Flat, Pi2))), Id) ))

(* 24. (iterate(p, f) × id) ∘ ⟨join(q, g), π1⟩ ≡
       ⟨join(q & (p ⊕ g), f ∘ g), π1⟩ *)
let r24 =
  Rule.fun_rule ~name:"r24" ~description:"absorb an iterate into the join"
    (Compose (Times (Iterate (p, f), Id), Pairf (Join (Phole "q", g), Pi1)))
    (Pairf
       ( Join (Andp (Phole "q", Oplus (p, g)), Compose (f, g)),
         Pi1 ))

let figure8 = [ r17; r17b; r18; r19; r19f; r20; r21; r22; r22b; r23; r24 ]

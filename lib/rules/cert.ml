(* Rule certification: the reproduction's analogue of the paper's Larch/LP
   machine-checked proofs ("we have constructed proofs of over 500 rules").

   Two strategies share one checking core:

   - [`Sampled] (the original): instantiate every hole with random
     well-typed terms drawn from pools over the paper schema, discard
     instantiations that do not type, and compare the two sides'
     denotations on random inputs of the inferred input type.

   - [`Exhaustive] (small-scope, in the Alloy tradition): enumerate *all*
     hole instantiations built from a finite combinator grammar up to a
     depth bound ([scope]), and compare denotations on *enumerated* small
     inputs per inferred type.  When the instantiation space at the
     requested scope exceeds the check [budget] the scope shrinks until it
     fits; if even scope 1 does not fit, certification falls back to the
     randomized checker ([`Auto] behaviour).

   Neither is proof — but it is the same artifact (an independently
   validated rule pool) and it catches the same defect class: both
   strategies reject the paper's printed rule 13 (see test_rules_cert).

   Verdicts are cacheable: {!fingerprint} digests the rule's canonical
   rendering (reassociated patterns + preconditions + {!cert_version}),
   deliberately *not* hash-cons ids, which are process-dependent.
   {!Cache} persists verdicts to a versioned file so re-certifying a rule
   pack is O(1) after the first load. *)

open Kola
open Kola.Term
module Subst = Rewrite.Subst
module Store = Datagen.Store
module Telemetry = Kola_telemetry.Telemetry

(* Bump when the checking semantics change: enumeration grammars, input
   universes, RNG draw order, comparison rules.  Part of both the cache
   file header and every fingerprint, so stale certificates can never be
   mistaken for current ones. *)
let cert_version = 2

type mode =
  | Sampled
  | Exhaustive of int  (** the scope (grammar depth bound) it ran at *)

let mode_name = function
  | Sampled -> "sampled"
  | Exhaustive s -> Fmt.str "exhaustive@%d" s

type result = {
  rule : Rewrite.Rule.t;
  instances : int;      (** well-typed instantiations exercised *)
  checks : int;         (** (instance, input) pairs compared *)
  counterexample : (Subst.t * Value.t) option;
  mode : mode;          (** the strategy that actually ran *)
}

type ('a, 'b) either = L of 'a | R of 'b

type pool = {
  funcs : func list;
  preds : pred list;
  values : Value.t list;
}

let store = Store.generate { Store.default_params with people = 14; vehicles = 10; seed = 99 }
let db = Store.db store

let person () = List.nth store.Store.persons 0
let vehicle () = List.nth store.Store.vehicles 0

let default_pool =
  {
    funcs =
      [
        Id;
        Prim "age";
        Prim "addr";
        Prim "child";
        Prim "cars";
        Prim "grgs";
        Prim "name";
        Compose (Prim "city", Prim "addr");
        Pairf (Prim "age", Prim "age");
        Pairf (Id, Prim "child");
        Kf (Value.Int 7);
        Kf (Value.set []);
        Iterate (Kp true, Prim "age");
        Iterate (Oplus (Gt, Pairf (Prim "age", Kf (Value.Int 30))), Id);
        Con (Oplus (Gt, Pairf (Prim "age", Kf (Value.Int 25))), Prim "child", Kf (Value.set []));
        Agg Count;
        Pi1;
        Pi2;
        Times (Prim "age", Prim "name");
        Flat;
      ];
    preds =
      [
        Kp true;
        Kp false;
        Eq;
        Gt;
        Leq;
        In;
        Oplus (Gt, Pairf (Prim "age", Kf (Value.Int 25)));
        Oplus (Leq, Pairf (Prim "age", Kf (Value.Int 40)));
        Oplus (Eq, Pairf (Compose (Prim "city", Prim "addr"), Kf (Value.Str "Boston")));
        Andp (Oplus (Gt, Pairf (Prim "age", Kf (Value.Int 10))), Kp true);
        Inv (Oplus (Gt, Pairf (Prim "age", Kf (Value.Int 50))));
        Cp (Gt, Value.Int 20);
        Conv Gt;
      ];
    values =
      [
        Value.Int 25;
        Value.Int 0;
        Value.Str "Boston";
        Value.set [];
        Value.Named "P";
        Value.Named "V";
        Value.set [ person () ];
        person ();
        vehicle ();
      ];
  }

(* Random well-typed value of type [ty], drawing objects from the store. *)
let rec value_of_ty rng (ty : Ty.t) : Value.t option =
  match ty with
  | Ty.Unit -> Some Value.Unit
  | Ty.Bool -> Some (Value.Bool (Store.int rng 2 = 0))
  | Ty.Int -> Some (Value.Int (Store.int rng 100 - 20))
  | Ty.Str -> Some (Value.Str (Store.pick rng [ "Boston"; "Providence"; "x" ]))
  | Ty.Pair (a, b) -> (
    match value_of_ty rng a, value_of_ty rng b with
    | Some va, Some vb -> Some (Value.Pair (va, vb))
    | _ -> None)
  | Ty.Set a | Ty.Bag a | Ty.List a ->
    let n = Store.int rng 4 in
    let elems = List.init n (fun _ -> value_of_ty rng a) in
    if List.for_all Option.is_some elems then
      Some (Value.set (List.map Option.get elems))
    else None
  | Ty.Obj "Person" -> Some (Store.pick rng store.Store.persons)
  | Ty.Obj "Vehicle" -> Some (Store.pick rng store.Store.vehicles)
  | Ty.Obj "Address" -> Some (Store.pick rng store.Store.addresses)
  | Ty.Obj _ -> None
  | Ty.Var _ ->
    (* unconstrained: any concrete type will do *)
    value_of_ty rng Ty.Int

(* Build a random substitution for the rule's holes. *)
let random_subst rng pool (holes : string list) : Subst.t =
  List.fold_left
    (fun subst hole ->
      match String.split_on_char ':' hole with
      | [ "f"; h ] -> { subst with Subst.funcs = (h, Store.pick rng pool.funcs) :: subst.Subst.funcs }
      | [ "p"; h ] -> { subst with Subst.preds = (h, Store.pick rng pool.preds) :: subst.Subst.preds }
      | [ "v"; h ] -> { subst with Subst.values = (h, Store.pick rng pool.values) :: subst.Subst.values }
      | _ -> subst)
    Subst.empty holes

let holes_of_rule (r : Rewrite.Rule.t) =
  let both f a b = f a @ f b in
  let uniq xs = List.sort_uniq String.compare xs in
  match r.Rewrite.Rule.body with
  | Rewrite.Rule.Fun_rule (l, rr) -> uniq (both Term.holes_func l rr)
  | Rewrite.Rule.Pred_rule (l, rr) ->
    (* wrap predicates in a dummy iterate to reuse holes_func *)
    uniq (both (fun p -> Term.holes_func (Iterate (p, Id))) l rr)
  | Rewrite.Rule.Query_rule ((lf, la), (rf, ra)) ->
    uniq
      (Term.holes_func lf @ Term.holes_func rf
      @ Term.holes_func (Kf la) @ Term.holes_func (Kf ra))

(* Compare both sides of an instantiated rule, drawing inputs of the
   inferred LHS input type from [inputs_for].  Shared by both strategies;
   only the input source differs. *)
let check_instance_with ~inputs_for schema (r : Rewrite.Rule.t)
    (subst : Subst.t) : (int, Value.t) either =
  let eval_both mk_l mk_r input_ty =
    let run mk v =
      try Ok (Eval.deep_resolve (Eval.ctx ~db ()) (mk v))
      with Eval.Error _ | Schema.Schema_error _ -> Error ()
    in
    let rec go vs checks =
      match vs () with
      | Seq.Nil -> L checks
      | Seq.Cons (v, rest) -> (
        match run mk_l v, run mk_r v with
        | Ok a, Ok b when Value.equal a b -> go rest (checks + 1)
        | Error (), Error () -> go rest (checks + 1)
        | Ok _, Ok _ | Ok _, Error () | Error (), Ok _ -> R v)
    in
    go (inputs_for input_ty) 0
  in
  match r.Rewrite.Rule.body with
  | Rewrite.Rule.Fun_rule (l, rr) -> (
    let l = Subst.apply_func subst l and rr = Subst.apply_func subst rr in
    match Typing.func_ty schema l, Typing.func_ty schema rr with
    | (lin, _), (rin, _) -> (
      (* require both sides to type; use the more specific input type *)
      let input_ty = match lin with Ty.Var _ -> rin | t -> t in
      eval_both
        (fun v -> Eval.eval_func ~db l v)
        (fun v -> Eval.eval_func ~db rr v)
        input_ty)
    | exception Typing.Type_error _ | exception Schema.Schema_error _ -> L 0)
  | Rewrite.Rule.Pred_rule (l, rr) -> (
    let l = Subst.apply_pred subst l and rr = Subst.apply_pred subst rr in
    match Typing.pred_ty schema l, Typing.pred_ty schema rr with
    | lin, rin -> (
      let input_ty = match lin with Ty.Var _ -> rin | t -> t in
      eval_both
        (fun v -> Value.Bool (Eval.eval_pred ~db l v))
        (fun v -> Value.Bool (Eval.eval_pred ~db rr v))
        input_ty)
    | exception Typing.Type_error _ | exception Schema.Schema_error _ -> L 0)
  | Rewrite.Rule.Query_rule ((lf, la), (rf, ra)) -> (
    let lf = Subst.apply_func subst lf and rf = Subst.apply_func subst rf in
    let la = Subst.apply_value subst la and ra = Subst.apply_value subst ra in
    match
      ( Eval.eval_query ~db (Term.query lf la),
        Eval.eval_query ~db (Term.query rf ra) )
    with
    | a, b when Value.equal a b -> L 1
    | _ -> R la
    | exception Eval.Error _ -> L 0
    | exception Typing.Type_error _ -> L 0
    | exception Schema.Schema_error _ -> L 0)

(* Up to [inputs] random values of [ty], drawn lazily so the RNG sees the
   same draw order as the pre-refactor checker (one draw per check). *)
let sampled_inputs rng ~inputs ty =
  let drawn = ref 0 in
  Seq.of_dispenser (fun () ->
      if !drawn >= inputs then None
      else begin
        incr drawn;
        value_of_ty rng ty
      end)

(* ------------------------------------------------------------------ *)
(* Small-scope enumeration: a finite combinator grammar indexed by depth,
   and finite input universes per type.  Everything here is deterministic
   and ordered, so a verdict at a given (scope, cert_version) is a stable
   fact about the rule. *)

module Enum = struct
  (* Depth-1 atoms.  Small on purpose: scope-2 closures are quadratic in
     these lists and every instantiation is denotationally compared. *)
  let funcs1 =
    [
      Id;
      Prim "age";
      Prim "addr";
      Prim "child";
      Prim "name";
      Prim "cars";
      Kf (Value.Int 1);
      Kf (Value.set []);
      Pi1;
      Pi2;
      Flat;
      Agg Count;
    ]

  let preds1 = [ Kp true; Kp false; Eq; Gt; Leq; In ]

  let values1 =
    [
      Value.Int 0;
      Value.Int 25;
      Value.Str "Boston";
      Value.set [];
      Value.Named "P";
      person ();
      vehicle ();
    ]

  let memo_f : (int, func list) Hashtbl.t = Hashtbl.create 4
  let memo_p : (int, pred list) Hashtbl.t = Hashtbl.create 4

  let rec funcs d =
    if d <= 1 then funcs1
    else
      match Hashtbl.find_opt memo_f d with
      | Some fs -> fs
      | None ->
        let fs = funcs (d - 1) and ps = preds (d - 1) in
        let all =
          fs
          @ List.concat_map (fun f -> List.map (fun g -> Compose (f, g)) fs) fs
          @ List.concat_map (fun f -> List.map (fun g -> Pairf (f, g)) fs) fs
          @ List.concat_map (fun p -> List.map (fun f -> Iterate (p, f)) fs) ps
        in
        Hashtbl.add memo_f d all;
        all

  and preds d =
    if d <= 1 then preds1
    else
      match Hashtbl.find_opt memo_p d with
      | Some ps -> ps
      | None ->
        let fs = funcs (d - 1) and ps = preds (d - 1) in
        let all =
          ps
          @ List.concat_map (fun p -> List.map (fun f -> Oplus (p, f)) fs) ps
          @ List.map (fun p -> Inv p) ps
          @ List.map (fun p -> Conv p) ps
        in
        Hashtbl.add memo_p d all;
        all

  let values d =
    if d <= 1 then values1
    else
      values1
      @ List.concat_map
          (fun a -> List.map (fun b -> Value.Pair (a, b)) values1)
          values1
      @ List.map (fun v -> Value.set [ v ]) values1

  let take n l = List.filteri (fun i _ -> i < n) l

  (* Finite input universe per type; capped by the caller.  The integers
     straddle the age thresholds the pool predicates test. *)
  let rec inputs_of_ty (ty : Ty.t) : Value.t list =
    match ty with
    | Ty.Unit -> [ Value.Unit ]
    | Ty.Bool -> [ Value.Bool true; Value.Bool false ]
    | Ty.Int ->
      [ Value.Int (-1); Value.Int 0; Value.Int 1; Value.Int 26; Value.Int 30 ]
    | Ty.Str -> [ Value.Str "Boston"; Value.Str "x" ]
    | Ty.Pair (a, b) ->
      let va = take 4 (inputs_of_ty a) and vb = take 4 (inputs_of_ty b) in
      List.concat_map (fun x -> List.map (fun y -> Value.Pair (x, y)) vb) va
    | Ty.Set a | Ty.Bag a | Ty.List a ->
      let u = take 3 (inputs_of_ty a) in
      let singles = List.map (fun x -> Value.set [ x ]) u in
      let doubles =
        match u with
        | x :: rest -> List.map (fun y -> Value.set [ x; y ]) rest
        | [] -> []
      in
      (Value.set [] :: singles) @ doubles
    | Ty.Obj "Person" -> take 3 store.Store.persons
    | Ty.Obj "Vehicle" -> take 2 store.Store.vehicles
    | Ty.Obj "Address" -> take 2 store.Store.addresses
    | Ty.Obj _ -> []
    | Ty.Var _ ->
      [ Value.Int 0; Value.Int 26; Value.set [ Value.Int 0; Value.Int 26 ] ]

  let max_inputs = 16
  let enum_inputs ty = List.to_seq (take max_inputs (inputs_of_ty ty))

  (* Candidates for one tagged hole at [scope]. *)
  let candidates scope hole : Subst.t -> Subst.t list =
    match String.split_on_char ':' hole with
    | [ "f"; h ] ->
      fun s ->
        List.map
          (fun f -> { s with Subst.funcs = (h, f) :: s.Subst.funcs })
          (funcs scope)
    | [ "p"; h ] ->
      fun s ->
        List.map
          (fun p -> { s with Subst.preds = (h, p) :: s.Subst.preds })
          (preds scope)
    | [ "v"; h ] ->
      fun s ->
        List.map
          (fun v -> { s with Subst.values = (h, v) :: s.Subst.values })
          (values scope)
    | _ -> fun s -> [ s ]

  let arity scope hole =
    match String.split_on_char ':' hole with
    | [ "f"; _ ] -> List.length (funcs scope)
    | [ "p"; _ ] -> List.length (preds scope)
    | [ "v"; _ ] -> List.length (values scope)
    | _ -> 1

  (* Worst-case (instance, input) comparisons at [scope], saturating at
     [cap] so hole-rich rules cannot overflow. *)
  let cost ~cap scope holes =
    List.fold_left
      (fun acc hole ->
        let n = acc * arity scope hole in
        if n > cap || n < acc then cap + 1 else n)
      max_inputs holes

  let substs scope holes : Subst.t Seq.t =
    List.fold_left
      (fun acc hole ->
        Seq.concat_map
          (fun s -> List.to_seq (candidates scope hole s))
          acc)
      (Seq.return Subst.empty) holes
end

(* ------------------------------------------------------------------ *)

type strategy = [ `Sampled | `Exhaustive | `Auto ]

(* Certify one rule.  [`Sampled]: [samples] random well-typed
   instantiations, each compared on [inputs] random inputs.
   [`Exhaustive]/[`Auto]: every instantiation from the scope-bounded
   grammar, shrinking the scope until its worst-case check count fits
   [budget] and falling back to the sampler when even scope 1 does not. *)
let certify ?(schema = Schema.paper) ?(samples = 60) ?(inputs = 12)
    ?(pool = default_pool) ?(seed = 2025) ?(strategy = `Sampled)
    ?(scope = 2) ?(budget = 50_000) (r : Rewrite.Rule.t) : result =
  let holes = holes_of_rule r in
  let sampled () =
    let rng = Store.rng (seed lxor Hashtbl.hash r.Rewrite.Rule.name) in
    let inputs_for = sampled_inputs rng ~inputs in
    let rec go tries instances checks =
      if instances >= samples || tries >= samples * 20 then
        { rule = r; instances; checks; counterexample = None; mode = Sampled }
      else
        let subst = random_subst rng pool holes in
        if not (Rewrite.Rule.check_preconditions schema r subst) then
          go (tries + 1) instances checks
        else
          match check_instance_with ~inputs_for schema r subst with
          | L 0 -> go (tries + 1) instances checks
          | L n -> go (tries + 1) (instances + 1) (checks + n)
          | R v ->
            {
              rule = r;
              instances;
              checks;
              counterexample = Some (subst, v);
              mode = Sampled;
            }
    in
    go 0 0 0
  in
  let exhaustive_at s =
    let instances = ref 0 and checks = ref 0 in
    let cex = ref None in
    let exception Refuted in
    (try
       Seq.iter
         (fun subst ->
           if Rewrite.Rule.check_preconditions schema r subst then
             match
               check_instance_with ~inputs_for:Enum.enum_inputs schema r subst
             with
             | L 0 -> ()
             | L n ->
               incr instances;
               checks := !checks + n
             | R v ->
               cex := Some (subst, v);
               raise Refuted)
         (Enum.substs s holes)
     with Refuted -> ());
    {
      rule = r;
      instances = !instances;
      checks = !checks;
      counterexample = !cex;
      mode = Exhaustive s;
    }
  in
  match strategy with
  | `Sampled -> sampled ()
  | `Exhaustive | `Auto ->
    let rec pick s =
      if s < 1 then None
      else if Enum.cost ~cap:budget s holes <= budget then Some s
      else pick (s - 1)
    in
    (match pick scope with
    | Some s -> exhaustive_at s
    | None -> sampled ())

let certified result = Option.is_none result.counterexample && result.instances > 0

let certify_all ?schema ?samples ?inputs ?pool ?seed ?strategy ?scope ?budget
    rules =
  List.map
    (fun r ->
      certify ?schema ?samples ?inputs ?pool ?seed ?strategy ?scope ?budget r)
    rules

let pp_result ppf r =
  match r.counterexample with
  | None ->
    Fmt.pf ppf "%-18s certified (%s, %d instances, %d checks)"
      r.rule.Rewrite.Rule.name (mode_name r.mode) r.instances r.checks
  | Some (_, v) ->
    Fmt.pf ppf "%-18s REFUTED on input %a" r.rule.Rewrite.Rule.name Value.pp v

(* ------------------------------------------------------------------ *)
(* Fingerprints and the persisted certificate cache. *)

(* Stable across processes and OCaml versions: a digest of the canonical
   (composition-reassociated) pretty-printed rule plus its preconditions
   and the certifier version.  Hash-cons ids are deliberately excluded —
   they depend on interning order, which depends on scheduling. *)
let fingerprint (r : Rewrite.Rule.t) : string =
  let fstr f = Pretty.func_to_string (Term.reassoc_func f) in
  let pstr p = Pretty.pred_to_string (Term.reassoc_pred p) in
  let body =
    match r.Rewrite.Rule.body with
    | Rewrite.Rule.Fun_rule (l, rr) -> Fmt.str "F|%s-->%s" (fstr l) (fstr rr)
    | Rewrite.Rule.Pred_rule (l, rr) -> Fmt.str "P|%s-->%s" (pstr l) (pstr rr)
    | Rewrite.Rule.Query_rule ((lf, la), (rf, ra)) ->
      Fmt.str "Q|%s!%a-->%s!%a" (fstr lf) Value.pp la (fstr rf) Value.pp ra
  in
  let pres =
    r.Rewrite.Rule.preconditions
    |> List.map (fun p ->
           Fmt.str "%a(%s)" Rewrite.Props.pp_prop p.Rewrite.Rule.prop
             p.Rewrite.Rule.hole)
    |> List.sort String.compare |> String.concat ","
  in
  Digest.to_hex
    (Digest.string (Fmt.str "kola-cert/%d|%s|GIVEN %s" cert_version body pres))

type verdict = {
  fingerprint : string;
  name : string;        (** rule name at certification time; informational *)
  ok : bool;
  vmode : mode;
  vinstances : int;
  vchecks : int;
  reason : string option;  (** rendered counterexample when refuted *)
  from_cache : bool;
}

let verdict_of_result ?(from_cache = false) (res : result) : verdict =
  {
    fingerprint = fingerprint res.rule;
    name = res.rule.Rewrite.Rule.name;
    ok = certified res;
    vmode = res.mode;
    vinstances = res.instances;
    vchecks = res.checks;
    reason =
      (match res.counterexample with
      | Some (subst, v) ->
        let binding pp ppf (h, x) = Fmt.pf ppf "?%s := %a" h pp x in
        let bindings =
          List.map (Fmt.str "%a" (binding Pretty.pp_func)) subst.Subst.funcs
          @ List.map (Fmt.str "%a" (binding Pretty.pp_pred)) subst.Subst.preds
          @ List.map (Fmt.str "%a" (binding Value.pp)) subst.Subst.values
        in
        Some
          (Fmt.str "input %a under %s" Value.pp v
             (String.concat ", " bindings))
      | None ->
        if res.instances = 0 then
          Some "no well-typed instantiation found (vacuous)"
        else None);
    from_cache;
  }

module Cache = struct
  type entry = {
    everdict : bool;
    emode : mode;
    einstances : int;
    echecks : int;
    ereason : string option;
  }

  type t = {
    path : string option;
    table : (string, entry) Hashtbl.t;
    mutable dirty : bool;
    mutable hits : int;
    mutable misses : int;
  }

  let header = Fmt.str "kola-cert-cache %d" cert_version
  let in_memory () =
    { path = None; table = Hashtbl.create 16; dirty = false; hits = 0; misses = 0 }

  let mode_of_string = function
    | "sampled" -> Some Sampled
    | s -> (
      match String.split_on_char '@' s with
      | [ "exhaustive"; n ] -> Option.map (fun n -> Exhaustive n) (int_of_string_opt n)
      | _ -> None)

  let parse_entry line =
    match
      Scanf.sscanf line "%s %s %s %d %d %S"
        (fun fp verdict mode inst checks reason ->
          (fp, verdict, mode, inst, checks, reason))
    with
    | fp, verdict, mode, einstances, echecks, reason -> (
      match mode_of_string mode, verdict with
      | Some emode, ("certified" | "refuted") ->
        Some
          ( fp,
            {
              everdict = verdict = "certified";
              emode;
              einstances;
              echecks;
              ereason = (if reason = "" then None else Some reason);
            } )
      | _ -> None)
    | exception Scanf.Scan_failure _ -> None
    | exception End_of_file -> None

  (* Missing, unreadable, corrupt or version-skewed files all load as an
     empty cache: certificates are only ever a performance artifact. *)
  let load path =
    let t =
      { path = Some path; table = Hashtbl.create 16; dirty = false; hits = 0; misses = 0 }
    in
    (match open_in path with
    | exception Sys_error _ -> ()
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | h when String.trim h = header -> (
            try
              while true do
                match parse_entry (input_line ic) with
                | Some (fp, e) -> Hashtbl.replace t.table fp e
                | None -> ()
              done
            with End_of_file -> ())
          | _ -> ()
          | exception End_of_file -> ()));
    t

  let save t =
    match t.path with
    | None -> ()
    | Some path when t.dirty ->
      let tmp = path ^ ".tmp" in
      let oc = open_out tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (header ^ "\n");
          Hashtbl.iter
            (fun fp e ->
              Printf.fprintf oc "%s %s %s %d %d %S\n" fp
                (if e.everdict then "certified" else "refuted")
                (mode_name e.emode) e.einstances e.echecks
                (Option.value ~default:"" e.ereason))
            t.table);
      Sys.rename tmp path;
      t.dirty <- false
    | Some _ -> ()

  let find t fp =
    match Hashtbl.find_opt t.table fp with
    | Some e ->
      t.hits <- t.hits + 1;
      Telemetry.count "cert.cache.hit";
      Some e
    | None ->
      t.misses <- t.misses + 1;
      Telemetry.count "cert.cache.miss";
      None

  let add t fp e =
    Hashtbl.replace t.table fp e;
    t.dirty <- true

  let hits t = t.hits
  let misses t = t.misses
  let size t = Hashtbl.length t.table
end

(* Cache-through certification: O(1) on a fingerprint hit, a full
   certification run (recorded into [cache]) on a miss.  The caller owns
   persistence via {!Cache.save}. *)
let certify_cached ?schema ?samples ?inputs ?pool ?seed ?(strategy = `Auto)
    ?scope ?budget ~cache (r : Rewrite.Rule.t) : verdict =
  let fp = fingerprint r in
  match Cache.find cache fp with
  | Some e ->
    {
      fingerprint = fp;
      name = r.Rewrite.Rule.name;
      ok = e.Cache.everdict;
      vmode = e.Cache.emode;
      vinstances = e.Cache.einstances;
      vchecks = e.Cache.echecks;
      reason = e.Cache.ereason;
      from_cache = true;
    }
  | None ->
    let res =
      certify ?schema ?samples ?inputs ?pool ?seed ~strategy ?scope ?budget r
    in
    let v = verdict_of_result res in
    Cache.add cache fp
      {
        Cache.everdict = v.ok;
        emode = v.vmode;
        einstances = v.vinstances;
        echecks = v.vchecks;
        ereason = v.reason;
      };
    v

let pp_verdict ppf v =
  if v.ok then
    Fmt.pf ppf "%-18s certified (%s, %d instances, %d checks%s)" v.name
      (mode_name v.vmode) v.vinstances v.vchecks
      (if v.from_cache then ", cached" else "")
  else
    Fmt.pf ppf "%-18s REFUTED%s: %s" v.name
      (if v.from_cache then " (cached)" else "")
      (Option.value ~default:"counterexample found" v.reason)

(* A fixed-size domain pool with chunked fan-out/fan-in.

   Life of a job: the submitter publishes (task, chunks) under the mutex,
   bumps the epoch, and broadcasts; every parked helper wakes, records the
   epoch, and joins the submitter in draining chunk indices from one
   atomic counter; each helper reports completion under the mutex; the
   submitter returns once every helper has reported.  Helpers park again
   waiting for the next epoch.  The atomic counter gives dynamic load
   balancing (a domain stuck on an expensive chunk does not stall the
   others); the epoch protocol means helpers are spawned exactly once per
   pool, not per job. *)

module Telemetry = Kola_telemetry.Telemetry

type t = {
  size : int;  (* total domains per job, including the submitter *)
  mutable task : (int -> unit) option;
  mutable chunks : int;
  next : int Atomic.t;       (* next unclaimed chunk of the current job *)
  mutable completed : int;   (* helpers finished with the current job *)
  mutable epoch : int;
  mutable stop : bool;
  mutex : Mutex.t;
  work : Condition.t;  (* new epoch published, or shutdown *)
  idle : Condition.t;  (* a helper finished the current job *)
  mutable helpers : unit Domain.t list;
}

let resolve_jobs jobs =
  if jobs <= 0 then Domain.recommended_domain_count () else jobs

(* Claim and run chunks until the counter runs dry.  Tasks must not
   escape: a raising task would kill the helper's loop and hang every
   future job, so anything raised here is dropped — [map] catches user
   exceptions itself and re-raises them in the submitter.  A chunk
   claimed by a helper (rather than the submitter) counts as a steal:
   work the submitter would otherwise have run itself. *)
let rec drain ?(helper = false) t task chunks =
  let i = Atomic.fetch_and_add t.next 1 in
  if i < chunks then begin
    if helper then Telemetry.count "pool.steal";
    (try
       Telemetry.span "pool.chunk" @@ fun () ->
       if Telemetry.enabled () then begin
         let t0 = Telemetry.now () in
         task i;
         Telemetry.observe "pool.chunk_ms" ((Telemetry.now () -. t0) *. 1000.)
       end
       else task i
     with _ -> ());
    drain ~helper t task chunks
  end

let helper_loop t =
  let my_epoch = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while (not t.stop) && t.epoch = !my_epoch do
      Condition.wait t.work t.mutex
    done;
    if t.stop then Mutex.unlock t.mutex
    else begin
      my_epoch := t.epoch;
      let task = Option.get t.task and chunks = t.chunks in
      Mutex.unlock t.mutex;
      drain ~helper:true t task chunks;
      Mutex.lock t.mutex;
      t.completed <- t.completed + 1;
      Condition.broadcast t.idle;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let create ?(jobs = 0) () =
  let size = resolve_jobs jobs in
  let t =
    {
      size;
      task = None;
      chunks = 0;
      next = Atomic.make 0;
      completed = 0;
      epoch = 0;
      stop = false;
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      helpers = [];
    }
  in
  t.helpers <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> helper_loop t));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.helpers;
  t.helpers <- []

let run t ~chunks task =
  if t.stop then invalid_arg "Pool.run: pool is shut down";
  if chunks <= 0 then ()
  else if t.size = 1 || chunks = 1 then
    for i = 0 to chunks - 1 do
      task i
    done
  else begin
    Mutex.lock t.mutex;
    t.task <- Some task;
    t.chunks <- chunks;
    Atomic.set t.next 0;
    t.completed <- 0;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    (* the submitter works too, then waits for every helper to report *)
    Fun.protect
      (fun () -> drain t task chunks)
      ~finally:(fun () ->
        Mutex.lock t.mutex;
        while t.completed < t.size - 1 do
          Condition.wait t.idle t.mutex
        done;
        t.task <- None;
        Mutex.unlock t.mutex)
  end

let map t f (xs : 'a array) : 'b array =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    let err = Atomic.make None in
    (* a few chunks per domain so a slow chunk rebalances *)
    let chunk_count = min n (t.size * 4) in
    let chunk_size = (n + chunk_count - 1) / chunk_count in
    run t ~chunks:chunk_count (fun c ->
        let lo = c * chunk_size in
        let hi = min n (lo + chunk_size) - 1 in
        for i = lo to hi do
          (* The first exception aborts the whole map: once [err] is set,
             every domain skips its remaining items instead of running
             them to completion — work past the failure is wasted (and,
             under a deadline, actively harmful). *)
          if Atomic.get err = None then
            match f xs.(i) with
            | y -> out.(i) <- Some y
            | exception e -> ignore (Atomic.compare_and_set err None (Some e))
        done);
    (match Atomic.get err with Some e -> raise e | None -> ());
    (* Unreachable by construction: an item is only ever skipped after
       [err] was set, and a set [err] re-raised above — so reaching this
       map means every slot was written. *)
    Array.map (function Some y -> y | None -> assert false) out
  end

let map_list t f xs = Array.to_list (map t f (Array.of_list xs))

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect (fun () -> f t) ~finally:(fun () -> shutdown t)

(* ------------------------------------------------------------------ *)
(* Service: long-lived worker domains draining a bounded task queue.

   Where the pool above fans one job out and joins it (single submitter,
   barrier semantics), a service accepts independent fire-and-forget
   tasks from any domain and applies admission control: [submit] either
   enqueues — workers pick tasks up in FIFO order — or rejects
   immediately when the backlog has reached the bound, reporting the
   depth the submitter can put in a 429-style response.  Overload
   therefore degrades into predictable queueing latency plus fast
   rejections instead of an unbounded backlog.

   Tasks must not leak exceptions into the worker loop (a dead worker
   would silently shrink the service), so anything a task raises is
   swallowed and counted ([service.task_error]); user-level error
   handling belongs inside the task. *)
module Service = struct
  type t = {
    workers : int;
    bound : int;
    tasks : (unit -> unit) Queue.t;  (* under [lock] *)
    lock : Mutex.t;
    task_ready : Condition.t;  (* task enqueued, or shutdown *)
    drained : Condition.t;     (* a worker went idle *)
    mutable running : int;     (* tasks currently executing *)
    mutable stop : bool;
    mutable domains : unit Domain.t list;
    submitted : int Atomic.t;
    rejected : int Atomic.t;
    errors : int Atomic.t;
  }

  type stats = {
    workers : int;
    bound : int;
    queued : int;
    running : int;
    submitted : int;
    rejected : int;
    errors : int;
  }

  let worker_loop t =
    let rec loop () =
      Mutex.lock t.lock;
      while (not t.stop) && Queue.is_empty t.tasks do
        Condition.wait t.task_ready t.lock
      done;
      if Queue.is_empty t.tasks then begin
        (* stop requested and nothing left to drain *)
        Mutex.unlock t.lock
      end
      else begin
        let task = Queue.pop t.tasks in
        t.running <- t.running + 1;
        Mutex.unlock t.lock;
        (try task ()
         with _ ->
           Atomic.incr t.errors;
           Telemetry.count "service.task_error");
        Mutex.lock t.lock;
        t.running <- t.running - 1;
        Condition.broadcast t.drained;
        Mutex.unlock t.lock;
        loop ()
      end
    in
    loop ()

  let create ?(workers = 0) ?(queue = 64) () =
    let workers = resolve_jobs workers in
    let t =
      {
        workers;
        bound = max 0 queue;
        tasks = Queue.create ();
        lock = Mutex.create ();
        task_ready = Condition.create ();
        drained = Condition.create ();
        running = 0;
        stop = false;
        domains = [];
        submitted = Atomic.make 0;
        rejected = Atomic.make 0;
        errors = Atomic.make 0;
      }
    in
    t.domains <- List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
    t

  (* Queued tasks not yet started.  Racy by nature (the answer can be
     stale the instant it returns); exact inside [submit]'s own lock. *)
  let depth t = Mutex.protect t.lock (fun () -> Queue.length t.tasks)

  let submit t task =
    Mutex.lock t.lock;
    if t.stop then begin
      Mutex.unlock t.lock;
      invalid_arg "Pool.Service.submit: service is shut down"
    end;
    let depth = Queue.length t.tasks in
    if depth >= t.bound then begin
      Mutex.unlock t.lock;
      Atomic.incr t.rejected;
      Telemetry.count "service.rejected";
      Error depth
    end
    else begin
      Queue.push task t.tasks;
      Condition.signal t.task_ready;
      Mutex.unlock t.lock;
      Atomic.incr t.submitted;
      Telemetry.count "service.submitted";
      Ok (depth + 1)
    end

  (* Block until no task is queued or running — the quiesce point
     shutdown (and tests) use to assert a clean drain. *)
  let drain t =
    Mutex.lock t.lock;
    while not (Queue.is_empty t.tasks && t.running = 0) do
      Condition.wait t.drained t.lock
    done;
    Mutex.unlock t.lock

  let stats t =
    Mutex.lock t.lock;
    let queued = Queue.length t.tasks and running = t.running in
    Mutex.unlock t.lock;
    {
      workers = t.workers;
      bound = t.bound;
      queued;
      running;
      submitted = Atomic.get t.submitted;
      rejected = Atomic.get t.rejected;
      errors = Atomic.get t.errors;
    }

  let shutdown t =
    Mutex.lock t.lock;
    if t.stop then Mutex.unlock t.lock
    else begin
      t.stop <- true;
      Condition.broadcast t.task_ready;
      Mutex.unlock t.lock;
      List.iter Domain.join t.domains;
      t.domains <- []
    end
end

(** A fixed-size pool of OCaml 5 domains with chunked fan-out/fan-in.

    Built directly on [Domain]/[Mutex]/[Condition] (no domainslib): the
    pool spawns [size - 1] helper domains once, keeps them parked on a
    condition variable between jobs, and the submitting domain always
    participates in the work, so a pool of size 1 spawns nothing and runs
    everything inline — the sequential baseline and the parallel engine
    share one code path at the call site.

    Work is distributed by chunk stealing: a job is split into contiguous
    chunks and every domain repeatedly grabs the next unclaimed chunk from
    an atomic counter until none are left.  Fan-in is order-preserving:
    {!map} writes each result into the slot of its input index, so the
    output never depends on which domain computed what, or in which order
    chunks were claimed.

    A pool is NOT reentrant: calling {!run} or {!map} from inside a task
    running on the same pool deadlocks.  Submitting from several domains
    concurrently is likewise unsupported — one submitter at a time. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns a pool of [jobs] domains in total (including
    the caller's).  [jobs <= 0] (and the default) means
    [Domain.recommended_domain_count ()].  [jobs = 1] spawns no helper
    domains at all. *)

val size : t -> int
(** Total domains participating in each job, including the submitter. *)

val run : t -> chunks:int -> (int -> unit) -> unit
(** [run t ~chunks f] executes [f 0 .. f (chunks - 1)], each exactly once,
    across the pool's domains, and returns when all are done.  [f] must
    not raise (use {!map} for user-level work, which captures
    exceptions). *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map: [map t f xs] is observably
    [Array.map f xs] whenever [f] is pure.  Inputs are processed in
    contiguous chunks claimed dynamically by the pool's domains.  If any
    application raises, one of the raised exceptions is re-raised in the
    submitting domain after the job completes (remaining items are still
    attempted). *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists, preserving order. *)

val shutdown : t -> unit
(** Park, join, and release the helper domains.  Idempotent; using the
    pool after [shutdown] raises [Invalid_argument].  A pool that is never
    shut down leaks its domains until exit. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)

(** Long-lived worker domains draining a bounded FIFO task queue — the
    serving daemon's execution substrate.  Where the pool fans one job
    out and joins it (single submitter, barrier semantics), a service
    accepts independent fire-and-forget tasks from any domain and
    applies admission control: a submission either enqueues or is
    rejected immediately once the backlog reaches the bound, so overload
    degrades into predictable queueing latency plus fast rejections
    instead of an unbounded backlog.  Tasks that raise are swallowed and
    counted — a task can never kill its worker. *)
module Service : sig
  type t

  type stats = {
    workers : int;
    bound : int;      (** queue capacity *)
    queued : int;     (** tasks waiting (instantaneous) *)
    running : int;    (** tasks executing (instantaneous) *)
    submitted : int;  (** accepted since [create] *)
    rejected : int;   (** refused at the admission gate since [create] *)
    errors : int;     (** tasks that raised (and were contained) *)
  }

  val create : ?workers:int -> ?queue:int -> unit -> t
  (** [create ~workers ~queue ()] spawns [workers] domains (default:
      [Domain.recommended_domain_count ()]; [<= 0] likewise) parked on a
      queue bounded at [queue] pending tasks (default 64). *)

  val submit : t -> (unit -> unit) -> (int, int) result
  (** [submit t task] enqueues [task] and returns [Ok depth] (the
      backlog including it), or [Error depth] without enqueueing when
      the backlog has already reached the bound — the fast-rejection
      path; [depth] is what a 429-style response should report.  Safe to
      call from any domain.  @raise Invalid_argument after {!shutdown}. *)

  val depth : t -> int
  (** Tasks queued and not yet started.  Instantaneous, may be stale by
      the time it returns. *)

  val drain : t -> unit
  (** Block until no task is queued or running. *)

  val stats : t -> stats

  val shutdown : t -> unit
  (** Stop accepting, let the workers drain everything already queued,
      and join them.  Idempotent. *)
end

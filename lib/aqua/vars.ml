(* The "additional machinery" of Section 2.1: free-variable analysis,
   fresh-name generation, alpha-renaming and capture-avoiding substitution.

   None of this exists on the KOLA side — that asymmetry is the paper's
   point.  The {!Baseline} engine's head and body routines are built from
   these functions. *)

open Ast

module S = Set.Make (String)

let rec free_vars = function
  | Var x -> S.singleton x
  | Const _ | Extent _ -> S.empty
  | Path (e, _) | Flatten e | Not e | Agg (_, e) -> free_vars e
  | Pair (a, b) | Bin (_, a, b) -> S.union (free_vars a) (free_vars b)
  | App (l, e) | Sel (l, e) ->
    S.union (S.remove l.v (free_vars l.body)) (free_vars e)
  | Join (p, f, a, b) ->
    let inner l2 = S.remove l2.v1 (S.remove l2.v2 (free_vars l2.body2)) in
    S.union (S.union (inner p) (inner f)) (S.union (free_vars a) (free_vars b))
  | If (c, t, e) -> S.union (free_vars c) (S.union (free_vars t) (free_vars e))
  | SetLit xs -> List.fold_left (fun s x -> S.union s (free_vars x)) S.empty xs

let is_free x e = S.mem x (free_vars e)

(* Atomic so concurrent translations (the daemon translates OQL on
   several worker domains at once) never mint the same fresh name from a
   torn read-modify-write. *)
let counter = Atomic.make 0

let fresh ?(base = "v") avoid =
  let rec go () =
    let n = Atomic.fetch_and_add counter 1 + 1 in
    let name = Fmt.str "%s%d" base n in
    if S.mem name avoid then go () else name
  in
  go ()

(* Capture-avoiding substitution e[x := r]. *)
let rec subst x r e =
  match e with
  | Var y -> if String.equal x y then r else e
  | Const _ | Extent _ -> e
  | Path (e1, a) -> Path (subst x r e1, a)
  | Pair (a, b) -> Pair (subst x r a, subst x r b)
  | Flatten e1 -> Flatten (subst x r e1)
  | Not e1 -> Not (subst x r e1)
  | Agg (g, e1) -> Agg (g, subst x r e1)
  | Bin (op, a, b) -> Bin (op, subst x r a, subst x r b)
  | If (c, t, e1) -> If (subst x r c, subst x r t, subst x r e1)
  | SetLit xs -> SetLit (List.map (subst x r) xs)
  | App (l, e1) ->
    let l' = subst_lam x r l in
    App (l', subst x r e1)
  | Sel (l, e1) ->
    let l' = subst_lam x r l in
    Sel (l', subst x r e1)
  | Join (p, f, a, b) ->
    Join (subst_lam2 x r p, subst_lam2 x r f, subst x r a, subst x r b)

and subst_lam x r l =
  if String.equal l.v x then l
  else if is_free l.v r && is_free x l.body then begin
    (* rename the binder to avoid capture *)
    let avoid = S.union (free_vars r) (free_vars l.body) in
    let v' = fresh ~base:l.v avoid in
    let body' = subst l.v (Var v') l.body in
    { v = v'; body = subst x r body' }
  end
  else { l with body = subst x r l.body }

and subst_lam2 x r l =
  if String.equal l.v1 x || String.equal l.v2 x then l
  else if
    (is_free l.v1 r || is_free l.v2 r) && is_free x l.body2
  then begin
    let avoid = S.union (free_vars r) (free_vars l.body2) in
    let v1' = fresh ~base:l.v1 avoid in
    let v2' = fresh ~base:l.v2 (S.add v1' avoid) in
    let body' = subst l.v1 (Var v1') (subst l.v2 (Var v2') l.body2) in
    { v1 = v1'; v2 = v2'; body2 = subst x r body' }
  end
  else { l with body2 = subst x r l.body2 }

(* Alpha-equivalence: the "variable renaming" machinery the paper says T2
   requires (recognising λz.z.age as λp.p.age). *)
let rec alpha_equal a b =
  match a, b with
  | Var x, Var y -> String.equal x y
  | Const u, Const v -> Kola.Value.equal u v
  | Extent x, Extent y -> String.equal x y
  | Path (e1, a1), Path (e2, a2) -> String.equal a1 a2 && alpha_equal e1 e2
  | Pair (a1, b1), Pair (a2, b2) -> alpha_equal a1 a2 && alpha_equal b1 b2
  | Flatten e1, Flatten e2 | Not e1, Not e2 -> alpha_equal e1 e2
  | Agg (g1, e1), Agg (g2, e2) -> g1 = g2 && alpha_equal e1 e2
  | Bin (o1, a1, b1), Bin (o2, a2, b2) ->
    o1 = o2 && alpha_equal a1 a2 && alpha_equal b1 b2
  | If (c1, t1, e1), If (c2, t2, e2) ->
    alpha_equal c1 c2 && alpha_equal t1 t2 && alpha_equal e1 e2
  | SetLit xs, SetLit ys ->
    List.length xs = List.length ys && List.for_all2 alpha_equal xs ys
  | App (l1, e1), App (l2, e2) | Sel (l1, e1), Sel (l2, e2) ->
    alpha_equal e1 e2
    && (let avoid = S.union (free_vars l1.body) (free_vars l2.body) in
        let v = fresh avoid in
        alpha_equal (subst l1.v (Var v) l1.body) (subst l2.v (Var v) l2.body))
  | Join (p1, f1, a1, b1), Join (p2, f2, a2, b2) ->
    let lam2_eq l1 l2 =
      let avoid = S.union (free_vars l1.body2) (free_vars l2.body2) in
      let v1 = fresh avoid in
      let v2 = fresh (S.add v1 avoid) in
      let open_l l =
        subst l.v1 (Var v1) (subst l.v2 (Var v2) l.body2)
      in
      alpha_equal (open_l l1) (open_l l2)
    in
    lam2_eq p1 p2 && lam2_eq f1 f2 && alpha_equal a1 a2 && alpha_equal b1 b2
  | ( ( Var _ | Const _ | Extent _ | Path _ | Pair _ | App _ | Sel _
      | Flatten _ | Join _ | If _ | Bin _ | Not _ | Agg _ | SetLit _ ),
      _ ) -> false

(* Evaluator for AQUA expressions, over the same value domain as KOLA.
   Used as the reference semantics when validating the AQUA→KOLA
   translator. *)

open Kola
open Ast

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type ctx = { db : (string * Value.t) list; env : (string * Value.t) list }

let ctx ?(db = []) () = { db; env = [] }

let resolve ctx v =
  match v with
  | Value.Named n -> (
    match List.assoc_opt n ctx.db with
    | Some v -> v
    | None -> error "unbound database name %s" n)
  | v -> v

let as_set ctx v =
  match resolve ctx v with
  | Value.Set xs -> xs
  | v -> error "expected a set, got %a" Value.pp v

let as_bool ctx v =
  match resolve ctx v with
  | Value.Bool b -> b
  | v -> error "expected a bool, got %a" Value.pp v

let as_int ctx v =
  match resolve ctx v with
  | Value.Int i -> i
  | v -> error "expected an int, got %a" Value.pp v

module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* Membership tests hash the right operand once instead of scanning it per
   element ([List.exists] made In/Inter/Diff quadratic in the set sizes);
   filter order over the left operand is preserved, so results are
   identical. *)
let member_table ys =
  let t = VH.create (2 * List.length ys + 1) in
  List.iter (fun y -> VH.replace t y ()) ys;
  t

let rec eval ctx e : Value.t =
  match e with
  | Var x -> (
    match List.assoc_opt x ctx.env with
    | Some v -> v
    | None -> error "unbound variable %s" x)
  | Const v -> resolve ctx v
  | Extent s -> (
    match List.assoc_opt s ctx.db with
    | Some v -> v
    | None -> error "unbound extent %s" s)
  | Path (e, attr) -> (
    let v = eval ctx e in
    match Value.field attr v with
    | Some x -> x
    | None -> error "no attribute %s on %a" attr Value.pp v)
  | Pair (a, b) -> Value.Pair (eval ctx a, eval ctx b)
  | App (l, set) ->
    let xs = as_set ctx (eval ctx set) in
    Value.set
      (List.map (fun x -> eval { ctx with env = (l.v, x) :: ctx.env } l.body) xs)
  | Sel (l, set) ->
    let xs = as_set ctx (eval ctx set) in
    Value.set
      (List.filter
         (fun x ->
           as_bool ctx (eval { ctx with env = (l.v, x) :: ctx.env } l.body))
         xs)
  | Flatten e ->
    let outer = as_set ctx (eval ctx e) in
    Value.set (List.concat_map (fun s -> as_set ctx s) outer)
  | Join (p, f, a, b) ->
    let xs = as_set ctx (eval ctx a) and ys = as_set ctx (eval ctx b) in
    Value.set
      (List.concat_map
         (fun x ->
           List.filter_map
             (fun y ->
               let env_p = (p.v1, x) :: (p.v2, y) :: ctx.env in
               if as_bool ctx (eval { ctx with env = env_p } p.body2) then
                 let env_f = (f.v1, x) :: (f.v2, y) :: ctx.env in
                 Some (eval { ctx with env = env_f } f.body2)
               else None)
             ys)
         xs)
  | If (c, t, e) ->
    if as_bool ctx (eval ctx c) then eval ctx t else eval ctx e
  | Not e -> Value.Bool (not (as_bool ctx (eval ctx e)))
  | Agg (op, e) -> (
    let xs = as_set ctx (eval ctx e) in
    match op with
    | Term.Count -> Value.Int (List.length xs)
    | Term.Sum -> Value.Int (List.fold_left (fun a x -> a + as_int ctx x) 0 xs)
    | Term.Max -> (
      match xs with
      | [] -> error "max of empty set"
      | x :: r -> List.fold_left (fun m y -> if Value.compare y m > 0 then y else m) x r)
    | Term.Min -> (
      match xs with
      | [] -> error "min of empty set"
      | x :: r -> List.fold_left (fun m y -> if Value.compare y m < 0 then y else m) x r))
  | SetLit xs -> Value.set (List.map (eval ctx) xs)
  | Bin (op, a, b) -> (
    let va = eval ctx a in
    (* And/Or short-circuit, as in any reasonable query language: their
       right operand evaluates only when the left one doesn't decide.
       Every strict operator forces [vb] exactly once.  One exhaustive
       match — no catch-all, so a new operator is a compile error here
       rather than a latent [assert false]. *)
    let vb = lazy (eval ctx b) in
    match op with
    | And -> if as_bool ctx va then Lazy.force vb else Value.Bool false
    | Or -> if as_bool ctx va then Value.Bool true else Lazy.force vb
    | Eq -> Value.Bool (Value.equal va (Lazy.force vb))
    | Leq -> Value.Bool (Value.compare va (Lazy.force vb) <= 0)
    | Lt -> Value.Bool (Value.compare va (Lazy.force vb) < 0)
    | Gt -> Value.Bool (Value.compare va (Lazy.force vb) > 0)
    | Geq -> Value.Bool (Value.compare va (Lazy.force vb) >= 0)
    | In -> Value.Bool (VH.mem (member_table (as_set ctx (Lazy.force vb))) va)
    | Add -> Value.Int (as_int ctx va + as_int ctx (Lazy.force vb))
    | Sub -> Value.Int (as_int ctx va - as_int ctx (Lazy.force vb))
    | Mul -> Value.Int (as_int ctx va * as_int ctx (Lazy.force vb))
    | Union -> Value.set (as_set ctx va @ as_set ctx (Lazy.force vb))
    | Inter ->
      let m = member_table (as_set ctx (Lazy.force vb)) in
      Value.set (List.filter (fun x -> VH.mem m x) (as_set ctx va))
    | Diff ->
      let m = member_table (as_set ctx (Lazy.force vb)) in
      Value.set (List.filter (fun x -> not (VH.mem m x)) (as_set ctx va)))

let eval_closed ?db e = eval (ctx ?db ()) e

(* A second schema and workload — a company database — demonstrating that
   the algebra, translator, rules and optimizer are schema-generic (only
   precondition inference consults annotations).

   Employee(ename*, salary, dept, mentors: {Employee})
   Department(dname*, budget, city)
   extents E : {Employee}, D : {Department}
   (attributes marked with * are injective/key) *)

open Kola

let schema =
  let t = Schema.empty in
  let t =
    Schema.add_class t ~name:"Department"
      ~attrs:
        [
          ("dname", Ty.Str, [ Schema.Injective; Schema.Total ]);
          ("budget", Ty.Int, [ Schema.Total ]);
          ("dcity", Ty.Str, [ Schema.Total ]);
        ]
  in
  let t =
    Schema.add_class t ~name:"Employee"
      ~attrs:
        [
          ("ename", Ty.Str, [ Schema.Injective; Schema.Total ]);
          ("salary", Ty.Int, [ Schema.Total ]);
          ("dept", Ty.Obj "Department", [ Schema.Total ]);
          ("mentors", Ty.Set (Ty.Obj "Employee"), [ Schema.Total ]);
        ]
  in
  let t = Schema.add_extent t ~name:"E" ~ty:(Ty.Set (Ty.Obj "Employee")) in
  let t = Schema.add_extent t ~name:"D" ~ty:(Ty.Set (Ty.Obj "Department")) in
  t

type params = { employees : int; departments : int; max_mentors : int; seed : int }

let default_params = { employees = 50; departments = 8; max_mentors = 3; seed = 77 }

type t = {
  employees : Value.t list;
  departments : Value.t list;
  db : (string * Value.t) list;
}

let generate (p : params) : t =
  let r = Store.rng p.seed in
  let departments =
    List.init p.departments (fun i ->
        Value.obj ~cls:"Department" ~oid:i
          [
            ("dname", Value.str (Fmt.str "dept-%d" i));
            ("budget", Value.int (10_000 + Store.int r 90_000));
            ("dcity", Value.str (Store.pick r Store.cities));
          ])
  in
  let shallow =
    List.init p.employees (fun i ->
        Value.obj ~cls:"Employee" ~oid:i
          [
            ("ename", Value.str (Fmt.str "emp-%d" i));
            ("salary", Value.int (30_000 + Store.int r 120_000));
            ("dept", Store.pick r departments);
            ("mentors", Value.set []);
          ])
  in
  let employees =
    List.mapi
      (fun i e ->
        let n = Store.int r (p.max_mentors + 1) in
        let mentors = Value.set (List.init n (fun _ -> Store.pick r shallow)) in
        Value.obj ~cls:"Employee" ~oid:i
          (List.map
             (fun (k, v) -> if k = "mentors" then (k, mentors) else (k, v))
             (Store.obj_fields
                ~context:"Datagen.Company.generate: employee row" e)))
      shallow
  in
  {
    employees;
    departments;
    db = [ ("E", Value.set employees); ("D", Value.set departments) ];
  }

let db t = t.db

(* A hidden join over this schema: each department paired with the names of
   employees working in it — the Garage Query's shape with different
   vocabulary. *)
let dept_roster_oql =
  "select [d, flatten(select {e.ename} from e in E where e.dept = d)] from d in D"

(* A non-join nested query: employees paired with their higher-paid
   mentors. *)
let rich_mentors_oql =
  "select [e, (select m from m in e.mentors where m.salary > e.salary)] from e in E"

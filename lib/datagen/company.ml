(* A second schema and workload — a company database — demonstrating that
   the algebra, translator, rules and optimizer are schema-generic (only
   precondition inference consults annotations).

   Employee(ename*, salary, dept, mentors: {Employee})
   Department(dname*, budget, city)
   extents E : {Employee}, D : {Department}
   (attributes marked with * are injective/key) *)

open Kola

let schema =
  let t = Schema.empty in
  let t =
    Schema.add_class t ~name:"Department"
      ~attrs:
        [
          ("dname", Ty.Str, [ Schema.Injective; Schema.Total ]);
          ("budget", Ty.Int, [ Schema.Total ]);
          ("dcity", Ty.Str, [ Schema.Total ]);
        ]
  in
  let t =
    Schema.add_class t ~name:"Employee"
      ~attrs:
        [
          ("ename", Ty.Str, [ Schema.Injective; Schema.Total ]);
          ("salary", Ty.Int, [ Schema.Total ]);
          ("dept", Ty.Obj "Department", [ Schema.Total ]);
          ("mentors", Ty.Set (Ty.Obj "Employee"), [ Schema.Total ]);
        ]
  in
  let t = Schema.add_extent t ~name:"E" ~ty:(Ty.Set (Ty.Obj "Employee")) in
  let t = Schema.add_extent t ~name:"D" ~ty:(Ty.Set (Ty.Obj "Department")) in
  t

type params = { employees : int; departments : int; max_mentors : int; seed : int }

let default_params = { employees = 50; departments = 8; max_mentors = 3; seed = 77 }

type t = {
  employees : Value.t list;
  departments : Value.t list;
  db : (string * Value.t) list;
}

let generate (p : params) : t =
  let r = Store.rng p.seed in
  let departments =
    List.init p.departments (fun i ->
        Value.obj ~cls:"Department" ~oid:i
          [
            ("dname", Value.str (Fmt.str "dept-%d" i));
            ("budget", Value.int (10_000 + Store.int r 90_000));
            ("dcity", Value.str (Store.pick r Store.cities));
          ])
  in
  let shallow =
    List.init p.employees (fun i ->
        Value.obj ~cls:"Employee" ~oid:i
          [
            ("ename", Value.str (Fmt.str "emp-%d" i));
            ("salary", Value.int (30_000 + Store.int r 120_000));
            ("dept", Store.pick r departments);
            ("mentors", Value.set []);
          ])
  in
  let employees =
    List.mapi
      (fun i e ->
        let n = Store.int r (p.max_mentors + 1) in
        let mentors = Value.set (List.init n (fun _ -> Store.pick r shallow)) in
        Value.obj ~cls:"Employee" ~oid:i
          (List.map
             (fun (k, v) -> if k = "mentors" then (k, mentors) else (k, v))
             (Store.obj_fields
                ~context:"Datagen.Company.generate: employee row" e)))
      shallow
  in
  {
    employees;
    departments;
    db = [ ("E", Value.set employees); ("D", Value.set departments) ];
  }

let db t = t.db

(* The columnar view: E with unboxed [salary] ints, [ename] strings and
   [dept] dictionary-encoded into D; [mentors] stays a boxed column. *)
let columnar t = Kola.Colstore.of_db t.db

(* Benchmark-scale company store: array-backed O(1) sampling (the
   list-based [generate] picks mentors with [List.nth], which is quadratic
   in the employee count), tabulated in index order so the data is
   deterministic in the seed alone.  Departments scale as employees/250,
   min 8, so group sizes stay realistic as the extent grows. *)
let scaled ?(seed = 77) (employees : int) : t =
  let fn = "Datagen.Company.scaled" in
  if employees = 0 then invalid_arg (Fmt.str "%s: size must be positive" fn);
  (if employees < 0 || employees > Store.max_scaled_size then
     invalid_arg
       (Fmt.str
          "%s: size is %d, outside the supported range 1..%d — refusing to \
           truncate the store silently"
          fn employees Store.max_scaled_size));
  let n_departments = max 8 (employees / 250) in
  let cities_a = Array.of_list Store.cities in
  let r = Store.rng seed in
  let departments =
    Store.tabulate n_departments (fun i ->
        Value.obj ~cls:"Department" ~oid:i
          [
            ("dname", Value.str (Fmt.str "dept-%d" i));
            ("budget", Value.int (10_000 + Store.int r 90_000));
            ("dcity", Value.str (Store.pick_arr r cities_a));
          ])
  in
  let shallow =
    Store.tabulate employees (fun i ->
        Value.obj ~cls:"Employee" ~oid:i
          [
            ("ename", Value.str (Fmt.str "emp-%d" i));
            ("salary", Value.int (30_000 + Store.int r 120_000));
            ("dept", Store.pick_arr r departments);
            ("mentors", Value.set []);
          ])
  in
  let rebuilt =
    Store.tabulate employees (fun i ->
        let n = Store.int r (default_params.max_mentors + 1) in
        let mentors =
          Value.set (List.init n (fun _ -> Store.pick_arr r shallow))
        in
        Value.obj ~cls:"Employee" ~oid:i
          (List.map
             (fun (k, v) -> if k = "mentors" then (k, mentors) else (k, v))
             (Store.obj_fields ~context:"Datagen.Company.scaled: employee row"
                shallow.(i))))
  in
  let employees = Array.to_list rebuilt in
  let departments = Array.to_list departments in
  {
    employees;
    departments;
    db = [ ("E", Value.set employees); ("D", Value.set departments) ];
  }

(* A hidden join over this schema: each department paired with the names of
   employees working in it — the Garage Query's shape with different
   vocabulary. *)
let dept_roster_oql =
  "select [d, flatten(select {e.ename} from e in E where e.dept = d)] from d in D"

(* A non-join nested query: employees paired with their higher-paid
   mentors. *)
let rich_mentors_oql =
  "select [e, (select m from m in e.mentors where m.salary > e.salary)] from e in E"

(* A second hidden join, same shape as the roster but flattening the
   mentor sets of each department's employees — untangles to a hash join
   feeding an unnest. *)
let mentor_pool_oql =
  "select [d, flatten(select e.mentors from e in E where e.dept = d)] from d in D"

(* A selective scan-filter-map chain (no join): the cities of the
   departments employing anyone over 90k. *)
let city_salaries_oql = "select e.dept.dcity from e in E where e.salary > 90000"

(* A membership filter against a closed subquery: the subquery never
   mentions [e], so a per-element evaluator recomputes it once per
   employee — O(|E| * |D|) — while compiled execution hoists it out of
   the loop and hashes the membership probe. *)
let local_staff_oql =
  "select e.ename from e in E \
   where e.dept in (select d from d in D where d.dcity = \"Boston\")"

(* An intersection of two derived name sets (mentor names and top-earner
   names).  Nested-loop set intersection is O(n * m); hashing the smaller
   side makes it linear. *)
let mentor_elite_oql =
  "(select m.ename from e in E, m in e.mentors) inter \
   (select h.ename from h in E where h.salary > 145000)"

(* A filter + aggregate over one unboxed column: selective scan on
   salary, then sum.  (Aggregates run under eager dedup, so this sums
   the *distinct* salaries over the threshold — the columnar backend
   must reproduce exactly that.) *)
let payroll_oql = "sum(select e.salary from e in E where e.salary > 120000)"

(* Deterministic generator for the paper's Person/Address/Vehicle database.

   A simple splitmix-style PRNG keeps generation reproducible across runs and
   independent of the global [Random] state (benchmarks and property tests
   must agree on the data they see). *)

open Kola

type rng = { mutable state : int64 }

let rng seed = { state = Int64.of_int (seed lxor 0x9e3779b9) }

let next_int64 r =
  let open Int64 in
  r.state <- add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int r bound =
  if bound <= 0 then invalid_arg "Store.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.logand (next_int64 r) Int64.max_int)
                  (Int64.of_int bound))

let pick r xs = List.nth xs (int r (List.length xs))

(* O(1) pick for the scaled generators: [List.nth] sampling is quadratic
   over a whole extent, which is what caps the list-based [generate] at
   toy sizes. *)
let pick_arr r a =
  if Array.length a = 0 then invalid_arg "Store.pick_arr: empty array";
  Array.unsafe_get a (int r (Array.length a))

(* [Array.init]'s application order is unspecified; generation must be
   byte-identical across hosts, so tabulate in index order explicitly. *)
let tabulate n f =
  if n = 0 then [||]
  else begin
    let a = Array.make n (f 0) in
    for i = 1 to n - 1 do
      a.(i) <- f i
    done;
    a
  end

(* Row deepening rewrites an object's fields in place; anything else in
   the extent is a generator bug upstream — name the site and the value
   so the failure is diagnosable instead of an anonymous [assert false]. *)
let obj_fields ~context (v : Value.t) : (string * Value.t) list =
  match v with
  | Value.Obj o -> o.Value.fields
  | v -> invalid_arg (Fmt.str "%s: expected an object row, got %a" context Value.pp v)

type params = {
  people : int;
  vehicles : int;
  addresses : int;
  max_children : int;   (** children per person, uniform in [0, max] *)
  max_cars : int;
  max_garages : int;
  seed : int;
}

let default_params =
  {
    people = 40;
    vehicles = 30;
    addresses = 20;
    max_children = 3;
    max_cars = 2;
    max_garages = 2;
    seed = 42;
  }

let small = { default_params with people = 12; vehicles = 10; addresses = 8 }

let cities = [ "Providence"; "Boston"; "Montreal"; "Cambridge"; "Waterloo" ]
let makes = [ "Saab"; "Volvo"; "Dodge"; "Honda"; "Citroen" ]

type t = {
  persons : Value.t list;
  vehicles : Value.t list;
  addresses : Value.t list;
  db : (string * Value.t) list;  (** extents P, V, A *)
}

(* Hard cap for the scaled generators.  Above this the value-level store
   (boxed objects, assoc-list fields) stops being the bottleneck worth
   measuring; refuse loudly rather than truncate to some smaller store the
   caller never asked for. *)
let max_scaled_size = 2_000_000

let validate ~fn ~what n =
  if n < 0 then
    invalid_arg (Fmt.str "%s: %s must be non-negative, got %d" fn what n);
  if n > max_scaled_size then
    invalid_arg
      (Fmt.str
         "%s: %s is %d, above the supported maximum %d — refusing to \
          truncate the store silently; generate at most %d or shard the \
          workload"
         fn what n max_scaled_size max_scaled_size)

let validate_params ~fn (p : params) =
  validate ~fn ~what:"people" p.people;
  validate ~fn ~what:"vehicles" p.vehicles;
  validate ~fn ~what:"addresses" p.addresses

(* People's [child] sets point at other generated people.  To keep values
   acyclic we embed children as objects with their scalar fields only (their
   own child/cars/grgs sets are empty); object equality is oid-based so joins
   and membership tests still behave as identity joins. *)
let generate (p : params) : t =
  validate_params ~fn:"Datagen.Store.generate" p;
  let r = rng p.seed in
  let addresses =
    List.init p.addresses (fun i ->
        Value.obj ~cls:"Address" ~oid:i
          [
            ("city", Value.str (pick r cities));
            ("street", Value.str (Fmt.str "%d Main St" (i + 1)));
            ("zip", Value.int (10000 + int r 89999));
          ])
  in
  let vehicles =
    List.init p.vehicles (fun i ->
        Value.obj ~cls:"Vehicle" ~oid:i
          [
            ("make", Value.str (pick r makes));
            ("year", Value.int (1970 + int r 50));
          ])
  in
  let shallow_person i age name =
    Value.obj ~cls:"Person" ~oid:i
      [
        ("name", Value.str name);
        ("age", Value.int age);
        ("addr", pick r addresses);
        ("child", Value.set []);
        ("cars", Value.set []);
        ("grgs", Value.set []);
      ]
  in
  let ages = List.init p.people (fun _ -> int r 80) in
  let names = List.init p.people (fun i -> Fmt.str "person-%d" i) in
  let shallow = List.mapi (fun i (age, name) -> shallow_person i age name)
      (List.combine ages names)
  in
  let sample_set max pool =
    if max = 0 || pool = [] then Value.set []
    else
      let n = int r (max + 1) in
      Value.set (List.init n (fun _ -> pick r pool))
  in
  let persons =
    List.mapi
      (fun i person ->
        let fields =
          List.map
            (fun (k, v) ->
              match k with
              | "child" -> (k, sample_set p.max_children shallow)
              | "cars" -> (k, sample_set p.max_cars vehicles)
              | "grgs" -> (k, sample_set p.max_garages addresses)
              | _ -> (k, v))
            (obj_fields ~context:"Datagen.Store.generate: person row" person)
        in
        Value.obj ~cls:"Person" ~oid:i fields)
      shallow
  in
  {
    persons;
    vehicles;
    addresses;
    db =
      [
        ("P", Value.set persons);
        ("V", Value.set vehicles);
        ("A", Value.set addresses);
      ];
  }

let db t = t.db

(* The columnar view of the same store: P/V/A as typed column vectors
   with [addr] dictionary-encoded into A.  Rows are shared physically
   with [db t], so materialization costs the column arrays alone. *)
let columnar t = Kola.Colstore.of_db t.db

(* Array-backed generation for benchmark-scale stores (10^5–10^6 people):
   every sample is an O(1) array pick, object rows are tabulated in index
   order, and the extent sets are built from already-oid-sorted rows, so
   the whole store is O(n) work and deterministic in the seed alone —
   byte-identical across hosts.  [size] counts people; vehicles and
   addresses scale with the default 40/30/20 ratios. *)
let scaled ?(seed = 42) (size : int) : t =
  let fn = "Datagen.Store.scaled" in
  if size = 0 then invalid_arg (Fmt.str "%s: size must be positive" fn);
  validate ~fn ~what:"size" size;
  let n_vehicles = max 1 (size * 3 / 4) in
  let n_addresses = max 1 (size / 2) in
  let cities_a = Array.of_list cities and makes_a = Array.of_list makes in
  let r = rng seed in
  let addresses =
    tabulate n_addresses (fun i ->
        Value.obj ~cls:"Address" ~oid:i
          [
            ("city", Value.str (pick_arr r cities_a));
            ("street", Value.str (Fmt.str "%d Main St" (i + 1)));
            ("zip", Value.int (10000 + int r 89999));
          ])
  in
  let vehicles =
    tabulate n_vehicles (fun i ->
        Value.obj ~cls:"Vehicle" ~oid:i
          [
            ("make", Value.str (pick_arr r makes_a));
            ("year", Value.int (1970 + int r 50));
          ])
  in
  let shallow =
    tabulate size (fun i ->
        Value.obj ~cls:"Person" ~oid:i
          [
            ("name", Value.str (Fmt.str "person-%d" i));
            ("age", Value.int (int r 80));
            ("addr", pick_arr r addresses);
            ("child", Value.set []);
            ("cars", Value.set []);
            ("grgs", Value.set []);
          ])
  in
  let sample_set max pool =
    if max = 0 || Array.length pool = 0 then Value.set []
    else
      let n = int r (max + 1) in
      Value.set (List.init n (fun _ -> pick_arr r pool))
  in
  let persons =
    tabulate size (fun i ->
        let fields =
          List.map
            (fun (k, v) ->
              match k with
              | "child" -> (k, sample_set default_params.max_children shallow)
              | "cars" -> (k, sample_set default_params.max_cars vehicles)
              | "grgs" -> (k, sample_set default_params.max_garages addresses)
              | _ -> (k, v))
            (obj_fields ~context:"Datagen.Store.scaled: person row"
               shallow.(i))
        in
        Value.obj ~cls:"Person" ~oid:i fields)
  in
  let persons = Array.to_list persons in
  let vehicles = Array.to_list vehicles in
  let addresses = Array.to_list addresses in
  {
    persons;
    vehicles;
    addresses;
    db =
      [
        ("P", Value.set persons);
        ("V", Value.set vehicles);
        ("A", Value.set addresses);
      ];
  }

(* A fixed, tiny, hand-auditable store used by unit tests. *)
let tiny () =
  let a0 = Value.obj ~cls:"Address" ~oid:0
      [ ("city", Value.str "Providence"); ("street", Value.str "1 Elm");
        ("zip", Value.int 10001) ]
  and a1 = Value.obj ~cls:"Address" ~oid:1
      [ ("city", Value.str "Boston"); ("street", Value.str "2 Oak");
        ("zip", Value.int 10002) ]
  in
  let v0 = Value.obj ~cls:"Vehicle" ~oid:0
      [ ("make", Value.str "Saab"); ("year", Value.int 1990) ]
  and v1 = Value.obj ~cls:"Vehicle" ~oid:1
      [ ("make", Value.str "Volvo"); ("year", Value.int 2001) ]
  and v2 = Value.obj ~cls:"Vehicle" ~oid:2
      [ ("make", Value.str "Dodge"); ("year", Value.int 2010) ]
  in
  let person oid name age addr children cars grgs =
    Value.obj ~cls:"Person" ~oid
      [
        ("name", Value.str name);
        ("age", Value.int age);
        ("addr", addr);
        ("child", Value.set children);
        ("cars", Value.set cars);
        ("grgs", Value.set grgs);
      ]
  in
  let carol = person 2 "carol" 12 a0 [] [] [] in
  let dave = person 3 "dave" 40 a1 [] [ v2 ] [ a1 ] in
  let alice = person 0 "alice" 30 a0 [ carol; dave ] [ v0; v1 ] [ a0; a1 ] in
  let bob = person 1 "bob" 20 a1 [ carol ] [ v1 ] [] in
  let persons = [ alice; bob; carol; dave ] in
  {
    persons;
    vehicles = [ v0; v1; v2 ];
    addresses = [ a0; a1 ];
    db =
      [
        ("P", Value.set persons);
        ("V", Value.set [ v0; v1; v2 ]);
        ("A", Value.set [ a0; a1 ]);
      ];
  }

(** A second schema and workload (Employee/Department), demonstrating that
    the algebra, translator, rules and optimizer are schema-generic. *)

val schema : Kola.Schema.t
(** Employee(ename*, salary, dept, mentors), Department(dname*, budget,
    dcity); extents E and D.  Starred attributes are annotated injective. *)

type params = {
  employees : int;
  departments : int;
  max_mentors : int;
  seed : int;
}

val default_params : params

type t = {
  employees : Kola.Value.t list;
  departments : Kola.Value.t list;
  db : (string * Kola.Value.t) list;
}

val generate : params -> t

val scaled : ?seed:int -> int -> t
(** [scaled ~seed n] is a benchmark-scale store with [n] employees and
    [max 8 (n/250)] departments, generated in O(n) with array-backed
    sampling; deterministic in [seed] alone.
    @raise Invalid_argument if [n] is zero, negative, or above
    {!Store.max_scaled_size} (no silent truncation). *)

val db : t -> (string * Kola.Value.t) list

val columnar : t -> Kola.Colstore.db
(** The columnar view of {!db}: E with unboxed salary/ename columns and
    dept dictionary-encoded into D; rows shared with the boxed store. *)

val dept_roster_oql : string
(** A hidden join over this schema (the Garage Query's shape). *)

val rich_mentors_oql : string
(** A data-dependent nested query that must not bottom out. *)

val mentor_pool_oql : string
(** A second hidden join: mentors pooled per department. *)

val city_salaries_oql : string
(** A selective scan-filter-map chain with no join. *)

val local_staff_oql : string
(** A membership filter against a closed (loop-invariant) subquery:
    per-element evaluation is O(|E| * |D|); hoisting plus a hashed probe
    is O(|E| + |D|). *)

val mentor_elite_oql : string
(** An intersection of two derived name sets: nested-loop intersection
    is O(n * m); hashing the smaller side is linear. *)

val payroll_oql : string
(** A filter + sum over one unboxed int column (salary); under eager
    dedup this sums the distinct over-threshold salaries. *)

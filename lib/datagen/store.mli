(** Deterministic generator for the paper's Person/Address/Vehicle
    database, plus the splitmix-style PRNG shared by the property tests and
    benchmarks. *)

type rng

val rng : int -> rng

val int : rng -> int -> int
(** Uniform in [0, bound). *)

val pick : rng -> 'a list -> 'a

val pick_arr : rng -> 'a array -> 'a
(** O(1) uniform pick; the scaled generators use this where [pick]'s
    [List.nth] would make generation quadratic. *)

val tabulate : int -> (int -> 'a) -> 'a array
(** [Array.init] with a guaranteed ascending application order, so
    PRNG-driven generation is identical on every host. *)

val obj_fields : context:string -> Kola.Value.t -> (string * Kola.Value.t) list
(** The fields of an object row.  Raises [Invalid_argument] with
    [context] and the offending value on anything that is not an object —
    row-deepening passes use this so malformed extents fail with a
    diagnosable message instead of [assert false]. *)

type params = {
  people : int;
  vehicles : int;
  addresses : int;
  max_children : int;
  max_cars : int;
  max_garages : int;
  seed : int;
}

val default_params : params
val small : params

val cities : string list
(** City-name domain shared by generators. *)

val makes : string list

type t = {
  persons : Kola.Value.t list;
  vehicles : Kola.Value.t list;
  addresses : Kola.Value.t list;
  db : (string * Kola.Value.t) list;
}

val max_scaled_size : int
(** Hard cap (2,000,000) for {!generate} and {!scaled}; sizes above it
    raise a descriptive [Invalid_argument] instead of truncating. *)

val generate : params -> t
(** Deterministic in [params.seed].
    @raise Invalid_argument on negative or over-{!max_scaled_size} sizes. *)

val scaled : ?seed:int -> int -> t
(** [scaled ~seed n] is a benchmark-scale store with [n] people (plus
    vehicles and addresses in the default ratios), generated in O(n) with
    array-backed sampling — usable up to {!max_scaled_size} where the
    list-based {!generate} is quadratic.  Deterministic in [seed] alone;
    byte-identical across hosts.
    @raise Invalid_argument if [n] is zero, negative, or above
    {!max_scaled_size} (no silent truncation). *)

val db : t -> (string * Kola.Value.t) list
(** The extents P, V, A. *)

val columnar : t -> Kola.Colstore.db
(** The columnar view of {!db}: typed column vectors per extent, rows
    shared physically with the boxed store. *)

val tiny : unit -> t
(** A fixed, hand-auditable four-person store used by unit tests. *)

(** Deterministic generator for the paper's Person/Address/Vehicle
    database, plus the splitmix-style PRNG shared by the property tests and
    benchmarks. *)

type rng

val rng : int -> rng

val int : rng -> int -> int
(** Uniform in [0, bound). *)

val pick : rng -> 'a list -> 'a

val obj_fields : context:string -> Kola.Value.t -> (string * Kola.Value.t) list
(** The fields of an object row.  Raises [Invalid_argument] with
    [context] and the offending value on anything that is not an object —
    row-deepening passes use this so malformed extents fail with a
    diagnosable message instead of [assert false]. *)

type params = {
  people : int;
  vehicles : int;
  addresses : int;
  max_children : int;
  max_cars : int;
  max_garages : int;
  seed : int;
}

val default_params : params
val small : params

val cities : string list
(** City-name domain shared by generators. *)

val makes : string list

type t = {
  persons : Kola.Value.t list;
  vehicles : Kola.Value.t list;
  addresses : Kola.Value.t list;
  db : (string * Kola.Value.t) list;
}

val generate : params -> t
(** Deterministic in [params.seed]. *)

val db : t -> (string * Kola.Value.t) list
(** The extents P, V, A. *)

val tiny : unit -> t
(** A fixed, hand-auditable four-person store used by unit tests. *)

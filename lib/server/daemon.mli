(** kolaoptd's engine room: one long-lived optimizer state shared by
    every request, a worker service with admission control, and the
    Unix-domain-socket serve loop.

    {2 What is shared, and how it is safe}

    - the {e hash-cons tables} ({!Kola.Term.Hc}) are global and striped
      with lock-free hit paths — a subterm interned for one request is
      reused verbatim by every later request (see the audit note in
      [lib/core/hashcons.ml]);
    - one {!Optimizer.Cost.cache}, one {!Optimizer.Cost.hc_cache} and
      one {!Optimizer.Cost.plan_cache} are shared across workers; their
      tables are mutex-guarded and their counters atomic;
    - an {e outcome cache} memoizes whole optimize answers keyed by the
      canonical query plus every outcome-affecting knob (engine, depth,
      states, e-graph budgets — never [jobs], outcomes are
      jobs-independent by construction).  Deadline-truncated outcomes
      are never cached: they depend on timing, and a later request
      deserves the full answer.

    Requests run at [jobs = 1] concurrently; a request asking for
    intra-request parallelism ([jobs <> 1]) serializes behind a pool
    lease, because {!Kola_parallel.Pool} is single-submitter.  Traced
    requests ([telemetry: true]) serialize behind the global telemetry
    session and embed their own domain's spans in the response.

    {2 Rule packs}

    A search request may carry inline COKO source in its ["rules"] field.
    Admission certifies every pack rule through a shared
    {!Rules.Cert.Cache} (persisted when [params.cert_cache] names a
    file) and memoizes the outcome by source digest, so re-sending a
    pack costs one probe.  An admitted pack's rules shadow same-named
    catalog rules for that request only; its digest joins the outcome
    key.  A failing rule rejects the whole request with
    [{"status":"rejected"}] and per-rule verdicts (counterexamples
    included) — a pack rule is never silently dropped.  [stats] reports
    admissions, rejections, cert-cache hits/misses and per-pack-rule
    winning-path fire counts. *)

type t

type params = {
  workers : int;  (** worker domains; <= 0 means one per recommended core *)
  queue : int;  (** admission bound: pending connections beyond the
                    workers before rejections start *)
  people : int;
  vehicles : int;
  seed : int;  (** sample-store shape, defaults matching [kolaopt]'s *)
  outcome_capacity : int;  (** resident outcome-cache entries *)
  cert_cache : string option;
      (** persisted certificate cache file for rule-pack admission —
          verdicts survive restarts, so a known pack re-admits without
          re-certifying; [None] (default) keeps verdicts in memory *)
}

val default_params : params

val create : ?params:params -> unit -> t
(** Build the shared state and spawn the worker service.  The sample
    database is generated once and shared (cost-cache validity is
    per-database, so one database means the caches never flush). *)

val db : t -> (string * Kola.Value.t) list

val handle : t -> Protocol.t -> Json.t
(** Answer one parsed request.  Total: evaluation errors, parse errors
    in replayed sources, and unexpected exceptions all come back as
    [{"status":"error"}] responses.  [Command (Shutdown, _)] flips the
    stop flag the serve loop polls. *)

val handle_line : t -> string -> Json.t
(** {!Protocol.of_line} then {!handle}; malformed input becomes a
    structured error response. *)

val stopping : t -> bool

val request_stop : t -> unit
(** What [{"cmd":"shutdown"}] does; exposed for embedding. *)

val service_stats : t -> Kola_parallel.Pool.Service.stats

val serve : ?ready:(unit -> unit) -> socket:string -> t -> unit
(** Bind [socket] (unlinking any stale file), call [ready] once
    accepting, and serve until {!request_stop}: each accepted connection
    is submitted to the worker service — or answered with
    {!Protocol.rejected_response} and closed when the admission queue is
    full — and each connection's lines are answered in order until EOF.
    On return the service has drained, the listener is closed and the
    socket file removed. *)

val shutdown : t -> unit
(** Drain and join the worker service (for embedders that never called
    {!serve}, or after it returned). *)

(** Blocking newline-delimited JSON client — the other end of the wire,
    used by [kolaoptd request], the smoke test and the serving bench. *)
module Client : sig
  type conn

  val connect : string -> conn
  (** Connect to a daemon socket path.  @raise Unix.Unix_error *)

  val send : conn -> Json.t -> unit
  (** Write one request line (no response expected yet). *)

  val recv : conn -> Json.t
  (** Read one response line.  @raise End_of_file on a closed peer;
      @raise Json.Parse_error on garbage (a daemon never sends any). *)

  val request : conn -> Json.t -> Json.t
  (** {!send} then {!recv}. *)

  val close : conn -> unit
end

(** The kolaoptd wire protocol: newline-delimited JSON, one request per
    line in, one response per line out.

    An optimize request selects a query (inline OQL or one of the
    paper's named KOLA queries), an engine, and the same knobs [kolaopt
    search] exposes; defaults match the CLI's, so a bare
    [{"query": "..."}] and a bare [kolaopt search "..."] answer with
    bit-identical outcomes.  Admin commands ([ping], [stats], [flush],
    [shutdown]) drive the daemon itself.

    Every parse or validation failure is a [(Error msg)] value — the
    daemon turns it into a [{"status":"error"}] response; nothing in
    this module raises on untrusted input. *)

(** {1 Field validators}

    Shared with the CLI (both [kolaopt]'s cmdliner conversions and the
    daemon's request parsing reject the same inputs with the same
    message shape). *)

val positive_int : what:string -> int -> (int, string) result
(** [Error "<what> must be positive, got <n>"] unless [n > 0]. *)

val positive_float : what:string -> float -> (float, string) result
(** [Error "<what> must be positive, got <g>"] unless [g > 0] (so a
    deadline can never be born expired). *)

val nonneg_int : what:string -> int -> (int, string) result
(** [Error] unless [n >= 0] — the [jobs] convention (0 = one domain per
    recommended core). *)

(** {1 Requests} *)

type source =
  | Oql of string  (** inline OQL, translated per request *)
  | Paper of string  (** "t1k" | "t2k" | "k4" | "kg1" *)

val paper_query : string -> (Kola.Term.query, string) result
(** The named paper query, or an error listing the accepted names. *)

type optimize = {
  id : Json.t;  (** echoed verbatim in the response; [Null] if absent *)
  source : source;
  engine : Optimizer.Search.engine;
  depth : int;  (** default 6, positive *)
  states : int;  (** default 2000, positive *)
  jobs : int;  (** default 1, non-negative *)
  deadline : float option;  (** seconds, strictly positive *)
  node_budget : int option;  (** e-graph, strictly positive *)
  iter_budget : int option;  (** e-graph, strictly positive *)
  telemetry : bool;
      (** collect this request's telemetry spans and embed them in the
          response *)
  explain : bool;
      (** run the full pipeline (normalize + untangle + plan choice over
          the shared plan cache) instead of rewrite-space search *)
  execute : Kola_exec.Exec.backend option;
      (** with [explain]: also execute the chosen plan through this
          backend and report execution stats; [compiled] falls back to
          the interpreter on unsupported plans (reported, never wrong) *)
  layout : Kola_exec.Exec.layout option;
      (** with [execute]: store layout for the run — ["columnar"] binds
          the plan to the daemon's preloaded column store (eligible
          operators run as column kernels, [jobs] domains fan pure
          kernels over morsels); results are identical across layouts
          and jobs counts *)
  rules : string option;
      (** inline COKO rule-pack source (the contents of a [.coko] file,
          not a path — the daemon never reads client filesystems).  The
          daemon admits the pack — certifying every rule, caching the
          admission by source digest — before searching with its rules
          shadowing same-named catalog rules; a failing rule rejects the
          request with each refuted rule's counterexample.  Search
          requests only; [explain] runs fixed transformations. *)
  sleep_ms : int;
      (** debug lever: hold the worker for this long before answering —
          lets tests and the smoke drive the admission gate
          deterministically *)
}

type command = Ping | Stats | Flush | Shutdown

type t =
  | Optimize of optimize
  | Command of command * Json.t  (** command, request id *)

val engine_label : Optimizer.Search.engine -> string

val of_json : Json.t -> (t, string) result
val of_line : string -> (t, string) result
(** [of_line] parses the JSON first; malformed JSON is an [Error] like
    any other bad field. *)

(** {1 Response shells}

    The daemon assembles successful responses itself (they embed outcome
    data); the failure shells live here so every layer — worker, accept
    loop, client — emits the same shape. *)

val error_response : ?id:Json.t -> queue_depth:int -> string -> Json.t
(** [{"id":…,"status":"error","error":msg,"queue_depth":n}] *)

val rejected_response : queue_depth:int -> Json.t
(** [{"status":"rejected","error":"server overloaded…","queue_depth":n}]
    — the 429-style admission-control answer, written by the accept
    loop without ever touching a worker. *)

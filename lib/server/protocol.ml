(* Request parsing and validation for the newline-delimited JSON
   protocol.  Everything is result-valued: untrusted input can only ever
   produce a structured error response, never an exception that would
   cost a worker. *)

(* ------------------------------------------------------------------ *)
(* Validators, shared with kolaopt's cmdliner conversions so the CLI and
   the daemon reject the same inputs with the same messages. *)

let positive_int ~what n =
  if n > 0 then Ok n else Error (Printf.sprintf "%s must be positive, got %d" what n)

let positive_float ~what g =
  if g > 0. then Ok g
  else Error (Printf.sprintf "%s must be positive, got %g" what g)

let nonneg_int ~what n =
  if n >= 0 then Ok n
  else Error (Printf.sprintf "%s must be non-negative, got %d" what n)

(* ------------------------------------------------------------------ *)
(* Requests. *)

type source = Oql of string | Paper of string

let paper_query name =
  match String.lowercase_ascii name with
  | "t1k" -> Ok Kola.Paper.t1k_source
  | "t2k" -> Ok Kola.Paper.t2k_source
  | "k4" -> Ok Kola.Paper.k4
  | "kg1" -> Ok Kola.Paper.kg1
  | other ->
    Error
      (Printf.sprintf "unknown paper query %S, accepted: t1k, t2k, k4, kg1"
         other)

type optimize = {
  id : Json.t;
  source : source;
  engine : Optimizer.Search.engine;
  depth : int;
  states : int;
  jobs : int;
  deadline : float option;
  node_budget : int option;
  iter_budget : int option;
  telemetry : bool;
  explain : bool;
  execute : Kola_exec.Exec.backend option;
  layout : Kola_exec.Exec.layout option;
  rules : string option;
  sleep_ms : int;
}

type command = Ping | Stats | Flush | Shutdown

type t = Optimize of optimize | Command of command * Json.t

let engine_label = function
  | Optimizer.Search.Bfs -> "bfs"
  | Optimizer.Search.Egraph -> "egraph"

let ( let* ) = Result.bind

(* Typed field access: [None] (absent) falls back to the default;
   present-but-wrongly-typed is an error naming the field. *)
let opt_field json name access ty =
  match Json.mem name json with
  | None -> Ok None
  | Some v -> (
    match access v with
    | Some x -> Ok (Some x)
    | None -> Error (Printf.sprintf "field %S must be %s" name ty))

let int_field json name ~default validate =
  let* v = opt_field json name Json.int "an integer" in
  match v with
  | None -> Ok default
  | Some n -> validate n

let engine_of_json json =
  let* v = opt_field json "engine" Json.str "a string" in
  match v with
  | None -> Ok Optimizer.Search.Bfs
  | Some s -> (
    match String.lowercase_ascii s with
    | "bfs" -> Ok Optimizer.Search.Bfs
    | "egraph" -> Ok Optimizer.Search.Egraph
    | other ->
      Error (Printf.sprintf "unknown engine %S, accepted engines: bfs, egraph" other))

let source_of_json json =
  match (Json.mem "query" json, Json.mem "paper" json) with
  | Some _, Some _ -> Error "request has both \"query\" and \"paper\"; send one"
  | Some q, None -> (
    match Json.str q with
    | Some s -> Ok (Oql s)
    | None -> Error "field \"query\" must be a string")
  | None, Some p -> (
    match Json.str p with
    | Some s ->
      (* Resolve now so an unknown name fails at parse time, but carry
         the name — the worker re-resolves when answering. *)
      let* _ = paper_query s in
      Ok (Paper s)
    | None -> Error "field \"paper\" must be a string")
  | None, None -> Error "request needs \"query\" (OQL) or \"paper\" (t1k|t2k|k4|kg1)"

let bool_field json name =
  let* v = opt_field json name Json.bool "a boolean" in
  Ok (Option.value ~default:false v)

let optimize_of_json json =
  let id = Option.value ~default:Json.Null (Json.mem "id" json) in
  let* source = source_of_json json in
  let* engine = engine_of_json json in
  let* depth = int_field json "depth" ~default:6 (positive_int ~what:"\"depth\"") in
  let* states =
    int_field json "states" ~default:2000 (positive_int ~what:"\"states\"")
  in
  let* jobs = int_field json "jobs" ~default:1 (nonneg_int ~what:"\"jobs\"") in
  let* deadline =
    let* v = opt_field json "deadline" Json.num "a number" in
    match v with
    | None -> Ok None
    | Some d ->
      let* d = positive_float ~what:"\"deadline\"" d in
      Ok (Some d)
  in
  let budget name =
    let* v = opt_field json name Json.int "an integer" in
    match v with
    | None -> Ok None
    | Some n ->
      let* n = positive_int ~what:(Printf.sprintf "%S" name) n in
      Ok (Some n)
  in
  let* node_budget = budget "node_budget" in
  let* iter_budget = budget "iter_budget" in
  let* telemetry = bool_field json "telemetry" in
  let* explain = bool_field json "explain" in
  let* execute =
    let* v = opt_field json "execute" Json.str "a string" in
    match v with
    | None -> Ok None
    | Some s -> (
      (* Same parser as kolaopt's --execute, so CLI and wire requests
         reject the same names with the same message. *)
      match Kola_exec.Exec.backend_of_string s with
      | Ok b ->
        if not explain then
          Error "field \"execute\" requires \"explain\": true (execution runs the pipeline's chosen plan)"
        else Ok (Some b)
      | Error msg -> Error msg)
  in
  let* layout =
    let* v = opt_field json "layout" Json.str "a string" in
    match v with
    | None -> Ok None
    | Some s -> (
      (* Same parser as kolaopt's --layout, so CLI and wire requests
         reject the same names with the same message. *)
      match Kola_exec.Exec.layout_of_string s with
      | Ok l ->
        if execute = None then
          Error
            "field \"layout\" requires \"execute\" (the layout selects how \
             the chosen plan is executed)"
        else Ok (Some l)
      | Error msg -> Error msg)
  in
  let* rules =
    let* v = opt_field json "rules" Json.str "a string" in
    match v with
    | None -> Ok None
    | Some s ->
      if explain then
        Error
          "field \"rules\" applies to rewrite-space search, not \"explain\" \
           (the pipeline runs fixed transformations)"
      else if String.trim s = "" then
        Error "field \"rules\" must be non-empty COKO source"
      else Ok (Some s)
  in
  let* sleep_ms =
    int_field json "sleep_ms" ~default:0 (nonneg_int ~what:"\"sleep_ms\"")
  in
  Ok
    (Optimize
       {
         id;
         source;
         engine;
         depth;
         states;
         jobs;
         deadline;
         node_budget;
         iter_budget;
         telemetry;
         explain;
         execute;
         layout;
         rules;
         sleep_ms;
       })

let of_json json =
  match json with
  | Json.Obj _ -> (
    let id = Option.value ~default:Json.Null (Json.mem "id" json) in
    match Json.mem "cmd" json with
    | Some cmd -> (
      match Json.str cmd with
      | Some "ping" -> Ok (Command (Ping, id))
      | Some "stats" -> Ok (Command (Stats, id))
      | Some "flush" -> Ok (Command (Flush, id))
      | Some "shutdown" -> Ok (Command (Shutdown, id))
      | Some other ->
        Error
          (Printf.sprintf
             "unknown command %S, accepted: ping, stats, flush, shutdown" other)
      | None -> Error "field \"cmd\" must be a string")
    | None -> optimize_of_json json)
  | _ -> Error "request must be a JSON object"

let of_line line =
  match Json.parse_result line with
  | Error msg -> Error (Printf.sprintf "parse error: %s" msg)
  | Ok json -> of_json json

(* ------------------------------------------------------------------ *)
(* Failure shells. *)

let error_response ?(id = Json.Null) ~queue_depth msg =
  Json.Obj
    (("id", id)
    :: [
         ("status", Json.Str "error");
         ("error", Json.Str msg);
         ("queue_depth", Json.Num (float_of_int queue_depth));
       ])

let rejected_response ~queue_depth =
  Json.Obj
    [
      ("status", Json.Str "rejected");
      ("error", Json.Str "server overloaded: admission queue full");
      ("queue_depth", Json.Num (float_of_int queue_depth));
    ]

(* Minimal JSON: a hand-rolled recursive-descent parser and a compact
   printer.  The daemon frames one JSON value per line, so the printer
   never emits newlines and the parser treats any well-formed value
   followed by trailing whitespace as a complete document. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail pos msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg pos))

(* ------------------------------------------------------------------ *)
(* Parser: one mutable cursor over the input string. *)

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c.pos (Printf.sprintf "expected '%c', found '%c'" ch x)
  | None -> fail c.pos (Printf.sprintf "expected '%c', found end of input" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.equal (String.sub c.src c.pos n) word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c.pos (Printf.sprintf "expected %S" word)

(* Encode a Unicode scalar value as UTF-8 into [buf]. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 c =
  let digit ch =
    match ch with
    | '0' .. '9' -> Char.code ch - Char.code '0'
    | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
    | _ -> fail c.pos "bad \\u escape"
  in
  if c.pos + 4 > String.length c.src then fail c.pos "truncated \\u escape";
  let v =
    (digit c.src.[c.pos] lsl 12)
    lor (digit c.src.[c.pos + 1] lsl 8)
    lor (digit c.src.[c.pos + 2] lsl 4)
    lor digit c.src.[c.pos + 3]
  in
  c.pos <- c.pos + 4;
  v

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c.pos "unterminated string"
    | Some '"' ->
      advance c;
      Buffer.contents buf
    | Some '\\' ->
      advance c;
      (match peek c with
      | None -> fail c.pos "unterminated escape"
      | Some ch ->
        advance c;
        (match ch with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let u = hex4 c in
          (* Surrogate pair: a high surrogate must be followed by
             [\uDC00-\uDFFF]; lone surrogates become U+FFFD. *)
          let u =
            if u >= 0xD800 && u <= 0xDBFF then
              if
                c.pos + 6 <= String.length c.src
                && c.src.[c.pos] = '\\'
                && c.src.[c.pos + 1] = 'u'
              then begin
                c.pos <- c.pos + 2;
                let lo = hex4 c in
                if lo >= 0xDC00 && lo <= 0xDFFF then
                  0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00)
                else 0xFFFD
              end
              else 0xFFFD
            else if u >= 0xDC00 && u <= 0xDFFF then 0xFFFD
            else u
          in
          add_utf8 buf u
        | ch -> fail c.pos (Printf.sprintf "bad escape '\\%c'" ch)));
      go ()
    | Some ch when Char.code ch < 0x20 -> fail c.pos "control character in string"
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let consume_while pred =
    let rec go () =
      match peek c with
      | Some ch when pred ch ->
        advance c;
        go ()
      | _ -> ()
    in
    go ()
  in
  if peek c = Some '-' then advance c;
  consume_while (function '0' .. '9' -> true | _ -> false);
  if peek c = Some '.' then begin
    advance c;
    consume_while (function '0' .. '9' -> true | _ -> false)
  end;
  (match peek c with
  | Some ('e' | 'E') ->
    advance c;
    (match peek c with Some ('+' | '-') -> advance c | _ -> ());
    consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  let text = String.sub c.src start (c.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail start (Printf.sprintf "bad number %S" text)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c.pos "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance c;
          Obj (List.rev ((k, v) :: acc))
        | _ -> fail c.pos "expected ',' or '}'"
      in
      fields []
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          Arr (List.rev (v :: acc))
        | _ -> fail c.pos "expected ',' or ']'"
      in
      items []
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number c)
  | Some ch -> fail c.pos (Printf.sprintf "unexpected character '%c'" ch)

let parse s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  (match peek c with
  | None -> ()
  | Some ch -> fail c.pos (Printf.sprintf "trailing input '%c'" ch));
  v

let parse_result s =
  match parse s with v -> Ok v | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Printer. *)

let escape_into buf s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s

let add_num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else if Float.is_finite f then
    Buffer.add_string buf (Printf.sprintf "%.17g" f)
  else Buffer.add_string buf "null" (* JSON has no inf/nan *)

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool true -> Buffer.add_string buf "true"
    | Bool false -> Buffer.add_string buf "false"
    | Num f -> add_num buf f
    | Str s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
    | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          go x)
        xs;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_into buf k;
          Buffer.add_string buf "\":";
          go x)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Accessors. *)

let mem k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None

let int = function
  | Num f when Float.is_integer f && Float.abs f <= 1e15 ->
    Some (int_of_float f)
  | _ -> None

let bool = function Bool b -> Some b | _ -> None
let arr = function Arr xs -> Some xs | _ -> None

(** A minimal JSON codec for the wire protocol — the repo takes no
    external JSON dependency, and the daemon only needs flat-ish
    objects of scalars and small arrays.

    The parser accepts standard JSON (RFC 8259) with the usual
    escapes; [\uXXXX] escapes outside ASCII are transcoded to UTF-8.
    Numbers are represented as OCaml floats (fine for the protocol's
    ids, budgets and latencies; not a general-purpose JSON library). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error on malformed input, with a position-carrying
    message — the daemon turns this into a structured error response,
    never a dead worker. *)

val parse_result : string -> (t, string) result
(** {!parse} with the error as data. *)

val to_string : t -> string
(** Compact (single-line) rendering — one response per line is the
    framing contract. *)

(** {1 Accessors} — total, option-returning; the protocol layer turns
    [None] into field-level error messages. *)

val mem : string -> t -> t option
(** Field of an object; [None] on missing field or non-object. *)

val str : t -> string option
val num : t -> float option
val int : t -> int option
(** [num] truncated; [None] when not a number or not integral. *)

val bool : t -> bool option
val arr : t -> t list option

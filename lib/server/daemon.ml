(* The optimizer-as-a-service state machine.  One [t] lives for the
   whole daemon process; every request handler runs on a worker domain
   of the service and shares:

   - the global hash-cons tables (striped, lock-free hits — see the
     audit note in lib/core/hashcons.ml);
   - one cost cache of each kind (mutex-guarded tables, atomic
     counters — Cost.Memo);
   - the outcome cache below, memoizing whole optimize answers.

   Two things cannot be shared concurrently and serialize behind
   dedicated locks instead: the domain pool (single-submitter; only
   requests asking for intra-request parallelism take the lease) and
   the telemetry session (global; only traced requests take it). *)

module Pool = Kola_parallel.Pool
module Search = Optimizer.Search
module Cost = Optimizer.Cost
module Telemetry = Kola_telemetry.Telemetry

type params = {
  workers : int;
  queue : int;
  people : int;
  vehicles : int;
  seed : int;
  outcome_capacity : int;
  cert_cache : string option;
      (* persisted certificate cache for rule-pack admission; [None]
         keeps verdicts in memory for the daemon's lifetime only *)
}

(* Store shape defaults match kolaopt's CLI defaults, so a daemon and a
   CLI run cost plans against identical sample databases out of the
   box — the precondition for bit-identical outcomes. *)
let default_params =
  {
    workers = 0;
    queue = 64;
    people = 40;
    vehicles = 30;
    seed = 42;
    outcome_capacity = 4096;
    cert_cache = None;
  }

(* ------------------------------------------------------------------ *)
(* Outcome cache: response cores keyed by canonical query + every
   outcome-affecting knob.  Clear-on-full keeps it trivially bounded
   (entries are small; the interesting reuse is exact repeats, which
   re-warm in one miss each). *)

type ocache = {
  tbl : (string, (string * Json.t) list) Hashtbl.t;
  cap : int;
  olock : Mutex.t;
  ohits : int Atomic.t;
  omisses : int Atomic.t;
  oevictions : int Atomic.t;
}

let ocache_create cap =
  {
    tbl = Hashtbl.create 256;
    cap = max 1 cap;
    olock = Mutex.create ();
    ohits = Atomic.make 0;
    omisses = Atomic.make 0;
    oevictions = Atomic.make 0;
  }

let ocache_find oc key =
  let v = Mutex.protect oc.olock (fun () -> Hashtbl.find_opt oc.tbl key) in
  (match v with
  | Some _ ->
    Atomic.incr oc.ohits;
    Telemetry.count "serve.outcome_hit"
  | None ->
    Atomic.incr oc.omisses;
    Telemetry.count "serve.outcome_miss");
  v

let ocache_insert oc key v =
  Mutex.protect oc.olock @@ fun () ->
  if Hashtbl.length oc.tbl >= oc.cap then begin
    let n = Hashtbl.length oc.tbl in
    Hashtbl.reset oc.tbl;
    Atomic.fetch_and_add oc.oevictions n |> ignore
  end;
  Hashtbl.replace oc.tbl key v

let ocache_clear oc =
  Mutex.protect oc.olock @@ fun () ->
  Atomic.fetch_and_add oc.oevictions (Hashtbl.length oc.tbl) |> ignore;
  Hashtbl.reset oc.tbl

(* ------------------------------------------------------------------ *)

type t = {
  db : (string * Kola.Value.t) list;
  coldb : Kola.Colstore.db;
      (* the columnar view of [db], materialized once at startup and
         shared by every columnar execute request (rows shared with the
         boxed store, so a request can never see a different database) *)
  cache : Cost.cache;
  hc_cache : Cost.hc_cache;
  plan_cache : Cost.plan_cache;
  outcomes : ocache;
  service : Pool.Service.t;
  pool_lease : Mutex.t;
  telemetry_lock : Mutex.t;
  certs : Rules.Cert.Cache.t;
      (* shared certificate cache: pack admission certifies through it,
         so an unchanged rule re-admits in O(1) even across daemon
         restarts when [params.cert_cache] names a file *)
  packs : (string, (Coko.Pack.admission, Coko.Pack.admission) result) Hashtbl.t;
      (* admission outcomes keyed by pack source digest — re-sending the
         same pack costs one table probe, success or failure *)
  pack_lock : Mutex.t;
      (* guards [certs], [packs] and [pack_fires]: admissions are rare
         and serialize; searches touch none of these *)
  pack_fires : (string, int) Hashtbl.t;
      (* daemon-lifetime winning-path fire counts, per pack rule name *)
  pack_hits : int Atomic.t;
  pack_admitted : int Atomic.t;
  pack_rejected : int Atomic.t;
  stop : bool Atomic.t;
  served : int Atomic.t;
  errored : int Atomic.t;
  started : float;
}

let create ?(params = default_params) () =
  let store =
    Datagen.Store.generate
      {
        Datagen.Store.default_params with
        people = params.people;
        vehicles = params.vehicles;
        seed = params.seed;
      }
  in
  {
    db = Datagen.Store.db store;
    coldb = Datagen.Store.columnar store;
    cache = Cost.cache ();
    hc_cache = Cost.hc_cache ();
    plan_cache = Cost.plan_cache ();
    outcomes = ocache_create params.outcome_capacity;
    service = Pool.Service.create ~workers:params.workers ~queue:params.queue ();
    pool_lease = Mutex.create ();
    telemetry_lock = Mutex.create ();
    certs =
      (match params.cert_cache with
      | Some path -> Rules.Cert.Cache.load path
      | None -> Rules.Cert.Cache.in_memory ());
    packs = Hashtbl.create 16;
    pack_lock = Mutex.create ();
    pack_fires = Hashtbl.create 16;
    pack_hits = Atomic.make 0;
    pack_admitted = Atomic.make 0;
    pack_rejected = Atomic.make 0;
    stop = Atomic.make false;
    served = Atomic.make 0;
    errored = Atomic.make 0;
    started = Telemetry.now ();
  }

let db t = t.db
let stopping t = Atomic.get t.stop
let request_stop t = Atomic.set t.stop true
let service_stats t = Pool.Service.stats t.service
let queue_depth t = Pool.Service.depth t.service

(* ------------------------------------------------------------------ *)
(* Response building. *)

let jnum f = Json.Num f
let jint n = Json.Num (float_of_int n)
let jstr s = Json.Str s

let cost_stats_json (s : Cost.stats) =
  Json.Obj
    [
      ("hits", jint s.Cost.hits);
      ("misses", jint s.Cost.misses);
      ("evictions", jint s.Cost.evictions);
      ("entries", jint s.Cost.entries);
      ("capacity", jint s.Cost.capacity);
    ]

(* The per-request span export: this worker domain's spans only (other
   workers record into the same global session; their events belong to
   their own requests), aggregated by name like the CLI's --stats
   summary.  Counters are merged across domains at stop time and cannot
   be attributed, so they are reported whole-trace. *)
let telemetry_json (tr : Telemetry.trace) =
  let me = (Domain.self () :> int) in
  let mine =
    {
      tr with
      Telemetry.spans =
        List.filter (fun s -> s.Telemetry.tid = me) tr.Telemetry.spans;
      marks =
        List.filter (fun m -> m.Telemetry.mtid = me) tr.Telemetry.marks;
    }
  in
  Json.Obj
    [
      ("duration_us", jnum tr.Telemetry.duration_us);
      ( "spans",
        Json.Arr
          (List.map
             (fun (name, calls, total_us) ->
               Json.Obj
                 [
                   ("name", jstr name);
                   ("calls", jint calls);
                   ("total_us", jnum total_us);
                 ])
             (Telemetry.span_totals mine)) );
      ( "counters",
        Json.Obj (List.map (fun (k, n) -> (k, jint n)) tr.Telemetry.counters) );
    ]

(* ------------------------------------------------------------------ *)
(* Rule-pack admission.  A pack arrives as inline COKO source; admission
   parses it, certifies every rule through the shared certificate cache,
   and memoizes the outcome by source digest.  A failing rule rejects the
   whole pack with a structured response — never a silent drop. *)

let verdict_json (v : Rules.Cert.verdict) =
  Json.Obj
    ([
       ("name", jstr v.Rules.Cert.name);
       ("ok", Json.Bool v.Rules.Cert.ok);
       ("mode", jstr (Rules.Cert.mode_name v.Rules.Cert.vmode));
       ("instances", jint v.Rules.Cert.vinstances);
       ("checks", jint v.Rules.Cert.vchecks);
       ("cached", Json.Bool v.Rules.Cert.from_cache);
     ]
    @ match v.Rules.Cert.reason with
      | None -> []
      | Some reason -> [ ("reason", jstr reason) ])

let pack_rejection_fields (a : Coko.Pack.admission) =
  let failed = Coko.Pack.rejected a in
  [
    ("status", jstr "rejected");
    ( "error",
      jstr
        (Printf.sprintf "rule pack rejected: %d of %d rule%s failed certification"
           (List.length failed)
           (List.length a.Coko.Pack.verdicts)
           (if List.length a.Coko.Pack.verdicts = 1 then "" else "s")) );
    ("pack_digest", jstr a.Coko.Pack.pack.Coko.Pack.digest);
    ("rules", Json.Arr (List.map verdict_json a.Coko.Pack.verdicts));
  ]

(* Parse + certify-or-recall.  Certification serializes behind
   [pack_lock] (it is rare and cheap at small scope); the digest probe
   makes re-sent packs O(1). *)
let admit_pack t source =
  match Coko.Pack.of_string source with
  | exception Coko.Syntax.Error msg -> Error (`Msg ("pack error: " ^ msg))
  | pack -> (
    let digest = pack.Coko.Pack.digest in
    let outcome =
      Mutex.protect t.pack_lock @@ fun () ->
      match Hashtbl.find_opt t.packs digest with
      | Some outcome ->
        Atomic.incr t.pack_hits;
        Telemetry.count "serve.pack_hit";
        outcome
      | None ->
        let outcome = Coko.Pack.admit ~cache:t.certs pack in
        Rules.Cert.Cache.save t.certs;
        Hashtbl.replace t.packs digest outcome;
        (match outcome with
        | Ok _ ->
          Atomic.incr t.pack_admitted;
          Telemetry.count "serve.pack_admit"
        | Error _ ->
          Atomic.incr t.pack_rejected;
          Telemetry.count "serve.pack_reject");
        outcome
    in
    match outcome with
    | Ok a -> Ok a
    | Error a -> Error (`Rejected (pack_rejection_fields a)))

let record_pack_fires t pack_rules path =
  Mutex.protect t.pack_lock @@ fun () ->
  List.iter
    (fun (r : Rewrite.Rule.t) ->
      let name = r.Rewrite.Rule.name in
      let fired = List.length (List.filter (String.equal name) path) in
      if fired > 0 then begin
        Telemetry.count ~n:fired ("serve.pack_fire." ^ name);
        Hashtbl.replace t.pack_fires name
          (fired + Option.value ~default:0 (Hashtbl.find_opt t.pack_fires name))
      end)
    pack_rules

(* ------------------------------------------------------------------ *)
(* The optimize path. *)

let ( let* ) = Result.bind

let query_of_source (src : Protocol.source) =
  match src with
  | Protocol.Paper name -> (
    match Protocol.paper_query name with
    | Ok q -> q
    | Error msg -> failwith msg (* unreachable: of_json resolved it *))
  | Protocol.Oql text -> Translate.Compile.query (Oql.Parser.parse text)

let config_of ?pack t (r : Protocol.optimize) =
  let egraph_budgets =
    let b = Search.default_config.Search.egraph_budgets in
    {
      b with
      Kola_egraph.Saturate.max_enodes =
        Option.value ~default:b.Kola_egraph.Saturate.max_enodes r.node_budget;
      max_iterations =
        Option.value ~default:b.Kola_egraph.Saturate.max_iterations
          r.iter_budget;
    }
  in
  let rules =
    match pack with
    | None -> Search.default_config.Search.rules
    | Some (a : Coko.Pack.admission) ->
      Coko.Pack.shadow ~base:Rules.Catalog.all
        (Coko.Pack.rules a.Coko.Pack.pack)
  in
  {
    Search.default_config with
    Search.engine = r.Protocol.engine;
    rules;
    egraph_budgets;
    max_depth = r.Protocol.depth;
    max_states = r.Protocol.states;
    sample_db = t.db;
    jobs = r.Protocol.jobs;
    deadline = r.Protocol.deadline;
    cost_cache = Some t.cache;
    hc_cost_cache = Some t.hc_cache;
  }

(* Everything that makes the outcome, and nothing that doesn't: jobs is
   excluded (outcomes are bit-identical at every jobs count — PR 2/3/6
   invariants), and so is the deadline (a cached complete outcome is a
   valid answer for a deadlined request; deadline-truncated outcomes are
   never inserted). *)
let outcome_key ?pack ~config q =
  Printf.sprintf "%s|%s|%d|%d|%d|%d|%s"
    (Search.canonical q)
    (Protocol.engine_label config.Search.engine)
    config.Search.max_depth config.Search.max_states
    config.Search.egraph_budgets.Kola_egraph.Saturate.max_enodes
    config.Search.egraph_budgets.Kola_egraph.Saturate.max_iterations
    (* a pack changes which rules search with; its source digest keys
       the outcome (no pack = "-") *)
    (match pack with
    | None -> "-"
    | Some (a : Coko.Pack.admission) -> a.Coko.Pack.pack.Coko.Pack.digest)

let search_core ?pack t (r : Protocol.optimize) q :
    (string * Json.t) list * [ `Hit | `Miss ] =
  let config = config_of ?pack t r in
  let key = outcome_key ?pack ~config q in
  match ocache_find t.outcomes key with
  | Some core -> (core, `Hit)
  | None ->
    let explore () = Search.explore ~config q in
    let o =
      (* The domain pool is single-submitter, so intra-request
         parallelism serializes across requests behind the lease. *)
      if r.Protocol.jobs = 1 then explore ()
      else Mutex.protect t.pool_lease explore
    in
    let pack_fields =
      match pack with
      | None -> []
      | Some (a : Coko.Pack.admission) ->
        let pack_rules = Coko.Pack.rules a.Coko.Pack.pack in
        let path = o.Search.best.Search.path in
        (* Daemon-lifetime fire counters bump only here (a cached
           outcome means no new search, so no new firings). *)
        record_pack_fires t pack_rules path;
        [
          ("pack_digest", jstr a.Coko.Pack.pack.Coko.Pack.digest);
          ("pack_rules", Json.Arr (List.map verdict_json a.Coko.Pack.verdicts));
          ( "pack_fired",
            Json.Obj
              (List.map
                 (fun (ru : Rewrite.Rule.t) ->
                   let name = ru.Rewrite.Rule.name in
                   ( name,
                     jint
                       (List.length (List.filter (String.equal name) path)) ))
                 pack_rules) );
        ]
    in
    let core =
      [
        ("status", jstr "ok");
        ("engine", jstr (Protocol.engine_label r.Protocol.engine));
        ("cost", jnum o.Search.best.Search.cost);
        ("plan", jstr (Fmt.str "%a" Kola.Pretty.pp_query o.Search.best.Search.query));
        ("path", Json.Arr (List.map jstr o.Search.best.Search.path));
        ("explored", jint o.Search.explored);
        ("stop", jstr (Search.stop_reason_label o.Search.stop));
        ("seen_states", jint o.Search.seen_states);
        ( "cache",
          Json.Obj
            [
              ("hits", jint o.Search.cache_hits);
              ("misses", jint o.Search.cache_misses);
              ("evictions", jint o.Search.cache_evictions);
            ] );
        ("sharing_ratio", jnum o.Search.sharing_ratio);
      ]
      @ pack_fields
    in
    if o.Search.stop <> Search.Deadline then ocache_insert t.outcomes key core;
    (core, `Miss)

let explain_core t (r : Protocol.optimize) :
    ((string * Json.t) list * [ `Hit | `Miss ], string) result =
  match r.Protocol.source with
  | Protocol.Paper _ ->
    Error "explain requires an OQL \"query\" (the pipeline starts at OQL)"
  | Protocol.Oql text -> (
    (* The execute mode, layout and jobs are outcome-affecting (the
       response embeds which backend ran, its loop counters, and the
       morsel count — which depends on how many domains could fan out),
       so all three are part of the key. *)
    let key =
      Printf.sprintf "explain|%s|%s|%s|%d" text
        (match r.Protocol.execute with
        | None -> "-"
        | Some b -> Kola_exec.Exec.backend_name b)
        (match r.Protocol.layout with
        | None -> "-"
        | Some l -> Kola_exec.Exec.layout_name l)
        r.Protocol.jobs
    in
    match ocache_find t.outcomes key with
    | Some core -> Ok (core, `Hit)
    | None ->
      let report =
        Optimizer.Pipeline.optimize_oql ~plan_cache:t.plan_cache ~db:t.db text
      in
      let chosen = report.Optimizer.Pipeline.chosen in
      (* Deterministic execution facts only — which backend actually ran,
         whether it fell back, and the loop counters.  Wall-clock timings
         would go stale in the outcome cache; traced requests get the
         exec.compile/exec.run spans instead. *)
      let exec_fields =
        match r.Protocol.execute with
        | None -> []
        | Some backend ->
          let coldb =
            match r.Protocol.layout with
            | Some Kola_exec.Exec.Columnar -> Some t.coldb
            | Some Kola_exec.Exec.Row | None -> None
          in
          let execute () =
            Optimizer.Pipeline.execute ~backend ?layout:r.Protocol.layout
              ~jobs:r.Protocol.jobs ?coldb ~db:t.db report
          in
          let _, st =
            (* Like search: a request that fans out over domains takes
               the single-submitter pool lease, serializing against other
               parallel requests. *)
            if r.Protocol.jobs = 1 || coldb = None then execute ()
            else Mutex.protect t.pool_lease execute
          in
          [
            ("execute", jstr (Kola_exec.Exec.backend_name st.Kola_exec.Exec.backend));
            ("fell_back", Json.Bool st.Kola_exec.Exec.fell_back);
            ("layout", jstr (Kola_exec.Exec.layout_name st.Kola_exec.Exec.layout));
            ("exec_jobs", jint st.Kola_exec.Exec.jobs);
            ("exec_tuples", jint st.Kola_exec.Exec.tuples);
            ("exec_probes", jint st.Kola_exec.Exec.probes);
            ("exec_builds", jint st.Kola_exec.Exec.builds);
            ("exec_stages", jint st.Kola_exec.Exec.stages);
            ("col_kernels", jint st.Kola_exec.Exec.col_kernels);
            ("morsels", jint st.Kola_exec.Exec.morsels);
            ( "col_degrades",
              Json.Arr (List.map jstr st.Kola_exec.Exec.col_degrades) );
          ]
      in
      let core =
        [
          ("status", jstr "ok");
          ("mode", jstr "explain");
          ("label", jstr chosen.Optimizer.Pipeline.label);
          ( "backend",
            jstr
              (Optimizer.Pipeline.backend_name chosen.Optimizer.Pipeline.backend)
          );
          ( "dedup",
            jstr (Optimizer.Pipeline.dedup_name chosen.Optimizer.Pipeline.dedup)
          );
          ("cost", jnum chosen.Optimizer.Pipeline.cost.Cost.weighted);
          ( "plan",
            jstr
              (Fmt.str "%a" Kola.Pretty.pp_query chosen.Optimizer.Pipeline.query)
          );
          ( "rules_fired",
            jint (List.length report.Optimizer.Pipeline.trace) );
          ( "cache",
            Json.Obj
              [
                ("hits", jint report.Optimizer.Pipeline.cost_cache_hits);
                ("misses", jint report.Optimizer.Pipeline.cost_cache_misses);
              ] );
        ]
        @ exec_fields
      in
      ocache_insert t.outcomes key core;
      Ok (core, `Miss))

let optimize_core t (r : Protocol.optimize) :
    ( (string * Json.t) list * [ `Hit | `Miss ],
      [ `Msg of string | `Rejected of (string * Json.t) list ] )
    result =
  try
    if r.Protocol.sleep_ms > 0 then
      Unix.sleepf (float_of_int r.Protocol.sleep_ms /. 1000.);
    if r.Protocol.explain then
      Result.map_error (fun m -> `Msg m) (explain_core t r)
    else
      (* Pack admission gates the search: the request either runs with
         every pack rule certified or is rejected with each failing
         rule's verdict — nothing in between. *)
      let* pack =
        match r.Protocol.rules with
        | None -> Ok None
        | Some source -> Result.map Option.some (admit_pack t source)
      in
      Ok (search_core ?pack t r (query_of_source r.Protocol.source))
  with
  | Oql.Parser.Error m | Oql.Lexer.Error m | Kola.Parse.Error m ->
    Error (`Msg ("parse error: " ^ m))
  | Translate.Compile.Untranslatable m ->
    Error (`Msg ("translation error: " ^ m))
  | Kola.Eval.Error m | Aqua.Eval.Error m ->
    Error (`Msg ("evaluation error: " ^ m))
  | Failure m -> Error (`Msg m)
  | e -> Error (`Msg ("internal error: " ^ Printexc.to_string e))

let handle_optimize t (r : Protocol.optimize) =
  let t0 = Telemetry.now () in
  let result, telemetry =
    if r.Protocol.telemetry then
      (* The telemetry session is global: traced requests serialize, and
         the response embeds this worker's own spans (concurrent
         untraced requests keep running; their spans belong to them). *)
      Mutex.protect t.telemetry_lock (fun () ->
          Telemetry.start ();
          let result = optimize_core t r in
          let tr = Telemetry.stop () in
          (result, Some (telemetry_json tr)))
    else (optimize_core t r, None)
  in
  let micros = (Telemetry.now () -. t0) *. 1e6 in
  match result with
  | Error (`Msg msg) ->
    Atomic.incr t.errored;
    Telemetry.count "serve.error";
    Protocol.error_response ~id:r.Protocol.id ~queue_depth:(queue_depth t) msg
  | Error (`Rejected fields) ->
    (* Pack admission failure: structured per-rule verdicts, counted as
       an error (the request did not serve an outcome). *)
    Atomic.incr t.errored;
    Telemetry.count "serve.error";
    Json.Obj
      (("id", r.Protocol.id) :: fields
      @ [ ("queue_depth", jint (queue_depth t)); ("micros", jnum micros) ])
  | Ok (core, cached) ->
    Atomic.incr t.served;
    Json.Obj
      (("id", r.Protocol.id) :: core
      @ [
          ( "outcome_cache",
            jstr (match cached with `Hit -> "hit" | `Miss -> "miss") );
          ("queue_depth", jint (queue_depth t));
          ("micros", jnum micros);
        ]
      @ match telemetry with
        | Some tr -> [ ("telemetry", tr) ]
        | None -> [])

let handle_command t (c : Protocol.command) id =
  match c with
  | Protocol.Ping ->
    Json.Obj
      [
        ("id", id);
        ("status", jstr "ok");
        ("pong", Json.Bool true);
        ("uptime_s", jnum (Telemetry.now () -. t.started));
      ]
  | Protocol.Flush ->
    Cost.cache_clear t.cache;
    Cost.hc_cache_clear t.hc_cache;
    Cost.plan_cache_clear t.plan_cache;
    ocache_clear t.outcomes;
    Json.Obj [ ("id", id); ("status", jstr "ok"); ("flushed", Json.Bool true) ]
  | Protocol.Shutdown ->
    request_stop t;
    Json.Obj
      [ ("id", id); ("status", jstr "ok"); ("shutdown", Json.Bool true) ]
  | Protocol.Stats ->
    let s = service_stats t in
    let intern = Kola.Term.Hc.intern_counters () in
    Json.Obj
      [
        ("id", id);
        ("status", jstr "ok");
        ("uptime_s", jnum (Telemetry.now () -. t.started));
        ("host_cores", jint (Domain.recommended_domain_count ()));
        ("served", jint (Atomic.get t.served));
        ("errors", jint (Atomic.get t.errored));
        ( "service",
          Json.Obj
            [
              ("workers", jint s.Pool.Service.workers);
              ("queue_bound", jint s.Pool.Service.bound);
              ("queued", jint s.Pool.Service.queued);
              ("running", jint s.Pool.Service.running);
              ("submitted", jint s.Pool.Service.submitted);
              ("rejected", jint s.Pool.Service.rejected);
              ("task_errors", jint s.Pool.Service.errors);
            ] );
        ( "outcome_cache",
          Json.Obj
            [
              ("hits", jint (Atomic.get t.outcomes.ohits));
              ("misses", jint (Atomic.get t.outcomes.omisses));
              ("evictions", jint (Atomic.get t.outcomes.oevictions));
              ( "entries",
                jint
                  (Mutex.protect t.outcomes.olock (fun () ->
                       Hashtbl.length t.outcomes.tbl)) );
              ("capacity", jint t.outcomes.cap);
            ] );
        ( "packs",
          Mutex.protect t.pack_lock (fun () ->
              Json.Obj
                [
                  ("admitted", jint (Atomic.get t.pack_admitted));
                  ("rejected", jint (Atomic.get t.pack_rejected));
                  ("admission_hits", jint (Atomic.get t.pack_hits));
                  ( "cert_cache",
                    Json.Obj
                      [
                        ("hits", jint (Rules.Cert.Cache.hits t.certs));
                        ("misses", jint (Rules.Cert.Cache.misses t.certs));
                        ("entries", jint (Rules.Cert.Cache.size t.certs));
                      ] );
                  ( "fires",
                    Json.Obj
                      (List.sort compare
                         (Hashtbl.fold
                            (fun name n acc -> (name, jint n) :: acc)
                            t.pack_fires [])) );
                ]) );
        ("cost_cache", cost_stats_json (Cost.cache_stats t.cache));
        ("hc_cost_cache", cost_stats_json (Cost.hc_cache_stats t.hc_cache));
        ("plan_cache", cost_stats_json (Cost.plan_cache_stats t.plan_cache));
        ( "intern",
          Json.Obj
            [
              ("entries", jint intern.Kola.Hashcons.entries);
              ("hits", jint intern.Kola.Hashcons.hits);
              ("misses", jint intern.Kola.Hashcons.misses);
            ] );
      ]

let handle t (req : Protocol.t) =
  match req with
  | Protocol.Optimize r -> handle_optimize t r
  | Protocol.Command (c, id) -> handle_command t c id

let handle_line t line =
  match Protocol.of_line line with
  | Ok req -> handle t req
  | Error msg ->
    Atomic.incr t.errored;
    Telemetry.count "serve.bad_request";
    Protocol.error_response ~queue_depth:(queue_depth t) msg

(* ------------------------------------------------------------------ *)
(* Wire layer: newline-delimited JSON over a Unix-domain socket. *)

let write_json fd json =
  let s = Json.to_string json ^ "\n" in
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  try go 0 with Unix.Unix_error _ -> () (* peer went away mid-response *)

(* One connection, served to EOF on a worker domain.  Reads poll in
   short slices so an idle connection notices a daemon shutdown instead
   of pinning its worker forever. *)
let conn_loop t fd =
  let pending = Buffer.create 512 in
  let chunk = Bytes.create 4096 in
  let take_line () =
    let s = Buffer.contents pending in
    match String.index_opt s '\n' with
    | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear pending;
      Buffer.add_substring pending s (i + 1) (String.length s - i - 1);
      Some line
    | None -> None
  in
  let rec next_line () =
    match take_line () with
    | Some line -> `Line line
    | None ->
      if stopping t then `Stop
      else (
        match Unix.select [ fd ] [] [] 0.25 with
        | [], _, _ -> next_line ()
        | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> `Eof
          | n ->
            Buffer.add_subbytes pending chunk 0 n;
            next_line ()
          | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) ->
            next_line ()
          | exception Unix.Unix_error _ -> `Eof)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> next_line ())
  in
  let rec loop () =
    match next_line () with
    | `Stop | `Eof -> ()
    | `Line line ->
      if String.trim line = "" then loop ()
      else begin
        write_json fd (handle_line t line);
        loop ()
      end
  in
  Fun.protect loop ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error _ -> ())

let shutdown t = Pool.Service.shutdown t.service

let serve ?(ready = fun () -> ()) ~socket t =
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 128;
  ready ();
  let rec loop () =
    if stopping t then ()
    else begin
      (match Unix.select [ listen_fd ] [] [] 0.1 with
      | [], _, _ -> ()
      | _ -> (
        match Unix.accept listen_fd with
        | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
        | fd, _ -> (
          Telemetry.count "serve.accept";
          (* Admission control: hand the connection to a worker, or
             answer 429-style from the accept loop and close — the
             whole rejection path allocates one small response line. *)
          match Pool.Service.submit t.service (fun () -> conn_loop t fd) with
          | Ok _ -> ()
          | Error depth ->
            write_json fd (Protocol.rejected_response ~queue_depth:depth);
            (try Unix.close fd with Unix.Unix_error _ -> ())))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  Fun.protect loop ~finally:(fun () ->
      shutdown t;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      try Unix.unlink socket with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)

module Client = struct
  type conn = {
    fd : Unix.file_descr;
    ic : in_channel;
    oc : out_channel;
    mutable closed : bool;
  }

  let connect path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    {
      fd;
      ic = Unix.in_channel_of_descr fd;
      oc = Unix.out_channel_of_descr fd;
      closed = false;
    }

  let send c json =
    output_string c.oc (Json.to_string json);
    output_char c.oc '\n';
    flush c.oc

  let recv c = Json.parse (input_line c.ic)
  let request c json = send c json; recv c

  let close c =
    if not c.closed then begin
      c.closed <- true;
      (* closing either channel closes the shared fd *)
      close_out_noerr c.oc
    end
end

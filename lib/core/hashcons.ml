(* Concurrency audit (serving daemon): the striped table below is the
   one structure the daemon shares across worker domains *without* any
   daemon-side locking, so its guarantees are spelled out here.

   - [intern] is safe under arbitrary concurrency: the hit path probes
     lock-free over immutable chains (soundness argument at the call
     site below) and every mutation — insert, resize, count — happens
     under the owning stripe's mutex.  Ids come from one atomic counter,
     so two domains can never intern distinct nodes with one id.
   - [counters] reads per-stripe fields without locks; sums can be
     momentarily inconsistent and the lock-free [hits] bump can drop
     increments under contention.  Sharing *statistics* are therefore
     approximate under the daemon; the interning itself never is.
   - Interned nodes are immutable after [N.build] and compare by [==],
     so cross-request sharing needs no further synchronization: a term
     interned while answering one request is reused verbatim by every
     later request that spells the same subterm. *)

type stats = {
  entries : int;
  hits : int;
  misses : int;
  buckets : int;
  max_bucket : int;
}

let zero_stats = { entries = 0; hits = 0; misses = 0; buckets = 0; max_bucket = 0 }

let merge_stats a b =
  {
    entries = a.entries + b.entries;
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    buckets = a.buckets + b.buckets;
    max_bucket = max a.max_bucket b.max_bucket;
  }

module type NODE = sig
  type shape
  type t

  val hash : shape -> int
  val matches : shape -> t -> bool
  val build : id:int -> shape -> t
end

module Make (N : NODE) = struct
  (* Buckets store [(hash, node)] so resize can redistribute entries
     without recomputing node hashes (shapes are not retained). *)
  type stripe = {
    lock : Mutex.t;
    mutable buckets : (int * N.t) list array;
    mutable count : int;
    mutable hits : int;
    mutable misses : int;
  }

  type t = {
    stripes : stripe array;
    stripe_mask : int;
    stripe_bits : int;
    ids : int Atomic.t;
  }

  let rec pow2_at_least n p = if p >= n then p else pow2_at_least n (p * 2)

  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2)

  let initial_buckets = 16

  let create ?(stripes = 64) () =
    let n = pow2_at_least (max 1 stripes) 1 in
    {
      stripes =
        Array.init n (fun _ ->
            {
              lock = Mutex.create ();
              buckets = Array.make initial_buckets [];
              count = 0;
              hits = 0;
              misses = 0;
            });
      stripe_mask = n - 1;
      stripe_bits = log2 n;
      ids = Atomic.make 0;
    }

  let positive h = h land max_int

  (* Stripe from the low hash bits; bucket-within-stripe from the next
     bits up, so the two indices stay independent. *)
  let bucket_index t s h =
    (positive h lsr t.stripe_bits) land (Array.length s.buckets - 1)

  (* Redistribute into a fresh array, publishing it only once fully
     populated: a concurrent lock-free prober then sees either the old
     array (complete up to recent inserts) or the new one (complete) —
     never a half-filled table. *)
  let resize t s =
    let old = s.buckets in
    let n' = Array.length old * 2 in
    let fresh = Array.make n' [] in
    let mask = n' - 1 in
    Array.iter
      (fun chain ->
        List.iter
          (fun ((h, _) as entry) ->
            let i = (positive h lsr t.stripe_bits) land mask in
            fresh.(i) <- entry :: fresh.(i))
          chain)
      old;
    s.buckets <- fresh

  (* Interning is hit-dominated (a rewrite engine re-builds the same
     nodes constantly — sharing ratios run well over 90%), and a mutex
     acquisition costs an order of magnitude more than the probe itself,
     so the hit path is lock-free: probe the bucket optimistically and
     take the stripe lock only on a miss.

     Why the unlocked probe is sound under the OCaml 5 memory model:
     bucket chains are immutable lists (inserts cons a new head and
     publish it with a single array store; resize publishes a fully
     populated fresh array), and interned nodes are immutable after
     [N.build], so a racing reader observes either a valid older chain —
     at worst missing the newest entries, in which case it falls through
     to the locked path and re-probes — or the new one.  No value can be
     observed half-initialized.  [hits] is a plain counter bumped without
     the lock: increments lost under contention make the reported
     sharing statistics approximate (never the interning itself); at
     jobs = 1 they are exact. *)
  let intern t shape =
    let h = N.hash shape in
    let s = t.stripes.(positive h land t.stripe_mask) in
    let rec probe = function
      | [] -> None
      | (h', node) :: rest ->
          if h' = h && N.matches shape node then Some node else probe rest
    in
    let buckets = s.buckets in
    let i = (positive h lsr t.stripe_bits) land (Array.length buckets - 1) in
    match probe buckets.(i) with
    | Some node ->
        s.hits <- s.hits + 1;
        node
    | None ->
        Mutex.lock s.lock;
        let i = bucket_index t s h in
        let node =
          match probe s.buckets.(i) with
          | Some node ->
              s.hits <- s.hits + 1;
              node
          | None ->
              s.misses <- s.misses + 1;
              let id = Atomic.fetch_and_add t.ids 1 in
              let node = N.build ~id shape in
              s.buckets.(i) <- (h, node) :: s.buckets.(i);
              s.count <- s.count + 1;
              if s.count > 2 * Array.length s.buckets then resize t s;
              node
        in
        Mutex.unlock s.lock;
        node

  (* Counter-only read: O(stripes), no bucket walk, no locks.  Racing
     writers can make the sums momentarily inconsistent, which is fine
     for the hit/miss deltas search reports; [stats] below takes the
     locks and additionally measures chain lengths for diagnostics. *)
  let counters t =
    Array.fold_left
      (fun acc s ->
        {
          acc with
          entries = acc.entries + s.count;
          hits = acc.hits + s.hits;
          misses = acc.misses + s.misses;
        })
      zero_stats t.stripes

  let stats t =
    Array.fold_left
      (fun acc s ->
        Mutex.lock s.lock;
        let longest =
          Array.fold_left (fun m c -> max m (List.length c)) 0 s.buckets
        in
        let st =
          {
            entries = s.count;
            hits = s.hits;
            misses = s.misses;
            buckets = Array.length s.buckets;
            max_bucket = longest;
          }
        in
        Mutex.unlock s.lock;
        merge_stats acc st)
      zero_stats t.stripes
end

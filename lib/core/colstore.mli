(** Columnar materialization of a database of object extents: the
    struct-of-arrays view the compiled execution layer's column kernels
    run over.  Each materializable extent (a set of objects of one
    class) becomes a {!relation} — boxed rows in canonical set order
    plus one typed column per uniformly-typed attribute; object-valued
    attributes are dictionary-encoded as row indexes into the extent
    holding their class ({!Column.Refs}).  Extents that do not fit the
    shape are simply absent and execute on the boxed row path. *)

module Column : sig
  type t =
    | Ints of int array
    | Strs of string array
    | Bools of bool array
    | Refs of {
        target : string;  (** extent name the indexes point into *)
        idx : int array;  (** row index in target, [-1] = unresolved *)
        total : bool;
            (** no [-1] entries; only then may two ref columns into the
                same target be compared by index *)
        exact : bool;
            (** every embedded value is structurally equal to the target
                row it resolves to; only then may projections read
                through the ref into the target's columns *)
      }
    | Boxed of Value.t array

  val kind_name : t -> string
  val length : t -> int
end

type relation = {
  name : string;  (** the extent name this relation materializes *)
  cls : string;
  rows : Value.t array;  (** boxed rows in canonical set order *)
  cols : (string * Column.t) list;
}

type db

val of_db : (string * Value.t) list -> db
(** Materialize every extent that is a set of same-class objects.
    Deterministic in the input; O(rows × fields). *)

val source : db -> (string * Value.t) list
(** The boxed database this view was materialized from — execution
    contexts resolve [Named] extents against it, so columnar and row
    runs see identical data. *)

val relations : db -> (string * relation) list
val relation : db -> string -> relation option
val column : relation -> string -> Column.t option

type stats = {
  relations : int;
  rows : int;
  typed_cols : int;  (** Ints/Strs/Bools/Refs columns *)
  boxed_cols : int;
}

val stats : db -> stats
val pp_stats : stats Fmt.t

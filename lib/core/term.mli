(** KOLA terms — the combinator algebra of the paper's Tables 1 and 2.

    Functions ([func]) are invoked with [!], predicates ([pred]) with [?]
    (see {!Eval}).  [Fhole]/[Phole] are pattern metavariables: ground terms
    and rule patterns share one representation, so the rule language needs
    no separate pattern syntax.

    [Arith], [Agg] and [Setop] extend the paper's tables with arithmetic,
    aggregates and set operations — needed for the Section 4.2 precondition
    examples, the count-bug reproduction and realistic workloads. *)

type arith = Add | Sub | Mul
type agg = Count | Sum | Max | Min
type setop = Union | Inter | Diff

type func =
  | Id                        (** id!x = x *)
  | Pi1                       (** π1![x,y] = x *)
  | Pi2                       (** π2![x,y] = y *)
  | Prim of string            (** schema attribute function, e.g. [age] *)
  | Compose of func * func    (** (f ∘ g)!x = f!(g!x) *)
  | Pairf of func * func      (** ⟨f, g⟩!x = [f!x, g!x] *)
  | Times of func * func      (** (f × g)![x,y] = [f!x, g!y] *)
  | Kf of Value.t             (** Kf(c)!x = c *)
  | Cf of func * Value.t      (** Cf(f, c)!y = f![c, y] *)
  | Con of pred * func * func (** con(p,f,g)!x = if p?x then f!x else g!x *)
  | Arith of arith            (** binary, over pairs of ints *)
  | Agg of agg                (** over a set; Max/Min raise on ∅ *)
  | Setop of setop            (** binary, over pairs of sets *)
  | Sng                       (** sng!x = \{x\} *)
  | Flat                      (** flat!A = \{x | x ∈ B, B ∈ A\} *)
  | Iterate of pred * func    (** iterate(p,f)!A = \{f!x | x ∈ A, p?x\} *)
  | Iter of pred * func
      (** iter(p,f)![e,B] = \{f![e,y] | y ∈ B, p?[e,y]\} — the environment-
          passing loop used to translate nested queries *)
  | Join of pred * func
      (** join(p,f)![A,B] = \{f![x,y] | x ∈ A, y ∈ B, p?[x,y]\} *)
  | Nest of func * func
      (** nest(f,g)![A,B] = \{[y, \{g!x | x ∈ A, f!x = y\}] | y ∈ B\} —
          grouping relative to B; unmatched y get ∅, never NULL *)
  | Unnest of func * func
      (** unnest(f,g)!A = \{[f!x, y] | x ∈ A, y ∈ g!x\} *)
  | Fhole of string           (** pattern metavariable *)

and pred =
  | Eq                        (** eq?[x,y] ⟺ x = y *)
  | Leq
  | Gt
  | In                        (** in?[x,A] ⟺ x ∈ A *)
  | Primp of string           (** boolean schema attribute *)
  | Oplus of pred * func      (** (p ⊕ f)?x = p?(f!x) *)
  | Andp of pred * pred
  | Orp of pred * pred
  | Inv of pred               (** negation: rule 7's gt⁻¹ ≡ leq holds *)
  | Conv of pred              (** converse: pᵒ?[x,y] = p?[y,x]; repairs the
                                  paper's rule 13 boundary erratum *)
  | Kp of bool
  | Cp of pred * Value.t      (** Cp(p, c)?y = p?[c, y] *)
  | Phole of string

(** A query is a function applied to an argument, the paper's [f ! v]. *)
type query = { body : func; arg : Value.t }

val query : func -> Value.t -> query

(** {1 Abbreviations} *)

val ( ^>> ) : func -> func -> func
(** [g ^>> f] is [f ∘ g] (left-to-right reading). *)

val compose : func -> func -> func

val sel : pred -> func
(** The paper's footnote-3 [sel p = iterate(p, id)]. *)

val proj : func -> func
(** [proj f = iterate(Kp(T), f)]. *)

val ktrue : pred
val kfalse : pred

(** {1 Composition chains}

    The paper reads [f1 ∘ f2 ∘ ... ∘ fn] without parentheses; rules match
    chains modulo associativity (see {!Rewrite.Rule}). *)

val chain : func list -> func
(** Left-associated composition; [chain [] = Id]. *)

val unchain : func -> func list
(** Flatten nested compositions, any associativity. *)

val reassoc_func : func -> func
(** Left-associate every composition chain, recursively. *)

val reassoc_pred : pred -> pred

(** {1 Equality} *)

val equal_func : func -> func -> bool
val equal_pred : pred -> pred -> bool
val equal_query : query -> query -> bool

val equal_func_assoc : func -> func -> bool
(** Equality modulo associativity of ∘. *)

val equal_pred_assoc : pred -> pred -> bool
val equal_query_assoc : query -> query -> bool

(** {1 Measures and pattern support} *)

val size_func : func -> int
(** Parse-tree node count, the measure of the paper's Section 4.2. *)

val size_pred : pred -> int
val func_is_ground : func -> bool
val pred_is_ground : pred -> bool

val holes_func : func -> string list
(** Holes in a term, each tagged with its sort: ["f:name"], ["p:name"] or
    ["v:name"]. *)

(** {1 Hashing and canonical keys}

    Structural hashes consistent with {!equal_func}/{!equal_pred}: equal
    terms hash equal.  Linear in the term size. *)

val hash_func : func -> int
val hash_pred : pred -> int
val hash_query : query -> int

(** Canonical query keys for hashtable dedup of rewrite states: the query
    reassociated into left-nested composition form, with its hash computed
    once at construction.  Equality compares hashes first and falls back to
    full structural equality, so deduplicating a state costs one traversal
    instead of a pretty-printed string allocation. *)
module Canonical : sig
  type t

  val of_query : query -> t

  val to_query : t -> query
  (** The reassociated query the key was built from. *)

  val equal : t -> t -> bool
  (** Hash equality with structural equality as tiebreak; agrees with
      {!equal_query_assoc} on the original queries. *)

  val hash : t -> int
  (** Precomputed; O(1). *)

  module Table : Hashtbl.S with type key = t
end

(** Hash-consed (interned) terms: one canonical in-memory node per
    structurally distinct subterm, shared maximally.

    Structural equality of interned nodes is physical equality ([==], or
    id comparison); [fhash], [fsize] and [fhole_free] are O(1) field reads
    agreeing with {!hash_func}, {!size_func} and {!func_is_ground}; [fterm]
    is an always-valid plain view making {!Hc.to_func} O(1).  [fheads] is
    the bitmask of head constructors occurring in the subtree (see
    {!Hc.fshape_bit}) and [fcanon] memoizes reassociation, so canonical
    dedup keys cost O(1) amortized per unique subterm.

    Interning is modulo [Value.equal]: objects intern by identity
    ([cls]/[oid]), matching the optimizer's dedup equivalence.  All tables
    are process-global and safe to use from several domains (striped
    mutexes, see {!Hashcons}); node ids are scheduling-dependent under
    concurrency and must only be used as opaque identity keys. *)
module Hc : sig
  type fnode = private {
    fshape : fshape;
    fterm : func;
    fid : int;
    fhash : int;
    fsize : int;
    fheads : int;
    fhole_free : bool;
    mutable fcanon : fnode option;
  }

  and pnode = private {
    pshape : pshape;
    pterm : pred;
    pid : int;
    phash : int;
    psize : int;
    pheads : int;
    phole_free : bool;
    mutable pcanon : pnode option;
  }

  and vnode = private {
    vshape : vshape;
    vterm : Value.t;
    vid : int;
    vhash : int;
    vsize : int;
    vhole_free : bool;
  }

  and fshape = private
    | HId
    | HPi1
    | HPi2
    | HPrim of string
    | HCompose of fnode * fnode
    | HPairf of fnode * fnode
    | HTimes of fnode * fnode
    | HKf of vnode
    | HCf of fnode * vnode
    | HCon of pnode * fnode * fnode
    | HArith of arith
    | HAgg of agg
    | HSetop of setop
    | HSng
    | HFlat
    | HIterate of pnode * fnode
    | HIter of pnode * fnode
    | HJoin of pnode * fnode
    | HNest of fnode * fnode
    | HUnnest of fnode * fnode
    | HFhole of string

  and pshape = private
    | HEq
    | HLeq
    | HGt
    | HIn
    | HPrimp of string
    | HOplus of pnode * fnode
    | HAndp of pnode * pnode
    | HOrp of pnode * pnode
    | HInv of pnode
    | HConv of pnode
    | HKp of bool
    | HCp of pnode * vnode
    | HPhole of string

  and vshape = private
    | HVunit
    | HVbool of bool
    | HVint of int
    | HVstr of string
    | HVpair of vnode * vnode
    | HVset of vnode list
    | HVbag of vnode list
    | HVlist of vnode list
    | HVobj of Value.obj
    | HVnamed of string
    | HVhole of string

  (** {1 Head bitmasks}

      Func heads occupy bits 0-19 (declaration order), pred heads bits
      20-31.  Holes carry no bit; values contribute nothing, matching
      {!Rewrite.Index.presence_of_query}. *)

  val fshape_bit : fshape -> int
  val pshape_bit : pshape -> int

  val compose_mask : int
  (** The [Compose] head bit: a node with [fheads land compose_mask = 0]
      contains no composition anywhere, so matching against it degenerates
      to pure structural (= physical) comparison. *)

  (** {1 Smart constructors} *)

  val id : fnode
  val pi1 : fnode
  val pi2 : fnode
  val sng : fnode
  val flat : fnode
  val prim : string -> fnode
  val compose : fnode -> fnode -> fnode
  val pairf : fnode -> fnode -> fnode
  val times : fnode -> fnode -> fnode
  val kf : vnode -> fnode
  val cf : fnode -> vnode -> fnode
  val con : pnode -> fnode -> fnode -> fnode
  val arith : arith -> fnode
  val agg : agg -> fnode
  val setop : setop -> fnode
  val iterate : pnode -> fnode -> fnode
  val iter : pnode -> fnode -> fnode
  val join : pnode -> fnode -> fnode
  val nest : fnode -> fnode -> fnode
  val unnest : fnode -> fnode -> fnode
  val fhole : string -> fnode
  val eq : pnode
  val leq : pnode
  val gt : pnode

  val inp : pnode
  (** [In] ([in] is a keyword). *)

  val primp : string -> pnode
  val oplus : pnode -> fnode -> pnode
  val andp : pnode -> pnode -> pnode
  val orp : pnode -> pnode -> pnode
  val inv : pnode -> pnode
  val conv : pnode -> pnode
  val kp : bool -> pnode
  val cp : pnode -> vnode -> pnode
  val phole : string -> pnode

  val vpair : vnode -> vnode -> vnode
  (** Interned pair value; other value shapes go through {!of_value}. *)

  (** {1 Converters}

      [of_*] intern recursively (O(n), amortized O(1) per node already
      seen); [to_*] are O(1) field reads.  [to_func (of_func f)] is
      [equal_func]-equal to [f] for every term, holes included. *)

  val of_func : func -> fnode
  val of_pred : pred -> pnode
  val of_value : Value.t -> vnode
  val to_func : fnode -> func
  val to_pred : pnode -> pred
  val to_value : vnode -> Value.t

  (** {1 Chains and canonical forms} *)

  val unchain : fnode -> fnode list
  (** Flatten nested compositions, any associativity; mirrors {!unchain}. *)

  val chain : fnode list -> fnode
  (** Left-associated composition; [chain [] = id]. *)

  val canon : fnode -> fnode
  (** Left-associate every composition chain, recursively — the interned
      mirror of {!reassoc_func}, memoized per node ([fcanon]): each unique
      subterm is reassociated once ever, not once per successor. *)

  val canon_pred : pnode -> pnode

  (** {1 Interned queries} *)

  type hquery = { hbody : fnode; harg : vnode }

  val of_query : query -> hquery
  val to_query : hquery -> query

  val query_key : hquery -> int * int
  (** [((canon hbody).fid, harg.vid)] — two queries share a key iff they
      are {!Canonical.equal} (equal modulo ∘-associativity, [Value.equal]
      arguments), so id-pair dedup partitions states exactly like the
      legacy canonical table, at O(1) amortized per state. *)

  module Qtable : Hashtbl.S with type key = int * int

  val intern_stats : unit -> Hashcons.stats
  (** Merged statistics of the func/pred/value intern tables. *)

  val intern_counters : unit -> Hashcons.stats
  (** Entry/hit/miss counters only ({!Hashcons.Make.counters}): cheap
      enough for the search layer to sample around every exploration. *)
end

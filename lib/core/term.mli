(** KOLA terms — the combinator algebra of the paper's Tables 1 and 2.

    Functions ([func]) are invoked with [!], predicates ([pred]) with [?]
    (see {!Eval}).  [Fhole]/[Phole] are pattern metavariables: ground terms
    and rule patterns share one representation, so the rule language needs
    no separate pattern syntax.

    [Arith], [Agg] and [Setop] extend the paper's tables with arithmetic,
    aggregates and set operations — needed for the Section 4.2 precondition
    examples, the count-bug reproduction and realistic workloads. *)

type arith = Add | Sub | Mul
type agg = Count | Sum | Max | Min
type setop = Union | Inter | Diff

type func =
  | Id                        (** id!x = x *)
  | Pi1                       (** π1![x,y] = x *)
  | Pi2                       (** π2![x,y] = y *)
  | Prim of string            (** schema attribute function, e.g. [age] *)
  | Compose of func * func    (** (f ∘ g)!x = f!(g!x) *)
  | Pairf of func * func      (** ⟨f, g⟩!x = [f!x, g!x] *)
  | Times of func * func      (** (f × g)![x,y] = [f!x, g!y] *)
  | Kf of Value.t             (** Kf(c)!x = c *)
  | Cf of func * Value.t      (** Cf(f, c)!y = f![c, y] *)
  | Con of pred * func * func (** con(p,f,g)!x = if p?x then f!x else g!x *)
  | Arith of arith            (** binary, over pairs of ints *)
  | Agg of agg                (** over a set; Max/Min raise on ∅ *)
  | Setop of setop            (** binary, over pairs of sets *)
  | Sng                       (** sng!x = \{x\} *)
  | Flat                      (** flat!A = \{x | x ∈ B, B ∈ A\} *)
  | Iterate of pred * func    (** iterate(p,f)!A = \{f!x | x ∈ A, p?x\} *)
  | Iter of pred * func
      (** iter(p,f)![e,B] = \{f![e,y] | y ∈ B, p?[e,y]\} — the environment-
          passing loop used to translate nested queries *)
  | Join of pred * func
      (** join(p,f)![A,B] = \{f![x,y] | x ∈ A, y ∈ B, p?[x,y]\} *)
  | Nest of func * func
      (** nest(f,g)![A,B] = \{[y, \{g!x | x ∈ A, f!x = y\}] | y ∈ B\} —
          grouping relative to B; unmatched y get ∅, never NULL *)
  | Unnest of func * func
      (** unnest(f,g)!A = \{[f!x, y] | x ∈ A, y ∈ g!x\} *)
  | Fhole of string           (** pattern metavariable *)

and pred =
  | Eq                        (** eq?[x,y] ⟺ x = y *)
  | Leq
  | Gt
  | In                        (** in?[x,A] ⟺ x ∈ A *)
  | Primp of string           (** boolean schema attribute *)
  | Oplus of pred * func      (** (p ⊕ f)?x = p?(f!x) *)
  | Andp of pred * pred
  | Orp of pred * pred
  | Inv of pred               (** negation: rule 7's gt⁻¹ ≡ leq holds *)
  | Conv of pred              (** converse: pᵒ?[x,y] = p?[y,x]; repairs the
                                  paper's rule 13 boundary erratum *)
  | Kp of bool
  | Cp of pred * Value.t      (** Cp(p, c)?y = p?[c, y] *)
  | Phole of string

(** A query is a function applied to an argument, the paper's [f ! v]. *)
type query = { body : func; arg : Value.t }

val query : func -> Value.t -> query

(** {1 Abbreviations} *)

val ( ^>> ) : func -> func -> func
(** [g ^>> f] is [f ∘ g] (left-to-right reading). *)

val compose : func -> func -> func

val sel : pred -> func
(** The paper's footnote-3 [sel p = iterate(p, id)]. *)

val proj : func -> func
(** [proj f = iterate(Kp(T), f)]. *)

val ktrue : pred
val kfalse : pred

(** {1 Composition chains}

    The paper reads [f1 ∘ f2 ∘ ... ∘ fn] without parentheses; rules match
    chains modulo associativity (see {!Rewrite.Rule}). *)

val chain : func list -> func
(** Left-associated composition; [chain [] = Id]. *)

val unchain : func -> func list
(** Flatten nested compositions, any associativity. *)

val reassoc_func : func -> func
(** Left-associate every composition chain, recursively. *)

val reassoc_pred : pred -> pred

(** {1 Equality} *)

val equal_func : func -> func -> bool
val equal_pred : pred -> pred -> bool
val equal_query : query -> query -> bool

val equal_func_assoc : func -> func -> bool
(** Equality modulo associativity of ∘. *)

val equal_pred_assoc : pred -> pred -> bool
val equal_query_assoc : query -> query -> bool

(** {1 Measures and pattern support} *)

val size_func : func -> int
(** Parse-tree node count, the measure of the paper's Section 4.2. *)

val size_pred : pred -> int
val func_is_ground : func -> bool
val pred_is_ground : pred -> bool

val holes_func : func -> string list
(** Holes in a term, each tagged with its sort: ["f:name"], ["p:name"] or
    ["v:name"]. *)

(** {1 Hashing and canonical keys}

    Structural hashes consistent with {!equal_func}/{!equal_pred}: equal
    terms hash equal.  Linear in the term size. *)

val hash_func : func -> int
val hash_pred : pred -> int
val hash_query : query -> int

(** Canonical query keys for hashtable dedup of rewrite states: the query
    reassociated into left-nested composition form, with its hash computed
    once at construction.  Equality compares hashes first and falls back to
    full structural equality, so deduplicating a state costs one traversal
    instead of a pretty-printed string allocation. *)
module Canonical : sig
  type t

  val of_query : query -> t

  val to_query : t -> query
  (** The reassociated query the key was built from. *)

  val equal : t -> t -> bool
  (** Hash equality with structural equality as tiebreak; agrees with
      {!equal_query_assoc} on the original queries. *)

  val hash : t -> int
  (** Precomputed; O(1). *)

  module Table : Hashtbl.S with type key = t
end

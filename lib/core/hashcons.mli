(** Generic interning (hash-consing) tables.

    An interning table maps every structurally distinct node to one
    canonical in-memory representative, so that

    - structural equality of interned nodes is physical equality ([==]),
    - each node can carry precomputed measures (hash, size, ...) that are
      O(1) field reads instead of term walks, and
    - downstream tables (dedup sets, cost caches) can key by the node's
      integer [id].

    The table is {e striped}: buckets are partitioned into
    power-of-two-many stripes, each guarded by its own mutex, so
    concurrent interning from several domains contends only when two
    insertions hash into the same stripe.  Node ids come from one atomic
    counter per table; under concurrency their {e values} depend on
    scheduling, but ids are only ever used as opaque identity keys — no
    outcome may depend on their order (see DESIGN.md, "Hash-consed
    core").

    Buckets hold strong references ("weak-ish" by policy rather than by
    [Weak.t]): entries live for the lifetime of the table.  A weak-bucket
    variant would let the GC reclaim unreachable terms but would also let
    one logical term re-intern under a fresh id after a collection,
    invalidating id-keyed side tables; process-lifetime tables keep the
    id ↔ term bijection stable, which is what the optimizer's caches
    rely on.  {!stats} exposes residency so growth stays observable. *)

type stats = {
  entries : int;     (** unique nodes resident *)
  hits : int;        (** intern calls answered by an existing node *)
  misses : int;      (** intern calls that created a node *)
  buckets : int;     (** total bucket slots across stripes *)
  max_bucket : int;  (** longest chain (collision diagnostics) *)
}

val zero_stats : stats

val merge_stats : stats -> stats -> stats
(** Componentwise sum ([max] for [max_bucket]); aggregates the stats of
    several tables. *)

(** What a table needs to know about its nodes.  [shape] is a node's
    one-level structure with {e already interned} children, so
    [matches] can compare children by [==] and [hash] can combine the
    children's precomputed hashes — both O(1) in the subterm size. *)
module type NODE = sig
  type shape
  type t

  val hash : shape -> int
  (** Must agree with [matches]: matching shapes hash equal. *)

  val matches : shape -> t -> bool
  (** Does [shape] describe this (already interned) node?  Constructor
      tags compared structurally, children by physical equality. *)

  val build : id:int -> shape -> t
  (** Allocate the representative.  Called at most once per distinct
      shape, under the stripe lock; must not re-enter the table. *)
end

module Make (N : NODE) : sig
  type t

  val create : ?stripes:int -> unit -> t
  (** [stripes] (default 64) is rounded up to a power of two. *)

  val intern : t -> N.shape -> N.t
  (** The canonical representative of [shape]'s equivalence class,
      building (and registering) it if the class is new.  Thread-safe
      across domains. *)

  val stats : t -> stats

  val counters : t -> stats
  (** Entry/hit/miss counters only — [buckets] and [max_bucket] are [0].
      O(stripes) with no locks and no bucket walk, so it is cheap enough
      to sample around every exploration; under concurrent interning the
      sums are approximate. *)
end

(* Columnar materialization of a database of object extents.

   A relation is the struct-of-arrays view of one extent: the boxed rows
   (in canonical set order, so row index is a stable identity) plus one
   typed column per attribute that is uniformly typed across every row.
   Scalar attributes become unboxed [int array] / [string array] /
   [bool array]; object-valued attributes whose targets all live in
   another extent of the same class are dictionary-encoded as row
   indexes into that extent ([Refs]); anything else (set-valued fields,
   mixed types, missing fields in some rows) keeps a [Boxed] column of
   the original values.

   Two soundness flags matter for the execution layer:

   - [total]: every ref resolved to a target row.  Object equality is
     (cls, oid) identity, and oid -> row index is injective within a
     relation, so two *total* ref columns into the same target can be
     compared by index alone.  A [-1] (unresolved) entry can never match
     a probe-side row index, which is exactly the hash-join miss the
     boxed path produces — so joins may use non-total refs, equality
     between two ref columns may not.
   - [exact]: additionally, every embedded object is structurally equal
     to the target row it resolves to.  Only then may a projection
     *through* the ref (e.g. [dcity ∘ dept]) read the target's columns:
     with [exact] false the embedded copy could carry different fields
     than the extent row, and field access must stay on the boxed
     value. *)

module Column = struct
  type t =
    | Ints of int array
    | Strs of string array
    | Bools of bool array
    | Refs of {
        target : string;  (** extent name the indexes point into *)
        idx : int array;  (** row index in target, [-1] = unresolved *)
        total : bool;     (** no [-1] entries *)
        exact : bool;     (** embedded values structurally equal target rows *)
      }
    | Boxed of Value.t array

  let kind_name = function
    | Ints _ -> "int"
    | Strs _ -> "str"
    | Bools _ -> "bool"
    | Refs _ -> "ref"
    | Boxed _ -> "boxed"

  let length = function
    | Ints a -> Array.length a
    | Strs a -> Array.length a
    | Bools a -> Array.length a
    | Refs { idx; _ } -> Array.length idx
    | Boxed a -> Array.length a
end

type relation = {
  name : string;  (** the extent name this relation materializes *)
  cls : string;
  rows : Value.t array;  (** boxed rows in canonical set order *)
  cols : (string * Column.t) list;
}

type db = {
  source : (string * Value.t) list;
  rels : (string * relation) list;
}

let source t = t.source
let relations t = t.rels
let relation t name = List.assoc_opt name t.rels
let column (r : relation) name = List.assoc_opt name r.cols

(* ------------------------------------------------------------------ *)
(* Materialization. *)

(* An extent materializes when it is a set whose rows are all objects of
   one class.  (Canonical sets cannot hold two objects with the same
   (cls, oid) — object comparison is identity — so the row oids are
   unique and oid -> index is well-defined.) *)
let extent_rows (v : Value.t) : (string * Value.t array) option =
  match v with
  | Value.Set ((Value.Obj { cls; _ } :: _) as rows)
    when List.for_all
           (function Value.Obj o -> String.equal o.Value.cls cls | _ -> false)
           rows ->
    Some (cls, Array.of_list rows)
  | _ -> None

let oid_of_row (v : Value.t) =
  match v with Value.Obj o -> o.Value.oid | _ -> assert false

type field_class =
  | FInt
  | FStr
  | FBool
  | FObj of string  (** all objects of this class *)
  | FOther

exception Missing_field

let classify_field (rows : Value.t array) (field : string) : field_class option =
  (* [None] = field missing in some row: no column at all (accessors fall
     back to boxed row reads, which return the same absence the
     interpreter sees). *)
  let kind_of = function
    | Value.Int _ -> FInt
    | Value.Str _ -> FStr
    | Value.Bool _ -> FBool
    | Value.Obj o -> FObj o.Value.cls
    | _ -> FOther
  in
  try
    let acc = ref None in
    Array.iter
      (fun r ->
        match Value.field field r with
        | None -> raise Missing_field
        | Some v ->
          let k = kind_of v in
          acc :=
            (match !acc with
            | None -> Some k
            | Some a when a = k -> Some a
            | Some _ -> Some FOther))
      rows;
    !acc
  with Missing_field -> None

let get_field ~rel ~field row =
  match Value.field field row with
  | Some v -> v
  | None ->
    invalid_arg
      (Fmt.str "Colstore: field %s vanished from relation %s" field rel)

let of_db (source : (string * Value.t) list) : db =
  (* Pass 1: which extents materialize, and an oid -> row-index table per
     extent for ref encoding.  A class maps to the first extent (in db
     order) that holds it, mirroring how the generators lay stores out. *)
  let rels_raw =
    List.filter_map
      (fun (name, v) ->
        Option.map (fun (cls, rows) -> (name, cls, rows)) (extent_rows v))
      source
  in
  let target_of_cls cls =
    List.find_opt (fun (_, c, _) -> String.equal c cls) rels_raw
  in
  let oid_index =
    List.map
      (fun (name, _, rows) ->
        let t = Hashtbl.create (2 * Array.length rows + 1) in
        Array.iteri (fun i row -> Hashtbl.replace t (oid_of_row row) i) rows;
        (name, t))
      rels_raw
  in
  let materialize (name, cls, rows) =
    let n = Array.length rows in
    let fields =
      if n = 0 then []
      else
        match rows.(0) with
        | Value.Obj o -> List.map fst o.Value.fields
        | _ -> []
    in
    let cols =
      List.filter_map
        (fun field ->
          match classify_field rows field with
          | None -> None
          | Some FInt ->
            let a =
              Array.map
                (fun r ->
                  match get_field ~rel:name ~field r with
                  | Value.Int i -> i
                  | _ -> assert false)
                rows
            in
            Some (field, Column.Ints a)
          | Some FStr ->
            let a =
              Array.map
                (fun r ->
                  match get_field ~rel:name ~field r with
                  | Value.Str s -> s
                  | _ -> assert false)
                rows
            in
            Some (field, Column.Strs a)
          | Some FBool ->
            let a =
              Array.map
                (fun r ->
                  match get_field ~rel:name ~field r with
                  | Value.Bool b -> b
                  | _ -> assert false)
                rows
            in
            Some (field, Column.Bools a)
          | Some (FObj target_cls) -> (
            match target_of_cls target_cls with
            | None ->
              Some
                (field, Column.Boxed (Array.map (get_field ~rel:name ~field) rows))
            | Some (tname, _, trows) ->
              let tindex = List.assoc tname oid_index in
              let total = ref true and exact = ref true in
              let idx =
                Array.map
                  (fun r ->
                    let v = get_field ~rel:name ~field r in
                    match Hashtbl.find_opt tindex (oid_of_row v) with
                    | Some i ->
                      if not (v == trows.(i) || Value.equal v trows.(i)) then
                        exact := false;
                      i
                    | None ->
                      total := false;
                      exact := false;
                      -1)
                  rows
              in
              Some
                ( field,
                  Column.Refs
                    { target = tname; idx; total = !total; exact = !exact } ))
          | Some FOther ->
            Some (field, Column.Boxed (Array.map (get_field ~rel:name ~field) rows)))
        fields
    in
    (name, { name; cls; rows; cols })
  in
  { source; rels = List.map materialize rels_raw }

(* ------------------------------------------------------------------ *)

type stats = {
  relations : int;
  rows : int;
  typed_cols : int;  (** Ints/Strs/Bools/Refs columns *)
  boxed_cols : int;
}

let stats (t : db) : stats =
  List.fold_left
    (fun acc (_, r) ->
      let typed, boxed =
        List.fold_left
          (fun (t, b) (_, c) ->
            match c with Column.Boxed _ -> (t, b + 1) | _ -> (t + 1, b))
          (0, 0) r.cols
      in
      {
        relations = acc.relations + 1;
        rows = acc.rows + Array.length r.rows;
        typed_cols = acc.typed_cols + typed;
        boxed_cols = acc.boxed_cols + boxed;
      })
    { relations = 0; rows = 0; typed_cols = 0; boxed_cols = 0 }
    t.rels

let pp_stats ppf (s : stats) =
  Fmt.pf ppf "%d relations, %d rows, %d typed + %d boxed columns" s.relations
    s.rows s.typed_cols s.boxed_cols

(* KOLA terms: the combinator algebra of Tables 1 and 2.

   Functions are invoked with [!] and predicates with [?] (see {!Eval}).
   [Fhole]/[Phole] are metavariables; they may appear only in rule patterns
   (see {!Rewrite}) and make ground terms and patterns share one
   representation, so rules need no separate pattern language.

   Beyond the paper's Tables 1-2 we include arithmetic and aggregate
   primitives ([Arith], [Agg]) and set operations ([Setop]); these are needed
   for the precondition examples of Section 4.2 (intersection), the count-bug
   reproduction, and realistic workloads. *)

type arith = Add | Sub | Mul
type agg = Count | Sum | Max | Min
type setop = Union | Inter | Diff

type func =
  | Id                       (** identity: id!x = x *)
  | Pi1                      (** π1![x,y] = x *)
  | Pi2                      (** π2![x,y] = y *)
  | Prim of string           (** schema attribute function, e.g. age *)
  | Compose of func * func   (** (f ∘ g)!x = f!(g!x) *)
  | Pairf of func * func     (** (f, g)!x = [f!x, g!x] *)
  | Times of func * func     (** (f × g)![x,y] = [f!x, g!y] *)
  | Kf of Value.t            (** Kf(c)!x = c *)
  | Cf of func * Value.t     (** Cf(f, c)!y = f![c, y] *)
  | Con of pred * func * func (** con(p,f,g)!x = if p?x then f!x else g!x *)
  | Arith of arith           (** binary, on pairs of ints *)
  | Agg of agg               (** aggregate over a set of ints *)
  | Setop of setop           (** binary, on pairs of sets *)
  | Sng                      (** sng!x = {x} *)
  | Flat                     (** flat!A = {x | x ∈ B, B ∈ A} *)
  | Iterate of pred * func   (** iterate(p,f)!A = {f!x | x ∈ A, p?x} *)
  | Iter of pred * func      (** iter(p,f)![e,B] = {f![e,y] | y ∈ B, p?[e,y]} *)
  | Join of pred * func      (** join(p,f)![A,B] = {f![x,y] | x∈A, y∈B, p?[x,y]} *)
  | Nest of func * func      (** nest(f,g)![A,B] = {[y, {g!x | x∈A, f!x=y}] | y∈B} *)
  | Unnest of func * func    (** unnest(f,g)!A = {[f!x, y] | x∈A, y ∈ g!x} *)
  | Fhole of string

and pred =
  | Eq                       (** eq?[x,y] = (x = y) *)
  | Leq                      (** leq?[x,y] = x ≤ y *)
  | Gt                       (** gt?[x,y] = x > y *)
  | In                       (** in?[x,A] = x ∈ A *)
  | Primp of string          (** schema predicate *)
  | Oplus of pred * func     (** (p ⊕ f)?x = p?(f!x) *)
  | Andp of pred * pred      (** (p & q)?x = p?x ∧ q?x *)
  | Orp of pred * pred       (** (p | q)?x = p?x ∨ q?x *)
  | Inv of pred              (** p⁻¹?x = ¬(p?x); negation, satisfying rule 7 *)
  | Conv of pred             (** pᵒ?[x,y] = p?[y,x]; converse, repairing rule 13 *)
  | Kp of bool               (** Kp(b)?x = b *)
  | Cp of pred * Value.t     (** Cp(p, c)?y = p?[c, y] *)
  | Phole of string

(* A query pairs a KOLA function with the argument it is invoked on, as in
   the paper's [iterate (...) ! V]. *)
type query = { body : func; arg : Value.t }

let query body arg = { body; arg }

(* Smart constructors / common abbreviations.  [sel] and [proj] are the
   paper's footnote-3 derived forms. *)
let ( ^>> ) g f = Compose (f, g)
let compose f g = Compose (f, g)
let sel p = Iterate (p, Id)
let proj f = Iterate (Kp true, f)
let ktrue = Kp true
let kfalse = Kp false

(* Composition chains, exploiting associativity as the paper does for its
   printed forms.  [chain [f1; f2; f3]] is f1 ∘ f2 ∘ f3. *)
let chain = function
  | [] -> Id
  | f :: fs -> List.fold_left (fun acc g -> Compose (acc, g)) f fs

let rec unchain = function
  | Compose (f, g) -> unchain f @ unchain g
  | f -> [ f ]

(* Rebuild every composition chain in left-associated form, recursively.
   Rules match chains modulo associativity (see {!Rewrite.Rule}), so terms
   are compared after [reassoc]. *)
let rec reassoc_func f =
  match f with
  | Compose _ ->
    let parts = List.map reassoc_func (unchain f) in
    chain parts
  | Id | Pi1 | Pi2 | Prim _ | Flat | Sng | Arith _ | Agg _ | Setop _
  | Kf _ | Fhole _ -> f
  | Pairf (a, b) -> Pairf (reassoc_func a, reassoc_func b)
  | Times (a, b) -> Times (reassoc_func a, reassoc_func b)
  | Nest (a, b) -> Nest (reassoc_func a, reassoc_func b)
  | Unnest (a, b) -> Unnest (reassoc_func a, reassoc_func b)
  | Cf (a, v) -> Cf (reassoc_func a, v)
  | Con (p, a, b) -> Con (reassoc_pred p, reassoc_func a, reassoc_func b)
  | Iterate (p, a) -> Iterate (reassoc_pred p, reassoc_func a)
  | Iter (p, a) -> Iter (reassoc_pred p, reassoc_func a)
  | Join (p, a) -> Join (reassoc_pred p, reassoc_func a)

and reassoc_pred p =
  match p with
  | Eq | Leq | Gt | In | Primp _ | Kp _ | Phole _ -> p
  | Oplus (q, f) -> Oplus (reassoc_pred q, reassoc_func f)
  | Andp (q, r) -> Andp (reassoc_pred q, reassoc_pred r)
  | Orp (q, r) -> Orp (reassoc_pred q, reassoc_pred r)
  | Inv q -> Inv (reassoc_pred q)
  | Conv q -> Conv (reassoc_pred q)
  | Cp (q, v) -> Cp (reassoc_pred q, v)

let rec equal_func a b =
  match a, b with
  | Id, Id | Pi1, Pi1 | Pi2, Pi2 | Flat, Flat | Sng, Sng -> true
  | Prim x, Prim y -> String.equal x y
  | Compose (f1, g1), Compose (f2, g2)
  | Pairf (f1, g1), Pairf (f2, g2)
  | Times (f1, g1), Times (f2, g2)
  | Nest (f1, g1), Nest (f2, g2)
  | Unnest (f1, g1), Unnest (f2, g2) -> equal_func f1 f2 && equal_func g1 g2
  | Kf v1, Kf v2 -> Value.equal v1 v2
  | Cf (f1, v1), Cf (f2, v2) -> equal_func f1 f2 && Value.equal v1 v2
  | Con (p1, f1, g1), Con (p2, f2, g2) ->
    equal_pred p1 p2 && equal_func f1 f2 && equal_func g1 g2
  | Arith x, Arith y -> x = y
  | Agg x, Agg y -> x = y
  | Setop x, Setop y -> x = y
  | Iterate (p1, f1), Iterate (p2, f2)
  | Iter (p1, f1), Iter (p2, f2)
  | Join (p1, f1), Join (p2, f2) -> equal_pred p1 p2 && equal_func f1 f2
  | Fhole x, Fhole y -> String.equal x y
  | ( ( Id | Pi1 | Pi2 | Prim _ | Compose _ | Pairf _ | Times _ | Kf _ | Cf _
      | Con _ | Arith _ | Agg _ | Setop _ | Flat | Sng | Iterate _ | Iter _
      | Join _ | Nest _ | Unnest _ | Fhole _ ),
      _ ) -> false

and equal_pred a b =
  match a, b with
  | Eq, Eq | Leq, Leq | Gt, Gt | In, In -> true
  | Primp x, Primp y -> String.equal x y
  | Oplus (p1, f1), Oplus (p2, f2) -> equal_pred p1 p2 && equal_func f1 f2
  | Andp (p1, q1), Andp (p2, q2) | Orp (p1, q1), Orp (p2, q2) ->
    equal_pred p1 p2 && equal_pred q1 q2
  | Inv p1, Inv p2 | Conv p1, Conv p2 -> equal_pred p1 p2
  | Kp b1, Kp b2 -> Bool.equal b1 b2
  | Cp (p1, v1), Cp (p2, v2) -> equal_pred p1 p2 && Value.equal v1 v2
  | Phole x, Phole y -> String.equal x y
  | ( (Eq | Leq | Gt | In | Primp _ | Oplus _ | Andp _ | Orp _ | Inv _
      | Conv _ | Kp _ | Cp _ | Phole _),
      _ ) -> false

let equal_query q1 q2 = equal_func q1.body q2.body && Value.equal q1.arg q2.arg

(* Size in parse-tree nodes, the measure used by the paper's Section 4.2
   complexity discussion.  Constant values count their own nodes. *)
let rec size_func = function
  | Id | Pi1 | Pi2 | Prim _ | Flat | Sng | Arith _ | Agg _ | Setop _
  | Fhole _ -> 1
  | Compose (f, g) | Pairf (f, g) | Times (f, g) | Nest (f, g) | Unnest (f, g)
    -> 1 + size_func f + size_func g
  | Kf v -> 1 + Value.size v
  | Cf (f, v) -> 1 + size_func f + Value.size v
  | Con (p, f, g) -> 1 + size_pred p + size_func f + size_func g
  | Iterate (p, f) | Iter (p, f) | Join (p, f) -> 1 + size_pred p + size_func f

and size_pred = function
  | Eq | Leq | Gt | In | Primp _ | Kp _ | Phole _ -> 1
  | Oplus (p, f) -> 1 + size_pred p + size_func f
  | Andp (p, q) | Orp (p, q) -> 1 + size_pred p + size_pred q
  | Inv p | Conv p -> 1 + size_pred p
  | Cp (p, v) -> 1 + size_pred p + Value.size v

let rec func_is_ground = function
  | Fhole _ -> false
  | Id | Pi1 | Pi2 | Prim _ | Flat | Sng | Arith _ | Agg _ | Setop _ -> true
  | Compose (f, g) | Pairf (f, g) | Times (f, g) | Nest (f, g) | Unnest (f, g)
    -> func_is_ground f && func_is_ground g
  | Kf v -> Value.is_ground v
  | Cf (f, v) -> func_is_ground f && Value.is_ground v
  | Con (p, f, g) -> pred_is_ground p && func_is_ground f && func_is_ground g
  | Iterate (p, f) | Iter (p, f) | Join (p, f) ->
    pred_is_ground p && func_is_ground f

and pred_is_ground = function
  | Phole _ -> false
  | Eq | Leq | Gt | In | Primp _ | Kp _ -> true
  | Oplus (p, f) -> pred_is_ground p && func_is_ground f
  | Andp (p, q) | Orp (p, q) -> pred_is_ground p && pred_is_ground q
  | Inv p | Conv p -> pred_is_ground p
  | Cp (p, v) -> pred_is_ground p && Value.is_ground v

(* Holes occurring in a term, used by rule well-formedness checks. *)
let holes_func f =
  let acc = ref [] in
  let add h = if not (List.mem h !acc) then acc := h :: !acc in
  let rec gof = function
    | Fhole h -> add ("f:" ^ h)
    | Id | Pi1 | Pi2 | Prim _ | Flat | Sng | Arith _ | Agg _ | Setop _ -> ()
    | Compose (f, g) | Pairf (f, g) | Times (f, g) | Nest (f, g) | Unnest (f, g)
      ->
      gof f;
      gof g
    | Kf v -> gov v
    | Cf (f, v) ->
      gof f;
      gov v
    | Con (p, f, g) ->
      gop p;
      gof f;
      gof g
    | Iterate (p, f) | Iter (p, f) | Join (p, f) ->
      gop p;
      gof f
  and gop = function
    | Phole h -> add ("p:" ^ h)
    | Eq | Leq | Gt | In | Primp _ | Kp _ -> ()
    | Oplus (p, f) ->
      gop p;
      gof f
    | Andp (p, q) | Orp (p, q) ->
      gop p;
      gop q
    | Inv p | Conv p -> gop p
    | Cp (p, v) ->
      gop p;
      gov v
  and gov = function
    | Value.Hole h -> add ("v:" ^ h)
    | Value.Pair (a, b) ->
      gov a;
      gov b
    | Value.Set xs | Value.Bag xs | Value.List xs -> List.iter gov xs
    | Value.Obj o -> List.iter (fun (_, x) -> gov x) o.fields
    | Value.Unit | Value.Bool _ | Value.Int _ | Value.Str _ | Value.Named _ ->
      ()
  in
  gof f;
  List.rev !acc

(* Equality modulo associativity of composition. *)
let equal_func_assoc a b = equal_func (reassoc_func a) (reassoc_func b)
let equal_pred_assoc a b = equal_pred (reassoc_pred a) (reassoc_pred b)

let equal_query_assoc q1 q2 =
  equal_func_assoc q1.body q2.body && Value.equal q1.arg q2.arg

(* Structural hashing, consistent with [equal_func]/[equal_pred]: equal terms
   hash equal.  One multiplicative combine per node keeps a hash linear in
   the term size — the optimizer's dedup uses it instead of pretty-printing
   states to strings (see {!Canonical}). *)
let hash_combine h1 h2 = (h1 * 0x01000193) lxor h2

let rec hash_func f =
  match f with
  | Id -> 3
  | Pi1 -> 5
  | Pi2 -> 7
  | Flat -> 11
  | Sng -> 13
  | Prim s -> hash_combine 17 (Hashtbl.hash s)
  | Compose (a, b) -> hash_combine 19 (hash_combine (hash_func a) (hash_func b))
  | Pairf (a, b) -> hash_combine 23 (hash_combine (hash_func a) (hash_func b))
  | Times (a, b) -> hash_combine 29 (hash_combine (hash_func a) (hash_func b))
  | Nest (a, b) -> hash_combine 31 (hash_combine (hash_func a) (hash_func b))
  | Unnest (a, b) -> hash_combine 37 (hash_combine (hash_func a) (hash_func b))
  | Kf v -> hash_combine 41 (Value.hash v)
  | Cf (a, v) -> hash_combine 43 (hash_combine (hash_func a) (Value.hash v))
  | Con (p, a, b) ->
    hash_combine 47
      (hash_combine (hash_pred p) (hash_combine (hash_func a) (hash_func b)))
  | Arith op -> hash_combine 53 (Hashtbl.hash op)
  | Agg op -> hash_combine 59 (Hashtbl.hash op)
  | Setop op -> hash_combine 61 (Hashtbl.hash op)
  | Iterate (p, a) -> hash_combine 67 (hash_combine (hash_pred p) (hash_func a))
  | Iter (p, a) -> hash_combine 71 (hash_combine (hash_pred p) (hash_func a))
  | Join (p, a) -> hash_combine 73 (hash_combine (hash_pred p) (hash_func a))
  | Fhole h -> hash_combine 79 (Hashtbl.hash h)

and hash_pred p =
  match p with
  | Eq -> 83
  | Leq -> 89
  | Gt -> 97
  | In -> 101
  | Primp s -> hash_combine 103 (Hashtbl.hash s)
  | Oplus (q, f) -> hash_combine 107 (hash_combine (hash_pred q) (hash_func f))
  | Andp (q, r) -> hash_combine 109 (hash_combine (hash_pred q) (hash_pred r))
  | Orp (q, r) -> hash_combine 113 (hash_combine (hash_pred q) (hash_pred r))
  | Inv q -> hash_combine 127 (hash_pred q)
  | Conv q -> hash_combine 131 (hash_pred q)
  | Kp b -> if b then 137 else 139
  | Cp (q, v) -> hash_combine 149 (hash_combine (hash_pred q) (Value.hash v))
  | Phole h -> hash_combine 151 (Hashtbl.hash h)

let hash_query q = hash_combine (hash_func q.body) (Value.hash q.arg)

(* Canonical keys: a query reassociated into left-nested composition form
   with its hash computed once.  Equality is hash-then-structural, so
   hashtable dedup over rewrite states costs one traversal per state instead
   of allocating a pretty-printed string per state. *)
module Canonical = struct
  type t = { cq : query; chash : int }

  let of_query q =
    let cq = { q with body = reassoc_func q.body } in
    { cq; chash = hash_query cq }

  let to_query t = t.cq
  let hash t = t.chash
  let equal a b = a.chash = b.chash && equal_query a.cq b.cq

  module Table = Hashtbl.Make (struct
    type nonrec t = t

    let equal = equal
    let hash = hash
  end)
end

(* Hash-consed (interned) terms: every structurally distinct subterm gets one
   canonical in-memory node, so equality is [==], and hash/size/groundness
   are O(1) field reads instead of term walks.  Node hashes reuse the exact
   [hash_func]/[hash_pred]/[Value.hash] recurrences, computed shallowly from
   the children's stored hashes; [fterm]/[pterm]/[vterm] keep an always-valid
   plain view (built shallowly from the children's plain views), making
   [to_func] and friends O(1).

   Interning is modulo [Value.equal], which compares objects by identity
   ([cls], [oid]) and ignores their fields — the first representative of an
   object interned wins, exactly matching the equivalence the optimizer's
   legacy [Canonical] dedup uses.  (A workload holding two same-identity
   objects with different field lists would see the second's fields replaced
   by the first's in plain views; the object model never produces that.)

   [fcanon]/[pcanon] memoize reassociation ([reassoc_func] mirrored on
   nodes): computed once per unique subterm ever interned, not once per
   successor.  The fields are benignly racy under domains — every racer
   computes the same physical node (canon is deterministic and interning
   returns physical representatives), so concurrent writes store physically
   equal values. *)
module Hc = struct
  type fnode = {
    fshape : fshape;
    fterm : func;
    fid : int;
    fhash : int;
    fsize : int;
    fheads : int;
    fhole_free : bool;
    mutable fcanon : fnode option;
  }

  and pnode = {
    pshape : pshape;
    pterm : pred;
    pid : int;
    phash : int;
    psize : int;
    pheads : int;
    phole_free : bool;
    mutable pcanon : pnode option;
  }

  and vnode = {
    vshape : vshape;
    vterm : Value.t;
    vid : int;
    vhash : int;
    vsize : int;
    vhole_free : bool;
  }

  and fshape =
    | HId
    | HPi1
    | HPi2
    | HPrim of string
    | HCompose of fnode * fnode
    | HPairf of fnode * fnode
    | HTimes of fnode * fnode
    | HKf of vnode
    | HCf of fnode * vnode
    | HCon of pnode * fnode * fnode
    | HArith of arith
    | HAgg of agg
    | HSetop of setop
    | HSng
    | HFlat
    | HIterate of pnode * fnode
    | HIter of pnode * fnode
    | HJoin of pnode * fnode
    | HNest of fnode * fnode
    | HUnnest of fnode * fnode
    | HFhole of string

  and pshape =
    | HEq
    | HLeq
    | HGt
    | HIn
    | HPrimp of string
    | HOplus of pnode * fnode
    | HAndp of pnode * pnode
    | HOrp of pnode * pnode
    | HInv of pnode
    | HConv of pnode
    | HKp of bool
    | HCp of pnode * vnode
    | HPhole of string

  and vshape =
    | HVunit
    | HVbool of bool
    | HVint of int
    | HVstr of string
    | HVpair of vnode * vnode
    | HVset of vnode list
    | HVbag of vnode list
    | HVlist of vnode list
    | HVobj of Value.obj
    | HVnamed of string
    | HVhole of string

  (* Head-constructor bitmask layout: func heads at bits 0-19 (constructor
     declaration order), pred heads at bits 20-31.  Holes carry no bit (they
     are pattern metavariables, not heads), and values contribute nothing —
     matching {!Rewrite.Index.presence_of_query}, which does not descend
     into Kf/Cf/Cp constants.  {!Rewrite.Index.head_bit} must agree with
     this numbering (enforced by test_hashcons). *)
  let fshape_bit = function
    | HId -> 1 lsl 0
    | HPi1 -> 1 lsl 1
    | HPi2 -> 1 lsl 2
    | HPrim _ -> 1 lsl 3
    | HCompose _ -> 1 lsl 4
    | HPairf _ -> 1 lsl 5
    | HTimes _ -> 1 lsl 6
    | HKf _ -> 1 lsl 7
    | HCf _ -> 1 lsl 8
    | HCon _ -> 1 lsl 9
    | HArith _ -> 1 lsl 10
    | HAgg _ -> 1 lsl 11
    | HSetop _ -> 1 lsl 12
    | HSng -> 1 lsl 13
    | HFlat -> 1 lsl 14
    | HIterate _ -> 1 lsl 15
    | HIter _ -> 1 lsl 16
    | HJoin _ -> 1 lsl 17
    | HNest _ -> 1 lsl 18
    | HUnnest _ -> 1 lsl 19
    | HFhole _ -> 0

  let pshape_bit = function
    | HEq -> 1 lsl 20
    | HLeq -> 1 lsl 21
    | HGt -> 1 lsl 22
    | HIn -> 1 lsl 23
    | HPrimp _ -> 1 lsl 24
    | HOplus _ -> 1 lsl 25
    | HAndp _ -> 1 lsl 26
    | HOrp _ -> 1 lsl 27
    | HInv _ -> 1 lsl 28
    | HConv _ -> 1 lsl 29
    | HKp _ -> 1 lsl 30
    | HCp _ -> 1 lsl 31
    | HPhole _ -> 0

  let compose_mask = 1 lsl 4

  module Vnode = struct
    type shape = vshape
    type t = vnode

    (* Shallow mirror of [Value.hash]. *)
    let hash = function
      | HVunit -> 17
      | HVbool b -> if b then 31 else 37
      | HVint i -> Hashtbl.hash i
      | HVstr s -> Hashtbl.hash s
      | HVpair (a, b) -> (a.vhash * 65599) + b.vhash
      | HVset xs -> List.fold_left (fun acc x -> (acc * 131) + x.vhash) 3 xs
      | HVbag xs -> List.fold_left (fun acc x -> (acc * 131) + x.vhash) 5 xs
      | HVlist xs -> List.fold_left (fun acc x -> (acc * 131) + x.vhash) 7 xs
      | HVobj { cls; oid; _ } -> Hashtbl.hash (cls, oid)
      | HVnamed s -> Hashtbl.hash ("named", s)
      | HVhole s -> Hashtbl.hash ("hole", s)

    let matches shape node =
      match shape, node.vshape with
      | HVunit, HVunit -> true
      | HVbool a, HVbool b -> Bool.equal a b
      | HVint a, HVint b -> Int.equal a b
      | HVstr a, HVstr b -> String.equal a b
      | HVpair (a1, b1), HVpair (a2, b2) -> a1 == a2 && b1 == b2
      | HVset xs, HVset ys | HVbag xs, HVbag ys | HVlist xs, HVlist ys ->
        List.length xs = List.length ys && List.for_all2 ( == ) xs ys
      | HVobj a, HVobj b ->
        (* Identity-based, like [Value.compare]: fields are ignored. *)
        String.equal a.cls b.cls && Int.equal a.oid b.oid
      | HVnamed a, HVnamed b -> String.equal a b
      | HVhole a, HVhole b -> String.equal a b
      | ( ( HVunit | HVbool _ | HVint _ | HVstr _ | HVpair _ | HVset _
          | HVbag _ | HVlist _ | HVobj _ | HVnamed _ | HVhole _ ),
          _ ) -> false

    let build ~id shape =
      let vhash = hash shape in
      let mk vterm vsize vhole_free =
        { vshape = shape; vterm; vid = id; vhash; vsize; vhole_free }
      in
      let views xs = List.map (fun x -> x.vterm) xs in
      let sizes xs = List.fold_left (fun n x -> n + x.vsize) 0 xs in
      let ground xs = List.for_all (fun x -> x.vhole_free) xs in
      match shape with
      | HVunit -> mk Value.Unit 1 true
      | HVbool b -> mk (Value.Bool b) 1 true
      | HVint i -> mk (Value.Int i) 1 true
      | HVstr s -> mk (Value.Str s) 1 true
      | HVpair (a, b) ->
        mk (Value.Pair (a.vterm, b.vterm)) (1 + a.vsize + b.vsize)
          (a.vhole_free && b.vhole_free)
      (* Children are replaced by their (Value.equal) representatives, which
         preserves sortedness/dedup of canonical sets and bags, so rebuilding
         with the raw constructor — not [Value.set] — is safe and O(n). *)
      | HVset xs -> mk (Value.Set (views xs)) (1 + sizes xs) (ground xs)
      | HVbag xs -> mk (Value.Bag (views xs)) (1 + sizes xs) (ground xs)
      | HVlist xs -> mk (Value.List (views xs)) (1 + sizes xs) (ground xs)
      | HVobj o -> mk (Value.Obj o) 1 (Value.is_ground (Value.Obj o))
      | HVnamed s -> mk (Value.Named s) 1 true
      | HVhole h -> mk (Value.Hole h) 1 false
  end

  module Pnode = struct
    type shape = pshape
    type t = pnode

    (* Shallow mirror of [hash_pred]. *)
    let hash = function
      | HEq -> 83
      | HLeq -> 89
      | HGt -> 97
      | HIn -> 101
      | HPrimp s -> hash_combine 103 (Hashtbl.hash s)
      | HOplus (q, f) -> hash_combine 107 (hash_combine q.phash f.fhash)
      | HAndp (q, r) -> hash_combine 109 (hash_combine q.phash r.phash)
      | HOrp (q, r) -> hash_combine 113 (hash_combine q.phash r.phash)
      | HInv q -> hash_combine 127 q.phash
      | HConv q -> hash_combine 131 q.phash
      | HKp b -> if b then 137 else 139
      | HCp (q, v) -> hash_combine 149 (hash_combine q.phash v.vhash)
      | HPhole h -> hash_combine 151 (Hashtbl.hash h)

    let matches shape node =
      match shape, node.pshape with
      | HEq, HEq | HLeq, HLeq | HGt, HGt | HIn, HIn -> true
      | HPrimp a, HPrimp b -> String.equal a b
      | HOplus (q1, f1), HOplus (q2, f2) -> q1 == q2 && f1 == f2
      | HAndp (q1, r1), HAndp (q2, r2) | HOrp (q1, r1), HOrp (q2, r2) ->
        q1 == q2 && r1 == r2
      | HInv q1, HInv q2 | HConv q1, HConv q2 -> q1 == q2
      | HKp a, HKp b -> Bool.equal a b
      | HCp (q1, v1), HCp (q2, v2) -> q1 == q2 && v1 == v2
      | HPhole a, HPhole b -> String.equal a b
      | ( ( HEq | HLeq | HGt | HIn | HPrimp _ | HOplus _ | HAndp _ | HOrp _
          | HInv _ | HConv _ | HKp _ | HCp _ | HPhole _ ),
          _ ) -> false

    let build ~id shape =
      let phash = hash shape in
      let mk pterm psize pheads phole_free =
        {
          pshape = shape;
          pterm;
          pid = id;
          phash;
          psize;
          pheads;
          phole_free;
          pcanon = None;
        }
      in
      let own = pshape_bit shape in
      match shape with
      | HEq -> mk Eq 1 own true
      | HLeq -> mk Leq 1 own true
      | HGt -> mk Gt 1 own true
      | HIn -> mk In 1 own true
      | HPrimp s -> mk (Primp s) 1 own true
      | HOplus (q, f) ->
        mk (Oplus (q.pterm, f.fterm)) (1 + q.psize + f.fsize)
          (own lor q.pheads lor f.fheads)
          (q.phole_free && f.fhole_free)
      | HAndp (q, r) ->
        mk (Andp (q.pterm, r.pterm)) (1 + q.psize + r.psize)
          (own lor q.pheads lor r.pheads)
          (q.phole_free && r.phole_free)
      | HOrp (q, r) ->
        mk (Orp (q.pterm, r.pterm)) (1 + q.psize + r.psize)
          (own lor q.pheads lor r.pheads)
          (q.phole_free && r.phole_free)
      | HInv q -> mk (Inv q.pterm) (1 + q.psize) (own lor q.pheads) q.phole_free
      | HConv q ->
        mk (Conv q.pterm) (1 + q.psize) (own lor q.pheads) q.phole_free
      | HKp b -> mk (Kp b) 1 own true
      | HCp (q, v) ->
        mk (Cp (q.pterm, v.vterm)) (1 + q.psize + v.vsize) (own lor q.pheads)
          (q.phole_free && v.vhole_free)
      | HPhole h -> mk (Phole h) 1 0 false
  end

  module Fnode = struct
    type shape = fshape
    type t = fnode

    (* Shallow mirror of [hash_func]. *)
    let hash = function
      | HId -> 3
      | HPi1 -> 5
      | HPi2 -> 7
      | HFlat -> 11
      | HSng -> 13
      | HPrim s -> hash_combine 17 (Hashtbl.hash s)
      | HCompose (a, b) -> hash_combine 19 (hash_combine a.fhash b.fhash)
      | HPairf (a, b) -> hash_combine 23 (hash_combine a.fhash b.fhash)
      | HTimes (a, b) -> hash_combine 29 (hash_combine a.fhash b.fhash)
      | HNest (a, b) -> hash_combine 31 (hash_combine a.fhash b.fhash)
      | HUnnest (a, b) -> hash_combine 37 (hash_combine a.fhash b.fhash)
      | HKf v -> hash_combine 41 v.vhash
      | HCf (a, v) -> hash_combine 43 (hash_combine a.fhash v.vhash)
      | HCon (p, a, b) ->
        hash_combine 47 (hash_combine p.phash (hash_combine a.fhash b.fhash))
      | HArith op -> hash_combine 53 (Hashtbl.hash op)
      | HAgg op -> hash_combine 59 (Hashtbl.hash op)
      | HSetop op -> hash_combine 61 (Hashtbl.hash op)
      | HIterate (p, a) -> hash_combine 67 (hash_combine p.phash a.fhash)
      | HIter (p, a) -> hash_combine 71 (hash_combine p.phash a.fhash)
      | HJoin (p, a) -> hash_combine 73 (hash_combine p.phash a.fhash)
      | HFhole h -> hash_combine 79 (Hashtbl.hash h)

    let matches shape node =
      match shape, node.fshape with
      | HId, HId | HPi1, HPi1 | HPi2, HPi2 | HFlat, HFlat | HSng, HSng -> true
      | HPrim a, HPrim b -> String.equal a b
      | HCompose (a1, b1), HCompose (a2, b2)
      | HPairf (a1, b1), HPairf (a2, b2)
      | HTimes (a1, b1), HTimes (a2, b2)
      | HNest (a1, b1), HNest (a2, b2)
      | HUnnest (a1, b1), HUnnest (a2, b2) -> a1 == a2 && b1 == b2
      | HKf v1, HKf v2 -> v1 == v2
      | HCf (a1, v1), HCf (a2, v2) -> a1 == a2 && v1 == v2
      | HCon (p1, a1, b1), HCon (p2, a2, b2) ->
        p1 == p2 && a1 == a2 && b1 == b2
      | HArith x, HArith y -> x = y
      | HAgg x, HAgg y -> x = y
      | HSetop x, HSetop y -> x = y
      | HIterate (p1, a1), HIterate (p2, a2)
      | HIter (p1, a1), HIter (p2, a2)
      | HJoin (p1, a1), HJoin (p2, a2) -> p1 == p2 && a1 == a2
      | HFhole a, HFhole b -> String.equal a b
      | ( ( HId | HPi1 | HPi2 | HPrim _ | HCompose _ | HPairf _ | HTimes _
          | HKf _ | HCf _ | HCon _ | HArith _ | HAgg _ | HSetop _ | HSng
          | HFlat | HIterate _ | HIter _ | HJoin _ | HNest _ | HUnnest _
          | HFhole _ ),
          _ ) -> false

    let build ~id shape =
      let fhash = hash shape in
      let mk fterm fsize fheads fhole_free =
        {
          fshape = shape;
          fterm;
          fid = id;
          fhash;
          fsize;
          fheads;
          fhole_free;
          fcanon = None;
        }
      in
      let own = fshape_bit shape in
      match shape with
      | HId -> mk Id 1 own true
      | HPi1 -> mk Pi1 1 own true
      | HPi2 -> mk Pi2 1 own true
      | HPrim s -> mk (Prim s) 1 own true
      | HCompose (a, b) ->
        mk (Compose (a.fterm, b.fterm)) (1 + a.fsize + b.fsize)
          (own lor a.fheads lor b.fheads)
          (a.fhole_free && b.fhole_free)
      | HPairf (a, b) ->
        mk (Pairf (a.fterm, b.fterm)) (1 + a.fsize + b.fsize)
          (own lor a.fheads lor b.fheads)
          (a.fhole_free && b.fhole_free)
      | HTimes (a, b) ->
        mk (Times (a.fterm, b.fterm)) (1 + a.fsize + b.fsize)
          (own lor a.fheads lor b.fheads)
          (a.fhole_free && b.fhole_free)
      | HKf v -> mk (Kf v.vterm) (1 + v.vsize) own v.vhole_free
      | HCf (a, v) ->
        mk (Cf (a.fterm, v.vterm)) (1 + a.fsize + v.vsize) (own lor a.fheads)
          (a.fhole_free && v.vhole_free)
      | HCon (p, a, b) ->
        mk (Con (p.pterm, a.fterm, b.fterm)) (1 + p.psize + a.fsize + b.fsize)
          (own lor p.pheads lor a.fheads lor b.fheads)
          (p.phole_free && a.fhole_free && b.fhole_free)
      | HArith op -> mk (Arith op) 1 own true
      | HAgg op -> mk (Agg op) 1 own true
      | HSetop op -> mk (Setop op) 1 own true
      | HSng -> mk Sng 1 own true
      | HFlat -> mk Flat 1 own true
      | HIterate (p, a) ->
        mk (Iterate (p.pterm, a.fterm)) (1 + p.psize + a.fsize)
          (own lor p.pheads lor a.fheads)
          (p.phole_free && a.fhole_free)
      | HIter (p, a) ->
        mk (Iter (p.pterm, a.fterm)) (1 + p.psize + a.fsize)
          (own lor p.pheads lor a.fheads)
          (p.phole_free && a.fhole_free)
      | HJoin (p, a) ->
        mk (Join (p.pterm, a.fterm)) (1 + p.psize + a.fsize)
          (own lor p.pheads lor a.fheads)
          (p.phole_free && a.fhole_free)
      | HNest (a, b) ->
        mk (Nest (a.fterm, b.fterm)) (1 + a.fsize + b.fsize)
          (own lor a.fheads lor b.fheads)
          (a.fhole_free && b.fhole_free)
      | HUnnest (a, b) ->
        mk (Unnest (a.fterm, b.fterm)) (1 + a.fsize + b.fsize)
          (own lor a.fheads lor b.fheads)
          (a.fhole_free && b.fhole_free)
      | HFhole h -> mk (Fhole h) 1 0 false
  end

  module Ftable = Hashcons.Make (Fnode)
  module Ptable = Hashcons.Make (Pnode)
  module Vtable = Hashcons.Make (Vnode)

  (* One process-global table per sort: sharing must span rules, states and
     caches, and ids must stay unique per sort. *)
  let ftable = Ftable.create ()
  let ptable = Ptable.create ()
  let vtable = Vtable.create ()

  let intern_stats () =
    Hashcons.merge_stats (Ftable.stats ftable)
      (Hashcons.merge_stats (Ptable.stats ptable) (Vtable.stats vtable))

  let intern_counters () =
    Hashcons.merge_stats (Ftable.counters ftable)
      (Hashcons.merge_stats (Ptable.counters ptable) (Vtable.counters vtable))

  let fmk s = Ftable.intern ftable s
  let pmk s = Ptable.intern ptable s
  let vmk s = Vtable.intern vtable s

  (* Smart constructors, one per func/pred shape; leaves are preinterned
     constants.  ([inp] because [in] is a keyword.) *)
  let id = fmk HId
  let pi1 = fmk HPi1
  let pi2 = fmk HPi2
  let sng = fmk HSng
  let flat = fmk HFlat
  let prim s = fmk (HPrim s)
  let compose a b = fmk (HCompose (a, b))
  let pairf a b = fmk (HPairf (a, b))
  let times a b = fmk (HTimes (a, b))
  let kf v = fmk (HKf v)
  let cf a v = fmk (HCf (a, v))
  let con p a b = fmk (HCon (p, a, b))
  let arith op = fmk (HArith op)
  let agg op = fmk (HAgg op)
  let setop op = fmk (HSetop op)
  let iterate p a = fmk (HIterate (p, a))
  let iter p a = fmk (HIter (p, a))
  let join p a = fmk (HJoin (p, a))
  let nest a b = fmk (HNest (a, b))
  let unnest a b = fmk (HUnnest (a, b))
  let fhole h = fmk (HFhole h)
  let eq = pmk HEq
  let leq = pmk HLeq
  let gt = pmk HGt
  let inp = pmk HIn
  let primp s = pmk (HPrimp s)
  let oplus p f = pmk (HOplus (p, f))
  let andp p q = pmk (HAndp (p, q))
  let orp p q = pmk (HOrp (p, q))
  let inv p = pmk (HInv p)
  let conv p = pmk (HConv p)
  let kp b = pmk (HKp b)
  let cp p v = pmk (HCp (p, v))
  let phole h = pmk (HPhole h)

  let vpair a b = vmk (HVpair (a, b))

  let rec of_value v =
    match v with
    | Value.Unit -> vmk HVunit
    | Value.Bool b -> vmk (HVbool b)
    | Value.Int i -> vmk (HVint i)
    | Value.Str s -> vmk (HVstr s)
    | Value.Pair (a, b) -> vmk (HVpair (of_value a, of_value b))
    | Value.Set xs -> vmk (HVset (List.map of_value xs))
    | Value.Bag xs -> vmk (HVbag (List.map of_value xs))
    | Value.List xs -> vmk (HVlist (List.map of_value xs))
    | Value.Obj o -> vmk (HVobj o)
    | Value.Named s -> vmk (HVnamed s)
    | Value.Hole h -> vmk (HVhole h)

  let rec of_func f =
    match f with
    | Id -> id
    | Pi1 -> pi1
    | Pi2 -> pi2
    | Sng -> sng
    | Flat -> flat
    | Prim s -> prim s
    | Compose (a, b) -> compose (of_func a) (of_func b)
    | Pairf (a, b) -> pairf (of_func a) (of_func b)
    | Times (a, b) -> times (of_func a) (of_func b)
    | Kf v -> kf (of_value v)
    | Cf (a, v) -> cf (of_func a) (of_value v)
    | Con (p, a, b) -> con (of_pred p) (of_func a) (of_func b)
    | Arith op -> arith op
    | Agg op -> agg op
    | Setop op -> setop op
    | Iterate (p, a) -> iterate (of_pred p) (of_func a)
    | Iter (p, a) -> iter (of_pred p) (of_func a)
    | Join (p, a) -> join (of_pred p) (of_func a)
    | Nest (a, b) -> nest (of_func a) (of_func b)
    | Unnest (a, b) -> unnest (of_func a) (of_func b)
    | Fhole h -> fhole h

  and of_pred p =
    match p with
    | Eq -> eq
    | Leq -> leq
    | Gt -> gt
    | In -> inp
    | Primp s -> primp s
    | Oplus (q, f) -> oplus (of_pred q) (of_func f)
    | Andp (q, r) -> andp (of_pred q) (of_pred r)
    | Orp (q, r) -> orp (of_pred q) (of_pred r)
    | Inv q -> inv (of_pred q)
    | Conv q -> conv (of_pred q)
    | Kp b -> kp b
    | Cp (q, v) -> cp (of_pred q) (of_value v)
    | Phole h -> phole h

  let to_func f = f.fterm
  let to_pred p = p.pterm
  let to_value v = v.vterm

  (* Chains on nodes, mirroring the plain [chain]/[unchain]. *)
  let rec unchain f =
    match f.fshape with
    | HCompose (a, b) -> unchain a @ unchain b
    | _ -> [ f ]

  let chain = function
    | [] -> id
    | f :: fs -> List.fold_left compose f fs

  (* Memoized mirror of [reassoc_func]/[reassoc_pred].  The result is itself
     canonical, so its own memo is seeded too. *)
  let rec canon f =
    match f.fcanon with
    | Some c -> c
    | None ->
      let c =
        match f.fshape with
        | HCompose _ -> chain (List.map canon (unchain f))
        | HId | HPi1 | HPi2 | HPrim _ | HFlat | HSng | HArith _ | HAgg _
        | HSetop _ | HKf _ | HFhole _ -> f
        | HPairf (a, b) -> pairf (canon a) (canon b)
        | HTimes (a, b) -> times (canon a) (canon b)
        | HNest (a, b) -> nest (canon a) (canon b)
        | HUnnest (a, b) -> unnest (canon a) (canon b)
        | HCf (a, v) -> cf (canon a) v
        | HCon (p, a, b) -> con (canon_pred p) (canon a) (canon b)
        | HIterate (p, a) -> iterate (canon_pred p) (canon a)
        | HIter (p, a) -> iter (canon_pred p) (canon a)
        | HJoin (p, a) -> join (canon_pred p) (canon a)
      in
      c.fcanon <- Some c;
      f.fcanon <- Some c;
      c

  and canon_pred p =
    match p.pcanon with
    | Some c -> c
    | None ->
      let c =
        match p.pshape with
        | HEq | HLeq | HGt | HIn | HPrimp _ | HKp _ | HPhole _ -> p
        | HOplus (q, f) -> oplus (canon_pred q) (canon f)
        | HAndp (q, r) -> andp (canon_pred q) (canon_pred r)
        | HOrp (q, r) -> orp (canon_pred q) (canon_pred r)
        | HInv q -> inv (canon_pred q)
        | HConv q -> conv (canon_pred q)
        | HCp (q, v) -> cp (canon_pred q) v
      in
      c.pcanon <- Some c;
      p.pcanon <- Some c;
      c

  (* Interned queries and their dedup keys: two queries share a key iff they
     are [Canonical.equal] — i.e. equal modulo ∘-associativity with
     [Value.equal] arguments — so id-pair dedup partitions states exactly
     like the legacy canonical table. *)
  type hquery = { hbody : fnode; harg : vnode }

  let of_query q = { hbody = of_func q.body; harg = of_value q.arg }
  let to_query hq = { body = hq.hbody.fterm; arg = hq.harg.vterm }
  let query_key hq = ((canon hq.hbody).fid, hq.harg.vid)

  module Qtable = Hashtbl.Make (struct
    type t = int * int

    let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
    let hash (a, b) = ((a * 0x01000193) lxor b) land max_int
  end)
end

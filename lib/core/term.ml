(* KOLA terms: the combinator algebra of Tables 1 and 2.

   Functions are invoked with [!] and predicates with [?] (see {!Eval}).
   [Fhole]/[Phole] are metavariables; they may appear only in rule patterns
   (see {!Rewrite}) and make ground terms and patterns share one
   representation, so rules need no separate pattern language.

   Beyond the paper's Tables 1-2 we include arithmetic and aggregate
   primitives ([Arith], [Agg]) and set operations ([Setop]); these are needed
   for the precondition examples of Section 4.2 (intersection), the count-bug
   reproduction, and realistic workloads. *)

type arith = Add | Sub | Mul
type agg = Count | Sum | Max | Min
type setop = Union | Inter | Diff

type func =
  | Id                       (** identity: id!x = x *)
  | Pi1                      (** π1![x,y] = x *)
  | Pi2                      (** π2![x,y] = y *)
  | Prim of string           (** schema attribute function, e.g. age *)
  | Compose of func * func   (** (f ∘ g)!x = f!(g!x) *)
  | Pairf of func * func     (** (f, g)!x = [f!x, g!x] *)
  | Times of func * func     (** (f × g)![x,y] = [f!x, g!y] *)
  | Kf of Value.t            (** Kf(c)!x = c *)
  | Cf of func * Value.t     (** Cf(f, c)!y = f![c, y] *)
  | Con of pred * func * func (** con(p,f,g)!x = if p?x then f!x else g!x *)
  | Arith of arith           (** binary, on pairs of ints *)
  | Agg of agg               (** aggregate over a set of ints *)
  | Setop of setop           (** binary, on pairs of sets *)
  | Sng                      (** sng!x = {x} *)
  | Flat                     (** flat!A = {x | x ∈ B, B ∈ A} *)
  | Iterate of pred * func   (** iterate(p,f)!A = {f!x | x ∈ A, p?x} *)
  | Iter of pred * func      (** iter(p,f)![e,B] = {f![e,y] | y ∈ B, p?[e,y]} *)
  | Join of pred * func      (** join(p,f)![A,B] = {f![x,y] | x∈A, y∈B, p?[x,y]} *)
  | Nest of func * func      (** nest(f,g)![A,B] = {[y, {g!x | x∈A, f!x=y}] | y∈B} *)
  | Unnest of func * func    (** unnest(f,g)!A = {[f!x, y] | x∈A, y ∈ g!x} *)
  | Fhole of string

and pred =
  | Eq                       (** eq?[x,y] = (x = y) *)
  | Leq                      (** leq?[x,y] = x ≤ y *)
  | Gt                       (** gt?[x,y] = x > y *)
  | In                       (** in?[x,A] = x ∈ A *)
  | Primp of string          (** schema predicate *)
  | Oplus of pred * func     (** (p ⊕ f)?x = p?(f!x) *)
  | Andp of pred * pred      (** (p & q)?x = p?x ∧ q?x *)
  | Orp of pred * pred       (** (p | q)?x = p?x ∨ q?x *)
  | Inv of pred              (** p⁻¹?x = ¬(p?x); negation, satisfying rule 7 *)
  | Conv of pred             (** pᵒ?[x,y] = p?[y,x]; converse, repairing rule 13 *)
  | Kp of bool               (** Kp(b)?x = b *)
  | Cp of pred * Value.t     (** Cp(p, c)?y = p?[c, y] *)
  | Phole of string

(* A query pairs a KOLA function with the argument it is invoked on, as in
   the paper's [iterate (...) ! V]. *)
type query = { body : func; arg : Value.t }

let query body arg = { body; arg }

(* Smart constructors / common abbreviations.  [sel] and [proj] are the
   paper's footnote-3 derived forms. *)
let ( ^>> ) g f = Compose (f, g)
let compose f g = Compose (f, g)
let sel p = Iterate (p, Id)
let proj f = Iterate (Kp true, f)
let ktrue = Kp true
let kfalse = Kp false

(* Composition chains, exploiting associativity as the paper does for its
   printed forms.  [chain [f1; f2; f3]] is f1 ∘ f2 ∘ f3. *)
let chain = function
  | [] -> Id
  | f :: fs -> List.fold_left (fun acc g -> Compose (acc, g)) f fs

let rec unchain = function
  | Compose (f, g) -> unchain f @ unchain g
  | f -> [ f ]

(* Rebuild every composition chain in left-associated form, recursively.
   Rules match chains modulo associativity (see {!Rewrite.Rule}), so terms
   are compared after [reassoc]. *)
let rec reassoc_func f =
  match f with
  | Compose _ ->
    let parts = List.map reassoc_func (unchain f) in
    chain parts
  | Id | Pi1 | Pi2 | Prim _ | Flat | Sng | Arith _ | Agg _ | Setop _
  | Kf _ | Fhole _ -> f
  | Pairf (a, b) -> Pairf (reassoc_func a, reassoc_func b)
  | Times (a, b) -> Times (reassoc_func a, reassoc_func b)
  | Nest (a, b) -> Nest (reassoc_func a, reassoc_func b)
  | Unnest (a, b) -> Unnest (reassoc_func a, reassoc_func b)
  | Cf (a, v) -> Cf (reassoc_func a, v)
  | Con (p, a, b) -> Con (reassoc_pred p, reassoc_func a, reassoc_func b)
  | Iterate (p, a) -> Iterate (reassoc_pred p, reassoc_func a)
  | Iter (p, a) -> Iter (reassoc_pred p, reassoc_func a)
  | Join (p, a) -> Join (reassoc_pred p, reassoc_func a)

and reassoc_pred p =
  match p with
  | Eq | Leq | Gt | In | Primp _ | Kp _ | Phole _ -> p
  | Oplus (q, f) -> Oplus (reassoc_pred q, reassoc_func f)
  | Andp (q, r) -> Andp (reassoc_pred q, reassoc_pred r)
  | Orp (q, r) -> Orp (reassoc_pred q, reassoc_pred r)
  | Inv q -> Inv (reassoc_pred q)
  | Conv q -> Conv (reassoc_pred q)
  | Cp (q, v) -> Cp (reassoc_pred q, v)

let rec equal_func a b =
  match a, b with
  | Id, Id | Pi1, Pi1 | Pi2, Pi2 | Flat, Flat | Sng, Sng -> true
  | Prim x, Prim y -> String.equal x y
  | Compose (f1, g1), Compose (f2, g2)
  | Pairf (f1, g1), Pairf (f2, g2)
  | Times (f1, g1), Times (f2, g2)
  | Nest (f1, g1), Nest (f2, g2)
  | Unnest (f1, g1), Unnest (f2, g2) -> equal_func f1 f2 && equal_func g1 g2
  | Kf v1, Kf v2 -> Value.equal v1 v2
  | Cf (f1, v1), Cf (f2, v2) -> equal_func f1 f2 && Value.equal v1 v2
  | Con (p1, f1, g1), Con (p2, f2, g2) ->
    equal_pred p1 p2 && equal_func f1 f2 && equal_func g1 g2
  | Arith x, Arith y -> x = y
  | Agg x, Agg y -> x = y
  | Setop x, Setop y -> x = y
  | Iterate (p1, f1), Iterate (p2, f2)
  | Iter (p1, f1), Iter (p2, f2)
  | Join (p1, f1), Join (p2, f2) -> equal_pred p1 p2 && equal_func f1 f2
  | Fhole x, Fhole y -> String.equal x y
  | ( ( Id | Pi1 | Pi2 | Prim _ | Compose _ | Pairf _ | Times _ | Kf _ | Cf _
      | Con _ | Arith _ | Agg _ | Setop _ | Flat | Sng | Iterate _ | Iter _
      | Join _ | Nest _ | Unnest _ | Fhole _ ),
      _ ) -> false

and equal_pred a b =
  match a, b with
  | Eq, Eq | Leq, Leq | Gt, Gt | In, In -> true
  | Primp x, Primp y -> String.equal x y
  | Oplus (p1, f1), Oplus (p2, f2) -> equal_pred p1 p2 && equal_func f1 f2
  | Andp (p1, q1), Andp (p2, q2) | Orp (p1, q1), Orp (p2, q2) ->
    equal_pred p1 p2 && equal_pred q1 q2
  | Inv p1, Inv p2 | Conv p1, Conv p2 -> equal_pred p1 p2
  | Kp b1, Kp b2 -> Bool.equal b1 b2
  | Cp (p1, v1), Cp (p2, v2) -> equal_pred p1 p2 && Value.equal v1 v2
  | Phole x, Phole y -> String.equal x y
  | ( (Eq | Leq | Gt | In | Primp _ | Oplus _ | Andp _ | Orp _ | Inv _
      | Conv _ | Kp _ | Cp _ | Phole _),
      _ ) -> false

let equal_query q1 q2 = equal_func q1.body q2.body && Value.equal q1.arg q2.arg

(* Size in parse-tree nodes, the measure used by the paper's Section 4.2
   complexity discussion.  Constant values count their own nodes. *)
let rec size_func = function
  | Id | Pi1 | Pi2 | Prim _ | Flat | Sng | Arith _ | Agg _ | Setop _
  | Fhole _ -> 1
  | Compose (f, g) | Pairf (f, g) | Times (f, g) | Nest (f, g) | Unnest (f, g)
    -> 1 + size_func f + size_func g
  | Kf v -> 1 + Value.size v
  | Cf (f, v) -> 1 + size_func f + Value.size v
  | Con (p, f, g) -> 1 + size_pred p + size_func f + size_func g
  | Iterate (p, f) | Iter (p, f) | Join (p, f) -> 1 + size_pred p + size_func f

and size_pred = function
  | Eq | Leq | Gt | In | Primp _ | Kp _ | Phole _ -> 1
  | Oplus (p, f) -> 1 + size_pred p + size_func f
  | Andp (p, q) | Orp (p, q) -> 1 + size_pred p + size_pred q
  | Inv p | Conv p -> 1 + size_pred p
  | Cp (p, v) -> 1 + size_pred p + Value.size v

let rec func_is_ground = function
  | Fhole _ -> false
  | Id | Pi1 | Pi2 | Prim _ | Flat | Sng | Arith _ | Agg _ | Setop _ -> true
  | Compose (f, g) | Pairf (f, g) | Times (f, g) | Nest (f, g) | Unnest (f, g)
    -> func_is_ground f && func_is_ground g
  | Kf v -> Value.is_ground v
  | Cf (f, v) -> func_is_ground f && Value.is_ground v
  | Con (p, f, g) -> pred_is_ground p && func_is_ground f && func_is_ground g
  | Iterate (p, f) | Iter (p, f) | Join (p, f) ->
    pred_is_ground p && func_is_ground f

and pred_is_ground = function
  | Phole _ -> false
  | Eq | Leq | Gt | In | Primp _ | Kp _ -> true
  | Oplus (p, f) -> pred_is_ground p && func_is_ground f
  | Andp (p, q) | Orp (p, q) -> pred_is_ground p && pred_is_ground q
  | Inv p | Conv p -> pred_is_ground p
  | Cp (p, v) -> pred_is_ground p && Value.is_ground v

(* Holes occurring in a term, used by rule well-formedness checks. *)
let holes_func f =
  let acc = ref [] in
  let add h = if not (List.mem h !acc) then acc := h :: !acc in
  let rec gof = function
    | Fhole h -> add ("f:" ^ h)
    | Id | Pi1 | Pi2 | Prim _ | Flat | Sng | Arith _ | Agg _ | Setop _ -> ()
    | Compose (f, g) | Pairf (f, g) | Times (f, g) | Nest (f, g) | Unnest (f, g)
      ->
      gof f;
      gof g
    | Kf v -> gov v
    | Cf (f, v) ->
      gof f;
      gov v
    | Con (p, f, g) ->
      gop p;
      gof f;
      gof g
    | Iterate (p, f) | Iter (p, f) | Join (p, f) ->
      gop p;
      gof f
  and gop = function
    | Phole h -> add ("p:" ^ h)
    | Eq | Leq | Gt | In | Primp _ | Kp _ -> ()
    | Oplus (p, f) ->
      gop p;
      gof f
    | Andp (p, q) | Orp (p, q) ->
      gop p;
      gop q
    | Inv p | Conv p -> gop p
    | Cp (p, v) ->
      gop p;
      gov v
  and gov = function
    | Value.Hole h -> add ("v:" ^ h)
    | Value.Pair (a, b) ->
      gov a;
      gov b
    | Value.Set xs | Value.Bag xs | Value.List xs -> List.iter gov xs
    | Value.Obj o -> List.iter (fun (_, x) -> gov x) o.fields
    | Value.Unit | Value.Bool _ | Value.Int _ | Value.Str _ | Value.Named _ ->
      ()
  in
  gof f;
  List.rev !acc

(* Equality modulo associativity of composition. *)
let equal_func_assoc a b = equal_func (reassoc_func a) (reassoc_func b)
let equal_pred_assoc a b = equal_pred (reassoc_pred a) (reassoc_pred b)

let equal_query_assoc q1 q2 =
  equal_func_assoc q1.body q2.body && Value.equal q1.arg q2.arg

(* Structural hashing, consistent with [equal_func]/[equal_pred]: equal terms
   hash equal.  One multiplicative combine per node keeps a hash linear in
   the term size — the optimizer's dedup uses it instead of pretty-printing
   states to strings (see {!Canonical}). *)
let hash_combine h1 h2 = (h1 * 0x01000193) lxor h2

let rec hash_func f =
  match f with
  | Id -> 3
  | Pi1 -> 5
  | Pi2 -> 7
  | Flat -> 11
  | Sng -> 13
  | Prim s -> hash_combine 17 (Hashtbl.hash s)
  | Compose (a, b) -> hash_combine 19 (hash_combine (hash_func a) (hash_func b))
  | Pairf (a, b) -> hash_combine 23 (hash_combine (hash_func a) (hash_func b))
  | Times (a, b) -> hash_combine 29 (hash_combine (hash_func a) (hash_func b))
  | Nest (a, b) -> hash_combine 31 (hash_combine (hash_func a) (hash_func b))
  | Unnest (a, b) -> hash_combine 37 (hash_combine (hash_func a) (hash_func b))
  | Kf v -> hash_combine 41 (Value.hash v)
  | Cf (a, v) -> hash_combine 43 (hash_combine (hash_func a) (Value.hash v))
  | Con (p, a, b) ->
    hash_combine 47
      (hash_combine (hash_pred p) (hash_combine (hash_func a) (hash_func b)))
  | Arith op -> hash_combine 53 (Hashtbl.hash op)
  | Agg op -> hash_combine 59 (Hashtbl.hash op)
  | Setop op -> hash_combine 61 (Hashtbl.hash op)
  | Iterate (p, a) -> hash_combine 67 (hash_combine (hash_pred p) (hash_func a))
  | Iter (p, a) -> hash_combine 71 (hash_combine (hash_pred p) (hash_func a))
  | Join (p, a) -> hash_combine 73 (hash_combine (hash_pred p) (hash_func a))
  | Fhole h -> hash_combine 79 (Hashtbl.hash h)

and hash_pred p =
  match p with
  | Eq -> 83
  | Leq -> 89
  | Gt -> 97
  | In -> 101
  | Primp s -> hash_combine 103 (Hashtbl.hash s)
  | Oplus (q, f) -> hash_combine 107 (hash_combine (hash_pred q) (hash_func f))
  | Andp (q, r) -> hash_combine 109 (hash_combine (hash_pred q) (hash_pred r))
  | Orp (q, r) -> hash_combine 113 (hash_combine (hash_pred q) (hash_pred r))
  | Inv q -> hash_combine 127 (hash_pred q)
  | Conv q -> hash_combine 131 (hash_pred q)
  | Kp b -> if b then 137 else 139
  | Cp (q, v) -> hash_combine 149 (hash_combine (hash_pred q) (Value.hash v))
  | Phole h -> hash_combine 151 (Hashtbl.hash h)

let hash_query q = hash_combine (hash_func q.body) (Value.hash q.arg)

(* Canonical keys: a query reassociated into left-nested composition form
   with its hash computed once.  Equality is hash-then-structural, so
   hashtable dedup over rewrite states costs one traversal per state instead
   of allocating a pretty-printed string per state. *)
module Canonical = struct
  type t = { cq : query; chash : int }

  let of_query q =
    let cq = { q with body = reassoc_func q.body } in
    { cq; chash = hash_query cq }

  let to_query t = t.cq
  let hash t = t.chash
  let equal a b = a.chash = b.chash && equal_query a.cq b.cq

  module Table = Hashtbl.Make (struct
    type nonrec t = t

    let equal = equal
    let hash = hash
  end)
end

(* The columnar execution layer (lib/core/colstore + the column kernels
   in lib/exec) against its oracles.

   Pinned equivalences:
   - colstore materialization: typed columns mirror the boxed rows
     field-for-field, rows stay in canonical set order, ref columns
     dictionary-encode into their target extent (-1 only for values
     outside the extent);
   - columnar compiled ≡ row compiled ≡ interpreter on the whole company
     and garage workloads, under the dedup the optimizer chose;
   - morsel determinism: the columnar result is BIT-identical (not just
     agree-modulo-ordering) at jobs 1, 2 and 4 — morsel boundaries and
     merge order never depend on the pool size. *)

open Kola
open Util
module Exec = Kola_exec.Exec
module C = Colstore
module Pool = Kola_parallel.Pool

let check_agree ~db msg a b =
  Alcotest.check Alcotest.bool msg true (Exec.agree ~db a b)

(* --- fixtures: the company store at a size with multi-element groups --- *)

let company = Datagen.Company.scaled ~seed:77 500
let company_db = Datagen.Company.db company
let company_coldb = Datagen.Company.columnar company

let store_coldb = Datagen.Store.columnar gen_store

let company_queries =
  [
    ("dept_roster", Datagen.Company.dept_roster_oql);
    ("mentor_pool", Datagen.Company.mentor_pool_oql);
    ("city_salaries", Datagen.Company.city_salaries_oql);
    ("payroll", Datagen.Company.payroll_oql);
    ("rich_mentors", Datagen.Company.rich_mentors_oql);
    ("local_staff", Datagen.Company.local_staff_oql);
    ("mentor_elite", Datagen.Company.mentor_elite_oql);
  ]

let plan_of ~db src =
  let report =
    Optimizer.Pipeline.optimize_oql ~extents:[ "E"; "D" ] ~db src
  in
  let chosen = report.Optimizer.Pipeline.chosen in
  (chosen.Optimizer.Pipeline.query, chosen.Optimizer.Pipeline.dedup)

(* --- colstore materialization --- *)

let field ~context row name =
  match row with
  | Value.Obj { fields; _ } -> List.assoc name fields
  | _ -> Alcotest.fail (context ^ ": row is not an object")

let colstore_tests =
  [
    case "columns mirror the boxed rows field-for-field" (fun () ->
        List.iter
          (fun ((name : string), (rel : C.relation)) ->
            Alcotest.check Alcotest.string "relation name" name rel.C.name;
            List.iter
              (fun (attr, col) ->
                Alcotest.check Alcotest.int
                  (name ^ "." ^ attr ^ ": column length")
                  (Array.length rel.C.rows)
                  (C.Column.length col);
                Array.iteri
                  (fun i row ->
                    let boxed = field ~context:name row attr in
                    match col with
                    | C.Column.Ints a ->
                      Alcotest.check value "int cell" boxed (Value.Int a.(i))
                    | C.Column.Strs a ->
                      Alcotest.check value "str cell" boxed (Value.Str a.(i))
                    | C.Column.Bools a ->
                      Alcotest.check value "bool cell" boxed
                        (Value.Bool a.(i))
                    | C.Column.Boxed a ->
                      Alcotest.check value "boxed cell" boxed a.(i)
                    | C.Column.Refs { target; idx; _ } -> (
                      match C.relation company_coldb target with
                      | None -> Alcotest.fail "ref target missing"
                      | Some trel ->
                        if idx.(i) >= 0 then
                          (* dictionary decode = the embedded value,
                             resolved: same oid and class *)
                          match (boxed, trel.C.rows.(idx.(i))) with
                          | ( Value.Obj { cls = c1; oid = o1; _ },
                              Value.Obj { cls = c2; oid = o2; _ } ) ->
                            Alcotest.check Alcotest.string "ref class" c1 c2;
                            Alcotest.check Alcotest.int "ref oid" o1 o2
                          | _ -> Alcotest.fail "ref cell is not an object"))
                  rel.C.rows)
              rel.C.cols)
          (C.relations company_coldb));
    case "rows are in canonical set order" (fun () ->
        List.iter
          (fun ((name : string), (rel : C.relation)) ->
            Array.iteri
              (fun i row ->
                if i > 0 then
                  Alcotest.check Alcotest.bool
                    (name ^ ": strictly increasing")
                    true
                    (Value.compare rel.C.rows.(i - 1) row < 0))
              rel.C.rows)
          (C.relations company_coldb));
    case "company schema: salary unboxed, dept dictionary-encoded" (fun () ->
        match C.relation company_coldb "E" with
        | None -> Alcotest.fail "extent E not materialized"
        | Some e -> (
          (match C.column e "salary" with
          | Some (C.Column.Ints _) -> ()
          | Some c ->
            Alcotest.failf "salary is %s, expected ints" (C.Column.kind_name c)
          | None -> Alcotest.fail "salary column missing");
          match C.column e "dept" with
          | Some (C.Column.Refs { target; total; exact; idx }) ->
            Alcotest.check Alcotest.string "dept targets D" "D" target;
            Alcotest.check Alcotest.bool "dept refs total" true total;
            Alcotest.check Alcotest.bool "dept refs exact" true exact;
            Array.iter
              (fun i ->
                Alcotest.check Alcotest.bool "in range" true
                  (i >= 0
                  &&
                  match C.relation company_coldb "D" with
                  | Some d -> i < Array.length d.C.rows
                  | None -> false))
              idx
          | Some c ->
            Alcotest.failf "dept is %s, expected refs" (C.Column.kind_name c)
          | None -> Alcotest.fail "dept column missing"));
    case "out-of-extent refs encode as -1 and drop totality" (fun () ->
        (* an extent of objects whose ref field points at an object that
           is NOT in the target extent: the encoder must keep the column
           sound by marking the miss, not by inventing an index *)
        let dept i =
          Value.obj ~cls:"Dept" ~oid:i [ ("dn", Value.str (Fmt.str "d%d" i)) ]
        in
        let emp i d =
          Value.obj ~cls:"Emp" ~oid:i [ ("dept", d); ("s", Value.int (100 * i)) ]
        in
        let db =
          [
            ("D", Value.set [ dept 0 ]);
            ("E", Value.set [ emp 0 (dept 0); emp 1 (dept 7) ]);
          ]
        in
        let coldb = C.of_db db in
        match C.relation coldb "E" with
        | None -> Alcotest.fail "E not materialized"
        | Some e -> (
          match C.column e "dept" with
          | Some (C.Column.Refs { total; idx; _ }) ->
            Alcotest.check Alcotest.bool "not total" false total;
            Alcotest.check Alcotest.bool "exactly one miss" true
              (Array.to_list idx |> List.filter (fun i -> i = -1)
             |> List.length = 1)
          | Some c ->
            Alcotest.failf "dept is %s, expected refs" (C.Column.kind_name c)
          | None -> Alcotest.fail "dept column missing"));
    case "source returns the boxed database" (fun () ->
        Alcotest.check Alcotest.bool "physically the same db" true
          (C.source company_coldb == company_db));
    case "stats count relations and typed columns" (fun () ->
        let s = C.stats company_coldb in
        Alcotest.check Alcotest.int "relations" 2 s.C.relations;
        Alcotest.check Alcotest.bool "typed columns dominate" true
          (s.C.typed_cols >= 5);
        ignore (Fmt.str "%a" C.pp_stats s));
  ]

(* --- differential: columnar ≡ row ≡ interpreter --- *)

let columnar_differential ~db ~coldb name q dedup =
  let vi = Eval.eval_query ~db ~backend:Eval.Hashed ~dedup q in
  let vr, sr = Exec.run ~backend:Exec.Compiled ~dedup ~db q in
  let vc, sc =
    Exec.run ~backend:Exec.Compiled ~dedup ~layout:Exec.Columnar ~coldb ~db q
  in
  Alcotest.check Alcotest.bool (name ^ ": row no fallback") false
    sr.Exec.fell_back;
  Alcotest.check Alcotest.bool (name ^ ": columnar no fallback") false
    sc.Exec.fell_back;
  check_agree ~db (name ^ ": row ≡ interp") vr vi;
  check_agree ~db (name ^ ": columnar ≡ interp") vc vi;
  check_agree ~db (name ^ ": columnar ≡ row") vc vr

let differential_tests =
  [
    case "company workload: columnar ≡ row ≡ interp, chosen dedup" (fun () ->
        List.iter
          (fun (name, src) ->
            let q, dedup = plan_of ~db:company_db src in
            columnar_differential ~db:company_db ~coldb:company_coldb name q
              dedup)
          company_queries);
    case "company workload under both dedups" (fun () ->
        List.iter
          (fun (name, src) ->
            let q, _ = plan_of ~db:company_db src in
            List.iter
              (fun dedup ->
                (* aggregates only run under eager dedup (the optimizer
                   never offers deferred for them) *)
                if
                  not
                    (dedup = Eval.Deferred
                    && Optimizer.Pipeline.contains_agg q.Term.body)
                then
                  columnar_differential ~db:company_db ~coldb:company_coldb
                    name q dedup)
              [ Eval.Eager; Eval.Deferred ])
          company_queries);
    case "garage store: columnar view executes the paper queries" (fun () ->
        List.iter
          (fun (name, q) ->
            columnar_differential ~db:gen_db ~coldb:store_coldb name q
              Eval.Eager)
          [ ("KG1", Paper.kg1); ("KG2", Paper.kg2); ("K4", Paper.k4) ]);
    case "columnar plan rejects a different database" (fun () ->
        let q, dedup = plan_of ~db:company_db Datagen.Company.payroll_oql in
        let c = Exec.compile ~coldb:company_coldb q in
        let other = Datagen.Company.db (Datagen.Company.scaled ~seed:5 100) in
        (match Exec.execute ~dedup ~db:other c with
        | exception Eval.Error msg ->
          Alcotest.check Alcotest.bool "names the mismatch" true
            (contains msg "different database")
        | _ -> Alcotest.fail "expected Eval.Error on a foreign database");
        (* and the matching database still runs *)
        ignore (Exec.execute ~dedup ~db:company_db c));
    case "degrade reasons are reported, not silent" (fun () ->
        let q, dedup = plan_of ~db:company_db Datagen.Company.rich_mentors_oql in
        let _, st =
          Exec.run ~backend:Exec.Compiled ~dedup ~layout:Exec.Columnar
            ~coldb:company_coldb ~db:company_db q
        in
        Alcotest.check Alcotest.bool "rich_mentors partially degrades" true
          (st.Exec.col_degrades <> []);
        Alcotest.check Alcotest.bool "but still lowers a kernel" true
          (st.Exec.col_kernels > 0));
    case "layout names round-trip" (fun () ->
        List.iter
          (fun l ->
            match Exec.layout_of_string (Exec.layout_name l) with
            | Ok l' -> Alcotest.check Alcotest.bool "round-trip" true (l = l')
            | Error e -> Alcotest.fail e)
          [ Exec.Row; Exec.Columnar ];
        match Exec.layout_of_string "paxish" with
        | Error msg ->
          Alcotest.check Alcotest.bool "names the input" true
            (contains msg "paxish")
        | Ok _ -> Alcotest.fail "expected an error");
  ]

(* --- morsel determinism: bit-identical across jobs --- *)

let bitid_tests =
  [
    case "results are bit-identical at jobs 1, 2 and 4" (fun () ->
        List.iter
          (fun (name, src) ->
            let q, dedup = plan_of ~db:company_db src in
            let run jobs =
              fst
                (Exec.run ~backend:Exec.Compiled ~dedup ~layout:Exec.Columnar
                   ~jobs ~coldb:company_coldb ~db:company_db q)
            in
            let v1 = run 1 and v2 = run 2 and v4 = run 4 in
            Alcotest.check Alcotest.bool (name ^ ": jobs 1 = jobs 2") true
              (Value.compare v1 v2 = 0);
            Alcotest.check Alcotest.bool (name ^ ": jobs 1 = jobs 4") true
              (Value.compare v1 v4 = 0))
          company_queries);
    case "a shared pool gives the same bits as transient pools" (fun () ->
        Pool.with_pool ~jobs:3 (fun pool ->
            List.iter
              (fun (name, src) ->
                let q, dedup = plan_of ~db:company_db src in
                let v1 =
                  fst
                    (Exec.run ~backend:Exec.Compiled ~dedup
                       ~layout:Exec.Columnar ~coldb:company_coldb
                       ~db:company_db q)
                in
                let vp =
                  fst
                    (Exec.run ~backend:Exec.Compiled ~dedup
                       ~layout:Exec.Columnar ~pool ~coldb:company_coldb
                       ~db:company_db q)
                in
                Alcotest.check Alcotest.bool (name ^ ": pool = sequential")
                  true
                  (Value.compare v1 vp = 0))
              company_queries));
  ]

(* --- qcheck: random plans, columnar against row and the interpreter --- *)

let qcheck_props =
  let open QCheck in
  let tiny_coldb = Colstore.of_db tiny_db in
  let random_plan =
    Test.make
      ~name:"random well-typed plans: columnar ≡ row ≡ interp (jobs 1/2)"
      ~count:120
      (QCheck.make
         ~print:(fun i ->
           Aqua.Pretty.to_string (Datagen.Queries.query ~seed:i ~depth:3))
         QCheck.Gen.(int_bound 1_000_000))
      (fun i ->
        let e = Datagen.Queries.query ~seed:i ~depth:3 in
        let q = Translate.Compile.query e in
        List.for_all
          (fun dedup ->
            let interp =
              Eval.eval_query ~db:tiny_db ~backend:Eval.Hashed ~dedup q
            in
            let row, _ = Exec.run ~backend:Exec.Compiled ~dedup ~db:tiny_db q in
            let col1, _ =
              Exec.run ~backend:Exec.Compiled ~dedup ~layout:Exec.Columnar
                ~coldb:tiny_coldb ~db:tiny_db q
            in
            let col2, _ =
              Exec.run ~backend:Exec.Compiled ~dedup ~layout:Exec.Columnar
                ~jobs:2 ~coldb:tiny_coldb ~db:tiny_db q
            in
            Exec.agree ~db:tiny_db col1 interp
            && Exec.agree ~db:tiny_db col1 row
            && Value.compare col1 col2 = 0)
          [ Eval.Eager; Eval.Deferred ])
  in
  [ random_plan ]

let tests =
  colstore_tests @ differential_tests @ bitid_tests
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props

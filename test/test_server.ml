(* The serving layer (kolaoptd): JSON codec, wire protocol, and the
   daemon's shared-state request handling — including the acceptance
   gate that a daemon answer is bit-identical to `kolaopt search` for
   the same query, engine and knobs. *)

open Util
module Json = Kola_server.Json
module Protocol = Kola_server.Protocol
module Daemon = Kola_server.Daemon
module Search = Optimizer.Search
module Cost = Optimizer.Cost

(* One daemon for the whole suite (workers spawn real domains; the last
   test case joins them). *)
let daemon =
  lazy
    (Daemon.create
       ~params:{ Daemon.default_params with Daemon.workers = 1; queue = 4 }
       ())

let handle_json req = Daemon.handle_line (Lazy.force daemon) (Json.to_string req)
let handle_line line = Daemon.handle_line (Lazy.force daemon) line

let status j = Option.bind (Json.mem "status" j) Json.str
let str_field j name = Option.bind (Json.mem name j) Json.str
let num_field j name = Option.bind (Json.mem name j) Json.num

let check_ok name j =
  Alcotest.(check (option string)) (name ^ " status") (Some "ok") (status j)

let check_error name needle j =
  Alcotest.(check (option string)) (name ^ " status") (Some "error") (status j);
  match str_field j "error" with
  | Some msg when contains msg needle -> ()
  | Some msg -> Alcotest.failf "%s: error %S lacks %S" name msg needle
  | None -> Alcotest.failf "%s: no error field" name

(* ------------------------------------------------------------------ *)
(* JSON codec *)

let json_tests =
  [
    case "roundtrip through parse and to_string" (fun () ->
        let s = {|{"a":[1,2.5,"x\ny",true,null],"b":{},"c":-3}|} in
        Alcotest.(check string) "stable" s (Json.to_string (Json.parse s)));
    case "integral floats print as integers" (fun () ->
        Alcotest.(check string) "3" "3" (Json.to_string (Json.Num 3.));
        Alcotest.(check string)
          "nan is null" "null"
          (Json.to_string (Json.Num Float.nan)));
    case "unicode escapes decode to UTF-8" (fun () ->
        Alcotest.(check string) "bmp" "A" (Option.get (Json.str (Json.parse {|"A"|})));
        (* a surrogate pair is one astral scalar, 4 bytes of UTF-8 *)
        Alcotest.(check int) "astral"
          4
          (String.length (Option.get (Json.str (Json.parse {|"😀"|}))));
        (* a lone surrogate degrades to U+FFFD instead of raising *)
        Alcotest.(check int) "lone surrogate"
          3
          (String.length (Option.get (Json.str (Json.parse {|"\ud83d"|})))));
    case "malformed documents are parse errors, not exceptions" (fun () ->
        List.iter
          (fun s ->
            match Json.parse_result s with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "expected a parse error for %S" s)
          [ ""; "{"; "[1,"; "tru"; "1 2"; {|"\q"|}; "{\"a\" 1}"; "\"\x01\"" ]);
    case "accessors are type-checked" (fun () ->
        let j = Json.parse {|{"n": 1.5, "s": "x"}|} in
        Alcotest.(check (option int)) "non-integral int" None
          (Option.bind (Json.mem "n" j) Json.int);
        Alcotest.(check (option string)) "str" (Some "x")
          (Option.bind (Json.mem "s" j) Json.str);
        Alcotest.(check bool) "mem on non-object" true
          (Json.mem "s" (Json.Str "x") = None));
  ]

(* ------------------------------------------------------------------ *)
(* Protocol *)

let protocol_tests =
  [
    case "bare paper request gets the CLI defaults" (fun () ->
        match Protocol.of_line {|{"paper": "t1k"}|} with
        | Ok (Protocol.Optimize r) ->
          Alcotest.(check int) "depth" 6 r.Protocol.depth;
          Alcotest.(check int) "states" 2000 r.Protocol.states;
          Alcotest.(check int) "jobs" 1 r.Protocol.jobs;
          Alcotest.(check string) "engine" "bfs"
            (Protocol.engine_label r.Protocol.engine);
          Alcotest.(check bool) "no deadline" true (r.Protocol.deadline = None)
        | Ok _ -> Alcotest.fail "expected an optimize request"
        | Error e -> Alcotest.fail e);
    case "validation failures are result values" (fun () ->
        let expect_err needle line =
          match Protocol.of_line line with
          | Error msg when contains msg needle -> ()
          | Error msg -> Alcotest.failf "error %S lacks %S" msg needle
          | Ok _ -> Alcotest.failf "expected an error for %s" line
        in
        expect_err "accepted engines"
          {|{"paper": "t1k", "engine": "dfs"}|};
        expect_err "must be positive" {|{"paper": "t1k", "deadline": -1}|};
        expect_err "must be positive" {|{"paper": "t1k", "deadline": 0}|};
        expect_err "must be non-negative" {|{"paper": "t1k", "jobs": -2}|};
        expect_err "must be positive" {|{"paper": "t1k", "depth": 0}|};
        expect_err "must be an integer" {|{"paper": "t1k", "depth": "deep"}|};
        expect_err "unknown paper query" {|{"paper": "t9k"}|};
        expect_err "send one" {|{"paper": "t1k", "query": "count(P)"}|};
        expect_err "needs" {|{"depth": 3}|};
        expect_err "unknown command" {|{"cmd": "reboot"}|};
        expect_err "must be a JSON object" {|[1, 2]|};
        expect_err "parse error" "{nope");
    case "the validators shared with the CLI" (fun () ->
        Alcotest.(check (result int string)) "pos ok" (Ok 3)
          (Protocol.positive_int ~what:"--depth" 3);
        Alcotest.(check (result int string)) "pos err"
          (Error "--depth must be positive, got 0")
          (Protocol.positive_int ~what:"--depth" 0);
        Alcotest.(check (result int string)) "nonneg ok" (Ok 0)
          (Protocol.nonneg_int ~what:"--jobs" 0);
        Alcotest.(check bool) "float err" true
          (Result.is_error (Protocol.positive_float ~what:"--deadline" (-0.5))));
  ]

(* ------------------------------------------------------------------ *)
(* Daemon: error paths stay structured (and cost no worker its life) *)

let error_path_tests =
  [
    case "malformed JSON answers a structured error" (fun () ->
        check_error "garbage" "parse error" (handle_line "{this is not json"));
    case "OQL parse errors answer structured errors" (fun () ->
        check_error "truncated" "parse error"
          (handle_json (Json.Obj [ ("query", Json.Str "select from") ]));
        check_error "lexer" "parse error"
          (handle_json
             (Json.Obj [ ("query", Json.Str "select p.age from p in P where p.age > @") ])));
    case "the worker keeps answering after an error" (fun () ->
        check_error "bad" "parse error" (handle_line "{");
        check_ok "good afterwards"
          (handle_json (Json.Obj [ ("paper", Json.Str "t1k") ])));
    case "explain requires OQL" (fun () ->
        check_error "paper+explain" "OQL"
          (handle_json
             (Json.Obj
                [ ("paper", Json.Str "t1k"); ("explain", Json.Bool true) ])));
  ]

(* ------------------------------------------------------------------ *)
(* Daemon: outcomes bit-identical to a direct Search.explore *)

let papers =
  [
    ("t1k", Kola.Paper.t1k_source);
    ("t2k", Kola.Paper.t2k_source);
    ("k4", Kola.Paper.k4);
    ("kg1", Kola.Paper.kg1);
  ]

let direct_outcome t engine q =
  let config =
    {
      Search.default_config with
      Search.engine;
      sample_db = Daemon.db t;
      max_depth = 6;
      max_states = 2000;
    }
  in
  Search.explore ~config q

let check_matches_direct engine_name engine =
  List.map
    (fun (name, q) ->
      case (Fmt.str "%s under %s matches kolaopt search" name engine_name)
        (fun () ->
          let t = Lazy.force daemon in
          let o = direct_outcome t engine q in
          let resp =
            handle_json
              (Json.Obj
                 [ ("paper", Json.Str name); ("engine", Json.Str engine_name) ])
          in
          check_ok name resp;
          Alcotest.(check (option string))
            "plan"
            (Some (Fmt.str "%a" Kola.Pretty.pp_query o.Search.best.Search.query))
            (str_field resp "plan");
          Alcotest.(check (option string))
            "path"
            (Some (String.concat "," o.Search.best.Search.path))
            (Option.map
               (fun items ->
                 String.concat ","
                   (List.filter_map Json.str items))
               (Option.bind (Json.mem "path" resp) Json.arr));
          (match num_field resp "cost" with
          | Some c ->
            Alcotest.(check (float 1e-9)) "cost" o.Search.best.Search.cost c
          | None -> Alcotest.fail "no cost field");
          Alcotest.(check (option string))
            "stop"
            (Some (Search.stop_reason_label o.Search.stop))
            (str_field resp "stop")))
    papers

let identity_tests =
  check_matches_direct "bfs" Search.Bfs
  @ check_matches_direct "egraph" Search.Egraph

(* ------------------------------------------------------------------ *)
(* Daemon: shared caches, parallel requests, commands *)

let behaviour_tests =
  [
    case "repeat requests hit the outcome cache with the same answer" (fun () ->
        let req =
          Json.Obj [ ("paper", Json.Str "k4"); ("engine", Json.Str "bfs") ]
        in
        let a = handle_json req in
        let b = handle_json req in
        check_ok "first" a;
        check_ok "second" b;
        Alcotest.(check (option string)) "hit" (Some "hit")
          (str_field b "outcome_cache");
        Alcotest.(check (option string)) "same plan" (str_field a "plan")
          (str_field b "plan");
        Alcotest.(check (option (float 0.))) "same cost" (num_field a "cost")
          (num_field b "cost"));
    case "deadline-truncated outcomes are never cached" (fun () ->
        ignore (handle_json (Json.Obj [ ("cmd", Json.Str "flush") ]));
        let truncated =
          handle_json
            (Json.Obj [ ("paper", Json.Str "t2k"); ("deadline", Json.Num 1e-9) ])
        in
        check_ok "truncated" truncated;
        Alcotest.(check (option string)) "stopped by deadline"
          (Some "deadline") (str_field truncated "stop");
        let full = handle_json (Json.Obj [ ("paper", Json.Str "t2k") ]) in
        check_ok "full" full;
        Alcotest.(check (option string))
          "not answered from the truncated entry" (Some "miss")
          (str_field full "outcome_cache");
        Alcotest.(check bool) "full answer ran to completion" true
          (str_field full "stop" <> Some "deadline"));
    case "jobs > 1 answers identically through the pool lease" (fun () ->
        let serial = handle_json (Json.Obj [ ("paper", Json.Str "t1k") ]) in
        ignore (handle_json (Json.Obj [ ("cmd", Json.Str "flush") ]));
        let parallel =
          handle_json
            (Json.Obj [ ("paper", Json.Str "t1k"); ("jobs", Json.Num 2.) ])
        in
        check_ok "parallel" parallel;
        Alcotest.(check (option string)) "plan" (str_field serial "plan")
          (str_field parallel "plan");
        Alcotest.(check (option (float 0.))) "cost" (num_field serial "cost")
          (num_field parallel "cost"));
    case "explain runs the pipeline over the shared plan cache" (fun () ->
        let req =
          Json.Obj
            [
              ("query", Json.Str "select p.age from p in P where p.age > 25");
              ("explain", Json.Bool true);
            ]
        in
        let r = handle_json req in
        check_ok "explain" r;
        Alcotest.(check (option string)) "mode" (Some "explain")
          (str_field r "mode");
        Alcotest.(check bool) "has backend" true (str_field r "backend" <> None);
        let again = handle_json req in
        Alcotest.(check (option string)) "memoized" (Some "hit")
          (str_field again "outcome_cache"));
    case "explain + execute runs the chosen plan on the compiled backend"
      (fun () ->
        let req execute =
          Json.Obj
            [
              ("query", Json.Str "select p.addr.city from p in P where p.age > 25");
              ("explain", Json.Bool true);
              ("execute", Json.Str execute);
            ]
        in
        let r = handle_json (req "compiled") in
        check_ok "compiled" r;
        Alcotest.(check (option string)) "ran compiled" (Some "compiled")
          (str_field r "execute");
        (match Option.bind (Json.mem "fell_back" r) Json.bool with
        | Some false -> ()
        | other ->
          Alcotest.failf "fell_back = %s"
            (match other with
            | Some b -> string_of_bool b
            | None -> "missing"));
        Alcotest.(check bool) "counted tuples" true
          (match num_field r "exec_tuples" with
          | Some n -> n > 0.
          | None -> false);
        (* interp and compiled are distinct outcome-cache entries *)
        let r2 = handle_json (req "interp") in
        check_ok "interp" r2;
        Alcotest.(check (option string)) "distinct entry" (Some "miss")
          (str_field r2 "outcome_cache");
        Alcotest.(check (option string)) "ran interp" (Some "interp")
          (str_field r2 "execute");
        let r3 = handle_json (req "compiled") in
        Alcotest.(check (option string)) "compiled memoized" (Some "hit")
          (str_field r3 "outcome_cache"));
    case "execute validates its backend and requires explain" (fun () ->
        check_error "unknown backend" "unknown execution backend"
          (handle_json
             (Json.Obj
                [
                  ("query", Json.Str "count(P)");
                  ("explain", Json.Bool true);
                  ("execute", Json.Str "gpu");
                ]));
        check_error "execute without explain" "requires"
          (handle_json
             (Json.Obj
                [ ("query", Json.Str "count(P)"); ("execute", Json.Str "compiled") ])));
    case "telemetry on demand embeds this request's spans" (fun () ->
        let r =
          handle_json
            (Json.Obj
               [ ("paper", Json.Str "t1k"); ("telemetry", Json.Bool true) ])
        in
        check_ok "traced" r;
        match Json.mem "telemetry" r with
        | Some tr ->
          Alcotest.(check bool) "has spans" true (Json.mem "spans" tr <> None)
        | None -> Alcotest.fail "no telemetry field");
    case "concurrent requests agree with serial answers" (fun () ->
        let t = Lazy.force daemon in
        let reqs =
          [|
            Json.Obj [ ("paper", Json.Str "t1k") ];
            Json.Obj [ ("paper", Json.Str "t2k") ];
            Json.Obj [ ("paper", Json.Str "k4"); ("engine", Json.Str "egraph") ];
            Json.Obj [ ("paper", Json.Str "kg1") ];
          |]
        in
        let serial = Array.map (fun r -> Daemon.handle_line t (Json.to_string r)) reqs in
        ignore (Daemon.handle_line t {|{"cmd": "flush"}|});
        let domains =
          Array.map
            (fun r ->
              Domain.spawn (fun () ->
                  (* each domain replays its request a few times *)
                  Array.init 3 (fun _ ->
                      Daemon.handle_line t (Json.to_string r))))
            reqs
        in
        let results = Array.map Domain.join domains in
        Array.iteri
          (fun i replies ->
            Array.iter
              (fun r ->
                check_ok "concurrent" r;
                Alcotest.(check (option string))
                  "plan matches serial"
                  (str_field serial.(i) "plan")
                  (str_field r "plan"))
              replies)
          results);
    case "stats and ping answer" (fun () ->
        let p = handle_json (Json.Obj [ ("cmd", Json.Str "ping") ]) in
        check_ok "ping" p;
        let s = handle_json (Json.Obj [ ("cmd", Json.Str "stats") ]) in
        check_ok "stats" s;
        (match Json.mem "service" s with
        | Some svc ->
          Alcotest.(check bool) "workers reported" true
            (Option.bind (Json.mem "workers" svc) Json.int = Some 1)
        | None -> Alcotest.fail "no service stats");
        match Json.mem "hc_cost_cache" s with
        | Some c ->
          let field n = Option.get (Option.bind (Json.mem n c) Json.int) in
          Alcotest.(check bool) "entries within capacity" true
            (field "entries" <= field "capacity")
          (* counters are atomic: never negative, even after the
             concurrent test above *)
          ;
          Alcotest.(check bool) "counts non-negative" true
            (field "hits" >= 0 && field "misses" >= 0 && field "evictions" >= 0)
        | None -> Alcotest.fail "no cache stats");
  ]

(* ------------------------------------------------------------------ *)
(* Admission control (Pool.Service) and atomic cache counters *)

module Service = Kola_parallel.Pool.Service

let infra_tests =
  [
    case "admission queue rejects beyond the bound" (fun () ->
        let svc = Service.create ~workers:1 ~queue:1 () in
        let gate = Mutex.create () in
        let cond = Condition.create () in
        let started = ref false in
        let release = ref false in
        (match
           Service.submit svc (fun () ->
               Mutex.protect gate (fun () ->
                   started := true;
                   Condition.signal cond;
                   while not !release do
                     Condition.wait cond gate
                   done))
         with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "first submit rejected");
        Mutex.protect gate (fun () ->
            while not !started do
              Condition.wait cond gate
            done);
        (* worker is pinned and the queue is empty: one more fits ... *)
        (match Service.submit svc (fun () -> ()) with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "queued submit rejected");
        (* ... the next is turned away with the current depth *)
        (match Service.submit svc (fun () -> ()) with
        | Ok _ -> Alcotest.fail "over-bound submit accepted"
        | Error depth -> Alcotest.(check int) "depth" 1 depth);
        Mutex.protect gate (fun () ->
            release := true;
            Condition.signal cond);
        Service.drain svc;
        let s = Service.stats svc in
        Alcotest.(check int) "submitted" 2 s.Service.submitted;
        Alcotest.(check int) "rejected" 1 s.Service.rejected;
        Alcotest.(check int) "queued after drain" 0 s.Service.queued;
        Service.shutdown svc);
    case "cost-cache counters stay consistent under domains" (fun () ->
        let cache = Cost.cache () in
        let queries =
          Array.init 16 (fun i ->
              Translate.Compile.query
                (Oql.Parser.parse
                   (Fmt.str "select p.age from p in P where p.age > %d" i)))
        in
        let lookups_per_domain = 64 in
        let domains =
          List.init 4 (fun d ->
              Domain.spawn (fun () ->
                  for i = 0 to lookups_per_domain - 1 do
                    ignore
                      (Cost.weighted_memo cache ~db:tiny_db
                         queries.((i + d) mod Array.length queries))
                  done))
        in
        List.iter Domain.join domains;
        let s = Cost.cache_stats cache in
        (* every lookup counts exactly once, atomically *)
        Alcotest.(check int) "hits + misses = lookups"
          (4 * lookups_per_domain)
          (s.Cost.hits + s.Cost.misses);
        Alcotest.(check bool) "entries bounded" true
          (s.Cost.entries <= s.Cost.capacity);
        Alcotest.(check int) "no evictions below capacity" 0 s.Cost.evictions);
    case "shutdown the suite daemon" (fun () ->
        Daemon.shutdown (Lazy.force daemon));
  ]

let tests =
  json_tests @ protocol_tests @ error_path_tests @ identity_tests
  @ behaviour_tests @ infra_tests

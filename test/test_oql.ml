(* The OQL frontend: parsing, desugaring, and agreement with hand-written
   AQUA. *)

open Kola
open Util

let parse = Oql.Parser.parse
let eval_oql src = Aqua.Eval.eval_closed ~db:tiny_db (parse src)

let tests =
  [
    case "simple projection" (fun () ->
        Alcotest.check aqua "ages"
          Aqua.Ast.(App (lam "p" (Path (Var "p", "age")), Extent "P"))
          (parse "select p.age from p in P"));
    case "selection folds into the from clause" (fun () ->
        Alcotest.check aqua "t2 source shape"
          Aqua.Ast.(
            App
              ( lam "x" (Path (Var "x", "age")),
                Sel (lam "x" (Bin (Gt, Path (Var "x", "age"), Const (int 25))), Extent "P") ))
          (parse "select x.age from x in P where x.age > 25"));
    case "the garage query parses to its AQUA form" (fun () ->
        let src =
          "select [v, flatten(select p.grgs from p in P where v in p.cars)] from v in V"
        in
        Alcotest.check value "sem agrees with Examples.garage"
          (Aqua.Eval.eval_closed ~db:tiny_db Aqua.Examples.garage)
          (eval_oql src));
    case "multiple bindings desugar to flatten/app" (fun () ->
        let src = "select [a, b] from a in P, b in P where a.age > b.age" in
        let e = parse src in
        (match e with
        | Aqua.Ast.Flatten (Aqua.Ast.App _) -> ()
        | _ -> Alcotest.fail "expected flatten(app ...)");
        (* equal to the equivalent join *)
        let j =
          Aqua.Ast.(
            Join
              ( lam2 "a" "b" (Bin (Gt, Path (Var "a", "age"), Path (Var "b", "age"))),
                lam2 "a" "b" (Pair (Var "a", Var "b")),
                Extent "P", Extent "P" ))
        in
        Alcotest.check value "join equivalent"
          (Aqua.Eval.eval_closed ~db:tiny_db j)
          (eval_oql src));
    case "three bindings" (fun () ->
        let src = "select a.age + b.age + c.age from a in P, b in P, c in P" in
        match eval_oql src with
        | Value.Set _ -> ()
        | v -> Alcotest.failf "unexpected %a" Value.pp v);
    case "operators and precedence" (fun () ->
        Alcotest.check aqua "1 + 2 * 3"
          Aqua.Ast.(
            Bin (Add, Const (int 1), Bin (Mul, Const (int 2), Const (int 3))))
          (parse "1 + 2 * 3");
        Alcotest.check aqua "and binds tighter than or"
          Aqua.Ast.(
            Bin
              ( Or,
                Bin (And, Const (Value.Bool true), Const (Value.Bool false)),
                Const (Value.Bool true) ))
          (parse "true and false or true"));
    case "aggregates, exists, string and negative literals" (fun () ->
        Alcotest.check value "count" (int 4) (eval_oql "count(P)");
        Alcotest.check value "exists" (Value.Bool true)
          (eval_oql "exists(select p from p in P where p.age > 35)");
        Alcotest.check value "string eq" (Value.Bool true)
          (eval_oql "\"a\" = \"a\"");
        Alcotest.check value "negative" (int (-3)) (eval_oql "-3"));
    case "if/then/else and comparison sugar" (fun () ->
        Alcotest.check value "if" (int 1) (eval_oql "if 2 >= 2 then 1 else 0");
        Alcotest.check value "ne" (Value.Bool true) (eval_oql "1 != 2"));
    case "nested query in the select head" (fun () ->
        let src = "select [p, (select c from c in p.child where c.age > 25)] from p in P" in
        Alcotest.check value "a3 equivalent"
          (Aqua.Eval.eval_closed ~db:tiny_db Aqua.Examples.a3)
          (eval_oql src));
    case "extent binding only applies to free names" (fun () ->
        (* P as a binder shadows the extent *)
        let e = parse "select P.age from P in P" in
        Alcotest.check value "shadow ok"
          (eval_oql "select p.age from p in P")
          (Aqua.Eval.eval_closed ~db:tiny_db e));
    case "set literals" (fun () ->
        Alcotest.check value "{1,2}" (set [ int 1; int 2 ]) (eval_oql "{1, 2}");
        Alcotest.check value "{}" (set []) (eval_oql "{}"));
    case "union/inter/except" (fun () ->
        Alcotest.check value "union" (set [ int 1; int 2; int 3 ])
          (eval_oql "{1, 2} union {2, 3}");
        Alcotest.check value "inter" (set [ int 2 ]) (eval_oql "{1, 2} inter {2, 3}");
        Alcotest.check value "except" (set [ int 1 ]) (eval_oql "{1, 2} except {2, 3}"));
    case "parse errors are reported" (fun () ->
        List.iter
          (fun src ->
            match parse src with
            | exception Oql.Parser.Error _ -> ()
            | exception Oql.Lexer.Error _ -> ()
            | _ -> Alcotest.failf "accepted %S" src)
          [ "select"; "select x from"; "1 +"; "[1, 2"; "select x from x in" ]);
    case "lexer: strings, comparison digraphs, keywords" (fun () ->
        let toks = Oql.Lexer.tokenize "where x <= \"hi\" <> 2" in
        Alcotest.check Alcotest.int "token count" 7 (List.length toks));
    case "whole pipeline: OQL to optimized KOLA result" (fun () ->
        let src =
          "select [v, flatten(select p.grgs from p in P where v in p.cars)] from v in V"
        in
        let r = Optimizer.Pipeline.optimize_oql ~db:tiny_db src in
        Alcotest.check value "pipeline result"
          (resolved tiny_db (eval_oql src))
          (resolved tiny_db (Optimizer.Pipeline.run ~db:tiny_db r)));
  ]

(* GROUP BY (OQL-93 partition semantics). *)
let group_by_tests =
  [
    case "group by: counts per city" (fun () ->
        let src =
          "select [key, count(partition)] from p in P group by p.addr.city"
        in
        (* tiny store: alice+carol in Providence, bob+dave in Boston *)
        Alcotest.check value "counts"
          (set
             [
               pair (Value.str "Providence") (int 2);
               pair (Value.str "Boston") (int 2);
             ])
          (eval_oql src));
    case "group by respects the where clause" (fun () ->
        let src =
          "select [key, count(partition)] from p in P where p.age > 15 group by p.addr.city"
        in
        Alcotest.check value "filtered counts"
          (set
             [
               pair (Value.str "Providence") (int 1);
               pair (Value.str "Boston") (int 2);
             ])
          (eval_oql src));
    case "group by desugars to a hidden join that untangles" (fun () ->
        let src = "select [key, partition] from p in P group by p.addr.city" in
        let r = Optimizer.Pipeline.optimize_oql ~db:tiny_db src in
        Alcotest.check Alcotest.bool "untangled" true
          (Option.is_some r.Optimizer.Pipeline.untangled);
        Alcotest.check value "correct"
          (resolved tiny_db (eval_oql src))
          (resolved tiny_db (Optimizer.Pipeline.run ~db:tiny_db r)));
    case "group by translates and agrees with KOLA" (fun () ->
        check_translation "group by"
          (parse "select [key, count(partition)] from p in P group by p.addr.city"));
    case "group by with multiple bindings is rejected" (fun () ->
        match parse "select key from a in P, b in P group by a.age" with
        | exception Oql.Parser.Error _ -> ()
        | _ -> Alcotest.fail "expected an error");
  ]

(* Error paths: malformed input must raise exactly Parser.Error or
   Lexer.Error with a usable message — these are the exceptions the
   serving daemon maps to structured error responses, so anything else
   escaping here would kill a worker's request (the wire-level half of
   this contract is covered in test_server.ml). *)
let error_path_tests =
  let expect_error ?(needle = "") src =
    match parse src with
    | exception Oql.Parser.Error msg | exception Oql.Lexer.Error msg ->
      if msg = "" then Alcotest.failf "empty error message for %S" src;
      if needle <> "" && not (Util.contains msg needle) then
        Alcotest.failf "error %S for %S lacks %S" msg src needle
    | exception e ->
      Alcotest.failf "unexpected exception %s for %S" (Printexc.to_string e) src
    | _ -> Alcotest.failf "accepted %S" src
  in
  [
    case "lexer rejects stray characters" (fun () ->
        expect_error "select p.age from p in P where p.age > @";
        expect_error "select # from p in P";
        expect_error "p.age ~ 3");
    case "lexer rejects unterminated strings" (fun () ->
        expect_error "select p from p in P where p.name = \"alice");
    case "parser errors name the offending token" (fun () ->
        expect_error ~needle:"where" "select p from p in P where where";
        expect_error ~needle:"by" "select p from p in P group");
    case "truncated clauses fail at every prefix" (fun () ->
        List.iter
          (fun src -> expect_error src)
          [
            "select";
            "select p.age from";
            "select p.age from p";
            "select p.age from p in";
            "select p.age from p in P where";
            "select p.age from p in P group by";
            "if 1 > 0 then 1";
            "exists(";
            "{1, 2";
          ]);
    case "empty and whitespace-only input is an error" (fun () ->
        expect_error "";
        expect_error "   \n\t ");
    case "deep but well-formed nesting still parses" (fun () ->
        (* the converse guard: error handling must not reject valid input *)
        let src =
          "select (select (select c.age from c in p.child) from p in P) from q in P"
        in
        ignore (parse src));
  ]

let tests = tests @ group_by_tests @ error_path_tests

(* The equality-saturation backend: union-find and congruence-rebuild
   invariants, budgeted saturation with reported stop reasons, cost
   extraction measured against BFS exploration, and saturation-based
   reaches whose replayed derivations the BFS checker validates step by
   step.  Also pins the masked-truncation frontier contract: only the
   truncation of *viable* positions clears [frontier_exhausted]; subtrees
   the head-symbol mask already pruned never do. *)

open Kola
open Util
module Search = Optimizer.Search
module Uf = Kola_egraph.Uf
module Lang = Kola_egraph.Lang
module Graph = Kola_egraph.Graph
module Saturate = Kola_egraph.Saturate

let ecfg ?(rules = Rules.Catalog.all) ?budgets () =
  {
    Search.default_config with
    engine = Search.Egraph;
    rules;
    egraph_budgets = Option.value budgets ~default:Saturate.default_budgets;
  }

let stop_label (sp : Saturate.space) =
  Saturate.stop_reason_label sp.Saturate.stats.Saturate.stop

let saturate ?budgets ?target ~rules q =
  Saturate.saturate ?budgets
    ?target:(Option.map Term.Hc.of_query target)
    ~rules (Term.Hc.of_query q)

(* Chain of three fusable iterates with a mask-dead subtree glued on:
   r11 (iterate∘iterate fusion) has three viable positions, and the
   ⟨Kf 1, Kf 2⟩ leg has no Iterate head, so the index mask prunes it. *)
let masked_chain =
  Term.query
    (Term.chain
       [
         Term.Iterate (Term.Kp true, Term.Prim "city");
         Term.Iterate (Term.Kp true, Term.Prim "addr");
         Term.Iterate (Term.Kp true, Term.Id);
         Term.Pairf (Term.Kf (Value.Int 1), Term.Kf (Value.Int 2));
       ])
    (Value.Named "P")

let tests =
  [
    (* ---------------- union-find ---------------- *)
    case "union-find: fresh singletons, union, transitivity" (fun () ->
        let u = Uf.create () in
        let a = Uf.make u and b = Uf.make u in
        let c = Uf.make u and d = Uf.make u in
        Alcotest.(check int) "allocated" 4 (Uf.length u);
        List.iter
          (fun x -> Alcotest.(check int) "fresh element is its own root" x (Uf.find u x))
          [ a; b; c; d ];
        Alcotest.(check bool) "fresh classes distinct" false (Uf.same u a b);
        let r1 = Uf.union u a b in
        Alcotest.(check bool) "united" true (Uf.same u a b);
        Alcotest.(check int) "find a = surviving root" r1 (Uf.find u a);
        Alcotest.(check int) "find b = surviving root" r1 (Uf.find u b);
        ignore (Uf.union u c d);
        let r3 = Uf.union u a d in
        Alcotest.(check bool) "transitive" true (Uf.same u b c);
        Alcotest.(check int) "one root for all four" r3 (Uf.find u b);
        Alcotest.(check int) "re-union of same class is the identity" r3
          (Uf.union u b d);
        Alcotest.(check int) "length unchanged by unions" 4 (Uf.length u));
    case "union-find: growth across many elements stays consistent" (fun () ->
        let u = Uf.create ~capacity:2 () in
        let xs = List.init 200 (fun _ -> Uf.make u) in
        (* chain-union everything pairwise *)
        List.iteri
          (fun i x -> if i > 0 then ignore (Uf.union u (List.hd xs) x))
          xs;
        let root = Uf.find u (List.hd xs) in
        Alcotest.(check bool) "all in one class" true
          (List.for_all (fun x -> Uf.find u x = root) xs));
    (* ---------------- congruence rebuild ---------------- *)
    case "rebuild restores congruence one level up" (fun () ->
        let g = Graph.create () in
        let f x = Lang.Wf (Term.Hc.compose Term.Hc.id x) in
        let city = Term.Hc.prim "city" and addr = Term.Hc.prim "addr" in
        let ca = Graph.add_term g (Lang.Wf city) in
        let cb = Graph.add_term g (Lang.Wf addr) in
        let fa = Graph.add_term g (f city) in
        let fb = Graph.add_term g (f addr) in
        Graph.rebuild g;
        Alcotest.(check bool) "parents distinct before the union" false
          (Graph.find g fa = Graph.find g fb);
        ignore
          (Graph.union g ~ja:(Lang.Wf city) ~jb:(Lang.Wf addr)
             ~just:(Graph.Jrule "axiom") ca cb);
        Graph.rebuild g;
        Alcotest.(check bool) "children united" true
          (Graph.find g ca = Graph.find g cb);
        Alcotest.(check bool) "id∘city ≡ id∘addr by congruence" true
          (Graph.find g fa = Graph.find g fb));
    case "rebuild propagates congruence through nested parents" (fun () ->
        let g = Graph.create () in
        let f x = Term.Hc.compose Term.Hc.id x in
        let city = Term.Hc.prim "city" and addr = Term.Hc.prim "addr" in
        let ca = Graph.add_term g (Lang.Wf city) in
        let cb = Graph.add_term g (Lang.Wf addr) in
        let ffa = Graph.add_term g (Lang.Wf (f (f city))) in
        let ffb = Graph.add_term g (Lang.Wf (f (f addr))) in
        Graph.rebuild g;
        ignore
          (Graph.union g ~ja:(Lang.Wf city) ~jb:(Lang.Wf addr)
             ~just:(Graph.Jrule "axiom") ca cb);
        Graph.rebuild g;
        Alcotest.(check bool) "two congruence levels collapse in one rebuild"
          true
          (Graph.find g ffa = Graph.find g ffb);
        (* the explanation lifts the axiom through both operators and
           lands exactly on the target spelling *)
        let steps = Graph.explain g (Lang.Wf (f (f city))) (Lang.Wf (f (f addr))) in
        Alcotest.(check bool) "explanation is non-empty" true (steps <> []);
        let _, _, last = List.nth steps (List.length steps - 1) in
        Alcotest.(check bool) "explanation ends on the target term" true
          (Lang.wkey last = Lang.wkey (Lang.Wf (f (f addr)))));
    case "hash-consing: re-adding a term allocates nothing" (fun () ->
        let g = Graph.create () in
        let w = Lang.Wq (Term.Hc.of_func Paper.t1k_source.Term.body,
                         Term.Hc.of_value Paper.t1k_source.Term.arg) in
        let c1 = Graph.add_term g w in
        let n = Graph.n_nodes g in
        let c2 = Graph.add_term g w in
        Alcotest.(check int) "same class" (Graph.find g c1) (Graph.find g c2);
        Alcotest.(check int) "no new e-nodes" n (Graph.n_nodes g));
    (* ---------------- saturation budgets & stop reasons ---------------- *)
    case "saturation reports its stop reason, never silently" (fun () ->
        let trivial = Term.query Term.Id (Value.Named "P") in
        Alcotest.(check string) "no rule fires: saturated" "saturated"
          (stop_label (saturate ~rules:Rules.Catalog.all trivial));
        Alcotest.(check string) "zero iterations allowed" "iteration-budget"
          (stop_label
             (saturate
                ~budgets:
                  {
                    Saturate.max_enodes = 1_000_000;
                    max_iterations = 0;
                    max_millis = 1e9;
                  }
                ~rules:Rules.Catalog.all Paper.t1k_source));
        Alcotest.(check string) "tiny node budget" "node-budget"
          (stop_label
             (saturate
                ~budgets:
                  {
                    Saturate.max_enodes = 5;
                    max_iterations = 50;
                    max_millis = 1e9;
                  }
                ~rules:Rules.Catalog.all Paper.t1k_source));
        Alcotest.(check string) "equivalence query answered early"
          "target-found"
          (stop_label
             (saturate ~target:Paper.t1k_target ~rules:Rules.Catalog.all
                Paper.t1k_source)));
    (* ---------------- reaches: Figures 4 and 6 ---------------- *)
    case "egraph reaches T1K (Figure 4); replay validates step by step"
      (fun () ->
        match
          Search.reaches_steps ~config:(ecfg ()) Paper.t1k_source
            Paper.t1k_target
        with
        | None -> Alcotest.fail "T1K not reached by saturation"
        | Some steps ->
          Alcotest.(check bool) "derivation starts with rule 11" true
            (fst (List.hd steps) = "r11");
          Alcotest.check query "lands on the target"
            Paper.t1k_target
            (snd (List.nth steps (List.length steps - 1)));
          Alcotest.(check bool) "every step fires under the BFS checker" true
            (Search.validate_path Paper.t1k_source steps));
    case "egraph reaches T2K from the forward catalog alone" (fun () ->
        (* BFS needs rule 12 explicitly flipped; e-class equivalence is
           symmetric, so saturation finds the derivation from the
           forward-oriented catalog and replay emits the "-1" names. *)
        match
          Search.reaches_steps ~config:(ecfg ()) Paper.t2k_source
            Paper.t2k_target
        with
        | None -> Alcotest.fail "T2K not reached by saturation"
        | Some steps ->
          Alcotest.(check bool) "replay uses a flipped rule" true
            (List.exists
               (fun (r, _) -> Filename.check_suffix r "-1")
               steps);
          Alcotest.(check bool) "validated" true
            (Search.validate_path Paper.t2k_source steps));
    case "egraph reaches the K4 code motion (Figure 6), validated" (fun () ->
        match
          Search.reaches_steps ~config:(ecfg ()) Paper.k4 Paper.k4_optimized
        with
        | None -> Alcotest.fail "K4 not reached by saturation"
        | Some steps ->
          Alcotest.(check bool) "validated" true
            (Search.validate_path Paper.k4 steps));
    case "reaches (string form) agrees with reaches_steps" (fun () ->
        let config = ecfg () in
        match
          ( Search.reaches ~config Paper.t1k_source Paper.t1k_target,
            Search.reaches_steps ~config Paper.t1k_source Paper.t1k_target )
        with
        | Some names, Some steps ->
          Alcotest.(check (list string)) "same rule sequence" names
            (List.map fst steps)
        | _ -> Alcotest.fail "T1K not reached");
    (* ---------------- explore: extraction vs BFS ---------------- *)
    case "egraph extraction is never costlier than BFS at default depth"
      (fun () ->
        List.iter
          (fun (name, q) ->
            let bfs = Search.explore q in
            let eg = Search.explore ~config:(ecfg ()) q in
            Alcotest.(check bool)
              (Fmt.str "%s: egraph %.2f <= bfs %.2f" name
                 eg.Search.best.Search.cost bfs.Search.best.Search.cost)
              true
              (eg.Search.best.Search.cost
              <= bfs.Search.best.Search.cost +. 1e-9);
            Alcotest.(check bool) (name ^ ": BFS reports no saturation stats")
              true
              (bfs.Search.saturation = None);
            match eg.Search.saturation with
            | None -> Alcotest.fail (name ^ ": saturation stats missing")
            | Some s ->
              Alcotest.(check bool) (name ^ ": iterated") true
                (s.Saturate.iterations >= 1);
              Alcotest.(check bool) (name ^ ": e-classes <= e-nodes") true
                (s.Saturate.e_classes <= s.Saturate.e_nodes))
          [ ("T1K", Paper.t1k_source); ("K4", Paper.k4) ]);
    case "egraph explore recovers the fused T1K form with its derivation"
      (fun () ->
        let o = Search.explore ~config:(ecfg ()) Paper.t1k_source in
        Alcotest.check query "best is the fused form" Paper.t1k_target
          o.Search.best.Search.query;
        Alcotest.(check bool) "derivation replayed from the proof forest" true
          (o.Search.best.Search.path <> []));
    (* ---------------- parallel determinism & scheduling ---------------- *)
    case "saturation outcomes are bit-identical at jobs 1, 2 and 4" (fun () ->
        (* Time never stops these runs (max_millis = 1e9), so every stat,
           the stop reason and the extracted front must agree exactly
           with the sequential baseline at any pool size. *)
        let budgets =
          { Saturate.max_enodes = 60_000; max_iterations = 5; max_millis = 1e9 }
        in
        let fingerprint sp =
          let s = sp.Saturate.stats in
          Fmt.str "it=%d nodes=%d classes=%d unions=%d skipped=%d deferred=%d stop=%s front=%s"
            s.Saturate.iterations s.Saturate.e_nodes s.Saturate.e_classes
            s.Saturate.unions s.Saturate.matches_skipped
            s.Saturate.rules_deferred (stop_label sp)
            (String.concat " ; "
               (List.filter_map
                  (fun w ->
                    Option.map Kola.Pretty.query_to_string
                      (Saturate.query_of_wterm w))
                  (Saturate.best_terms ~k:3 sp)))
        in
        let run pool =
          Saturate.saturate ?pool ~budgets ~rules:Rules.Catalog.all
            (Term.Hc.of_query Paper.k4)
        in
        let base = run None in
        Alcotest.(check bool) "incremental matching skipped stale pairs" true
          (base.Saturate.stats.Saturate.matches_skipped > 0);
        let expected = fingerprint base in
        List.iter
          (fun jobs ->
            Kola_parallel.Pool.with_pool ~jobs (fun pool ->
                Alcotest.(check string)
                  (Fmt.str "jobs=%d matches the sequential run" jobs)
                  expected
                  (fingerprint (run (Some pool)))))
          [ 2; 4 ]);
    case "extraction regression pins: K4 and KG1 never lose to BFS" (fun () ->
        (* K4's hoisted join is strictly cheaper than anything BFS finds
           at default depth; KG1's best spelling is weight-blind (the
           hoist is heavier under op_weight) and only survives through
           the witness-deviation front, so this pins both. *)
        let eg q = (Search.explore ~config:(ecfg ()) q).Search.best.Search.cost in
        let bfs q = Search.(explore q).best.Search.cost in
        let k4 = eg Paper.k4 in
        Alcotest.(check bool)
          (Fmt.str "K4 egraph cost %.2f <= 8.1" k4)
          true
          (k4 <= 8.1 +. 1e-6);
        let kg1_bfs = bfs Paper.kg1 and kg1_eg = eg Paper.kg1 in
        Alcotest.(check bool)
          (Fmt.str "KG1 egraph %.2f <= bfs %.2f" kg1_eg kg1_bfs)
          true
          (kg1_eg <= kg1_bfs +. 1e-9));
    case "extraction front spellings all land in the source's class" (fun () ->
        (* Every candidate the optimizer re-measures — weight bests,
           weight-optimum deviations, witness deviations around the
           source — must be provably equivalent to the source: re-adding
           its spelling to the graph finds the source's e-class. *)
        let budgets =
          { Saturate.max_enodes = 20_000; max_iterations = 4; max_millis = 1e9 }
        in
        let sp = saturate ~budgets ~rules:Rules.Catalog.all Paper.kg1 in
        let g = sp.Saturate.graph in
        let front = Saturate.extraction_front ~k:2 sp in
        Alcotest.(check bool) "front holds more than the source" true
          (List.length front > 1);
        List.iter
          (fun w ->
            let c = Graph.add_term g w in
            Graph.rebuild g;
            Alcotest.(check int) "same class as the source"
              (Graph.find g sp.Saturate.root)
              (Graph.find g c))
          front);
    (* ---------------- masked truncation regression ---------------- *)
    case "masked truncation: only viable positions clear the frontier flag"
      (fun () ->
        let r11 = Rules.Catalog.rules [ "r11" ] in
        let viable = List.length (Search.successors r11 masked_chain) in
        Alcotest.(check int) "three viable r11 positions" 3 viable;
        List.iter
          (fun interned ->
            let exhausted_at mp =
              (Search.explore
                 ~config:
                   {
                     Search.default_config with
                     rules = r11;
                     max_positions = mp;
                     max_depth = 1;
                     max_states = 1_000;
                     interned;
                   }
                 masked_chain)
                .Search.frontier_exhausted
            in
            (* the mask-pruned ⟨Kf 1, Kf 2⟩ subtree holds no position, so a
               cap at exactly the viable count truncates nothing *)
            Alcotest.(check bool)
              (Fmt.str "cap = viable stays exhausted (interned=%b)" interned)
              true (exhausted_at viable);
            Alcotest.(check bool)
              (Fmt.str "cap = viable - 1 truncates (interned=%b)" interned)
              false
              (exhausted_at (viable - 1)))
          [ true; false ]);
    case "interned and legacy successor enumeration agree under truncation"
      (fun () ->
        List.iter
          (fun mp ->
            let plain =
              Search.successors ~max_positions:mp Rules.Catalog.all
                masked_chain
            in
            let hc =
              List.map
                (fun (r, hq) -> (r, Term.Hc.to_query hq))
                (Search.successors_hc ~max_positions:mp Rules.Catalog.all
                   (Term.Hc.of_query masked_chain))
            in
            Alcotest.(check int)
              (Fmt.str "same count at cap %d" mp)
              (List.length plain) (List.length hc);
            List.iter2
              (fun (r1, q1) (r2, q2) ->
                Alcotest.(check string) "same rule" r1 r2;
                Alcotest.check query "same successor" q1 q2)
              plain hc)
          [ 0; 1; 2; 3; 4; 64 ]);
  ]

let props =
  let open QCheck in
  let random_query i depth =
    Translate.Compile.query (Datagen.Queries.query ~seed:i ~depth)
  in
  let arb depth =
    QCheck.make
      ~print:(fun i -> Kola.Pretty.query_to_string (random_query i depth))
      QCheck.Gen.(int_bound 1_000_000)
  in
  let small_budgets =
    { Saturate.max_enodes = 4_000; max_iterations = 8; max_millis = 500. }
  in
  [
    Test.make ~count:20
      ~name:
        "saturated egraph extraction is never costlier than BFS exploration"
      (arb 2)
      (fun i ->
        let q = random_query i 2 in
        let bfs =
          Search.explore
            ~config:
              { Search.default_config with max_depth = 2; max_states = 60 }
            q
        in
        let eg =
          Search.explore ~config:(ecfg ~budgets:small_budgets ()) q
        in
        match eg.Search.saturation with
        | None -> false
        | Some s ->
          (* extraction always covers the source itself, budget or not;
             the <= BFS claim holds whenever the space fully saturated *)
          s.Saturate.stop <> Saturate.Saturated
          || eg.Search.best.Search.cost
             <= bfs.Search.best.Search.cost +. 1e-9);
    Test.make ~count:20
      ~name:"egraph reaches agrees with BFS on one-step rewrites" (arb 2)
      (fun i ->
        let q = random_query i 2 in
        match Search.successors Rules.Catalog.all q with
        | [] -> true
        | (_, q') :: _ -> (
          match
            Search.reaches_steps ~config:(ecfg ~budgets:small_budgets ()) q q'
          with
          | Some steps -> Search.validate_path q steps
          | None -> false));
  ]

let tests = tests @ List.map (QCheck_alcotest.to_alcotest ~long:false) props

(* The company schema: everything — typing, translation, rules,
   untangling, plan choice, preconditions — works on a second schema,
   showing nothing is hard-wired to the paper's Person/Vehicle world. *)

open Kola
module C = Datagen.Company
open Util

let company = C.generate C.default_params
let cdb = C.db company
let extents = [ "E"; "D" ]

let optimize src = Optimizer.Pipeline.optimize_oql ~extents ~db:cdb src

let tests =
  [
    case "typing works against the company schema" (fun () ->
        let q = Parse.query "iterate(Kp(T), dname ∘ dept) ! E" in
        Alcotest.check ty "result" (Ty.Set Ty.Str)
          (Typing.query_ty C.schema q));
    case "the paper schema's attributes are unknown here" (fun () ->
        match Typing.func_ty C.schema (Term.Prim "age") with
        | exception Schema.Schema_error _ -> ()
        | _ -> Alcotest.fail "expected a schema error");
    case "the dept-roster hidden join untangles" (fun () ->
        let r = optimize C.dept_roster_oql in
        Alcotest.check Alcotest.bool "untangled" true
          (Option.is_some r.Optimizer.Pipeline.untangled);
        Alcotest.check value "result correct"
          (resolved cdb (Aqua.Eval.eval_closed ~db:cdb r.Optimizer.Pipeline.aqua))
          (resolved cdb (Optimizer.Pipeline.run ~db:cdb r)));
    case "the untangled roster exposes an equi-join the hash backend accepts"
      (fun () ->
        let r = optimize C.dept_roster_oql in
        let untangled = Option.get r.Optimizer.Pipeline.untangled in
        let join_pred =
          List.find_map
            (function
              | Term.Pairf (Term.Join (p, _), _) -> Some p
              | _ -> None)
            (Term.unchain untangled.Term.body)
        in
        match join_pred with
        | Some p ->
          Alcotest.check Alcotest.bool "hash-joinable" true
            (Option.is_some (Eval.hash_joinable p))
        | None -> Alcotest.fail "no join found");
    case "rich-mentors (data-dependent nesting) does not bottom out"
      (fun () ->
        let r = optimize C.rich_mentors_oql in
        Alcotest.check Alcotest.bool "no untangled plan" true
          (Option.is_none r.Optimizer.Pipeline.untangled);
        Alcotest.check value "still correct"
          (resolved cdb (Aqua.Eval.eval_closed ~db:cdb r.Optimizer.Pipeline.aqua))
          (resolved cdb (Optimizer.Pipeline.run ~db:cdb r)));
    case "preconditions use this schema's annotations" (fun () ->
        (* ename is a key here; salary is not *)
        Alcotest.check Alcotest.bool "ename injective" true
          (Rewrite.Props.injective C.schema (Term.Prim "ename"));
        Alcotest.check Alcotest.bool "salary not" false
          (Rewrite.Props.injective C.schema (Term.Prim "salary"));
        let rule = Rules.Catalog.find_exn "inj-inter" in
        let lhs f =
          Term.Compose
            ( Term.Setop Term.Inter,
              Term.Times (Term.Iterate (Term.Kp true, f), Term.Iterate (Term.Kp true, f)) )
        in
        Alcotest.check Alcotest.bool "fires on ename" true
          (Option.is_some
             (Rewrite.Rule.apply_func ~schema:C.schema rule (lhs (Term.Prim "ename"))));
        Alcotest.check Alcotest.bool "blocked on salary" true
          (Option.is_none
             (Rewrite.Rule.apply_func ~schema:C.schema rule (lhs (Term.Prim "salary")))));
    case "aggregate workload: total salary per department" (fun () ->
        let src =
          "select [d, sum(select e.salary from e in E where e.dept = d)] from d in D"
        in
        let r = optimize src in
        let out = resolved cdb (Optimizer.Pipeline.run ~db:cdb r) in
        (* aggregates disable the deferred-dedup dimension *)
        List.iter
          (fun (c : Optimizer.Pipeline.plan) ->
            Alcotest.check Alcotest.bool "eager only" true
              (c.dedup = Eval.Eager))
          r.Optimizer.Pipeline.candidates;
        match out with
        | Value.Set rows ->
          Alcotest.check Alcotest.int "one row per department"
            C.default_params.C.departments (List.length rows)
        | v -> Alcotest.failf "unexpected %a" Value.pp v);
    case "generation is deterministic and sized" (fun () ->
        let a = C.generate C.default_params in
        let b = C.generate C.default_params in
        Alcotest.check value "same E"
          (List.assoc "E" (C.db a))
          (List.assoc "E" (C.db b));
        Alcotest.check Alcotest.int "employees"
          C.default_params.C.employees
          (List.length a.C.employees));
    case "scaled company store is deterministic, sized, and optimizer-ready"
      (fun () ->
        let a = C.scaled ~seed:9 2_000 in
        let b = C.scaled ~seed:9 2_000 in
        Alcotest.check value "same E"
          (List.assoc "E" (C.db a))
          (List.assoc "E" (C.db b));
        Alcotest.check Alcotest.int "employees" 2_000 (List.length a.C.employees);
        Alcotest.check Alcotest.int "departments scale as n/250" 8
          (List.length a.C.departments);
        (* the scaled store feeds the optimizer like the small one does *)
        let r =
          Optimizer.Pipeline.optimize_oql ~extents ~db:(C.db a)
            C.mentor_pool_oql
        in
        Alcotest.check Alcotest.bool "mentor pool untangles" true
          (Option.is_some r.Optimizer.Pipeline.untangled));
    case "scaled company store rejects bad sizes with descriptive errors"
      (fun () ->
        let expect size fragment =
          match C.scaled size with
          | _ -> Alcotest.failf "size %d: expected Invalid_argument" size
          | exception Invalid_argument msg ->
            Alcotest.check Alcotest.bool
              (Fmt.str "size %d names the problem (%s)" size msg)
              true (contains msg fragment)
        in
        expect 0 "positive";
        expect (-1) "outside the supported range";
        expect (Datagen.Store.max_scaled_size + 1) "refusing to truncate");
    case "a malformed employee row fails with a diagnosable message"
      (fun () ->
        (* the mentor-deepening pass goes through Store.obj_fields with the
           company context; a corrupted extent names itself instead of
           tripping assert false *)
        match
          Datagen.Store.obj_fields
            ~context:"Datagen.Company.generate: employee row"
            (Value.Str "not a row")
        with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument msg ->
          Alcotest.check Alcotest.bool "names the pass" true
            (contains msg "employee row");
          Alcotest.check Alcotest.bool "shows the value" true
            (contains msg "not a row"));
  ]

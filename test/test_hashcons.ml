(* The hash-consed term core: maximal sharing (structural equality is
   physical equality), O(1) hash/size/canonical keys, and the interned
   engine built on them.  Correctness is equivalence once more: converters
   must round-trip, interned fields must agree with the plain recursive
   functions, id-pair dedup must partition queries exactly like canonical
   keys, and the interned engines — rewriting and search, sequential and
   parallel — must reproduce the legacy outcomes bit for bit. *)

open Kola
open Util
module Hc = Term.Hc
module Engine = Rewrite.Engine
module Index = Rewrite.Index
module Subst = Rewrite.Subst
module Search = Optimizer.Search
module Cost = Optimizer.Cost

let paper_queries =
  [ Paper.t1k_source; Paper.t2k_source; Paper.k3; Paper.k4; Paper.kg1;
    Paper.kg2 ]

let paper_bodies = List.map (fun q -> q.Term.body) paper_queries

let random_query i depth =
  Translate.Compile.query (Datagen.Queries.query ~seed:i ~depth)

(* Right-associate every composition chain: an associativity variant that
   id-pair keys must identify with the original. *)
let rec right_assoc f =
  match f with
  | Term.Compose _ ->
    let rec build = function
      | [] -> Term.Id
      | [ g ] -> g
      | g :: gs -> Term.Compose (g, build gs)
    in
    build (List.map right_assoc (Term.unchain f))
  | f -> f

let trace_names (o : Engine.outcome) =
  List.map (fun s -> s.Engine.rule_name) o.Engine.trace

(* Fresh caches per run, as in test_parallel: equivalence must not depend
   on what an earlier exploration left in the shared caches. *)
let explore_at ?(interned = true) ?(jobs = 1) ~max_depth ~max_states q =
  Search.explore
    ~config:
      {
        Search.default_config with
        max_depth;
        max_states;
        jobs;
        interned;
        cost_cache = Some (Cost.cache ());
        hc_cost_cache = Some (Cost.hc_cache ());
      }
    q

let check_same_outcome name (a : Search.outcome) (b : Search.outcome) =
  Alcotest.check query (name ^ ": best query") a.Search.best.Search.query
    b.Search.best.Search.query;
  Alcotest.(check (list string))
    (name ^ ": derivation") a.Search.best.Search.path b.Search.best.Search.path;
  Alcotest.(check (float 0.))
    (name ^ ": cost") a.Search.best.Search.cost b.Search.best.Search.cost;
  Alcotest.(check int) (name ^ ": explored") a.Search.explored b.Search.explored;
  Alcotest.(check bool)
    (name ^ ": frontier") a.Search.frontier_exhausted
    b.Search.frontier_exhausted;
  Alcotest.(check int)
    (name ^ ": distinct states") a.Search.seen_states b.Search.seen_states

let fig_workloads =
  [
    ("T1K", Paper.t1k_source, 4, 200);
    ("T2K", Paper.t2k_source, 4, 150);
    ("K4", Paper.k4, 3, 120);
    ("KG1", Paper.kg1, 2, 60);
  ]

let tests =
  [
    case "of/to round-trips the paper queries exactly" (fun () ->
        List.iter
          (fun q ->
            Alcotest.check Alcotest.bool "roundtrip" true
              (Term.equal_query q (Hc.to_query (Hc.of_query q))))
          paper_queries);
    case "interning is maximal: equal terms intern to the same node"
      (fun () ->
        List.iter
          (fun b1 ->
            List.iter
              (fun b2 ->
                Alcotest.check Alcotest.bool "equal iff =="
                  (Term.equal_func b1 b2)
                  (Hc.of_func b1 == Hc.of_func b2))
              paper_bodies)
          paper_bodies);
    case "fhash and fsize agree with the plain recursive functions"
      (fun () ->
        List.iter
          (fun b ->
            let n = Hc.of_func b in
            Alcotest.(check int) "fhash" (Term.hash_func b) n.Hc.fhash;
            Alcotest.(check int) "fsize" (Term.size_func b) n.Hc.fsize;
            Alcotest.check Alcotest.bool "hole-free" true n.Hc.fhole_free)
          paper_bodies);
    case "canon mirrors reassoc_func and is physically idempotent"
      (fun () ->
        List.iter
          (fun b ->
            let variant = right_assoc b in
            let c = Hc.canon (Hc.of_func variant) in
            Alcotest.check func "canon = reassoc"
              (Term.reassoc_func variant)
              (Hc.to_func c);
            Alcotest.check Alcotest.bool "canon idempotent (physically)" true
              (Hc.canon c == c);
            Alcotest.check Alcotest.bool
              "associativity variants canon to the same node" true
              (Hc.canon (Hc.of_func b) == c))
          paper_bodies);
    case "query_key partitions states exactly like canonical keys"
      (fun () ->
        List.iter
          (fun q1 ->
            List.iter
              (fun q2 ->
                let v2 = { q2 with Term.body = right_assoc q2.Term.body } in
                let keys_equal =
                  Hc.query_key (Hc.of_query q1) = Hc.query_key (Hc.of_query v2)
                in
                let canon_equal =
                  Term.Canonical.equal
                    (Term.Canonical.of_query q1)
                    (Term.Canonical.of_query v2)
                in
                Alcotest.check Alcotest.bool "same partition" canon_equal
                  keys_equal)
              paper_queries)
          paper_queries);
    case "mask_may_fire agrees with the presence-walk may_fire" (fun () ->
        List.iter
          (fun q ->
            let presence = Index.presence_of_query q in
            let mask = (Hc.of_query q).Hc.hbody.Hc.fheads in
            List.iter
              (fun r ->
                Alcotest.check Alcotest.bool
                  ("rule " ^ r.Rewrite.Rule.name)
                  (Index.may_fire presence r)
                  (Index.mask_may_fire mask r))
              Rules.Catalog.all)
          paper_queries);
    case "substitution returns the input subtree physically unchanged"
      (fun () ->
        List.iter
          (fun b ->
            (* plain: no binding applies to a hole-free term *)
            Alcotest.check Alcotest.bool "plain, empty subst" true
              (Subst.apply_func Subst.empty b == b);
            let irrelevant =
              Option.get (Subst.bind_func Subst.empty "zz" Term.Id)
            in
            Alcotest.check Alcotest.bool "plain, irrelevant binding" true
              (Subst.apply_func irrelevant b == b);
            (* interned: the hole-free bit short-circuits *)
            let n = Hc.of_func b in
            Alcotest.check Alcotest.bool "interned, empty subst" true
              (Subst.H.apply_func Subst.H.empty n == n))
          paper_bodies);
    case "run_hc reproduces the indexed engine on the paper queries"
      (fun () ->
        List.iter
          (fun q ->
            let plain = Engine.run ~fuel:40 Rules.Catalog.all q in
            let interned = Engine.run_hc ~fuel:40 Rules.Catalog.all q in
            Alcotest.(check (list string))
              "same trace" (trace_names plain) (trace_names interned);
            Alcotest.check query "same normal form" plain.Engine.query
              interned.Engine.query;
            Alcotest.(check int)
              "same attempts" plain.Engine.stats.Engine.attempts
              interned.Engine.stats.Engine.attempts)
          paper_queries);
    case "interned explore is bit-identical to the legacy engine" (fun () ->
        List.iter
          (fun (name, q, max_depth, max_states) ->
            let legacy =
              explore_at ~interned:false ~max_depth ~max_states q
            in
            let interned = explore_at ~max_depth ~max_states q in
            check_same_outcome name legacy interned;
            Alcotest.(check (float 0.))
              (name ^ ": legacy reports no interning") 0.
              legacy.Search.sharing_ratio;
            Alcotest.check Alcotest.bool
              (name ^ ": interned engine shares nodes") true
              (interned.Search.intern_hits > 0))
          fig_workloads);
    case "interned explore at jobs = 2 and 4 equals sequential" (fun () ->
        List.iter
          (fun (name, q, max_depth, max_states) ->
            let seq = explore_at ~max_depth ~max_states q in
            List.iter
              (fun jobs ->
                let par = explore_at ~jobs ~max_depth ~max_states q in
                check_same_outcome (Fmt.str "%s @ jobs=%d" name jobs) seq par)
              [ 2; 4 ])
          fig_workloads);
    case "interned reaches finds the identical derivation" (fun () ->
        let config interned jobs =
          {
            Search.default_config with
            max_depth = 4;
            max_states = 200;
            interned;
            jobs;
          }
        in
        let q = Paper.t1k_source and target = Paper.t1k_target in
        let legacy = Search.reaches ~config:(config false 1) q target in
        List.iter
          (fun jobs ->
            Alcotest.(check (option (list string)))
              (Fmt.str "jobs=%d" jobs) legacy
              (Search.reaches ~config:(config true jobs) q target))
          [ 1; 2; 4 ]);
  ]

let props =
  let open QCheck in
  let arb depth =
    QCheck.make
      ~print:(fun i -> Kola.Pretty.query_to_string (random_query i depth))
      QCheck.Gen.(int_bound 1_000_000)
  in
  [
    Test.make ~count:100 ~name:"of/to round-trips random queries" (arb 3)
      (fun i ->
        let q = random_query i 3 in
        Term.equal_query q (Hc.to_query (Hc.of_query q)));
    Test.make ~count:100
      ~name:"interned hash and size agree with the plain functions on \
             random queries"
      (arb 3)
      (fun i ->
        let b = (random_query i 3).Term.body in
        let n = Hc.of_func b in
        n.Hc.fhash = Term.hash_func b && n.Hc.fsize = Term.size_func b);
    Test.make ~count:120
      ~name:"structural equality is physical equality on random pairs"
      (pair (arb 3) (arb 3))
      (fun (i, j) ->
        let b1 = (random_query i 3).Term.body in
        let b2 = (random_query j 3).Term.body in
        Term.equal_func b1 b2 = (Hc.of_func b1 == Hc.of_func b2))
    ;
    Test.make ~count:120
      ~name:"id-pair dedup classifies pairs like canonical keys"
      (pair (arb 3) (pair (arb 3) bool))
      (fun (i, (j, use_variant)) ->
        let q1 = random_query i 3 in
        let q2 =
          if use_variant then { q1 with Term.body = right_assoc q1.Term.body }
          else random_query j 3
        in
        let keys_equal =
          Hc.query_key (Hc.of_query q1) = Hc.query_key (Hc.of_query q2)
        in
        Term.Canonical.equal
          (Term.Canonical.of_query q1)
          (Term.Canonical.of_query q2)
        = keys_equal);
    Test.make ~count:25
      ~name:"interned explore equals legacy explore on random queries"
      (arb 2)
      (fun i ->
        let q = random_query i 2 in
        let legacy =
          explore_at ~interned:false ~max_depth:2 ~max_states:40 q
        in
        let interned = explore_at ~max_depth:2 ~max_states:40 q in
        Term.equal_query legacy.Search.best.Search.query
          interned.Search.best.Search.query
        && legacy.Search.best.Search.path = interned.Search.best.Search.path
        && legacy.Search.explored = interned.Search.explored
        && legacy.Search.frontier_exhausted
           = interned.Search.frontier_exhausted
        && legacy.Search.seen_states = interned.Search.seen_states);
  ]

let tests = tests @ List.map (QCheck_alcotest.to_alcotest ~long:false) props

(* The AQUA substrate: evaluation, free variables, capture-avoiding
   substitution, α-equivalence — the paper's "additional machinery". *)

open Kola
open Aqua.Ast
open Util

let fv e = Aqua.Vars.S.elements (Aqua.Vars.free_vars e)

let tests =
  [
    case "A3/A4 free variables (the Section 2.2 distinction)" (fun () ->
        (* in A3 the inner predicate has no free occurrence of p; in A4 it
           does — checked on the inner lambda bodies *)
        let inner_pred_of = function
          | App (l, _) -> (
            match l.body with
            | Pair (_, Sel (inner, _)) -> inner.body
            | _ -> assert false)
          | _ -> assert false
        in
        Alcotest.check (Alcotest.list Alcotest.string) "a3 inner" [ "c" ]
          (fv (inner_pred_of Aqua.Examples.a3));
        Alcotest.check (Alcotest.list Alcotest.string) "a4 inner" [ "p" ]
          (fv (inner_pred_of Aqua.Examples.a4)));
    case "closed queries have no free variables" (fun () ->
        Alcotest.check (Alcotest.list Alcotest.string) "garage" []
          (fv Aqua.Examples.garage));
    case "substitution composes expressions (T1's body routine)" (fun () ->
        let composed =
          Aqua.Vars.subst "a" (Path (Var "p", "addr")) (Path (Var "a", "city"))
        in
        Alcotest.check aqua "p.addr.city"
          (Path (Path (Var "p", "addr"), "city"))
          composed);
    case "substitution avoids capture" (fun () ->
        (* (λx. [x, y]) with y := x must rename the binder *)
        let e = App (lam "x" (Pair (Var "x", Var "y")), Extent "P") in
        let e' = Aqua.Vars.subst "y" (Var "x") e in
        match e' with
        | App (l, _) -> (
          Alcotest.check Alcotest.bool "binder renamed" true (l.v <> "x");
          match l.body with
          | Pair (Var bound, Var free) ->
            Alcotest.check Alcotest.string "bound follows binder" l.v bound;
            Alcotest.check Alcotest.string "free is x" "x" free
          | _ -> Alcotest.fail "unexpected body")
        | _ -> Alcotest.fail "unexpected shape");
    case "alpha-equivalence identifies renamed lambdas" (fun () ->
        let a = App (lam "x" (Path (Var "x", "age")), Extent "P") in
        let b = App (lam "p" (Path (Var "p", "age")), Extent "P") in
        Alcotest.check Alcotest.bool "equal" true (Aqua.Vars.alpha_equal a b));
    case "alpha-equivalence distinguishes A3 and A4" (fun () ->
        Alcotest.check Alcotest.bool "differ" false
          (Aqua.Vars.alpha_equal Aqua.Examples.a3 Aqua.Examples.a4));
    case "evaluation: T1 source and target agree" (fun () ->
        Alcotest.check value "t1"
          (Aqua.Eval.eval_closed ~db:tiny_db Aqua.Examples.t1_source)
          (Aqua.Eval.eval_closed ~db:tiny_db Aqua.Examples.t1_target));
    case "evaluation: T2 source and target agree" (fun () ->
        Alcotest.check value "t2"
          (Aqua.Eval.eval_closed ~db:tiny_db Aqua.Examples.t2_source)
          (Aqua.Eval.eval_closed ~db:tiny_db Aqua.Examples.t2_target));
    case "evaluation: A4 equals its code-motion form, A3 differs from A4"
      (fun () ->
        Alcotest.check value "a4"
          (Aqua.Eval.eval_closed ~db:tiny_db Aqua.Examples.a4)
          (Aqua.Eval.eval_closed ~db:tiny_db Aqua.Examples.a4_optimized);
        Alcotest.check Alcotest.bool "a3 vs a4" false
          (Value.equal
             (Aqua.Eval.eval_closed ~db:tiny_db Aqua.Examples.a3)
             (Aqua.Eval.eval_closed ~db:tiny_db Aqua.Examples.a4)));
    case "join desugaring preserves semantics" (fun () ->
        let p = lam2 "a" "b" (Bin (In, Var "a", Path (Var "b", "cars"))) in
        let f = lam2 "a" "b" (Pair (Var "a", Var "b")) in
        let j = Join (p, f, Extent "V", Extent "P") in
        let d = desugar_join p f (Extent "V") (Extent "P") in
        Alcotest.check value "join = desugared"
          (Aqua.Eval.eval_closed ~db:tiny_db j)
          (Aqua.Eval.eval_closed ~db:tiny_db d));
    case "unbound variables raise" (fun () ->
        Alcotest.check_raises "unbound" (Aqua.Eval.Error "unbound variable z")
          (fun () -> ignore (Aqua.Eval.eval_closed ~db:tiny_db (Var "z"))));
    case "and/or short-circuit" (fun () ->
        (* the right operand would raise if evaluated *)
        let boom = Path (Const (int 1), "age") in
        Alcotest.check value "and" (Value.Bool false)
          (Aqua.Eval.eval_closed (Bin (And, Const (Value.Bool false), boom)));
        Alcotest.check value "or" (Value.Bool true)
          (Aqua.Eval.eval_closed (Bin (Or, Const (Value.Bool true), boom))));
    case "and/or nested under another binop (eval regression)" (fun () ->
        (* And/Or as an *operand* of a comparison used to fall through the
           evaluator's catch-all into assert false *)
        let t = Const (Value.Bool true) and f = Const (Value.Bool false) in
        Alcotest.check value "(true && false) = (false || false)"
          (Value.Bool true)
          (Aqua.Eval.eval_closed
             (Bin (Eq, Bin (And, t, f), Bin (Or, f, f))));
        (* and inside a selection predicate, over real rows *)
        let old p = Bin (Gt, Path (Var p, "age"), Const (int 30)) in
        let local p =
          Bin (Eq, Path (Path (Var p, "addr"), "city"), Const (Value.Str "Boston"))
        in
        let both =
          Sel (lam "p" (Bin (And, old "p", local "p")), Extent "P")
        in
        let either =
          Sel (lam "p" (Bin (Or, old "p", local "p")), Extent "P")
        in
        let count e =
          match Aqua.Eval.eval_closed ~db:tiny_db e with
          | Value.Set xs -> List.length xs
          | v -> Alcotest.failf "expected a set, got %a" Value.pp v
        in
        Alcotest.check Alcotest.bool "conjunction narrows the disjunction"
          true
          (count both <= count either && count either <= count (Extent "P")));
    case "size and nesting measures" (fun () ->
        Alcotest.check Alcotest.int "garage nesting" 2
          (max_nesting Aqua.Examples.garage);
        Alcotest.check Alcotest.bool "size positive" true
          (size Aqua.Examples.garage > 10));
  ]

let props =
  let open QCheck in
  let var_names = [ "x"; "y"; "z" ] in
  let rec expr_gen n =
    let open Gen in
    if n = 0 then
      oneof
        [
          map (fun v -> Var v) (oneofl var_names);
          map (fun i -> Const (Value.Int i)) small_int;
          return (Extent "P");
        ]
    else
      oneof
        [
          map (fun v -> Var v) (oneofl var_names);
          map2 (fun a b -> Pair (a, b)) (expr_gen (n - 1)) (expr_gen (n - 1));
          map2
            (fun v body -> App (lam v body, Extent "P"))
            (oneofl var_names) (expr_gen (n - 1));
          map (fun e -> Path (e, "age")) (expr_gen (n - 1));
        ]
  in
  let arb = QCheck.make ~print:Aqua.Pretty.to_string (expr_gen 4) in
  [
    Test.make ~name:"alpha_equal is reflexive" ~count:200 arb (fun e ->
        Aqua.Vars.alpha_equal e e);
    Test.make ~name:"substituting a non-free variable is the identity"
      ~count:200 arb (fun e ->
        Aqua.Vars.is_free "w" e
        || Aqua.Vars.alpha_equal e (Aqua.Vars.subst "w" (Const (Value.Int 9)) e));
    Test.make ~name:"substitution eliminates the substituted variable"
      ~count:200 arb (fun e ->
        let e' = Aqua.Vars.subst "x" (Const (Value.Int 1)) e in
        not (Aqua.Vars.is_free "x" e'));
  ]

let tests = tests @ List.map (QCheck_alcotest.to_alcotest ~long:false) props

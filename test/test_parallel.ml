(* The parallel exploration layer: a fixed-size domain pool
   (Kola_parallel.Pool), level-synchronous explore/reaches, and the
   capacity-bounded cost cache.  Correctness is equivalence again: at any
   domain count the engine must return the *identical* outcome — best
   query, derivation, explored count, frontier flag — as the sequential
   baseline, run after run. *)

open Kola
open Util
module Search = Optimizer.Search
module Cost = Optimizer.Cost
module Pool = Kola_parallel.Pool

let with_flips =
  Rules.Catalog.all
  @ List.map Rewrite.Rule.flip (Rules.Catalog.rules [ "r14"; "r12" ])

(* Fresh cost cache per run: equivalence must not depend on what an
   earlier exploration happened to leave in the shared cache. *)
let explore_at ?(rules = Rules.Catalog.all) ~max_depth ~max_states jobs q =
  Search.explore
    ~config:
      {
        Search.default_config with
        rules;
        max_depth;
        max_states;
        jobs;
        cost_cache = Some (Cost.cache ());
        hc_cost_cache = Some (Cost.hc_cache ());
      }
    q

let reaches_at ?(rules = with_flips) ~max_depth ~max_states jobs q target =
  Search.reaches
    ~config:
      { Search.default_config with rules; max_depth; max_states; jobs }
    q target

(* The determinism contract: best query, derivation, cost, explored
   count, and frontier flag all agree.  (Cost-cache accounting is
   deliberately excluded: hit/miss totals may legally shift when a
   capacity sweep lands mid-level.) *)
let check_same_outcome name (a : Search.outcome) (b : Search.outcome) =
  Alcotest.check query (name ^ ": best query") a.Search.best.Search.query
    b.Search.best.Search.query;
  Alcotest.(check (list string))
    (name ^ ": derivation") a.Search.best.Search.path b.Search.best.Search.path;
  Alcotest.(check (float 0.))
    (name ^ ": cost") a.Search.best.Search.cost b.Search.best.Search.cost;
  Alcotest.(check int) (name ^ ": explored") a.Search.explored b.Search.explored;
  Alcotest.(check bool)
    (name ^ ": frontier") a.Search.frontier_exhausted b.Search.frontier_exhausted

let fig_workloads =
  (* Figure 4 sources, the Figure 6 code-motion source, and the Garage
     Query — budgets sized so each explores a few hundred states *)
  [
    ("T1K", Paper.t1k_source, 4, 200);
    ("T2K", Paper.t2k_source, 4, 150);
    ("K4", Paper.k4, 3, 120);
    ("KG1", Paper.kg1, 2, 60);
  ]

let random_query i depth =
  Translate.Compile.query (Datagen.Queries.query ~seed:i ~depth)

let tests =
  [
    case "explore at jobs = 2 and 4 equals the sequential engine" (fun () ->
        List.iter
          (fun (name, q, max_depth, max_states) ->
            let seq = explore_at ~max_depth ~max_states 1 q in
            List.iter
              (fun jobs ->
                let par = explore_at ~max_depth ~max_states jobs q in
                check_same_outcome (Fmt.str "%s @ jobs=%d" name jobs) seq par)
              [ 2; 4 ])
          fig_workloads);
    case "reaches at jobs = 2 and 4 finds the identical derivation" (fun () ->
        let attempts =
          [
            ("T1K", Paper.t1k_source, Paper.t1k_target, 6, 2_000);
            ("T2K", Paper.t2k_source, Paper.t2k_target, 8, 4_000);
          ]
        in
        List.iter
          (fun (name, src, tgt, max_depth, max_states) ->
            let seq = reaches_at ~max_depth ~max_states 1 src tgt in
            Alcotest.(check bool) (name ^ " discovered") true (seq <> None);
            List.iter
              (fun jobs ->
                let par = reaches_at ~max_depth ~max_states jobs src tgt in
                Alcotest.(check (option (list string)))
                  (Fmt.str "%s @ jobs=%d" name jobs)
                  seq par)
              [ 2; 4 ])
          attempts);
    case "reaches misses identically when the target is out of reach"
      (fun () ->
        List.iter
          (fun jobs ->
            Alcotest.(check (option (list string)))
              (Fmt.str "KG1->KG2 @ jobs=%d" jobs)
              None
              (reaches_at ~max_depth:4 ~max_states:300 jobs Paper.kg1
                 Paper.kg2))
          [ 1; 2; 4 ]);
    case "repeated parallel runs are deterministic" (fun () ->
        let run () = explore_at ~max_depth:4 ~max_states:150 4 Paper.t2k_source in
        let first = run () in
        for i = 2 to 3 do
          check_same_outcome (Fmt.str "run %d" i) first (run ())
        done;
        let reach () =
          reaches_at ~max_depth:6 ~max_states:2_000 4 Paper.t1k_source
            Paper.t1k_target
        in
        Alcotest.(check (option (list string))) "reaches rerun" (reach ())
          (reach ()));
    case "jobs = 0 resolves to the recommended domain count" (fun () ->
        let config = { Search.default_config with jobs = 0 } in
        Alcotest.(check bool) "at least one domain" true
          (Search.resolved_jobs config >= 1);
        Alcotest.(check int) "explicit jobs pass through" 3
          (Search.resolved_jobs { Search.default_config with jobs = 3 });
        let seq = explore_at ~max_depth:3 ~max_states:80 1 Paper.t1k_source in
        let auto = explore_at ~max_depth:3 ~max_states:80 0 Paper.t1k_source in
        check_same_outcome "auto jobs" seq auto);
    (* ---------------- pool unit tests ---------------- *)
    case "pool map preserves order at every size" (fun () ->
        let xs = Array.init 100 (fun i -> i) in
        let expect = Array.map (fun i -> (i * i) + 1) xs in
        List.iter
          (fun jobs ->
            Pool.with_pool ~jobs (fun pool ->
                Alcotest.(check (array int))
                  (Fmt.str "jobs=%d" jobs) expect
                  (Pool.map pool (fun i -> (i * i) + 1) xs)))
          [ 1; 2; 4 ]);
    case "pool is reusable across jobs and sizes it reports" (fun () ->
        Pool.with_pool ~jobs:3 (fun pool ->
            Alcotest.(check int) "size" 3 (Pool.size pool);
            Alcotest.(check (list int)) "first job" [ 2; 4; 6 ]
              (Pool.map_list pool (fun x -> 2 * x) [ 1; 2; 3 ]);
            Alcotest.(check (list int)) "second job" [ 1; 8; 27 ]
              (Pool.map_list pool (fun x -> x * x * x) [ 1; 2; 3 ]);
            Alcotest.(check (array int)) "empty input" [||]
              (Pool.map pool (fun x -> x) [||])));
    case "pool run covers every chunk exactly once" (fun () ->
        Pool.with_pool ~jobs:4 (fun pool ->
            let chunks = 23 in
            let hits = Array.make chunks 0 in
            (* distinct slots: no two tasks share an index *)
            Pool.run pool ~chunks (fun i -> hits.(i) <- hits.(i) + 1);
            Alcotest.(check (array int)) "each chunk once"
              (Array.make chunks 1) hits));
    case "pool map re-raises a task exception in the submitter" (fun () ->
        List.iter
          (fun jobs ->
            Pool.with_pool ~jobs (fun pool ->
                match
                  Pool.map pool
                    (fun i -> if i = 13 then failwith "boom" else i)
                    (Array.init 20 (fun i -> i))
                with
                | _ -> Alcotest.fail "expected Failure"
                | exception Failure msg ->
                  Alcotest.(check string) "message" "boom" msg))
          [ 1; 2 ]);
    case "shutdown is idempotent and later use is refused" (fun () ->
        let pool = Pool.create ~jobs:2 () in
        Alcotest.(check (list int)) "works" [ 2 ]
          (Pool.map_list pool (fun x -> x + 1) [ 1 ]);
        Pool.shutdown pool;
        Pool.shutdown pool;
        Alcotest.check_raises "refused"
          (Invalid_argument "Pool.run: pool is shut down") (fun () ->
            ignore (Pool.map_list pool (fun x -> x) [ 1 ])));
    (* ---------------- cost-cache capacity ---------------- *)
    case "cost cache capacity is a hard bound with counted evictions"
      (fun () ->
        let cache = Cost.cache ~size:4 () in
        (* ten canonically distinct plans *)
        let qs =
          let seen = Term.Canonical.Table.create 16 in
          List.filter
            (fun q ->
              let k = Term.Canonical.of_query q in
              if Term.Canonical.Table.mem seen k then false
              else begin
                Term.Canonical.Table.replace seen k ();
                true
              end)
            (List.init 40 (fun i -> random_query i 2))
        in
        let qs = List.filteri (fun i _ -> i < 10) qs in
        Alcotest.(check int) "ten distinct plans" 10 (List.length qs);
        List.iter (fun q -> ignore (Cost.weighted_memo cache ~db:tiny_db q)) qs;
        let s = Cost.cache_stats cache in
        Alcotest.(check int) "all misses" 10 s.Cost.misses;
        Alcotest.(check bool) "bounded" true (s.Cost.entries <= 4);
        Alcotest.(check int) "evictions balance" (10 - s.Cost.entries)
          s.Cost.evictions);
    case "second chance: a hit entry survives the sweep" (fun () ->
        let cache = Cost.cache ~size:2 () in
        let a = Paper.t1k_source and b = Paper.t2k_source and c = Paper.k4 in
        let cost q = Cost.weighted_memo cache ~db:tiny_db q in
        ignore (cost a);
        ignore (cost a);  (* hit: a earns its second chance *)
        ignore (cost b);
        ignore (cost c);  (* overflow sweep: b (never hit) is evicted *)
        let s0 = Cost.cache_stats cache in
        ignore (cost a);  (* must still be resident *)
        let s1 = Cost.cache_stats cache in
        Alcotest.(check int) "a survived the sweep" (s0.Cost.hits + 1)
          s1.Cost.hits;
        Alcotest.(check int) "one eviction so far" 1 s1.Cost.evictions);
    case "batch memo returns the same costs and accounting as one-by-one"
      (fun () ->
        let qs = List.init 8 (fun i -> random_query (100 + i) 2) in
        let items =
          Array.of_list
            (List.map (fun q -> (Term.Canonical.of_query q, q)) qs)
        in
        let seq_cache = Cost.cache () in
        let expected =
          List.map (fun q -> Cost.weighted_memo seq_cache ~db:tiny_db q) qs
        in
        let batch_cache = Cost.cache () in
        (* cold batch = all sequential misses *)
        let cold = Cost.weighted_memo_batch batch_cache ~db:tiny_db items in
        Alcotest.(check (list (float 0.))) "cold costs" expected
          (Array.to_list cold);
        (* warm batch through a parallel map = all hits, same costs *)
        let warm =
          Pool.with_pool ~jobs:2 (fun pool ->
              Cost.weighted_memo_batch batch_cache ~db:tiny_db
                ~map:(fun f arr -> Pool.map pool f arr)
                items)
        in
        Alcotest.(check (list (float 0.))) "warm costs" expected
          (Array.to_list warm);
        let sb = Cost.cache_stats batch_cache in
        let ss = Cost.cache_stats seq_cache in
        Alcotest.(check int) "same misses" ss.Cost.misses sb.Cost.misses;
        Alcotest.(check int) "warm hits" (Array.length items) sb.Cost.hits);
    case "a raising map aborts promptly and re-raises" (fun () ->
        (* one poisoned item early in the array: the exception must come
           back out of [map], and domains must stop starting new items
           once it is raised instead of grinding through the whole input *)
        let n = 64 in
        let ran = Atomic.make 0 in
        let xs = Array.init n Fun.id in
        let f i =
          if i = 3 then failwith "poisoned item"
          else begin
            ignore (Atomic.fetch_and_add ran 1);
            Unix.sleepf 0.002;
            i
          end
        in
        Pool.with_pool ~jobs:2 (fun pool ->
            (match Pool.map pool f xs with
            | _ -> Alcotest.fail "expected the map to re-raise"
            | exception Failure msg ->
              Alcotest.(check string) "the item's exception" "poisoned item"
                msg);
            (* with 2 domains and 2ms per good item, finishing all 63
               good items would take ~60ms; aborting after the poison
               leaves most of them unstarted *)
            Alcotest.(check bool) "most items never ran" true
              (Atomic.get ran < n - 8);
            (* the pool survives an aborted map *)
            let ok = Pool.map pool (fun i -> i * 2) (Array.init 8 Fun.id) in
            Alcotest.(check (array int)) "pool still works"
              (Array.init 8 (fun i -> i * 2))
              ok));
  ]

let props =
  let open QCheck in
  let arb depth =
    QCheck.make
      ~print:(fun i -> Kola.Pretty.query_to_string (random_query i depth))
      QCheck.Gen.(int_bound 1_000_000)
  in
  [
    Test.make ~count:25
      ~name:"parallel explore equals sequential explore on random queries"
      (arb 2)
      (fun i ->
        let q = random_query i 2 in
        let seq = explore_at ~max_depth:2 ~max_states:40 1 q in
        let par = explore_at ~max_depth:2 ~max_states:40 3 q in
        Term.equal_query seq.Search.best.Search.query
          par.Search.best.Search.query
        && seq.Search.best.Search.path = par.Search.best.Search.path
        && seq.Search.best.Search.cost = par.Search.best.Search.cost
        && seq.Search.explored = par.Search.explored
        && seq.Search.frontier_exhausted = par.Search.frontier_exhausted);
  ]

let tests = tests @ List.map (QCheck_alcotest.to_alcotest ~long:false) props

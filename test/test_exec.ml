(* The compiled execution backend (lib/exec) against its oracle, the
   interpreter.

   Pinned equivalence: for every supported ground plan,
   - compiled/Eager  ≡ Eval.run under both backends with Eager dedup,
   - compiled/Deferred ≡ Eval.run under the Hashed backend with Deferred
     dedup (the compiler mirrors the hashed backend's construction order;
     Naive-deferred can legitimately disagree with Hashed-deferred on
     order-sensitive plans, which is a property of deferred dedup, not of
     the compiler),
   all modulo set ordering / bag finalization ({!Exec.agree}).  Unsupported
   plans (pattern holes) must fall back to the interpreter explicitly:
   counted, never wrong. *)

open Kola
open Util
module Exec = Kola_exec.Exec
module Ir = Kola_exec.Ir

let check_agree ~db msg a b =
  Alcotest.check Alcotest.bool msg true (Exec.agree ~db a b)

(* The differential harness: compiled against the oracle on one query. *)
let differential ?(db = tiny_db) name q =
  List.iter
    (fun dedup ->
      let compiled, stats = Exec.run ~backend:Exec.Compiled ~dedup ~db q in
      Alcotest.check Alcotest.bool (name ^ ": no fallback") false
        stats.Exec.fell_back;
      let oracles =
        match dedup with
        | Eval.Eager -> [ Eval.Naive; Eval.Hashed ]
        | Eval.Deferred -> [ Eval.Hashed ]
      in
      List.iter
        (fun backend ->
          let interp = Eval.eval_query ~db ~backend ~dedup q in
          check_agree ~db
            (Fmt.str "%s: compiled ≡ interp (%s, %s)" name
               (match backend with Eval.Naive -> "naive" | Eval.Hashed -> "hashed")
               (match dedup with Eval.Eager -> "eager" | Eval.Deferred -> "deferred"))
            compiled interp)
        oracles)
    [ Eval.Eager; Eval.Deferred ]

let compile_ir q = Exec.ir (Exec.compile q)

(* --- unit tests per IR stage --- *)

let p_scan = Value.Named "P"

let stage_tests =
  [
    case "filter+map fuse into one stage" (fun () ->
        let q =
          Term.query
            (Term.Iterate
               (Paper.age_gt_25, Term.Compose (Paper.city, Paper.addr)))
            p_scan
        in
        differential "sel-proj" q;
        let ir = compile_ir q in
        Alcotest.check Alcotest.int "one fused stage" 1 (Ir.stages ir);
        Alcotest.check Alcotest.int "no scalar fallbacks" 0
          (Ir.scalar_nodes ir));
    case "flatten streams inner sets" (fun () ->
        let q =
          Term.query
            (Term.Compose (Term.Flat, Term.proj Paper.child))
            p_scan
        in
        differential "flatten" q;
        Alcotest.check Alcotest.int "two stages" 2
          (Ir.stages (compile_ir q)));
    case "unnest emits key/inner pairs" (fun () ->
        let q = Term.query (Term.Unnest (Term.Id, Paper.cars)) p_scan in
        differential "unnest" q);
    case "equi-join compiles to a hash join" (fun () ->
        (* join(eq ⊕ (addr × id), π1) ! [P, A] *)
        let p = Term.Oplus (Term.Eq, Term.Times (Paper.addr, Term.Id)) in
        let q =
          Term.query
            (Term.Join (p, Term.Pi1))
            (Value.Pair (Value.Named "P", Value.Named "A"))
        in
        differential "equi-join" q;
        match compile_ir q with
        | Ir.HashJoin { kind = Ir.Eq; _ } -> ()
        | ir -> Alcotest.failf "expected a hash join, got %a" Ir.pp ir);
    case "membership join compiles to a hash join over set elements"
      (fun () ->
        (* join(in ⊕ (id × cars), π2) ! [V, P] *)
        let p = Term.Oplus (Term.In, Term.Times (Term.Id, Paper.cars)) in
        let q =
          Term.query
            (Term.Join (p, Term.Pi2))
            (Value.Pair (Value.Named "V", Value.Named "P"))
        in
        differential "membership-join" q;
        match compile_ir q with
        | Ir.HashJoin { kind = Ir.Membership; _ } -> ()
        | ir -> Alcotest.failf "expected a membership hash join, got %a" Ir.pp ir);
    case "non-decomposable predicate falls back to a loop join" (fun () ->
        (* leq ⊕ (age × age) is order, not equality: no hash index *)
        let p = Term.Oplus (Term.Leq, Term.Times (Paper.age, Paper.age)) in
        let q =
          Term.query
            (Term.Join (p, Term.Pairf (Term.Pi1, Term.Pi2)))
            (Value.Pair (Value.Named "P", Value.Named "P"))
        in
        differential "loop-join" q;
        match compile_ir q with
        | Ir.LoopJoin _ -> ()
        | ir -> Alcotest.failf "expected a loop join, got %a" Ir.pp ir);
    case "nest compiles to a hash group" (fun () ->
        let q =
          Term.query
            (Term.Nest (Paper.addr, Term.Id))
            (Value.Pair (Value.Named "P", Value.Named "A"))
        in
        differential "nest" q;
        match compile_ir q with
        | Ir.HashGroup _ -> ()
        | ir -> Alcotest.failf "expected a hash group, got %a" Ir.pp ir);
    case "set operations: union, inter, diff" (fun () ->
        List.iter
          (fun op ->
            let q =
              Term.query
                (Term.Compose
                   ( Term.Setop op,
                     Term.Times
                       ( Term.proj Paper.city,
                         Term.proj (Term.Compose (Paper.city, Paper.addr)) ) ))
                (Value.Pair (Value.Named "A", Value.Named "P"))
            in
            differential (Pretty.setop_name op) q)
          [ Term.Union; Term.Inter; Term.Diff ]);
    case "aggregates agree, including the eager dedup barrier" (fun () ->
        (* city ∘ addr over P has duplicates in the stream; eager count
           must count distinct cities like the interpreter's set does *)
        List.iter
          (fun op ->
            let q =
              Term.query
                (Term.Compose
                   ( Term.Agg op,
                     Term.proj (Term.Compose (Paper.city, Paper.addr)) ))
                p_scan
            in
            differential ("agg-" ^ Pretty.agg_name op) q)
          [ Term.Count; Term.Max; Term.Min ]);
    case "sum of ages agrees under both dedup modes" (fun () ->
        let q =
          Term.query (Term.Compose (Term.Agg Term.Sum, Term.proj Paper.age))
            p_scan
        in
        differential "sum-ages" q);
    case "max of an empty set raises the interpreter's error" (fun () ->
        let q =
          Term.query (Term.Compose (Term.Agg Term.Max, Term.Kf (Value.set [])))
            Value.Unit
        in
        match Exec.run ~db:tiny_db q with
        | _ -> Alcotest.fail "expected Eval.Error"
        | exception Eval.Error msg ->
          Alcotest.check Alcotest.bool "message" true
            (contains msg "max of empty set"));
    case "sng, con, cf and pairf sharing" (fun () ->
        let expensive = Term.proj (Term.Compose (Paper.city, Paper.addr)) in
        let q =
          Term.query
            (Term.Compose
               ( Term.Setop Term.Inter,
                 Term.Pairf (Term.Id, Term.Id) ))
            (Value.Named "A")
        in
        differential "pairf-share" q;
        (* the shared pipeline input must appear as a Shared slot *)
        let rec has_shared = function
          | Ir.Shared _ -> true
          | Ir.Scan _ | Ir.Leaf _ -> false
          | Ir.Filter (_, s) | Ir.Map (_, s) | Ir.Flatten s
          | Ir.UnnestStage (_, _, s) | Ir.AggStage (_, s) | Ir.SngStage s
          | Ir.Scalar (_, s) ->
            has_shared s
          | Ir.IterEnv (_, _, a, b)
          | Ir.LoopJoin (_, _, a, b)
          | Ir.HashGroup { src = a; groups = b; _ }
          | Ir.Union (a, b)
          | Ir.Inter (a, b)
          | Ir.Diff (a, b)
          | Ir.PairNode (a, b) ->
            has_shared a || has_shared b
          | Ir.HashJoin { probe; build; _ } ->
            has_shared probe || has_shared build
          | Ir.Branch (_, i, a, b) ->
            has_shared i || has_shared a || has_shared b
        in
        ignore (has_shared (compile_ir q));
        (* ⟨id, id⟩ over the projection pipe: the pipe must materialize
           into a Shared slot, not re-run for each pair component *)
        let q2 =
          Term.query
            (Term.Compose
               ( Term.Agg Term.Count,
                 Term.Compose
                   ( Term.Setop Term.Union,
                     Term.Compose
                       (Term.Pairf (Term.Id, Term.Id), expensive) ) ))
            p_scan
        in
        differential "pairf-share-union" q2;
        Alcotest.check Alcotest.bool "shared slot in IR" true
          (has_shared (compile_ir q2));
        let q3 =
          Term.query
            (Term.Con (Paper.kp_t, Term.Sng, Term.Kf (Value.set [])))
            (Value.Int 7)
        in
        differential "con-sng" q3;
        let q4 =
          Term.query
            (Term.Cf (Term.Arith Term.Add, Value.Int 5))
            (Value.Int 37)
        in
        differential "cf-arith" q4);
    case "iter threads the environment through the loop" (fun () ->
        (* iter(gt ⊕ ⟨π1, age ∘ π2⟩, π2) ! [25, P]: persons younger than
           the environment constant *)
        let p =
          Term.Oplus
            ( Term.Gt,
              Term.Pairf (Term.Pi1, Term.Compose (Paper.age, Term.Pi2)) )
        in
        let q =
          Term.query
            (Term.Iter (p, Term.Pi2))
            (Value.Pair (Value.Int 25, Value.Named "P"))
        in
        differential "iter-env" q;
        match compile_ir q with
        | Ir.IterEnv _ -> ()
        | ir -> Alcotest.failf "expected an iter stage, got %a" Ir.pp ir);
  ]

(* --- every paper query, both stores --- *)

let paper_tests =
  [
    case "differential: every paper query on the tiny store" (fun () ->
        List.iter
          (fun (name, q) -> differential ~db:tiny_db name q)
          [
            ("t1k-source", Paper.t1k_source);
            ("t1k-target", Paper.t1k_target);
            ("t2k-source", Paper.t2k_source);
            ("t2k-mid", Paper.t2k_mid);
            ("t2k-target", Paper.t2k_target);
            ("k3", Paper.k3);
            ("k4", Paper.k4);
            ("k4-optimized", Paper.k4_optimized);
            ("kg1", Paper.kg1);
            ("kg1a", Paper.kg1a);
            ("kg1b", Paper.kg1b);
            ("kg1c", Paper.kg1c);
            ("kg2", Paper.kg2);
          ]);
    case "differential: every paper query on the generated store" (fun () ->
        List.iter
          (fun (name, q) -> differential ~db:gen_db name q)
          [
            ("t1k-source", Paper.t1k_source);
            ("t1k-target", Paper.t1k_target);
            ("t2k-source", Paper.t2k_source);
            ("t2k-target", Paper.t2k_target);
            ("k4", Paper.k4);
            ("kg1", Paper.kg1);
            ("kg2", Paper.kg2);
          ]);
    case "kg2 pipelines pairs of collections" (fun () ->
        (* the KG2 spine flows a pair of collections through
           nest ∘ (unnest × id) ∘ ⟨join, π1⟩ — the pair-aware lowering *)
        let _, stats = Exec.run ~db:gen_db Paper.kg2 in
        Alcotest.check Alcotest.bool "compiled" true
          (stats.Exec.backend = Exec.Compiled);
        Alcotest.check Alcotest.bool "has pipeline stages" true
          (stats.Exec.stages >= 3));
  ]

(* --- membership probes against a large loop-invariant set --- *)

let membership_tests =
  [
    case "membership against a large invariant set probes a hash table"
      (fun () ->
        (* 100 elements filtered against a 40-element constant set: above
           the linear-scan cutoff, so the compiled predicate must build
           one member table and probe it once per element. *)
        let db =
          [
            ("T", Value.set (List.init 100 Value.int));
            ("S", Value.set (List.init 40 (fun i -> Value.int (2 * i))));
          ]
        in
        let q =
          Term.query
            (Term.Iterate
               ( Term.Oplus
                   (Term.In, Term.Pairf (Term.Id, Term.Kf (Value.Named "S"))),
                 Term.Id ))
            (Value.Named "T")
        in
        differential ~db "membership filter" q;
        let v, stats = Exec.run ~backend:Exec.Compiled ~db q in
        Alcotest.check Alcotest.int "one probe per element" 100
          stats.Exec.probes;
        Alcotest.check Alcotest.int "one table build, not one per element" 40
          stats.Exec.builds;
        match Eval.finalize v with
        | Value.Set xs -> Alcotest.check Alcotest.int "evens below 80" 40 (List.length xs)
        | v -> Alcotest.failf "expected a set, got %a" Value.pp v);
  ]

(* --- the company workload through the whole pipeline --- *)

let company = Datagen.Company.generate Datagen.Company.default_params
let cdb = Datagen.Company.db company

let company_tests =
  [
    case "differential: optimized company plans, compiled vs Pipeline.run"
      (fun () ->
        List.iter
          (fun src ->
            let r =
              Optimizer.Pipeline.optimize_oql ~extents:[ "E"; "D" ] ~db:cdb
                src
            in
            let interp = Optimizer.Pipeline.run ~db:cdb r in
            let chosen = r.Optimizer.Pipeline.chosen in
            let compiled, stats =
              Exec.run ~dedup:chosen.Optimizer.Pipeline.dedup ~db:cdb
                chosen.Optimizer.Pipeline.query
            in
            Alcotest.check Alcotest.bool "no fallback" false
              stats.Exec.fell_back;
            check_agree ~db:cdb src compiled interp)
          [
            Datagen.Company.dept_roster_oql;
            Datagen.Company.rich_mentors_oql;
            Datagen.Company.mentor_pool_oql;
            Datagen.Company.city_salaries_oql;
            Datagen.Company.local_staff_oql;
            Datagen.Company.mentor_elite_oql;
            "select [d, sum(select e.salary from e in E where e.dept = d)] \
             from d in D";
          ]);
    case "closed membership subquery is hoisted, not re-run per element"
      (fun () ->
        (* [local_staff] filters |E| employees against a subquery over D
           that never mentions the employee.  The interpreter re-evaluates
           it per employee (>= |E| * |D| tuples); the compiled closures
           must evaluate it once, so the tuple count stays linear. *)
        let r =
          Optimizer.Pipeline.optimize_oql ~extents:[ "E"; "D" ] ~db:cdb
            Datagen.Company.local_staff_oql
        in
        let chosen = r.Optimizer.Pipeline.chosen in
        let compiled, stats =
          Exec.run ~backend:Exec.Compiled
            ~dedup:chosen.Optimizer.Pipeline.dedup ~db:cdb
            chosen.Optimizer.Pipeline.query
        in
        Alcotest.check Alcotest.bool "no fallback" false stats.Exec.fell_back;
        let employees = List.length company.Datagen.Company.employees
        and departments = List.length company.Datagen.Company.departments in
        Alcotest.check Alcotest.bool
          (Fmt.str "tuples %d stays below |E|*|D| = %d" stats.Exec.tuples
             (employees * departments))
          true
          (stats.Exec.tuples < employees * departments);
        check_agree ~db:cdb "hoisted ≡ interpreted" compiled
          (Optimizer.Pipeline.run ~db:cdb r));
    case "the untangled roster compiles to a hash join pipeline" (fun () ->
        let r =
          Optimizer.Pipeline.optimize_oql ~extents:[ "E"; "D" ] ~db:cdb
            Datagen.Company.dept_roster_oql
        in
        let untangled = Option.get r.Optimizer.Pipeline.untangled in
        let rec has_hash_join = function
          | Ir.HashJoin _ -> true
          | Ir.Scan _ | Ir.Leaf _ -> false
          | Ir.Filter (_, s) | Ir.Map (_, s) | Ir.Flatten s
          | Ir.UnnestStage (_, _, s) | Ir.AggStage (_, s) | Ir.SngStage s
          | Ir.Scalar (_, s) | Ir.Shared (_, s) ->
            has_hash_join s
          | Ir.IterEnv (_, _, a, b)
          | Ir.LoopJoin (_, _, a, b)
          | Ir.HashGroup { src = a; groups = b; _ }
          | Ir.Union (a, b)
          | Ir.Inter (a, b)
          | Ir.Diff (a, b)
          | Ir.PairNode (a, b) ->
            has_hash_join a || has_hash_join b
          | Ir.Branch (_, i, a, b) ->
            has_hash_join i || has_hash_join a || has_hash_join b
        in
        Alcotest.check Alcotest.bool "hash join in IR" true
          (has_hash_join (compile_ir untangled)));
  ]

(* --- fallback policy --- *)

let fallback_tests =
  [
    case "plans with holes fall back to the interpreter, counted" (fun () ->
        let q =
          Term.query
            (Term.Compose (Term.proj Paper.age, Term.Fhole "f"))
            p_scan
        in
        (match Exec.compile_opt q with
        | Error reason ->
          Alcotest.check Alcotest.bool "reason names the hole" true
            (contains reason "?f")
        | Ok _ -> Alcotest.fail "expected Unsupported");
        let before = Exec.fallback_count () in
        (* body that *runs* despite the unsupported spine: iterate whose
           predicate carries a hole never fires it on the empty set *)
        let q2 =
          Term.query
            (Term.Iterate (Term.Phole "p", Term.Id))
            (Value.set [])
        in
        let v, stats = Exec.run ~db:tiny_db q2 in
        Alcotest.check Alcotest.bool "fell back" true stats.Exec.fell_back;
        Alcotest.check Alcotest.bool "interp backend ran" true
          (stats.Exec.backend = Exec.Interp Eval.Hashed);
        Alcotest.check value "still correct (the oracle ran)"
          (Eval.eval_query ~db:tiny_db q2) v;
        Alcotest.check Alcotest.bool "fallback counted" true
          (Exec.fallback_count () > before));
    case "backend names round-trip" (fun () ->
        List.iter
          (fun b ->
            match Exec.backend_of_string (Exec.backend_name b) with
            | Ok b' ->
              Alcotest.check Alcotest.bool "round-trip" true (b = b')
            | Error e -> Alcotest.fail e)
          [ Exec.Compiled; Exec.Interp Eval.Hashed; Exec.Interp Eval.Naive ];
        match Exec.backend_of_string "vectorized" with
        | Error msg ->
          Alcotest.check Alcotest.bool "names the input" true
            (contains msg "vectorized")
        | Ok _ -> Alcotest.fail "expected an error");
  ]

(* --- qcheck: random plans and search-frontier plans --- *)

let qcheck_props =
  let open QCheck in
  let random_plan =
    Test.make ~name:"random well-typed plans: compiled ≡ interpreted"
      ~count:120
      (QCheck.make
         ~print:(fun i ->
           Aqua.Pretty.to_string (Datagen.Queries.query ~seed:i ~depth:3))
         QCheck.Gen.(int_bound 1_000_000))
      (fun i ->
        let e = Datagen.Queries.query ~seed:i ~depth:3 in
        let q = Translate.Compile.query e in
        let ok_eager =
          let compiled, _ = Exec.run ~dedup:Eval.Eager ~db:tiny_db q in
          List.for_all
            (fun backend ->
              Exec.agree ~db:tiny_db compiled
                (Eval.eval_query ~db:tiny_db ~backend ~dedup:Eval.Eager q))
            [ Eval.Naive; Eval.Hashed ]
        in
        let ok_deferred =
          let compiled, _ = Exec.run ~dedup:Eval.Deferred ~db:tiny_db q in
          Exec.agree ~db:tiny_db compiled
            (Eval.eval_query ~db:tiny_db ~backend:Eval.Hashed
               ~dedup:Eval.Deferred q)
        in
        ok_eager && ok_deferred)
  in
  let frontier_plan =
    (* walk a random path through the rewrite search space of a paper
       workload and execute the frontier plan reached: exactly the plans
       the optimizer would hand to the execution backend *)
    let roots =
      [| Paper.t1k_source; Paper.t2k_source; Paper.k4; Paper.kg1; Paper.kg2 |]
    in
    Test.make ~name:"search-frontier plans: compiled ≡ interpreted" ~count:80
      (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
      (fun seed ->
        let r = Datagen.Store.rng seed in
        let q = ref roots.(Datagen.Store.int r (Array.length roots)) in
        let steps = 1 + Datagen.Store.int r 4 in
        for _ = 1 to steps do
          match Optimizer.Search.successors Rules.Catalog.all !q with
          | [] -> ()
          | succs -> q := snd (List.nth succs (Datagen.Store.int r (List.length succs)))
        done;
        let q = !q in
        let compiled, _ = Exec.run ~dedup:Eval.Eager ~db:tiny_db q in
        List.for_all
          (fun backend ->
            Exec.agree ~db:tiny_db compiled
              (Eval.eval_query ~db:tiny_db ~backend ~dedup:Eval.Eager q))
          [ Eval.Naive; Eval.Hashed ])
  in
  [ random_plan; frontier_plan ]

let tests =
  stage_tests @ paper_tests @ membership_tests @ company_tests @ fallback_tests
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props

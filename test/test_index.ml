(* The engine's performance layer: head-symbol rule dispatch, hashed
   canonical dedup, memoized costing.  Correctness is equivalence: the
   indexed engine must produce the *identical* derivation to the naive
   engine, and hashed canonical keys must classify query pairs exactly as
   the legacy pretty-printed canonical strings do. *)

open Kola
open Util
module Engine = Rewrite.Engine
module Index = Rewrite.Index
module Search = Optimizer.Search

let paper_queries =
  [ Paper.t1k_source; Paper.t2k_source; Paper.k3; Paper.k4; Paper.kg1;
    Paper.kg2 ]

let trace_names (o : Engine.outcome) =
  List.map (fun s -> s.Engine.rule_name) o.Engine.trace

let run_both ?(fuel = 40) rules q =
  ( Engine.run ~indexed:false ~fuel rules q,
    Engine.run ~indexed:true ~fuel rules q )

let random_query i depth =
  Translate.Compile.query (Datagen.Queries.query ~seed:i ~depth)

(* Right-associate every composition chain: an associativity variant that
   canonical keys must identify with the original. *)
let rec right_assoc f =
  match f with
  | Term.Compose _ ->
    let rec build = function
      | [] -> Term.Id
      | [ g ] -> g
      | g :: gs -> Term.Compose (g, build gs)
    in
    build (List.map right_assoc (Term.unchain f))
  | f -> f

let tests =
  [
    case "indexed run equals naive run on the paper queries" (fun () ->
        List.iter
          (fun q ->
            let naive, indexed = run_both Rules.Catalog.all q in
            Alcotest.(check (list string))
              "same trace" (trace_names naive) (trace_names indexed);
            Alcotest.check query "same normal form" naive.Engine.query
              indexed.Engine.query;
            Alcotest.(check int)
              "same firings" naive.Engine.stats.Engine.firings
              indexed.Engine.stats.Engine.firings)
          paper_queries);
    case "index dispatch cuts attempts >= 3x on the Fig 4/6 derivations"
      (fun () ->
        List.iter
          (fun (name, q) ->
            let naive, indexed = run_both Rules.Catalog.all q in
            let r =
              float_of_int naive.Engine.stats.Engine.attempts
              /. float_of_int (max 1 indexed.Engine.stats.Engine.attempts)
            in
            Alcotest.check Alcotest.bool
              (Fmt.str "%s: %d naive vs %d indexed attempts (%.1fx)" name
                 naive.Engine.stats.Engine.attempts
                 indexed.Engine.stats.Engine.attempts r)
              true (r >= 3.))
          [ ("T1K", Paper.t1k_source); ("T2K", Paper.t2k_source);
            ("K4", Paper.k4) ]);
    case "candidate buckets preserve catalog order" (fun () ->
        let idx = Index.build Rules.Catalog.all in
        let cands =
          Index.candidates_func idx
            (Term.Compose (Term.Id, Term.Id))
        in
        let names = List.map (fun r -> r.Rewrite.Rule.name) cands in
        let catalog_names =
          List.filter_map
            (fun r ->
              if List.mem r.Rewrite.Rule.name names then
                Some r.Rewrite.Rule.name
              else None)
            Rules.Catalog.all
        in
        Alcotest.(check (list string)) "subsequence of the catalog"
          catalog_names names;
        (* compose-headed rules exist and leaf buckets are smaller *)
        Alcotest.check Alcotest.bool "compose bucket nonempty" true
          (names <> []);
        let leaf = Index.candidates_func idx Term.Pi1 in
        Alcotest.check Alcotest.bool "leaf bucket smaller" true
          (List.length leaf < List.length cands));
    case "step_once_indexed agrees with step_once rule by rule" (fun () ->
        let idx = Index.build Rules.Catalog.all in
        List.iter
          (fun q ->
            let naive = Engine.step_once Rules.Catalog.all q in
            let indexed = Engine.step_once_indexed idx q in
            match naive, indexed with
            | None, None -> ()
            | Some (n1, q1), Some (n2, q2) ->
              Alcotest.(check string) "same rule" n1 n2;
              Alcotest.check query "same result" q1 q2
            | _ -> Alcotest.fail "one engine fired, the other did not")
          paper_queries);
    case "canonical keys identify associativity variants" (fun () ->
        List.iter
          (fun q ->
            let v = { q with Term.body = right_assoc q.Term.body } in
            let k1 = Term.Canonical.of_query q in
            let k2 = Term.Canonical.of_query v in
            Alcotest.check Alcotest.bool "equal keys" true
              (Term.Canonical.equal k1 k2);
            Alcotest.(check int) "equal hashes" (Term.Canonical.hash k1)
              (Term.Canonical.hash k2))
          paper_queries);
    case "canonical keys separate distinct paper queries" (fun () ->
        let keys = List.map Term.Canonical.of_query paper_queries in
        List.iteri
          (fun i ki ->
            List.iteri
              (fun j kj ->
                if i <> j then
                  Alcotest.check Alcotest.bool "distinct" false
                    (Term.Canonical.equal ki kj))
              keys)
          keys);
    case "position cap truncation clears frontier_exhausted" (fun () ->
        (* three iterate-fusion windows; with max_positions = 1 the
           successor enumeration provably truncates *)
        let q =
          Term.query
            (Term.chain
               [
                 Term.Iterate (Term.Kp true, Term.Prim "city");
                 Term.Iterate (Term.Kp true, Term.Prim "addr");
                 Term.Iterate (Term.Kp true, Term.Id);
                 Term.Iterate (Term.Kp true, Term.Id);
               ])
            (Value.Named "P")
        in
        let base =
          { Search.default_config with
            rules = Rules.Catalog.rules [ "r11" ];
            max_depth = 1;
            max_states = 1_000 }
        in
        let capped = Search.explore ~config:{ base with max_positions = 1 } q in
        Alcotest.check Alcotest.bool "truncation reported" false
          capped.Search.frontier_exhausted;
        let full = Search.explore ~config:base q in
        Alcotest.check Alcotest.bool "no truncation at the default cap" true
          full.Search.frontier_exhausted);
    case "successors honours max_positions" (fun () ->
        let q =
          Term.query
            (Term.chain
               [
                 Term.Iterate (Term.Kp true, Term.Prim "city");
                 Term.Iterate (Term.Kp true, Term.Prim "addr");
                 Term.Iterate (Term.Kp true, Term.Id);
               ])
            (Value.Named "P")
        in
        let rules = Rules.Catalog.rules [ "r11" ] in
        let all = Search.successors rules q in
        let capped = Search.successors ~max_positions:1 rules q in
        Alcotest.check Alcotest.bool "more than one position" true
          (List.length all > 1);
        Alcotest.(check int) "capped to one" 1 (List.length capped));
    case "cost cache eliminates re-evaluation on a warm exploration"
      (fun () ->
        let cache = Optimizer.Cost.cache () in
        let hc = Optimizer.Cost.hc_cache () in
        let config =
          {
            Search.default_config with
            cost_cache = Some cache;
            hc_cost_cache = Some hc;
          }
        in
        let cold = Search.explore ~config Paper.t1k_source in
        Alcotest.check Alcotest.bool "cold run evaluates" true
          (cold.Search.cache_misses > 0);
        let warm = Search.explore ~config Paper.t1k_source in
        Alcotest.(check int) "warm run never evaluates" 0
          warm.Search.cache_misses;
        Alcotest.check Alcotest.bool "warm run hits" true
          (warm.Search.cache_hits > 0);
        Alcotest.check query "same best plan" cold.Search.best.Search.query
          warm.Search.best.Search.query);
    case "indexed explore finds the same best plan as naive explore"
      (fun () ->
        List.iter
          (fun q ->
            let naive =
              Search.explore
                ~config:{ Search.default_config with indexed = false }
                q
            in
            let indexed =
              Search.explore
                ~config:{ Search.default_config with indexed = true }
                q
            in
            Alcotest.check query "same best" naive.Search.best.Search.query
              indexed.Search.best.Search.query;
            Alcotest.(check int) "same states" naive.Search.explored
              indexed.Search.explored)
          [ Paper.t1k_source; Paper.k4 ]);
  ]

let props =
  let open QCheck in
  let arb depth =
    QCheck.make
      ~print:(fun i ->
        Kola.Pretty.query_to_string (random_query i depth))
      QCheck.Gen.(int_bound 1_000_000)
  in
  [
    Test.make ~count:50
      ~name:"indexed engine derives the identical trace on random queries"
      (arb 3)
      (fun i ->
        let q = random_query i 3 in
        let naive, indexed = run_both ~fuel:25 Rules.Catalog.all q in
        trace_names naive = trace_names indexed
        && Term.equal_query naive.Engine.query indexed.Engine.query
        && naive.Engine.stats.Engine.attempts
           >= indexed.Engine.stats.Engine.attempts);
    Test.make ~count:120
      ~name:"hashed canonical dedup classifies pairs like string canonical"
      (pair (arb 3) (pair (arb 3) bool))
      (fun (i, (j, use_variant)) ->
        let q1 = random_query i 3 in
        let q2 =
          if use_variant then
            { q1 with Term.body = right_assoc q1.Term.body }
          else random_query j 3
        in
        let strings_equal = Search.canonical q1 = Search.canonical q2 in
        let keys_equal =
          Term.Canonical.equal
            (Term.Canonical.of_query q1)
            (Term.Canonical.of_query q2)
        in
        strings_equal = keys_equal);
  ]

let tests = tests @ List.map (QCheck_alcotest.to_alcotest ~long:false) props

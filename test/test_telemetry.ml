(* The telemetry layer and the search deadline.  Two contracts matter:
   recording must be invisible — a traced exploration returns the
   bit-identical outcome of an untraced one, at any jobs count, on both
   engines — and a deadline must degrade gracefully: the outcome says
   [Deadline] and still carries a best-so-far state whose derivation
   [validate_path] accepts. *)

open Kola
open Util
module Search = Optimizer.Search
module Cost = Optimizer.Cost
module Telemetry = Kola_telemetry.Telemetry
module Saturate = Kola_egraph.Saturate

(* ------------------------------------------------------------------ *)
(* The recorder itself                                                 *)

let trace_of f = snd (Telemetry.collecting f)

let tests =
  [
    case "recording is a no-op when no session is active" (fun () ->
        Alcotest.(check bool) "disabled" false (Telemetry.enabled ());
        (* these must neither raise nor leak into a later session *)
        Telemetry.count "orphan";
        Telemetry.observe "orphan.d" 1.0;
        Telemetry.instant "orphan.evt";
        ignore (Telemetry.span "orphan.span" (fun () -> 0));
        let t = trace_of (fun () -> ()) in
        Alcotest.(check int) "no spans" 0 (List.length t.Telemetry.spans);
        Alcotest.(check int) "no counters" 0 (List.length t.Telemetry.counters));
    case "collecting returns the result and the merged trace" (fun () ->
        let r, t =
          Telemetry.collecting (fun () ->
              Telemetry.span "work" (fun () ->
                  Telemetry.count ~n:2 "x";
                  Telemetry.count "x";
                  Telemetry.observe "d" 1.5;
                  Telemetry.observe "d" 0.5;
                  Telemetry.instant ~args:[ ("k", "v") ] "evt";
                  41 + 1))
        in
        Alcotest.(check int) "result flows through" 42 r;
        Alcotest.(check bool) "session closed" false (Telemetry.enabled ());
        Alcotest.(check int) "one span" 1 (List.length t.Telemetry.spans);
        Alcotest.(check string) "span name" "work"
          (List.hd t.Telemetry.spans).Telemetry.name;
        Alcotest.(check (list (pair string int))) "counter summed"
          [ ("x", 3) ] t.Telemetry.counters;
        let d = List.assoc "d" t.Telemetry.dists in
        Alcotest.(check int) "dist n" 2 d.Telemetry.n;
        Alcotest.(check (float 1e-9)) "dist min" 0.5 d.Telemetry.min_v;
        Alcotest.(check (float 1e-9)) "dist max" 1.5 d.Telemetry.max_v;
        let m = List.hd t.Telemetry.marks in
        Alcotest.(check string) "mark name" "evt" m.Telemetry.mname;
        Alcotest.(check (list (pair string string))) "mark args"
          [ ("k", "v") ] m.Telemetry.margs);
    case "spans survive a raising body and aggregate by name" (fun () ->
        let t =
          trace_of (fun () ->
              ignore (Telemetry.span "step" (fun () -> 1));
              try Telemetry.span "step" (fun () -> failwith "boom")
              with Failure _ -> ())
        in
        match Telemetry.span_totals t with
        | [ ("step", calls, total_us) ] ->
          Alcotest.(check int) "both calls recorded" 2 calls;
          Alcotest.(check bool) "time accumulated" true (total_us >= 0.)
        | other ->
          Alcotest.failf "unexpected totals (%d rows)" (List.length other));
    case "the chrome exporter emits the events and escapes names" (fun () ->
        let t =
          trace_of (fun () ->
              ignore (Telemetry.span {|we"ird\name|} (fun () -> ()));
              Telemetry.count "search.positions";
              Telemetry.instant ~args:[ ("rule", "r11") ] "trunc")
        in
        let json = Telemetry.to_chrome t in
        Alcotest.(check bool) "traceEvents" true (contains json "traceEvents");
        Alcotest.(check bool) "quote escaped" true (contains json {|we\"ird|});
        Alcotest.(check bool) "backslash escaped" true
          (contains json {|\\name|});
        Alcotest.(check bool) "counter present" true
          (contains json "search.positions");
        Alcotest.(check bool) "instant args" true (contains json "r11"));
    case "a traced exploration records the search's own events" (fun () ->
        let t =
          trace_of (fun () ->
              ignore
                (Search.explore
                   ~config:
                     {
                       Search.default_config with
                       max_depth = 2;
                       max_states = 50;
                       cost_cache = Some (Cost.cache ());
                       hc_cost_cache = Some (Cost.hc_cache ());
                     }
                   Paper.t1k_source))
        in
        Alcotest.(check bool) "explore span" true
          (List.exists
             (fun (s : Telemetry.span_ev) -> s.Telemetry.name = "search.explore")
             t.Telemetry.spans);
        Alcotest.(check bool) "positions counted" true
          (match List.assoc_opt "search.positions" t.Telemetry.counters with
          | Some n -> n > 0
          | None -> false);
        Alcotest.(check bool) "per-rule counters" true
          (List.exists
             (fun (name, _) ->
               contains name "rule.fire." || contains name "rule.miss.")
             t.Telemetry.counters);
        Alcotest.(check bool) "stop instant" true
          (List.exists
             (fun (m : Telemetry.mark) -> m.Telemetry.mname = "search.stop")
             t.Telemetry.marks));
  ]

(* ------------------------------------------------------------------ *)
(* Deadlines                                                           *)

(* Replay a derivation's rule names into the stepwise form
   [validate_path] checks: at each step, search the successors for a
   firing of the named rule that lets the rest of the path replay. *)
let rec replay rules q = function
  | [] -> Some []
  | name :: rest ->
    Search.successors rules q
    |> List.filter (fun (rn, _) -> rn = name)
    |> List.find_map (fun (rn, q') ->
           Option.map (fun steps -> (rn, q') :: steps) (replay rules q' rest))

let deadline_tests =
  [
    case "an expired deadline returns Deadline with a valid best-so-far"
      (fun () ->
        let o =
          Search.explore
            ~config:
              {
                Search.default_config with
                max_depth = 8;
                max_states = 1_000_000;
                deadline = Some 0.02;
              }
            Paper.kg1
        in
        Alcotest.(check string) "stop reason" "deadline"
          (Search.stop_reason_label o.Search.stop);
        Alcotest.(check bool) "frontier not exhausted" false
          o.Search.frontier_exhausted;
        (* the best-so-far derivation must replay and validate *)
        match replay Rules.Catalog.all Paper.kg1 o.Search.best.Search.path with
        | None -> Alcotest.fail "best path does not replay"
        | Some steps ->
          Alcotest.(check bool) "validate_path accepts" true
            (Search.validate_path Paper.kg1 steps);
          let final =
            match List.rev steps with [] -> Paper.kg1 | (_, q) :: _ -> q
          in
          Alcotest.check query "replay reaches the best state"
            o.Search.best.Search.query final);
    case "a generous deadline never interrupts" (fun () ->
        let o =
          Search.explore
            ~config:
              {
                Search.default_config with
                max_depth = 2;
                max_states = 10_000;
                deadline = Some 3600.;
              }
            Paper.t1k_source
        in
        Alcotest.(check string) "exhausted" "exhausted"
          (Search.stop_reason_label o.Search.stop);
        Alcotest.(check bool) "flag agrees" true o.Search.frontier_exhausted);
    case "a state budget reports Budget, not Deadline" (fun () ->
        let o =
          Search.explore
            ~config:
              { Search.default_config with max_depth = 8; max_states = 2 }
            Paper.kg1
        in
        Alcotest.(check string) "budget" "budget"
          (Search.stop_reason_label o.Search.stop));
    case "the egraph engine maps a tripped time budget to Deadline"
      (fun () ->
        let o =
          Search.explore
            ~config:
              {
                Search.default_config with
                engine = Search.Egraph;
                deadline = Some 0.02;
              }
            Paper.kg1
        in
        Alcotest.(check string) "deadline" "deadline"
          (Search.stop_reason_label o.Search.stop);
        match o.Search.saturation with
        | Some s ->
          Alcotest.(check string) "saturation stopped on time" "time-budget"
            (Saturate.stop_reason_label s.Saturate.stop)
        | None -> Alcotest.fail "no saturation stats under Egraph");
  ]

(* ------------------------------------------------------------------ *)
(* Tracing invariance: qcheck over random queries                      *)

let random_query i depth =
  Translate.Compile.query (Datagen.Queries.query ~seed:i ~depth)

(* Fresh caches per run: the traced and untraced runs must not feed each
   other through the shared cost cache. *)
let bfs_config jobs =
  {
    Search.default_config with
    max_depth = 2;
    max_states = 60;
    jobs;
    cost_cache = Some (Cost.cache ());
    hc_cost_cache = Some (Cost.hc_cache ());
  }

(* A huge time budget and tight node/iteration budgets keep the
   saturation stop reason deterministic, so the signatures can include
   it. *)
let egraph_config () =
  {
    Search.default_config with
    engine = Search.Egraph;
    egraph_budgets =
      { Saturate.max_enodes = 2_000; max_iterations = 6; max_millis = 1e9 };
  }

(* Everything deterministic in the outcome; wall-clock fields and the
   globally-shared intern-table accounting are excluded. *)
let bfs_signature (o : Search.outcome) =
  ( Pretty.query_to_string o.Search.best.Search.query,
    o.Search.best.Search.path,
    o.Search.best.Search.cost,
    o.Search.explored,
    o.Search.seen_states,
    o.Search.frontier_exhausted,
    Search.stop_reason_label o.Search.stop )

let egraph_signature (o : Search.outcome) =
  let s =
    match o.Search.saturation with
    | Some s -> s
    | None -> failwith "no saturation stats"
  in
  ( Pretty.query_to_string o.Search.best.Search.query,
    o.Search.best.Search.path,
    o.Search.best.Search.cost,
    ( s.Saturate.iterations,
      s.Saturate.e_nodes,
      s.Saturate.e_classes,
      s.Saturate.unions,
      Saturate.stop_reason_label s.Saturate.stop ) )

let traced_equals_untraced signature mk_config q =
  let plain = Search.explore ~config:(mk_config ()) q in
  let traced, _trace =
    Telemetry.collecting (fun () -> Search.explore ~config:(mk_config ()) q)
  in
  signature plain = signature traced

let props =
  let open QCheck in
  let arb depth =
    QCheck.make
      ~print:(fun i -> Pretty.query_to_string (random_query i depth))
      QCheck.Gen.(int_bound 1_000_000)
  in
  [
    Test.make ~count:12
      ~name:"tracing never changes a BFS outcome (jobs 1 and 4)" (arb 2)
      (fun i ->
        let q = random_query i 2 in
        List.for_all
          (fun jobs ->
            traced_equals_untraced bfs_signature (fun () -> bfs_config jobs) q)
          [ 1; 4 ]);
    Test.make ~count:8
      ~name:"tracing never changes an egraph outcome" (arb 2)
      (fun i ->
        let q = random_query i 2 in
        traced_equals_untraced egraph_signature egraph_config q);
  ]

let tests =
  tests @ deadline_tests
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) props

(* Shared fixtures and Alcotest testables. *)

open Kola

let tiny = Datagen.Store.tiny ()
let tiny_db = Datagen.Store.db tiny

let gen_store = Datagen.Store.generate Datagen.Store.default_params
let gen_db = Datagen.Store.db gen_store

let value : Value.t Alcotest.testable =
  Alcotest.testable Value.pp Value.equal

let func : Term.func Alcotest.testable =
  Alcotest.testable Pretty.pp_func Term.equal_func_assoc

let pred : Term.pred Alcotest.testable =
  Alcotest.testable Pretty.pp_pred Term.equal_pred_assoc

let query : Term.query Alcotest.testable =
  Alcotest.testable Pretty.pp_query Term.equal_query_assoc

let ty : Ty.t Alcotest.testable = Alcotest.testable Ty.pp Ty.equal

let aqua : Aqua.Ast.expr Alcotest.testable =
  Alcotest.testable Aqua.Pretty.pp Aqua.Vars.alpha_equal

let eval_tiny ?backend q = Eval.eval_query ~db:tiny_db ?backend q
let eval_gen ?backend q = Eval.eval_query ~db:gen_db ?backend q

(* Resolve Named extents so results compare structurally. *)
let resolved db v = Eval.deep_resolve (Eval.ctx ~db ()) v

let check_sem_equal ?(db = tiny_db) msg q1 q2 =
  Alcotest.check value msg
    (resolved db (Eval.eval_query ~db q1))
    (resolved db (Eval.eval_query ~db q2))

let int i = Value.Int i
let pair = Value.pair
let set = Value.set

let case name f = Alcotest.test_case name `Quick f

(* Substring check for error-message assertions. *)
let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

(* Run the paper's tiny store through an AQUA expr and a KOLA query and
   compare. *)
let check_translation ?(db = tiny_db) msg e =
  let q = Translate.Compile.query e in
  Alcotest.check value msg
    (resolved db (Aqua.Eval.eval_closed ~db e))
    (resolved db (Eval.eval_query ~db q))

(* Runtime-loadable COKO rule packs: load, certify (exhaustively at small
   scope), persist certificates, and search with pack rules shadowing the
   compiled-in catalog — with identical outcomes when the pack is a
   textual restatement of catalog rules. *)

open Util
module Cert = Rules.Cert
module Pack = Coko.Pack
module Search = Optimizer.Search

let find_pack name =
  List.find Sys.file_exists
    [
      "coko/" ^ name;
      "../coko/" ^ name;
      "../../coko/" ^ name;
      "../../../coko/" ^ name;
    ]

let exhaustive (v : Cert.verdict) =
  match v.Cert.vmode with Cert.Exhaustive _ -> true | Cert.Sampled -> false

(* A pack that textually restates catalog rules (r1, r2, r5, r11 — the
   T1K winning derivation fires r11 and r5, so shadowing is actually
   exercised on the winning path). *)
let restatement_src =
  "-- catalog restatement, rule for rule\n\
   RULE r1: ?f o id --> ?f\n\
   RULE r2: id o ?f --> ?f\n\
   RULE r5: Kp(T) & ?p --> ?p\n\
   RULE r11: iterate(?p, ?f) o iterate(?q, ?g)\n\
  \         --> iterate(?q & (?p (+) ?g), ?f o ?g)\n"

let r13_pack_src =
  "RULE r13-pack: ?p (+) <?f, Kf(?k)> --> Cp(?p^-1, ?k) (+) ?f\n"

let tests =
  [
    case "the shipped hidden_join.coko admits as a pack" (fun () ->
        let pack = Pack.load (find_pack "hidden_join.coko") in
        match Pack.admit pack with
        | Error _ -> Alcotest.fail "expected admission"
        | Ok a ->
          Alcotest.check Alcotest.bool "all verdicts ok" true
            (List.for_all (fun (v : Cert.verdict) -> v.Cert.ok) a.Pack.verdicts);
          Alcotest.check Alcotest.bool "certified exhaustively" true
            (List.for_all exhaustive a.Pack.verdicts));
    case "a precondition-using pack certifies exhaustively" (fun () ->
        let pack = Pack.load (find_pack "inj_inter.coko") in
        match Pack.admit pack with
        | Error _ -> Alcotest.fail "expected admission"
        | Ok a -> (
          match a.Pack.verdicts with
          | [ v ] ->
            Alcotest.check Alcotest.bool "ok" true v.Cert.ok;
            Alcotest.check Alcotest.bool "exhaustive" true (exhaustive v);
            Alcotest.check Alcotest.bool "instances pruned by precondition"
              true
              (v.Cert.vinstances > 0)
          | vs -> Alcotest.failf "expected one verdict, got %d" (List.length vs)));
    case "a restated catalog rule has the catalog rule's fingerprint" (fun () ->
        let pack = Pack.of_string restatement_src in
        List.iter
          (fun (r : Rewrite.Rule.t) ->
            let catalog = Rules.Catalog.find_exn r.Rewrite.Rule.name in
            Alcotest.check Alcotest.string r.Rewrite.Rule.name
              (Cert.fingerprint catalog) (Cert.fingerprint r))
          (Pack.rules pack));
    case "pack shadowing preserves search outcomes on both engines" (fun () ->
        let pack = Pack.of_string restatement_src in
        let rules =
          Pack.shadow ~base:Rules.Catalog.all (Pack.rules pack)
        in
        List.iter
          (fun engine ->
            List.iter
              (fun (name, q) ->
                let explore rules =
                  Search.explore
                    ~config:{ Search.default_config with engine; rules }
                    q
                in
                let base = explore Search.default_config.Search.rules in
                let packed = explore rules in
                let label what =
                  Fmt.str "%s/%s %s"
                    (match engine with
                    | Search.Bfs -> "bfs"
                    | Search.Egraph -> "egraph")
                    name what
                in
                Alcotest.check query (label "plan")
                  base.Search.best.Search.query packed.Search.best.Search.query;
                Alcotest.check (Alcotest.float 1e-9) (label "cost")
                  base.Search.best.Search.cost packed.Search.best.Search.cost;
                Alcotest.check Alcotest.(list string) (label "path")
                  base.Search.best.Search.path packed.Search.best.Search.path)
              [ ("t1k", Kola.Paper.t1k_source); ("k4", Kola.Paper.k4) ])
          [ Search.Bfs; Search.Egraph ])
    ;
    case "the paper's printed rule 13 as a pack is rejected" (fun () ->
        let pack = Pack.of_string r13_pack_src in
        match Pack.admit pack with
        | Ok _ -> Alcotest.fail "expected rejection"
        | Error a -> (
          match Pack.rejected a with
          | [ v ] ->
            Alcotest.check Alcotest.bool "refuted" false v.Cert.ok;
            Alcotest.check Alcotest.string "same defect the catalog records"
              (Cert.fingerprint Rules.Basic.r13_paper)
              v.Cert.fingerprint;
            (match v.Cert.reason with
            | Some reason ->
              Alcotest.check Alcotest.bool "counterexample surfaced" true
                (contains reason "?f :=")
            | None -> Alcotest.fail "expected a rendered counterexample")
          | vs ->
            Alcotest.failf "expected one rejection, got %d" (List.length vs)));
    case "certificates persist: cold misses, warm load hits" (fun () ->
        let path = Filename.temp_file "kola-cert" ".cache" in
        let pack = Pack.load (find_pack "inj_inter.coko") in
        let cold = Cert.Cache.load path in
        (match Pack.admit ~cache:cold pack with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "cold admission failed");
        Cert.Cache.save cold;
        Alcotest.check Alcotest.int "cold run misses once" 1
          (Cert.Cache.misses cold);
        Alcotest.check Alcotest.int "cold run never hits" 0
          (Cert.Cache.hits cold);
        let warm = Cert.Cache.load path in
        (match Pack.admit ~cache:warm pack with
        | Ok a ->
          Alcotest.check Alcotest.bool "verdict replayed from cache" true
            (List.for_all
               (fun (v : Cert.verdict) -> v.Cert.from_cache)
               a.Pack.verdicts)
        | Error _ -> Alcotest.fail "warm admission failed");
        Alcotest.check Alcotest.int "warm run hits once" 1
          (Cert.Cache.hits warm);
        Alcotest.check Alcotest.int "warm run never misses" 0
          (Cert.Cache.misses warm);
        Sys.remove path);
    case "certification is seed-stable" (fun () ->
        let rule = Rules.Catalog.find_exn "r9" in
        let run () = Cert.certify ~seed:7 ~samples:25 ~inputs:8 rule in
        let a = run () and b = run () in
        Alcotest.check Alcotest.int "instances" a.Cert.instances
          b.Cert.instances;
        Alcotest.check Alcotest.int "checks" a.Cert.checks b.Cert.checks;
        Alcotest.check Alcotest.bool "verdict" (Cert.certified a)
          (Cert.certified b));
    case "the sampler draws deterministically from a seeded rng" (fun () ->
        let draw () =
          let rng = Datagen.Store.rng 11 in
          List.init 20 (fun _ ->
              Cert.value_of_ty rng Kola.Ty.(Set (Pair (Int, Int))))
        in
        Alcotest.check
          Alcotest.(list (option value))
          "same seed, same values" (draw ()) (draw ()));
    case "fingerprints ignore the rule name" (fun () ->
        let r1 = Rules.Catalog.find_exn "r1" in
        let renamed = { r1 with Rewrite.Rule.name = "anything-else" } in
        Alcotest.check Alcotest.string "equal" (Cert.fingerprint r1)
          (Cert.fingerprint renamed));
    case "an RHS-only hole is a positioned load error" (fun () ->
        match Pack.of_string "RULE bad: id o ?f --> ?g\n" with
        | exception Coko.Syntax.Error msg ->
          Alcotest.check Alcotest.bool "line number" true
            (contains msg "line 1");
          Alcotest.check Alcotest.bool "names the hole" true
            (contains msg "?g is never bound")
        | _ -> Alcotest.fail "expected a load error");
    case "an unknown precondition hole is a positioned load error" (fun () ->
        match
          Pack.of_string "GIVEN injective(?g)\nRULE b3: id o ?f --> ?f\n"
        with
        | exception Coko.Syntax.Error msg ->
          Alcotest.check Alcotest.bool "line number" true
            (contains msg "line 2");
          Alcotest.check Alcotest.bool "names the hole" true
            (contains msg "unknown hole ?g")
        | _ -> Alcotest.fail "expected a load error");
    case "an unknown property is a positioned load error" (fun () ->
        match Pack.of_string "GIVEN bogus(?f)\nRULE b4: id o ?f --> ?f\n" with
        | exception Coko.Syntax.Error msg ->
          Alcotest.check Alcotest.bool "lists accepted names" true
            (contains msg "unknown property bogus"
            && contains msg "injective")
        | _ -> Alcotest.fail "expected a load error");
    case "shadow replaces in place and appends new rules" (fun () ->
        let base = Rules.Catalog.rules [ "r1"; "r2"; "r3" ] in
        let pack = Pack.of_string restatement_src in
        let shadowed = Pack.shadow ~base (Pack.rules pack) in
        Alcotest.check
          Alcotest.(list string)
          "order preserved, new rules appended"
          [ "r1"; "r2"; "r3"; "r5"; "r11" ]
          (List.map (fun (r : Rewrite.Rule.t) -> r.Rewrite.Rule.name) shadowed));
  ]

(* The end-to-end optimizer: plan enumeration, cost-based choice, and
   correctness of whatever plan is chosen. *)

open Kola
open Util

let garage_src =
  "select [v, flatten(select p.grgs from p in P where v in p.cars)] from v in V"

let tests =
  [
    case "the garage query untangles and the hashed plan wins" (fun () ->
        let db =
          Datagen.Store.db
            (Datagen.Store.generate
               { Datagen.Store.default_params with people = 80; vehicles = 50; seed = 3 })
        in
        let r = Optimizer.Pipeline.optimize_oql ~db garage_src in
        Alcotest.check Alcotest.bool "untangled" true (Option.is_some r.untangled);
        Alcotest.check Alcotest.string "untangled label" "untangled"
          r.chosen.Optimizer.Pipeline.label;
        (match r.chosen.Optimizer.Pipeline.backend with
        | Eval.Hashed -> ()
        | Eval.Naive -> Alcotest.fail "expected the hashed backend");
        Alcotest.check value "result correct"
          (resolved db (Aqua.Eval.eval_closed ~db r.aqua))
          (resolved db (Optimizer.Pipeline.run ~db r)));
    case "every candidate plan computes the same result" (fun () ->
        let r = Optimizer.Pipeline.optimize_oql ~db:tiny_db garage_src in
        let expected = resolved tiny_db (Aqua.Eval.eval_closed ~db:tiny_db r.aqua) in
        List.iter
          (fun (c : Optimizer.Pipeline.plan) ->
            Alcotest.check value
              (Fmt.str "plan %s/%s/%s" c.label
                 (Optimizer.Pipeline.backend_name c.backend)
                 (Optimizer.Pipeline.dedup_name c.dedup))
              expected
              (resolved tiny_db
                 (Eval.eval_query ~db:tiny_db ~backend:c.backend
                    ~dedup:c.dedup c.query)))
          r.candidates);
    case "non-hidden-join queries still optimize (no untangled plan)"
      (fun () ->
        let r =
          Optimizer.Pipeline.optimize_oql ~db:tiny_db
            "select p.age from p in P where p.age > 20"
        in
        Alcotest.check Alcotest.bool "no untangled plan" true
          (Option.is_none r.untangled);
        Alcotest.check value "still correct"
          (resolved tiny_db (Aqua.Eval.eval_closed ~db:tiny_db r.aqua))
          (resolved tiny_db (Optimizer.Pipeline.run ~db:tiny_db r)));
    case "the untangled chosen cost is far below the original naive cost"
      (fun () ->
        let db =
          Datagen.Store.db
            (Datagen.Store.generate
               { Datagen.Store.default_params with people = 150; vehicles = 90; seed = 13 })
        in
        let r = Optimizer.Pipeline.optimize_oql ~db garage_src in
        let cost_of label backend =
          let c =
            List.find
              (fun (c : Optimizer.Pipeline.plan) ->
                c.label = label && c.backend = backend)
              r.candidates
          in
          c.cost.Optimizer.Cost.weighted
        in
        let naive = cost_of "original" Eval.Naive in
        let hashed = cost_of "untangled" Eval.Hashed in
        Alcotest.check Alcotest.bool
          (Fmt.str "hashed %.0f at least 5x below naive %.0f" hashed naive)
          true
          (hashed *. 5. < naive));
    case "the report's rule trace is non-empty and names catalog rules"
      (fun () ->
        let r = Optimizer.Pipeline.optimize_oql ~db:tiny_db garage_src in
        Alcotest.check Alcotest.bool "trace" true (List.length r.trace > 5);
        List.iter
          (fun (s : Rewrite.Engine.step) ->
            let base =
              match Filename.chop_suffix_opt ~suffix:"-1" s.rule_name with
              | Some b -> b
              | None -> s.rule_name
            in
            Alcotest.check Alcotest.bool
              (Fmt.str "rule %s in catalog" s.rule_name)
              true
              (Option.is_some (Rules.Catalog.find base)))
          r.trace);
    case "cost measurement is deterministic" (fun () ->
        let _, c1 = Optimizer.Cost.measure ~db:tiny_db Paper.kg1 in
        let _, c2 = Optimizer.Cost.measure ~db:tiny_db Paper.kg1 in
        Alcotest.check Alcotest.int "tuples" c1.Optimizer.Cost.tuples
          c2.Optimizer.Cost.tuples);
    case "re-optimizing hits the shared plan cache, same costs" (fun () ->
        let plan_cache = Optimizer.Cost.plan_cache () in
        let r1 =
          Optimizer.Pipeline.optimize_oql ~plan_cache ~db:tiny_db garage_src
        in
        Alcotest.check Alcotest.int "cold run: every candidate evaluated"
          (List.length r1.candidates)
          r1.Optimizer.Pipeline.cost_cache_misses;
        Alcotest.check Alcotest.int "cold run: no hits" 0
          r1.Optimizer.Pipeline.cost_cache_hits;
        let r2 =
          Optimizer.Pipeline.optimize_oql ~plan_cache ~db:tiny_db garage_src
        in
        Alcotest.check Alcotest.int "warm run: every candidate served"
          (List.length r2.candidates)
          r2.Optimizer.Pipeline.cost_cache_hits;
        Alcotest.check Alcotest.int "warm run: nothing re-evaluated" 0
          r2.Optimizer.Pipeline.cost_cache_misses;
        List.iter2
          (fun (a : Optimizer.Pipeline.plan) (b : Optimizer.Pipeline.plan) ->
            Alcotest.(check (float 0.))
              (Fmt.str "%s %s cost unchanged" a.label
                 (Optimizer.Pipeline.backend_name a.backend))
              a.cost.Optimizer.Cost.weighted b.cost.Optimizer.Cost.weighted)
          r1.candidates r2.candidates;
        (* a different database invalidates the whole cache *)
        let r3 =
          Optimizer.Pipeline.optimize_oql ~plan_cache ~db:gen_db garage_src
        in
        Alcotest.check Alcotest.int "new db: cold again" 0
          r3.Optimizer.Pipeline.cost_cache_hits);
  ]

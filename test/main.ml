(* Test runner: one suite per module, experiment ids in DESIGN.md. *)

let () =
  Alcotest.run "kola"
    [
      ("value", Test_value.tests);
      ("eval (Tables 1-2, E-T1/E-T2)", Test_eval.tests);
      ("typing", Test_typing.tests);
      ("term", Test_term.tests);
      ("match", Test_match.tests);
      ("strategy", Test_strategy.tests);
      ("props (Sec 4.2)", Test_props.tests);
      ("rules-cert (E-C2)", Test_rules_cert.tests);
      ("rules-lint", Test_lint.tests);
      ("rules-paper-instances (E-F5)", Test_rules_paper.tests);
      ("fig4 (E-F4)", Test_fig4.tests);
      ("fig6 (E-F6)", Test_fig6.tests);
      ("garage (E-F3)", Test_garage.tests);
      ("hidden-join (E-F7/E-F8)", Test_hidden_join.tests);
      ("translate (E-C1)", Test_translate.tests);
      ("aqua", Test_aqua.tests);
      ("baseline (E-F1/E-F2)", Test_baseline.tests);
      ("oql", Test_oql.tests);
      ("optimizer", Test_optimizer.tests);
      ("count-bug (E-C4)", Test_count_bug.tests);
      ("coko", Test_coko.tests);
      ("store", Test_store.tests);
      ("parse", Test_parse.tests);
      ("coko-syntax", Test_syntax.tests);
      ("rule-packs (runtime-loadable, certified)", Test_rule_packs.tests);
      ("bags (Sec 6 extension)", Test_bags.tests);
      ("rules-extra (E-C3)", Test_rules_extra.tests);
      ("monolithic-ablation", Test_monolithic.tests);
      ("engine-soundness", Test_engine_sound.tests);
      ("search (COKO motivation)", Test_search.tests);
      ("engine-index (perf layer)", Test_index.tests);
      ("engine-hashcons (interned core)", Test_hashcons.tests);
      ("engine-parallel (domain pool)", Test_parallel.tests);
      ("engine-egraph (equality saturation)", Test_egraph.tests);
      ("company (second schema)", Test_company.tests);
      ("telemetry (spans, counters, deadlines)", Test_telemetry.tests);
      ("server (kolaoptd serving layer)", Test_server.tests);
      ("exec (compiled backend)", Test_exec.tests);
      ("columnar (column store + morsel kernels)", Test_columnar.tests);
    ]

(* The data substrate: deterministic generation, schema conformance. *)

open Kola
open Util

let params = Datagen.Store.default_params

let tests =
  [
    case "generation is deterministic in the seed" (fun () ->
        let a = Datagen.Store.generate params in
        let b = Datagen.Store.generate params in
        Alcotest.check value "same P"
          (List.assoc "P" (Datagen.Store.db a))
          (List.assoc "P" (Datagen.Store.db b)));
    case "different seeds differ in content (oids aside)" (fun () ->
        (* object equality is oid-based, so compare attribute values *)
        let ages s =
          Eval.eval_query ~db:(Datagen.Store.db s)
            (Term.query (Term.Iterate (Term.Kp true,
               Term.Pairf (Term.Prim "name", Term.Prim "age"))) (Value.Named "P"))
        in
        let a = Datagen.Store.generate params in
        let b = Datagen.Store.generate { params with seed = params.seed + 1 } in
        Alcotest.check Alcotest.bool "differ" false
          (Value.equal (ages a) (ages b)));
    case "cardinalities match the parameters" (fun () ->
        let s = Datagen.Store.generate { params with people = 23; vehicles = 7 } in
        Alcotest.check Alcotest.int "people" 23 (List.length s.Datagen.Store.persons);
        Alcotest.check Alcotest.int "vehicles" 7 (List.length s.Datagen.Store.vehicles));
    case "every person satisfies the schema" (fun () ->
        let s = Datagen.Store.generate params in
        List.iter
          (fun p ->
            List.iter
              (fun attr ->
                Alcotest.check Alcotest.bool attr true
                  (Option.is_some (Value.field attr p)))
              [ "name"; "age"; "addr"; "child"; "cars"; "grgs" ])
          s.Datagen.Store.persons);
    case "paper queries type-check against generated stores" (fun () ->
        (* evaluating KG1 and K4 exercises all attributes *)
        ignore (eval_gen Paper.kg1);
        ignore (eval_gen Paper.k4));
    case "rng: int bounds respected" (fun () ->
        let r = Datagen.Store.rng 7 in
        for _ = 1 to 1000 do
          let x = Datagen.Store.int r 10 in
          if x < 0 || x >= 10 then Alcotest.failf "out of range %d" x
        done);
    case "random query generator produces closed, translatable queries"
      (fun () ->
        List.iter
          (fun e ->
            Alcotest.check Alcotest.bool "closed" true
              (Aqua.Vars.S.is_empty (Aqua.Vars.free_vars e));
            ignore (Translate.Compile.query e))
          (Datagen.Queries.suite ~count:50 ~seed:1 ~depth:4));
    case "tiny store is the hand-audited fixture" (fun () ->
        let s = Datagen.Store.tiny () in
        Alcotest.check Alcotest.int "4 persons" 4 (List.length s.Datagen.Store.persons);
        Alcotest.check Alcotest.int "3 vehicles" 3 (List.length s.Datagen.Store.vehicles));
    case "scaled store is deterministic in the seed and fully sized"
      (fun () ->
        let a = Datagen.Store.scaled ~seed:5 3_000 in
        let b = Datagen.Store.scaled ~seed:5 3_000 in
        Alcotest.check value "same P"
          (List.assoc "P" (Datagen.Store.db a))
          (List.assoc "P" (Datagen.Store.db b));
        Alcotest.check Alcotest.int "persons" 3_000
          (List.length a.Datagen.Store.persons));
    case "scaled store rejects bad sizes with descriptive errors" (fun () ->
        let expect size fragment =
          match Datagen.Store.scaled size with
          | _ -> Alcotest.failf "size %d: expected Invalid_argument" size
          | exception Invalid_argument msg ->
            Alcotest.check Alcotest.bool
              (Fmt.str "size %d names the problem (%s)" size msg)
              true (contains msg fragment)
        in
        expect 0 "positive";
        expect (-4) "non-negative";
        expect (Datagen.Store.max_scaled_size + 1) "refusing to truncate");
    case "a malformed row fails with a diagnosable message" (fun () ->
        (* row deepening used to die on [assert false]; now the error says
           which pass choked and on what *)
        match
          Datagen.Store.obj_fields ~context:"Datagen.Store.generate: person row"
            (Value.Int 42)
        with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument msg ->
          Alcotest.check Alcotest.bool "names the pass" true
            (contains msg "person row");
          Alcotest.check Alcotest.bool "shows the value" true
            (contains msg "42"));
  ]

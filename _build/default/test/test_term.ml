(* Term utilities: chains, reassociation, sizes, holes. *)

open Kola
open Kola.Term
open Util

let tests =
  [
    case "chain/unchain round-trip" (fun () ->
        let parts = [ Flat; Iterate (Kp true, Prim "age"); Id; Pi1 ] in
        Alcotest.check Alcotest.int "length" 4
          (List.length (unchain (chain parts)));
        Alcotest.check func "round" (chain parts) (chain (unchain (chain parts))));
    case "unchain flattens arbitrary associativity" (fun () ->
        let left = Compose (Compose (Pi1, Pi2), Flat) in
        let right = Compose (Pi1, Compose (Pi2, Flat)) in
        Alcotest.check Alcotest.int "same parts" (List.length (unchain left))
          (List.length (unchain right));
        Alcotest.check func "assoc-equal" left right);
    case "equal_func_assoc ignores composition grouping" (fun () ->
        let a = Compose (Compose (Prim "city", Prim "addr"), Id) in
        let b = Compose (Prim "city", Compose (Prim "addr", Id)) in
        Alcotest.check Alcotest.bool "equal" true (equal_func_assoc a b);
        Alcotest.check Alcotest.bool "strict differs" false (equal_func a b));
    case "reassoc recurses under formers" (fun () ->
        let inner = Compose (Pi1, Compose (Pi2, Flat)) in
        let t = Pairf (inner, Id) in
        match reassoc_func t with
        | Pairf (Compose (Compose (Pi1, Pi2), Flat), Id) -> ()
        | f -> Alcotest.failf "unexpected %a" Pretty.pp_func f);
    case "size counts nodes on both sorts" (fun () ->
        Alcotest.check Alcotest.int "iterate" 3
          (size_func (Iterate (Kp true, Id)));
        Alcotest.check Alcotest.int "oplus" 3
          (size_pred (Oplus (Gt, Pi1))));
    case "holes_func reports kinds and is duplicate-free" (fun () ->
        let f = Pairf (Fhole "f", Iterate (Phole "p", Fhole "f")) in
        Alcotest.check (Alcotest.list Alcotest.string) "holes"
          [ "f:f"; "p:p" ] (List.sort compare (holes_func f)));
    case "ground terms have no holes" (fun () ->
        Alcotest.check Alcotest.bool "kg1" true
          (func_is_ground Paper.kg1.body);
        Alcotest.check Alcotest.bool "pattern" false
          (func_is_ground (Compose (Fhole "f", Id))));
    case "sel/proj abbreviations" (fun () ->
        Alcotest.check func "sel" (Iterate (Gt, Id)) (sel Gt);
        Alcotest.check func "proj" (Iterate (Kp true, Prim "age")) (proj (Prim "age")));
    case "query equality includes the argument" (fun () ->
        let q1 = Term.query Id (Value.Named "P") in
        let q2 = Term.query Id (Value.Named "V") in
        Alcotest.check Alcotest.bool "differ" false (equal_query q1 q2));
  ]

let props =
  let open QCheck in
  (* random chains of atomic functions *)
  let atom = Gen.oneofl [ Id; Pi1; Pi2; Flat; Prim "age"; Prim "addr"; Kf (Value.Int 1) ] in
  let chain_gen =
    Gen.(list_size (int_range 1 6) atom >|= fun parts -> parts)
  in
  let arb = QCheck.make ~print:(fun ps -> Fmt.str "%a" Pretty.pp_func (chain ps)) chain_gen in
  [
    Test.make ~name:"unchain ∘ chain = id on part lists" ~count:200 arb
      (fun parts ->
        List.length (unchain (chain parts)) = List.length parts);
    Test.make ~name:"size is positive and additive over chains" ~count:200 arb
      (fun parts ->
        let total = size_func (chain parts) in
        let pieces = List.fold_left (fun n p -> n + size_func p) 0 parts in
        total = pieces + (List.length parts - 1));
    Test.make ~name:"reassoc is idempotent" ~count:200 arb (fun parts ->
        let f = chain parts in
        equal_func (reassoc_func f) (reassoc_func (reassoc_func f)));
  ]

let tests = tests @ List.map (QCheck_alcotest.to_alcotest ~long:false) props

(* Operational semantics of Tables 1 and 2, checked literally against the
   paper's semantics equations (experiments E-T1 / E-T2). *)

open Kola
open Kola.Term
open Util

let ef = Eval.eval_func ~db:tiny_db
let ep = Eval.eval_pred ~db:tiny_db

let alice =
  match Datagen.Store.tiny () with
  | { persons = a :: _; _ } -> a
  | _ -> assert false

let table1 =
  [
    case "id!x = x" (fun () ->
        Alcotest.check value "id" (int 5) (ef Id (int 5)));
    case "π1![x,y] = x and π2![x,y] = y" (fun () ->
        Alcotest.check value "pi1" (int 1) (ef Pi1 (pair (int 1) (int 2)));
        Alcotest.check value "pi2" (int 2) (ef Pi2 (pair (int 1) (int 2))));
    case "eq?[x,y]" (fun () ->
        Alcotest.check Alcotest.bool "eq" true (ep Eq (pair (int 3) (int 3)));
        Alcotest.check Alcotest.bool "neq" false (ep Eq (pair (int 3) (int 4))));
    case "leq / gt on ints" (fun () ->
        Alcotest.check Alcotest.bool "leq" true (ep Leq (pair (int 3) (int 3)));
        Alcotest.check Alcotest.bool "gt" false (ep Gt (pair (int 3) (int 3)));
        Alcotest.check Alcotest.bool "gt2" true (ep Gt (pair (int 4) (int 3))));
    case "in?[x,A]" (fun () ->
        Alcotest.check Alcotest.bool "in" true
          (ep In (pair (int 2) (set [ int 1; int 2 ])));
        Alcotest.check Alcotest.bool "notin" false
          (ep In (pair (int 9) (set [ int 1; int 2 ]))));
    case "(f ∘ g)!x = f!(g!x)" (fun () ->
        Alcotest.check value "compose" (Value.str "Providence")
          (ef (Compose (Prim "city", Prim "addr")) alice));
    case "⟨f, g⟩!x = [f!x, g!x]" (fun () ->
        Alcotest.check value "pairf"
          (pair (int 30) (int 30))
          (ef (Pairf (Prim "age", Prim "age")) alice));
    case "(f × g)![x,y] = [f!x, g!y]" (fun () ->
        Alcotest.check value "times"
          (pair (int 2) (int 3))
          (ef (Times (Id, Id)) (pair (int 2) (int 3))));
    case "Kf(x)!y = x" (fun () ->
        Alcotest.check value "kf" (int 9) (ef (Kf (int 9)) (int 1)));
    case "Cf(f, x)!y = f![x, y]" (fun () ->
        Alcotest.check value "cf" (int 7) (ef (Cf (Pi1, int 7)) (int 1)));
    case "con(p, f, g)!x branches on p?x" (fun () ->
        let c = Con (Kp true, Kf (int 1), Kf (int 2)) in
        Alcotest.check value "then" (int 1) (ef c Value.Unit);
        let c = Con (Kp false, Kf (int 1), Kf (int 2)) in
        Alcotest.check value "else" (int 2) (ef c Value.Unit));
    case "(p ⊕ f)?x = p?(f!x)" (fun () ->
        let p = Oplus (Gt, Pairf (Prim "age", Kf (int 25))) in
        Alcotest.check Alcotest.bool "oplus" true (ep p alice));
    case "& | and ⁻¹" (fun () ->
        Alcotest.check Alcotest.bool "and" false
          (ep (Andp (Kp true, Kp false)) Value.Unit);
        Alcotest.check Alcotest.bool "or" true
          (ep (Orp (Kp true, Kp false)) Value.Unit);
        Alcotest.check Alcotest.bool "inv" true (ep (Inv (Kp false)) Value.Unit));
    case "pᵒ swaps its pair (converse)" (fun () ->
        Alcotest.check Alcotest.bool "conv gt = lt" true
          (ep (Conv Gt) (pair (int 1) (int 2)));
        Alcotest.check Alcotest.bool "conv gt boundary" false
          (ep (Conv Gt) (pair (int 2) (int 2))));
    case "Kp(b)?x = b" (fun () ->
        Alcotest.check Alcotest.bool "kp" true (ep (Kp true) (int 0)));
    case "Cp(p, x)?y = p?[x, y]" (fun () ->
        Alcotest.check Alcotest.bool "cp" true
          (ep (Cp (Gt, int 5)) (int 3)))
    (* gt?[5,3] *);
  ]

let table2 =
  [
    case "flat!A unions the members" (fun () ->
        Alcotest.check value "flat"
          (set [ int 1; int 2; int 3 ])
          (ef Flat (set [ set [ int 1; int 2 ]; set [ int 3 ]; set [] ])));
    case "iterate(p, f)!A maps and filters" (fun () ->
        (* keep elements > 0, double them *)
        let double = Compose (Arith Mul, Pairf (Id, Kf (int 2))) in
        let positive = Oplus (Gt, Pairf (Id, Kf (int 0))) in
        Alcotest.check value "iterate"
          (set [ int 2; int 4 ])
          (ef (Iterate (positive, double)) (set [ int 1; int 2; int 0; int (-3) ])));
    case "iter(p, f)![e, B] supplies the environment" (fun () ->
        (* iter(gt, π2)![5, {1,9}] keeps elements with 5 > y *)
        Alcotest.check value "iter"
          (set [ int 1 ])
          (ef (Iter (Gt, Pi2)) (pair (int 5) (set [ int 1; int 9 ]))));
    case "join(p, f)![A, B] is a filtered cross product" (fun () ->
        Alcotest.check value "join"
          (set [ pair (int 2) (int 1) ])
          (ef
             (Join (Gt, Id))
             (pair (set [ int 1; int 2 ]) (set [ int 1; int 2 ]))));
    case "nest(f, g)![A, B] groups relative to B (no NULLs)" (fun () ->
        (* group pairs by first component, relative to {1,2,3}; 3 gets {} *)
        let a =
          set [ pair (int 1) (int 10); pair (int 1) (int 11); pair (int 2) (int 20) ]
        in
        let b = set [ int 1; int 2; int 3 ] in
        Alcotest.check value "nest"
          (set
             [
               pair (int 1) (set [ int 10; int 11 ]);
               pair (int 2) (set [ int 20 ]);
               pair (int 3) (set []);
             ])
          (ef (Nest (Pi1, Pi2)) (pair a b)));
    case "unnest(f, g)!A flattens one level" (fun () ->
        let a = set [ pair (int 1) (set [ int 10; int 11 ]) ] in
        Alcotest.check value "unnest"
          (set [ pair (int 1) (int 10); pair (int 1) (int 11) ])
          (ef (Unnest (Pi1, Pi2)) a));
    case "hashed join agrees with naive join" (fun () ->
        let q = Paper.kg2 in
        Alcotest.check value "backends agree"
          (resolved tiny_db (eval_tiny ~backend:Eval.Naive q))
          (resolved tiny_db (eval_tiny ~backend:Eval.Hashed q)));
    case "hashed nest agrees with naive nest" (fun () ->
        let a =
          set [ pair (int 1) (int 10); pair (int 2) (int 20); pair (int 1) (int 30) ]
        in
        let b = set [ int 1; int 2; int 9 ] in
        let q = Term.query (Nest (Pi1, Pi2)) (pair a b) in
        Alcotest.check value "backends agree"
          (eval_tiny ~backend:Eval.Naive q)
          (eval_tiny ~backend:Eval.Hashed q));
    case "aggregates" (fun () ->
        Alcotest.check value "count" (int 3)
          (ef (Agg Count) (set [ int 5; int 6; int 7 ]));
        Alcotest.check value "sum" (int 18)
          (ef (Agg Sum) (set [ int 5; int 6; int 7 ]));
        Alcotest.check value "max" (int 7)
          (ef (Agg Max) (set [ int 5; int 6; int 7 ]));
        Alcotest.check value "count {} = 0" (int 0) (ef (Agg Count) (set [])));
    case "max of empty set raises" (fun () ->
        Alcotest.check_raises "max {}" (Eval.Error "max of empty set")
          (fun () -> ignore (ef (Agg Max) (set []))));
    case "set operations" (fun () ->
        let a = set [ int 1; int 2 ] and b = set [ int 2; int 3 ] in
        Alcotest.check value "union" (set [ int 1; int 2; int 3 ])
          (ef (Setop Union) (pair a b));
        Alcotest.check value "inter" (set [ int 2 ]) (ef (Setop Inter) (pair a b));
        Alcotest.check value "diff" (set [ int 1 ]) (ef (Setop Diff) (pair a b)));
    case "evaluating a hole fails" (fun () ->
        Alcotest.check_raises "hole" (Eval.Error "evaluated a pattern hole ?x")
          (fun () -> ignore (ef (Fhole "x") (int 1))));
    case "unbound extent fails" (fun () ->
        Alcotest.check_raises "unbound" (Eval.Error "unbound database name Z")
          (fun () -> ignore (Eval.eval_func (Kf (Value.Named "Z")) Value.Unit)));
    case "counters record work" (fun () ->
        let ctx = Eval.ctx ~db:tiny_db () in
        ignore (Eval.run ctx Paper.kg1);
        Alcotest.check Alcotest.bool "tuples counted" true
          (ctx.Eval.counters.Eval.tuples > 0));
  ]

let reduction_of_section3 =
  [
    case "the Section 3 reduction: iterate(Kp(T), city ∘ addr) ! P" (fun () ->
        (* = {city!(addr!e) | e ∈ P} *)
        let q =
          Term.query (Iterate (Kp true, Compose (Prim "city", Prim "addr")))
            (Value.Named "P")
        in
        let expected = set [ Value.str "Providence"; Value.str "Boston" ] in
        Alcotest.check value "cities" expected (eval_tiny q));
  ]

let tests = table1 @ table2 @ reduction_of_section3

(* Regression coverage for the pair-former shapes of hash_joinable. *)
let hash_joinable_shapes =
  [
    case "hash_joinable recognises crossed pair-former equi-joins" (fun () ->
        let crossed =
          Oplus (Eq, Pairf (Compose (Prim "dept", Pi2), Pi1))
        in
        Alcotest.check Alcotest.bool "crossed eq" true
          (Option.is_some (Eval.hash_joinable crossed));
        let straight =
          Oplus (Eq, Pairf (Compose (Prim "age", Pi1), Compose (Prim "age", Pi2)))
        in
        Alcotest.check Alcotest.bool "straight eq" true
          (Option.is_some (Eval.hash_joinable straight));
        (* one-sided pairs are not joins *)
        let one_sided = Oplus (Eq, Pairf (Pi1, Compose (Prim "age", Pi1))) in
        Alcotest.check Alcotest.bool "one-sided rejected" true
          (Option.is_none (Eval.hash_joinable one_sided)));
    case "crossed-pair hash join agrees with naive" (fun () ->
        (* employees joined to their departments by equality *)
        let store = Datagen.Company.generate Datagen.Company.default_params in
        let db = Datagen.Company.db store in
        let j =
          Term.query
            (Join (Oplus (Eq, Pairf (Compose (Prim "dept", Pi2), Pi1)), Pi2))
            (Value.Pair (Value.Named "D", Value.Named "E"))
        in
        Alcotest.check value "agree"
          (resolved db (Eval.eval_query ~db ~backend:Eval.Naive j))
          (resolved db (Eval.eval_query ~db ~backend:Eval.Hashed j)));
  ]

let tests = tests @ hash_joinable_shapes

(* Figure 6 / Section 3.2 (experiment E-F6): code motion fires on K4 and is
   structurally blocked on K3 — the paper's headline example of a decision
   that needs environmental analysis over AQUA but plain matching over
   KOLA. *)

open Kola
open Util

let fired (o : Coko.Block.outcome) =
  List.map (fun s -> s.Rewrite.Engine.rule_name) o.Coko.Block.trace

let tests =
  [
    case "K4 rewrites to the con form of Figure 6" (fun () ->
        let o = Coko.Block.run Coko.Programs.code_motion Paper.k4 in
        Alcotest.check query "optimized" Paper.k4_optimized o.Coko.Block.query);
    case "K4's derivation follows the paper: 13, 14, 15, 16, then cleanup"
      (fun () ->
        let o = Coko.Block.run Coko.Programs.code_motion Paper.k4 in
        match fired o with
        | "r13" :: "r14" :: "r15" :: "r16" :: _ -> ()
        | other -> Alcotest.failf "unexpected derivation %a" Fmt.(Dump.list string) other);
    case "K4 transformation preserves semantics" (fun () ->
        check_sem_equal "k4" Paper.k4 Paper.k4_optimized;
        check_sem_equal ~db:gen_db "k4 on generated store" Paper.k4
          Paper.k4_optimized);
    case "code motion does not apply to K3" (fun () ->
        let o = Coko.Block.run Coko.Programs.code_motion Paper.k3 in
        Alcotest.check Alcotest.bool "blocked" false o.Coko.Block.applied);
    case "K3 and K4 differ only by a projection" (fun () ->
        (* the paper: "the KOLA queries are structurally similar to one
           another, but not identical" — sizes agree, terms differ *)
        Alcotest.check Alcotest.int "same size"
          (Term.size_func Paper.k3.Term.body)
          (Term.size_func Paper.k4.Term.body);
        Alcotest.check Alcotest.bool "not equal" false
          (Term.equal_func Paper.k3.Term.body Paper.k4.Term.body));
    case "K3 still gets partially simplified (rules 13/14 fire)" (fun () ->
        (* "rules simplify the query to a point where it was possible to
           determine if code motion ... applicable" (Section 4.2) *)
        let b = Coko.Block.block "partial" Coko.Block.(Try (Repeat (Use [ "r13"; "r14" ]))) in
        let o = Coko.Block.run b Paper.k3 in
        Alcotest.check Alcotest.bool "some firings" true
          (List.length (fired o) >= 2);
        check_sem_equal "k3 partial" Paper.k3 o.Coko.Block.query);
    case "K3 after rule 14 has p ⊕ π2 where rule 15 needs p ⊕ π1" (fun () ->
        let b = Coko.Block.block "partial" Coko.Block.(Try (Repeat (Use [ "r13"; "r14" ]))) in
        let o = Coko.Block.run b Paper.k3 in
        let r15 = Rules.Catalog.find_exn "r15" in
        let applied_somewhere =
          Rewrite.Engine.step_once [ r15 ] o.Coko.Block.query
        in
        Alcotest.check Alcotest.bool "rule 15 cannot fire" true
          (Option.is_none applied_somewhere));
    case "K3 and K4 denote different results (Figure 2's point)" (fun () ->
        Alcotest.check Alcotest.bool "differ" false
          (Value.equal (eval_tiny Paper.k3) (eval_tiny Paper.k4)));
  ]

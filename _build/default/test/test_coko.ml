(* COKO blocks: the strategy combinators and pipeline behaviour. *)

open Kola
open Coko.Block
open Util

let tests =
  [
    case "Use fires a single rule once" (fun () ->
        let o = run (block "one" (Use [ "r11" ])) Paper.t1k_source in
        Alcotest.check Alcotest.bool "applied" true o.applied;
        Alcotest.check Alcotest.int "once" 1 (List.length o.trace));
    case "Use fails when nothing matches" (fun () ->
        let o = run (block "none" (Use [ "r15" ])) Paper.t1k_source in
        Alcotest.check Alcotest.bool "not applied" false o.applied);
    case "Repeat runs to exhaustion" (fun () ->
        let o = run (block "rep" (Repeat (Use [ "r11" ]))) Paper.t1k_source in
        Alcotest.check Alcotest.bool "applied" true o.applied;
        (* only one iterate ∘ iterate pair exists *)
        Alcotest.check Alcotest.int "once is exhaustion here" 1 (List.length o.trace));
    case "Seq fails atomically if a later step fails" (fun () ->
        let o = run (block "seq" (Seq [ Use [ "r11" ]; Use [ "r15" ] ])) Paper.t1k_source in
        Alcotest.check Alcotest.bool "failed" false o.applied;
        (* and leaves the query untouched *)
        Alcotest.check query "unchanged" Paper.t1k_source o.query);
    case "Try turns failure into identity" (fun () ->
        let o = run (block "try" (Try (Use [ "r15" ]))) Paper.t1k_source in
        Alcotest.check Alcotest.bool "applied (vacuously)" true o.applied;
        Alcotest.check query "unchanged" Paper.t1k_source o.query);
    case "Choice picks the first applicable step" (fun () ->
        let o =
          run (block "choice" (Choice [ Use [ "r15" ]; Use [ "r11" ] ])) Paper.t1k_source
        in
        Alcotest.check Alcotest.bool "applied" true o.applied;
        match o.trace with
        | [ s ] -> Alcotest.check Alcotest.string "rule" "r11" s.Rewrite.Engine.rule_name
        | _ -> Alcotest.fail "expected one step");
    case "pipelines record which blocks applied" (fun () ->
        let _, blocks = Coko.Programs.hidden_join Paper.kg1 in
        Alcotest.check Alcotest.int "five blocks" 5 (List.length blocks));
    case "simplify normalizes identities" (fun () ->
        let q =
          Term.query
            (Term.Compose (Term.Id, Term.Compose (Term.Prim "age", Term.Id)))
            (Value.Named "P")
        in
        let o = run Coko.Programs.simplify q in
        Alcotest.check query "clean"
          (Term.query (Term.Prim "age") (Value.Named "P"))
          o.query);
    case "to-cnf pushes negation through conjunction" (fun () ->
        let q =
          Term.query
            (Term.Iterate
               ( Term.Inv
                   (Term.Andp
                      ( Term.Oplus (Term.Gt, Term.Pairf (Term.Prim "age", Term.Kf (int 30))),
                        Term.Oplus (Term.Leq, Term.Pairf (Term.Prim "age", Term.Kf (int 50))) )),
                 Term.Id ))
            (Value.Named "P")
        in
        let o = run Coko.Programs.to_cnf q in
        (match o.query.Term.body with
        | Term.Iterate (Term.Orp (Term.Inv _, Term.Inv _), Term.Id) -> ()
        | f -> Alcotest.failf "unexpected %a" Pretty.pp_func f);
        check_sem_equal "cnf preserves" q o.query);
    case "every named program is available" (fun () ->
        Alcotest.check Alcotest.int "programs" 11 (List.length Coko.Programs.by_name));
    case "blocks preserve semantics on the paper queries" (fun () ->
        List.iter
          (fun (name, b) ->
            List.iter
              (fun q ->
                let o = run b q in
                check_sem_equal (Fmt.str "%s preserves" name) q o.query)
              [ Paper.kg1; Paper.k3; Paper.k4; Paper.t1k_source; Paper.t2k_source ])
          Coko.Programs.by_name);
  ]

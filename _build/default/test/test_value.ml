(* Values: canonical sets, object identity, comparison laws. *)

open Kola

let obj oid fields = Value.obj ~cls:"Person" ~oid fields

let suite =
  let open Util in
  [
    case "sets are canonical (sorted, deduplicated)" (fun () ->
        Alcotest.check value "dedup"
          (set [ int 1; int 2 ])
          (set [ int 2; int 1; int 2; int 1 ]));
    case "set equality is order-insensitive" (fun () ->
        Alcotest.check value "order"
          (set [ int 3; int 1; int 2 ])
          (set [ int 1; int 2; int 3 ]));
    case "object equality is identity-based" (fun () ->
        let a = obj 1 [ ("age", int 30) ] in
        let b = obj 1 [ ("age", int 99) ] in
        Alcotest.check value "same oid" a b);
    case "objects with different oids differ" (fun () ->
        let a = obj 1 [] and b = obj 2 [] in
        Alcotest.check Alcotest.bool "differ" false (Value.equal a b));
    case "pairs compare lexicographically" (fun () ->
        Alcotest.check Alcotest.bool "lt" true
          (Value.compare (pair (int 1) (int 9)) (pair (int 2) (int 0)) < 0));
    case "field access" (fun () ->
        let a = obj 1 [ ("age", int 30); ("name", Value.str "x") ] in
        Alcotest.check (Alcotest.option value) "age" (Some (int 30))
          (Value.field "age" a);
        Alcotest.check (Alcotest.option value) "missing" None
          (Value.field "zz" a));
    case "is_ground detects holes anywhere" (fun () ->
        Alcotest.check Alcotest.bool "hole in pair" false
          (Value.is_ground (pair (int 1) (Value.Hole "x")));
        Alcotest.check Alcotest.bool "hole in set" false
          (Value.is_ground (set [ Value.Hole "x" ]));
        Alcotest.check Alcotest.bool "ground" true
          (Value.is_ground (pair (int 1) (set [ int 2 ]))));
    case "size counts nodes" (fun () ->
        Alcotest.check Alcotest.int "pair of ints" 3
          (Value.size (pair (int 1) (int 2)));
        Alcotest.check Alcotest.int "set" 3 (Value.size (set [ int 1; int 2 ])));
  ]

let props =
  let open QCheck in
  let rec value_gen n =
    let open Gen in
    if n = 0 then
      oneof
        [ map (fun i -> Value.Int i) small_int;
          map (fun b -> Value.Bool b) bool;
          map (fun s -> Value.Str s) (string_size ~gen:printable (return 3)) ]
    else
      oneof
        [
          map (fun i -> Value.Int i) small_int;
          map2 (fun a b -> Value.pair a b) (value_gen (n - 1)) (value_gen (n - 1));
          map (fun xs -> Value.set xs) (list_size (int_bound 4) (value_gen (n - 1)));
        ]
  in
  let arb = QCheck.make ~print:Value.to_string (value_gen 3) in
  [
    Test.make ~name:"compare is reflexive" ~count:200 arb (fun v ->
        Value.compare v v = 0);
    Test.make ~name:"compare is antisymmetric" ~count:200 (pair arb arb)
      (fun (a, b) -> Value.compare a b = -Value.compare b a);
    Test.make ~name:"equal values hash equally" ~count:200 (pair arb arb)
      (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b);
    Test.make ~name:"set construction is idempotent" ~count:200
      (list_of_size Gen.(int_bound 6) arb) (fun xs ->
        let s1 = Value.set xs in
        match s1 with
        | Value.Set elems -> Value.equal s1 (Value.set elems)
        | _ -> false);
    Test.make ~name:"set ignores duplicates" ~count:200 arb (fun v ->
        Value.equal (Value.set [ v; v ]) (Value.set [ v ]));
  ]

let tests = suite @ List.map (QCheck_alcotest.to_alcotest ~long:false) props

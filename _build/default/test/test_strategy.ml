(* The strategy combinators underlying the engine. *)

open Kola
open Kola.Term
module S = Rewrite.Strategy
open Util

(* A strategy rewriting Prim "age" to Prim "name". *)
let age_to_name : S.t =
  S.of_fun_rewrite (function
    | Prim "age" -> Some (Prim "name")
    | _ -> None)

let never : S.t = S.fail

let tests =
  [
    case "of_rule applies at the root only" (fun () ->
        let s = S.of_rule (Rules.Catalog.find_exn "r2") in
        Alcotest.check (Alcotest.option func) "root"
          (Some (Prim "age"))
          (S.apply_func s (Compose (Id, Prim "age")));
        (* nested occurrence: root application fails *)
        Alcotest.check (Alcotest.option func) "nested" None
          (S.apply_func s (Pairf (Compose (Id, Prim "age"), Id))));
    case "once_topdown reaches nested positions" (fun () ->
        let t = Pairf (Iterate (Kp true, Prim "age"), Id) in
        Alcotest.check (Alcotest.option func) "nested"
          (Some (Pairf (Iterate (Kp true, Prim "name"), Id)))
          (S.apply_func (S.once_topdown age_to_name) t));
    case "once_topdown rewrites the leftmost-outermost occurrence" (fun () ->
        let t = Pairf (Prim "age", Prim "age") in
        Alcotest.check (Alcotest.option func) "left one"
          (Some (Pairf (Prim "name", Prim "age")))
          (S.apply_func (S.once_topdown age_to_name) t));
    case "strategies descend into predicate positions" (fun () ->
        let t = Iterate (Oplus (Gt, Pairf (Prim "age", Kf (int 1))), Id) in
        Alcotest.check (Alcotest.option func) "inside ⊕"
          (Some (Iterate (Oplus (Gt, Pairf (Prim "name", Kf (int 1))), Id)))
          (S.apply_func (S.once_topdown age_to_name) t));
    case "predicates descend into function positions and back" (fun () ->
        let p = Andp (Kp true, Oplus (Eq, Pairf (Prim "age", Prim "age"))) in
        match S.apply_pred (S.once_topdown age_to_name) p with
        | Some (Andp (Kp true, Oplus (Eq, Pairf (Prim "name", Prim "age")))) -> ()
        | other ->
          Alcotest.failf "unexpected %a" Fmt.(Dump.option Pretty.pp_pred) other);
    case "seq composes; choice falls through; attempt never fails" (fun () ->
        let t = Prim "age" in
        Alcotest.check (Alcotest.option func) "seq"
          None
          (S.apply_func (S.seq age_to_name age_to_name) t);
        Alcotest.check (Alcotest.option func) "choice"
          (Some (Prim "name"))
          (S.apply_func (S.choice never age_to_name) t);
        Alcotest.check (Alcotest.option func) "attempt on failure"
          (Some t)
          (S.apply_func (S.attempt never) t));
    case "repeat applies to exhaustion and reports non-application" (fun () ->
        let dec : S.t =
          S.of_fun_rewrite (function
            | Kf (Value.Int n) when n > 0 -> Some (Kf (Value.Int (n - 1)))
            | _ -> None)
        in
        Alcotest.check (Alcotest.option func) "counts down"
          (Some (Kf (int 0)))
          (S.apply_func (S.repeat dec) (Kf (int 5)));
        Alcotest.check (Alcotest.option func) "fails when never applied" None
          (S.apply_func (S.repeat dec) (Kf (int 0))));
    case "repeat honours its fuel bound" (fun () ->
        let spin : S.t =
          S.of_fun_rewrite (function
            | Kf (Value.Int n) -> Some (Kf (Value.Int (n + 1)))
            | _ -> None)
        in
        match S.apply_func (S.repeat ~fuel:7 spin) (Kf (int 0)) with
        | Some (Kf (Value.Int n)) -> Alcotest.check Alcotest.int "fuel" 7 n
        | other ->
          Alcotest.failf "unexpected %a" Fmt.(Dump.option Pretty.pp_func) other);
    case "fixpoint normalizes everywhere" (fun () ->
        let t = Pairf (Prim "age", Iterate (Kp true, Prim "age")) in
        Alcotest.check (Alcotest.option func) "all rewritten"
          (Some (Pairf (Prim "name", Iterate (Kp true, Prim "name"))))
          (S.apply_func (S.fixpoint age_to_name) t));
    case "once_bottomup rewrites an innermost occurrence first" (fun () ->
        (* a rule matching both a node and its child: bottom-up picks the
           child *)
        let collapse : S.t =
          S.of_fun_rewrite (function
            | Compose (Id, f) -> Some f
            | _ -> None)
        in
        let t = Compose (Id, Compose (Id, Prim "age")) in
        (* chains flatten: use a non-chain nesting instead *)
        let t2 = Pairf (t, Id) in
        match S.apply_func (S.once_bottomup collapse) t2 with
        | Some _ -> ()
        | None -> Alcotest.fail "should apply somewhere");
  ]

(* One concrete, hand-written instance per paper rule (Figures 5 and 8):
   the rule must fire on it, produce the expected shape, and preserve the
   denotation.  Complements the generic certification with cases whose
   expected outputs were derived by hand from the paper's equations. *)

open Kola
open Kola.Term
open Util

let fire name f =
  match Rewrite.Rule.apply_func (Rules.Catalog.find_exn name) f with
  | Some f' -> f'
  | None -> Alcotest.failf "%s did not fire" name

let firep name p =
  match Rewrite.Rule.apply_pred (Rules.Catalog.find_exn name) p with
  | Some p' -> p'
  | None -> Alcotest.failf "%s did not fire" name

let age = Prim "age"
let child = Prim "child"
let sem_f msg f f' input =
  Alcotest.check value msg
    (resolved tiny_db (Eval.eval_func ~db:tiny_db f input))
    (resolved tiny_db (Eval.eval_func ~db:tiny_db f' input))

let alice = List.hd (Datagen.Store.tiny ()).Datagen.Store.persons
let persons = Value.Named "P"

let figure5 =
  [
    case "r1 on age ∘ id" (fun () ->
        Alcotest.check func "shape" age (fire "r1" (Compose (age, Id))));
    case "r2 on id ∘ age" (fun () ->
        Alcotest.check func "shape" age (fire "r2" (Compose (Id, age))));
    case "r3 on ⟨π1, π2⟩" (fun () ->
        Alcotest.check func "shape" Id (fire "r3" (Pairf (Pi1, Pi2))));
    case "r4 on gt ⊕ id" (fun () ->
        Alcotest.check pred "shape" Gt (firep "r4" (Oplus (Gt, Id))));
    case "r5 on Kp(T) & gt" (fun () ->
        Alcotest.check pred "shape" Gt (firep "r5" (Andp (Kp true, Gt))));
    case "r6t on Kp(T) ⊕ age" (fun () ->
        Alcotest.check pred "shape" (Kp true) (firep "r6t" (Oplus (Kp true, age))));
    case "r7 on gt⁻¹ (the negation reading is exact)" (fun () ->
        Alcotest.check pred "shape" Leq (firep "r7" (Inv Gt));
        (* ¬(3 > 3) ⟺ 3 ≤ 3 *)
        Alcotest.check Alcotest.bool "boundary" true
          (Eval.eval_pred Leq (pair (int 3) (int 3))));
    case "r8 on Kf(7) ∘ age" (fun () ->
        Alcotest.check func "shape" (Kf (int 7)) (fire "r8" (Compose (Kf (int 7), age)));
        sem_f "sem" (Compose (Kf (int 7), age)) (Kf (int 7)) alice);
    case "r9/r10 on projections of ⟨age, child⟩" (fun () ->
        Alcotest.check func "r9" age (fire "r9" (Compose (Pi1, Pairf (age, child))));
        Alcotest.check func "r10" child (fire "r10" (Compose (Pi2, Pairf (age, child)))));
    case "r11 fuses iterate(gt25, name) ∘ iterate(KpT, id)" (fun () ->
        let p25 = Oplus (Gt, Pairf (age, Kf (int 25))) in
        let fused = fire "r11" (Compose (Iterate (p25, Prim "name"), Iterate (Kp true, Id))) in
        (match fused with
        | Iterate (Andp (Kp true, Oplus (p, Id)), Compose (Prim "name", Id)) ->
          Alcotest.check pred "inner pred" p25 p
        | f -> Alcotest.failf "unexpected %a" Pretty.pp_func f);
        sem_f "sem" (Compose (Iterate (p25, Prim "name"), Iterate (Kp true, Id))) fused persons);
    case "r12 on sel ∘ map" (fun () ->
        let out = fire "r12" (Compose (Iterate (Cp (Gt, int 40), Id), Iterate (Kp true, age))) in
        Alcotest.check func "shape"
          (Iterate (Oplus (Cp (Gt, int 40), age), age))
          out);
    case "r13 on gt ⊕ ⟨age, Kf(25)⟩ (and its boundary)" (fun () ->
        let out = firep "r13" (Oplus (Gt, Pairf (age, Kf (int 25)))) in
        Alcotest.check pred "shape" (Oplus (Cp (Conv Gt, int 25), age)) out;
        (* exact on the boundary age = 25 *)
        let boundary = Value.obj ~cls:"Person" ~oid:99 [ ("age", int 25) ] in
        Alcotest.check Alcotest.bool "boundary agrees" true
          (Eval.eval_pred (Oplus (Gt, Pairf (age, Kf (int 25)))) boundary
          = Eval.eval_pred out boundary));
    case "r14 on gt25 ⊕ (age ∘ π1)" (fun () ->
        let out = firep "r14" (Oplus (Gt, Compose (age, Pi1))) in
        Alcotest.check pred "shape" (Oplus (Oplus (Gt, age), Pi1)) out);
    case "r15 turns an environment-only iter into a conditional" (fun () ->
        let p = Oplus (Cp (Gt, int 18), age) in
        let out = fire "r15" (Iter (Oplus (p, Pi1), Pi2)) in
        Alcotest.check func "shape"
          (Con (Oplus (p, Pi1), Pi2, Kf (Value.set [])))
          out;
        sem_f "sem (kept)" (Iter (Oplus (p, Pi1), Pi2)) out
          (pair alice (set [ int 1; int 2 ]));
        let minor = Value.obj ~cls:"Person" ~oid:98 [ ("age", int 3) ] in
        sem_f "sem (dropped)" (Iter (Oplus (p, Pi1), Pi2)) out
          (pair minor (set [ int 1; int 2 ])));
    case "r16 distributes a conditional over ∘" (fun () ->
        let c = Con (Cp (Gt, int 0), Pi2, Kf (Value.set [])) in
        let out = fire "r16" (Compose (c, Pairf (age, child))) in
        match out with
        | Con (Oplus (Cp (Gt, _), _), Compose (Pi2, _), Compose (Kf _, _)) -> ()
        | f -> Alcotest.failf "unexpected %a" Pretty.pp_func f);
  ]

let figure8 =
  [
    case "r17 breaks the garage body up" (fun () ->
        (* the inner two-layer body of KG1, as a standalone iterate *)
        let out = fire "r17" Paper.kg1.body in
        Alcotest.check Alcotest.int "four-element chain" 4
          (List.length (unchain out)));
    case "r17b breaks up a body with no postprocessing" (fun () ->
        let body =
          Iterate
            ( Kp true,
              Pairf
                ( Id,
                  Compose
                    (Iter (Paper.kg1_inner_pred, Pi2), Pairf (Id, Kf persons)) ) )
        in
        let out = fire "r17b" body in
        Alcotest.check Alcotest.int "three-element chain" 3
          (List.length (unchain out)));
    case "r18 collapses iterate(Kp T, id)" (fun () ->
        Alcotest.check func "shape" Id (fire "r18" (Iterate (Kp true, Id))));
    case "r19 bottoms out (query level)" (fun () ->
        let q =
          Term.query (Iterate (Kp true, Pairf (Id, Kf persons))) (Value.Named "V")
        in
        match Rewrite.Rule.apply_query (Rules.Catalog.find_exn "r19") q with
        | Some q' ->
          Alcotest.check query "shape"
            (Term.query
               (chain [ Nest (Pi1, Pi2); Pairf (Join (Kp true, Id), Pi1) ])
               (Value.Pair (Value.Named "V", persons)))
            q';
          check_sem_equal "sem" q q'
        | None -> Alcotest.fail "r19 did not fire");
    case "r20 pulls nest above an iter step" (fun () ->
        (* an int-typed iter predicate: env > element *)
        let lhs =
          Compose
            ( Iterate (Kp true, Pairf (Pi1, Iter (Gt, Pi2))),
              Nest (Pi1, Pi2) )
        in
        let out = fire "r20" lhs in
        (match unchain out with
        | [ Nest (Pi1, Pi2); Times (Iterate _, Id) ] -> ()
        | _ -> Alcotest.failf "unexpected %a" Pretty.pp_func out);
        let pairs = set [ pair (int 15) (int 10); pair (int 2) (int 20) ] in
        let keys = set [ int 15; int 2; int 3 ] in
        sem_f "sem" lhs out (pair pairs keys));
    case "r21 pulls nest above a flatten step" (fun () ->
        let lhs =
          Compose
            ( Iterate (Kp true, Pairf (Pi1, Compose (Flat, Pi2))),
              Nest (Pi1, Pi2) )
        in
        let out = fire "r21" lhs in
        Alcotest.check func "shape"
          (Compose (Nest (Pi1, Pi2), Times (Unnest (Pi1, Pi2), Id)))
          out;
        let nested =
          set [ pair (int 1) (set [ int 10 ]); pair (int 1) (set [ int 11 ]) ]
        in
        sem_f "sem" lhs out (pair nested (set [ int 1; int 2 ])));
    case "r23 coalesces stacked unnests" (fun () ->
        let u = Times (Unnest (Pi1, Pi2), Id) in
        let out = fire "r23" (Compose (u, u)) in
        (match unchain out with
        | [ Times (Unnest _, Id); Times (Iterate (Kp true, Pairf (Pi1, Compose (Flat, Pi2))), Id) ] -> ()
        | _ -> Alcotest.failf "unexpected %a" Pretty.pp_func out);
        let deep =
          set [ pair (int 1) (set [ set [ int 10; int 11 ]; set [ int 12 ] ]) ]
        in
        sem_f "sem" (Compose (u, u)) out (pair deep (set [ int 0 ])));
    case "r24 absorbs an iterate into the join" (fun () ->
        let lhs =
          Compose
            ( Times (Iterate (Cp (Gt, int 1), Id), Id),
              Pairf (Join (Kp true, Id), Pi1) )
        in
        let out = fire "r24" lhs in
        (match out with
        | Pairf (Join (Andp (Kp true, Oplus (Cp (Gt, _), Id)), Compose (Id, Id)), Pi1) -> ()
        | f -> Alcotest.failf "unexpected %a" Pretty.pp_func f);
        sem_f "sem" lhs out (pair (set [ int 0; int 2 ]) (set [ int 5 ])));
  ]

let tests = figure5 @ figure8

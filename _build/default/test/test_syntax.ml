(* The COKO surface language: parsing rule definitions and transformations,
   and running them. *)

open Kola
open Util

let untangler_src = {|
-- comment lines are ignored
RULE unit-left: id o ?f --> ?f

GIVEN injective(?f)
RULE my-inter: inter o (iterate(Kp(T), ?f) x iterate(Kp(T), ?f)) --> iterate(Kp(T), ?f) o inter

TRANSFORMATION untangle
BEGIN
  REPEAT { r17 | r17b };
  TRY REPEAT { r18 | r1 | r2 | r3 };
  USE r19;
  REPEAT { r20 | r21 };
  TRY REPEAT { r3 | r1 | r2 };
  TRY REPEAT { r22 | r22b | r23 };
  REPEAT r24;
  TRY REPEAT { r5 | r5c | r4 | r6t | r1 | r2 };
  TRY REPEAT { hk-times-l | hk-times-r | hk-times }
END
|}

let tests =
  [
    case "a COKO program parses into rules and transformations" (fun () ->
        let p = Coko.Syntax.parse_program untangler_src in
        Alcotest.check Alcotest.int "rules" 2 (List.length p.Coko.Syntax.rules);
        Alcotest.check Alcotest.int "transformations" 1
          (List.length p.Coko.Syntax.transformations));
    case "the text-defined untangler reproduces KG2" (fun () ->
        let o = Coko.Syntax.run_source untangler_src ~transformation:"untangle" Paper.kg1 in
        Alcotest.check Alcotest.bool "applied" true o.Coko.Block.applied;
        Alcotest.check query "kg2" Paper.kg2 o.Coko.Block.query);
    case "text-defined rules carry GIVEN preconditions" (fun () ->
        let p = Coko.Syntax.parse_program untangler_src in
        let r = Coko.Syntax.lookup_of p "my-inter" in
        let lhs f =
          Term.Compose
            ( Term.Setop Term.Inter,
              Term.Times (Term.Iterate (Term.Kp true, f), Term.Iterate (Term.Kp true, f)) )
        in
        Alcotest.check Alcotest.bool "injective fires" true
          (Option.is_some (Rewrite.Rule.apply_func r (lhs (Term.Prim "name"))));
        Alcotest.check Alcotest.bool "non-injective blocked" true
          (Option.is_none (Rewrite.Rule.apply_func r (lhs (Term.Prim "age")))));
    case "rule kind inference: function, predicate, query" (fun () ->
        let p =
          Coko.Syntax.parse_program
            {|
RULE f-rule: ?f o id --> ?f
RULE p-rule: Kp(T) & ?p --> ?p
RULE q-rule: iterate(Kp(T), <id, Kf(?B)>) ! ?A --> nest(pi1, pi2) o <join(Kp(T), id), pi1> ! [?A, ?B]
|}
        in
        let kinds =
          List.map
            (fun r ->
              match r.Rewrite.Rule.body with
              | Rewrite.Rule.Fun_rule _ -> "fun"
              | Rewrite.Rule.Pred_rule _ -> "pred"
              | Rewrite.Rule.Query_rule _ -> "query")
            p.Coko.Syntax.rules
        in
        Alcotest.check (Alcotest.list Alcotest.string) "kinds"
          [ "fun"; "pred"; "query" ] kinds);
    case "text-defined rules are certified sound" (fun () ->
        let p = Coko.Syntax.parse_program untangler_src in
        List.iter
          (fun r ->
            let result = Rules.Cert.certify ~samples:20 ~inputs:8 r in
            Alcotest.check Alcotest.bool r.Rewrite.Rule.name true
              (Rules.Cert.certified result))
          p.Coko.Syntax.rules);
    case "the shipped coko/hidden_join.coko file works" (fun () ->
        let path =
          List.find Sys.file_exists
            [
              "coko/hidden_join.coko";
              "../coko/hidden_join.coko";
              "../../coko/hidden_join.coko";
              "../../../coko/hidden_join.coko";
            ]
        in
        let src =
          let ic = open_in path in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          s
        in
        let o = Coko.Syntax.run_source src ~transformation:"untangle" Paper.kg1 in
        Alcotest.check query "kg2" Paper.kg2 o.Coko.Block.query;
        let o = Coko.Syntax.run_source src ~transformation:"breakup" Paper.kg1 in
        Alcotest.check query "kg1a" Paper.kg1a o.Coko.Block.query);
    case "unknown rule names are reported" (fun () ->
        match
          Coko.Syntax.run_source "TRANSFORMATION t BEGIN USE nosuch END"
            ~transformation:"t" Paper.kg1
        with
        | exception Coko.Syntax.Error _ -> ()
        | _ -> Alcotest.fail "expected an error");
    case "missing transformation is reported" (fun () ->
        match
          Coko.Syntax.run_source "RULE r: id o ?f --> ?f" ~transformation:"zz"
            Paper.kg1
        with
        | exception Coko.Syntax.Error _ -> ()
        | _ -> Alcotest.fail "expected an error");
    case "flipped references (-1) work from text" (fun () ->
        let src = "TRANSFORMATION t BEGIN USE r12-1 END" in
        let o = Coko.Syntax.run_source src ~transformation:"t" Paper.t2k_mid in
        Alcotest.check query "t2k target" Paper.t2k_target o.Coko.Block.query);
    case "CHOICE picks the first applicable branch" (fun () ->
        let src = "TRANSFORMATION t BEGIN CHOICE { USE r15 / USE r11 } END" in
        let o = Coko.Syntax.run_source src ~transformation:"t" Paper.t1k_source in
        Alcotest.check Alcotest.bool "applied" true o.Coko.Block.applied;
        match o.Coko.Block.trace with
        | [ s ] -> Alcotest.check Alcotest.string "r11" "r11" s.Rewrite.Engine.rule_name
        | _ -> Alcotest.fail "expected one firing");
  ]

(* Figure 4 (experiment E-F4): the step-by-step KOLA transformations T1K and
   T2K, including the exact rule firings the paper annotates. *)

open Kola
open Util

let fired (o : Coko.Block.outcome) =
  List.map (fun s -> s.Rewrite.Engine.rule_name) o.Coko.Block.trace

let tests =
  [
    case "T1K reaches iterate(Kp(T), city ∘ addr) ! P" (fun () ->
        let o = Coko.Block.run Coko.Programs.compose_iterates Paper.t1k_source in
        Alcotest.check query "target" Paper.t1k_target o.Coko.Block.query);
    case "T1K fires rule 11 first, then constant-folds the predicate" (fun () ->
        let o = Coko.Block.run Coko.Programs.compose_iterates Paper.t1k_source in
        match fired o with
        | "r11" :: rest ->
          Alcotest.check Alcotest.bool "cleanup rules 5/6" true
            (List.for_all (fun r -> List.mem r [ "r5"; "r5c"; "r6t" ]) rest)
        | other ->
          Alcotest.failf "unexpected firing order %a"
            Fmt.(Dump.list string) other);
    case "T1K preserves semantics" (fun () ->
        check_sem_equal "t1k" Paper.t1k_source Paper.t1k_target);
    case "T2K reaches iterate(Cp(gtᵒ,25), id) ∘ iterate(Kp(T), age) ! P"
      (fun () ->
        let o1 = Coko.Block.run Coko.Programs.compose_iterates Paper.t2k_source in
        let o2 = Coko.Block.run Coko.Programs.decompose_predicate o1.Coko.Block.query in
        Alcotest.check query "target" Paper.t2k_target o2.Coko.Block.query);
    case "T2K passes through the paper's intermediate form" (fun () ->
        let o1 = Coko.Block.run Coko.Programs.compose_iterates Paper.t2k_source in
        (* after fusion+cleanup: iterate(gt ⊕ ⟨age, Kf(25)⟩, age) ! P;
           rule 13 then gives the t2k_mid form. *)
        let o2 = Coko.Block.run (Coko.Block.block "r13" (Coko.Block.Use [ "r13" ]))
            o1.Coko.Block.query
        in
        Alcotest.check query "mid" Paper.t2k_mid o2.Coko.Block.query);
    case "T2K uses rule 12 right-to-left" (fun () ->
        let o1 = Coko.Block.run Coko.Programs.compose_iterates Paper.t2k_source in
        let o2 = Coko.Block.run Coko.Programs.decompose_predicate o1.Coko.Block.query in
        Alcotest.check Alcotest.bool "r12-1 fired" true
          (List.mem "r12-1" (fired o2)));
    case "T2K preserves semantics" (fun () ->
        check_sem_equal "t2k" Paper.t2k_source Paper.t2k_target);
    case "T2K boundary: the paper's printed target differs at age = 25"
      (fun () ->
        (* iterate(Cp(leq,25), id) ∘ iterate(Kp T, age) keeps age = 25,
           the source sel(age > 25) does not: the rule-13 erratum. *)
        let paper_target =
          Term.query
            (Term.Compose
               ( Term.Iterate (Term.Cp (Term.Leq, int 25), Term.Id),
                 Term.Iterate (Term.Kp true, Term.Prim "age") ))
            (Value.Named "P")
        in
        let db =
          [
            ( "P",
              set
                [
                  Value.obj ~cls:"Person" ~oid:0 [ ("age", int 25) ];
                  Value.obj ~cls:"Person" ~oid:1 [ ("age", int 30) ];
                ] );
          ]
        in
        let src = Eval.eval_query ~db Paper.t2k_source in
        let bad = Eval.eval_query ~db paper_target in
        let good = Eval.eval_query ~db Paper.t2k_target in
        Alcotest.check value "repaired target agrees" src good;
        Alcotest.check Alcotest.bool "printed target disagrees" false
          (Value.equal src bad));
    case "engine trace records every firing with its result" (fun () ->
        let o = Rewrite.Engine.run (Rules.Catalog.rules [ "r11" ]) Paper.t1k_source in
        Alcotest.check Alcotest.int "one firing" 1 (List.length o.Rewrite.Engine.trace);
        Alcotest.check Alcotest.int "stats" 1 o.Rewrite.Engine.stats.Rewrite.Engine.firings);
  ]

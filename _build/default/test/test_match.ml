(* The matching engine: one-way unification with consistent hole binding,
   chain segment matching, and the substitution laws rules rely on. *)

open Kola
open Kola.Term
module M = Rewrite.Match
module S = Rewrite.Subst
open Util

let f = Fhole "f"
let g = Fhole "g"
let p = Phole "p"

let must = function
  | Some s -> s
  | None -> Alcotest.fail "expected a match"

let tests =
  [
    case "hole binds anything" (fun () ->
        let s = must (M.func S.empty f (Prim "age")) in
        Alcotest.check (Alcotest.option func) "bound" (Some (Prim "age"))
          (S.find_func s "f"));
    case "repeated holes must bind consistently" (fun () ->
        Alcotest.check Alcotest.bool "same" true
          (Option.is_some (M.func S.empty (Pairf (f, f)) (Pairf (Id, Id))));
        Alcotest.check Alcotest.bool "different" false
          (Option.is_some (M.func S.empty (Pairf (f, f)) (Pairf (Id, Pi1)))));
    case "match then substitute reproduces the target" (fun () ->
        let pat = Iterate (p, Compose (f, g)) in
        let target =
          Iterate (Kp true, Compose (Prim "city", Prim "addr"))
        in
        let s = must (M.func S.empty pat target) in
        Alcotest.check func "round-trip" target (S.apply_func s pat));
    case "structural mismatch fails" (fun () ->
        Alcotest.check Alcotest.bool "iterate vs iter" false
          (Option.is_some
             (M.func S.empty (Iterate (p, f)) (Iter (Kp true, Id)))));
    case "chains match modulo associativity" (fun () ->
        let pat = Compose (Iterate (p, f), Iterate (Phole "q", g)) in
        let target =
          Compose
            ( Compose (Iterate (Kp true, Prim "city"), Iterate (Kp true, Prim "addr")),
              Id )
        in
        (* pattern must match the [iterate ∘ iterate] window inside *)
        Alcotest.check Alcotest.bool "window" true
          (Option.is_some
             (M.func S.empty (Compose (pat, Fhole "rest")) target)));
    case "a bare hole absorbs a run of chain elements" (fun () ->
        let pat = Compose (g, Pairf (Id, f)) in
        let target =
          chain [ Flat; Iter (Kp true, Pi2); Pairf (Id, Prim "child") ]
        in
        let s = must (M.func S.empty pat target) in
        Alcotest.check (Alcotest.option func) "g absorbed two"
          (Some (Compose (Flat, Iter (Kp true, Pi2))))
          (S.find_func s "g"));
    case "value holes bind constants" (fun () ->
        let s = must (M.func S.empty (Kf (Value.Hole "k")) (Kf (int 25))) in
        Alcotest.check (Alcotest.option value) "k" (Some (int 25))
          (S.find_value s "k"));
    case "predicate patterns descend into functions" (fun () ->
        let pat = Oplus (p, Pairf (f, Kf (Value.Hole "k"))) in
        let target = Oplus (Gt, Pairf (Prim "age", Kf (int 25))) in
        let s = must (M.pred S.empty pat target) in
        Alcotest.check (Alcotest.option pred) "p" (Some Gt) (S.find_pred s "p");
        Alcotest.check (Alcotest.option func) "f" (Some (Prim "age"))
          (S.find_func s "f"));
    case "apply on unbound holes is the identity" (fun () ->
        Alcotest.check func "id" (Pairf (f, g)) (S.apply_func S.empty (Pairf (f, g))));
    case "binding twice with equal terms is accepted" (fun () ->
        let s = must (S.bind_func S.empty "f" Id) in
        Alcotest.check Alcotest.bool "same ok" true
          (Option.is_some (S.bind_func s "f" Id));
        Alcotest.check Alcotest.bool "conflict rejected" false
          (Option.is_some (S.bind_func s "f" Pi1)));
  ]

let props =
  let open QCheck in
  (* Generate random ground functions, match them against a hole pattern. *)
  let atom =
    Gen.oneofl
      [ Id; Pi1; Pi2; Flat; Prim "age"; Prim "addr"; Kf (Value.Int 1);
        Iterate (Kp true, Id) ]
  in
  let func_gen =
    Gen.(
      sized_size (int_bound 3) @@ fix (fun self n ->
          if n = 0 then atom
          else
            oneof
              [
                atom;
                map2 (fun a b -> Compose (a, b)) (self (n - 1)) (self (n - 1));
                map2 (fun a b -> Pairf (a, b)) (self (n - 1)) (self (n - 1));
                map (fun a -> Iterate (Kp true, a)) (self (n - 1));
              ]))
  in
  let arb = QCheck.make ~print:Pretty.func_to_string func_gen in
  [
    Test.make ~name:"any ground term matches a bare hole and round-trips"
      ~count:300 arb (fun t ->
        match M.func S.empty (Fhole "x") t with
        | Some s -> (
          match S.find_func s "x" with
          | Some t' -> equal_func t t'
          | None -> false)
        | None -> false);
    Test.make ~name:"self-match: every ground term matches itself" ~count:300
      arb (fun t -> Option.is_some (M.func S.empty t t));
    Test.make ~name:"matching is stable under reassociation" ~count:300 arb
      (fun t ->
        Option.is_some (M.func S.empty (reassoc_func t) t)
        && Option.is_some (M.func S.empty t (reassoc_func t)));
  ]

let tests = tests @ List.map (QCheck_alcotest.to_alcotest ~long:false) props

test/test_optimizer.ml: Alcotest Aqua Datagen Eval Filename Fmt Kola List Optimizer Option Paper Rewrite Rules Util

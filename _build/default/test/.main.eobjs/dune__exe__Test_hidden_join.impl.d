test/test_hidden_join.ml: Alcotest Aqua Coko Fmt Kola List Option Pretty Rewrite Rules Term Translate Util Value

test/test_eval.ml: Alcotest Datagen Eval Kola Option Paper Term Util Value

test/test_parse.ml: Alcotest Gen Kola List Paper Parse Pretty QCheck QCheck_alcotest Term Test Util Value

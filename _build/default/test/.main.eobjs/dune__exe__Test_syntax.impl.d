test/test_syntax.ml: Alcotest Coko Kola List Option Paper Rewrite Rules Sys Term Util

test/main.mli:

test/test_fig6.ml: Alcotest Coko Dump Fmt Kola List Option Paper Rewrite Rules Term Util Value

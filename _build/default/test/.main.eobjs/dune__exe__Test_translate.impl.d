test/test_translate.ml: Alcotest Aqua Datagen Eval Fmt Kola List Paper Pretty QCheck QCheck_alcotest Term Translate Util Value

test/test_company.ml: Alcotest Aqua Datagen Eval Kola List Optimizer Option Parse Rewrite Rules Schema Term Ty Typing Util Value

test/test_oql.ml: Alcotest Aqua Kola List Optimizer Option Oql Util Value

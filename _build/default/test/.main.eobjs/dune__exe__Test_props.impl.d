test/test_props.ml: Alcotest Eval Kola Option Paper Rewrite Rules Schema Term Util Value

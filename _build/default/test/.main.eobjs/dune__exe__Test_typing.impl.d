test/test_typing.ml: Alcotest Kola Paper Schema Term Ty Typing Util Value

test/test_garage.ml: Alcotest Coko Datagen Eval Fmt Kola List Option Paper Term Util

test/util.ml: Alcotest Aqua Datagen Eval Kola Pretty Term Translate Ty Value

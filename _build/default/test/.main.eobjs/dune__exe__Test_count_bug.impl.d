test/test_count_bug.ml: Alcotest Eval Fmt Kola List Term Util Value

test/test_baseline.ml: Alcotest Aqua Baseline List Util

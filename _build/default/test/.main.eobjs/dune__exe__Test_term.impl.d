test/test_term.ml: Alcotest Fmt Gen Kola List Paper Pretty QCheck QCheck_alcotest Term Test Util Value

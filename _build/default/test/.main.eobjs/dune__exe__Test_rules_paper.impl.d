test/test_rules_paper.ml: Alcotest Datagen Eval Kola List Paper Pretty Rewrite Rules Term Util Value

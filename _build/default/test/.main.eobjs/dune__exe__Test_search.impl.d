test/test_search.ml: Alcotest Dump Filename Fmt Kola List Optimizer Option Paper Rewrite Rules Term Util Value

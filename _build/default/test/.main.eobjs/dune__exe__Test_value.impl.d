test/test_value.ml: Alcotest Gen Kola List QCheck QCheck_alcotest Test Util Value

test/test_store.ml: Alcotest Aqua Datagen Eval Kola List Option Paper Term Translate Util Value

test/test_fig4.ml: Alcotest Coko Dump Eval Fmt Kola List Paper Rewrite Rules Term Util Value

test/test_match.ml: Alcotest Gen Kola List Option Pretty QCheck QCheck_alcotest Rewrite Test Util Value

test/test_rules_cert.ml: Alcotest Fmt Kola Lazy List Option Rewrite Rules String Util

test/test_strategy.ml: Alcotest Dump Fmt Kola Pretty Rewrite Rules Util Value

test/test_rules_extra.ml: Alcotest Aqua Coko Datagen Eval Kola List Option Pretty Rewrite Rules Term Util Value

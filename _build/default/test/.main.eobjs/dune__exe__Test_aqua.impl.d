test/test_aqua.ml: Alcotest Aqua Gen Kola List QCheck QCheck_alcotest Test Util Value

test/test_engine_sound.ml: Alcotest Aqua Datagen Eval Kola List Option Paper QCheck QCheck_alcotest Rewrite Rules Test Translate Util Value

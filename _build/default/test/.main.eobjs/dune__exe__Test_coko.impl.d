test/test_coko.ml: Alcotest Coko Fmt Kola List Paper Pretty Rewrite Term Util Value

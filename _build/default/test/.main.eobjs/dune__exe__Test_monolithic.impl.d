test/test_monolithic.ml: Alcotest Aqua Baseline Coko Fmt Kola List Option Paper Term Translate Util

test/test_bags.ml: Alcotest Datagen Eval Kola List Paper Term Util Value

test/test_lint.ml: Alcotest Coko Dump Fmt Kola List Rewrite Rules Util

(* The KOLA term parser: paper notation in, terms out; round-trips through
   the pretty-printer. *)

open Kola
open Kola.Term
open Util

let tests =
  [
    case "basic function expressions" (fun () ->
        Alcotest.check func "compose" (Compose (Prim "city", Prim "addr"))
          (Parse.func "city o addr");
        Alcotest.check func "pair former" (Pairf (Id, Prim "child"))
          (Parse.func "<id, child>");
        Alcotest.check func "product" (Times (Id, Prim "cars"))
          (Parse.func "id x cars");
        Alcotest.check func "kf" (Kf (int 25)) (Parse.func "Kf(25)");
        Alcotest.check func "projection" Pi1 (Parse.func "pi1"));
    case "precedence: x binds tighter than o" (fun () ->
        Alcotest.check func "chain of products"
          (Compose (Times (Unnest (Pi1, Pi2), Id), Pairf (Join (Kp true, Id), Pi1)))
          (Parse.func "unnest(pi1, pi2) x id o <join(Kp(T), id), pi1>"));
    case "predicates" (fun () ->
        Alcotest.check pred "oplus"
          (Oplus (Gt, Pairf (Prim "age", Kf (int 25))))
          (Parse.pred "gt (+) <age, Kf(25)>");
        Alcotest.check pred "and/or precedence"
          (Orp (Andp (Kp true, Eq), In))
          (Parse.pred "Kp(T) & eq | in");
        Alcotest.check pred "inverse" (Inv Gt) (Parse.pred "gt^-1");
        Alcotest.check pred "converse" (Conv Gt) (Parse.pred "gt^o");
        Alcotest.check pred "cp" (Cp (Leq, int 25)) (Parse.pred "Cp(leq, 25)"));
    case "values" (fun () ->
        Alcotest.check value "pair" (pair (int 1) (Value.Str "a"))
          (Parse.value "[1, \"a\"]");
        Alcotest.check value "set" (set [ int 1; int 2 ]) (Parse.value "{1, 2}");
        Alcotest.check value "named" (Value.Named "P") (Parse.value "P");
        Alcotest.check value "unit" Value.Unit (Parse.value "()");
        Alcotest.check value "negative" (int (-5)) (Parse.value "-5"));
    case "holes parse in all three sorts" (fun () ->
        Alcotest.check func "fhole" (Fhole "f") (Parse.func "?f");
        Alcotest.check pred "phole" (Phole "p") (Parse.pred "?p");
        Alcotest.check value "vhole" (Value.Hole "k") (Parse.value "?k"));
    case "queries" (fun () ->
        Alcotest.check query "t1k"
          Paper.t1k_target
          (Parse.query "iterate(Kp(T), city o addr) ! P"));
    case "rule 19's shape parses" (fun () ->
        let q = Parse.query "iterate(Kp(T), <id, Kf(?B)>) ! ?A" in
        Alcotest.check value "arg hole" (Value.Hole "A") q.Term.arg);
    case "pretty-printer output re-parses (KG1, KG2, K3, K4)" (fun () ->
        List.iter
          (fun q ->
            let s = Pretty.query_to_string q in
            Alcotest.check query s q (Parse.query s))
          [ Paper.kg1; Paper.kg2; Paper.k3; Paper.k4; Paper.k4_optimized;
            Paper.t2k_source; Paper.t2k_target ]);
    case "parse errors" (fun () ->
        List.iter
          (fun src ->
            match Parse.func src with
            | exception Parse.Error _ -> ()
            | f -> Alcotest.failf "accepted %S as %a" src Pretty.pp_func f)
          [ "iterate(,)"; "<id,"; "Kf("; "con(eq, id)"; "id o"; "" ]);
    case "evaluating a parsed query works" (fun () ->
        let q = Parse.query "iterate(gt (+) <age, Kf(25)>, name) ! P" in
        Alcotest.check value "names over 25"
          (set [ Value.Str "alice"; Value.Str "dave" ])
          (eval_tiny q));
  ]

let props =
  let open QCheck in
  (* pretty-print/parse round trip over random ground functions *)
  let atom =
    Gen.oneofl
      [ Id; Pi1; Pi2; Flat; Prim "age"; Prim "child"; Kf (Value.Int 7);
        Iterate (Kp true, Prim "age"); Nest (Pi1, Pi2) ]
  in
  let func_gen =
    Gen.(
      sized_size (int_bound 4) @@ fix (fun self n ->
          if n = 0 then atom
          else
            oneof
              [
                atom;
                map2 (fun a b -> Compose (a, b)) (self (n - 1)) (self (n - 1));
                map2 (fun a b -> Pairf (a, b)) (self (n - 1)) (self (n - 1));
                map2 (fun a b -> Times (a, b)) (self (n - 1)) (self (n - 1));
                map2 (fun p f -> Con (p, f, f))
                  (oneofl [ Kp true; Gt; Oplus (Gt, Pairf (Id, Kf (Value.Int 3))) ])
                  (self (n - 1));
              ]))
  in
  let arb = QCheck.make ~print:Pretty.func_to_string func_gen in
  [
    Test.make ~name:"pp then parse is the identity (mod assoc)" ~count:300 arb
      (fun f ->
        let s = Pretty.func_to_string f in
        match Parse.func s with
        | f' -> equal_func_assoc f f'
        | exception Parse.Error _ -> false);
  ]

let tests = tests @ List.map (QCheck_alcotest.to_alcotest ~long:false) props

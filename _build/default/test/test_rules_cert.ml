(* Experiment E-C2: the certification harness over the whole catalog — our
   analogue of the paper's 500 LP-verified rules — plus the refutation of
   the paper's printed rule 13. *)

open Util

let results = lazy (Rules.Cert.certify_all ~samples:30 ~inputs:8 Rules.Catalog.all)

let tests =
  [
    case "every catalog rule is certified" (fun () ->
        let failures =
          List.filter (fun r -> not (Rules.Cert.certified r)) (Lazy.force results)
        in
        if failures <> [] then
          Alcotest.failf "uncertified rules: %a"
            Fmt.(list ~sep:comma string)
            (List.map (fun (r : Rules.Cert.result) -> r.rule.Rewrite.Rule.name) failures));
    case "certification exercises real instantiations" (fun () ->
        List.iter
          (fun (r : Rules.Cert.result) ->
            Alcotest.check Alcotest.bool
              (Fmt.str "%s has instances" r.rule.Rewrite.Rule.name)
              true (r.instances > 0))
          (Lazy.force results));
    case "the catalog carries every Figure 5 and Figure 8 rule" (fun () ->
        List.iter
          (fun name ->
            Alcotest.check Alcotest.bool name true
              (Option.is_some (Rules.Catalog.find name)))
          [
            "r1"; "r2"; "r3"; "r4"; "r5"; "r6t"; "r6f"; "r7"; "r8"; "r9";
            "r10"; "r11"; "r12"; "r13"; "r14"; "r15"; "r16"; "r17"; "r18";
            "r19"; "r20"; "r21"; "r22"; "r23"; "r24";
          ]);
    case "the paper's printed rule 13 is refuted (boundary erratum)" (fun () ->
        let r = Rules.Cert.certify ~samples:80 ~inputs:20 Rules.Basic.r13_paper in
        Alcotest.check Alcotest.bool "counterexample found" true
          (Option.is_some r.Rules.Cert.counterexample));
    case "flipped rules are also certified (bidirectional use)" (fun () ->
        List.iter
          (fun name ->
            let r = Rules.Cert.certify ~samples:20 ~inputs:8
                (Rewrite.Rule.flip (Rules.Catalog.find_exn name))
            in
            Alcotest.check Alcotest.bool (name ^ "-1") true (Rules.Cert.certified r))
          [ "r2"; "r12"; "r14" ]);
    case "a deliberately wrong rule is refuted" (fun () ->
        (* claim: π1 ∘ ⟨f, g⟩ ≡ g — wrong *)
        let bogus =
          Rewrite.Rule.fun_rule ~name:"bogus" ~description:"wrong projection"
            (Kola.Term.Compose (Kola.Term.Pi1, Kola.Term.Pairf (Kola.Term.Fhole "f", Kola.Term.Fhole "g")))
            (Kola.Term.Fhole "g")
        in
        let r = Rules.Cert.certify ~samples:60 ~inputs:20 bogus in
        Alcotest.check Alcotest.bool "refuted" true
          (Option.is_some r.Rules.Cert.counterexample));
    case "catalog names are unique" (fun () ->
        let names = Rules.Catalog.names () in
        Alcotest.check Alcotest.int "no duplicates"
          (List.length names)
          (List.length (List.sort_uniq String.compare names)));
    case "Catalog.rules resolves -1 suffixes to flipped rules" (fun () ->
        match Rules.Catalog.rules [ "r12-1" ] with
        | [ r ] -> Alcotest.check Alcotest.string "name" "r12-1" r.Rewrite.Rule.name
        | _ -> Alcotest.fail "expected one rule");
  ]

(* The rule linter: the whole catalog is well-formed; deliberately bad
   rules are flagged. *)

open Kola.Term
module L = Rules.Lint
open Util

let tests =
  [
    case "the entire catalog is lint-clean" (fun () ->
        match L.check_all Rules.Catalog.all with
        | [] -> ()
        | problems ->
          Alcotest.failf "problems: %a"
            Fmt.(
              list ~sep:semi (fun ppf (r, ps) ->
                  pf ppf "%s: %a" r.Rewrite.Rule.name (list L.pp_problem) ps))
            problems);
    case "an unbound right-hand-side hole is flagged" (fun () ->
        let bad =
          Rewrite.Rule.fun_rule ~name:"bad" ~description:"bad"
            (Compose (Fhole "f", Id))
            (Compose (Fhole "f", Fhole "ghost"))
        in
        match L.check bad with
        | [ L.Unbound_rhs_hole "f:ghost" ] -> ()
        | ps -> Alcotest.failf "unexpected %a" Fmt.(Dump.list L.pp_problem) ps);
    case "a bare-hole left-hand side is flagged" (fun () ->
        let bad =
          Rewrite.Rule.fun_rule ~name:"bad" ~description:"bad" (Fhole "f")
            (Fhole "f")
        in
        Alcotest.check Alcotest.bool "flagged" true
          (List.mem L.Lhs_is_a_bare_hole (L.check bad)));
    case "untypable sides are flagged" (fun () ->
        let bad =
          Rewrite.Rule.fun_rule ~name:"bad" ~description:"bad"
            (Compose (Prim "age", Prim "age"))
            Id
        in
        Alcotest.check Alcotest.bool "flagged" true
          (List.exists
             (function L.Side_does_not_type _ -> true | _ -> false)
             (L.check bad)));
    case "preconditions must name pattern holes" (fun () ->
        let bad =
          Rewrite.Rule.fun_rule ~name:"bad" ~description:"bad"
            ~preconditions:[ { Rewrite.Rule.prop = Rewrite.Props.Injective; hole = "zz" } ]
            (Compose (Fhole "f", Id))
            (Fhole "f")
        in
        match L.check bad with
        | [ L.Unknown_precondition_hole "zz" ] -> ()
        | ps -> Alcotest.failf "unexpected %a" Fmt.(Dump.list L.pp_problem) ps);
    case "COKO text rules are linted like native ones" (fun () ->
        let p = Coko.Syntax.parse_program "RULE t: id o ?f --> ?f" in
        Alcotest.check Alcotest.int "clean" 0
          (List.length (L.check_all p.Coko.Syntax.rules)));
    case "engine stats now report match attempts" (fun () ->
        let o = Rewrite.Engine.run ~fuel:5 Rules.Catalog.all Kola.Paper.kg1 in
        Alcotest.check Alcotest.bool "attempts counted" true
          (o.Rewrite.Engine.stats.Rewrite.Engine.attempts
          > o.Rewrite.Engine.stats.Rewrite.Engine.firings));
  ]

(* Ablation (Section 4.2's discussion): a monolithic hidden-join rule with
   deep-diving head routine and hard-coded body routine, against the
   gradual five-step strategy. *)

open Kola
open Util

let translated depth = Translate.Compile.query (Aqua.Examples.hidden_join_depth depth)

let expected depth =
  resolved tiny_db
    (Aqua.Eval.eval_closed ~db:tiny_db (Aqua.Examples.hidden_join_depth depth))

let tests =
  [
    case "monolithic handles its anticipated depths correctly" (fun () ->
        List.iter
          (fun depth ->
            match Baseline.Monolithic.transform (translated depth) with
            | Some q' ->
              Alcotest.check value
                (Fmt.str "depth %d" depth)
                (expected depth)
                (resolved tiny_db (eval_tiny q'))
            | None -> Alcotest.failf "depth %d should be handled" depth)
          [ 1; 2 ]);
    case "monolithic handles the garage query" (fun () ->
        let q = Translate.Compile.query Aqua.Examples.garage in
        match Baseline.Monolithic.transform q with
        | Some q' ->
          Alcotest.check value "garage"
            (resolved tiny_db (eval_tiny Paper.kg1))
            (resolved tiny_db (eval_tiny q'))
        | None -> Alcotest.fail "garage should be handled");
    case "monolithic fails beyond its anticipated depths (generality gap)"
      (fun () ->
        List.iter
          (fun depth ->
            Alcotest.check Alcotest.bool
              (Fmt.str "depth %d rejected" depth)
              true
              (Option.is_none (Baseline.Monolithic.transform (translated depth))))
          [ 3; 4; 5; 6 ]);
    case "the gradual strategy handles every depth the monolithic cannot"
      (fun () ->
        List.iter
          (fun depth ->
            let o, blocks = Coko.Programs.hidden_join (translated depth) in
            Alcotest.check Alcotest.bool
              (Fmt.str "depth %d applied" depth)
              true
              (List.for_all snd blocks);
            Alcotest.check value
              (Fmt.str "depth %d correct" depth)
              (expected depth)
              (resolved tiny_db (eval_tiny o.Coko.Block.query)))
          [ 3; 4; 5; 6 ]);
    case "the failed monolithic match still paid a dive proportional to depth"
      (fun () ->
        let c3 = Baseline.Monolithic.match_cost (translated 3) in
        let c6 = Baseline.Monolithic.match_cost (translated 6) in
        Alcotest.check Alcotest.bool
          (Fmt.str "cost grows (%d < %d)" c3 c6)
          true (c3 < c6));
    case "a failed monolithic rule leaves the query unsimplified" (fun () ->
        let q = translated 4 in
        (* monolithic: no transformation at all *)
        Alcotest.check Alcotest.bool "unchanged" true
          (Option.is_none (Baseline.Monolithic.transform q));
        (* gradual: even when we cut the pipeline after step 1, the query is
           already smaller-grained (broken into an iterate chain) *)
        let o = Coko.Block.run Coko.Programs.breakup q in
        Alcotest.check Alcotest.bool "breakup applied" true o.Coko.Block.applied;
        Alcotest.check Alcotest.bool "chain lengthened" true
          (List.length (Term.unchain o.Coko.Block.query.Term.body)
          > List.length (Term.unchain q.Term.body)));
    case "head routine recognises the Figure 7 form structurally" (fun () ->
        match Baseline.Monolithic.recognize (translated 3) with
        | Some r ->
          Alcotest.check Alcotest.int "three layers" 3
            (List.length r.Baseline.Monolithic.layers)
        | None -> Alcotest.fail "should recognise");
    case "head routine rejects non-hidden-join queries" (fun () ->
        Alcotest.check Alcotest.bool "k4 rejected" true
          (Option.is_none (Baseline.Monolithic.recognize Paper.k4)));
  ]

(* Experiment E-C4: the "count bug" of Kim [24], cited by the paper as the
   canonical example of how hard correct nested-query transformation is.

   Query: for each person, the number of their children older than 25.
   The buggy classical unnesting computes the counts over a *join* of P with
   children — losing persons with no qualifying children instead of
   reporting 0 for them.  KOLA's nest(...)  relative to the outer set (rule
   19/20 machinery) keeps those persons with the empty group, so the
   rule-derived plan is immune. *)

open Kola
open Kola.Term
open Util

(* The correct query, nested form:
   iterate(Kp T, ⟨id, cnt ∘ iter(gt ⊕ ⟨age ∘ π2, Kf 0⟩ ... ⟩) over child. *)
let counts_query threshold =
  Term.query
    (Iterate
       ( Kp true,
         Pairf
           ( Id,
             Compose
               ( Agg Count,
                 Compose
                   ( Iter
                       ( Oplus
                           (Gt, Pairf (Compose (Prim "age", Pi2), Kf (int threshold))),
                         Pi2 ),
                     Pairf (Id, Prim "child") ) ) ) ))
    (Value.Named "P")

(* The buggy unnesting: join persons with their children, filter, group by
   person, count — persons with no qualifying children disappear. *)
let buggy_unnested threshold db =
  let persons = List.assoc "P" db in
  let pairs =
    Eval.eval_func ~db (Unnest (Id, Prim "child")) persons
  in
  let filtered =
    Eval.eval_func ~db
      (Iterate (Oplus (Gt, Pairf (Compose (Prim "age", Pi2), Kf (int threshold))), Id))
      pairs
  in
  (* group only over keys that survived the join: the bug *)
  let keys = Eval.eval_func ~db (Iterate (Kp true, Pi1)) filtered in
  Eval.eval_func ~db
    (Compose
       ( Iterate (Kp true, Pairf (Pi1, Compose (Agg Count, Pi2))),
         Nest (Pi1, Pi2) ))
    (Value.Pair (filtered, keys))

(* The rule-derived repair: nest *relative to P* (the second argument of
   nest), exactly what rule 19/20's shapes produce. *)
let nest_based threshold db =
  let persons = List.assoc "P" db in
  let pairs = Eval.eval_func ~db (Unnest (Id, Prim "child")) persons in
  let filtered =
    Eval.eval_func ~db
      (Iterate (Oplus (Gt, Pairf (Compose (Prim "age", Pi2), Kf (int threshold))), Id))
      pairs
  in
  Eval.eval_func ~db
    (Compose
       ( Iterate (Kp true, Pairf (Pi1, Compose (Agg Count, Pi2))),
         Nest (Pi1, Pi2) ))
    (Value.Pair (filtered, persons))

let cardinality = function
  | Value.Set xs -> List.length xs
  | _ -> -1

let tests =
  [
    case "the buggy unnesting loses childless persons" (fun () ->
        let reference = eval_tiny (counts_query 25) in
        let buggy = buggy_unnested 25 tiny_db in
        Alcotest.check Alcotest.bool "cardinality dropped" true
          (cardinality buggy < cardinality reference);
        Alcotest.check Alcotest.bool "results differ" false
          (Value.equal (resolved tiny_db reference) (resolved tiny_db buggy)));
    case "nest relative to P reproduces the nested semantics" (fun () ->
        let reference = resolved tiny_db (eval_tiny (counts_query 25)) in
        Alcotest.check value "repaired" reference
          (resolved tiny_db (nest_based 25 tiny_db)));
    case "the repair also holds on a generated store and other thresholds"
      (fun () ->
        List.iter
          (fun threshold ->
            let reference =
              resolved gen_db (eval_gen (counts_query threshold))
            in
            Alcotest.check value
              (Fmt.str "threshold %d" threshold)
              reference
              (resolved gen_db (nest_based threshold gen_db)))
          [ 0; 25; 99 ]);
    case "KOLA's nest never produces NULLs: empty groups instead" (fun () ->
        (* every person appears, childless ones with count 0 *)
        match resolved tiny_db (eval_tiny (counts_query 25)) with
        | Value.Set entries ->
          Alcotest.check Alcotest.int "all four persons" 4 (List.length entries);
          let zero_counts =
            List.filter
              (function Value.Pair (_, Value.Int 0) -> true | _ -> false)
              entries
          in
          Alcotest.check Alcotest.bool "some zero-count persons" true
            (List.length zero_counts > 0)
        | v -> Alcotest.failf "unexpected %a" Value.pp v);
  ]

(* The AQUA → KOLA translator (experiments E-F3 source side and E-C1):
   paper-form outputs, semantic correctness on random queries, and the
   Section 4.2 size claims. *)

open Kola
open Util

let tests =
  [
    case "the Garage Query translates to KG1 verbatim" (fun () ->
        Alcotest.check query "kg1" Paper.kg1
          (Translate.Compile.query Aqua.Examples.garage));
    case "A3 translates to K3 and A4 to K4" (fun () ->
        Alcotest.check query "k3" Paper.k3 (Translate.Compile.query Aqua.Examples.a3);
        Alcotest.check query "k4" Paper.k4 (Translate.Compile.query Aqua.Examples.a4));
    case "T1/T2 sources translate to the Figure 4 sources" (fun () ->
        Alcotest.check query "t1k" Paper.t1k_source
          (Translate.Compile.query Aqua.Examples.t1_source);
        Alcotest.check query "t2k" Paper.t2k_source
          (Translate.Compile.query Aqua.Examples.t2_source));
    case "variable access compiles to π-chains" (fun () ->
        Alcotest.check func "x1 of 3" (Term.Compose (Term.Pi1, Term.Pi1))
          (Translate.Compile.access 3 1);
        Alcotest.check func "x2 of 3" (Term.Compose (Term.Pi2, Term.Pi1))
          (Translate.Compile.access 3 2);
        Alcotest.check func "x3 of 3" Term.Pi2 (Translate.Compile.access 3 3);
        Alcotest.check func "x1 of 1" Term.Id (Translate.Compile.access 1 1));
    case "shadowing: the innermost binder wins" (fun () ->
        let e =
          Aqua.Ast.(
            App
              ( lam "p" (Pair (Var "p", Path (Var "p", "age"))),
                App (lam "p" (Var "p"), Extent "P") ))
        in
        check_translation "shadowed" e);
    case "closed join translates to the join combinator" (fun () ->
        let e =
          Aqua.Ast.(
            Join
              ( lam2 "a" "b" (Bin (In, Var "a", Path (Var "b", "cars"))),
                lam2 "a" "b" (Pair (Var "a", Var "b")),
                Extent "V", Extent "P" ))
        in
        let q = Translate.Compile.query e in
        (match q.Term.body with
        | Term.Join _ -> ()
        | f -> Alcotest.failf "expected a join, got %a" Pretty.pp_func f);
        check_translation "join" e);
    case "nested join desugars to app/sel" (fun () ->
        let inner =
          Aqua.Ast.(
            Join
              ( lam2 "a" "b" (Bin (Gt, Path (Var "a", "age"), Path (Var "b", "age"))),
                lam2 "a" "b" (Var "b"),
                Path (Var "p", "child"), Extent "P" ))
        in
        let e = Aqua.Ast.(App (lam "p" (Pair (Var "p", inner)), Extent "P")) in
        check_translation "nested join" e);
    case "if/then/else becomes con" (fun () ->
        check_translation "con" Aqua.Examples.a4_optimized);
    case "aggregates and arithmetic translate" (fun () ->
        let e =
          Aqua.Ast.(
            App
              ( lam "p"
                  (Bin
                     ( Add,
                       Agg (Term.Count, Path (Var "p", "child")),
                       Path (Var "p", "age") )),
                Extent "P" ))
        in
        check_translation "agg" e);
    case "booleans in value position become conditionals" (fun () ->
        let e =
          Aqua.Ast.(
            App (lam "p" (Bin (Gt, Path (Var "p", "age"), Const (int 21))), Extent "P"))
        in
        check_translation "bool value" e);
    case "open expressions are rejected" (fun () ->
        match Translate.Compile.query (Aqua.Ast.Var "loose") with
        | exception Translate.Compile.Untranslatable _ -> ()
        | _ -> Alcotest.fail "expected Untranslatable");
    case "lt and geq compile via the converse former" (fun () ->
        let e =
          Aqua.Ast.(
            Sel (lam "p" (Bin (Lt, Path (Var "p", "age"), Const (int 30))), Extent "P"))
        in
        check_translation "lt" e;
        let e =
          Aqua.Ast.(
            Sel (lam "p" (Bin (Geq, Path (Var "p", "age"), Const (int 30))), Extent "P"))
        in
        check_translation "geq" e);
  ]

(* The randomized translator-correctness property (our stand-in for the
   paper's "designed, implemented and verified translators" claim). *)
let correctness_props =
  let mk ~depth ~seed =
    QCheck.Test.make
      ~name:(Fmt.str "AQUA and translated KOLA agree (depth %d)" depth)
      ~count:120
      (QCheck.make
         ~print:(fun i -> Aqua.Pretty.to_string (Datagen.Queries.query ~seed:(seed + i) ~depth))
         QCheck.Gen.(int_bound 100_000))
      (fun i ->
        let e = Datagen.Queries.query ~seed:(seed + i) ~depth in
        let q = Translate.Compile.query e in
        let va = resolved tiny_db (Aqua.Eval.eval_closed ~db:tiny_db e) in
        let vk = resolved tiny_db (Eval.eval_query ~db:tiny_db q) in
        Value.equal va vk)
  in
  [ mk ~depth:2 ~seed:100; mk ~depth:3 ~seed:4_000; mk ~depth:5 ~seed:9_000 ]

(* Section 4.2 size claims (E-C1). *)
let size_claims =
  [
    case "translated queries stay under 2x the source (paper's observation)"
      (fun () ->
        let queries = Datagen.Queries.suite ~count:60 ~seed:31 ~depth:4 in
        let ratios =
          List.map (fun e -> (Translate.Compile.measure e).Translate.Compile.ratio) queries
        in
        let avg = List.fold_left ( +. ) 0. ratios /. float_of_int (List.length ratios) in
        Alcotest.check Alcotest.bool (Fmt.str "average ratio %.2f < 2" avg) true
          (avg < 2.0));
    case "size grows O(mn): ratio bounded by c*m across depths" (fun () ->
        List.iter
          (fun depth ->
            let queries = Datagen.Queries.suite ~count:30 ~seed:77 ~depth in
            List.iter
              (fun e ->
                let m = Translate.Compile.measure e in
                let bound =
                  3 * (max 1 m.Translate.Compile.nesting) * m.Translate.Compile.aqua_size
                in
                Alcotest.check Alcotest.bool
                  (Fmt.str "kola=%d <= 3*m*n=%d" m.Translate.Compile.kola_size bound)
                  true
                  (m.Translate.Compile.kola_size <= bound))
              queries)
          [ 1; 3; 5 ]);
    case "the garage query measures m=2, ratio < 2" (fun () ->
        let m = Translate.Compile.measure Aqua.Examples.garage in
        Alcotest.check Alcotest.int "m" 2 m.Translate.Compile.nesting;
        Alcotest.check Alcotest.bool "ratio" true (m.Translate.Compile.ratio < 2.0));
  ]

let tests =
  tests
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) correctness_props
  @ size_claims

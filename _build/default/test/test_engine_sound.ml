(* The global soundness property: any sequence of engine firings drawn from
   the full catalog preserves the denotation of any (random, well-typed)
   query.  This exercises every rule, the associativity-window matcher, the
   traversal strategies and the query-rule machinery together.

   Note the rule set is not terminating as a whole (x-join-expand and
   x-sel-join-absorb oppose each other), so runs are fuel-bounded — the
   property is about *prefixes* of derivations, which is what an optimizer
   with a search strategy actually uses. *)

open Kola
open Util

let preserved ?(fuel = 40) rules q db =
  let before = resolved db (Eval.eval_query ~db q) in
  let o = Rewrite.Engine.run ~fuel rules q in
  let after = resolved db (Eval.eval_query ~db o.Rewrite.Engine.query) in
  Value.equal before after

let props =
  let open QCheck in
  let mk ~name ~depth ~rules ~count =
    Test.make ~name ~count
      (QCheck.make
         ~print:(fun i ->
           Aqua.Pretty.to_string (Datagen.Queries.query ~seed:i ~depth))
         QCheck.Gen.(int_bound 1_000_000))
      (fun i ->
        let e = Datagen.Queries.query ~seed:i ~depth in
        let q = Translate.Compile.query e in
        preserved rules q tiny_db)
  in
  [
    mk ~name:"full catalog preserves semantics (depth 2)" ~depth:2
      ~rules:Rules.Catalog.all ~count:60;
    mk ~name:"full catalog preserves semantics (depth 4)" ~depth:4
      ~rules:Rules.Catalog.all ~count:60;
    mk ~name:"figure-5 rules preserve semantics (depth 3)" ~depth:3
      ~rules:Rules.Catalog.figure5 ~count:60;
    mk ~name:"flipped figure-5 rules preserve semantics (depth 3)" ~depth:3
      ~rules:(List.map Rewrite.Rule.flip Rules.Catalog.figure5) ~count:40;
  ]

let tests =
  [
    case "the full catalog preserves the paper queries" (fun () ->
        List.iter
          (fun q ->
            Alcotest.check Alcotest.bool "preserved" true
              (preserved Rules.Catalog.all q tiny_db))
          [ Paper.kg1; Paper.kg2; Paper.k3; Paper.k4; Paper.t1k_source;
            Paper.t2k_source ]);
    case "fuel bounds runaway rule interactions" (fun () ->
        (* x-join-expand / x-sel-join-absorb oppose each other; the engine
           must stop at the fuel bound rather than hang *)
        let o = Rewrite.Engine.run ~fuel:25 Rules.Catalog.all Paper.kg2 in
        Alcotest.check Alcotest.bool "bounded" true
          (List.length o.Rewrite.Engine.trace <= 25));
    case "every firing in a trace names a catalog rule" (fun () ->
        let o = Rewrite.Engine.run ~fuel:30 Rules.Catalog.all Paper.kg1 in
        List.iter
          (fun (s : Rewrite.Engine.step) ->
            Alcotest.check Alcotest.bool s.rule_name true
              (Option.is_some (Rules.Catalog.find s.rule_name)))
          o.Rewrite.Engine.trace);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) props

(* The Starburst/EXODUS-style baseline (experiments E-F1, E-F2): the same
   transformations need head and body routines over AQUA. *)

open Util

let run rules e = (Baseline.Engine.run rules e).Baseline.Engine.expr

let tests =
  [
    case "T1: composing map bodies (body routine does substitution)" (fun () ->
        Alcotest.check aqua "target" Aqua.Examples.t1_target
          (run [ Baseline.Catalog.t1_compose_maps ] Aqua.Examples.t1_source));
    case "T1 preserves semantics" (fun () ->
        let e = run [ Baseline.Catalog.t1_compose_maps ] Aqua.Examples.t1_source in
        Alcotest.check value "sem"
          (Aqua.Eval.eval_closed ~db:tiny_db Aqua.Examples.t1_source)
          (Aqua.Eval.eval_closed ~db:tiny_db e));
    case "T2: decomposing a predicate (head routine does α-comparison)"
      (fun () ->
        Alcotest.check aqua "target" Aqua.Examples.t2_target
          (run [ Baseline.Catalog.t2_decompose_predicate ] Aqua.Examples.t2_source));
    case "T2's head routine sees through the renamed binder" (fun () ->
        (* the paper's example: λ(x) x.age must be recognised inside
           λ(p) p.age > 25 *)
        let o =
          Baseline.Engine.run [ Baseline.Catalog.t2_decompose_predicate ]
            Aqua.Examples.t2_source
        in
        Alcotest.check Alcotest.int "fired once" 1 (List.length o.Baseline.Engine.trace));
    case "T2 refuses mismatched bodies" (fun () ->
        (* app(λx.x.name) over sel on age: not the same subfunction *)
        let e =
          Aqua.Ast.(
            App
              ( lam "x" (Path (Var "x", "name")),
                Sel (lam "p" (Bin (Gt, Path (Var "p", "age"), Const (int 25))), Extent "P") ))
        in
        let o = Baseline.Engine.run [ Baseline.Catalog.t2_decompose_predicate ] e in
        Alcotest.check Alcotest.int "no firing" 0 (List.length o.Baseline.Engine.trace));
    case "code motion fires on A4" (fun () ->
        Alcotest.check aqua "a4 optimized" Aqua.Examples.a4_optimized
          (run [ Baseline.Catalog.code_motion ] Aqua.Examples.a4));
    case "code motion's head routine rejects A3 (environmental analysis)"
      (fun () ->
        let o = Baseline.Engine.run [ Baseline.Catalog.code_motion ] Aqua.Examples.a3 in
        Alcotest.check Alcotest.int "no firing" 0 (List.length o.Baseline.Engine.trace));
    case "code motion preserves semantics on both stores" (fun () ->
        let e = run [ Baseline.Catalog.code_motion ] Aqua.Examples.a4 in
        List.iter
          (fun db ->
            Alcotest.check value "sem"
              (Aqua.Eval.eval_closed ~db Aqua.Examples.a4)
              (Aqua.Eval.eval_closed ~db e))
          [ tiny_db; gen_db ]);
    case "selection cascade merges predicates" (fun () ->
        let e =
          Aqua.Ast.(
            Sel
              ( lam "x" (Bin (Gt, Path (Var "x", "age"), Const (int 10))),
                Sel (lam "y" (Bin (Leq, Path (Var "y", "age"), Const (int 40))), Extent "P") ))
        in
        let e' = run [ Baseline.Catalog.sel_cascade ] e in
        (match e' with
        | Aqua.Ast.Sel (_, Aqua.Ast.Extent "P") -> ()
        | _ -> Alcotest.fail "not merged");
        Alcotest.check value "sem"
          (Aqua.Eval.eval_closed ~db:tiny_db e)
          (Aqua.Eval.eval_closed ~db:tiny_db e'));
    case "engine rewrites leftmost-outermost and traces" (fun () ->
        let e = Aqua.Examples.t1_source in
        let o = Baseline.Engine.run Baseline.Catalog.all e in
        Alcotest.check Alcotest.bool "traced" true
          (List.length o.Baseline.Engine.trace >= 1));
  ]

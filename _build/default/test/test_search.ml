(* The exploration optimizer: pure search over the declarative catalog
   discovers the paper's short derivations, cannot discover the long one —
   quantifying the COKO motivation. *)

open Kola
module Search = Optimizer.Search
open Util

let with_flips =
  Rules.Catalog.all
  @ List.map Rewrite.Rule.flip (Rules.Catalog.rules [ "r14"; "r12" ])

let cfg ?(rules = with_flips) ?(max_depth = 8) ?(max_states = 4_000) () =
  { Search.default_config with rules; max_depth; max_states }

let tests =
  [
    case "search discovers T1K (Figure 4) from the catalog alone" (fun () ->
        match Search.reaches Paper.t1k_source Paper.t1k_target with
        | Some path ->
          Alcotest.check Alcotest.bool "derivation starts with rule 11" true
            (List.hd path = "r11")
        | None -> Alcotest.fail "T1K not found");
    case "search discovers T2K (needs rule 12 right-to-left)" (fun () ->
        match
          Search.reaches ~config:(cfg ()) Paper.t2k_source Paper.t2k_target
        with
        | Some path ->
          Alcotest.check Alcotest.bool "uses a flipped rule" true
            (List.exists (fun r -> Filename.check_suffix r "-1") path)
        | None -> Alcotest.fail "T2K not found");
    case "search discovers the K4 code motion (Figure 6)" (fun () ->
        match
          Search.reaches
            ~config:(cfg ~max_depth:12 ~max_states:8_000 ())
            Paper.k4 Paper.k4_optimized
        with
        | Some path ->
          (* the discovered derivation opens like the paper's: 13, 14, 15 *)
          (match path with
          | "r13" :: "r14" :: "r15" :: _ -> ()
          | other ->
            Alcotest.failf "unexpected opening %a" Fmt.(Dump.list string) other)
        | None -> Alcotest.fail "K4 not found");
    case "the hidden-join derivation is out of reach of uninformed search"
      (fun () ->
        Alcotest.check Alcotest.bool "not reached" true
          (Option.is_none
             (Search.reaches
                ~config:(cfg ~max_depth:6 ~max_states:600 ())
                Paper.kg1 Paper.kg2)));
    case "explore returns the cost-minimal T1K form" (fun () ->
        let o = Search.explore Paper.t1k_source in
        Alcotest.check query "best is the fused form" Paper.t1k_target
          o.Search.best.Search.query;
        Alcotest.check Alcotest.bool "cheaper than the source" true
          (o.Search.best.Search.cost
          < (Search.explore ~config:{ Search.default_config with max_depth = 0 }
               Paper.t1k_source)
              .Search.best.Search.cost));
    case "explored states stay within budget" (fun () ->
        let o =
          Search.explore
            ~config:{ Search.default_config with max_states = 50 }
            Paper.kg1
        in
        Alcotest.check Alcotest.bool "bounded" true (o.Search.explored <= 50));
    case "successors enumerate multiple positions of one rule" (fun () ->
        (* two iterate∘iterate windows after breaking KG1 up *)
        let q =
          Term.query
            (Term.chain
               [
                 Term.Iterate (Term.Kp true, Term.Prim "city");
                 Term.Iterate (Term.Kp true, Term.Prim "addr");
                 Term.Iterate (Term.Kp true, Term.Id);
               ])
            (Value.Named "P")
        in
        let succ = Search.successors (Rules.Catalog.rules [ "r11" ]) q in
        Alcotest.check Alcotest.bool "at least two positions" true
          (List.length succ >= 2));
    case "every successor preserves semantics" (fun () ->
        List.iter
          (fun q0 ->
            let before = resolved tiny_db (eval_tiny q0) in
            List.iter
              (fun (name, q') ->
                Alcotest.check value name before (resolved tiny_db (eval_tiny q')))
              (Search.successors Rules.Catalog.all q0))
          [ Paper.t1k_source; Paper.k4; Paper.kg2 ]);
  ]

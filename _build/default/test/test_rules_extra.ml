(* The extended rule pool: targeted unit checks beyond the generic
   certification, including the Section 5 predicate-bin example (E-C3). *)

open Kola
open Kola.Term
open Util

let apply name f = Rewrite.Rule.apply_func (Rules.Catalog.find_exn name) f
let applyp name p = Rewrite.Rule.apply_pred (Rules.Catalog.find_exn name) p

let age_gt k = Oplus (Gt, Pairf (Prim "age", Kf (int k)))

let tests =
  [
    case "join-expand then sel-join-absorb round-trips a join" (fun () ->
        let j =
          Join
            ( Oplus (Gt, Pairf (Compose (Prim "age", Pi1), Compose (Prim "age", Pi2))),
              Pi1 )
        in
        match apply "x-join-expand" j with
        | Some expanded ->
          (* iterate(KpT, π1) ∘ iterate(p, id) ∘ join(KpT, id): absorb twice *)
          let q = Term.query expanded (Value.Pair (Value.Named "P", Value.Named "P")) in
          let o =
            Coko.Block.run
              (Coko.Block.block "absorb"
                 Coko.Block.(Try (Repeat (Use [ "x-sel-join-absorb"; "r5"; "r5c"; "r4"; "r1" ]))))
              q
          in
          check_sem_equal "round trip"
            (Term.query j (Value.Pair (Value.Named "P", Value.Named "P")))
            o.Coko.Block.query
        | None -> Alcotest.fail "x-join-expand should fire");
    case "join commutativity preserves semantics on extents" (fun () ->
        let j = Join (Oplus (In, Times (Id, Prim "cars")), Times (Id, Prim "grgs")) in
        match apply "x-join-commute" j with
        | Some j' ->
          check_sem_equal ~db:gen_db "commuted"
            (Term.query j (Value.Pair (Value.Named "V", Value.Named "P")))
            (Term.query j' (Value.Pair (Value.Named "V", Value.Named "P")))
        | None -> Alcotest.fail "x-join-commute should fire");
    case "select-past-join: a π1-shaped conjunct leaves the join" (fun () ->
        (* the Section 5 point: p ⊕ π1 examines only the first input, and
           the bin decision is pure matching, not a sorting routine *)
        let j = Join (Andp (Oplus (In, Times (Id, Prim "cars")), Oplus (age_gt 5, Pi1)), Id) in
        match apply "x-join-push-left" j with
        | Some (Compose (Join (q, Id), Times (Iterate (p, Id), Id))) ->
          Alcotest.check pred "residual" (Oplus (In, Times (Id, Prim "cars"))) q;
          Alcotest.check pred "pushed" (age_gt 5) p
        | Some f -> Alcotest.failf "unexpected %a" Pretty.pp_func f
        | None -> Alcotest.fail "x-join-push-left should fire");
    case "π2-shaped conjuncts are NOT pushed left (bin discipline)" (fun () ->
        let j = Join (Andp (Kp true, Oplus (age_gt 5, Pi2)), Id) in
        Alcotest.check Alcotest.bool "left rule refuses" true
          (Option.is_none (apply "x-join-push-left" j));
        Alcotest.check Alcotest.bool "right rule fires" true
          (Option.is_some (apply "x-join-push-right" j)));
    case "select-past-join preserves semantics" (fun () ->
        let pred_full =
          Andp (Oplus (In, Times (Id, Prim "cars")),
                Oplus (Oplus (Gt, Pairf (Prim "year", Kf (int 1995))), Pi1))
        in
        let j = Join (pred_full, Times (Id, Prim "name")) in
        match apply "x-join-push-left" j with
        | Some j' ->
          check_sem_equal ~db:gen_db "pushed"
            (Term.query j (Value.Pair (Value.Named "V", Value.Named "P")))
            (Term.query j' (Value.Pair (Value.Named "V", Value.Named "P")))
        | None -> Alcotest.fail "should fire");
    case "monad laws on concrete data" (fun () ->
        let nested = set [ set [ int 1; int 2 ]; set [ int 2; int 3 ] ] in
        Alcotest.check value "flat-flat"
          (Eval.eval_func (Compose (Flat, Flat)) (set [ nested ]))
          (Eval.eval_func (Compose (Flat, Iterate (ktrue, Flat))) (set [ nested ]));
        Alcotest.check value "flat-sng" (set [ int 1 ])
          (Eval.eval_func (Compose (Flat, Sng)) (set [ int 1 ]));
        Alcotest.check value "flat-map-sng" nested
          (Eval.eval_func (Compose (Flat, Iterate (ktrue, Sng))) nested));
    case "sng translation: singleton and multi-element set literals" (fun () ->
        check_translation "singleton"
          Aqua.Ast.(App (lam "p" (SetLit [ Path (Var "p", "age") ]), Extent "P"));
        check_translation "two elements"
          Aqua.Ast.(
            App
              ( lam "p" (SetLit [ Path (Var "p", "age"); Const (int 0) ]),
                Extent "P" )));
    case "iterate-con-split preserves semantics" (fun () ->
        let body =
          Iterate
            ( age_gt 10,
              Con (age_gt 30, Prim "name", Kf (Value.Str "minor")) )
        in
        match apply "x-iterate-con-split" body with
        | Some body' ->
          check_sem_equal ~db:gen_db "split"
            (Term.query body (Value.Named "P"))
            (Term.query body' (Value.Named "P"))
        | None -> Alcotest.fail "should fire");
    case "cp-push and cf-push fire on curried composites" (fun () ->
        Alcotest.check Alcotest.bool "cp" true
          (Option.is_some
             (applyp "x-cp-push" (Cp (Oplus (Gt, Times (Id, Prim "age")), int 30))));
        Alcotest.check Alcotest.bool "cf" true
          (Option.is_some
             (apply "x-cf-push" (Cf (Compose (Arith Add, Times (Id, Prim "age")), int 1)))));
    case "conv laws rewrite and agree" (fun () ->
        let p0 = Conv (Oplus (In, Times (Id, Prim "cars"))) in
        match applyp "x-conv-oplus-times" p0 with
        | Some p1 ->
          let alice = List.hd (Datagen.Store.tiny ()).Datagen.Store.persons in
          let v = List.hd (Datagen.Store.tiny ()).Datagen.Store.vehicles in
          let input = pair alice v in
          Alcotest.check Alcotest.bool "agree" true
            (Eval.eval_pred ~db:tiny_db p0 input = Eval.eval_pred ~db:tiny_db p1 input)
        | None -> Alcotest.fail "should fire");
  ]

(* Figures 7 and 8 (experiment E-F8): hidden joins of arbitrary nesting
   depth are untangled by the five-step strategy, preserving semantics; and
   the strategy degrades gracefully (partial simplification) when the query
   is not a hidden join. *)

open Kola
open Util

let untangle q = Coko.Programs.hidden_join q

let tests =
  List.map
    (fun depth ->
      case (Fmt.str "depth-%d hidden join untangles and agrees" depth)
        (fun () ->
          let e = Aqua.Examples.hidden_join_depth depth in
          let q = Translate.Compile.query e in
          let o, blocks = untangle q in
          Alcotest.check Alcotest.bool "all blocks applied" true
            (List.for_all snd blocks);
          Alcotest.check value "semantics preserved"
            (resolved tiny_db (Aqua.Eval.eval_closed ~db:tiny_db e))
            (resolved tiny_db (eval_tiny o.Coko.Block.query))))
    [ 1; 2; 3; 4; 5; 6; 7 ]
  @ [
      case "untangled form ends in a nest over a join" (fun () ->
          let e = Aqua.Examples.hidden_join_depth 3 in
          let q = Translate.Compile.query e in
          let o, _ = untangle q in
          match Term.unchain o.Coko.Block.query.Term.body with
          | Term.Nest (Term.Pi1, Term.Pi2) :: rest ->
            let has_join =
              List.exists
                (function
                  | Term.Pairf (Term.Join _, Term.Pi1) -> true
                  | _ -> false)
                rest
            in
            Alcotest.check Alcotest.bool "join at the bottom" true has_join
          | _ -> Alcotest.fail "nest not at the top");
      case "untangling shrinks the query" (fun () ->
          let e = Aqua.Examples.hidden_join_depth 5 in
          let q = Translate.Compile.query e in
          let o, _ = untangle q in
          Alcotest.check Alcotest.bool "smaller" true
            (Term.size_func o.Coko.Block.query.Term.body
            < Term.size_func q.Term.body));
      case "a non-hidden-join query is simplified but not bottomed-out"
        (fun () ->
          (* inner query over p.child (derived from the outer variable, not a
             named set B) — the paper's example of where Step 2 is quickly
             recognised as inapplicable *)
          let e =
            Aqua.Ast.(
              App
                ( lam "p"
                    (Pair
                       ( Var "p",
                         Sel
                           ( lam "c" (Bin (Gt, Path (Var "c", "age"), Const (int 1))),
                             Path (Var "p", "child") ) )),
                  Extent "P" ))
          in
          let q = Translate.Compile.query e in
          let o, blocks = untangle q in
          Alcotest.check Alcotest.bool "breakup applied" true
            (List.assoc "breakup" blocks);
          Alcotest.check Alcotest.bool "bottom-out refused" false
            (List.assoc "bottom-out" blocks);
          Alcotest.check value "still semantics-preserving"
            (resolved tiny_db (Aqua.Eval.eval_closed ~db:tiny_db e))
            (resolved tiny_db (eval_tiny o.Coko.Block.query)));
      case "rule 19 moves the constant set into the argument" (fun () ->
          let r19 = Rules.Catalog.find_exn "r19" in
          let q =
            Term.query
              (Term.Iterate (Term.Kp true, Term.Pairf (Term.Id, Term.Kf (Value.Named "P"))))
              (Value.Named "V")
          in
          match Rewrite.Rule.apply_query r19 q with
          | Some q' ->
            Alcotest.check value "argument becomes [V, P]"
              (Value.Pair (Value.Named "V", Value.Named "P"))
              q'.Term.arg
          | None -> Alcotest.fail "rule 19 should fire");
      case "rule 19 does not fire when the inner set is not constant"
        (fun () ->
          let r19 = Rules.Catalog.find_exn "r19" in
          let q =
            Term.query
              (Term.Iterate (Term.Kp true, Term.Pairf (Term.Id, Term.Prim "child")))
              (Value.Named "P")
          in
          Alcotest.check Alcotest.bool "refused" true
            (Option.is_none (Rewrite.Rule.apply_query r19 q)));
      case "figure-7 shape: translated hidden joins have the iter chain"
        (fun () ->
          let e = Aqua.Examples.hidden_join_depth 4 in
          let q = Translate.Compile.query e in
          (* body is iterate(Kp T, ⟨id, ... ⟨id, Kf(P)⟩ ...⟩) *)
          match q.Term.body with
          | Term.Iterate (Term.Kp true, Term.Pairf (Term.Id, _)) -> ()
          | f -> Alcotest.failf "unexpected shape %a" Pretty.pp_func f);
    ]

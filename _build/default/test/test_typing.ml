(* Type inference over KOLA terms. *)

open Kola
open Kola.Term
open Util

let person = Ty.Obj "Person"
let fty f = Typing.func_ty Schema.paper f

let tests =
  [
    case "id is polymorphic" (fun () ->
        let a, b = fty Id in
        Alcotest.check ty "in = out" a b);
    case "schema primitive" (fun () ->
        let a, b = fty (Prim "age") in
        Alcotest.check ty "in" person a;
        Alcotest.check ty "out" Ty.Int b);
    case "composition propagates" (fun () ->
        let a, b = fty (Compose (Prim "city", Prim "addr")) in
        Alcotest.check ty "in" person a;
        Alcotest.check ty "out" Ty.Str b);
    case "ill-typed composition rejected" (fun () ->
        Alcotest.check Alcotest.bool "age ∘ age" false
          (Typing.well_typed_func Schema.paper (Compose (Prim "age", Prim "age"))));
    case "iterate lifts to sets" (fun () ->
        let a, b = fty (Iterate (Kp true, Prim "age")) in
        Alcotest.check ty "in" (Ty.Set person) a;
        Alcotest.check ty "out" (Ty.Set Ty.Int) b);
    case "iter carries the environment" (fun () ->
        (* the K4 inner loop: iter(gt ⊕ ⟨age ∘ π1, Kf 25⟩, π2) *)
        let f =
          Iter (Oplus (Gt, Pairf (Compose (Prim "age", Pi1), Kf (int 25))), Pi2)
        in
        (* the element type is unconstrained by an environment-only
           predicate — exactly why rule 15 applies to K4 *)
        (match fty f with
        | Ty.Pair (p, Ty.Set elem), Ty.Set out ->
          Alcotest.check ty "env is Person" person p;
          Alcotest.check ty "result elements = set elements" elem out
        | a, b -> Alcotest.failf "unexpected %a -> %a" Ty.pp a Ty.pp b));
    case "KG1 types end to end" (fun () ->
        Alcotest.check ty "result"
          (Ty.Set (Ty.Pair (Ty.Obj "Vehicle", Ty.Set (Ty.Obj "Address"))))
          (Typing.query_ty Schema.paper Paper.kg1));
    case "KG2 types to the same result" (fun () ->
        Alcotest.check ty "result"
          (Typing.query_ty Schema.paper Paper.kg1)
          (Typing.query_ty Schema.paper Paper.kg2));
    case "nest builds grouped pairs" (fun () ->
        let a, _ = fty (Nest (Pi1, Pi2)) in
        match a with
        | Ty.Pair (Ty.Set (Ty.Pair _), Ty.Set _) -> ()
        | t -> Alcotest.failf "unexpected nest input %a" Ty.pp t);
    case "join demands a pair of sets" (fun () ->
        let a, _ = fty (Join (Kp true, Id)) in
        match a with
        | Ty.Pair (Ty.Set _, Ty.Set _) -> ()
        | t -> Alcotest.failf "unexpected join input %a" Ty.pp t);
    case "predicate domains" (fun () ->
        Alcotest.check ty "cp" Ty.Int
          (Typing.pred_ty Schema.paper (Cp (Gt, int 5)));
        let d = Typing.pred_ty Schema.paper (Oplus (Gt, Pairf (Prim "age", Kf (int 25)))) in
        Alcotest.check ty "oplus" person d);
    case "conv swaps the domain pair" (fun () ->
        let d = Typing.pred_ty Schema.paper (Conv In) in
        match d with
        | Ty.Pair (Ty.Set a, b) -> Alcotest.check ty "set-first" a b
        | t -> Alcotest.failf "unexpected conv-in domain %a" Ty.pp t);
    case "occurs check fires" (fun () ->
        (* con(Kp(T), id, ⟨id, id⟩) would need t = [t, t] *)
        Alcotest.check Alcotest.bool "occurs" false
          (Typing.well_typed_func Schema.paper
             (Con (Kp true, Id, Pairf (Id, Id)))));
    case "mismatched composition rejected" (fun () ->
        Alcotest.check Alcotest.bool "age after pair" false
          (Typing.well_typed_func Schema.paper
             (Compose (Prim "age", Pairf (Id, Id)))));
    case "unknown attribute is a schema error" (fun () ->
        match fty (Prim "salary") with
        | exception Schema.Schema_error _ -> ()
        | _ -> Alcotest.fail "expected schema error");
    case "query typing checks the argument" (fun () ->
        match Typing.query_ty Schema.paper (Term.query (Prim "age") (Value.Named "P")) with
        | exception Typing.Type_error _ -> ()
        | t -> Alcotest.failf "expected type error, got %a" Ty.pp t);
    case "hole patterns type consistently" (fun () ->
        (* same hole must get one type: ⟨?f, ?f⟩ ∘ age types, age ∘ ?f ∘ ?f with
           f : Person → Int does not *)
        Alcotest.check Alcotest.bool "pair of same hole" true
          (Typing.well_typed_func Schema.paper (Pairf (Fhole "f", Fhole "f"))));
    case "untypable value: heterogeneous set" (fun () ->
        Alcotest.check Alcotest.bool "set {1, \"x\"}" false
          (Typing.well_typed_func Schema.paper
             (Kf (Value.Set [ int 1; Value.str "x" ]))));
  ]

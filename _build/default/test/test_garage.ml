(* Figure 3 (experiment E-F3): the Garage Query in both forms, the
   intermediate forms of the Section 4.1 walkthrough, and the backend
   behaviour that motivates untangling. *)

open Kola
open Util

let stores =
  [
    ("tiny", tiny_db);
    ("generated-40", gen_db);
    ( "generated-100",
      Datagen.Store.db
        (Datagen.Store.generate
           { Datagen.Store.default_params with people = 100; vehicles = 60; seed = 5 }) );
  ]

let tests =
  List.concat_map
    (fun (name, db) ->
      [
        case (Fmt.str "KG1 = KG2 on %s" name) (fun () ->
            check_sem_equal ~db "kg1 = kg2" Paper.kg1 Paper.kg2);
        case (Fmt.str "all walkthrough forms agree on %s" name) (fun () ->
            check_sem_equal ~db "kg1a" Paper.kg1 Paper.kg1a;
            check_sem_equal ~db "kg1b" Paper.kg1 Paper.kg1b;
            check_sem_equal ~db "kg1c" Paper.kg1 Paper.kg1c);
      ])
    stores
  @ [
      case "hashed KG2 agrees with naive KG2" (fun () ->
          Alcotest.check value "hashed"
            (resolved gen_db (eval_gen ~backend:Eval.Naive Paper.kg2))
            (resolved gen_db (eval_gen ~backend:Eval.Hashed Paper.kg2)));
      case "untangling exposes hash-joinable structure" (fun () ->
          (* KG2's join predicate in ⊕ (id × cars) is recognisable *)
          match Paper.kg2_join with
          | Term.Join (p, _) ->
            Alcotest.check Alcotest.bool "recognised" true
              (Option.is_some (Eval.hash_joinable p))
          | _ -> Alcotest.fail "kg2_join is a join");
      case "hashed KG2 touches asymptotically fewer tuples than naive KG1"
        (fun () ->
          let params =
            { Datagen.Store.default_params with people = 120; vehicles = 80; seed = 11 }
          in
          let db = Datagen.Store.db (Datagen.Store.generate params) in
          let measure backend q =
            let ctx = Eval.ctx ~db ~backend () in
            ignore (Eval.run ctx q);
            ctx.Eval.counters.Eval.tuples
          in
          let kg1_naive = measure Eval.Naive Paper.kg1 in
          let kg2_hashed = measure Eval.Hashed Paper.kg2 in
          Alcotest.check Alcotest.bool
            (Fmt.str "kg2 hashed (%d) at least 4x below kg1 (%d)" kg2_hashed kg1_naive)
            true
            (kg2_hashed * 4 < kg1_naive));
      case "the five-step strategy rewrites KG1 into KG2 exactly" (fun () ->
          let o, blocks = Coko.Programs.hidden_join Paper.kg1 in
          Alcotest.check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.bool))
            "all five steps applied"
            [
              ("breakup", true); ("bottom-out", true); ("pullup-nest", true);
              ("pullup-unnest", true); ("absorb-join", true);
            ]
            blocks;
          Alcotest.check query "kg2" Paper.kg2 o.Coko.Block.query);
      case "step 1 produces KG1a" (fun () ->
          let o = Coko.Block.run Coko.Programs.breakup Paper.kg1 in
          Alcotest.check query "kg1a" Paper.kg1a o.Coko.Block.query);
      case "step 2 produces KG1b" (fun () ->
          let o = Coko.Block.run Coko.Programs.bottom_out Paper.kg1a in
          Alcotest.check query "kg1b" Paper.kg1b o.Coko.Block.query);
      case "step 3 produces KG1c" (fun () ->
          let o = Coko.Block.run Coko.Programs.pullup_nest Paper.kg1b in
          Alcotest.check query "kg1c" Paper.kg1c o.Coko.Block.query);
      case "step 4 is a no-op on KG1c (single unnest already on top)" (fun () ->
          let o = Coko.Block.run Coko.Programs.pullup_unnest Paper.kg1c in
          Alcotest.check query "unchanged" Paper.kg1c o.Coko.Block.query);
      case "step 5 produces KG2" (fun () ->
          let o = Coko.Block.run Coko.Programs.absorb_join Paper.kg1c in
          Alcotest.check query "kg2" Paper.kg2 o.Coko.Block.query);
    ]

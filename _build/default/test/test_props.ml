(* Precondition properties (Section 4.2): inference rules over annotations,
   no code. *)

open Kola
open Kola.Term
module P = Rewrite.Props
open Util

let inj = P.injective Schema.paper

let tests =
  [
    case "id is injective" (fun () -> Alcotest.check Alcotest.bool "id" true (inj Id));
    case "annotated primitives are injective (name is a key)" (fun () ->
        Alcotest.check Alcotest.bool "name" true (inj (Prim "name"));
        Alcotest.check Alcotest.bool "age" false (inj (Prim "age")));
    case "injective(f) ∧ injective(g) ⟹ injective(f ∘ g) — the paper's rule"
      (fun () ->
        Alcotest.check Alcotest.bool "name ∘ id" true
          (inj (Compose (Prim "name", Id)));
        Alcotest.check Alcotest.bool "age ∘ name" false
          (inj (Compose (Prim "age", Prim "name"))));
    case "pairing is injective if either side is" (fun () ->
        Alcotest.check Alcotest.bool "⟨age, name⟩" true
          (inj (Pairf (Prim "age", Prim "name")));
        Alcotest.check Alcotest.bool "⟨age, age⟩" false
          (inj (Pairf (Prim "age", Prim "age"))));
    case "constants are never injective" (fun () ->
        Alcotest.check Alcotest.bool "Kf" false (inj (Kf (int 1))));
    case "projections are not injective" (fun () ->
        Alcotest.check Alcotest.bool "π1" false (inj Pi1));
    case "totality: Max/Min are partial, Count/Sum total" (fun () ->
        Alcotest.check Alcotest.bool "max" false (P.total Schema.paper (Agg Max));
        Alcotest.check Alcotest.bool "count" true (P.total Schema.paper (Agg Count)));
    case "constant detection" (fun () ->
        Alcotest.check Alcotest.bool "Kf ∘ f" true
          (P.constant (Compose (Kf (int 1), Prim "age")));
        Alcotest.check Alcotest.bool "age" false (P.constant (Prim "age")));
    case "the injective intersection rule fires only with the precondition"
      (fun () ->
        let rule = Rules.Catalog.find_exn "inj-inter" in
        let lhs_with f =
          Compose (Setop Inter, Times (Iterate (Kp true, f), Iterate (Kp true, f)))
        in
        (* name is injective: fires *)
        Alcotest.check Alcotest.bool "injective case" true
          (Option.is_some (Rewrite.Rule.apply_func rule (lhs_with (Prim "name"))));
        (* age is not: blocked *)
        Alcotest.check Alcotest.bool "non-injective case" false
          (Option.is_some (Rewrite.Rule.apply_func rule (lhs_with (Prim "age")))));
    case "the unguarded union rule fires for any f" (fun () ->
        let rule = Rules.Catalog.find_exn "map-union" in
        let lhs =
          Compose
            ( Setop Union,
              Times (Iterate (Kp true, Prim "age"), Iterate (Kp true, Prim "age")) )
        in
        Alcotest.check Alcotest.bool "fires" true
          (Option.is_some (Rewrite.Rule.apply_func rule lhs)));
    case "the injective rule is semantically valid where it fires" (fun () ->
        (* intersection of name-images = image of intersection, on stores *)
        let f = Prim "name" in
        let lhs, rhs = Paper.injective_example f in
        let args =
          Value.Pair (Value.Named "P", Value.Named "P")
        in
        Alcotest.check value "example"
          (resolved gen_db (Eval.eval_query ~db:gen_db (Term.query lhs args)))
          (resolved gen_db (Eval.eval_query ~db:gen_db (Term.query rhs args))));
  ]

(* Bags as intermediate results (the paper's Section 6 "current efforts"):
   deferring duplicate elimination is legal for duplicate-insensitive
   pipelines, cheaper, and — the instructive part — *illegal* when an
   aggregate observes the intermediate, which is exactly why the paper
   wants it expressed as explicit, checkable transformations. *)

open Kola
open Kola.Term
open Util

let final v = Eval.finalize v

let projection =
  (* cities of people older than 10: heavy duplication before dedup *)
  Term.query
    (Iterate
       ( Oplus (Gt, Pairf (Prim "age", Kf (int 10))),
         Compose (Prim "city", Prim "addr") ))
    (Value.Named "P")

let tests =
  [
    case "deferred dedup computes the same set for projections" (fun () ->
        Alcotest.check value "projection"
          (eval_gen ~backend:Eval.Naive projection)
          (Eval.eval_query ~db:gen_db ~dedup:Eval.Deferred projection));
    case "deferred dedup agrees on the garage query" (fun () ->
        Alcotest.check value "kg1"
          (resolved gen_db (eval_gen Paper.kg1))
          (resolved gen_db (Eval.eval_query ~db:gen_db ~dedup:Eval.Deferred Paper.kg1));
        Alcotest.check value "kg2 hashed"
          (resolved gen_db (eval_gen Paper.kg2))
          (resolved gen_db
             (Eval.eval_query ~db:gen_db ~backend:Eval.Hashed
                ~dedup:Eval.Deferred Paper.kg2)));
    case "deferred dedup agrees on unions" (fun () ->
        let q =
          Term.query
            (Compose
               ( Iterate (Kp true, Prim "city"),
                 Compose (Setop Union, Times (Prim "grgs", Prim "grgs")) ))
            (Value.Pair (Value.Named "P", Value.Named "P"))
        in
        (* union of each person's garages with alice's — set-valued *)
        let alice = List.hd (Datagen.Store.tiny ()).Datagen.Store.persons in
        let q = { q with Term.arg = Value.Pair (alice, alice) } in
        Alcotest.check value "union"
          (eval_tiny q)
          (Eval.eval_query ~db:tiny_db ~dedup:Eval.Deferred q));
    case "deferred dedup is UNSOUND under aggregates (as the paper implies)"
      (fun () ->
        (* count the cities people live in: duplicates must be eliminated
           *before* counting *)
        let q =
          Term.query
            (Compose
               (Agg Count, Iterate (Kp true, Compose (Prim "city", Prim "addr"))))
            (Value.Named "P")
        in
        let eager = eval_gen q in
        let deferred = Eval.eval_query ~db:gen_db ~dedup:Eval.Deferred q in
        Alcotest.check Alcotest.bool "results differ" false
          (Value.equal eager deferred));
    case "deferred intermediates are bags" (fun () ->
        let ctx = Eval.ctx ~db:gen_db ~dedup:Eval.Deferred () in
        match Eval.func ctx projection.Term.body (Value.Named "P") with
        | Value.Bag _ -> ()
        | v -> Alcotest.failf "expected a bag, got %a" Value.pp v);
    case "finalize canonicalises nested bags" (fun () ->
        let v =
          Value.Bag
            [ Value.Int 1; Value.Int 1;
              Value.Pair (Value.Int 2, Value.Bag [ Value.Int 3; Value.Int 3 ]) ]
        in
        Alcotest.check value "finalized"
          (set [ int 1; pair (int 2) (set [ int 3 ]) ])
          (final v));
    case "deferred mode does strictly less dedup work on duplicate-heavy input"
      (fun () ->
        (* a projection onto a tiny domain (city names): eager dedups every
           intermediate; deferred pays once at the end. *)
        let db =
          Datagen.Store.db
            (Datagen.Store.generate
               { Datagen.Store.default_params with people = 300; seed = 23 })
        in
        let eager_ctx = Eval.ctx ~db () in
        let r1 = Eval.run eager_ctx projection in
        let deferred_ctx = Eval.ctx ~db ~dedup:Eval.Deferred () in
        let r2 = Eval.run deferred_ctx projection in
        Alcotest.check value "same result" r1 r2;
        (* both touched the same number of tuples — the saving is in the
           sort/dedup, which the result sizes witness: deferred returned a
           set after one canonicalisation over 300 elements rather than
           maintaining a 5-element set 300 times. *)
        match r1 with
        | Value.Set cities ->
          Alcotest.check Alcotest.bool "small domain" true
            (List.length cities <= 5)
        | _ -> Alcotest.fail "expected a set");
    case "bag and list values order/multiplicity semantics" (fun () ->
        Alcotest.check value "bag keeps duplicates"
          (Value.Bag [ int 1; int 1 ])
          (Value.bag [ int 1; int 1 ]);
        Alcotest.check Alcotest.bool "bag is order-insensitive" true
          (Value.equal (Value.bag [ int 2; int 1 ]) (Value.bag [ int 1; int 2 ]));
        Alcotest.check Alcotest.bool "list is order-sensitive" false
          (Value.equal (Value.list [ int 2; int 1 ]) (Value.list [ int 1; int 2 ])));
  ]

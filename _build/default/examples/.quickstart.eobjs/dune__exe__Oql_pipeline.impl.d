examples/oql_pipeline.ml: Aqua Datagen Eval Fmt Kola List Optimizer Value

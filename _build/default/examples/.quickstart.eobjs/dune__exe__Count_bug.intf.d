examples/count_bug.mli:

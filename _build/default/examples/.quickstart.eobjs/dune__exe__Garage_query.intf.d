examples/garage_query.mli:

examples/company_workload.mli:

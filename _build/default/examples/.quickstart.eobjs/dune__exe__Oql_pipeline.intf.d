examples/oql_pipeline.mli:

examples/quickstart.ml: Coko Datagen Eval Fmt Kola List Optimizer Paper Pretty Rewrite Rules Schema Term Ty Typing Value

examples/nested_children.mli:

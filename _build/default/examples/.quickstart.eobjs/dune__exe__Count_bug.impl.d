examples/count_bug.ml: Datagen Eval Fmt Kola List Pretty Term Value

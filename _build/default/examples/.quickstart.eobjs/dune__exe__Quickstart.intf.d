examples/quickstart.mli:

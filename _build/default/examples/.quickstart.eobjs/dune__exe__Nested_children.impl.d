examples/nested_children.ml: Aqua Baseline Coko Datagen Eval Fmt Kola List Paper Pretty Rewrite Value

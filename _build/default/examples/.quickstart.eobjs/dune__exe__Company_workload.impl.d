examples/company_workload.ml: Aqua Datagen Eval Fmt Kola Optimizer Value

examples/garage_query.ml: Coko Datagen Eval Fmt Kola List Optimizer Option Pretty Value

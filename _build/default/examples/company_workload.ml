(* A second schema end-to-end: the optimizer is schema-generic.

   The company database (Employee/Department) is queried with a roster
   hidden-join (untangles to a hash equi-join), a data-dependent nested
   query (correctly not untangled), and an aggregate (deferred dedup
   correctly disabled).

     dune exec examples/company_workload.exe *)

open Kola
module C = Datagen.Company

let () =
  let store = C.generate { C.default_params with employees = 200; departments = 12 } in
  let db = C.db store in
  let extents = [ "E"; "D" ] in

  let show src =
    Fmt.pr "==========================================================@.";
    let r = Optimizer.Pipeline.optimize_oql ~extents ~db src in
    Optimizer.Pipeline.pp_report Fmt.stdout r;
    let result = Optimizer.Pipeline.run ~db r in
    let direct = Aqua.Eval.eval_closed ~db r.Optimizer.Pipeline.aqua in
    let ctx = Eval.ctx ~db () in
    Fmt.pr "result agrees with direct evaluation: %b@.@."
      (Value.equal (Eval.deep_resolve ctx result) (Eval.deep_resolve ctx direct))
  in
  show C.dept_roster_oql;
  show C.rich_mentors_oql;
  show "select [d, sum(select e.salary from e in E where e.dept = d)] from d in D";
  show "select e.ename from e in E where e.salary > 100000 and e.dept.dcity = \"Boston\""

(* Figure 2 / Figure 6: the structurally identical nested queries A3 and
   A4, which require *different* transformations — the paper's core
   "variables considered harmful" example.

   Over AQUA the decision needs environmental (free-variable) analysis in a
   head routine; over KOLA the difference is a π1 vs π2 in the term and
   plain matching decides.

     dune exec examples/nested_children.exe *)

open Kola

let () =
  let db = Datagen.Store.db (Datagen.Store.tiny ()) in

  Fmt.pr "A3 (child's age tested):  %a@." Aqua.Pretty.pp Aqua.Examples.a3;
  Fmt.pr "A4 (parent's age tested): %a@.@." Aqua.Pretty.pp Aqua.Examples.a4;

  (* The AQUA side: the head routine performs free-variable analysis. *)
  let run_baseline name e =
    let o = Baseline.Engine.run [ Baseline.Catalog.code_motion ] e in
    Fmt.pr "AQUA code motion on %s: %s@." name
      (if o.Baseline.Engine.trace = [] then "rejected (env analysis)"
       else "applied");
    o.Baseline.Engine.expr
  in
  let _ = run_baseline "A3" Aqua.Examples.a3 in
  let a4' = run_baseline "A4" Aqua.Examples.a4 in
  Fmt.pr "A4 after code motion:     %a@.@." Aqua.Pretty.pp a4';

  (* The KOLA side: same queries, now the difference is structural. *)
  Fmt.pr "K3: %a@." Pretty.pp_query Paper.k3;
  Fmt.pr "K4: %a@.@." Pretty.pp_query Paper.k4;

  let run_kola name q =
    let o = Coko.Block.run Coko.Programs.code_motion q in
    Fmt.pr "KOLA code motion on %s: %s@." name
      (if o.Coko.Block.applied then
         Fmt.str "applied, rules %a"
           Fmt.(list ~sep:comma string)
           (List.map (fun s -> s.Rewrite.Engine.rule_name) o.Coko.Block.trace)
       else "rejected by matching alone (predicate has p ⊕ π2, rule 15 needs p ⊕ π1)");
    o.Coko.Block.query
  in
  let _ = run_kola "K3" Paper.k3 in
  let k4' = run_kola "K4" Paper.k4 in
  Fmt.pr "@.K4 optimized: %a@.@." Pretty.pp_query k4';

  (* Everything still computes the same answers. *)
  let show name q = Fmt.pr "%s = %a@." name Value.pp (Eval.eval_query ~db q) in
  show "K3" Paper.k3;
  show "K4" Paper.k4;
  show "K4'" k4';
  Fmt.pr "K4 = K4': %b@."
    (Value.equal (Eval.eval_query ~db Paper.k4) (Eval.eval_query ~db k4'))

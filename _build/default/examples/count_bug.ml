(* The "count bug" [Kim 82], cited in Section 1.2 as the canonical nested-
   query correctness trap.  "For each person, how many of their children
   are older than 25?"

   The classical unnesting joins persons with qualifying children and
   groups — silently dropping persons with no qualifying children.  KOLA's
   nest is *relative to a second set* (rule 19's shape), so the rule-derived
   plan keeps them with count 0.

     dune exec examples/count_bug.exe *)

open Kola
open Kola.Term

let threshold = 25

let nested_query =
  Term.query
    (Iterate
       ( Kp true,
         Pairf
           ( Prim "name",
             Compose
               ( Agg Count,
                 Compose
                   ( Iter
                       ( Oplus
                           (Gt, Pairf (Compose (Prim "age", Pi2), Kf (Value.Int threshold))),
                         Pi2 ),
                     Pairf (Id, Prim "child") ) ) ) ))
    (Value.Named "P")

let () =
  let db = Datagen.Store.db (Datagen.Store.tiny ()) in
  Fmt.pr "query: %a@.@." Pretty.pp_query nested_query;

  let reference = Eval.eval_query ~db nested_query in
  Fmt.pr "nested evaluation (ground truth):@.  %a@.@." Value.pp reference;

  (* The buggy unnesting: filter the person-child join, then group only the
     surviving keys. *)
  let persons = List.assoc "P" db in
  let joined = Eval.eval_func ~db (Unnest (Prim "name", Prim "child")) persons in
  let filtered =
    Eval.eval_func ~db
      (Iterate
         (Oplus (Gt, Pairf (Compose (Prim "age", Pi2), Kf (Value.Int threshold))), Id))
      joined
  in
  let surviving_keys = Eval.eval_func ~db (Iterate (Kp true, Pi1)) filtered in
  let count_groups rel =
    Eval.eval_func ~db
      (Compose
         ( Iterate (Kp true, Pairf (Pi1, Compose (Agg Count, Pi2))),
           Nest (Pi1, Pi2) ))
      (Value.Pair (filtered, rel))
  in
  let buggy = count_groups surviving_keys in
  Fmt.pr "classical unnesting (count bug):@.  %a@.@." Value.pp buggy;

  (* The repair: nest relative to all of P's names — rule 19/20's shape. *)
  let all_names = Eval.eval_func ~db (Iterate (Kp true, Prim "name")) persons in
  let repaired = count_groups all_names in
  Fmt.pr "nest relative to P (KOLA rules' shape):@.  %a@.@." Value.pp repaired;

  Fmt.pr "buggy = ground truth:    %b (persons with no qualifying children lost)@."
    (Value.equal buggy reference);
  Fmt.pr "repaired = ground truth: %b@." (Value.equal repaired reference)

(* Quickstart: build a query three ways (KOLA terms, AQUA, OQL text),
   optimize it, and run it against a generated object store.

     dune exec examples/quickstart.exe *)

open Kola

let () =
  (* 1. A database: the paper's Person/Vehicle/Address schema. *)
  let store = Datagen.Store.generate Datagen.Store.default_params in
  let db = Datagen.Store.db store in

  (* 2. A KOLA query written directly with combinators:
        the cities people live in — iterate(Kp(T), city ∘ addr) ! P. *)
  let cities =
    Term.query
      (Term.Iterate (Term.Kp true, Term.Compose (Term.Prim "city", Term.Prim "addr")))
      (Value.Named "P")
  in
  Fmt.pr "KOLA query:  %a@." Pretty.pp_query cities;
  Fmt.pr "result:      %a@.@." Value.pp (Eval.eval_query ~db cities);

  (* 3. The same query from OQL text, through the whole pipeline. *)
  let report =
    Optimizer.Pipeline.optimize_oql ~db "select p.addr.city from p in P"
  in
  Fmt.pr "OQL result:  %a@.@." Value.pp (Optimizer.Pipeline.run ~db report);

  (* 4. A rewrite: fuse two iterates with rule 11 (Figure 4's T1K). *)
  let fused = Coko.Block.run Coko.Programs.compose_iterates Paper.t1k_source in
  Fmt.pr "before:      %a@." Pretty.pp_query Paper.t1k_source;
  Fmt.pr "after:       %a@." Pretty.pp_query fused.Coko.Block.query;
  Fmt.pr "rules fired: %a@.@."
    Fmt.(list ~sep:comma string)
    (List.map (fun s -> s.Rewrite.Engine.rule_name) fused.Coko.Block.trace);

  (* 5. Typing: infer the query's result type. *)
  Fmt.pr "type of KG1: %a@." Ty.pp (Typing.query_ty Schema.paper Paper.kg1);

  (* 6. Certification: check a rule's soundness by random instantiation. *)
  let result = Rules.Cert.certify (Rules.Catalog.find_exn "r11") in
  Fmt.pr "rule 11:     %a@." Rules.Cert.pp_result result

(* The full frontend pipeline over several OQL queries: parse → AQUA →
   KOLA → normalize/untangle → cost-based plan choice → execute.

     dune exec examples/oql_pipeline.exe *)

open Kola

let queries =
  [
    "select p.age from p in P where p.age > 25";
    "select [p, count(p.child)] from p in P";
    "select p.addr.city from p in P where not (p.age <= 18)";
    "select [a, b] from a in P, b in P where b in a.child";
    "select [v, flatten(select p.grgs from p in P where v in p.cars)] from v in V";
    "select [p, (select c from c in p.child where c.age > 25)] from p in P";
    "select [key, count(partition)] from p in P group by p.addr.city";
  ]

let () =
  let store =
    Datagen.Store.generate
      { Datagen.Store.default_params with people = 50; vehicles = 30; seed = 17 }
  in
  let db = Datagen.Store.db store in
  List.iter
    (fun src ->
      Fmt.pr "==========================================================@.";
      let report = Optimizer.Pipeline.optimize_oql ~db src in
      Optimizer.Pipeline.pp_report Fmt.stdout report;
      let result = Optimizer.Pipeline.run ~db report in
      let n =
        match result with Value.Set xs -> List.length xs | _ -> 1
      in
      Fmt.pr "result cardinality: %d@.@." n;
      (* sanity: the chosen plan agrees with direct AQUA evaluation *)
      let direct = Aqua.Eval.eval_closed ~db report.Optimizer.Pipeline.aqua in
      let ctx = Eval.ctx ~db () in
      assert (Value.equal (Eval.deep_resolve ctx result) (Eval.deep_resolve ctx direct)))
    queries

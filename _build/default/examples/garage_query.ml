(* The paper's running example end-to-end: the "Garage Query" of Figure 3.

   Starting from OQL text, the query becomes AQUA, then the KOLA hidden-join
   form KG1, is untangled by the five-step strategy of Section 4.1 into KG2
   (nest of a join), and finally executed with a hash join — the
   implementation choice the untangling makes possible.

     dune exec examples/garage_query.exe *)

open Kola

let src =
  "select [v, flatten(select p.grgs from p in P where v in p.cars)] from v in V"

let () =
  let store =
    Datagen.Store.generate
      { Datagen.Store.default_params with people = 200; vehicles = 120; seed = 7 }
  in
  let db = Datagen.Store.db store in

  Fmt.pr "OQL:@.  %s@.@." src;

  let report = Optimizer.Pipeline.optimize_oql ~db src in
  Fmt.pr "%a@." Optimizer.Pipeline.pp_report report;

  (* Show the five steps individually, as the paper walks through them. *)
  Fmt.pr "@.The five-step untangling, step by step:@.";
  let q0 = report.Optimizer.Pipeline.translated in
  ignore
    (List.fold_left
       (fun q block ->
         let o = Coko.Block.run block q in
         Fmt.pr "@.-- %s (%d firings) -->@.  %a@." block.Coko.Block.block_name
           (List.length o.Coko.Block.trace)
           Pretty.pp_query o.Coko.Block.query;
         o.Coko.Block.query)
       q0 Coko.Programs.hidden_join_steps);

  (* And the punchline: cost of each plan. *)
  let tuples backend q =
    let ctx = Eval.ctx ~db ~backend () in
    ignore (Eval.run ctx q);
    ctx.Eval.counters.Eval.tuples
  in
  let untangled = Option.get report.Optimizer.Pipeline.untangled in
  Fmt.pr "@.tuples touched:@.";
  Fmt.pr "  KG1 (hidden join, nested loops):   %7d@." (tuples Eval.Naive q0);
  Fmt.pr "  KG2 (nest of join, nested loops):  %7d@."
    (tuples Eval.Naive untangled);
  Fmt.pr "  KG2 (nest of join, hash join):     %7d@."
    (tuples Eval.Hashed untangled);
  Fmt.pr "@.Both forms denote the same set: %b@."
    (Value.equal
       (Eval.deep_resolve (Eval.ctx ~db ()) (Eval.eval_query ~db q0))
       (Eval.deep_resolve (Eval.ctx ~db ())
          (Eval.eval_query ~db ~backend:Eval.Hashed untangled)))

(* AQUA [25]: the variable-based object algebra the paper uses as its case
   study (Section 2).  Anonymous functions and predicates are written with
   λ-notation; queries are expressions over named extents.

   This is the representation the paper argues *against* for rule-based
   optimizers: transformations over it need variable renaming, expression
   composition and environmental (free-variable) analysis — all implemented
   in {!Vars} and exercised by the {!Baseline} engine. *)

type binop =
  | Eq
  | Leq
  | Lt
  | Gt
  | Geq
  | And
  | Or
  | In
  | Add
  | Sub
  | Mul
  | Union
  | Inter
  | Diff

type expr =
  | Var of string
  | Const of Kola.Value.t
  | Extent of string                  (** a named database set, e.g. P *)
  | Path of expr * string             (** e.attr *)
  | Pair of expr * expr               (** [e1, e2] *)
  | App of lam * expr                 (** app(λx.body)(set) *)
  | Sel of lam * expr                 (** sel(λx.pred)(set) *)
  | Flatten of expr
  | Join of lam2 * lam2 * expr * expr (** join(λxy.p, λxy.f)([A, B]) *)
  | If of expr * expr * expr
  | Bin of binop * expr * expr
  | Not of expr
  | Agg of Kola.Term.agg * expr
  | SetLit of expr list

and lam = { v : string; body : expr }
and lam2 = { v1 : string; v2 : string; body2 : expr }

let lam v body = { v; body }
let lam2 v1 v2 body2 = { v1; v2; body2 }

let rec equal a b =
  match a, b with
  | Var x, Var y -> String.equal x y
  | Const u, Const v -> Kola.Value.equal u v
  | Extent x, Extent y -> String.equal x y
  | Path (e1, a1), Path (e2, a2) -> String.equal a1 a2 && equal e1 e2
  | Pair (a1, b1), Pair (a2, b2) -> equal a1 a2 && equal b1 b2
  | App (l1, e1), App (l2, e2) | Sel (l1, e1), Sel (l2, e2) ->
    String.equal l1.v l2.v && equal l1.body l2.body && equal e1 e2
  | Flatten e1, Flatten e2 -> equal e1 e2
  | Join (p1, f1, a1, b1), Join (p2, f2, a2, b2) ->
    String.equal p1.v1 p2.v1 && String.equal p1.v2 p2.v2
    && equal p1.body2 p2.body2
    && String.equal f1.v1 f2.v1 && String.equal f1.v2 f2.v2
    && equal f1.body2 f2.body2 && equal a1 a2 && equal b1 b2
  | If (c1, t1, e1), If (c2, t2, e2) -> equal c1 c2 && equal t1 t2 && equal e1 e2
  | Bin (o1, a1, b1), Bin (o2, a2, b2) -> o1 = o2 && equal a1 a2 && equal b1 b2
  | Not e1, Not e2 -> equal e1 e2
  | Agg (g1, e1), Agg (g2, e2) -> g1 = g2 && equal e1 e2
  | SetLit xs, SetLit ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | ( ( Var _ | Const _ | Extent _ | Path _ | Pair _ | App _ | Sel _
      | Flatten _ | Join _ | If _ | Bin _ | Not _ | Agg _ | SetLit _ ),
      _ ) -> false

(* Node count, the paper's n in its O(mn) translation bound. *)
let rec size = function
  | Var _ | Const _ | Extent _ -> 1
  | Path (e, _) | Flatten e | Not e | Agg (_, e) -> 1 + size e
  | Pair (a, b) | Bin (_, a, b) -> 1 + size a + size b
  | App (l, e) | Sel (l, e) -> 2 + size l.body + size e
  | Join (p, f, a, b) -> 3 + size p.body2 + size f.body2 + size a + size b
  | If (c, t, e) -> 1 + size c + size t + size e
  | SetLit xs -> 1 + List.fold_left (fun n x -> n + size x) 0 xs

(* Maximum number of simultaneously bound variables — the paper's m
   ("degree of nesting"). *)
let max_nesting e =
  let rec go depth = function
    | Var _ | Const _ | Extent _ -> depth
    | Path (e, _) | Flatten e | Not e | Agg (_, e) -> go depth e
    | Pair (a, b) | Bin (_, a, b) -> max (go depth a) (go depth b)
    | App (l, e) | Sel (l, e) -> max (go (depth + 1) l.body) (go depth e)
    | Join (p, f, a, b) ->
      max
        (max (go (depth + 2) p.body2) (go (depth + 2) f.body2))
        (max (go depth a) (go depth b))
    | If (c, t, e) -> max (go depth c) (max (go depth t) (go depth e))
    | SetLit xs -> List.fold_left (fun d x -> max d (go depth x)) depth xs
  in
  go 0 e

(* Desugar a nested join into app/sel form so the translator only meets
   join in closed position:
   join(λab.p, λab.f)([A,B]) =
     flatten(app(λa. app(λb. f)(sel(λb. p)(B)))(A)) *)
let desugar_join (p : lam2) (f : lam2) a b =
  if not (String.equal p.v1 f.v1 && String.equal p.v2 f.v2) then
    invalid_arg "desugar_join: predicate and function bind different names";
  Flatten
    (App
       ( lam p.v1 (App (lam p.v2 f.body2, Sel (lam p.v2 p.body2, b))),
         a ))

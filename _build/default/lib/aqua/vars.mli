(** The "additional machinery" of Section 2.1 that variable-based algebras
    force on an optimizer: free-variable analysis, fresh names,
    α-equivalence and capture-avoiding substitution.  None of this exists
    on the KOLA side — that asymmetry is the paper's point. *)

module S : Set.S with type elt = string

val free_vars : Ast.expr -> S.t
val is_free : string -> Ast.expr -> bool

val fresh : ?base:string -> S.t -> string
(** A name not in the avoid set. *)

val subst : string -> Ast.expr -> Ast.expr -> Ast.expr
(** [subst x r e] is e[x := r], renaming binders to avoid capture. *)

val alpha_equal : Ast.expr -> Ast.expr -> bool

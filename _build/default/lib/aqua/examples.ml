(* The paper's AQUA examples (Figures 1 and 2, and the AQUA reading of the
   Garage Query of [28]). *)

open Ast

let i n = Const (Kola.Value.Int n)

(* T1 (Figure 1): app (λ(a) a.city)(app (λ(p) p.addr)(P)) ⟹
                  app (λ(p) p.addr.city)(P) *)
let t1_source = App (lam "a" (Path (Var "a", "city")), App (lam "p" (Path (Var "p", "addr")), Extent "P"))
let t1_target = App (lam "p" (Path (Path (Var "p", "addr"), "city")), Extent "P")

(* T2 (Figure 1): app (λ(x) x.age)(sel (λ(p) p.age > 25)(P)) ⟹
                  sel (λ(a) a > 25)(app (λ(p) p.age)(P))
   Note the deliberately different binder in the source's app — the paper
   uses this to show that recognising the subfunction needs α-renaming. *)
let t2_source =
  App
    ( lam "x" (Path (Var "x", "age")),
      Sel (lam "p" (Bin (Gt, Path (Var "p", "age"), i 25)), Extent "P") )

let t2_target =
  Sel (lam "a" (Bin (Gt, Var "a", i 25)), App (lam "p" (Path (Var "p", "age")), Extent "P"))

(* A3 (Figure 2): persons paired with their children older than 25.
   app (λ(p) [p, sel (λ(c) c.age > 25)(p.child)])(P) *)
let a3 =
  App
    ( lam "p"
        (Pair
           ( Var "p",
             Sel (lam "c" (Bin (Gt, Path (Var "c", "age"), i 25)), Path (Var "p", "child")) )),
      Extent "P" )

(* A4 (Figure 2): identical but the predicate mentions the free variable p.
   app (λ(p) [p, sel (λ(c) p.age > 25)(p.child)])(P) *)
let a4 =
  App
    ( lam "p"
        (Pair
           ( Var "p",
             Sel (lam "c" (Bin (Gt, Path (Var "p", "age"), i 25)), Path (Var "p", "child")) )),
      Extent "P" )

(* A4 after code motion (Section 2.2):
   app (λ(p) if p.age > 25 then [p, p.child] else [p, {}])(P) *)
let a4_optimized =
  App
    ( lam "p"
        (If
           ( Bin (Gt, Path (Var "p", "age"), i 25),
             Pair (Var "p", Path (Var "p", "child")),
             Pair (Var "p", SetLit []) )),
      Extent "P" )

(* The Garage Query in AQUA (Section 3 / [28]): each vehicle in V paired
   with the addresses of garages kept by its owners:
   app (λ(v) [v, flatten(app (λ(p) p.grgs)(sel (λ(p) v ∈ p.cars)(P)))])(V) *)
let garage =
  App
    ( lam "v"
        (Pair
           ( Var "v",
             Flatten
               (App
                  ( lam "p" (Path (Var "p", "grgs")),
                    Sel (lam "q" (Bin (In, Var "v", Path (Var "q", "cars"))), Extent "P") )) )),
      Extent "V" )

(* A depth-n hidden join in AQUA (the general form of Section 4.1):
   app (λ(a) [a, g1(g2(... gn(B) ...))])(A) where each g is an app/sel
   layer.  Used by the Figure 7/8 scaling experiments. *)
let hidden_join_depth n =
  let rec inner k =
    if k = 0 then Extent "P"
    else if k mod 2 = 1 then
      (* a filtering layer referring to the outer variable v *)
      Sel (lam "q" (Bin (In, Var "v", Path (Var "q", "cars"))), inner (k - 1))
    else
      (* a mapping layer: project and re-wrap (keeps typing set-of-person) *)
      App (lam "p" (Var "p"), inner (k - 1))
  in
  App (lam "v" (Pair (Var "v", inner n)), Extent "V")

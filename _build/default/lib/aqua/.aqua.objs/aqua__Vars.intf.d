lib/aqua/vars.mli: Ast Set

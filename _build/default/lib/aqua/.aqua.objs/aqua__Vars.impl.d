lib/aqua/vars.ml: Ast Fmt Kola List Set String

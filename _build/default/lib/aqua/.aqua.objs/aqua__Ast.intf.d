lib/aqua/ast.mli: Kola

lib/aqua/eval.ml: Ast Fmt Kola List Term Value

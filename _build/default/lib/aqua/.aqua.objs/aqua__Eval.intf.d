lib/aqua/eval.mli: Ast Kola

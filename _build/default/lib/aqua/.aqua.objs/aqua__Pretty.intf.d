lib/aqua/pretty.mli: Ast Fmt

lib/aqua/ast.ml: Kola List String

lib/aqua/pretty.ml: Ast Fmt Kola

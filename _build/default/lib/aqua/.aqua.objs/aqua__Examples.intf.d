lib/aqua/examples.mli: Ast

lib/aqua/examples.ml: Ast Kola

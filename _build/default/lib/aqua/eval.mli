(** Reference evaluator for AQUA expressions, over the same value domain as
    KOLA; used to validate the AQUA→KOLA translator. *)

exception Error of string

type ctx = {
  db : (string * Kola.Value.t) list;
  env : (string * Kola.Value.t) list;
}

val ctx : ?db:(string * Kola.Value.t) list -> unit -> ctx

val eval : ctx -> Ast.expr -> Kola.Value.t
(** @raise Error on unbound variables/extents or type-improper use. *)

val eval_closed : ?db:(string * Kola.Value.t) list -> Ast.expr -> Kola.Value.t

(** AQUA — the variable-based object algebra the paper uses as its case
    study (Section 2).  Anonymous functions and predicates are written with
    λ-notation; queries are expressions over named extents.

    This is the representation the paper argues {e against} for rule-based
    optimizers: transformations over it need variable renaming, expression
    composition and free-variable analysis ({!Vars}), exercised by the
    {!Baseline} engine. *)

type binop =
  | Eq | Leq | Lt | Gt | Geq
  | And | Or
  | In
  | Add | Sub | Mul
  | Union | Inter | Diff

type expr =
  | Var of string
  | Const of Kola.Value.t
  | Extent of string                   (** a named database set, e.g. P *)
  | Path of expr * string              (** e.attr *)
  | Pair of expr * expr
  | App of lam * expr                  (** app(λx.body)(set) *)
  | Sel of lam * expr                  (** sel(λx.pred)(set) *)
  | Flatten of expr
  | Join of lam2 * lam2 * expr * expr  (** join(λxy.p, λxy.f)([A, B]) *)
  | If of expr * expr * expr
  | Bin of binop * expr * expr
  | Not of expr
  | Agg of Kola.Term.agg * expr
  | SetLit of expr list

and lam = { v : string; body : expr }
and lam2 = { v1 : string; v2 : string; body2 : expr }

val lam : string -> expr -> lam
val lam2 : string -> string -> expr -> lam2

val equal : expr -> expr -> bool
(** Syntactic equality (not α-equivalence; see {!Vars.alpha_equal}). *)

val size : expr -> int
(** Node count — the paper's n in its O(mn) translation bound. *)

val max_nesting : expr -> int
(** Maximum number of simultaneously bound variables — the paper's m. *)

val desugar_join : lam2 -> lam2 -> expr -> expr -> expr
(** [join(λab.p, λab.f)([A,B]) =
     flatten(app(λa. app(λb. f)(sel(λb. p)(B)))(A))]. *)

(** AQUA pretty printer, in the paper's notation:
    [app (λ(x) x.age)(sel (λ(p) p.age > 25)(P))]. *)

val binop_name : Ast.binop -> string
val pp : Ast.expr Fmt.t
val to_string : Ast.expr -> string

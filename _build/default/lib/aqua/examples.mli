(** The paper's AQUA examples (Figures 1 and 2, and the Garage Query). *)

(** {1 Figure 1} *)

val t1_source : Ast.expr
(** app (λ(a) a.city)(app (λ(p) p.addr)(P)) *)

val t1_target : Ast.expr
(** app (λ(p) p.addr.city)(P) *)

val t2_source : Ast.expr
(** app (λ(x) x.age)(sel (λ(p) p.age > 25)(P)) — note the deliberately
    different binder, the paper's renaming example. *)

val t2_target : Ast.expr
(** sel (λ(a) a > 25)(app (λ(p) p.age)(P)) *)

(** {1 Figure 2} *)

val a3 : Ast.expr
(** Persons paired with their children older than 25 (child's age free of
    the outer variable). *)

val a4 : Ast.expr
(** Structurally identical, but the predicate mentions the outer p. *)

val a4_optimized : Ast.expr
(** A4 after code motion (Section 2.2). *)

(** {1 The Garage Query and generated hidden joins} *)

val garage : Ast.expr
(** Each vehicle paired with the garage addresses of its owners; its
    translation is the paper's KG1 verbatim. *)

val hidden_join_depth : int -> Ast.expr
(** A hidden join with [n] nested query layers (Figure 7's general form),
    alternating filter and map layers over extent P. *)

(* AQUA pretty printer, in the paper's notation:
   app (λ(x) x.age)(sel (λ(p) p.age > 25)(P)) *)

open Ast

let binop_name = function
  | Eq -> "="
  | Leq -> "\u{2264}"
  | Lt -> "<"
  | Gt -> ">"
  | Geq -> "\u{2265}"
  | And -> "and"
  | Or -> "or"
  | In -> "\u{2208}"
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Union -> "\u{222A}"
  | Inter -> "\u{2229}"
  | Diff -> "\\"

let rec pp ppf = function
  | Var x -> Fmt.string ppf x
  | Const v -> Kola.Value.pp ppf v
  | Extent s -> Fmt.string ppf s
  | Path (e, attr) -> Fmt.pf ppf "%a.%s" pp_atom e attr
  | Pair (a, b) -> Fmt.pf ppf "[@[%a,@ %a@]]" pp a pp b
  | App (l, e) ->
    Fmt.pf ppf "app (@[\u{3BB}(%s) %a@])(@[%a@])" l.v pp l.body pp e
  | Sel (l, e) ->
    Fmt.pf ppf "sel (@[\u{3BB}(%s) %a@])(@[%a@])" l.v pp l.body pp e
  | Flatten e -> Fmt.pf ppf "flatten(@[%a@])" pp e
  | Join (p, f, a, b) ->
    Fmt.pf ppf "join (@[\u{3BB}(%s,%s) %a@], @[\u{3BB}(%s,%s) %a@])([@[%a,@ %a@]])"
      p.v1 p.v2 pp p.body2 f.v1 f.v2 pp f.body2 pp a pp b
  | If (c, t, e) ->
    Fmt.pf ppf "if @[%a@] then @[%a@] else @[%a@]" pp c pp t pp e
  | Bin (op, a, b) ->
    Fmt.pf ppf "(@[%a %s@ %a@])" pp a (binop_name op) pp b
  | Not e -> Fmt.pf ppf "not(@[%a@])" pp e
  | Agg (op, e) ->
    let name =
      match op with
      | Kola.Term.Count -> "cnt"
      | Kola.Term.Sum -> "sum"
      | Kola.Term.Max -> "max"
      | Kola.Term.Min -> "min"
    in
    Fmt.pf ppf "%s(@[%a@])" name pp e
  | SetLit xs -> Fmt.pf ppf "{@[%a@]}" (Fmt.list ~sep:Fmt.comma pp) xs

and pp_atom ppf e =
  match e with
  | Var _ | Const _ | Extent _ | Path _ -> pp ppf e
  | _ -> Fmt.pf ppf "(%a)" pp e

let to_string e = Fmt.str "%a" pp e

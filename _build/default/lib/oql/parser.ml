(* Recursive-descent parser for the OQL subset, producing AQUA directly.

   Grammar (informal):
     query    ::= select expr from binding (, binding)*
                    [where expr] [group by expr] | expr
     binding  ::= ident in expr
     expr     ::= or-expr | "if" expr "then" expr "else" expr
     or-expr  ::= and-expr ("or" and-expr)*
     and-expr ::= not-expr ("and" not-expr)*
     not-expr ::= "not" not-expr | cmp-expr
     cmp-expr ::= add-expr (( < | <= | > | >= | = | != | in | union | inter
                             | except ) add-expr)?
     add-expr ::= mul-expr (( + | - ) mul-expr)*
     mul-expr ::= postfix ( * postfix )*
     postfix  ::= primary (. ident)*
     primary  ::= int | string | true | false | ident | ( query )
                | [ query , query ] | { query* } | agg ( query )
                | flatten ( query ) | exists ( query )

   A select with one binding desugars to app over sel; with n bindings, to
   nested flatten(app(...)); [exists] to a count comparison.

   GROUP BY follows OQL-93: the head is evaluated once per distinct key,
   with [key] bound to the grouping value and [partition] to the set of
   source elements in the group:

     select [key, count(partition)] from e in E group by e.dept

   desugars to app(λkey. [key, count(sel(λe. e.dept = key)(E))])
                  (app(λe. e.dept)(E))
   — a hidden join, which the five-step strategy untangles into a
   hash-grouped nest-of-join. *)

open Lexer

exception Error of string

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t

let advance st =
  match st.toks with
  | [] -> ()
  | _ :: rest -> st.toks <- rest

let expect st tok what =
  if peek st = tok then advance st
  else raise (Error (Fmt.str "expected %s, found %a" what pp_token (peek st)))

let expect_ident st what =
  match peek st with
  | IDENT s ->
    advance st;
    s
  | t -> raise (Error (Fmt.str "expected %s, found %a" what pp_token t))

let rec parse_query st : Aqua.Ast.expr =
  match peek st with
  | KW "select" ->
    advance st;
    let head = parse_expr st in
    expect st (KW "from") "from";
    let bindings = parse_bindings st in
    let where =
      if peek st = KW "where" then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    let group_by =
      if peek st = KW "group" then begin
        advance st;
        expect st (KW "by") "by";
        Some (parse_expr st)
      end
      else None
    in
    (match group_by with
    | None -> desugar_select head bindings where
    | Some key_expr -> desugar_group_by head bindings where key_expr)
  | _ -> parse_expr st

and parse_bindings st =
  let b () =
    let v = expect_ident st "binding variable" in
    expect st (KW "in") "in";
    let src = parse_expr st in
    (v, src)
  in
  let first = b () in
  let rec more acc =
    if peek st = COMMA then begin
      advance st;
      more (b () :: acc)
    end
    else List.rev acc
  in
  more [ first ]

(* select h from x1 in A1, ..., xn in An where p
   ⇒ wrap_1 (... wrap_{n-1} (app(λxn.h)(sel(λxn.p)(An))))
   where wrap_i (e) = flatten(app(λxi.e)(Ai)). *)
and desugar_select head bindings where =
  match List.rev bindings with
  | [] -> raise (Error "select with no bindings")
  | (vn, srcn) :: outer_rev ->
    let filtered =
      match where with
      | None -> srcn
      | Some p -> Aqua.Ast.Sel (Aqua.Ast.lam vn p, srcn)
    in
    let core = Aqua.Ast.App (Aqua.Ast.lam vn head, filtered) in
    List.fold_left
      (fun acc (v, src) ->
        Aqua.Ast.Flatten (Aqua.Ast.App (Aqua.Ast.lam v acc, src)))
      core outer_rev

(* select h from x in A [where p] group by k
   ⇒ app(λkey. h[partition := sel(λx. k = key)(A')])(app(λx. k)(A'))
   where A' is the where-filtered source.  Only single-binding selects can
   be grouped. *)
and desugar_group_by head bindings where key_expr =
  match bindings with
  | [ (v, src) ] ->
    let filtered =
      match where with
      | None -> src
      | Some p -> Aqua.Ast.Sel (Aqua.Ast.lam v p, src)
    in
    let partition =
      Aqua.Ast.Sel
        (Aqua.Ast.lam v (Aqua.Ast.Bin (Aqua.Ast.Eq, key_expr, Aqua.Ast.Var "key")), filtered)
    in
    let head' = Aqua.Vars.subst "partition" partition head in
    Aqua.Ast.App
      (Aqua.Ast.lam "key" head', Aqua.Ast.App (Aqua.Ast.lam v key_expr, filtered))
  | _ -> raise (Error "group by requires exactly one from-binding")

and parse_expr st : Aqua.Ast.expr =
  match peek st with
  | KW "if" ->
    advance st;
    let c = parse_expr st in
    expect st (KW "then") "then";
    let t = parse_expr st in
    expect st (KW "else") "else";
    let e = parse_expr st in
    Aqua.Ast.If (c, t, e)
  | _ -> parse_or st

and parse_or st =
  let lhs = parse_and st in
  if peek st = KW "or" then begin
    advance st;
    Aqua.Ast.Bin (Aqua.Ast.Or, lhs, parse_or st)
  end
  else lhs

and parse_and st =
  let lhs = parse_not st in
  if peek st = KW "and" then begin
    advance st;
    Aqua.Ast.Bin (Aqua.Ast.And, lhs, parse_and st)
  end
  else lhs

and parse_not st =
  if peek st = KW "not" then begin
    advance st;
    Aqua.Ast.Not (parse_not st)
  end
  else parse_cmp st

and parse_cmp st =
  let lhs = parse_add st in
  let bin op =
    advance st;
    Aqua.Ast.Bin (op, lhs, parse_add st)
  in
  match peek st with
  | LT -> bin Aqua.Ast.Lt
  | LE -> bin Aqua.Ast.Leq
  | GT -> bin Aqua.Ast.Gt
  | GE -> bin Aqua.Ast.Geq
  | EQ -> bin Aqua.Ast.Eq
  | NE ->
    advance st;
    Aqua.Ast.Not (Aqua.Ast.Bin (Aqua.Ast.Eq, lhs, parse_add st))
  | KW "in" -> bin Aqua.Ast.In
  | KW "union" -> bin Aqua.Ast.Union
  | KW "inter" -> bin Aqua.Ast.Inter
  | KW "except" -> bin Aqua.Ast.Diff
  | _ -> lhs

and parse_add st =
  let rec loop lhs =
    match peek st with
    | PLUS ->
      advance st;
      loop (Aqua.Ast.Bin (Aqua.Ast.Add, lhs, parse_mul st))
    | MINUS ->
      advance st;
      loop (Aqua.Ast.Bin (Aqua.Ast.Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop lhs =
    if peek st = STAR then begin
      advance st;
      loop (Aqua.Ast.Bin (Aqua.Ast.Mul, lhs, parse_postfix st))
    end
    else lhs
  in
  loop (parse_postfix st)

and parse_postfix st =
  let rec loop e =
    if peek st = DOT then begin
      advance st;
      let attr = expect_ident st "attribute name" in
      loop (Aqua.Ast.Path (e, attr))
    end
    else e
  in
  loop (parse_primary st)

and parse_primary st =
  match peek st with
  | INT i ->
    advance st;
    Aqua.Ast.Const (Kola.Value.Int i)
  | MINUS ->
    advance st;
    (match peek st with
     | INT i ->
       advance st;
       Aqua.Ast.Const (Kola.Value.Int (-i))
     | t -> raise (Error (Fmt.str "expected integer after -, found %a" pp_token t)))
  | STRING s ->
    advance st;
    Aqua.Ast.Const (Kola.Value.Str s)
  | KW "true" ->
    advance st;
    Aqua.Ast.Const (Kola.Value.Bool true)
  | KW "false" ->
    advance st;
    Aqua.Ast.Const (Kola.Value.Bool false)
  | KW (("count" | "sum" | "max" | "min") as agg) ->
    advance st;
    expect st LPAREN "(";
    let e = parse_query st in
    expect st RPAREN ")";
    let op =
      match agg with
      | "count" -> Kola.Term.Count
      | "sum" -> Kola.Term.Sum
      | "max" -> Kola.Term.Max
      | _ -> Kola.Term.Min
    in
    Aqua.Ast.Agg (op, e)
  | KW "flatten" ->
    advance st;
    expect st LPAREN "(";
    let e = parse_query st in
    expect st RPAREN ")";
    Aqua.Ast.Flatten e
  | KW "exists" ->
    advance st;
    expect st LPAREN "(";
    let e = parse_query st in
    expect st RPAREN ")";
    Aqua.Ast.Bin (Aqua.Ast.Gt, Aqua.Ast.Agg (Kola.Term.Count, e), Aqua.Ast.Const (Kola.Value.Int 0))
  | LPAREN ->
    advance st;
    let e = parse_query st in
    expect st RPAREN ")";
    e
  | LBRACKET ->
    advance st;
    let a = parse_query st in
    expect st COMMA ",";
    let b = parse_query st in
    expect st RBRACKET "]";
    Aqua.Ast.Pair (a, b)
  | LBRACE ->
    advance st;
    if peek st = RBRACE then begin
      advance st;
      Aqua.Ast.SetLit []
    end
    else begin
      let first = parse_query st in
      let rec more acc =
        if peek st = COMMA then begin
          advance st;
          more (parse_query st :: acc)
        end
        else List.rev acc
      in
      let elems = more [ first ] in
      expect st RBRACE "}";
      Aqua.Ast.SetLit elems
    end
  | IDENT name ->
    advance st;
    (* Unbound identifiers become variables; [bind_extents] later turns the
       globally known ones into extents. *)
    Aqua.Ast.Var name
  | t -> raise (Error (Fmt.str "unexpected token %a" pp_token t))

(* Turn free variables that name database extents into [Extent] nodes. *)
let bind_extents extents e =
  let rec go bound e =
    let open Aqua.Ast in
    match e with
    | Var x ->
      if (not (List.mem x bound)) && List.mem x extents then Extent x else e
    | Const _ | Extent _ -> e
    | Path (e1, a) -> Path (go bound e1, a)
    | Pair (a, b) -> Pair (go bound a, go bound b)
    | Flatten e1 -> Flatten (go bound e1)
    | Not e1 -> Not (go bound e1)
    | Agg (g, e1) -> Agg (g, go bound e1)
    | Bin (op, a, b) -> Bin (op, go bound a, go bound b)
    | If (c, t, e1) -> If (go bound c, go bound t, go bound e1)
    | SetLit xs -> SetLit (List.map (go bound) xs)
    | App (l, e1) -> App ({ l with body = go (l.v :: bound) l.body }, go bound e1)
    | Sel (l, e1) -> Sel ({ l with body = go (l.v :: bound) l.body }, go bound e1)
    | Join (p, f, a, b) ->
      Join
        ( { p with body2 = go (p.v1 :: p.v2 :: bound) p.body2 },
          { f with body2 = go (f.v1 :: f.v2 :: bound) f.body2 },
          go bound a, go bound b )
  in
  go [] e

let parse ?(extents = [ "P"; "V"; "A" ]) (src : string) : Aqua.Ast.expr =
  let st = { toks = Lexer.tokenize src } in
  let e = parse_query st in
  (match peek st with
  | EOF -> ()
  | t -> raise (Error (Fmt.str "trailing input at %a" pp_token t)));
  bind_extents extents e

lib/oql/lexer.mli: Fmt

lib/oql/parser.ml: Aqua Fmt Kola Lexer List

lib/oql/lexer.ml: Fmt List String

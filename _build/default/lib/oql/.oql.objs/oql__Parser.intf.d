lib/oql/parser.mli: Aqua

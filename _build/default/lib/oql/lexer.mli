(** Hand-written lexer for the OQL subset. *)

type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | KW of string
  | LPAREN | RPAREN
  | LBRACKET | RBRACKET
  | LBRACE | RBRACE
  | COMMA | DOT
  | LT | LE | GT | GE | EQ | NE
  | PLUS | MINUS | STAR
  | EOF

exception Error of string

val keywords : string list

val tokenize : string -> token list
(** @raise Error on unterminated strings or unknown characters. *)

val pp_token : token Fmt.t

(** Recursive-descent parser for the OQL subset, producing AQUA.

    {v
    query    ::= select expr from binding (, binding)* [where expr] | expr
    binding  ::= ident in expr
    expr     ::= literals, paths (e.attr), pairs [a, b], sets {..},
                 comparisons (< <= > >= = != in), and/or/not,
                 + - *, union/inter/except, count/sum/max/min(q),
                 flatten(q), exists(q), if ... then ... else ...
    v}

    A select with one binding desugars to app over sel; with n bindings to
    nested flatten(app(...)); [exists] to a count comparison.  Free names
    listed in [extents] become database extents. *)

exception Error of string

val parse : ?extents:string list -> string -> Aqua.Ast.expr
(** Default extents: P, V, A (the paper schema).
    @raise Error on syntax errors (also {!Lexer.Error}). *)

val bind_extents : string list -> Aqua.Ast.expr -> Aqua.Ast.expr
(** Turn free variables naming known extents into [Extent] nodes. *)

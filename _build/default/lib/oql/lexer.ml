(* Hand-written lexer for the OQL subset (select/from/where queries over
   named extents).  The paper reports translators from OQL [9] into KOLA
   [11]; this frontend reproduces that pipeline via AQUA. *)

type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | KW of string      (* select from in where and or not ... *)
  | LPAREN | RPAREN
  | LBRACKET | RBRACKET
  | LBRACE | RBRACE
  | COMMA | DOT
  | LT | LE | GT | GE | EQ | NE
  | PLUS | MINUS | STAR
  | EOF

exception Error of string

let keywords =
  [
    "select"; "from"; "in"; "where"; "group"; "by"; "and"; "or"; "not";
    "count"; "sum"; "max"; "min"; "flatten"; "union"; "inter"; "except";
    "if"; "then"; "else"; "true"; "false"; "exists";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize (s : string) : token list =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev (EOF :: acc)
    else
      let c = s.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1) acc
      else if is_digit c then begin
        let j = ref i in
        while !j < n && is_digit s.[!j] do incr j done;
        go !j (INT (int_of_string (String.sub s i (!j - i))) :: acc)
      end
      else if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident_char s.[!j] do incr j done;
        let word = String.sub s i (!j - i) in
        let lower = String.lowercase_ascii word in
        let tok = if List.mem lower keywords then KW lower else IDENT word in
        go !j (tok :: acc)
      end
      else if c = '"' then begin
        let j = ref (i + 1) in
        while !j < n && s.[!j] <> '"' do incr j done;
        if !j >= n then raise (Error "unterminated string literal");
        go (!j + 1) (STRING (String.sub s (i + 1) (!j - i - 1)) :: acc)
      end
      else
        let two = if i + 1 < n then String.sub s i 2 else "" in
        match two with
        | "<=" -> go (i + 2) (LE :: acc)
        | ">=" -> go (i + 2) (GE :: acc)
        | "!=" | "<>" -> go (i + 2) (NE :: acc)
        | _ -> (
          match c with
          | '(' -> go (i + 1) (LPAREN :: acc)
          | ')' -> go (i + 1) (RPAREN :: acc)
          | '[' -> go (i + 1) (LBRACKET :: acc)
          | ']' -> go (i + 1) (RBRACKET :: acc)
          | '{' -> go (i + 1) (LBRACE :: acc)
          | '}' -> go (i + 1) (RBRACE :: acc)
          | ',' -> go (i + 1) (COMMA :: acc)
          | '.' -> go (i + 1) (DOT :: acc)
          | '<' -> go (i + 1) (LT :: acc)
          | '>' -> go (i + 1) (GT :: acc)
          | '=' -> go (i + 1) (EQ :: acc)
          | '+' -> go (i + 1) (PLUS :: acc)
          | '-' -> go (i + 1) (MINUS :: acc)
          | '*' -> go (i + 1) (STAR :: acc)
          | c -> raise (Error (Fmt.str "unexpected character %C at offset %d" c i)))
  in
  go 0 []

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "ident %s" s
  | INT i -> Fmt.pf ppf "int %d" i
  | STRING s -> Fmt.pf ppf "string %S" s
  | KW s -> Fmt.string ppf s
  | LPAREN -> Fmt.string ppf "("
  | RPAREN -> Fmt.string ppf ")"
  | LBRACKET -> Fmt.string ppf "["
  | RBRACKET -> Fmt.string ppf "]"
  | LBRACE -> Fmt.string ppf "{"
  | RBRACE -> Fmt.string ppf "}"
  | COMMA -> Fmt.string ppf ","
  | DOT -> Fmt.string ppf "."
  | LT -> Fmt.string ppf "<"
  | LE -> Fmt.string ppf "<="
  | GT -> Fmt.string ppf ">"
  | GE -> Fmt.string ppf ">="
  | EQ -> Fmt.string ppf "="
  | NE -> Fmt.string ppf "!="
  | PLUS -> Fmt.string ppf "+"
  | MINUS -> Fmt.string ppf "-"
  | STAR -> Fmt.string ppf "*"
  | EOF -> Fmt.string ppf "<eof>"

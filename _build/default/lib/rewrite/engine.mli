(** The rewriting engine: fires rules from a set anywhere in a query,
    recording a trace, so tests can check the paper's derivations (Figures
    4 and 6) step by step and the optimizer can explain itself. *)

type step = {
  rule_name : string;
  result : Kola.Term.query;  (** the whole query after the firing *)
}

type trace = step list
type stats = {
  firings : int;
  attempts : int;  (** rule-at-node match attempts: the unification cost *)
}
type outcome = { query : Kola.Term.query; trace : trace; stats : stats }

val pp_trace : trace Fmt.t

val step_once :
  ?schema:Kola.Schema.t ->
  ?counter:int ref ->
  Rule.t list -> Kola.Term.query -> (string * Kola.Term.query) option
(** Fire the first rule (in catalog order) that applies anywhere, outermost
    first; query rules are tried at the query level before function and
    predicate rules. *)

val run :
  ?schema:Kola.Schema.t -> ?fuel:int -> Rule.t list -> Kola.Term.query -> outcome
(** Normalize under the rule set, up to [fuel] firings. *)

val run_func :
  ?schema:Kola.Schema.t -> ?fuel:int ->
  Rule.t list -> Kola.Term.func -> Kola.Term.func * trace

val fired_rules : outcome -> string list
